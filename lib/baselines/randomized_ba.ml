open Fba_stdx

type coin = [ `Local | `Common of int64 ]

type config = {
  n : int;
  t_assumed : int;
  coin : coin;
  inputs : int -> bool;
  max_logical_rounds : int;
}

let make_config ?(max_logical_rounds = 64) ~n ~t_assumed ~coin ~inputs () =
  if n < 2 then invalid_arg "Randomized_ba.make_config: n < 2";
  if t_assumed < 0 || 5 * t_assumed >= n then
    invalid_arg "Randomized_ba.make_config: need 5*t_assumed < n";
  if max_logical_rounds < 1 then
    invalid_arg "Randomized_ba.make_config: max_logical_rounds < 1";
  { n; t_assumed; coin; inputs; max_logical_rounds }

type msg =
  | Report of { k : int; b : bool }
  | Proposal of { k : int; p : bool option }

(* Per logical round: dedup senders, count reports per bit and
   proposals per bit/abstain. *)
type round_tally = {
  mutable rep_seen : int list;
  mutable rep : int array;  (* rep.(0), rep.(1) *)
  mutable prop_seen : int list;
  mutable prop : int array;  (* prop.(0), prop.(1) *)
}

let fresh_round () = { rep_seen = []; rep = [| 0; 0 |]; prop_seen = []; prop = [| 0; 0 |] }

type state = {
  ctx : Fba_sim.Ctx.t;
  mutable v : bool;
  tallies : (int, round_tally) Hashtbl.t;
  mutable result : string option;
  mutable decided_round : int;
}

let name = "randomized-ba"
let compile _ = ()

let tally st k =
  match Hashtbl.find_opt st.tallies k with
  | Some t -> t
  | None ->
    let t = fresh_round () in
    Hashtbl.add st.tallies k t;
    t

let broadcast cfg m = List.init cfg.n (fun dst -> (dst, m))

let coin_flip cfg st k =
  match cfg.coin with
  | `Local -> Prng.bool st.ctx.Fba_sim.Ctx.rng
  | `Common seed ->
    Int64.logand (Hash64.finish (Hash64.add_int (Hash64.init seed) k)) 1L = 1L

let init cfg ctx =
  let id = ctx.Fba_sim.Ctx.id in
  let st =
    { ctx; v = cfg.inputs id; tallies = Hashtbl.create 16; result = None; decided_round = 0 }
  in
  (st, broadcast cfg (Report { k = 0; b = st.v }))

let on_round cfg st ~round =
  if round mod 4 = 2 && round / 4 < cfg.max_logical_rounds then begin
    (* Reports of logical round k arrived during round 4k+1. *)
    let k = round / 4 in
    let t = tally st k in
    let threshold = (cfg.n + cfg.t_assumed) / 2 in
    let p =
      if t.rep.(1) > threshold then Some true
      else if t.rep.(0) > threshold then Some false
      else None
    in
    broadcast cfg (Proposal { k; p })
  end
  else if round mod 4 = 0 && round > 0 && round / 4 <= cfg.max_logical_rounds then begin
    (* Proposals of logical round k−1 arrived during round 4(k−1)+3. *)
    let k = (round / 4) - 1 in
    let t = tally st k in
    let decide_threshold = (2 * cfg.t_assumed) + 1 in
    let adopt_threshold = cfg.t_assumed + 1 in
    (if t.prop.(1) >= decide_threshold then begin
       if st.result = None then begin
         st.result <- Some "1";
         st.decided_round <- k
       end;
       st.v <- true
     end
     else if t.prop.(0) >= decide_threshold then begin
       if st.result = None then begin
         st.result <- Some "0";
         st.decided_round <- k
       end;
       st.v <- false
     end
     else if t.prop.(1) >= adopt_threshold then st.v <- true
     else if t.prop.(0) >= adopt_threshold then st.v <- false
     else if st.result = None then st.v <- coin_flip cfg st k);
    if round / 4 < cfg.max_logical_rounds then
      broadcast cfg (Report { k = round / 4; b = st.v })
    else []
  end
  else []

let on_receive cfg st ~round:_ ~src m =
  (match m with
  | Report { k; b } ->
    if k >= 0 && k < cfg.max_logical_rounds then begin
      let t = tally st k in
      if not (List.mem src t.rep_seen) then begin
        t.rep_seen <- src :: t.rep_seen;
        let i = if b then 1 else 0 in
        t.rep.(i) <- t.rep.(i) + 1
      end
    end
  | Proposal { k; p } ->
    if k >= 0 && k < cfg.max_logical_rounds then begin
      let t = tally st k in
      if not (List.mem src t.prop_seen) then begin
        t.prop_seen <- src :: t.prop_seen;
        match p with
        | Some b ->
          let i = if b then 1 else 0 in
          t.prop.(i) <- t.prop.(i) + 1
        | None -> ()
      end
    end);
  []

let output st = st.result

let msg_bits cfg m =
  let id_bits = Intx.ceil_log2 (max 2 cfg.n) in
  let header = 8 + (2 * id_bits) in
  match m with Report _ -> header + 8 + 1 | Proposal _ -> header + 8 + 2

let receive_into = None

let pp_msg _cfg fmt = function
  | Report { k; b } -> Format.fprintf fmt "Report(%d, %b)" k b
  | Proposal { k; p } ->
    Format.fprintf fmt "Proposal(%d, %s)" k
      (match p with Some true -> "1" | Some false -> "0" | None -> "?")

let msg_tags _cfg = [| "Report"; "Proposal" |]
let msg_tag _cfg = function Report _ -> 0 | Proposal _ -> 1

let max_engine_rounds cfg = (4 * cfg.max_logical_rounds) + 4

let logical_rounds_used st = st.decided_round + 1

let split_vote_adversary cfg ~corrupted =
  let act ~round ~observed:_ =
    if round mod 4 = 0 && round / 4 < cfg.max_logical_rounds then begin
      let k = round / 4 in
      let outs = ref [] in
      Fba_stdx.Bitset.iter
        (fun a ->
          for dst = 0 to cfg.n - 1 do
            let b = dst mod 2 = 0 in
            outs := Fba_sim.Envelope.make ~src:a ~dst (Report { k; b }) :: !outs
          done)
        corrupted;
      !outs
    end
    else []
  in
  { Fba_sim.Sync_engine.corrupted; act }
