open Fba_stdx

type config = { n : int; fanout : int; initial : int -> string; str_bits : int }

let make_config ?fanout ~n ~initial ~str_bits () =
  if n < 2 then invalid_arg "Naive_aetoe.make_config: n < 2";
  if str_bits < 1 then invalid_arg "Naive_aetoe.make_config: str_bits < 1";
  let fanout =
    match fanout with
    | Some f when f >= 1 && f <= n -> f
    | Some _ -> invalid_arg "Naive_aetoe.make_config: fanout out of range"
    | None -> min n ((4 * Intx.ceil_log2 n) + 1)
  in
  { n; fanout; initial; str_bits }

type msg = Query | Reply of string

type state = {
  ctx : Fba_sim.Ctx.t;
  value : string;
  queried : int array;
  mutable replies_seen : int list;
  reply_counts : (string, int) Hashtbl.t;
  answered : (int, unit) Hashtbl.t;
  mutable result : string option;
}

let name = "naive-aetoe"
let compile _ = ()

let init cfg ctx =
  let id = ctx.Fba_sim.Ctx.id in
  let value = cfg.initial id in
  let queried =
    (* Sample targets other than self. *)
    Array.map
      (fun v -> if v >= id then v + 1 else v)
      (Prng.sample_without_replacement ctx.Fba_sim.Ctx.rng ~n:(cfg.n - 1) ~k:cfg.fanout)
  in
  let st =
    {
      ctx;
      value;
      queried;
      replies_seen = [];
      reply_counts = Hashtbl.create 8;
      answered = Hashtbl.create 16;
      result = None;
    }
  in
  (st, Array.to_list (Array.map (fun dst -> (dst, Query)) queried))

let on_round _cfg st ~round =
  if round = 3 && st.result = None then begin
    (* Replies arrived during round 2; adopt the plurality, falling
       back to the own value when the sample was empty. *)
    let best =
      Hashtbl.fold
        (fun v c acc ->
          match acc with
          | Some (bv, bc) when c < bc || (c = bc && v >= bv) -> Some (bv, bc)
          | _ -> Some (v, c))
        st.reply_counts None
    in
    st.result <- Some (match best with Some (v, _) -> v | None -> st.value)
  end;
  []

let on_receive _cfg st ~round:_ ~src m =
  match m with
  | Query ->
    (* Reply unconditionally — the vulnerability under study. One
       reply per querier. *)
    if Hashtbl.mem st.answered src then []
    else begin
      Hashtbl.add st.answered src ();
      [ (src, Reply st.value) ]
    end
  | Reply v ->
    if
      st.result = None
      && Array.exists (fun q -> q = src) st.queried
      && not (List.mem src st.replies_seen)
    then begin
      st.replies_seen <- src :: st.replies_seen;
      Hashtbl.replace st.reply_counts v
        (1 + Option.value ~default:0 (Hashtbl.find_opt st.reply_counts v))
    end;
    []

let output st = st.result

let msg_bits cfg m =
  let id_bits = Intx.ceil_log2 (max 2 cfg.n) in
  let header = 8 + (2 * id_bits) in
  match m with Query -> header | Reply _ -> header + cfg.str_bits

let receive_into = None

let pp_msg _cfg fmt = function
  | Query -> Format.fprintf fmt "Query"
  | Reply _ -> Format.fprintf fmt "Reply"

let msg_tags _cfg = [| "Query"; "Reply" |]
let msg_tag _cfg = function Query -> 0 | Reply _ -> 1

let total_rounds = 3

let queries_answered st = Hashtbl.length st.answered

let flood_adversary cfg ~corrupted =
  let act ~round ~observed:_ =
    if round <> 0 then []
    else begin
      let outs = ref [] in
      Fba_stdx.Bitset.iter
        (fun a ->
          for dst = 0 to cfg.n - 1 do
            outs := Fba_sim.Envelope.make ~src:a ~dst Query :: !outs
          done)
        corrupted;
      !outs
    end
  in
  { Fba_sim.Sync_engine.corrupted; act }
