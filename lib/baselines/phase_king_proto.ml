open Fba_stdx
module Phase_king = Fba_aeba.Phase_king

type config = { n : int; members : int array; initial : int -> string; str_bits : int }

let make_config ~n ~initial ~str_bits =
  if n < 1 then invalid_arg "Phase_king_proto.make_config: n < 1";
  if str_bits < 1 then invalid_arg "Phase_king_proto.make_config: str_bits < 1";
  { n; members = Array.init n (fun i -> i); initial; str_bits }

type msg = Phase_king.msg

type state = { pk : Phase_king.t; mutable result : string option }

let name = "phase-king"
let compile _ = ()

let init cfg ctx =
  let id = ctx.Fba_sim.Ctx.id in
  let pk = Phase_king.create ~members:cfg.members ~me:id ~initial:(cfg.initial id) in
  ({ pk; result = None }, [])

let on_round _cfg st ~round =
  (* The engine's round 1 is the machine's local round 0. *)
  let local = round - 1 in
  if local < 0 then []
  else begin
    let outs = Phase_king.on_round st.pk ~round:local in
    if st.result = None then st.result <- Phase_king.output st.pk;
    outs
  end

let on_receive _cfg st ~round ~src m =
  Phase_king.on_receive st.pk ~round:(round - 1) ~src m;
  []

let output st = st.result

let msg_bits cfg m =
  let id_bits = Intx.ceil_log2 (max 2 cfg.n) in
  let header = 8 + (2 * id_bits) in
  match m with Phase_king.Value _ | Phase_king.King _ -> header + 8 + cfg.str_bits

let receive_into = None

let pp_msg _cfg fmt = function
  | Phase_king.Value _ -> Format.fprintf fmt "Value"
  | Phase_king.King _ -> Format.fprintf fmt "King"

let msg_tags _cfg = [| "Value"; "King" |]
let msg_tag _cfg = function Phase_king.Value _ -> 0 | Phase_king.King _ -> 1

let total_rounds cfg =
  let t = (cfg.n - 1) / 3 in
  (4 * (t + 1)) + 2
