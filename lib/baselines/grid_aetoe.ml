open Fba_stdx

type config = { n : int; cols : int; initial : int -> string; str_bits : int }

let make_config ~n ~initial ~str_bits =
  if n < 1 then invalid_arg "Grid_aetoe.make_config: n < 1";
  if str_bits < 1 then invalid_arg "Grid_aetoe.make_config: str_bits < 1";
  { n; cols = max 1 (Intx.isqrt n); initial; str_bits }

type msg = Along_row of string | Along_col of string

type tally = { mutable seen : int list; counts : (string, int) Hashtbl.t }

let fresh_tally () = { seen = []; counts = Hashtbl.create 8 }

let tally_add t ~src v =
  if not (List.mem src t.seen) then begin
    t.seen <- src :: t.seen;
    Hashtbl.replace t.counts v (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts v))
  end

let tally_plurality t =
  Hashtbl.fold
    (fun v c best ->
      match best with
      | Some (bv, bc) when c < bc || (c = bc && v >= bv) -> Some (bv, bc)
      | _ -> Some (v, c))
    t.counts None

type state = {
  ctx : Fba_sim.Ctx.t;
  value : string;
  row_tally : tally;
  col_tally : tally;
  mutable result : string option;
}

let name = "grid-aetoe"
let compile _ = ()

let row_of cfg id = id / cfg.cols
let col_of cfg id = id mod cfg.cols

let row_members cfg r =
  let first = r * cfg.cols in
  let len = min cfg.cols (cfg.n - first) in
  Array.init (max 0 len) (fun i -> first + i)

let col_members cfg c =
  let rows = Intx.cdiv cfg.n cfg.cols in
  let acc = ref [] in
  for r = rows - 1 downto 0 do
    let id = (r * cfg.cols) + c in
    if id < cfg.n then acc := id :: !acc
  done;
  Array.of_list !acc

let init cfg ctx =
  let id = ctx.Fba_sim.Ctx.id in
  let value = cfg.initial id in
  let st = { ctx; value; row_tally = fresh_tally (); col_tally = fresh_tally (); result = None } in
  (* Own value counts toward both majorities. *)
  tally_add st.row_tally ~src:id value;
  let msg = Along_row value in
  let sends =
    Array.to_list
      (Array.map (fun dst -> (dst, msg)) (row_members cfg (row_of cfg id)))
  in
  (st, List.filter (fun (dst, _) -> dst <> id) sends)

let on_round cfg st ~round =
  let id = st.ctx.Fba_sim.Ctx.id in
  match round with
  | 2 ->
    (* Row values arrived during round 1: forward the row majority
       down the column. *)
    let maj = match tally_plurality st.row_tally with Some (v, _) -> v | None -> st.value in
    tally_add st.col_tally ~src:id maj;
    let msg = Along_col maj in
    Array.to_list
      (Array.map (fun dst -> (dst, msg)) (col_members cfg (col_of cfg id)))
    |> List.filter (fun (dst, _) -> dst <> id)
  | 4 ->
    (* Column values arrived during round 3: decide. *)
    if st.result = None then
      st.result <-
        Some (match tally_plurality st.col_tally with Some (v, _) -> v | None -> st.value);
    []
  | _ -> []

let on_receive cfg st ~round:_ ~src m =
  let id = st.ctx.Fba_sim.Ctx.id in
  (match m with
  | Along_row v -> if row_of cfg src = row_of cfg id then tally_add st.row_tally ~src v
  | Along_col v -> if col_of cfg src = col_of cfg id then tally_add st.col_tally ~src v);
  []

let output st = st.result

let msg_bits cfg m =
  let id_bits = Intx.ceil_log2 (max 2 cfg.n) in
  let header = 8 + (2 * id_bits) in
  match m with Along_row _ | Along_col _ -> header + cfg.str_bits

let receive_into = None

let pp_msg _cfg fmt = function
  | Along_row _ -> Format.fprintf fmt "Along_row"
  | Along_col _ -> Format.fprintf fmt "Along_col"

let msg_tags _cfg = [| "Along_row"; "Along_col" |]
let msg_tag _cfg = function Along_row _ -> 0 | Along_col _ -> 1

let total_rounds = 5
