open Fba_stdx

type config = { n : int; fanout : int; initial : int -> string; str_bits : int }

let make_config ?fanout ~n ~initial ~str_bits () =
  if n < 2 then invalid_arg "Ks09_aetoe.make_config: n < 2";
  if str_bits < 1 then invalid_arg "Ks09_aetoe.make_config: str_bits < 1";
  let fanout =
    match fanout with
    | Some f when f >= 1 && f <= n - 1 -> f
    | Some _ -> invalid_arg "Ks09_aetoe.make_config: fanout out of range"
    | None ->
      let log_n = Intx.ceil_log2 n in
      Intx.clamp ~lo:1 ~hi:(n - 1)
        (max ((2 * log_n) + 1) (Intx.isqrt n * log_n / 4))
  in
  { n; fanout; initial; str_bits }

type msg = Push of string

type state = {
  ctx : Fba_sim.Ctx.t;
  value : string;
  mutable seen : int list;
  counts : (string, int) Hashtbl.t;
  mutable result : string option;
}

let name = "ks09-aetoe"
let compile _ = ()

let init cfg ctx =
  let id = ctx.Fba_sim.Ctx.id in
  let value = cfg.initial id in
  let st = { ctx; value; seen = []; counts = Hashtbl.create 8; result = None } in
  let targets =
    Array.map
      (fun v -> if v >= id then v + 1 else v)
      (Prng.sample_without_replacement ctx.Fba_sim.Ctx.rng ~n:(cfg.n - 1) ~k:cfg.fanout)
  in
  (st, Array.to_list (Array.map (fun dst -> (dst, Push value)) targets))

let on_round _cfg st ~round =
  if round = 2 && st.result = None then begin
    (* Pushes arrived during round 1: adopt the plurality, own value as
       the tie-breaking default. *)
    let best =
      Hashtbl.fold
        (fun v c acc ->
          match acc with
          | Some (bv, bc) when c < bc || (c = bc && v >= bv) -> Some (bv, bc)
          | _ -> Some (v, c))
        st.counts None
    in
    st.result <- Some (match best with Some (v, _) -> v | None -> st.value)
  end;
  []

let on_receive _cfg st ~round:_ ~src (Push v) =
  (* One counted push per sender — but no membership filter: this is
     the vulnerability AER's sampler I closes. *)
  if not (List.mem src st.seen) then begin
    st.seen <- src :: st.seen;
    Hashtbl.replace st.counts v (1 + Option.value ~default:0 (Hashtbl.find_opt st.counts v))
  end;
  []

let output st = st.result

let msg_bits cfg (Push _) =
  let id_bits = Intx.ceil_log2 (max 2 cfg.n) in
  8 + (2 * id_bits) + cfg.str_bits

let receive_into = None

let pp_msg _cfg fmt (Push _) = Format.fprintf fmt "Push"

let msg_tags _cfg = [| "Push" |]
let msg_tag _cfg (Push _) = 0

let total_rounds = 3

let flood_adversary ?(victims = 4) cfg ~corrupted =
  (* Victims: the first correct identities. *)
  let victim_ids =
    let acc = ref [] and i = ref 0 in
    while List.length !acc < victims && !i < cfg.n do
      if not (Fba_stdx.Bitset.mem corrupted !i) then acc := !i :: !acc;
      incr i
    done;
    Array.of_list (List.rev !acc)
  in
  let act ~round ~observed:_ =
    if round <> 0 || Array.length victim_ids = 0 then []
    else begin
      let outs = ref [] in
      let k = ref 0 in
      Fba_stdx.Bitset.iter
        (fun a ->
          (* Spend the same per-node budget as honest nodes, but all of
             it on the victims, with per-sender-distinct junk. *)
          for j = 1 to cfg.fanout do
            let dst = victim_ids.(!k mod Array.length victim_ids) in
            incr k;
            let junk = Printf.sprintf "junk-%d-%d" a j in
            outs := Fba_sim.Envelope.make ~src:a ~dst (Push junk) :: !outs
          done)
        corrupted;
      !outs
    end
  in
  { Fba_sim.Sync_engine.corrupted; act }
