(** Hash-based (θ,δ)-samplers (Section 2.2 of the paper).

    The paper needs three shared sampling functions:
    - I : D × [n] → [n]^d, the {e Push Quorums} — [I (s, x)] is the set
      of nodes from which [x] accepts pushes for candidate string [s];
    - H : D × [n] → [n]^d, the {e Pull Quorums} — proxies that filter
      and forward pull traffic;
    - J : [n] × R → [n]^d, the {e Poll Lists} — the authoritative
      sample a node consults to verify one candidate.

    Lemma 1 (after KLST11) guarantees such samplers exist; like all
    practical instantiations we realize them as keyed hash functions,
    which satisfy the sampler properties with high probability — the
    [Property_check] module measures exactly that, and the adversary is
    given explicit query access rather than hash inversion.

    A sampler value is cheap (a seed and two sizes); quorum evaluation
    costs O(d) hashes. All nodes share the same seeds, which the model
    permits: samplers are common knowledge, only [r] labels and node
    RNGs are private. *)

type t

val create : seed:int64 -> n:int -> d:int -> t
(** [create ~seed ~n ~d]: quorums of [d] distinct nodes out of [n].
    Requires [1 <= d <= n]. *)

val n : t -> int

val d : t -> int
(** Target quorum cardinality; all quorums have exactly this size. *)

val default_d : n:int -> int
(** The d = Θ(log n) the paper's lemmas use: [4 * ceil_log2 n],
    clamped to [n]. *)

val quorum_sx : t -> s:string -> x:int -> int array
(** Quorum keyed by a candidate string and a node — the shape of I and
    H. Deterministic in (seed, s, x); elements are distinct. *)

val mem_sx : t -> s:string -> x:int -> y:int -> bool
(** [mem_sx t ~s ~x ~y] iff [y] is in [quorum_sx t ~s ~x]. Early-exits
    the counter-mode draw as soon as [y] appears; allocation-free. *)

val quorum_xr : t -> x:int -> r:int64 -> int array
(** Quorum keyed by a node and a random label — the shape of J. *)

val mem_xr : t -> x:int -> r:int64 -> y:int -> bool

(** {2 Key-state interface}

    A quorum is a pure function of the absorbed 64-bit key state, so
    the state works both as a compact cache key ({!Cache} uses it with
    an open-addressing int64 table, avoiding per-lookup tuple boxing)
    and as the input to batch evaluation into flat storage. *)

val key_sx : t -> s:string -> x:int -> int64
(** The absorbed key state of I/H-shaped quorums. *)

val key_xr : t -> x:int -> r:int64 -> int64
(** The absorbed key state of J-shaped quorums. *)

val quorum_of_key : t -> int64 -> int array
(** [quorum_of_key t (key_sx t ~s ~x)] = [quorum_sx t ~s ~x]. *)

val quorum_into : t -> int64 -> int array -> pos:int -> unit
(** Draw the quorum for a key state into [out.(pos .. pos + d - 1)] —
    the building block of flat precomputed tables. *)

val mem_of_key : t -> int64 -> y:int -> bool
(** Early-exit membership on a key state; allocation-free. *)

val majority_threshold : int -> int
(** [majority_threshold k] is the smallest count that constitutes
    "more than half of" a quorum of size [k], i.e. [k/2 + 1]. *)
