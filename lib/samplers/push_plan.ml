type entry = { inverse : int array array; load : int array }

(* Physical sentinel for unevaluated sid slots (an entry with an empty
   inverse can only arise at n = 0, which Sampler rejects). *)
let no_entry = { inverse = [||]; load = [||] }

type t = {
  mutable sampler : Sampler.t;
  mutable find : (string -> int) option;
  memo : (string, entry) Hashtbl.t;  (* strings outside the interner *)
  mutable by_sid : entry array;  (* interned strings: sid -> entry *)
  mutable sid_count : int;
  mutable scratch : int array;  (* one n*d quorum slab, reused per build *)
}

let create ?find ~sampler () =
  { sampler; find; memo = Hashtbl.create 17; by_sid = [||]; sid_count = 0; scratch = [||] }

let sampler t = t.sampler

(* Epoch reset: rebind to the next instance's sampler and forget every
   memoized inverse map, keeping the dense slot array and the n*d
   scratch slab warm. *)
let reset ?find t ~sampler =
  t.sampler <- sampler;
  (match find with Some _ -> t.find <- find | None -> ());
  Hashtbl.clear t.memo;
  Array.fill t.by_sid 0 (Array.length t.by_sid) no_entry;
  t.sid_count <- 0

(* Flat two-pass build: draw all n quorums once into the shared
   scratch slab (allocation-free draws), count per-node loads, then
   fill exactly-sized inverse rows. Replaces the historical per-member
   cons lists, whose garbage dominated large-n runs; row order is
   unchanged (x ascending — each y appears at most once per quorum, so
   the fill pass visits y's targets in the same sequence the reversed
   cons lists produced). *)
let build t s =
  let n = Sampler.n t.sampler and d = Sampler.d t.sampler in
  if Array.length t.scratch < n * d then t.scratch <- Array.make (n * d) 0;
  let scratch = t.scratch in
  let load = Array.make n 0 in
  for x = 0 to n - 1 do
    Sampler.quorum_into t.sampler (Sampler.key_sx t.sampler ~s ~x) scratch ~pos:(x * d);
    for j = x * d to ((x + 1) * d) - 1 do
      let y = Array.unsafe_get scratch j in
      load.(y) <- load.(y) + 1
    done
  done;
  let inverse = Array.init n (fun y -> Array.make load.(y) 0) in
  let next = Array.make n 0 in
  for x = 0 to n - 1 do
    for j = x * d to ((x + 1) * d) - 1 do
      let y = Array.unsafe_get scratch j in
      inverse.(y).(next.(y)) <- x;
      next.(y) <- next.(y) + 1
    done
  done;
  { inverse; load }

let memo_entry t s =
  match Hashtbl.find_opt t.memo s with
  | Some e -> e
  | None ->
    let e = build t s in
    Hashtbl.add t.memo s e;
    e

(* Interned strings memoize in the dense sid slot (no string hashing
   after first touch); only strings the interner has never seen fall
   back to the string-keyed table. *)
let entry t s =
  match t.find with
  | None -> memo_entry t s
  | Some f ->
    let sid = f s in
    if sid < 0 then memo_entry t s
    else begin
      if sid >= Array.length t.by_sid then begin
        let grown = Array.make (max (sid + 1) (2 * Array.length t.by_sid)) no_entry in
        Array.blit t.by_sid 0 grown 0 (Array.length t.by_sid);
        t.by_sid <- grown
      end;
      let e = t.by_sid.(sid) in
      if e != no_entry then e
      else begin
        let e = build t s in
        t.by_sid.(sid) <- e;
        t.sid_count <- t.sid_count + 1;
        e
      end
    end

let targets t ~s ~y = (entry t s).inverse.(y)

let quorum t ~s ~x = Sampler.quorum_sx t.sampler ~s ~x

let max_load t ~s = Array.fold_left max 0 (entry t s).load

let distinct_strings t = Hashtbl.length t.memo + t.sid_count
