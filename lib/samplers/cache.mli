(** Memoized quorum evaluation.

    Protocol handlers check quorum membership (e.g. "is the sender in
    H(s, x)?") millions of times per execution, but over a small set of
    distinct keys: one (s, x) per string and node, one (x, r) per issued
    poll. Caching the quorum arrays turns each check into a d-element
    scan. Purely an evaluation cache — results are identical to calling
    {!Sampler} directly.

    Lookups avoid the per-call (s, x)/(x, r) tuple boxing of a naive
    [Hashtbl]: (s, x) keys resolve through a dense per-string row of
    per-[x] slots (allocation-free hits), and (x, r) keys become a
    single int64 — a precomputed per-[x] salt xor'd with [r] — probed
    in an open-addressing table. {!precompute_xr} additionally batches
    known poll lists into one flat [int array] (quorum [i] at offset
    [i*d]) that membership tests and iteration read in place. *)

type t

val create : ?find:(string -> int) -> ?rid_bits:int -> Sampler.t -> t
(** [find] is a non-registering string -> interned-id resolver
    (e.g. [Fba_core.Intern.find]), returning [-1] for unknown strings.
    When supplied, the dense sid-indexed rows are the primary store and
    even string-keyed lookups route through them, leaving the string
    table to hold only strings the interner has never seen; without it
    the cache behaves as before the interned-id port (string table
    primary, sid rows sharing its arrays). [rid_bits] (default 20, the
    narrow packed layout's label field) is the shift that packs
    {!quorum_rid}'s (x, rid) fallback keys — pass the run layout's
    [rid_bits] so keys cannot collide when labels outgrow 2²⁰. *)

val sampler : t -> Sampler.t

val reset : ?find:(string -> int) -> ?rid_bits:int -> t -> sampler:Sampler.t -> unit
(** Epoch reset for instance streams ({!Fba_harness.Service}): rebind
    the cache to [sampler] (the next instance's draw seed), forget
    every memoized quorum, and keep all table storage warm. [find] and
    [rid_bits] are rebound when given, kept otherwise (the common case:
    a stream over a fixed population reuses its interner in place, so
    the old resolver closure stays valid). After a reset the cache
    answers exactly as a fresh [create] over the same sampler would. *)

val quorum_sx : t -> s:string -> x:int -> int array
(** Cached {!Sampler.quorum_sx}. The returned array is shared; callers
    must not mutate it. *)

val mem_sx : t -> s:string -> x:int -> y:int -> bool

val quorum_xr : t -> x:int -> r:int64 -> int array
(** Cached {!Sampler.quorum_xr}; same sharing caveat. *)

val mem_xr : t -> x:int -> r:int64 -> y:int -> bool

(** {2 Interned-id keying}

    The packed message plane addresses strings and labels by {!Fba_core.Intern}
    ids. These entry points key the same caches by those immediates —
    [sid] lookups are two array loads (no string hashing), [(x, rid)]
    lookups probe an int-keyed table (no boxed int64 arithmetic). The
    raw [s]/[r] is consulted only on a cold key, to draw the quorum;
    results are shared with (and identical to) the string/int64 API. *)

val quorum_sid : t -> sid:int -> s:string -> x:int -> int array
(** Cached quorum for the string whose interned id is [sid]; [s] must
    be that string (read only on first touch of the id). *)

val mem_sid : t -> sid:int -> s:string -> x:int -> y:int -> bool

val pos_sid : t -> sid:int -> s:string -> x:int -> y:int -> int
(** Index of [y] in the cached quorum (draw order), or [-1] if absent.
    Positions are stable for a fixed (sid, x): handlers use them to
    record set membership as quorum-position bits instead of hashed
    node ids. Same cost as {!mem_sid} (one early-exit scan). *)

val seed_sid_row : t -> sid:int -> s:string -> x:int -> int array -> unit
(** Install a precomputed quorum into the (sid, x) slot (no-op if the
    slot is already filled). The array must equal
    [Sampler.quorum_sx (sampler t) ~s ~x] — the compile step uses this
    to donate rows it has already drawn, and ownership of the array
    transfers to the cache. *)

val quorum_rid : t -> x:int -> rid:int -> r:int64 -> int array
(** Cached J-quorum keyed by [(x, rid)]; [r] must be the label whose
    interned id is [rid] (read only on a cold key); [rid] must fit the
    cache's [rid_bits]. Hot lookups are rid-dense:
    two array loads, no hashing; a label reused across distinct
    pollers (adversarial echo) falls back to the legacy keyed table. *)

val mem_rid : t -> x:int -> rid:int -> r:int64 -> y:int -> bool

val pos_rid : t -> x:int -> rid:int -> r:int64 -> y:int -> int
(** Position analogue of {!mem_rid}; [-1] if absent. *)

val precompute_xr : t -> (int * int64) list -> unit
(** Materialize the poll lists J(x, r) for every listed (x, r) into the
    flat store, one O(d)-hash draw each; pairs already evaluated are
    skipped. Subsequent [mem_xr]/[iter_xr] on these keys read the flat
    slab without allocating. *)

val precomputed_xr : t -> int
(** Number of quorums resident in the flat store. *)

val iter_xr : t -> x:int -> r:int64 -> (int -> unit) -> unit
(** Iterate the members of J(x, r) in draw order; allocation-free on
    precomputed keys, falling back to the cached array otherwise. *)
