(** Memoized quorum evaluation.

    Protocol handlers check quorum membership (e.g. "is the sender in
    H(s, x)?") millions of times per execution, but over a small set of
    distinct keys: one (s, x) per string and node, one (x, r) per issued
    poll. Caching the quorum arrays turns each check into a d-element
    scan. Purely an evaluation cache — results are identical to calling
    {!Sampler} directly.

    Lookups avoid the per-call (s, x)/(x, r) tuple boxing of a naive
    [Hashtbl]: (s, x) keys resolve through a dense per-string row of
    per-[x] slots (allocation-free hits), and (x, r) keys become a
    single int64 — a precomputed per-[x] salt xor'd with [r] — probed
    in an open-addressing table. {!precompute_xr} additionally batches
    known poll lists into one flat [int array] (quorum [i] at offset
    [i*d]) that membership tests and iteration read in place. *)

type t

val create : Sampler.t -> t

val sampler : t -> Sampler.t

val quorum_sx : t -> s:string -> x:int -> int array
(** Cached {!Sampler.quorum_sx}. The returned array is shared; callers
    must not mutate it. *)

val mem_sx : t -> s:string -> x:int -> y:int -> bool

val quorum_xr : t -> x:int -> r:int64 -> int array
(** Cached {!Sampler.quorum_xr}; same sharing caveat. *)

val mem_xr : t -> x:int -> r:int64 -> y:int -> bool

(** {2 Interned-id keying}

    The packed message plane addresses strings and labels by {!Fba_core.Intern}
    ids. These entry points key the same caches by those immediates —
    [sid] lookups are two array loads (no string hashing), [(x, rid)]
    lookups probe an int-keyed table (no boxed int64 arithmetic). The
    raw [s]/[r] is consulted only on a cold key, to draw the quorum;
    results are shared with (and identical to) the string/int64 API. *)

val quorum_sid : t -> sid:int -> s:string -> x:int -> int array
(** Cached quorum for the string whose interned id is [sid]; [s] must
    be that string (read only on first touch of the id). *)

val mem_sid : t -> sid:int -> s:string -> x:int -> y:int -> bool

val quorum_rid : t -> x:int -> rid:int -> r:int64 -> int array
(** Cached J-quorum keyed by [(x, rid)]; [r] must be the label whose
    interned id is [rid] (read only on a cold key). Requires
    [x < 2^13] (the packed identity width). *)

val mem_rid : t -> x:int -> rid:int -> r:int64 -> y:int -> bool

val precompute_xr : t -> (int * int64) list -> unit
(** Materialize the poll lists J(x, r) for every listed (x, r) into the
    flat store, one O(d)-hash draw each; pairs already evaluated are
    skipped. Subsequent [mem_xr]/[iter_xr] on these keys read the flat
    slab without allocating. *)

val precomputed_xr : t -> int
(** Number of quorums resident in the flat store. *)

val iter_xr : t -> x:int -> r:int64 -> (int -> unit) -> unit
(** Iterate the members of J(x, r) in draw order; allocation-free on
    precomputed keys, falling back to the cached array otherwise. *)
