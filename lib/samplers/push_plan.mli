(** Inverse-sampler evaluation for the push phase (Section 3.1.1).

    During the push, a node [y] with initial candidate [s_y] sends
    [s_y] to every [x] such that [y ∈ I(s_y, x)]. Evaluating that
    inverse set naively costs O(n·d) hashes per (string, node) pair;
    since the number of *distinct* strings actually pushed is small
    (gstring plus whatever the adversary manufactures), we memoize the
    full inverse map per distinct string: one O(n·d) scan amortized
    over all its supporters.

    The same scan also yields [I(s, x)] for every x, which receivers
    need to know their majority threshold, and the overload statistics
    of Lemma 1/Lemma 3 (a node is overloaded by I if some string maps
    too many quorums through it). *)

type t

val create : ?find:(string -> int) -> sampler:Sampler.t -> unit -> t
(** [find] is a non-registering string -> interned-id resolver
    ([Fba_core.Intern.find]): with it, entries for interned strings
    memoize in a dense sid-indexed slot (no string hashing after first
    touch); strings the interner has never seen use the string-keyed
    table either way. *)

val sampler : t -> Sampler.t

val reset : ?find:(string -> int) -> t -> sampler:Sampler.t -> unit
(** Epoch reset for instance streams: rebind the plan to [sampler],
    forget every memoized inverse map, keep the dense slot array and
    the scratch slab warm. [find] is rebound when given, kept
    otherwise. Afterwards the plan answers exactly as a fresh
    [create] over the same sampler would. *)

val targets : t -> s:string -> y:int -> int array
(** [targets t ~s ~y] is [{ x | y ∈ I(s, x) }] — the nodes [y] must
    push [s] to. Memoized per [s]. *)

val quorum : t -> s:string -> x:int -> int array
(** [I(s, x)] itself (same values as {!Sampler.quorum_sx}). *)

val max_load : t -> s:string -> int
(** [max_load t ~s] is [max_y |{ x | y ∈ I(s, x) }|] — the worst
    per-node fan-out for string [s]. Lemma 1's non-overload condition
    bounds this by a constant multiple of d. *)

val distinct_strings : t -> int
(** Number of distinct strings memoized so far (diagnostics). *)
