open Fba_stdx

type t = {
  seed : int64;
  n : int;
  d : int;
  scratch : int array;  (* membership-scan prefix buffer, reused *)
}

let create ~seed ~n ~d =
  if d < 1 || d > n then invalid_arg "Sampler.create: need 1 <= d <= n";
  { seed; n; d; scratch = Array.make d (-1) }

let n t = t.n
let d t = t.d

let default_d ~n =
  let d = 4 * Intx.ceil_log2 (max 2 n) in
  Intx.clamp ~lo:1 ~hi:n d

(* The absorbed key state fully determines a quorum, so it doubles as
   the cache key ({!Cache} keys its open-addressing tables on it): even
   a state collision between distinct (s, x) pairs is harmless because
   colliding states draw identical quorums by construction. *)
let key_sx t ~s ~x =
  Hash64.add_int (Hash64.add_string (Hash64.add_int (Hash64.init t.seed) 0x53) s) x

let key_xr t ~x ~r =
  Hash64.add_int64 (Hash64.add_int (Hash64.add_int (Hash64.init t.seed) 0x4a) x) r

(* Draw the quorum for an absorbed key state into [out.(pos ..
   pos+d-1)]: counter-mode hashing with rejection of duplicates.
   Deterministic; terminates because d <= n. *)
let quorum_into t key out ~pos =
  let mem_prefix v k =
    let rec loop i = i < k && (out.(pos + i) = v || loop (i + 1)) in
    loop 0
  in
  let k = ref 0 in
  let attempt = ref 0 in
  while !k < t.d do
    let v = Hash64.to_range (Hash64.finish (Hash64.add_int key !attempt)) t.n in
    incr attempt;
    if not (mem_prefix v !k) then begin
      out.(pos + !k) <- v;
      incr k
    end
  done

let quorum_of_key t key =
  let out = Array.make t.d (-1) in
  quorum_into t key out ~pos:0;
  out

let quorum_sx t ~s ~x = quorum_of_key t (key_sx t ~s ~x)
let quorum_xr t ~x ~r = quorum_of_key t (key_xr t ~x ~r)

(* Membership without materializing the quorum: replay the counter-mode
   draw into the reusable scratch prefix and stop the moment [y] comes
   out — a value drawn at any point before the d-th distinct element is
   in the quorum by construction. On average this halves the hashing
   for members and allocates nothing either way. *)
let mem_of_key t key ~y =
  let out = t.scratch in
  let mem_prefix v k =
    let rec loop i = i < k && (out.(i) = v || loop (i + 1)) in
    loop 0
  in
  let found = ref false in
  let k = ref 0 in
  let attempt = ref 0 in
  while (not !found) && !k < t.d do
    let v = Hash64.to_range (Hash64.finish (Hash64.add_int key !attempt)) t.n in
    incr attempt;
    if not (mem_prefix v !k) then begin
      if v = y then found := true;
      out.(!k) <- v;
      incr k
    end
  done;
  !found

let mem_sx t ~s ~x ~y = mem_of_key t (key_sx t ~s ~x) ~y
let mem_xr t ~x ~r ~y = mem_of_key t (key_xr t ~x ~r) ~y

let majority_threshold k = (k / 2) + 1
