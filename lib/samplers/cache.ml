open Fba_stdx

(* Shared "not yet evaluated" sentinel for the per-string rows; compared
   physically, so a genuinely empty quorum (impossible: d >= 1) could
   never be confused with it anyway. *)
let unset : int array = [||]

type t = {
  mutable sampler : Sampler.t;
  (* Optional string -> interned-id resolver (non-registering). When
     present, the dense sid-indexed rows below are the primary store
     and the string table only holds strings the interner has never
     seen (adversary probing); without it, the string table is primary
     and [by_sid] mirrors it, as before the interned-id port. *)
  mutable find : (string -> int) option;
  (* I/H-shaped quorums for strings outside the interner (or all
     strings when [find] is absent): one dense row of per-x slots per
     string. A lookup is a string-hash plus an array index. *)
  sx : (string, int array array) Hashtbl.t;
  (* J-shaped quorums: open-addressing int64 table keyed by
     [salt.(x) lxor r]. The salt is a finished per-x hash, so keys are
     uniform; a cross-key collision needs a 64-bit birthday hit over
     the ~10^4 labels of a run (p < 1e-11), far below the sampler
     failure probabilities the simulator is already accepting. *)
  xr : int array I64_table.t;
  mutable salt : int64 array;
  (* Optional flat J-quorum store filled by [precompute_xr]: quorum i
     occupies [flat_xr.(i*d .. i*d + d - 1)]; [xr_off] maps keys to i.
     Membership tests and iteration read the slab in place. *)
  mutable flat_xr : int array;
  mutable flat_count : int;
  xr_off : int I64_table.t;
  (* Interned-id keyings. [by_sid] indexes dense rows by string id — a
     lookup is two array loads, no string hashing at all. For J-quorums
     the label id itself is the index: labels are drawn fresh per poll,
     so one rid almost always belongs to one poller [x] and
     [rid_x]/[rid_rows] resolve the quorum in two array loads with
     zero hashing; the rare adversarial reuse of a label across
     pollers falls back to [xr_rid], the legacy (x, rid)-keyed table.
     All keyings share the quorum arrays, so answers are identical
     whichever one a caller uses. *)
  mutable by_sid : int array array array;
  mutable rid_x : int array;  (* rid -> owning x, -1 = empty *)
  mutable rid_rows : int array array;
  xr_rid : (int, int array) Hashtbl.t;
  (* Width of the packed rid field: the fallback table's (x, rid) keys
     are [x lsl rid_bits lor rid], so the shift must clear the run's
     label-id range (Msg.Layout.rid_bits; 20 = the narrow default). *)
  mutable rid_bits : int;
}

let no_row : int array array = [||]

let create ?find ?(rid_bits = 20) sampler =
  {
    sampler;
    find;
    sx = Hashtbl.create 64;
    xr = I64_table.create ();
    salt = Array.init (Sampler.n sampler) (fun x -> Sampler.key_xr sampler ~x ~r:0L);
    flat_xr = [||];
    flat_count = 0;
    xr_off = I64_table.create ();
    by_sid = [||];
    rid_x = [||];
    rid_rows = [||];
    xr_rid = Hashtbl.create 64;
    rid_bits;
  }

let sampler t = t.sampler

(* Epoch reset: rebind to the next instance's sampler and drop every
   memoized quorum while keeping the tables' storage warm. The dense
   rows are refilled with their physical sentinels, so nothing a stale
   row held can be mistaken for a fresh evaluation. *)
let reset ?find ?rid_bits t ~sampler =
  t.sampler <- sampler;
  (match find with Some _ -> t.find <- find | None -> ());
  (match rid_bits with Some b -> t.rid_bits <- b | None -> ());
  let n = Sampler.n sampler in
  if Array.length t.salt <> n then
    t.salt <- Array.init n (fun x -> Sampler.key_xr sampler ~x ~r:0L)
  else
    for x = 0 to n - 1 do
      t.salt.(x) <- Sampler.key_xr sampler ~x ~r:0L
    done;
  Hashtbl.clear t.sx;
  I64_table.clear t.xr;
  t.flat_count <- 0;
  I64_table.clear t.xr_off;
  Array.fill t.by_sid 0 (Array.length t.by_sid) no_row;
  Array.fill t.rid_x 0 (Array.length t.rid_x) (-1);
  Array.fill t.rid_rows 0 (Array.length t.rid_rows) unset;
  Hashtbl.clear t.xr_rid

let key_xr t ~x ~r = Int64.logxor t.salt.(x) r

let string_row t s =
  match Hashtbl.find t.sx s with
  | row -> row
  | exception Not_found ->
    let row = Array.make (Sampler.n t.sampler) unset in
    Hashtbl.add t.sx s row;
    row

(* The sid view. With a resolver the row is allocated here (sid-primary
   store); without one it is the very same array the string table uses,
   so the two views can never disagree. [s] is only read on a cold sid
   of a resolver-less cache. *)
let row_sid t ~sid ~s =
  if sid >= Array.length t.by_sid then begin
    let grown = Array.make (max (sid + 1) (2 * Array.length t.by_sid)) no_row in
    Array.blit t.by_sid 0 grown 0 (Array.length t.by_sid);
    t.by_sid <- grown
  end;
  let r = t.by_sid.(sid) in
  if r != no_row then r
  else begin
    let r =
      match t.find with
      | Some _ -> Array.make (Sampler.n t.sampler) unset
      | None -> string_row t s
    in
    t.by_sid.(sid) <- r;
    r
  end

(* String-keyed entry point: route through the sid store whenever the
   interner knows the string, keeping the string table cold. A string
   that gets interned *after* being cached here ends up with two rows;
   both fill lazily from the same sampler, so they hold identical
   values and only duplicate storage, never answers. *)
let row t s =
  match t.find with
  | None -> string_row t s
  | Some f ->
    let sid = f s in
    if sid >= 0 then row_sid t ~sid ~s else string_row t s

let quorum_sx t ~s ~x =
  let row = row t s in
  let q = row.(x) in
  if q != unset then q
  else begin
    let q = Sampler.quorum_sx t.sampler ~s ~x in
    row.(x) <- q;
    q
  end

let quorum_xr t ~x ~r =
  let key = key_xr t ~x ~r in
  match I64_table.get t.xr key with
  | q -> q
  | exception Not_found ->
    let d = Sampler.d t.sampler in
    let q =
      match I64_table.get t.xr_off key with
      | i -> Array.sub t.flat_xr (i * d) d
      | exception Not_found -> Sampler.quorum_xr t.sampler ~x ~r
    in
    I64_table.set t.xr key q;
    q

(* Top-level recursion on purpose: an inner [let rec loop] would
   capture [a]/[y] in a fresh closure on every membership test. *)
let rec mem_scan a y i stop = i < stop && (a.(i) = y || mem_scan a y (i + 1) stop)

let mem_array a y = mem_scan a y 0 (Array.length a)

(* Position-returning scan: handlers that record set membership by
   quorum position get the index from the same walk the verification
   already pays for. *)
let rec pos_scan a y i stop =
  if i >= stop then -1 else if Array.unsafe_get a i = y then i else pos_scan a y (i + 1) stop

let pos_array a y = pos_scan a y 0 (Array.length a)

(* Membership caches the full quorum on a miss: protocol handlers test
   the same key many times, so one O(d)-hash evaluation up front beats
   repeated early-exit draws. The scan itself early-exits on [y]. *)
let mem_sx t ~s ~x ~y = mem_array (quorum_sx t ~s ~x) y

let quorum_sid t ~sid ~s ~x =
  let row = row_sid t ~sid ~s in
  let q = row.(x) in
  if q != unset then q
  else begin
    let q = Sampler.quorum_sx t.sampler ~s ~x in
    row.(x) <- q;
    q
  end

let mem_sid t ~sid ~s ~x ~y = mem_array (quorum_sid t ~sid ~s ~x) y

let pos_sid t ~sid ~s ~x ~y = pos_array (quorum_sid t ~sid ~s ~x) y

let seed_sid_row t ~sid ~s ~x q =
  let row = row_sid t ~sid ~s in
  if row.(x) == unset then row.(x) <- q

let key_rid t ~x ~rid = (x lsl t.rid_bits) lor rid

(* Legacy (x, rid)-keyed path, now only the fallback for labels reused
   across pollers (and the oracle the rid-dense index is checked
   against in tests). *)
let quorum_rid_tbl t ~x ~rid ~r =
  let key = key_rid t ~x ~rid in
  match Hashtbl.find t.xr_rid key with
  | q -> q
  | exception Not_found ->
    let q = quorum_xr t ~x ~r in
    Hashtbl.add t.xr_rid key q;
    q

let quorum_rid_slow t ~x ~rid ~r =
  if rid >= Array.length t.rid_x then begin
    let cap = max (rid + 1) (max 1024 (2 * Array.length t.rid_x)) in
    let gx = Array.make cap (-1) and gq = Array.make cap unset in
    Array.blit t.rid_x 0 gx 0 (Array.length t.rid_x);
    Array.blit t.rid_rows 0 gq 0 (Array.length t.rid_rows);
    t.rid_x <- gx;
    t.rid_rows <- gq
  end;
  if t.rid_x.(rid) = -1 then begin
    let q = quorum_xr t ~x ~r in
    t.rid_x.(rid) <- x;
    t.rid_rows.(rid) <- q;
    q
  end
  else quorum_rid_tbl t ~x ~rid ~r

let quorum_rid t ~x ~rid ~r =
  if rid < Array.length t.rid_x && Array.unsafe_get t.rid_x rid = x then
    Array.unsafe_get t.rid_rows rid
  else quorum_rid_slow t ~x ~rid ~r

let mem_rid t ~x ~rid ~r ~y = mem_array (quorum_rid t ~x ~rid ~r) y

let pos_rid t ~x ~rid ~r ~y = pos_array (quorum_rid t ~x ~rid ~r) y

let mem_flat t off ~y = mem_scan t.flat_xr y off (off + Sampler.d t.sampler)

let mem_xr t ~x ~r ~y =
  let key = key_xr t ~x ~r in
  match I64_table.get t.xr key with
  | q -> mem_array q y
  | exception Not_found -> (
    match I64_table.get t.xr_off key with
    | i -> mem_flat t (i * Sampler.d t.sampler) ~y
    | exception Not_found ->
      let q = Sampler.quorum_xr t.sampler ~x ~r in
      I64_table.set t.xr key q;
      mem_array q y)

let precompute_xr t pairs =
  let d = Sampler.d t.sampler in
  let fresh =
    List.filter
      (fun (x, r) ->
        let key = key_xr t ~x ~r in
        not (I64_table.mem t.xr_off key || I64_table.mem t.xr key))
      pairs
  in
  let need = (t.flat_count + List.length fresh) * d in
  if need > Array.length t.flat_xr then begin
    let grown = Array.make (max need (2 * Array.length t.flat_xr)) (-1) in
    Array.blit t.flat_xr 0 grown 0 (t.flat_count * d);
    t.flat_xr <- grown
  end;
  List.iter
    (fun (x, r) ->
      let key = key_xr t ~x ~r in
      (* [fresh] can list a key twice; only the first draw lands. *)
      if not (I64_table.mem t.xr_off key) then begin
        Sampler.quorum_into t.sampler (Sampler.key_xr t.sampler ~x ~r) t.flat_xr
          ~pos:(t.flat_count * d);
        I64_table.set t.xr_off key t.flat_count;
        t.flat_count <- t.flat_count + 1
      end)
    fresh

let precomputed_xr t = t.flat_count

let iter_xr t ~x ~r f =
  let key = key_xr t ~x ~r in
  match I64_table.get t.xr_off key with
  | i ->
    let d = Sampler.d t.sampler in
    let off = i * d in
    for j = off to off + d - 1 do
      f t.flat_xr.(j)
    done
  | exception Not_found -> Array.iter f (quorum_xr t ~x ~r)
