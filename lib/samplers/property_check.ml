open Fba_stdx

let has_good_majority ~good quorum =
  let good_count = Bitset.count_in good quorum in
  good_count >= Sampler.majority_threshold (Array.length quorum)

let bad_quorum_fraction sampler ~good ~s =
  let n = Sampler.n sampler in
  let bad = ref 0 in
  for x = 0 to n - 1 do
    let q = Sampler.quorum_sx sampler ~s ~x in
    if not (has_good_majority ~good q) then incr bad
  done;
  float_of_int !bad /. float_of_int n

let property1_estimate sampler ~good ~samples ~rng =
  if samples <= 0 then invalid_arg "Property_check.property1_estimate: samples <= 0";
  let n = Sampler.n sampler in
  let bad = ref 0 in
  for _ = 1 to samples do
    let x = Prng.int rng n in
    let r = Prng.int64 rng in
    let q = Sampler.quorum_xr sampler ~x ~r in
    if not (has_good_majority ~good q) then incr bad
  done;
  float_of_int !bad /. float_of_int samples

let random_string rng bits =
  Bytes.unsafe_to_string (Prng.bits rng bits)

let worst_string_search sampler ~good ~rng ~tries ~bits =
  if tries <= 0 then invalid_arg "Property_check.worst_string_search: tries <= 0";
  let best_s = ref (random_string rng bits) in
  let best_frac = ref (bad_quorum_fraction sampler ~good ~s:!best_s) in
  for _ = 2 to tries do
    let s = random_string rng bits in
    let frac = bad_quorum_fraction sampler ~good ~s in
    if frac > !best_frac then begin
      best_frac := frac;
      best_s := s
    end
  done;
  (!best_s, !best_frac)

let with_completion ~prefix ~free_bits rng =
  let b = Bytes.of_string prefix in
  let total_bits = 8 * Bytes.length b in
  let start = max 0 (total_bits - free_bits) in
  (* Randomize only the trailing free_bits. *)
  let i = ref start in
  while !i < total_bits do
    let byte = !i / 8 and bit = !i mod 8 in
    let mask = 1 lsl bit in
    let v = Char.code (Bytes.get b byte) in
    let v = if Prng.bool rng then v lor mask else v land lnot mask land 0xff in
    Bytes.set b byte (Char.chr v);
    incr i
  done;
  Bytes.unsafe_to_string b

let worst_completion_search sampler ~good ~rng ~tries ~prefix ~free_bits =
  if tries <= 0 then invalid_arg "Property_check.worst_completion_search: tries <= 0";
  let best_s = ref (with_completion ~prefix ~free_bits rng) in
  let best_frac = ref (bad_quorum_fraction sampler ~good ~s:!best_s) in
  for _ = 2 to tries do
    let s = with_completion ~prefix ~free_bits rng in
    let frac = bad_quorum_fraction sampler ~good ~s in
    if frac > !best_frac then begin
      best_frac := frac;
      best_s := s
    end
  done;
  (!best_s, !best_frac)

let overload_factor sampler ~strings =
  let plan = Push_plan.create ~sampler () in
  let worst =
    List.fold_left (fun acc s -> max acc (Push_plan.max_load plan ~s)) 0 strings
  in
  float_of_int worst /. float_of_int (Sampler.d sampler)

let seizable_fraction sampler ~s ~budget =
  let n = Sampler.n sampler in
  if budget < 0 || budget > n then invalid_arg "Property_check.seizable_fraction";
  let quorums = Array.init n (fun x -> Sampler.quorum_sx sampler ~s ~x) in
  let coverage = Array.make n 0 in
  Array.iter (Array.iter (fun y -> coverage.(y) <- coverage.(y) + 1)) quorums;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare coverage.(b) coverage.(a)) order;
  let corrupted = Bitset.create n in
  for i = 0 to budget - 1 do
    Bitset.add corrupted order.(i)
  done;
  let majority = Sampler.majority_threshold (Sampler.d sampler) in
  let seized = ref 0 in
  Array.iter (fun q -> if Bitset.count_in corrupted q >= majority then incr seized) quorums;
  float_of_int !seized /. float_of_int n
