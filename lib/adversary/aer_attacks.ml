open Fba_stdx
open Fba_core
module Envelope = Fba_sim.Envelope
module Cache = Fba_samplers.Cache
module Push_plan = Fba_samplers.Push_plan
module Packed = Msg.Packed

type sync = Aer.msg Fba_sim.Sync_engine.adversary
type async = Aer.msg Fba_sim.Async_engine.adversary

let adversary_rng (sc : Scenario.t) tag =
  let params = sc.Scenario.params in
  Prng.create
    (Hash64.finish (Hash64.add_string (Hash64.init params.Params.seed) ("adversary:" ^ tag)))

let random_string rng bits = Bytes.unsafe_to_string (Prng.bits rng bits)

let byzantine_ids (sc : Scenario.t) = Array.of_list (Bitset.to_list sc.Scenario.corrupted)

(* Injected messages live on the packed plane like everything else;
   adversarial strings/labels are registered in the run's interner at
   injection time. Adversaries are deterministic, so the registration
   order — hence every id — is too. *)
let intern_of (sc : Scenario.t) = sc.Scenario.intern
let layout_of (sc : Scenario.t) = sc.Scenario.layout

let silent (sc : Scenario.t) =
  Fba_sim.Sync_engine.null_adversary ~corrupted:sc.Scenario.corrupted

let compose (sc : Scenario.t) (attacks : sync list) =
  let corrupted = sc.Scenario.corrupted in
  List.iter
    (fun (a : sync) ->
      if a.Fba_sim.Sync_engine.corrupted != corrupted then
        invalid_arg "Aer_attacks.compose: attacks built from different scenarios")
    attacks;
  {
    Fba_sim.Sync_engine.corrupted;
    act =
      (fun ~round ~observed ->
        List.concat_map
          (fun (a : sync) -> a.Fba_sim.Sync_engine.act ~round ~observed)
          attacks);
  }

let push_flood ?(fake_strings = 3) ?(blast = false) (sc : Scenario.t) =
  if fake_strings < 1 then invalid_arg "Aer_attacks.push_flood: fake_strings < 1";
  let params = sc.Scenario.params in
  let rng = adversary_rng sc "push_flood" in
  let fakes = Array.init fake_strings (fun _ -> random_string rng params.Params.gstring_bits) in
  let plan = Push_plan.create ~sampler:(Params.sampler_i params) () in
  let byz = byzantine_ids sc in
  let act ~round ~observed:_ =
    if round <> 0 then []
    else begin
      let outs = ref [] in
      Array.iter
        (fun s ->
          let msg = Packed.push (layout_of sc) ~sid:(Intern.intern (intern_of sc) s) in
          Array.iter
            (fun y ->
              if blast then
                for x = 0 to params.Params.n - 1 do
                  outs := Envelope.make ~src:y ~dst:x msg :: !outs
                done
              else
                Array.iter
                  (fun x -> outs := Envelope.make ~src:y ~dst:x msg :: !outs)
                  (Push_plan.targets plan ~s ~y))
            byz)
        fakes;
      !outs
    end
  in
  { Fba_sim.Sync_engine.corrupted = sc.Scenario.corrupted; act }

let wrong_answer (sc : Scenario.t) =
  let lt = layout_of sc in
  let gsid = Intern.intern (intern_of sc) sc.Scenario.gstring in
  let corrupted = sc.Scenario.corrupted in
  let replied : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let act ~round:_ ~observed =
    List.filter_map
      (fun (e : Aer.msg Envelope.t) ->
        let m = e.Envelope.msg in
        let sid = Packed.sid lt m in
        if
          Packed.tag m = Packed.tag_poll
          && sid <> gsid
          && Bitset.mem corrupted e.dst
          && (not (Bitset.mem corrupted e.src))
          &&
          (* (answerer, poller, string) replied-once key, packed like
             the protocol's own tables with the run layout's widths. *)
          let key =
            (((e.dst lsl lt.Msg.Layout.id_bits) lor e.src) lsl lt.Msg.Layout.sid_bits) lor sid
          in
          not (Hashtbl.mem replied key)
          && begin
               Hashtbl.add replied key ();
               true
             end
        then Some (Envelope.make ~src:e.dst ~dst:e.src (Packed.answer lt ~sid))
        else None)
      (observed ())
  in
  { Fba_sim.Sync_engine.corrupted; act }

(* The cornering plan: spend one protocol-legitimate pull request per
   corrupted node, with a label searched so its poll list hits the
   chosen victims, exhausting their Algorithm-3 answer filter. Returns
   the envelopes to inject. *)
let cornering_plan ~labels_per_search (sc : Scenario.t) observed =
  let params = sc.Scenario.params in
  let lt = layout_of sc in
  let gstring = sc.Scenario.gstring in
  let gsid = Intern.intern (intern_of sc) gstring in
  let corrupted = sc.Scenario.corrupted in
  let qh = Cache.create (Params.sampler_h params) in
  let qj = Cache.create (Params.sampler_j params) in
  let rng = adversary_rng sc "cornering" in
  (* Rank poll-list members of the observed honest gstring polls. *)
  let freq : (int, int) Hashtbl.t = Hashtbl.create 97 in
  List.iter
    (fun (e : Aer.msg Envelope.t) ->
      if
        Packed.tag e.Envelope.msg = Packed.tag_poll
        && Packed.sid lt e.Envelope.msg = gsid
        && (not (Bitset.mem corrupted e.src))
        && not (Bitset.mem corrupted e.dst)
      then
        Hashtbl.replace freq e.dst (1 + Option.value ~default:0 (Hashtbl.find_opt freq e.dst)))
    observed;
  let byz = byzantine_ids sc in
  let cap = params.Params.pull_filter in
  let budget = Array.length byz * params.Params.d_j in
  (* A node already due to answer [freq] honest polls only needs
     [cap + 1 − freq] adversarial answer-triggers before the filter
     trips on the remaining honest ones, so the most-polled nodes are
     the cheapest victims. Spend the budget greedily on them. *)
  let ranked =
    List.sort
      (fun (_, c1) (_, c2) -> compare c2 c1)
      (Hashtbl.fold (fun w c acc -> (w, c) :: acc) freq [])
  in
  let need : (int, int ref) Hashtbl.t = Hashtbl.create 97 in
  let remaining = ref budget in
  List.iter
    (fun (w, f) ->
      let cost = max 1 (cap + 1 - f) in
      if !remaining >= cost then begin
        remaining := !remaining - cost;
        Hashtbl.add need w (ref cost)
      end)
    ranked;
  (* One searched pull request per corrupted node. Candidate labels are
     batch-drawn up front (explicit loops — the Prng sequence is pinned
     by the recorded goldens, and [Array.init] order is unspecified),
     then every candidate poll list is materialized in one
     [precompute_xr] pass so scoring and the final scans read the flat
     slab instead of allocating per-label quorum arrays. *)
  let nb = Array.length byz in
  let labels = Array.make (max 1 (nb * labels_per_search)) 0L in
  for i = 0 to (nb * labels_per_search) - 1 do
    labels.(i) <- Prng.int64 rng
  done;
  let pairs = ref [] in
  for i = nb - 1 downto 0 do
    for j = labels_per_search - 1 downto 0 do
      pairs := (byz.(i), labels.((i * labels_per_search) + j)) :: !pairs
    done
  done;
  Cache.precompute_xr qj !pairs;
  let outs = ref [] in
  Array.iteri
    (fun i a ->
      let score r =
        let acc = ref 0 in
        Cache.iter_xr qj ~x:a ~r (fun w ->
            match Hashtbl.find need w with
            | n when !n > 0 -> incr acc
            | _ | (exception Not_found) -> ());
        !acc
      in
      let base = i * labels_per_search in
      let best_r = ref labels.(base) in
      let best_score = ref (score !best_r) in
      for j = 1 to labels_per_search - 1 do
        let r = labels.(base + j) in
        let sc' = score r in
        if sc' > !best_score then begin
          best_score := sc';
          best_r := r
        end
      done;
      let r = !best_r in
      let rid = Intern.intern_label (intern_of sc) r in
      let poll_msg = Packed.poll lt ~sid:gsid ~rid in
      let pull_msg = Packed.pull lt ~sid:gsid ~rid in
      Cache.iter_xr qj ~x:a ~r (fun w ->
          (match Hashtbl.find need w with
          | n when !n > 0 -> decr n
          | _ | (exception Not_found) -> ());
          outs := Envelope.make ~src:a ~dst:w poll_msg :: !outs);
      Array.iter
        (fun y -> outs := Envelope.make ~src:a ~dst:y pull_msg :: !outs)
        (Cache.quorum_sx qh ~s:gstring ~x:a))
    byz;
  !outs

let cornering ?(labels_per_search = 64) (sc : Scenario.t) =
  let fired = ref false in
  let act ~round ~observed =
    if round = 0 && not !fired then begin
      fired := true;
      cornering_plan ~labels_per_search sc (observed ())
    end
    else []
  in
  { Fba_sim.Sync_engine.corrupted = sc.Scenario.corrupted; act }

let quorum_capture ?(victims = 4) ?strings_per_victim ?(max_tries = 400) (sc : Scenario.t) =
  let params = sc.Scenario.params in
  let n = params.Params.n in
  let corrupted = sc.Scenario.corrupted in
  let qi = Cache.create (Params.sampler_i params) in
  let rng = adversary_rng sc "quorum_capture" in
  let strings_per_victim =
    match strings_per_victim with Some k -> k | None -> max 4 (n / 8)
  in
  let maj = Params.majority_i params in
  (* Victims: the first correct identities (the choice is arbitrary —
     the point is concentration). *)
  let victim_list =
    let acc = ref [] and i = ref 0 in
    while List.length !acc < victims && !i < n do
      if not (Bitset.mem corrupted !i) then acc := !i :: !acc;
      incr i
    done;
    List.rev !acc
  in
  let fired = ref false in
  let act ~round ~observed:_ =
    if round <> 0 || !fired then []
    else begin
      fired := true;
      let outs = ref [] in
      List.iter
        (fun v ->
          let planted = ref 0 and tries = ref 0 in
          while !planted < strings_per_victim && !tries < max_tries * strings_per_victim do
            incr tries;
            let s = random_string rng params.Params.gstring_bits in
            let quorum = Cache.quorum_sx qi ~s ~x:v in
            let byz_members = Array.of_list (List.filter (Bitset.mem corrupted) (Array.to_list quorum)) in
            if Array.length byz_members >= maj then begin
              incr planted;
              let msg = Packed.push (layout_of sc) ~sid:(Intern.intern (intern_of sc) s) in
              Array.iter
                (fun y -> outs := Envelope.make ~src:y ~dst:v msg :: !outs)
                byz_members
            end
          done)
        victim_list;
      !outs
    end
  in
  { Fba_sim.Sync_engine.corrupted; act }

let async_silent (sc : Scenario.t) =
  Fba_sim.Async_engine.null_adversary ~corrupted:sc.Scenario.corrupted

let async_of_sync ?(max_delay = 4) (sc : Scenario.t) (attack : sync) =
  if max_delay < 1 then invalid_arg "Aer_attacks.async_of_sync: max_delay < 1";
  let corrupted = sc.Scenario.corrupted in
  let window : Aer.msg Envelope.t list ref = ref [] in
  (* The async observation hook is per-message (field-based); the
     lifted sync strategy wants a batch, so accumulate a window. *)
  let observe ~time:_ ~src ~dst msg = window := Envelope.make ~src ~dst msg :: !window in
  let inject ~time =
    if time mod max_delay = 0 then begin
      let observed = List.rev !window in
      window := [];
      List.map
        (fun e -> (e, 1))
        (attack.Fba_sim.Sync_engine.act ~round:(time / max_delay)
           ~observed:(fun () -> observed))
    end
    else []
  in
  {
    Fba_sim.Async_engine.corrupted;
    max_delay;
    delay = Schedulers.slow_correct ~corrupted ~max_delay;
    observe;
    inject;
  }

let async_cornering ?(max_delay = 4) ?(labels_per_search = 64) (sc : Scenario.t) =
  let base = async_of_sync ~max_delay sc (cornering ~labels_per_search sc) in
  let lt = layout_of sc in
  let corrupted = sc.Scenario.corrupted in
  (* Content-inspecting schedule: traffic serving the adversary's own
     pull chains travels at full speed, honest traffic crawls. *)
  let delay ~time:_ ~src ~dst msg =
    if Bitset.mem corrupted src || Bitset.mem corrupted dst then 1
    else begin
      let tag = Packed.tag msg in
      if (tag = Packed.tag_fw1 || tag = Packed.tag_fw2) && Bitset.mem corrupted (Packed.x lt msg)
      then 1
      else max_delay
    end
  in
  { base with Fba_sim.Async_engine.delay }
