open Fba_stdx

let unit_delay ~time:_ ~src:_ ~dst:_ _ = 1

let uniform_random ~seed ~max_delay ~time ~src ~dst _ =
  if max_delay < 1 then invalid_arg "Schedulers.uniform_random: max_delay < 1";
  let h =
    Hash64.finish (Hash64.add_int (Hash64.add_int (Hash64.add_int (Hash64.init seed) time) src) dst)
  in
  1 + Hash64.to_range h max_delay

let slow_correct ~corrupted ~max_delay ~time:_ ~src ~dst _ =
  if Bitset.mem corrupted src || Bitset.mem corrupted dst then 1 else max_delay
