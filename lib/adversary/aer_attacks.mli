(** Byzantine strategies against AER.

    Each builder returns an adversary record for the synchronous or
    asynchronous engine. The adversary is non-adaptive in the paper's
    sense (corruption is fixed by the scenario before execution) but
    has full information: it knows gstring, the sampler seeds, and —
    depending on the engine mode — the messages correct nodes are
    sending.

    The strategies implement the attacks the paper's analysis
    contemplates:
    - flooding the push phase with fake candidates (Lemmas 3–5);
    - answering polls with bogus strings to force wrong decisions
      (Lemma 7);
    - "cornering": spending the per-node answer filter of Algorithm 3
      (log² n pull requests) on targeted poll-list members so that
      honest polls stall until their answerers have decided — the
      overload chains bounded by Lemma 6 / Property 2. *)

open Fba_core

type sync = Aer.msg Fba_sim.Sync_engine.adversary
type async = Aer.msg Fba_sim.Async_engine.adversary

val silent : Scenario.t -> sync
(** Corrupted nodes send nothing at all (fail-stop). AER guarantees
    success with no Byzantine interference, so this must always
    succeed. *)

val compose : Scenario.t -> sync list -> sync
(** Run several strategies simultaneously (messages concatenated).
    All must stem from the same scenario. *)

val push_flood : ?fake_strings:int -> ?blast:bool -> Scenario.t -> sync
(** Round-0 push flooding: the coalition picks [fake_strings]
    adversarial candidates (default 3) and every corrupted node pushes
    all of them to the nodes whose push quorum it belongs to (so the
    pushes pass the membership filter and maximize the chance of
    planting fake candidates). With [blast] (default false) each
    corrupted node instead pushes to {e every} node — maximal received
    traffic, but filtered on arrival. Exercises Lemma 4's O(n) bound
    on candidate-list mass. *)

val wrong_answer : Scenario.t -> sync
(** Corrupted poll-list members answer every poll for a non-gstring
    candidate, trying to assemble a bogus answer majority (the Lemma 7
    failure mode). Strongest combined with a {!Scenario.Junk_shared}
    workload and {!push_flood}, which plant non-gstring candidates in
    correct lists. *)

val cornering : ?labels_per_search:int -> Scenario.t -> sync
(** The Lemma 6 rushing attack. In round 0 the adversary observes the
    polls correct nodes issue, ranks their poll-list members, and
    spends its budget of protocol-legitimate pull requests — one per
    corrupted node, with an adversarially searched label r so that the
    chosen victims sit in J(a, r) — to exhaust the victims' answer
    filter before honest answers are due. Victims then stay silent
    until they decide, stretching decision time. Requires the
    [`Rushing] engine mode to see round-0 polls. *)

val quorum_capture :
  ?victims:int -> ?strings_per_victim:int -> ?max_tries:int -> Scenario.t -> sync
(** The load-balance attack of Section 1 ("a Byzantine adversary can
    seize control of several Input Quorums, associated to a few nodes,
    and force these nodes to verify an almost-linear number of
    strings: as such, AER is not load-balanced"). For each victim the
    coalition searches candidate strings whose push quorum I(s, victim)
    contains a corrupted majority (feasible since the sampler is public
    — full information), then pushes them from exactly those quorum
    members; the victim must accept and verify each. Succeeds only
    when quorums are small relative to the Byzantine fraction, i.e. it
    also demonstrates why quorum sizing matters. [victims] defaults to
    4, [strings_per_victim] to n/8, [max_tries] to 400 hash searches
    per string. *)

(** {2 Asynchronous variants} *)

val async_silent : Scenario.t -> async

val async_of_sync : ?max_delay:int -> Scenario.t -> sync -> async
(** Lift a synchronous strategy: messages between correct nodes get
    [max_delay] (default 4), adversary traffic is instant, and the
    lifted strategy's [act] runs once per [max_delay] window over the
    messages observed in that window. *)

val async_cornering : ?max_delay:int -> ?labels_per_search:int -> Scenario.t -> async
(** Full asynchronous scheduling power (Lemma 6's general case): the
    cornering floods plus content-inspecting delays — messages serving
    the adversary's own pull chains travel at speed 1, honest answer
    traffic at [max_delay] (default 4). *)
