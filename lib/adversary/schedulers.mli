(** Asynchronous delivery policies.

    The asynchronous adversary's scheduling power is a delay function;
    these are the standard shapes used by the experiments. All are
    deterministic (hash-based) so executions are reproducible. Each
    matches the field-based [delay] slot of
    {!Fba_sim.Async_engine.adversary} — per-message scheduling without
    materializing an envelope. *)

val unit_delay : time:int -> src:int -> dst:int -> 'msg -> int
(** Every message takes one step (synchronous-like schedule). *)

val uniform_random : seed:int64 -> max_delay:int -> time:int -> src:int -> dst:int -> 'msg -> int
(** Delay drawn deterministically from [\[1, max_delay\]] per
    (time, src, dst) — a fair but jittery network. *)

val slow_correct :
  corrupted:Fba_stdx.Bitset.t -> max_delay:int -> time:int -> src:int -> dst:int -> 'msg -> int
(** The classic adversarial schedule: messages between correct nodes
    crawl at [max_delay], everything touching a Byzantine node is
    instant. Combined with injection this gives the adversary a
    [max_delay]-to-1 head start on every race. *)
