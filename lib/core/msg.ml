type t =
  | Push of string
  | Poll of { s : string; r : int64 }
  | Pull of { s : string; r : int64 }
  | Fw1 of { x : int; s : string; r : int64; w : int }
  | Fw2 of { x : int; s : string; r : int64 }
  | Answer of string

let bits params t =
  let id = Params.id_bits params in
  let header = 8 + (2 * id) in
  let str s = 8 * String.length s in
  let payload =
    match t with
    | Push s -> str s
    | Poll { s; _ } | Pull { s; _ } -> str s + Params.label_bits
    | Fw1 { s; _ } -> str s + Params.label_bits + (2 * id)
    | Fw2 { s; _ } -> str s + Params.label_bits + id
    | Answer s -> str s
  in
  header + payload

let pp_hex fmt s =
  String.iter (fun c -> Format.fprintf fmt "%02x" (Char.code c)) s

let pp fmt = function
  | Push s -> Format.fprintf fmt "Push(%a)" pp_hex s
  | Poll { s; r } -> Format.fprintf fmt "Poll(%a, %Ld)" pp_hex s r
  | Pull { s; r } -> Format.fprintf fmt "Pull(%a, %Ld)" pp_hex s r
  | Fw1 { x; s; r; w } -> Format.fprintf fmt "Fw1(x=%d, %a, %Ld, w=%d)" x pp_hex s r w
  | Fw2 { x; s; r } -> Format.fprintf fmt "Fw2(x=%d, %a, %Ld)" x pp_hex s r
  | Answer s -> Format.fprintf fmt "Answer(%a)" pp_hex s

type msg = t

(* The packed twin: one OCaml immediate per message, so mailboxes and
   calendar buckets hold unboxed ints and enqueue/deliver never touch
   the heap. Strings and labels are replaced by {!Intern} ids; the
   layout (LSB first)

     tag:3 | sid:13 | rid:20 | x:13 | w:13   = 62 bits

   fits a 63-bit immediate. Field widths bound a run at n <= 8192
   identities, 2^13 distinct strings and 2^20 distinct labels — all
   checked at pack time. Tag 0 is deliberately invalid so an
   uninitialized slot can never decode. *)
module Packed = struct
  type t = int

  let tag_push = 1
  let tag_poll = 2
  let tag_pull = 3
  let tag_fw1 = 4
  let tag_fw2 = 5
  let tag_answer = 6

  let tag p = p land 7
  let sid p = (p lsr 3) land 0x1FFF
  let rid p = (p lsr 16) land 0xFFFFF
  let x p = (p lsr 36) land 0x1FFF
  let w p = (p lsr 49) land 0x1FFF

  let check_sid v = if v lsr 13 <> 0 then invalid_arg "Msg.Packed: sid out of range" else v
  let check_rid v = if v lsr 20 <> 0 then invalid_arg "Msg.Packed: rid out of range" else v
  let check_id name v =
    if v lsr 13 <> 0 then invalid_arg ("Msg.Packed: " ^ name ^ " out of range") else v

  let push ~sid = tag_push lor (check_sid sid lsl 3)
  let poll ~sid ~rid = tag_poll lor (check_sid sid lsl 3) lor (check_rid rid lsl 16)
  let pull ~sid ~rid = tag_pull lor (check_sid sid lsl 3) lor (check_rid rid lsl 16)

  let fw1 ~sid ~rid ~x ~w =
    tag_fw1 lor (check_sid sid lsl 3) lor (check_rid rid lsl 16)
    lor (check_id "x" x lsl 36)
    lor (check_id "w" w lsl 49)

  let fw2 ~sid ~rid ~x =
    tag_fw2 lor (check_sid sid lsl 3) lor (check_rid rid lsl 16) lor (check_id "x" x lsl 36)

  let answer ~sid = tag_answer lor (check_sid sid lsl 3)

  let pack intern m =
    match m with
    | Push s -> push ~sid:(Intern.intern intern s)
    | Poll { s; r } -> poll ~sid:(Intern.intern intern s) ~rid:(Intern.intern_label intern r)
    | Pull { s; r } -> pull ~sid:(Intern.intern intern s) ~rid:(Intern.intern_label intern r)
    | Fw1 { x; s; r; w } ->
      fw1 ~sid:(Intern.intern intern s) ~rid:(Intern.intern_label intern r) ~x ~w
    | Fw2 { x; s; r } ->
      fw2 ~sid:(Intern.intern intern s) ~rid:(Intern.intern_label intern r) ~x
    | Answer s -> answer ~sid:(Intern.intern intern s)

  let unpack intern p =
    let s () = Intern.string intern (sid p) in
    let r () = Intern.label intern (rid p) in
    match tag p with
    | 1 -> Push (s ())
    | 2 -> Poll { s = s (); r = r () }
    | 3 -> Pull { s = s (); r = r () }
    | 4 -> Fw1 { x = x p; s = s (); r = r (); w = w p }
    | 5 -> Fw2 { x = x p; s = s (); r = r () }
    | 6 -> Answer (s ())
    | _ -> invalid_arg "Msg.Packed.unpack: invalid tag"

  (* Same accounting as [bits] above, reading field presence off the
     tag instead of the constructor — kept in exact agreement (the
     packed-codec qcheck property pins this). *)
  let bits params intern p =
    let id = Params.id_bits params in
    let header = 8 + (2 * id) in
    let str = 8 * String.length (Intern.string intern (sid p)) in
    let payload =
      match tag p with
      | 1 | 6 -> str
      | 2 | 3 -> str + Params.label_bits
      | 4 -> str + Params.label_bits + (2 * id)
      | 5 -> str + Params.label_bits + id
      | _ -> invalid_arg "Msg.Packed.bits: invalid tag"
    in
    header + payload

  let pp intern fmt p = pp fmt (unpack intern p)
end
