open Fba_stdx

type t =
  | Push of string
  | Poll of { s : string; r : int64 }
  | Pull of { s : string; r : int64 }
  | Fw1 of { x : int; s : string; r : int64; w : int }
  | Fw2 of { x : int; s : string; r : int64 }
  | Answer of string

let bits params t =
  let id = Params.id_bits params in
  let header = 8 + (2 * id) in
  let str s = 8 * String.length s in
  let payload =
    match t with
    | Push s -> str s
    | Poll { s; _ } | Pull { s; _ } -> str s + Params.label_bits
    | Fw1 { s; _ } -> str s + Params.label_bits + (2 * id)
    | Fw2 { s; _ } -> str s + Params.label_bits + id
    | Answer s -> str s
  in
  header + payload

let pp_hex fmt s =
  String.iter (fun c -> Format.fprintf fmt "%02x" (Char.code c)) s

let pp fmt = function
  | Push s -> Format.fprintf fmt "Push(%a)" pp_hex s
  | Poll { s; r } -> Format.fprintf fmt "Poll(%a, %Ld)" pp_hex s r
  | Pull { s; r } -> Format.fprintf fmt "Pull(%a, %Ld)" pp_hex s r
  | Fw1 { x; s; r; w } -> Format.fprintf fmt "Fw1(x=%d, %a, %Ld, w=%d)" x pp_hex s r w
  | Fw2 { x; s; r } -> Format.fprintf fmt "Fw2(x=%d, %a, %Ld)" x pp_hex s r
  | Answer s -> Format.fprintf fmt "Answer(%a)" pp_hex s

type msg = t

(* The field widths of the packed word, first-class. The packing order
   is fixed — [tag:3 | sid | rid | x | w], LSB first — only the widths
   move. Everything the rest of the plane needs (shifts, masks, caps,
   the position-mask multiplier) is precomputed here so the hot paths
   pay one record load where they used to pay a literal. *)
module Layout = struct
  type t = {
    sid_bits : int;
    rid_bits : int;
    id_bits : int;
    rid_shift : int;
    x_shift : int;
    w_shift : int;
    sid_mask : int;
    rid_mask : int;
    id_mask : int;
    max_n : int;  (* 2^id_bits — node ids and embedded x/w fields *)
    max_strings : int;  (* 2^sid_bits — interner string-table cap *)
    max_labels : int;  (* 2^rid_bits — interner label-table cap *)
    mask_mult : int;
        (* quorum-position bitmask key stride: smallest m with
           m * 62 >= max key component, so [key * mask_mult + pos / 62]
           never collides across keys (Aer.mask_add) *)
  }

  let total_bits t = 3 + t.sid_bits + t.rid_bits + (2 * t.id_bits)

  let make ~sid_bits ~rid_bits ~id_bits =
    if sid_bits < 1 || rid_bits < 1 || id_bits < 1 then
      invalid_arg "Msg.Layout.make: field widths must be positive";
    let total = 3 + sid_bits + rid_bits + (2 * id_bits) in
    if total > 63 then
      invalid_arg
        (Printf.sprintf
           "Msg.Layout.make: tag:3|sid:%d|rid:%d|x:%d|w:%d needs %d bits; only 63 fit an \
            OCaml immediate"
           sid_bits rid_bits id_bits id_bits total);
    {
      sid_bits;
      rid_bits;
      id_bits;
      rid_shift = 3 + sid_bits;
      x_shift = 3 + sid_bits + rid_bits;
      w_shift = 3 + sid_bits + rid_bits + id_bits;
      sid_mask = (1 lsl sid_bits) - 1;
      rid_mask = (1 lsl rid_bits) - 1;
      id_mask = (1 lsl id_bits) - 1;
      max_n = 1 lsl id_bits;
      max_strings = 1 lsl sid_bits;
      max_labels = 1 lsl rid_bits;
      mask_mult = (((1 lsl id_bits) - 1) / 62) + 1;
    }

  (* The historical single-int layout, verbatim — the fast path every
     golden and BENCH gate pins. *)
  let narrow = make ~sid_bits:13 ~rid_bits:20 ~id_bits:13

  let is_narrow t = t.sid_bits = 13 && t.rid_bits = 20 && t.id_bits = 13

  (* The wide lane: node ids get exactly what n needs (floor 14, so a
     forced-wide run at small n genuinely exercises non-narrow shifts),
     strings get ~2x headroom over the initial distinct count (room for
     adversarial registrations), and the poll-label field absorbs every
     remaining bit — labels are drawn fresh per poll, so rid is the
     field that scales with n. *)
  exception Immediate_exhausted of { n : int; id_bits : int }

  let () =
    Printexc.register_printer (function
      | Immediate_exhausted { n; id_bits } ->
        Some
          (Printf.sprintf
             "Msg.Layout.Immediate_exhausted: n=%d needs %d-bit node ids, and \
              tag:3|sid:4|rid:%d|x:%d|w:%d already fills the 63-bit immediate — no string \
              budget can help past n=262144. This is the single-int packed word's ceiling; \
              the planned 2-int lane (paired words in Stdx.Batch-style parallel lanes) \
              lifts it."
             n id_bits (id_bits + 1) id_bits id_bits)
      | _ -> None)

  let min_sid_bits = 4

  let wide_for ~n ~strings =
    if n < 1 then invalid_arg "Msg.Layout.wide_for: n must be positive";
    let id_bits = max 14 (Intx.ceil_log2 (max 2 n)) in
    (* Structural ceiling first: with even the minimal string budget,
       ids this wide leave the label field under its id_bits + 1 floor.
       No [strings] choice can fix that (it is n, not the scenario,
       that overflows the immediate), so it gets its own named error —
       distinct from the fewer-strings advice below. First breached at
       id_bits = 19, i.e. n > 2^18 = 262144. *)
    if 60 - (2 * id_bits) - min_sid_bits < id_bits + 1 then
      raise (Immediate_exhausted { n; id_bits });
    let sid_bits = max min_sid_bits (Intx.ceil_log2 (2 * (strings + 2))) in
    let rid_bits = min 30 (60 - (2 * id_bits) - sid_bits) in
    if rid_bits < id_bits + 1 then
      invalid_arg
        (Printf.sprintf
           "Msg.Layout.wide_for: n=%d with %d distinct strings needs sid:%d + x/w:%d bits, \
            leaving rid:%d < %d — the run would exhaust poll labels; use fewer distinct \
            initial strings (Scenario.Junk_shared) or a smaller n"
           n strings sid_bits id_bits rid_bits (id_bits + 1));
    make ~sid_bits ~rid_bits ~id_bits

  type choice = Auto | Narrow | Wide

  let choose choice ~n ~strings =
    match choice with
    | Narrow ->
      if n > narrow.max_n then
        invalid_arg
          (Printf.sprintf
             "Msg.Layout.choose: Narrow caps node ids at %d bits (n <= %d), got n=%d"
             narrow.id_bits narrow.max_n n)
      else if strings > narrow.max_strings then
        invalid_arg
          (Printf.sprintf
             "Msg.Layout.choose: Narrow caps distinct strings at %d, got %d"
             narrow.max_strings strings)
      else narrow
    | Wide -> wide_for ~n ~strings
    | Auto -> if n <= narrow.max_n && strings <= narrow.max_strings then narrow else wide_for ~n ~strings

  let pp fmt t =
    Format.fprintf fmt "tag:3|sid:%d|rid:%d|x:%d|w:%d (%d bits, n<=%d)" t.sid_bits t.rid_bits
      t.id_bits t.id_bits (total_bits t) t.max_n
end

(* The packed twin: one OCaml immediate per message, so mailboxes and
   calendar buckets hold unboxed ints and enqueue/deliver never touch
   the heap. Strings and labels are replaced by {!Intern} ids; the
   field widths come from the run's {!Layout} (LSB first)

     tag:3 | sid | rid | x | w

   and always fit a 63-bit immediate. All fields are checked at pack
   time against the layout's caps. Tag 0 is deliberately invalid so an
   uninitialized slot can never decode. *)
module Packed = struct
  type t = int

  let tag_push = 1
  let tag_poll = 2
  let tag_pull = 3
  let tag_fw1 = 4
  let tag_fw2 = 5
  let tag_answer = 6

  let tag p = p land 7
  let sid (lt : Layout.t) p = (p lsr 3) land lt.Layout.sid_mask
  let rid (lt : Layout.t) p = (p lsr lt.Layout.rid_shift) land lt.Layout.rid_mask
  let x (lt : Layout.t) p = (p lsr lt.Layout.x_shift) land lt.Layout.id_mask
  let w (lt : Layout.t) p = (p lsr lt.Layout.w_shift) land lt.Layout.id_mask

  (* Cold path: name the field, the value and the bound it missed —
     pulled out of the constructors so their fast path stays a shift
     and a branch. *)
  let field_overflow name v bits =
    invalid_arg
      (Printf.sprintf "Msg.Packed: %s=%d does not fit the layout's %d-bit %s field (max %d)"
         name v bits name ((1 lsl bits) - 1))

  let check_sid (lt : Layout.t) v =
    if v lsr lt.Layout.sid_bits <> 0 then field_overflow "sid" v lt.Layout.sid_bits else v

  let check_rid (lt : Layout.t) v =
    if v lsr lt.Layout.rid_bits <> 0 then field_overflow "rid" v lt.Layout.rid_bits else v

  let check_id (lt : Layout.t) name v =
    if v lsr lt.Layout.id_bits <> 0 then field_overflow name v lt.Layout.id_bits else v

  let push (lt : Layout.t) ~sid = tag_push lor (check_sid lt sid lsl 3)

  let poll (lt : Layout.t) ~sid ~rid =
    tag_poll lor (check_sid lt sid lsl 3) lor (check_rid lt rid lsl lt.Layout.rid_shift)

  let pull (lt : Layout.t) ~sid ~rid =
    tag_pull lor (check_sid lt sid lsl 3) lor (check_rid lt rid lsl lt.Layout.rid_shift)

  let fw1 (lt : Layout.t) ~sid ~rid ~x ~w =
    tag_fw1 lor (check_sid lt sid lsl 3)
    lor (check_rid lt rid lsl lt.Layout.rid_shift)
    lor (check_id lt "x" x lsl lt.Layout.x_shift)
    lor (check_id lt "w" w lsl lt.Layout.w_shift)

  let fw2 (lt : Layout.t) ~sid ~rid ~x =
    tag_fw2 lor (check_sid lt sid lsl 3)
    lor (check_rid lt rid lsl lt.Layout.rid_shift)
    lor (check_id lt "x" x lsl lt.Layout.x_shift)

  let answer (lt : Layout.t) ~sid = tag_answer lor (check_sid lt sid lsl 3)

  let pack lt intern m =
    match m with
    | Push s -> push lt ~sid:(Intern.intern intern s)
    | Poll { s; r } -> poll lt ~sid:(Intern.intern intern s) ~rid:(Intern.intern_label intern r)
    | Pull { s; r } -> pull lt ~sid:(Intern.intern intern s) ~rid:(Intern.intern_label intern r)
    | Fw1 { x; s; r; w } ->
      fw1 lt ~sid:(Intern.intern intern s) ~rid:(Intern.intern_label intern r) ~x ~w
    | Fw2 { x; s; r } ->
      fw2 lt ~sid:(Intern.intern intern s) ~rid:(Intern.intern_label intern r) ~x
    | Answer s -> answer lt ~sid:(Intern.intern intern s)

  let unpack lt intern p =
    let s () = Intern.string intern (sid lt p) in
    let r () = Intern.label intern (rid lt p) in
    match tag p with
    | 1 -> Push (s ())
    | 2 -> Poll { s = s (); r = r () }
    | 3 -> Pull { s = s (); r = r () }
    | 4 -> Fw1 { x = x lt p; s = s (); r = r (); w = w lt p }
    | 5 -> Fw2 { x = x lt p; s = s (); r = r () }
    | 6 -> Answer (s ())
    | _ -> invalid_arg "Msg.Packed.unpack: invalid tag"

  (* Same accounting as [bits] above, reading field presence off the
     tag instead of the constructor — kept in exact agreement (the
     packed-codec qcheck property pins this). *)
  let bits lt params intern p =
    let id = Params.id_bits params in
    let header = 8 + (2 * id) in
    let str = 8 * String.length (Intern.string intern (sid lt p)) in
    let payload =
      match tag p with
      | 1 | 6 -> str
      | 2 | 3 -> str + Params.label_bits
      | 4 -> str + Params.label_bits + (2 * id)
      | 5 -> str + Params.label_bits + id
      | _ -> invalid_arg "Msg.Packed.bits: invalid tag"
    in
    header + payload

  let pp lt intern fmt p = pp fmt (unpack lt intern p)
end
