open Fba_stdx
module Cache = Fba_samplers.Cache
module Sampler = Fba_samplers.Sampler

(* The compile step: everything about a run that is fixed once the
   scenario exists — who pushes to whom, what each packed tag costs on
   the wire — lowered into flat arrays before the first round, so the
   delivery path reads them with plain loads instead of re-deriving
   them through hash tables. The lazy caches stay behind it as the
   fallback for anything runtime-dependent (poll labels, adversarial
   strings) and as the oracle the parity tests compare against. *)

(* CSR slabs spill to int32 Bigarrays above [big_threshold] nodes: at
   n >= 65536 the edge array alone is tens of MB of boxed-free ints,
   and halving it keeps per-node state cache-resident. The slabs are
   only read during [init] (one pass per run), so the Int32 boxing a
   Bigarray load implies never touches a delivery hot path — which is
   also why none of the per-message tables use Bigarray. *)
type slab =
  | Heap of int array
  | Big of (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

let big_threshold = 65536

let slab_get s i =
  match s with
  | Heap a -> Array.unsafe_get a i
  | Big b -> Int32.to_int (Bigarray.Array1.unsafe_get b i)

let slab_of_array big a =
  if not big then Heap a
  else begin
    let b = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (Array.length a) in
    Array.iteri (fun i v -> Bigarray.Array1.unsafe_set b i (Int32.of_int v)) a;
    Big b
  end

type t = {
  n : int;
  intern : Intern.t;
  sid_mask : int;  (* the scenario layout's sid extraction mask *)
  (* Push fan-out in CSR form: node y sends its initial candidate to
     [push_tgt.(push_off.(y) .. push_off.(y+1) - 1)], targets in
     ascending order — exactly [Push_plan.targets], precomputed for
     every correct node in one pass per distinct initial string. *)
  push_off : slab;  (* length n + 1 *)
  push_tgt : slab;
  (* Wire-size tables: [bits m = tag_fixed.(tag m) + str_bits.(sid m)].
     [tag_fixed] folds the header and every non-string payload field
     (already constant per tag); [str_bits] is the 8*length of each
     interned string, extended on demand for strings interned after
     compilation (adversarial payloads). -1 marks invalid/unfilled. *)
  tag_fixed : int array;  (* 8 slots, indexed by packed tag *)
  mutable str_bits : int array;
}

let n t = t.n

(* [Intern.find] on every initial candidate: Scenario.make seeds the
   interner with gstring and all initials, so a miss is a caller error
   (a scenario this config does not belong to). *)
let sid_of intern s =
  let sid = Intern.find intern s in
  if sid < 0 then invalid_arg "Compiled.build: initial candidate not interned";
  sid

(* Reusable build scratch: an instance stream compiles thousands of
   scenarios over one population, and every [build] otherwise pays a
   fresh set of O(n)-sized working arrays plus the CSR output slabs.
   The builder owns them all; arrays are grown on demand and re-zeroed
   per build, so a build through a warm builder allocates only the
   donated cache rows and the result record. The CSR slabs of the
   returned [t] alias the builder (heap path), so at most one [t] per
   builder is live — the next build overwrites the previous one's
   tables. *)
type builder = {
  mutable b_node_sid : int array;
  mutable b_group_count : int array;
  mutable b_scratch : int array;
  mutable b_is_supp : Bytes.t;
  b_edge_y : int Vec.t;
  b_edge_x : int Vec.t;
  mutable b_push_off : int array;
  mutable b_push_tgt : int array;
  mutable b_next : int array;
  mutable b_str_bits : int array;
}

let builder () =
  {
    b_node_sid = [||];
    b_group_count = [||];
    b_scratch = [||];
    b_is_supp = Bytes.empty;
    b_edge_y = Vec.create ();
    b_edge_x = Vec.create ();
    b_push_off = [||];
    b_push_tgt = [||];
    b_next = [||];
    b_str_bits = [||];
  }

let ensure_int a len fill =
  if Array.length a >= len then begin
    Array.fill a 0 len fill;
    a
  end
  else Array.make (max len (2 * Array.length a)) fill

let build ?builder:b ~(scenario : Scenario.t) ~(qi : Cache.t) () =
  let params = scenario.Scenario.params in
  let n = params.Params.n in
  let intern = scenario.Scenario.intern in
  let si = Cache.sampler qi in
  let d = Sampler.d si in
  (* Group correct nodes by initial sid (counting sort, sids are dense). *)
  let nsid = Intern.string_count intern in
  let node_sid, group_count =
    match b with
    | None -> (Array.make n (-1), Array.make nsid 0)
    | Some b ->
      b.b_node_sid <- ensure_int b.b_node_sid n (-1);
      b.b_group_count <- ensure_int b.b_group_count nsid 0;
      (b.b_node_sid, b.b_group_count)
  in
  for id = 0 to n - 1 do
    if Scenario.is_correct scenario id then begin
      let sid = sid_of intern scenario.Scenario.initial.(id) in
      node_sid.(id) <- sid;
      group_count.(sid) <- group_count.(sid) + 1
    end
  done;
  (* One pass per distinct pushed string: draw I(s, x) for every x
     once into a reused scratch row, collect (supporter -> x) edges,
     and donate rows that will be consulted at delivery time (those
     with at least one supporter) to the lazy cache, so the push
     phase's membership tests start warm without a single runtime
     draw. Rows nobody pushes through are dropped — precomputing every
     (sid, x) row would cost O(#strings * n * d) space for entries the
     run never touches. *)
  let scratch, is_supp, edge_y, edge_x =
    match b with
    | None -> (Array.make d 0, Bytes.make n '\000', Vec.create (), Vec.create ())
    | Some b ->
      b.b_scratch <- ensure_int b.b_scratch d 0;
      if Bytes.length b.b_is_supp < n then b.b_is_supp <- Bytes.make n '\000'
      else Bytes.fill b.b_is_supp 0 n '\000';
      Vec.clear b.b_edge_y;
      Vec.clear b.b_edge_x;
      (b.b_scratch, b.b_is_supp, b.b_edge_y, b.b_edge_x)
  in
  for sid = 0 to nsid - 1 do
    if group_count.(sid) > 0 then begin
      let s = Intern.string intern sid in
      for id = 0 to n - 1 do
        if node_sid.(id) = sid then Bytes.set is_supp id '\001'
      done;
      for x = 0 to n - 1 do
        Sampler.quorum_into si (Sampler.key_sx si ~s ~x) scratch ~pos:0;
        let any = ref false in
        for j = 0 to d - 1 do
          let y = Array.unsafe_get scratch j in
          if Bytes.get is_supp y <> '\000' then begin
            Vec.push edge_y y;
            Vec.push edge_x x;
            any := true
          end
        done;
        if !any then Cache.seed_sid_row qi ~sid ~s ~x (Array.sub scratch 0 d)
      done;
      Bytes.fill is_supp 0 n '\000'
    end
  done;
  (* Counting sort of the edges by source node. Each y belongs to one
     sid group and its x loop ran ascending, so the stable fill keeps
     targets in ascending order per y — the order Push_plan produces. *)
  let push_off =
    match b with
    | None -> Array.make (n + 1) 0
    | Some b ->
      b.b_push_off <- ensure_int b.b_push_off (n + 1) 0;
      b.b_push_off
  in
  for i = 0 to Vec.length edge_y - 1 do
    let y = Vec.get edge_y i in
    push_off.(y + 1) <- push_off.(y + 1) + 1
  done;
  for y = 0 to n - 1 do
    push_off.(y + 1) <- push_off.(y + 1) + push_off.(y)
  done;
  let push_tgt =
    match b with
    | None -> Array.make (Vec.length edge_x) 0
    | Some b ->
      b.b_push_tgt <- ensure_int b.b_push_tgt (Vec.length edge_x) 0;
      b.b_push_tgt
  in
  let next =
    match b with
    | None -> Array.copy push_off
    | Some b ->
      b.b_next <- ensure_int b.b_next (n + 1) 0;
      Array.blit push_off 0 b.b_next 0 (n + 1);
      b.b_next
  in
  for i = 0 to Vec.length edge_y - 1 do
    let y = Vec.get edge_y i in
    push_tgt.(next.(y)) <- Vec.get edge_x i;
    next.(y) <- next.(y) + 1
  done;
  (* Wire-size tables (mirrors Msg.bits / Msg.Packed.bits exactly;
     the parity suite pins the agreement). *)
  let id_bits = Params.id_bits params in
  let header = 8 + (2 * id_bits) in
  let tag_fixed = Array.make 8 (-1) in
  tag_fixed.(Msg.Packed.tag_push) <- header;
  tag_fixed.(Msg.Packed.tag_answer) <- header;
  tag_fixed.(Msg.Packed.tag_poll) <- header + Params.label_bits;
  tag_fixed.(Msg.Packed.tag_pull) <- header + Params.label_bits;
  tag_fixed.(Msg.Packed.tag_fw1) <- header + Params.label_bits + (2 * id_bits);
  tag_fixed.(Msg.Packed.tag_fw2) <- header + Params.label_bits + id_bits;
  let str_bits =
    match b with
    | None -> Array.init nsid (fun sid -> 8 * String.length (Intern.string intern sid))
    | Some b ->
      (* Whole-array wipe, not just [0..nsid): a stale length from a
         previous epoch sitting beyond this epoch's sid range would be
         served by [bits] without consulting the interner. *)
      if Array.length b.b_str_bits < nsid then
        b.b_str_bits <- Array.make (max nsid (2 * Array.length b.b_str_bits)) (-1)
      else Array.fill b.b_str_bits 0 (Array.length b.b_str_bits) (-1);
      for sid = 0 to nsid - 1 do
        b.b_str_bits.(sid) <- 8 * String.length (Intern.string intern sid)
      done;
      b.b_str_bits
  in
  let big = n >= big_threshold in
  {
    n;
    intern;
    sid_mask = scenario.Scenario.layout.Msg.Layout.sid_mask;
    push_off = slab_of_array big push_off;
    push_tgt = slab_of_array big push_tgt;
    tag_fixed;
    str_bits;
  }

let push_start t ~y = slab_get t.push_off y
let push_stop t ~y = slab_get t.push_off (y + 1)
let push_target t i = slab_get t.push_tgt i

let push_targets t ~y =
  let lo = slab_get t.push_off y and hi = slab_get t.push_off (y + 1) in
  Array.init (hi - lo) (fun i -> slab_get t.push_tgt (lo + i))

(* Cold path of [bits]: a string interned after compilation (packed by
   an adversary mid-run). Memoized like every other sid. *)
let str_bits_slow t sid =
  let len = Array.length t.str_bits in
  if sid >= len then begin
    let grown = Array.make (max (sid + 1) ((2 * len) + 1)) (-1) in
    Array.blit t.str_bits 0 grown 0 len;
    t.str_bits <- grown
  end;
  let v = 8 * String.length (Intern.string t.intern sid) in
  t.str_bits.(sid) <- v;
  v

let bits t p =
  let fixed = Array.unsafe_get t.tag_fixed (p land 7) in
  if fixed < 0 then invalid_arg "Compiled.bits: invalid tag";
  let sid = (p lsr 3) land t.sid_mask in
  let sb = if sid < Array.length t.str_bits then Array.unsafe_get t.str_bits sid else -1 in
  if sb >= 0 then fixed + sb else fixed + str_bits_slow t sid
