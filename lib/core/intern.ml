open Fba_stdx

(* Capacity limits come from the packed message layout (Msg.Packed):
   string ids ride in a 13-bit field, label ids in a 20-bit field. *)
let max_strings = 1 lsl 13
let max_labels = 1 lsl 20

type t = {
  by_string : (string, int) Hashtbl.t;
  strings : string Vec.t;
  by_label : int I64_table.t;
  labels : int64 Vec.t;
}

let create () =
  {
    by_string = Hashtbl.create 64;
    strings = Vec.create ();
    by_label = I64_table.create ();
    labels = Vec.create ();
  }

let string_count t = Vec.length t.strings
let label_count t = Vec.length t.labels

let intern t s =
  match Hashtbl.find t.by_string s with
  | sid -> sid
  | exception Not_found ->
    let sid = Vec.length t.strings in
    if sid >= max_strings then
      failwith "Intern.intern: string table full (packed sid field is 13 bits)";
    Hashtbl.add t.by_string s sid;
    Vec.push t.strings s;
    sid

let find t s = match Hashtbl.find t.by_string s with sid -> sid | exception Not_found -> -1

let string t sid = Vec.get t.strings sid

let intern_label t r =
  match I64_table.get t.by_label r with
  | rid -> rid
  | exception Not_found ->
    let rid = Vec.length t.labels in
    if rid >= max_labels then
      failwith "Intern.intern_label: label table full (packed rid field is 20 bits)";
    I64_table.set t.by_label r rid;
    Vec.push t.labels r;
    rid

let label t rid = Vec.get t.labels rid
