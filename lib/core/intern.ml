open Fba_stdx

(* Default capacity limits — the narrow packed layout's field widths
   (Msg.Layout.narrow: 13-bit sid, 20-bit rid). Wide-layout scenarios
   create their interner with the caps of their own layout. *)
let max_strings = 1 lsl 13
let max_labels = 1 lsl 20

type t = {
  by_string : (string, int) Hashtbl.t;
  strings : string Vec.t;
  by_label : int I64_table.t;
  labels : int64 Vec.t;
  mutable string_cap : int;
  mutable label_cap : int;
}

let create ?(max_strings = max_strings) ?(max_labels = max_labels) () =
  {
    by_string = Hashtbl.create 64;
    strings = Vec.create ();
    by_label = I64_table.create ();
    labels = Vec.create ();
    string_cap = max_strings;
    label_cap = max_labels;
  }

let string_cap t = t.string_cap
let label_cap t = t.label_cap

(* Epoch reset: forget every registration but keep the hash buckets
   and vector storage warm, so the next run interns into memory this
   one already paid for. Caps may be rebound when the next scenario
   uses a different packed layout. *)
let reset ?max_strings ?max_labels t =
  Hashtbl.clear t.by_string;
  Vec.clear t.strings;
  I64_table.clear t.by_label;
  Vec.clear t.labels;
  (match max_strings with Some c -> t.string_cap <- c | None -> ());
  (match max_labels with Some c -> t.label_cap <- c | None -> ())

let string_count t = Vec.length t.strings
let label_count t = Vec.length t.labels

let intern t s =
  match Hashtbl.find t.by_string s with
  | sid -> sid
  | exception Not_found ->
    let sid = Vec.length t.strings in
    if sid >= t.string_cap then
      failwith
        (Printf.sprintf
           "Intern.intern: string table full (the layout's sid field caps a run at %d \
            distinct strings)"
           t.string_cap);
    Hashtbl.add t.by_string s sid;
    Vec.push t.strings s;
    sid

let find t s = match Hashtbl.find t.by_string s with sid -> sid | exception Not_found -> -1

let string t sid = Vec.get t.strings sid

let intern_label t r =
  match I64_table.get t.by_label r with
  | rid -> rid
  | exception Not_found ->
    let rid = Vec.length t.labels in
    if rid >= t.label_cap then
      failwith
        (Printf.sprintf
           "Intern.intern_label: label table full (the layout's rid field caps a run at %d \
            distinct labels)"
           t.label_cap);
    I64_table.set t.by_label r rid;
    Vec.push t.labels r;
    rid

let label t rid = Vec.get t.labels rid
