(** AER wire messages (Section 3.1, Algorithms 1–3).

    The pull phase routes a request from the requester [x] through its
    Pull Quorum H(s, x), then through the Pull Quorums H(s, w) of every
    poll-list member w ∈ J(x, r), and back:

    {v
    x --Poll(s,r)--> J(x,r)                        (direct, authoritative)
    x --Pull(s,r)--> H(s,x)                        (proxies)
    y ∈ H(s,x) --Fw1(x,s,r,w)--> H(s,w)            (first forwarding hop)
    z ∈ H(s,w) --Fw2(x,s,r)--> w                   (majority-filtered)
    w --Answer(s)--> x                             (if Polled and majority)
    v} *)

type t =
  | Push of string  (** push-phase diffusion of a candidate *)
  | Poll of { s : string; r : int64 }
  | Pull of { s : string; r : int64 }
  | Fw1 of { x : int; s : string; r : int64; w : int }
  | Fw2 of { x : int; s : string; r : int64 }
  | Answer of string

val bits : Params.t -> t -> int
(** Wire size in bits: an 8-bit tag, source and destination headers of
    ⌈log₂ n⌉ bits each, plus the payload (strings cost 8 bits per
    byte, labels {!Params.label_bits}, embedded identities ⌈log₂ n⌉).
    Wire accounting is a property of [params], not of the packed
    {!Layout} — forcing the wide layout never changes measured bits. *)

val pp : Format.formatter -> t -> unit

type msg = t
(** Alias so {!Packed} (whose own [t] is [int]) can name the variant. *)

(** First-class field widths for the packed plane. The packing order is
    fixed ([tag:3 | sid | rid | x | w], LSB first); a layout chooses
    the widths and precomputes every shift, mask and capacity the hot
    paths need. {!narrow} is the historical
    [tag:3|sid:13|rid:20|x:13|w:13] layout, kept verbatim as the fast
    path for n ≤ 8192; {!wide_for} computes a layout for larger
    populations from [n] and the number of distinct initial strings.
    A layout belongs to a {!Scenario.t} and must be used consistently
    for every word of a run. *)
module Layout : sig
  type t = private {
    sid_bits : int;  (** string-id field width *)
    rid_bits : int;  (** poll-label-id field width *)
    id_bits : int;  (** node-id field width (the x and w fields) *)
    rid_shift : int;
    x_shift : int;
    w_shift : int;
    sid_mask : int;
    rid_mask : int;
    id_mask : int;
    max_n : int;  (** [2^id_bits] — the population the layout can address *)
    max_strings : int;  (** [2^sid_bits] — interner string-table cap *)
    max_labels : int;  (** [2^rid_bits] — interner label-table cap *)
    mask_mult : int;
        (** key stride for quorum-position bitmasks: the smallest [m]
            with [m * 62 >= max_n - 1], so
            [key * mask_mult + pos / 62] never collides across keys
            for any quorum degree d ≤ n ≤ [max_n] *)
  }

  val make : sid_bits:int -> rid_bits:int -> id_bits:int -> t
  (** Raises [Invalid_argument] when the fields plus the 3-bit tag
      exceed the 63 bits of an OCaml immediate. *)

  val narrow : t
  (** [tag:3|sid:13|rid:20|x:13|w:13] — 62 bits, n ≤ 8192. *)

  val is_narrow : t -> bool

  exception Immediate_exhausted of { n : int; id_bits : int }
  (** The single-int packed word's structural ceiling: [n] needs
      [id_bits]-bit node ids, and even with the minimal string budget
      the 63-bit immediate cannot hold [tag:3|sid|rid|x|w] with the
      label field at its [id_bits + 1] floor. First raised past
      n = 2{^18} = 262144. No scenario change helps — lifting it needs
      the planned 2-int lane (paired words in [Stdx.Batch]-style
      parallel lanes). A printer is registered. *)

  val wide_for : n:int -> strings:int -> t
  (** Layout for a population of [n] nodes whose scenario starts with
      [strings] distinct candidate strings: node ids get
      [max 14 ⌈log₂ n⌉] bits, strings roughly 2× headroom over
      [strings], and the label field every remaining bit. Raises
      {!Immediate_exhausted} when no string budget could fit the widths
      into 63 bits (n > 262144), and [Invalid_argument] (naming the
      starved field, advising fewer distinct strings) when only the
      scenario's string count overflows — e.g. n = 262144 with hundreds
      of distinct strings; {!Scenario.Junk_shared} keeps such runs
      feasible. *)

  type choice = Auto | Narrow | Wide

  val choose : choice -> n:int -> strings:int -> t
  (** [Auto] picks {!narrow} whenever it fits ([n] and [strings] within
      its caps) and {!wide_for} above that; [Narrow]/[Wide] force one
      lane, raising [Invalid_argument] if [Narrow] cannot address the
      population. *)

  val total_bits : t -> int

  val pp : Format.formatter -> t -> unit
end

(** The packed twin: one message as one OCaml immediate int, with
    strings and labels replaced by {!Intern} ids. Field widths come
    from the run's {!Layout}; every function below must be given the
    layout the word was packed with. The codec to and from the variant
    is exact, and {!Packed.bits} agrees with {!bits} on every message,
    so wire accounting is unchanged on the packed plane. *)
module Packed : sig
  type t = int

  val tag_push : int
  val tag_poll : int
  val tag_pull : int
  val tag_fw1 : int
  val tag_fw2 : int
  val tag_answer : int

  val tag : t -> int
  (** The tag field lives in the low 3 bits under every layout, so it
      needs no layout argument. *)

  val sid : Layout.t -> t -> int
  val rid : Layout.t -> t -> int
  val x : Layout.t -> t -> int
  val w : Layout.t -> t -> int

  val push : Layout.t -> sid:int -> t
  val poll : Layout.t -> sid:int -> rid:int -> t
  val pull : Layout.t -> sid:int -> rid:int -> t
  val fw1 : Layout.t -> sid:int -> rid:int -> x:int -> w:int -> t
  val fw2 : Layout.t -> sid:int -> rid:int -> x:int -> t
  val answer : Layout.t -> sid:int -> t
  (** Direct constructors; raise [Invalid_argument] on a field that
      does not fit its packed width, naming the overflowing field, its
      value and the layout's bound. *)

  val pack : Layout.t -> Intern.t -> msg -> t
  (** Intern the payloads and pack. *)

  val unpack : Layout.t -> Intern.t -> t -> msg
  (** Exact inverse of {!pack} (for interned ids that exist). *)

  val bits : Layout.t -> Params.t -> Intern.t -> t -> int
  (** Equals [bits params (unpack layout intern p)] without unpacking. *)

  val pp : Layout.t -> Intern.t -> Format.formatter -> t -> unit
  (** Renders exactly as {!pp} renders the unpacked message. *)
end
