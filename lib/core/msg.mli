(** AER wire messages (Section 3.1, Algorithms 1–3).

    The pull phase routes a request from the requester [x] through its
    Pull Quorum H(s, x), then through the Pull Quorums H(s, w) of every
    poll-list member w ∈ J(x, r), and back:

    {v
    x --Poll(s,r)--> J(x,r)                        (direct, authoritative)
    x --Pull(s,r)--> H(s,x)                        (proxies)
    y ∈ H(s,x) --Fw1(x,s,r,w)--> H(s,w)            (first forwarding hop)
    z ∈ H(s,w) --Fw2(x,s,r)--> w                   (majority-filtered)
    w --Answer(s)--> x                             (if Polled and majority)
    v} *)

type t =
  | Push of string  (** push-phase diffusion of a candidate *)
  | Poll of { s : string; r : int64 }
  | Pull of { s : string; r : int64 }
  | Fw1 of { x : int; s : string; r : int64; w : int }
  | Fw2 of { x : int; s : string; r : int64 }
  | Answer of string

val bits : Params.t -> t -> int
(** Wire size in bits: an 8-bit tag, source and destination headers of
    ⌈log₂ n⌉ bits each, plus the payload (strings cost 8 bits per
    byte, labels {!Params.label_bits}, embedded identities ⌈log₂ n⌉). *)

val pp : Format.formatter -> t -> unit

type msg = t
(** Alias so {!Packed} (whose own [t] is [int]) can name the variant. *)

(** The packed twin: one message as one OCaml immediate int, with
    strings and labels replaced by {!Intern} ids. Layout (LSB first):
    [tag:3 | sid:13 | rid:20 | x:13 | w:13] — 62 bits. The codec to
    and from the variant is exact, and {!Packed.bits} agrees with
    {!bits} on every message, so wire accounting is unchanged on the
    packed plane. Field widths bound a run at n ≤ 8192. *)
module Packed : sig
  type t = int

  val tag_push : int
  val tag_poll : int
  val tag_pull : int
  val tag_fw1 : int
  val tag_fw2 : int
  val tag_answer : int

  val tag : t -> int
  val sid : t -> int
  val rid : t -> int
  val x : t -> int
  val w : t -> int

  val push : sid:int -> t
  val poll : sid:int -> rid:int -> t
  val pull : sid:int -> rid:int -> t
  val fw1 : sid:int -> rid:int -> x:int -> w:int -> t
  val fw2 : sid:int -> rid:int -> x:int -> t
  val answer : sid:int -> t
  (** Direct constructors; raise [Invalid_argument] on a field that
      does not fit its packed width. *)

  val pack : Intern.t -> msg -> t
  (** Intern the payloads and pack. *)

  val unpack : Intern.t -> t -> msg
  (** Exact inverse of {!pack} (for interned ids that exist). *)

  val bits : Params.t -> Intern.t -> t -> int
  (** Equals [bits params (unpack intern p)] without unpacking. *)

  val pp : Intern.t -> Format.formatter -> t -> unit
  (** Renders exactly as {!pp} renders the unpacked message. *)
end

