(** Workload construction for AER executions.

    A scenario fixes everything the protocol's precondition (Section
    3.1) speaks about: which identities the (non-adaptive) adversary
    corrupted, which correct nodes already know gstring, what the
    remaining correct nodes hold instead, and gstring itself. The
    adversary corrupts before the execution starts, as in [LSP82]. *)

open Fba_stdx

type junk =
  | Junk_default  (** all ignorant nodes hold the same all-zero string *)
  | Junk_unique  (** each ignorant node holds a distinct random string *)
  | Junk_shared of int
      (** ignorant nodes share [k] adversary-chosen strings round-robin —
          the hardest case for the push filter, since shared junk
          accumulates supporters *)

type t = private {
  params : Params.t;
  gstring : string;
  corrupted : Bitset.t;
  knowledgeable : Bitset.t;  (** correct nodes holding gstring initially *)
  initial : string array;  (** initial candidate of every node *)
  layout : Msg.Layout.t;
      (** the run's packed field widths, chosen from [params.n] and the
          distinct initial strings ({!Msg.Layout.choose}); every packed
          word of the run uses it *)
  intern : Intern.t;
      (** the run's string/label interner, pre-seeded with [gstring]
          and every initial candidate (in index order) so packed ids
          are stable; its table caps are the layout's field capacities *)
}

val make :
  ?junk:junk ->
  ?gstring:string ->
  ?layout:Msg.Layout.choice ->
  ?intern:Intern.t ->
  params:Params.t ->
  rng:Prng.t ->
  byzantine_fraction:float ->
  knowledgeable_fraction:float ->
  unit ->
  t
(** Corrupts [⌊byzantine_fraction·n⌋] uniformly random identities and
    marks [⌈knowledgeable_fraction·n⌉] uniformly random *correct* nodes
    as knowing gstring. The paper requires
    [byzantine_fraction < 1/3 − ε] and
    [knowledgeable_fraction > 1/2 + ε]; violations raise
    [Invalid_argument] (so do fractions that cannot be realized, e.g.
    more knowledgeable nodes than correct ones). [gstring] defaults to
    a fresh uniformly random string of [params.gstring_bits] bits;
    [junk] defaults to {!Junk_unique}. [layout] defaults to
    {!Msg.Layout.Auto} — the narrow fast path whenever it fits — unless
    the [FBA_WIDE] environment variable is set (non-empty, not "0"),
    which flips the default to {!Msg.Layout.Wide} for A/B parity runs.
    [intern] hands back a previous run's interner for epoch reuse: it
    is {!Intern.reset} to the new layout's caps and re-seeded in
    place, so the scenario's id assignment is identical to a fresh
    interner's while its table storage stays warm. *)

val of_assignment :
  ?layout:Msg.Layout.choice ->
  params:Params.t ->
  gstring:string ->
  corrupted:Bitset.t ->
  initial:string array ->
  unit ->
  t
(** Build a scenario from an explicit initial-candidate assignment —
    used to hand the output of an almost-everywhere agreement phase to
    AER (the BA composition). [knowledgeable] is derived as the correct
    nodes whose entry equals [gstring]. Raises [Invalid_argument] on
    size mismatches; the (1/2+ε) precondition is {e not} enforced here
    (an execution may legitimately be run on inputs that violate it to
    observe the failure). *)

val knowledgeable_fraction : t -> float
(** |knowledgeable| / n. *)

val correct_count : t -> int

val is_correct : t -> int -> bool

val knows_gstring : t -> int -> bool
(** True for correct nodes whose initial candidate is gstring. *)
