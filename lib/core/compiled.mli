(** The scenario compiler: lower a run's static structure into flat
    per-node dispatch tables.

    Samplers, quorum memberships and the wire-format accounting are
    all fixed the moment the scenario exists; the delivery path used
    to re-derive them through lazy hash tables anyway. {!build} runs
    once per execution (the engines call {!Fba_sim.Protocol.S.compile}
    before [init]) and produces:

    - the push fan-out in CSR form — per-node edge arrays holding
      exactly {!Fba_samplers.Push_plan.targets} for every correct
      node, built in one flat pass per distinct initial string;
    - warm push-quorum rows: every [I(s, x)] row the push phase will
      consult is drawn during the build and donated to the lazy cache
      ({!Fba_samplers.Cache.seed_sid_row}), so delivery-time
      membership tests are pure array walks;
    - wire-size tables — [bits] becomes two array loads instead of a
      per-message [ceil_log2] and string-length computation.

    The lazy caches remain the fallback for runtime-dependent keys
    (poll labels, adversarial strings) and the oracle the parity tests
    compare against. Compilation never touches the interner and draws
    only quorums the dynamic path would draw anyway, so a compiled run
    is byte-identical to an uncompiled one. *)

type t

type builder
(** Reusable build scratch for instance streams: owns every working
    array and the CSR output slabs, grown on demand and re-zeroed per
    build. At most one {!t} built through a given builder is live at a
    time — the next build overwrites the previous result's tables. *)

val builder : unit -> builder

val build : ?builder:builder -> scenario:Scenario.t -> qi:Fba_samplers.Cache.t -> unit -> t
(** Lower [scenario]. [qi] must be the run's push-quorum cache (its
    sampler is the build's row source and it receives the warm rows).
    With [builder], the build reuses the builder's arrays instead of
    allocating fresh ones (see {!builder} for the aliasing contract). *)

val n : t -> int

val push_start : t -> y:int -> int
val push_stop : t -> y:int -> int

val push_target : t -> int -> int
(** [push_target t i] for [push_start <= i < push_stop] walks node
    [y]'s push targets in ascending order. *)

val push_targets : t -> y:int -> int array
(** Fresh array of node [y]'s targets (tests and diagnostics; the hot
    path iterates the CSR in place). *)

val bits : t -> Msg.Packed.t -> int
(** Wire size of a packed message — agrees exactly with
    {!Msg.Packed.bits} (and so with {!Msg.bits}); strings interned
    after compilation are measured and memoized on first sight. *)
