open Fba_stdx
module Aeba = Fba_aeba.Aeba
module Aeba_engine = Fba_sim.Sync_engine.Make (Aeba)
module Aer_engine = Fba_sim.Sync_engine.Make (Aer)

type result = {
  metrics : Fba_sim.Metrics.t;
  aeba_metrics : Fba_sim.Metrics.t;
  aer_metrics : Fba_sim.Metrics.t;
  outputs : string option array;
  gstring : string option;
  agreed : int;
  correct : int;
  ae_fraction : float;
  all_decided : bool;
}

let sample_corruption ~n ~seed ~byzantine_fraction =
  let rng = Prng.create (Hash64.finish (Hash64.add_string (Hash64.init seed) "corruption")) in
  let t = int_of_float (byzantine_fraction *. float_of_int n) in
  Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k:t)

type phase1 = {
  p1_corrupted : Bitset.t;
  p1_outputs : string option array;
  p1_reference : string option;
  p1_metrics : Fba_sim.Metrics.t;
  p1_ae_fraction : float;
}

let run_phase1 ?(mode = `Rushing) ?aeba_adversary ?events ~n ~seed ~byzantine_fraction () =
  let corrupted = sample_corruption ~n ~seed ~byzantine_fraction in
  let acfg = Aeba.make_config ?events ~n ~seed ~byzantine_fraction () in
  let a_adv =
    match aeba_adversary with
    | Some build -> build corrupted
    | None -> Fba_sim.Sync_engine.null_adversary ~corrupted
  in
  let res =
    Aeba_engine.run ?events ~config:acfg ~n ~seed ~adversary:a_adv ~mode
      ~max_rounds:(Aeba.total_rounds acfg + 2) ()
  in
  let mask = Array.init n (fun i -> not (Bitset.mem corrupted i)) in
  let reference = Aeba.reference_string res.Fba_sim.Sync_engine.outputs mask in
  let ae_count =
    match reference with
    | None -> 0
    | Some r ->
      let c = ref 0 in
      Array.iteri (fun i o -> if mask.(i) && o = Some r then incr c) res.Fba_sim.Sync_engine.outputs;
      !c
  in
  {
    p1_corrupted = corrupted;
    p1_outputs = res.Fba_sim.Sync_engine.outputs;
    p1_reference = reference;
    p1_metrics = res.Fba_sim.Sync_engine.metrics;
    p1_ae_fraction = float_of_int ae_count /. float_of_int n;
  }

let run_sync ?(mode = `Rushing) ?aeba_adversary ?aer_adversary ?per_run_miss ?events ~n ~seed
    ~byzantine_fraction () =
  let phase1 = run_phase1 ~mode ?aeba_adversary ?events ~n ~seed ~byzantine_fraction () in
  let corrupted = phase1.p1_corrupted in
  let mask = Array.init n (fun i -> not (Bitset.mem corrupted i)) in
  let reference = phase1.p1_reference in
  let correct = n - Bitset.cardinal corrupted in
  let ae_fraction = phase1.p1_ae_fraction in
  match reference with
  | Some gstring when ae_fraction > 0.5 ->
    (* Phase 2: AER extends gstring from almost-everywhere to
       everywhere. Undecided phase-1 stragglers start from a unique
       junk candidate, as the AER precondition allows. *)
    let params =
      Params.make_for ?per_run_miss
        ~gstring_bits:(8 * String.length gstring)
        ~n
        ~seed:(Hash64.finish (Hash64.add_string (Hash64.init seed) "aer"))
        ~byzantine_fraction:(max 0.01 byzantine_fraction)
        ~knowledgeable_fraction:ae_fraction ()
    in
    let initial =
      Array.init n (fun i ->
          match phase1.p1_outputs.(i) with
          | Some v -> v
          | None -> Printf.sprintf "straggler-%d" i)
    in
    let scenario = Scenario.of_assignment ~params ~gstring ~corrupted ~initial () in
    let cfg = Aer.config_of_scenario ?events scenario in
    let aer_adv =
      match aer_adversary with
      | Some build -> build scenario
      | None -> Fba_sim.Sync_engine.null_adversary ~corrupted
    in
    let phase2 =
      Aer_engine.run ?events ~config:cfg ~n ~seed:params.Params.seed ~adversary:aer_adv ~mode
        ~max_rounds:(100 + Params.(params.n)) ()
    in
    let agreed =
      let c = ref 0 in
      Array.iteri
        (fun i o -> if mask.(i) && o = Some gstring then incr c)
        phase2.Fba_sim.Sync_engine.outputs;
      !c
    in
    {
      metrics =
        Fba_sim.Metrics.merge_phases phase1.p1_metrics
          phase2.Fba_sim.Sync_engine.metrics;
      aeba_metrics = phase1.p1_metrics;
      aer_metrics = phase2.Fba_sim.Sync_engine.metrics;
      outputs = phase2.Fba_sim.Sync_engine.outputs;
      gstring = Some gstring;
      agreed;
      correct;
      ae_fraction;
      all_decided = phase2.Fba_sim.Sync_engine.all_decided;
    }
  | _ ->
    (* Phase 1 failed to establish a majority: report the failure. *)
    {
      metrics = phase1.p1_metrics;
      aeba_metrics = phase1.p1_metrics;
      aer_metrics = phase1.p1_metrics;
      outputs = Array.make n None;
      gstring = reference;
      agreed = 0;
      correct;
      ae_fraction;
      all_decided = false;
    }
