(** Per-run interning of candidate strings and poll labels.

    The packed message plane ({!Msg.Packed}) carries small integer ids
    instead of heap payloads: every candidate string and every 64-bit
    poll label a run touches is registered here exactly once, in a
    deterministic (single-threaded) order, and resolved back when a
    human-readable rendering or a sampler draw needs the raw value.

    An interner belongs to one {!Scenario.t} (multicore sweeps build
    one scenario — hence one interner — per grid cell, so no table is
    ever shared across domains). Registration is idempotent: replaying
    the same run against a warm interner reassigns identical ids. *)

type t

val create : unit -> t

val max_strings : int
(** 2¹³ — the packed sid field width. *)

val max_labels : int
(** 2²⁰ — the packed rid field width. *)

val intern : t -> string -> int
(** Id of the string, registering it first if unseen. Raises [Failure]
    beyond {!max_strings} distinct strings. *)

val find : t -> string -> int
(** Id of the string, or [-1] if it was never registered. *)

val string : t -> int -> string
(** Inverse of {!intern}; the returned string is shared, not copied. *)

val string_count : t -> int

val intern_label : t -> int64 -> int
(** Id of the label, registering it first if unseen. Raises [Failure]
    beyond {!max_labels} distinct labels. *)

val label : t -> int -> int64
(** Inverse of {!intern_label}; the returned box is shared. *)

val label_count : t -> int
