(** Per-run interning of candidate strings and poll labels.

    The packed message plane ({!Msg.Packed}) carries small integer ids
    instead of heap payloads: every candidate string and every 64-bit
    poll label a run touches is registered here exactly once, in a
    deterministic (single-threaded) order, and resolved back when a
    human-readable rendering or a sampler draw needs the raw value.

    An interner belongs to one {!Scenario.t} (multicore sweeps build
    one scenario — hence one interner — per grid cell, so no table is
    ever shared across domains). Registration is idempotent: replaying
    the same run against a warm interner reassigns identical ids.

    Table capacities mirror the scenario's packed {!Msg.Layout}: an id
    must fit its field. {!create}'s defaults are the narrow layout's
    caps; wide-layout scenarios pass their own. *)

type t

val create : ?max_strings:int -> ?max_labels:int -> unit -> t
(** Caps default to {!max_strings} and {!max_labels} (the narrow
    layout's field widths). *)

val max_strings : int
(** 2¹³ — the narrow layout's sid field width (default string cap). *)

val max_labels : int
(** 2²⁰ — the narrow layout's rid field width (default label cap). *)

val string_cap : t -> int
val label_cap : t -> int

val reset : ?max_strings:int -> ?max_labels:int -> t -> unit
(** Epoch reset: forget every registered string and label while
    keeping the underlying tables' storage warm, so a long-lived
    instance stream ({!Fba_harness.Service}) re-interns into memory
    the previous instance already paid for. Ids restart at 0; caps are
    rebound when the optional arguments are given (a stream switching
    packed layouts) and kept otherwise. *)

val intern : t -> string -> int
(** Id of the string, registering it first if unseen. Raises [Failure]
    beyond {!string_cap} distinct strings. *)

val find : t -> string -> int
(** Id of the string, or [-1] if it was never registered. *)

val string : t -> int -> string
(** Inverse of {!intern}; the returned string is shared, not copied. *)

val string_count : t -> int

val intern_label : t -> int64 -> int
(** Id of the label, registering it first if unseen. Raises [Failure]
    beyond {!label_cap} distinct labels. *)

val label : t -> int -> int64
(** Inverse of {!intern_label}; the returned box is shared. *)

val label_count : t -> int
