open Fba_stdx
module Cache = Fba_samplers.Cache
module Push_plan = Fba_samplers.Push_plan
module Packed = Msg.Packed

type config = {
  params : Params.t;
  scenario : Scenario.t;
  layout : Msg.Layout.t;  (* the scenario's packed field widths *)
  intern : Intern.t;  (* the scenario's string/label interner *)
  qi : Cache.t;  (* push quorums I *)
  qh : Cache.t;  (* pull quorums H *)
  qj : Cache.t;  (* poll lists J *)
  plan : Push_plan.t;  (* inverse of I, for the push fan-out *)
  strict_drop : bool;  (* drop belief-mismatched messages instead of buffering *)
  events : Fba_sim.Events.sink option;  (* phase-marker sink, observation only *)
  compile : bool;  (* lower the scenario at run start (Compiled) *)
  mutable compiled : Compiled.t option;  (* built by [compile], at most once *)
  builder : Compiled.builder option;  (* reusable compile scratch (instance streams) *)
}

(* FBA_NO_COMPILE flips the default off everywhere at once — the
   ci-level A/B switch that needs no per-experiment plumbing. *)
let compile_default () = Sys.getenv_opt "FBA_NO_COMPILE" = None

let config_of_scenario ?(strict_drop = false) ?events ?compile ?builder (scenario : Scenario.t) =
  let params = scenario.Scenario.params in
  let layout = scenario.Scenario.layout in
  let intern = scenario.Scenario.intern in
  let find s = Intern.find intern s in
  let rid_bits = layout.Msg.Layout.rid_bits in
  let si = Params.sampler_i params in
  {
    params;
    scenario;
    layout;
    intern;
    qi = Cache.create ~find si;
    qh = Cache.create ~find (Params.sampler_h params);
    qj = Cache.create ~find ~rid_bits (Params.sampler_j params);
    plan = Push_plan.create ~find ~sampler:si ();
    strict_drop;
    events;
    compile = (match compile with Some b -> b | None -> compile_default ());
    compiled = None;
    builder;
  }

(* Epoch reuse for instance streams: a config for [scenario] whose
   quorum caches, push plan and compile scratch are the previous
   epoch's, reset in place — so instance k+1 evaluates into storage
   instance k already paid for. [scenario] must share the previous
   scenario's interner value ({!Scenario.make}'s [?intern]); the
   caches' resolver closures are rebound regardless. Behaviour is
   identical to a fresh [config_of_scenario] on the same scenario. *)
let config_epoch ~prev (scenario : Scenario.t) =
  let params = scenario.Scenario.params in
  let layout = scenario.Scenario.layout in
  let intern = scenario.Scenario.intern in
  let find s = Intern.find intern s in
  let rid_bits = layout.Msg.Layout.rid_bits in
  let si = Params.sampler_i params in
  Cache.reset ~find prev.qi ~sampler:si;
  Cache.reset ~find prev.qh ~sampler:(Params.sampler_h params);
  Cache.reset ~find ~rid_bits prev.qj ~sampler:(Params.sampler_j params);
  Push_plan.reset ~find prev.plan ~sampler:si;
  {
    params;
    scenario;
    layout;
    intern;
    qi = prev.qi;
    qh = prev.qh;
    qj = prev.qj;
    plan = prev.plan;
    strict_drop = prev.strict_drop;
    events = prev.events;
    compile = prev.compile;
    compiled = None;
    builder = (match prev.builder with Some _ as b -> b | None -> Some (Compiled.builder ()));
  }

let config_params c = c.params
let config_scenario c = c.scenario
let config_layout c = c.layout
let config_intern c = c.intern
let config_compiled c = c.compiled

(* The engines call this once per run, before [init]. Idempotent, and
   inert unless the config opted in; behaviour is identical either way
   (the parity suite and the determinism goldens pin it), only the
   lookup machinery changes. *)
let compile cfg =
  if cfg.compile && cfg.compiled = None then
    cfg.compiled <- Some (Compiled.build ?builder:cfg.builder ~scenario:cfg.scenario ~qi:cfg.qi ())

(* Messages live on the packed plane: one immediate int each (Msg.Packed
   layout), with candidate strings and poll labels carried as interner
   ids. Handlers never materialize the variant form. *)
type msg = Packed.t

let pack cfg m = Packed.pack cfg.layout cfg.intern m
let unpack cfg p = Packed.unpack cfg.layout cfg.intern p

(* Small imperative helpers over Hashtbl-as-set (poll answers only —
   everything else lives in Int_table / position masks below). *)
let set () : (int, unit) Hashtbl.t = Hashtbl.create 8

let set_add tbl v =
  if Hashtbl.mem tbl v then false
  else begin
    Hashtbl.add tbl v ();
    true
  end

let set_card = Hashtbl.length

(* The historical tables were keyed by (x, s) or (s, x) tuples; with
   both coordinates now small ints the pair packs into one immediate
   key, so every probe is hash-of-int with no per-lookup boxing. The
   shifts are the run layout's field widths — wide layouts widen the
   keys along with the wire words. *)
let key_xs (lt : Msg.Layout.t) ~x ~sid = (x lsl lt.Msg.Layout.sid_bits) lor sid
let key_sx (lt : Msg.Layout.t) ~sid ~x = (sid lsl lt.Msg.Layout.id_bits) lor x

(* Quorum-position sets: a member is identified by its index in the
   fixed quorum the verifying scan just walked (Cache.pos_sid), so
   presence is one bit of a 62-bit mask at key [key * mult + pos / 62]
   — [mult] is the layout's [mask_mult], the smallest stride clearing
   [(max_n - 1) / 62], so slots never collide across keys for any
   d <= n <= max_n — and cardinality lives in a parallel counter
   table. Returns the new cardinality, or -1 if the member was already
   present — a single table probe either way, no hashing of node ids
   and no per-element storage. *)
let mask_add masks counts ~mult ~key ~pos =
  if Int_table.add_bit masks ((key * mult) + (pos / 62)) ~bit:(pos mod 62) then
    Int_table.incr counts key
  else -1

(* An outstanding poll of Algorithm 1, with the optional re-poll
   extension state (Params.max_poll_attempts). *)
type poll = {
  mutable p_rid : int;  (* interner id of the current label *)
  mutable p_answers : (int, unit) Hashtbl.t;
  mutable p_attempts : int;
  mutable p_issued : int;  (* round of the last (re-)issue *)
}

type state = {
  ctx : Fba_sim.Ctx.t;
  intern : Intern.t;  (* shared with the config; here so accessors resolve ids *)
  mutable cur_round : int;  (* last round seen, for phase-marker stamps *)
  mutable belief : int;  (* s_this, as an interned id *)
  mutable decided_sid : int;  (* -1 while undecided *)
  candidates : Int_table.t;  (* L_x: presence keyed by sid *)
  push_masks : Int_table.t;  (* distinct senders ∈ I(s, this), keyed sid *)
  push_counts : Int_table.t;
  polls : (int, poll) Hashtbl.t;
  pull_labels : Int_table.t;  (* presence: (key_xs lsl 20) lor rid *)
  pull_counts : Int_table.t;
      (* Pull dedup: label ids already routed per (x, s); capped at
         max_poll_attempts to bound the Fw1 amplification *)
  fw1_targets : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (* Algorithm 2 second handler, per (s, x): verified w ↦ label id.
         Stays a Hashtbl: its iteration order fixes the serve-all Fw2
         burst's wire order, which the determinism goldens pin. *)
  f1s_masks : Int_table.t;  (* distinct y ∈ H(s,x) seen, keyed key_sx *)
  f1s_counts : Int_table.t;
  f1_served : Int_table.t;  (* presence: (key_sx lsl 13) lor w *)
  fw2_masks : Int_table.t;  (* distinct z ∈ H(s,this), keyed key_sx *)
  fw2_counts : Int_table.t;
  polled : Int_table.t;  (* Algorithm 3's Polled set: presence, key_xs *)
  answer_counts : Int_table.t;  (* Count_s, keyed sid *)
  answered : Int_table.t;  (* presence: key_xs *)
  muted : int Vec.t;  (* answer-ready (s, x) keys gated by the filter *)
  deferred_src : int Vec.t;  (* belief-mismatched messages, parallel lanes *)
  deferred_msg : int Vec.t;
  scratch_w : int Vec.t;  (* reusable buffers for the Fw1 serve-all burst *)
  scratch_rid : int Vec.t;
  mutable push_sent : int;
  mutable answers_emitted : int;
}

let name = "aer"

(* Message kind -> protocol phase, for Events.Phase_acc. *)
let phase_of_kind = function
  | "Push" -> "push"
  | "Poll" | "Pull" | "Answer" -> "poll"
  | "Fw1" -> "fw1"
  | "Fw2" -> "fw2"
  | kind -> kind

(* Announce a phase transition (first activation only; Events.phase
   dedups). Pure observation: never changes protocol behaviour. *)
let mark cfg st name =
  match cfg.events with
  | None -> ()
  | Some k -> Fba_sim.Events.phase k ~round:st.cur_round name

(* Phase-indexed dispatch table (compiled path): packed tag -> handler,
   one indexed load instead of the per-message tag comparison chain.
   Declared ahead of the handler recursion and filled right after it;
   tags 0 and 7 keep the failing stub. *)
type handler = config -> state -> emit:(int -> Packed.t -> unit) -> src:int -> Packed.t -> unit

let invalid_packed : handler =
 fun _ _ ~emit:_ ~src:_ _ -> invalid_arg "Aer: invalid packed message"

let handler_table : handler array = Array.make 8 invalid_packed

(* Algorithm 1: poll a fresh random sample and the pull quorum for s.
   Handlers push outgoing messages through [emit] instead of returning
   lists; emission order is exactly the order the historical list API
   delivered, so schedules are byte-identical. *)
let issue_poll ?(round = 0) cfg st ~emit sid =
  mark cfg st "poll";
  let id = st.ctx.Fba_sim.Ctx.id in
  let r = Prng.int64 st.ctx.Fba_sim.Ctx.rng in
  let rid = Intern.intern_label cfg.intern r in
  (match Hashtbl.find st.polls sid with
  | p ->
    p.p_rid <- rid;
    p.p_answers <- set ();
    p.p_attempts <- p.p_attempts + 1;
    p.p_issued <- round
  | exception Not_found ->
    Hashtbl.replace st.polls sid { p_rid = rid; p_answers = set (); p_attempts = 1; p_issued = round });
  let poll_msg = Packed.poll cfg.layout ~sid ~rid in
  let pull_msg = Packed.pull cfg.layout ~sid ~rid in
  let qj = Cache.quorum_rid cfg.qj ~x:id ~rid ~r in
  for i = 0 to Array.length qj - 1 do
    emit qj.(i) poll_msg
  done;
  let qh = Cache.quorum_sid cfg.qh ~sid ~s:(Intern.string cfg.intern sid) ~x:id in
  for i = 0 to Array.length qh - 1 do
    emit qh.(i) pull_msg
  done

(* Algorithm 3's answer emission, gated by the log² n filter: an
   overloaded node waits until it has decided before answering more. *)
let try_answer cfg st ~emit sid x =
  let lt = cfg.layout in
  if
    Int_table.mem st.polled (key_xs lt ~x ~sid)
    && (not (Int_table.mem st.answered (key_xs lt ~x ~sid)))
    && Int_table.get_or st.fw2_counts (key_sx lt ~sid ~x) ~default:0
       >= Params.majority_h cfg.params
  then begin
    let cnt = Int_table.get_or st.answer_counts sid ~default:0 in
    if st.decided_sid >= 0 || cnt < cfg.params.Params.pull_filter then begin
      Int_table.set st.answer_counts sid (cnt + 1);
      ignore (Int_table.add st.answered (key_xs lt ~x ~sid));
      st.answers_emitted <- st.answers_emitted + 1;
      emit x (Packed.answer lt ~sid)
    end
    else Vec.push st.muted (key_sx lt ~sid ~x)
  end

(* Push phase acceptance: s enters L_x on a strict majority of I(s, x). *)
let rec handle_push cfg st ~emit ~src sid =
  if st.decided_sid >= 0 || Int_table.mem st.candidates sid then ()
  else begin
    let id = st.ctx.Fba_sim.Ctx.id in
    let pos = Cache.pos_sid cfg.qi ~sid ~s:(Intern.string cfg.intern sid) ~x:id ~y:src in
    if pos >= 0 then begin
      let c =
        mask_add st.push_masks st.push_counts ~mult:cfg.layout.Msg.Layout.mask_mult ~key:sid ~pos
      in
      if c >= Params.majority_i cfg.params then begin
        ignore (Int_table.add st.candidates sid);
        issue_poll cfg st ~emit sid
      end
    end
  end

and handle_poll cfg st ~emit ~src p =
  let lt = cfg.layout in
  let sid = Packed.sid lt p and rid = Packed.rid lt p in
  let id = st.ctx.Fba_sim.Ctx.id in
  if Cache.mem_rid cfg.qj ~x:src ~rid ~r:(Intern.label cfg.intern rid) ~y:id then begin
    ignore (Int_table.add st.polled (key_xs lt ~x:src ~sid));
    (* The Fw2 majority may already be in (asynchronous reordering):
       Algorithm 3's Poll handler answers immediately in that case. *)
    try_answer cfg st ~emit sid src
  end

and handle_pull cfg st ~emit ~src p =
  let lt = cfg.layout in
  let sid = Packed.sid lt p in
  if sid <> st.belief then defer cfg st ~src p
  else begin
    let rid = Packed.rid lt p in
    let key = key_xs lt ~x:src ~sid in
    let lkey = (key lsl lt.Msg.Layout.rid_bits) lor rid in
    if
      Int_table.mem st.pull_labels lkey
      || Int_table.get_or st.pull_counts key ~default:0 >= cfg.params.Params.max_poll_attempts
    then ()
    else begin
      ignore (Int_table.add st.pull_labels lkey);
      ignore (Int_table.incr st.pull_counts key);
      let id = st.ctx.Fba_sim.Ctx.id in
      let s = Intern.string cfg.intern sid in
      if Cache.mem_sid cfg.qh ~sid ~s ~x:src ~y:id then begin
        (* Algorithm 2, first handler: fan the request out to the pull
           quorums of every poll-list member. The historical code consed
           (w ascending, z ascending) and returned the reversed list, so
           we emit w descending, z descending — the same wire order. *)
        mark cfg st "fw1";
        let r = Intern.label cfg.intern rid in
        let qj = Cache.quorum_rid cfg.qj ~x:src ~rid ~r in
        for wi = Array.length qj - 1 downto 0 do
          let w = qj.(wi) in
          let m = Packed.fw1 lt ~sid ~rid ~x:src ~w in
          let zq = Cache.quorum_sid cfg.qh ~sid ~s ~x:w in
          for zi = Array.length zq - 1 downto 0 do
            emit zq.(zi) m
          done
        done
      end
    end
  end

and handle_fw1 cfg st ~emit ~src p =
  let lt = cfg.layout in
  let sid = Packed.sid lt p in
  if sid <> st.belief then defer cfg st ~src p
  else begin
    let rid = Packed.rid lt p and x = Packed.x lt p and w = Packed.w lt p in
    let id = st.ctx.Fba_sim.Ctx.id in
    let s = Intern.string cfg.intern sid in
    if Cache.mem_sid cfg.qh ~sid ~s ~x:w ~y:id then begin
      (* The sender verification returns src's position in H(s, x) —
         the index the sender-set bitmask is keyed by. *)
      let spos = Cache.pos_sid cfg.qh ~sid ~s ~x ~y:src in
      if spos >= 0 && Cache.mem_rid cfg.qj ~x ~rid ~r:(Intern.label cfg.intern rid) ~y:w
      then begin
        let tkey = key_sx lt ~sid ~x in
        let targets =
          match Hashtbl.find st.fw1_targets tkey with
          | t -> t
          | exception Not_found ->
            let t = Hashtbl.create 8 in
            Hashtbl.add st.fw1_targets tkey t;
            t
        in
        if not (Hashtbl.mem targets w) then Hashtbl.add targets w rid;
        let c_new =
          mask_add st.f1s_masks st.f1s_counts ~mult:lt.Msg.Layout.mask_mult ~key:tkey ~pos:spos
        in
        let newly = c_new >= 0 in
        let c = if newly then c_new else Int_table.get_or st.f1s_counts tkey ~default:0 in
        let maj = Params.majority_h cfg.params in
        if c >= maj then begin
          mark cfg st "fw2";
          if newly && c = maj then begin
            (* Majority just reached: serve every verified target once.
               The historical Hashtbl.fold consed as it visited, so the
               wire order is the reverse of visit order — collect into
               the scratch lanes, then emit back-to-front. *)
            Vec.clear st.scratch_w;
            Vec.clear st.scratch_rid;
            Hashtbl.iter
              (fun w rid ->
                if Int_table.add st.f1_served ((tkey lsl lt.Msg.Layout.id_bits) lor w) then begin
                  Vec.push st.scratch_w w;
                  Vec.push st.scratch_rid rid
                end)
              targets;
            for i = Vec.length st.scratch_w - 1 downto 0 do
              emit (Vec.get st.scratch_w i)
                (Packed.fw2 lt ~sid ~rid:(Vec.get st.scratch_rid i) ~x)
            done
          end
          else if Int_table.add st.f1_served ((tkey lsl lt.Msg.Layout.id_bits) lor w) then
            emit w (Packed.fw2 lt ~sid ~rid ~x)
        end
      end
    end
  end

and handle_fw2 cfg st ~emit ~src p =
  let lt = cfg.layout in
  let sid = Packed.sid lt p in
  if sid <> st.belief then defer cfg st ~src p
  else begin
    let rid = Packed.rid lt p and x = Packed.x lt p in
    let id = st.ctx.Fba_sim.Ctx.id in
    if Cache.mem_rid cfg.qj ~x ~rid ~r:(Intern.label cfg.intern rid) ~y:id then begin
      let spos = Cache.pos_sid cfg.qh ~sid ~s:(Intern.string cfg.intern sid) ~x:id ~y:src in
      if spos >= 0 then begin
        let c =
          mask_add st.fw2_masks st.fw2_counts ~mult:lt.Msg.Layout.mask_mult
            ~key:(key_sx lt ~sid ~x) ~pos:spos
        in
        if c >= 0 then try_answer cfg st ~emit sid x
      end
    end
  end

and handle_answer cfg st ~emit ~src sid =
  if st.decided_sid >= 0 then ()
  else begin
    match Hashtbl.find st.polls sid with
    | exception Not_found -> ()
    | p ->
      let id = st.ctx.Fba_sim.Ctx.id in
      if
        Cache.mem_rid cfg.qj ~x:id ~rid:p.p_rid ~r:(Intern.label cfg.intern p.p_rid) ~y:src
        && set_add p.p_answers src
        && set_card p.p_answers >= Params.majority_j cfg.params
      then decide cfg st ~emit sid
  end

(* Decision: fix the belief, then replay buffered traffic that now
   matches it and release answers the overload filter was holding.
   Handlers cannot append to either backlog once decided_sid is set, so
   iterating the live lanes (chronological order) is a snapshot. *)
and decide cfg st ~emit sid =
  let lt = cfg.layout in
  st.decided_sid <- sid;
  st.belief <- sid;
  for i = 0 to Vec.length st.deferred_msg - 1 do
    let m = Vec.get st.deferred_msg i in
    (* Only Pull/Fw1/Fw2 are ever deferred; replay the ones matching
       the decided string, drop the rest. *)
    if Packed.sid lt m = sid then dispatch cfg st ~emit ~src:(Vec.get st.deferred_src i) m
  done;
  for i = 0 to Vec.length st.muted - 1 do
    (* muted holds key_sx-packed (s, x) pairs; split on the layout. *)
    let k = Vec.get st.muted i in
    if k lsr lt.Msg.Layout.id_bits = sid then
      try_answer cfg st ~emit sid (k land lt.Msg.Layout.id_mask)
  done;
  Vec.reset st.muted;
  (* Eviction: every reader of these rows is gated on decided_sid < 0
     (handle_push for the push accumulators; handle_answer / on_round /
     issue_poll for the outstanding polls — issue_poll is only reachable
     through the other two once candidates stop being added), so after
     the replay above none of them can be referenced again no matter
     what the calendar still holds in flight. Dropping their storage —
     not just their lengths — bounds per-node state after decision by
     the serve-side tables that must stay live (pull/fw1/fw2), which is
     what keeps decided nodes cheap while stragglers catch up. *)
  Int_table.reset st.push_masks;
  Int_table.reset st.push_counts;
  Hashtbl.reset st.polls;
  Vec.reset st.deferred_src;
  Vec.reset st.deferred_msg

and defer cfg st ~src m =
  (* DESIGN.md substitution 6: the paper's pseudo-code drops these;
     buffering + replay is equivalent under asynchrony and avoids
     starving late deciders under a synchronous schedule. strict_drop
     restores the literal behaviour for the ablation. *)
  if (not cfg.strict_drop) && st.decided_sid < 0 then begin
    Vec.push st.deferred_src src;
    Vec.push st.deferred_msg m
  end

and dispatch cfg st ~emit ~src p =
  match cfg.compiled with
  | Some _ ->
    (* Compiled: tag-indexed jump (tag <= 7, table has 8 slots). *)
    (Array.unsafe_get handler_table (Packed.tag p)) cfg st ~emit ~src p
  | None ->
    let tag = Packed.tag p in
    if tag = Packed.tag_push then handle_push cfg st ~emit ~src (Packed.sid cfg.layout p)
    else if tag = Packed.tag_poll then handle_poll cfg st ~emit ~src p
    else if tag = Packed.tag_pull then handle_pull cfg st ~emit ~src p
    else if tag = Packed.tag_fw1 then handle_fw1 cfg st ~emit ~src p
    else if tag = Packed.tag_fw2 then handle_fw2 cfg st ~emit ~src p
    else if tag = Packed.tag_answer then handle_answer cfg st ~emit ~src (Packed.sid cfg.layout p)
    else invalid_arg "Aer: invalid packed message"

let () =
  handler_table.(Packed.tag_push) <-
    (fun cfg st ~emit ~src p -> handle_push cfg st ~emit ~src (Packed.sid cfg.layout p));
  handler_table.(Packed.tag_poll) <- handle_poll;
  handler_table.(Packed.tag_pull) <- handle_pull;
  handler_table.(Packed.tag_fw1) <- handle_fw1;
  handler_table.(Packed.tag_fw2) <- handle_fw2;
  handler_table.(Packed.tag_answer) <-
    (fun cfg st ~emit ~src p -> handle_answer cfg st ~emit ~src (Packed.sid cfg.layout p))

let init cfg ctx =
  let id = ctx.Fba_sim.Ctx.id in
  let s0 = cfg.scenario.Scenario.initial.(id) in
  let sid0 = Intern.intern cfg.intern s0 in
  let st =
    {
      ctx;
      intern = cfg.intern;
      cur_round = 0;
      belief = sid0;
      decided_sid = -1;
      candidates = Int_table.create ();
      push_masks = Int_table.create ();
      push_counts = Int_table.create ();
      polls = Hashtbl.create 8;
      pull_labels = Int_table.create ~capacity:32 ();
      pull_counts = Int_table.create ~capacity:32 ();
      fw1_targets = Hashtbl.create 32;
      f1s_masks = Int_table.create ~capacity:64 ();
      f1s_counts = Int_table.create ~capacity:32 ();
      f1_served = Int_table.create ~capacity:64 ();
      fw2_masks = Int_table.create ();
      fw2_counts = Int_table.create ();
      polled = Int_table.create ~capacity:32 ();
      answer_counts = Int_table.create ();
      answered = Int_table.create ~capacity:32 ();
      muted = Vec.create ();
      deferred_src = Vec.create ();
      deferred_msg = Vec.create ();
      scratch_w = Vec.create ();
      scratch_rid = Vec.create ();
      push_sent = 0;
      answers_emitted = 0;
    }
  in
  ignore (Int_table.add st.candidates sid0);
  mark cfg st "push";
  let acc = ref [] in
  let emit dst m = acc := (dst, m) :: !acc in
  let push_msg = Packed.push cfg.layout ~sid:sid0 in
  (match cfg.compiled with
  | Some cp ->
    (* The compiled CSR row is Push_plan.targets, precomputed. *)
    let lo = Compiled.push_start cp ~y:id and hi = Compiled.push_stop cp ~y:id in
    for i = lo to hi - 1 do
      emit (Compiled.push_target cp i) push_msg
    done;
    st.push_sent <- hi - lo
  | None ->
    let targets = Push_plan.targets cfg.plan ~s:s0 ~y:id in
    for i = 0 to Array.length targets - 1 do
      emit targets.(i) push_msg
    done;
    st.push_sent <- Array.length targets);
  issue_poll cfg st ~emit sid0;
  (st, List.rev !acc)

(* The re-poll extension: a candidate whose poll went unanswered for
   repoll_timeout rounds retries with a fresh label, up to
   max_poll_attempts. With the default budget of 1 attempt this hook is
   inert and the protocol is exactly the paper's. *)
let on_round cfg st ~round =
  st.cur_round <- round;
  if st.decided_sid >= 0 || cfg.params.Params.max_poll_attempts <= 1 then []
  else begin
    let due = ref [] in
    Hashtbl.iter
      (fun sid (p : poll) ->
        if
          p.p_attempts < cfg.params.Params.max_poll_attempts
          && round - p.p_issued >= cfg.params.Params.repoll_timeout
        then due := sid :: !due)
      st.polls;
    let acc = ref [] in
    let emit dst m = acc := (dst, m) :: !acc in
    List.iter (fun sid -> issue_poll ~round cfg st ~emit sid) !due;
    List.rev !acc
  end

(* The engines' hot entry point: dispatch straight into the handlers,
   pushing outgoing messages through the engine's [emit] — no list, no
   tuples, no envelope. *)
let receive_into_impl cfg st ~round ~src m ~emit =
  st.cur_round <- round;
  dispatch cfg st ~emit ~src m

let receive_into = Some receive_into_impl

(* List-returning compatibility shim over the same handlers (unit
   tests drive it directly; engines use [receive_into]). *)
let on_receive cfg st ~round ~src m =
  let acc = ref [] in
  receive_into_impl cfg st ~round ~src m ~emit:(fun dst m -> acc := (dst, m) :: !acc);
  List.rev !acc

let output st = if st.decided_sid < 0 then None else Some (Intern.string st.intern st.decided_sid)

let msg_bits cfg m =
  match cfg.compiled with
  | Some cp -> Compiled.bits cp m
  | None -> Packed.bits cfg.layout cfg.params cfg.intern m

(* Profiler slots are the packed wire tags — the same indices the
   Compiled dispatch jump table is keyed by, so per-slot hit/time
   counters are hot-spot counters on that table. Tags 0 and 7 are the
   table's invalid stubs; they can never be charged (dispatch raises)
   but keep the indexing aligned. *)
let profiler_tags =
  [| "invalid"; "Push"; "Poll"; "Pull"; "Fw1"; "Fw2"; "Answer"; "invalid" |]

let msg_tags _cfg = profiler_tags
let msg_tag _cfg p = Packed.tag p

let pp_msg (cfg : config) = Packed.pp cfg.layout cfg.intern

let belief st = Intern.string st.intern st.belief
let decided st = output st

let candidates st =
  let acc = ref [] in
  Int_table.iter (fun sid _ -> acc := Intern.string st.intern sid :: !acc) st.candidates;
  !acc

let candidate_count st = Int_table.length st.candidates
let push_messages_sent st = st.push_sent
let deferred_count st = Vec.length st.deferred_msg
let answers_sent st = st.answers_emitted
