open Fba_stdx
module Cache = Fba_samplers.Cache
module Push_plan = Fba_samplers.Push_plan

type config = {
  params : Params.t;
  scenario : Scenario.t;
  qi : Cache.t;  (* push quorums I *)
  qh : Cache.t;  (* pull quorums H *)
  qj : Cache.t;  (* poll lists J *)
  plan : Push_plan.t;  (* inverse of I, for the push fan-out *)
  strict_drop : bool;  (* drop belief-mismatched messages instead of buffering *)
  events : Fba_sim.Events.sink option;  (* phase-marker sink, observation only *)
}

let config_of_scenario ?(strict_drop = false) ?events (scenario : Scenario.t) =
  let params = scenario.Scenario.params in
  let si = Params.sampler_i params in
  {
    params;
    scenario;
    qi = Cache.create si;
    qh = Cache.create (Params.sampler_h params);
    qj = Cache.create (Params.sampler_j params);
    plan = Push_plan.create ~sampler:si;
    strict_drop;
    events;
  }

let config_params c = c.params
let config_scenario c = c.scenario

type msg = Msg.t

(* Small imperative helpers over Hashtbl-as-set. *)
let set () : (int, unit) Hashtbl.t = Hashtbl.create 8

let set_add tbl v =
  if Hashtbl.mem tbl v then false
  else begin
    Hashtbl.add tbl v ();
    true
  end

let set_card = Hashtbl.length

(* Per (s, x) forwarding state of Algorithm 2's second handler. *)
type fw1_record = {
  f1_senders : (int, unit) Hashtbl.t;  (* distinct y ∈ H(s,x) seen *)
  f1_targets : (int, int64) Hashtbl.t;  (* verified w ↦ label r *)
  f1_served : (int, unit) Hashtbl.t;  (* w's already sent an Fw2 *)
}

(* An outstanding poll of Algorithm 1, with the optional re-poll
   extension state (Params.max_poll_attempts). *)
type poll = {
  mutable p_r : int64;
  mutable p_answers : (int, unit) Hashtbl.t;
  mutable p_attempts : int;
  mutable p_issued : int;  (* round of the last (re-)issue *)
}

type state = {
  ctx : Fba_sim.Ctx.t;
  mutable cur_round : int;  (* last round seen, for phase-marker stamps *)
  mutable belief : string;  (* s_this *)
  mutable decided : string option;
  candidates : (string, unit) Hashtbl.t;  (* L_x *)
  push_senders : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  polls : (string, poll) Hashtbl.t;
  pulls_seen : (int * string, (int64, unit) Hashtbl.t) Hashtbl.t;
      (* Pull dedup: labels already routed per (x, s); capped at
         max_poll_attempts to bound the Fw1 amplification *)
  fw1 : (string * int, fw1_record) Hashtbl.t;
  fw2 : (string * int, (int, unit) Hashtbl.t) Hashtbl.t;  (* distinct z ∈ H(s,this) *)
  polled : (int * string, unit) Hashtbl.t;  (* Algorithm 3's Polled set *)
  answer_counts : (string, int ref) Hashtbl.t;  (* Count_s *)
  answered : (int * string, unit) Hashtbl.t;
  mutable muted : (string * int) list;  (* answer-ready pairs gated by the filter *)
  mutable deferred : (int * Msg.t) list;  (* belief-mismatched messages *)
  mutable push_sent : int;
  mutable answers_emitted : int;
}

let name = "aer"

(* Message kind -> protocol phase, for Events.Phase_acc. *)
let phase_of_kind = function
  | "Push" -> "push"
  | "Poll" | "Pull" | "Answer" -> "poll"
  | "Fw1" -> "fw1"
  | "Fw2" -> "fw2"
  | kind -> kind

(* Announce a phase transition (first activation only; Events.phase
   dedups). Pure observation: never changes protocol behaviour. *)
let mark cfg st name =
  match cfg.events with
  | None -> ()
  | Some k -> Fba_sim.Events.phase k ~round:st.cur_round name

let count_of tbl key = match Hashtbl.find_opt tbl key with Some c -> set_card c | None -> 0

let counter_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
    let c = set () in
    Hashtbl.add tbl key c;
    c

let answer_count st s =
  match Hashtbl.find_opt st.answer_counts s with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add st.answer_counts s r;
    r

(* Algorithm 1: poll a fresh random sample and the pull quorum for s. *)
let issue_poll ?(round = 0) cfg st s =
  mark cfg st "poll";
  let id = st.ctx.Fba_sim.Ctx.id in
  let r = Prng.int64 st.ctx.Fba_sim.Ctx.rng in
  (match Hashtbl.find_opt st.polls s with
  | Some p ->
    p.p_r <- r;
    p.p_answers <- set ();
    p.p_attempts <- p.p_attempts + 1;
    p.p_issued <- round
  | None ->
    Hashtbl.replace st.polls s { p_r = r; p_answers = set (); p_attempts = 1; p_issued = round });
  let poll_msg = Msg.Poll { s; r } in
  let pull_msg = Msg.Pull { s; r } in
  let to_poll =
    Array.to_list (Array.map (fun w -> (w, poll_msg)) (Cache.quorum_xr cfg.qj ~x:id ~r))
  in
  let to_pull =
    Array.to_list (Array.map (fun y -> (y, pull_msg)) (Cache.quorum_sx cfg.qh ~s ~x:id))
  in
  to_poll @ to_pull

(* Algorithm 3's answer emission, gated by the log² n filter: an
   overloaded node waits until it has decided before answering more. *)
let try_answer cfg st s x =
  if
    Hashtbl.mem st.polled (x, s)
    && (not (Hashtbl.mem st.answered (x, s)))
    && count_of st.fw2 (s, x) >= Params.majority_h cfg.params
  then begin
    let cnt = answer_count st s in
    if st.decided <> None || !cnt < cfg.params.Params.pull_filter then begin
      incr cnt;
      Hashtbl.add st.answered (x, s) ();
      st.answers_emitted <- st.answers_emitted + 1;
      [ (x, Msg.Answer s) ]
    end
    else begin
      st.muted <- (s, x) :: st.muted;
      []
    end
  end
  else []

(* Push phase acceptance: s enters L_x on a strict majority of I(s, x). *)
let rec handle_push cfg st ~src s =
  if st.decided <> None || Hashtbl.mem st.candidates s then []
  else begin
    let id = st.ctx.Fba_sim.Ctx.id in
    if not (Cache.mem_sx cfg.qi ~s ~x:id ~y:src) then []
    else begin
      let senders = counter_of st.push_senders s in
      if set_add senders src && set_card senders >= Params.majority_i cfg.params then begin
        Hashtbl.add st.candidates s ();
        issue_poll cfg st s
      end
      else []
    end
  end

and handle_poll cfg st ~src s r =
  let id = st.ctx.Fba_sim.Ctx.id in
  if not (Cache.mem_xr cfg.qj ~x:src ~r ~y:id) then []
  else begin
    if not (Hashtbl.mem st.polled (src, s)) then Hashtbl.add st.polled (src, s) ();
    (* The Fw2 majority may already be in (asynchronous reordering):
       Algorithm 3's Poll handler answers immediately in that case. *)
    try_answer cfg st s src
  end

and handle_pull cfg st ~src s r =
  if s <> st.belief then defer cfg st ~src (Msg.Pull { s; r })
  else begin
    let labels =
      match Hashtbl.find_opt st.pulls_seen (src, s) with
      | Some l -> l
      | None ->
        let l = Hashtbl.create 2 in
        Hashtbl.add st.pulls_seen (src, s) l;
        l
    in
    if Hashtbl.mem labels r || Hashtbl.length labels >= cfg.params.Params.max_poll_attempts
    then []
    else begin
    Hashtbl.add labels r ();
    let id = st.ctx.Fba_sim.Ctx.id in
    if not (Cache.mem_sx cfg.qh ~s ~x:src ~y:id) then []
    else begin
      (* Algorithm 2, first handler: fan the request out to the pull
         quorums of every poll-list member. *)
      mark cfg st "fw1";
      let outs = ref [] in
      Array.iter
        (fun w ->
          let m = Msg.Fw1 { x = src; s; r; w } in
          Array.iter (fun z -> outs := (z, m) :: !outs) (Cache.quorum_sx cfg.qh ~s ~x:w))
        (Cache.quorum_xr cfg.qj ~x:src ~r);
      !outs
    end
    end
  end

and handle_fw1 cfg st ~src ~x s r w =
  if s <> st.belief then defer cfg st ~src (Msg.Fw1 { x; s; r; w })
  else begin
    let id = st.ctx.Fba_sim.Ctx.id in
    if
      Cache.mem_sx cfg.qh ~s ~x:w ~y:id
      && Cache.mem_sx cfg.qh ~s ~x ~y:src
      && Cache.mem_xr cfg.qj ~x ~r ~y:w
    then begin
      let rc =
        match Hashtbl.find_opt st.fw1 (s, x) with
        | Some rc -> rc
        | None ->
          let rc = { f1_senders = set (); f1_targets = Hashtbl.create 8; f1_served = set () } in
          Hashtbl.add st.fw1 (s, x) rc;
          rc
      in
      if not (Hashtbl.mem rc.f1_targets w) then Hashtbl.add rc.f1_targets w r;
      let newly = set_add rc.f1_senders src in
      let c = set_card rc.f1_senders in
      let maj = Params.majority_h cfg.params in
      let serve w r acc =
        if set_add rc.f1_served w then (w, Msg.Fw2 { x; s; r }) :: acc else acc
      in
      if c >= maj then begin
        mark cfg st "fw2";
        if newly && c = maj then
          (* Majority just reached: serve every verified target once. *)
          Hashtbl.fold serve rc.f1_targets []
        else serve w r []
      end
      else []
    end
    else []
  end

and handle_fw2 cfg st ~src ~x s r =
  if s <> st.belief then defer cfg st ~src (Msg.Fw2 { x; s; r })
  else begin
    let id = st.ctx.Fba_sim.Ctx.id in
    if Cache.mem_xr cfg.qj ~x ~r ~y:id && Cache.mem_sx cfg.qh ~s ~x:id ~y:src then begin
      let zs = counter_of st.fw2 (s, x) in
      if set_add zs src then try_answer cfg st s x else []
    end
    else []
  end

and handle_answer cfg st ~src s =
  if st.decided <> None then []
  else begin
    match Hashtbl.find_opt st.polls s with
    | None -> []
    | Some p ->
      let id = st.ctx.Fba_sim.Ctx.id in
      if not (Cache.mem_xr cfg.qj ~x:id ~r:p.p_r ~y:src) then []
      else if set_add p.p_answers src && set_card p.p_answers >= Params.majority_j cfg.params
      then decide cfg st s
      else []
  end

(* Decision: fix the belief, then replay buffered traffic that now
   matches it and release answers the overload filter was holding. *)
and decide cfg st s =
  st.decided <- Some s;
  st.belief <- s;
  let backlog = List.rev st.deferred in
  st.deferred <- [];
  let muted = List.rev st.muted in
  st.muted <- [];
  let outs = ref [] in
  List.iter
    (fun (src, m) ->
      match m with
      | Msg.Pull { s = s'; _ } | Msg.Fw1 { s = s'; _ } | Msg.Fw2 { s = s'; _ } when s' <> s ->
        ()
      | _ -> outs := dispatch cfg st ~src m :: !outs)
    backlog;
  List.iter (fun (s', x) -> if s' = s then outs := try_answer cfg st s' x :: !outs) muted;
  List.concat (List.rev !outs)

and defer cfg st ~src m =
  (* DESIGN.md substitution 6: the paper's pseudo-code drops these;
     buffering + replay is equivalent under asynchrony and avoids
     starving late deciders under a synchronous schedule. strict_drop
     restores the literal behaviour for the ablation. *)
  if (not cfg.strict_drop) && st.decided = None then st.deferred <- (src, m) :: st.deferred;
  []

and dispatch cfg st ~src m =
  match m with
  | Msg.Push s -> handle_push cfg st ~src s
  | Msg.Poll { s; r } -> handle_poll cfg st ~src s r
  | Msg.Pull { s; r } -> handle_pull cfg st ~src s r
  | Msg.Fw1 { x; s; r; w } -> handle_fw1 cfg st ~src ~x s r w
  | Msg.Fw2 { x; s; r } -> handle_fw2 cfg st ~src ~x s r
  | Msg.Answer s -> handle_answer cfg st ~src s

let init cfg ctx =
  let id = ctx.Fba_sim.Ctx.id in
  let s0 = cfg.scenario.Scenario.initial.(id) in
  let st =
    {
      ctx;
      cur_round = 0;
      belief = s0;
      decided = None;
      candidates = Hashtbl.create 8;
      push_senders = Hashtbl.create 8;
      polls = Hashtbl.create 8;
      pulls_seen = Hashtbl.create 32;
      fw1 = Hashtbl.create 32;
      fw2 = Hashtbl.create 32;
      polled = Hashtbl.create 32;
      answer_counts = Hashtbl.create 8;
      answered = Hashtbl.create 32;
      muted = [];
      deferred = [];
      push_sent = 0;
      answers_emitted = 0;
    }
  in
  Hashtbl.add st.candidates s0 ();
  mark cfg st "push";
  let push_msg = Msg.Push s0 in
  let pushes =
    Array.to_list
      (Array.map (fun x -> (x, push_msg)) (Push_plan.targets cfg.plan ~s:s0 ~y:id))
  in
  st.push_sent <- List.length pushes;
  (st, pushes @ issue_poll cfg st s0)

(* The re-poll extension: a candidate whose poll went unanswered for
   repoll_timeout rounds retries with a fresh label, up to
   max_poll_attempts. With the default budget of 1 attempt this hook is
   inert and the protocol is exactly the paper's. *)
let on_round cfg st ~round =
  st.cur_round <- round;
  if st.decided <> None || cfg.params.Params.max_poll_attempts <= 1 then []
  else begin
    let due = ref [] in
    Hashtbl.iter
      (fun s (p : poll) ->
        if
          p.p_attempts < cfg.params.Params.max_poll_attempts
          && round - p.p_issued >= cfg.params.Params.repoll_timeout
        then due := s :: !due)
      st.polls;
    List.concat_map (fun s -> issue_poll ~round cfg st s) !due
  end

let on_receive cfg st ~round ~src m =
  st.cur_round <- round;
  dispatch cfg st ~src m

let output st = st.decided

let msg_bits cfg m = Msg.bits cfg.params m

let pp_msg = Msg.pp

let belief st = st.belief
let decided st = st.decided
let candidates st = Hashtbl.fold (fun s () acc -> s :: acc) st.candidates []
let candidate_count st = Hashtbl.length st.candidates
let push_messages_sent st = st.push_sent
let deferred_count st = List.length st.deferred
let answers_sent st = st.answers_emitted
