(** BA — the paper's end-to-end Byzantine Agreement protocol:
    almost-everywhere agreement (the [KSSV06]-shaped {!Fba_aeba.Aeba}
    substrate) composed with AER (Section 3, "Together with the
    algorithm presented in [KSSV06], AER yields a Byzantine Agreement
    protocol, noted BA, with amortized complexity O~(1)").

    Phase 1 produces a common random string gstring known to almost all
    correct nodes (and guarantees ≥ 2/3+ε of its bits are uniform);
    phase 2 extends that knowledge to {e every} correct node. The
    output is gstring — the "string of O(log n) random bits the
    adversary cannot bias too much" output notion the paper adopts from
    [PR10, BOPV06, BO83, Rab83]. *)

type result = {
  metrics : Fba_sim.Metrics.t;  (** both phases combined *)
  aeba_metrics : Fba_sim.Metrics.t;
  aer_metrics : Fba_sim.Metrics.t;
  outputs : string option array;  (** final per-node decisions *)
  gstring : string option;  (** the string phase 1 converged on *)
  agreed : int;  (** correct nodes that decided on [gstring] *)
  correct : int;  (** number of correct nodes *)
  ae_fraction : float;
      (** fraction of all nodes knowing gstring after phase 1 — AER's
          precondition needs this above 1/2 *)
  all_decided : bool;
}

type phase1 = {
  p1_corrupted : Fba_stdx.Bitset.t;
  p1_outputs : string option array;
  p1_reference : string option;  (** plurality among correct outputs *)
  p1_metrics : Fba_sim.Metrics.t;
  p1_ae_fraction : float;
}

val run_phase1 :
  ?mode:Fba_sim.Sync_engine.mode ->
  ?aeba_adversary:(Fba_stdx.Bitset.t -> Fba_aeba.Aeba.msg Fba_sim.Sync_engine.adversary) ->
  ?events:Fba_sim.Events.sink ->
  n:int ->
  seed:int64 ->
  byzantine_fraction:float ->
  unit ->
  phase1
(** The almost-everywhere phase alone — exposed so alternative
    phase-2 protocols (the Figure 1(b) baselines) can be composed with
    the same substrate. *)

val run_sync :
  ?mode:Fba_sim.Sync_engine.mode ->
  ?aeba_adversary:(Fba_stdx.Bitset.t -> Fba_aeba.Aeba.msg Fba_sim.Sync_engine.adversary) ->
  ?aer_adversary:(Scenario.t -> Aer.msg Fba_sim.Sync_engine.adversary) ->
  ?per_run_miss:float ->
  ?events:Fba_sim.Events.sink ->
  n:int ->
  seed:int64 ->
  byzantine_fraction:float ->
  unit ->
  result
(** Run the full composition on the synchronous engine. Corruption is
    sampled uniformly from [seed]; adversary builders default to
    silence. If phase 1 leaves gstring known to at most half the nodes
    (a failed almost-everywhere phase — possible, rare), the result
    reports it with [agreed = 0] and phase 2 is skipped. [events]
    receives the whole composition's trace: AEBA committee-level phase
    markers, AER pipeline markers, and every engine event of both
    phases (rounds restart at 0 when phase 2 begins). *)
