open Fba_stdx

type junk = Junk_default | Junk_unique | Junk_shared of int

type t = {
  params : Params.t;
  gstring : string;
  corrupted : Bitset.t;
  knowledgeable : Bitset.t;
  initial : string array;
  layout : Msg.Layout.t;
  intern : Intern.t;
}

(* The packed field widths are fixed before the interner exists: count
   the distinct initial strings, choose a layout for (n, strings), and
   cap the interner's tables at the layout's field capacities. *)
let distinct_strings ~gstring ~initial =
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen gstring ();
  Array.iter (fun s -> Hashtbl.replace seen s ()) initial;
  Hashtbl.length seen

(* FBA_WIDE=1 forces the wide layout everywhere an explicit choice is
   not supplied — the ci-level A/B switch (the narrow-vs-wide analogue
   of FBA_NO_COMPILE), needing no per-experiment plumbing. *)
let layout_default () =
  match Sys.getenv_opt "FBA_WIDE" with
  | Some v when v <> "" && v <> "0" -> Msg.Layout.Wide
  | Some _ | None -> Msg.Layout.Auto

let layout_of ?layout ~params ~gstring ~initial () =
  (* Auto defers to the environment: FBA_WIDE biases the automatic
     pick but never overrides an explicit Narrow/Wide request. *)
  let choice =
    match layout with
    | Some Msg.Layout.Auto | None -> layout_default ()
    | Some c -> c
  in
  Msg.Layout.choose choice ~n:params.Params.n
    ~strings:(distinct_strings ~gstring ~initial)

(* Packed messages need every payload registered: seed the interner
   with gstring and the initial candidates in a fixed order, so ids
   are stable regardless of which node or adversary packs first. An
   instance stream passes the previous epoch's interner back in; it is
   reset in place (same id assignment, warm storage). *)
let intern_of ?intern ~(layout : Msg.Layout.t) ~gstring ~initial () =
  let intern =
    match intern with
    | Some it ->
      Intern.reset ~max_strings:layout.Msg.Layout.max_strings
        ~max_labels:layout.Msg.Layout.max_labels it;
      it
    | None ->
      Intern.create ~max_strings:layout.Msg.Layout.max_strings
        ~max_labels:layout.Msg.Layout.max_labels ()
  in
  ignore (Intern.intern intern gstring);
  Array.iter (fun s -> ignore (Intern.intern intern s)) initial;
  intern

let random_string rng bits = Bytes.unsafe_to_string (Prng.bits rng bits)

let make ?(junk = Junk_unique) ?gstring ?layout ?intern ~(params : Params.t) ~rng
    ~byzantine_fraction ~knowledgeable_fraction () =
  let n = params.Params.n in
  if byzantine_fraction < 0.0 || byzantine_fraction >= 1.0 /. 3.0 then
    invalid_arg "Scenario.make: byzantine_fraction must be in [0, 1/3)";
  if knowledgeable_fraction <= 0.5 || knowledgeable_fraction > 1.0 then
    invalid_arg "Scenario.make: knowledgeable_fraction must be in (1/2, 1]";
  let t = int_of_float (byzantine_fraction *. float_of_int n) in
  let k = int_of_float (ceil (knowledgeable_fraction *. float_of_int n)) in
  if t + k > n then
    invalid_arg "Scenario.make: more knowledgeable nodes requested than correct nodes exist";
  (* Draw gstring from a split stream so that supplying an explicit
     gstring leaves the corruption/knowledge assignment unchanged —
     ablations compare adversarial vs random gstrings on identical
     workloads. *)
  let gstring_rng = Prng.split rng in
  let gstring =
    match gstring with
    | Some s ->
      if 8 * String.length s < params.Params.gstring_bits then
        invalid_arg "Scenario.make: gstring shorter than params.gstring_bits";
      s
    | None -> random_string gstring_rng params.Params.gstring_bits
  in
  (* One shuffled permutation assigns both corruption and knowledge:
     the first t identities are Byzantine, the next k are correct and
     knowledgeable, the rest are correct but ignorant. *)
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle rng perm;
  let corrupted = Bitset.create n in
  for i = 0 to t - 1 do
    Bitset.add corrupted perm.(i)
  done;
  let knowledgeable = Bitset.create n in
  for i = t to t + k - 1 do
    Bitset.add knowledgeable perm.(i)
  done;
  let shared_junk =
    match junk with
    | Junk_shared m when m >= 1 ->
      Array.init m (fun _ -> random_string rng params.Params.gstring_bits)
    | Junk_shared _ -> invalid_arg "Scenario.make: Junk_shared needs a positive count"
    | Junk_default | Junk_unique -> [||]
  in
  let default_junk = String.make ((params.Params.gstring_bits + 7) / 8) '\000' in
  let junk_counter = ref 0 in
  let initial =
    Array.init n (fun id ->
        if Bitset.mem knowledgeable id then gstring
        else begin
          match junk with
          | Junk_default -> default_junk
          | Junk_unique -> random_string rng params.Params.gstring_bits
          | Junk_shared _ ->
            let s = shared_junk.(!junk_counter mod Array.length shared_junk) in
            incr junk_counter;
            s
        end)
  in
  let layout = layout_of ?layout ~params ~gstring ~initial () in
  { params; gstring; corrupted; knowledgeable; initial; layout;
    intern = intern_of ?intern ~layout ~gstring ~initial () }

let of_assignment ?layout ~params ~gstring ~corrupted ~initial () =
  let n = params.Params.n in
  if Array.length initial <> n then
    invalid_arg "Scenario.of_assignment: initial array size mismatch";
  if Bitset.capacity corrupted <> n then
    invalid_arg "Scenario.of_assignment: corrupted bitset capacity mismatch";
  let knowledgeable = Bitset.create n in
  for id = 0 to n - 1 do
    if (not (Bitset.mem corrupted id)) && initial.(id) = gstring then
      Bitset.add knowledgeable id
  done;
  let layout = layout_of ?layout ~params ~gstring ~initial () in
  { params; gstring; corrupted; knowledgeable; initial; layout;
    intern = intern_of ~layout ~gstring ~initial () }

let knowledgeable_fraction t =
  float_of_int (Bitset.cardinal t.knowledgeable) /. float_of_int Params.(t.params.n)

let correct_count t =
  Params.(t.params.n) - Bitset.cardinal t.corrupted

let is_correct t id = not (Bitset.mem t.corrupted id)

let knows_gstring t id = Bitset.mem t.knowledgeable id
