(** AER — the paper's almost-everywhere to everywhere agreement
    protocol (Section 3).

    Each correct node starts with a candidate string; more than half of
    all nodes are correct and hold the common gstring. The protocol has
    two phases:

    - {b Push} (Section 3.1.1): every node diffuses its initial
      candidate to the nodes whose push quorum it belongs to; a node
      accepts a string into its candidate list L_x only when a strict
      majority of the push quorum I(s, x) vouches for it.
    - {b Pull} (Section 3.1.2, Algorithms 1–3): for each candidate, the
      node polls a random poll list J(x, r) through the filtered
      forwarding chain H(s, x) → H(s, w) → w, and decides on the first
      candidate confirmed by a majority of its poll list.

    The module satisfies {!Fba_sim.Protocol.S}, so it runs unchanged on
    the synchronous engine (rushing or not) and the asynchronous one.

    One implementation deviation from the paper's pseudo-code is
    recorded in DESIGN.md (substitution 6): messages whose string does
    not match the receiver's current belief are buffered and replayed
    when the belief changes (upon decision), rather than dropped. Under
    asynchrony the two are equivalent (the scheduler could simply have
    delayed those messages); under a synchronous schedule the literal
    reading can starve late deciders. *)

type config

val config_of_scenario :
  ?strict_drop:bool ->
  ?events:Fba_sim.Events.sink ->
  ?compile:bool ->
  ?builder:Compiled.builder ->
  Scenario.t ->
  config
(** Shared immutable setup (samplers, memoized quorums, initial
    candidate assignment). The same value must be used for every node
    of an execution — quorum caches inside are shared deliberately.
    [strict_drop] (default false) applies the paper's pseudo-code
    literally, dropping belief-mismatched messages instead of buffering
    them (DESIGN.md substitution 6) — exposed for the ablation that
    shows why we buffer. [events] receives {!Fba_sim.Events.Phase}
    markers at the protocol's natural transitions (push → poll → fw1 →
    fw2); pass the same sink to the engine to interleave them with the
    message events. Markers never alter protocol behaviour. [compile]
    (default: on unless the [FBA_NO_COMPILE] environment variable is
    set) lets the engines lower the scenario into flat dispatch tables
    ({!Compiled}) before the run; on or off, executions are
    byte-identical — the switch exists for the parity harness and
    A/B measurements. [builder] supplies reusable compile scratch
    ({!Compiled.builder}) for instance streams. *)

val config_epoch : prev:config -> Scenario.t -> config
(** Epoch reuse for instance streams ({!Fba_harness.Service}): a
    config for [scenario] whose quorum caches, push plan and compile
    scratch are [prev]'s, reset in place — instance k+1 evaluates into
    storage instance k already paid for. [scenario] must share
    [prev]'s interner value ({!Scenario.make}'s [?intern] round-trip).
    Behaviour is identical to a fresh {!config_of_scenario}; [prev]
    must no longer be used once the new config exists. *)

val config_params : config -> Params.t
val config_scenario : config -> Scenario.t

val config_layout : config -> Msg.Layout.t
(** The packed field widths of the run — the same value as
    [(config_scenario cfg).layout]; every word this config packs or
    decodes uses it. *)

val config_compiled : config -> Compiled.t option
(** The lowered run structure, once {!Fba_sim.Protocol.S.compile} has
    run on a config created with [~compile:true] ([None] otherwise). *)

val config_intern : config -> Intern.t
(** The scenario's interner — the same value as
    [(config_scenario cfg).intern]; adversaries and tests use it to
    pack messages for injection. *)

include Fba_sim.Protocol.S with type config := config and type msg = Msg.Packed.t
(** Messages are packed immediates ({!Msg.Packed}): handlers run
    entirely on int words and emit through [receive_into] without
    allocating. [on_receive] remains as a list-returning shim over the
    same handlers. *)

val pack : config -> Msg.t -> msg
(** Pack a variant message onto the wire plane, interning its payloads
    in the run's interner. *)

val unpack : config -> msg -> Msg.t
(** Exact inverse of {!pack}. *)

val phase_of_kind : string -> string
(** Map a message kind (first token of {!Msg.pp}) onto the protocol
    phase it belongs to: Push ↦ "push"; Poll, Pull and Answer ↦ "poll"
    (the Algorithm 1 poll round-trip); Fw1 ↦ "fw1"; Fw2 ↦ "fw2"
    (the Algorithm 2/3 forwarding bursts). Unknown kinds map to
    themselves. The classifier for {!Fba_sim.Events.Phase_acc}: because
    every message belongs to exactly one phase, per-phase bits sum to
    [Metrics.total_bits_all]. *)

(** {2 State inspection (experiments and tests)} *)

val belief : state -> string
(** Current s_this. *)

val decided : state -> string option

val candidates : state -> string list
(** The candidate list L_x. *)

val candidate_count : state -> int

val push_messages_sent : state -> int
(** Number of push-phase messages this node sent (Lemma 3). *)

val deferred_count : state -> int
(** Buffered messages awaiting a belief change. *)

val answers_sent : state -> int
(** Total Answer messages emitted (the Count_s filter of Algorithm 3
    sums over strings here). *)
