(** Almost-everywhere agreement on a common random string — the
    [KSSV06]-shaped substrate the paper composes AER with (Section 1,
    "Our contribution"; DESIGN.md substitution 1).

    Structure (synchronous):
    + the root committee's members each contribute
      [gstring_bits / m] private random bits, then run one phase-king
      agreement per contribution so that all correct members hold the
      same concatenation — gstring. Since fewer than 1/3 of the
      committee is Byzantine (w.h.p. by sampling), at least 2/3 + ε of
      gstring's bits are uniformly random: exactly the paper's
      precondition on gstring;
    + gstring then flows down the committee tree, each member adopting
      the plurality of what the parent committee sent, leaf committees
      informing their groups. Every correct node outputs a string; all
      but the subtrees under (rare) corrupted-majority committees
      output gstring — the almost-everywhere guarantee, with
      polylogarithmic per-node communication.

    The protocol is round-driven and meant for the synchronous engine
    (KSSV06 itself is synchronous; asynchronous almost-everywhere
    agreement is open — see the paper's conclusion). *)

type config

val make_config :
  ?group_size:int ->
  ?committee_size:int ->
  ?gstring_bits:int ->
  ?byzantine_fraction:float ->
  ?events:Fba_sim.Events.sink ->
  n:int ->
  seed:int64 ->
  unit ->
  config
(** Defaults: [committee_size] is the smallest m whose probability of
    containing ≥ ⌈m/3⌉ Byzantine members (breaking phase-king) stays
    below 0.005 given [byzantine_fraction] (default 0.1);
    [group_size = committee_size]; [gstring_bits = 8·⌈log₂ n⌉].
    [events] receives {!Fba_sim.Events.Phase} markers as the round
    schedule advances: "contrib", "phase-king", one "relay-L<level>"
    per committee-tree level, and "inform" for the leaf-to-group hop.
    Markers never alter protocol behaviour. *)

val config_tree : config -> Committee_tree.t

val config_gstring_bits : config -> int
(** Actual gstring length: contributions are padded so it is a
    multiple of the committee size. *)

val total_rounds : config -> int
(** Rounds until every correct node has produced an output. *)

(** Wire messages — exposed so adversary strategies can forge them
    (the engine still enforces corrupted-source authentication). *)
type msg =
  | Contrib of { slot : int; v : string }
      (** a root member's random slice of gstring *)
  | Pk of { slot : int; inner : Phase_king.msg }
      (** intra-committee phase-king traffic, one instance per slot *)
  | Relay of { level : int; index : int; v : string }
      (** parent committee -> child committee dissemination *)
  | Inform of { v : string }  (** leaf committee -> group member *)

include Fba_sim.Protocol.S with type config := config and type msg := msg

val node_output : state -> string option
(** Same as {!output}. *)

(** {2 Evaluation helpers} *)

val reference_string : (string option array -> bool array -> string option)
(** [reference_string outputs correct_mask] is the plurality output
    among correct nodes — the "gstring" an execution actually agreed
    on, used to measure the almost-everywhere fraction. *)
