open Fba_stdx

type config = {
  n : int;
  seed : int64;
  tree : Committee_tree.t;
  contrib_bits : int;
  pk_rounds : int;  (* local rounds of each phase-king instance *)
  t_pk_end : int;  (* global round at which the root holds gstring *)
  rounds_total : int;
  events : Fba_sim.Events.sink option;  (* phase markers, observation only *)
}

(* Smallest committee size m such that a uniformly sampled committee
   contains >= ceil(m/3) Byzantine members (which would defeat
   phase-king) with probability at most [budget]. *)
let size_committee ~byzantine_fraction ~budget =
  let rec search m =
    if m >= 200 then m
    else begin
      let bad =
        Stats.binomial_tail ~trials:m ~p:byzantine_fraction ~at_least:(((m - 1) / 3) + 1)
      in
      if bad <= budget then m else search (m + 3)
    end
  in
  search 7

let make_config ?group_size ?committee_size ?gstring_bits ?(byzantine_fraction = 0.1) ?events
    ~n ~seed () =
  if n < 2 then invalid_arg "Aeba.make_config: n < 2";
  let m =
    match committee_size with
    | Some m when m >= 1 -> m
    | Some _ -> invalid_arg "Aeba.make_config: committee_size < 1"
    | None -> min n (size_committee ~byzantine_fraction ~budget:0.005)
  in
  let group_size = match group_size with Some g -> g | None -> m in
  let tree = Committee_tree.build ~n ~seed ~group_size ~committee_size:m in
  let m = Committee_tree.committee_size tree in
  let gstring_bits =
    match gstring_bits with
    | Some b when b >= 1 -> b
    | Some _ -> invalid_arg "Aeba.make_config: gstring_bits < 1"
    | None -> 8 * Intx.ceil_log2 (max 2 n)
  in
  let contrib_bits = Intx.cdiv gstring_bits m in
  let pk_phases = ((m - 1) / 3) + 1 in
  let pk_rounds = 4 * pk_phases in
  let t_pk_end = 2 + pk_rounds in
  let rounds_total = t_pk_end + (2 * Committee_tree.levels tree) + 2 in
  { n; seed; tree; contrib_bits; pk_rounds; t_pk_end; rounds_total; events }

let config_tree c = c.tree

let contrib_bytes c = (c.contrib_bits + 7) / 8

(* gstring is the concatenation of one byte-padded contribution per
   root-committee slot. *)
let config_gstring_bits c =
  8 * contrib_bytes c * Array.length (Committee_tree.root c.tree)

let total_rounds c = c.rounds_total

type msg =
  | Contrib of { slot : int; v : string }
  | Pk of { slot : int; inner : Phase_king.msg }
  | Relay of { level : int; index : int; v : string }
  | Inform of { v : string }

(* Plurality tally with per-sender dedup. *)
type tally = { mutable seen : int list; counts : (string, int) Hashtbl.t }

let fresh_tally () = { seen = []; counts = Hashtbl.create 8 }

let tally_add t ~src v =
  if not (List.mem src t.seen) then begin
    t.seen <- src :: t.seen;
    Hashtbl.replace t.counts v (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts v))
  end

let tally_plurality t =
  Hashtbl.fold
    (fun v c best ->
      match best with
      | Some (bv, bc) when c < bc || (c = bc && v >= bv) -> Some (bv, bc)
      | _ -> Some (v, c))
    t.counts None

type state = {
  ctx : Fba_sim.Ctx.t;
  root_slot : int option;  (* my slot in the root committee, if any *)
  contribs : string option array;  (* received root contributions by slot *)
  mutable pk : Phase_king.t array;  (* one instance per root slot, from round 2 *)
  committee_values : (int * int, string) Hashtbl.t;  (* adopted per committee *)
  relay_tallies : (int * int, tally) Hashtbl.t;
  inform_tally : tally;
  mutable result : string option;
}

let name = "aeba"
let compile _ = ()

(* Phase markers follow the global round schedule, so every node can
   announce them; Events.phase keeps only the first activation. *)
let mark cfg ~round name =
  match cfg.events with None -> () | Some k -> Fba_sim.Events.phase k ~round name

let mark_schedule cfg ~round =
  match cfg.events with
  | None -> ()
  | Some _ ->
    if round = 2 then mark cfg ~round "phase-king"
    else if round >= cfg.t_pk_end then begin
      let levels = Committee_tree.levels cfg.tree in
      let off = round - cfg.t_pk_end in
      if off mod 2 = 0 && off / 2 <= levels then begin
        let level = off / 2 in
        if level = levels then mark cfg ~round "inform"
        else mark cfg ~round (Printf.sprintf "relay-L%d" level)
      end
    end

let root_slot_of tree id =
  let root = Committee_tree.root tree in
  let slot = ref None in
  Array.iteri (fun i m -> if m = id && !slot = None then slot := Some i) root;
  !slot

let default_contrib cfg = String.make ((cfg.contrib_bits + 7) / 8) '\000'

let init cfg ctx =
  let id = ctx.Fba_sim.Ctx.id in
  let root = Committee_tree.root cfg.tree in
  let root_slot = root_slot_of cfg.tree id in
  let st =
    {
      ctx;
      root_slot;
      contribs = Array.make (Array.length root) None;
      pk = [||];
      committee_values = Hashtbl.create 4;
      relay_tallies = Hashtbl.create 4;
      inform_tally = fresh_tally ();
      result = None;
    }
  in
  mark cfg ~round:0 "contrib";
  let outs =
    match root_slot with
    | None -> []
    | Some slot ->
      (* Contribute private random bits for my slice of gstring. *)
      let v = Bytes.unsafe_to_string (Prng.bits ctx.Fba_sim.Ctx.rng cfg.contrib_bits) in
      st.contribs.(slot) <- Some v;
      Array.to_list (Array.map (fun dst -> (dst, Contrib { slot; v })) root)
  in
  (st, outs)

let assemble_gstring st =
  String.concat "" (Array.to_list (Array.map Phase_king.current st.pk))

(* Sends for the dissemination hop of committee (level, index), whose
   adopted value is [v]. *)
let relay_sends cfg ~level ~index v =
  let tree = cfg.tree in
  if level >= Committee_tree.levels tree then begin
    let group = Committee_tree.group_members tree index in
    Array.to_list (Array.map (fun dst -> (dst, Inform { v })) group)
  end
  else begin
    List.concat_map
      (fun (cl, ci) ->
        Array.to_list
          (Array.map
             (fun dst -> (dst, Relay { level = cl; index = ci; v }))
             (Committee_tree.committee tree ~level:cl ~index:ci)))
      (Committee_tree.children tree ~level ~index)
  end

let on_round cfg st ~round =
  mark_schedule cfg ~round;
  let id = st.ctx.Fba_sim.Ctx.id in
  let outs = ref [] in
  (* Root committee: drive the per-slot phase-king instances. *)
  (match st.root_slot with
  | None -> ()
  | Some _ ->
    if round = 2 then
      st.pk <-
        Array.init (Array.length st.contribs) (fun slot ->
            let initial =
              match st.contribs.(slot) with Some v -> v | None -> default_contrib cfg
            in
            Phase_king.create ~members:(Committee_tree.root cfg.tree) ~me:id ~initial);
    if round >= 2 && Array.length st.pk > 0 then begin
      let local = round - 2 in
      if local <= cfg.pk_rounds then
        Array.iteri
          (fun slot pk ->
            List.iter
              (fun (dst, inner) -> outs := (dst, Pk { slot; inner }) :: !outs)
              (Phase_king.on_round pk ~round:local))
          st.pk
    end;
    (* Root's dissemination hop. *)
    if round = cfg.t_pk_end then begin
      let g = assemble_gstring st in
      Hashtbl.replace st.committee_values (0, 0) g;
      outs := List.rev_append (relay_sends cfg ~level:0 ~index:0 g) !outs
    end);
  (* Non-root committees: adopt plurality and relay on schedule. *)
  List.iter
    (fun (level, index) ->
      if level > 0 && round = cfg.t_pk_end + (2 * level) then begin
        let v =
          match Hashtbl.find_opt st.relay_tallies (level, index) with
          | Some t -> (match tally_plurality t with Some (v, _) -> v | None -> default_contrib cfg)
          | None -> default_contrib cfg
        in
        Hashtbl.replace st.committee_values (level, index) v;
        outs := List.rev_append (relay_sends cfg ~level ~index v) !outs
      end)
    (Committee_tree.memberships cfg.tree id);
  (* Every node: final adoption from its leaf committee. *)
  if round = cfg.rounds_total && st.result = None then begin
    let v =
      match tally_plurality st.inform_tally with
      | Some (v, _) -> v
      | None -> String.concat "" (List.init (Array.length st.contribs) (fun _ -> default_contrib cfg))
    in
    st.result <- Some v
  end;
  List.rev !outs

let on_receive cfg st ~round:_ ~src m =
  let id = st.ctx.Fba_sim.Ctx.id in
  let tree = cfg.tree in
  (match m with
  | Contrib { slot; v } ->
    (* Only root members exchange contributions; slot must match the
       sender's position in the root committee. *)
    (match st.root_slot with
    | Some _ when slot >= 0 && slot < Array.length st.contribs ->
      let root = Committee_tree.root tree in
      if root.(slot) = src && st.contribs.(slot) = None && String.length v = contrib_bytes cfg
      then st.contribs.(slot) <- Some v
    | _ -> ())
  | Pk { slot; inner } ->
    if st.root_slot <> None && Array.length st.pk > 0 && slot >= 0 && slot < Array.length st.pk
    then Phase_king.on_receive st.pk.(slot) ~round:0 ~src inner
  | Relay { level; index; v } ->
    (* Accept only on the edge parent-committee -> my committee. *)
    if
      level >= 1
      && level <= Committee_tree.levels tree
      && index >= 0
      && index < 1 lsl level
      && Committee_tree.is_member tree ~level ~index id
      && Committee_tree.is_member tree ~level:(level - 1) ~index:(index / 2) src
    then begin
      let t =
        match Hashtbl.find_opt st.relay_tallies (level, index) with
        | Some t -> t
        | None ->
          let t = fresh_tally () in
          Hashtbl.add st.relay_tallies (level, index) t;
          t
      in
      tally_add t ~src v
    end
  | Inform { v } ->
    let leaf_level = Committee_tree.levels tree in
    let g = Committee_tree.group_of tree id in
    if Committee_tree.is_member tree ~level:leaf_level ~index:g src then
      tally_add st.inform_tally ~src v);
  []

let output st = st.result

let node_output = output

let msg_bits cfg m =
  let id_bits = Intx.ceil_log2 (max 2 cfg.n) in
  let header = 8 + (2 * id_bits) in
  let payload =
    match m with
    | Contrib { v; _ } -> 8 + (8 * String.length v)
    | Pk { inner = Phase_king.Value v | Phase_king.King v; _ } -> 16 + (8 * String.length v)
    | Relay { v; _ } -> 16 + (8 * String.length v)
    | Inform { v } -> 8 * String.length v
  in
  header + payload

let receive_into = None

let pp_msg _cfg fmt = function
  | Contrib { slot; _ } -> Format.fprintf fmt "Contrib(slot=%d)" slot
  | Pk { slot; inner = Phase_king.Value _ } -> Format.fprintf fmt "Pk(Value, slot=%d)" slot
  | Pk { slot; inner = Phase_king.King _ } -> Format.fprintf fmt "Pk(King, slot=%d)" slot
  | Relay { level; index; _ } -> Format.fprintf fmt "Relay(%d,%d)" level index
  | Inform _ -> Format.fprintf fmt "Inform"

let msg_tags _cfg = [| "Contrib"; "Pk"; "Relay"; "Inform" |]
let msg_tag _cfg = function Contrib _ -> 0 | Pk _ -> 1 | Relay _ -> 2 | Inform _ -> 3

let reference_string outputs correct_mask =
  let counts = Hashtbl.create 8 in
  Array.iteri
    (fun i o ->
      match o with
      | Some v when correct_mask.(i) ->
        Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
      | _ -> ())
    outputs;
  Hashtbl.fold
    (fun v c best ->
      match best with
      | Some (_, bc) when c <= bc -> best
      | _ -> Some (v, c))
    counts None
  |> Option.map fst
