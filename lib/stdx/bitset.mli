(** Fixed-capacity bitsets over integers [\[0, capacity)].

    Used for corruption sets, knowledgeable sets and quorum membership
    where dense integer sets beat hash tables. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [\[0, capacity)]. *)

val capacity : t -> int
(** Maximum element count (exclusive upper bound of members). *)

val mem : t -> int -> bool
(** Membership; raises [Invalid_argument] out of range. *)

val add : t -> int -> unit
(** Add an element in place. *)

val remove : t -> int -> unit
(** Remove an element in place. *)

val cardinal : t -> int
(** Number of members. O(capacity/64). *)

val is_empty : t -> bool

val equal : t -> t -> bool
(** Same capacity and same members. O(capacity/8), no allocation. *)

val copy : t -> t

val clear : t -> unit
(** Remove all elements. *)

val of_list : int -> int list -> t
(** [of_list capacity elements]. *)

val of_array : int -> int array -> t

val to_list : t -> int list
(** Members in increasing order. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val union : t -> t -> t
(** New set; capacities must match. *)

val inter : t -> t -> t
(** New set; capacities must match. *)

val diff : t -> t -> t
(** New set; capacities must match. *)

val complement : t -> t
(** New set of all non-members. *)

val count_in : t -> int array -> int
(** [count_in t a] is the number of entries of [a] that are members of
    [t]; entries outside capacity raise [Invalid_argument]. *)
