(* Linear probing over a power-of-two array. Slot occupancy lives in a
   separate byte string so that 0L needs no reserved-key treatment and
   values need no option boxing; the value array is materialized lazily
   from the first inserted element (which doubles as the filler, as in
   Vec). *)

type 'a t = {
  mutable keys : int64 array;
  mutable vals : 'a array;  (* [||] until the first insert *)
  mutable used : Bytes.t;
  mutable mask : int;  (* capacity - 1 *)
  mutable count : int;
}

let initial_capacity = 16

let create () =
  {
    keys = Array.make initial_capacity 0L;
    vals = [||];
    used = Bytes.make initial_capacity '\000';
    mask = initial_capacity - 1;
    count = 0;
  }

let length t = t.count

(* Fibonacci-style multiplicative finishing: the keys are hash
   accumulators that may not avalanche in their low bits. Native-int
   arithmetic on the truncated key keeps probing allocation-free
   (Int64 arithmetic boxes every intermediate on non-flambda
   compilers); the full 64-bit key is still what slots compare. *)
let slot_of key mask = (Int64.to_int key * 0x9E3779B97F4A7C1) lsr 30 land mask

let rec probe t key i =
  if Bytes.get t.used i = '\000' then -1 - i
  else if Int64.equal t.keys.(i) key then i
  else probe t key ((i + 1) land t.mask)

let find_slot t key = probe t key (slot_of key t.mask)

let mem t key = find_slot t key >= 0

let get t key =
  let i = find_slot t key in
  if i >= 0 then t.vals.(i) else raise Not_found

let find_opt t key =
  let i = find_slot t key in
  if i >= 0 then Some t.vals.(i) else None

let grow t =
  let old_keys = t.keys and old_vals = t.vals and old_used = t.used in
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap 0L;
  t.vals <- (if Array.length old_vals = 0 then [||] else Array.make cap old_vals.(0));
  t.used <- Bytes.make cap '\000';
  t.mask <- cap - 1;
  for i = 0 to Array.length old_keys - 1 do
    if Bytes.get old_used i <> '\000' then begin
      let j =
        let rec free j = if Bytes.get t.used j = '\000' then j else free ((j + 1) land t.mask) in
        free (slot_of old_keys.(i) t.mask)
      in
      t.keys.(j) <- old_keys.(i);
      t.vals.(j) <- old_vals.(i);
      Bytes.set t.used j '\001'
    end
  done

let set t key v =
  if 2 * (t.count + 1) > t.mask + 1 then grow t;
  if Array.length t.vals = 0 then t.vals <- Array.make (t.mask + 1) v;
  let i = find_slot t key in
  if i >= 0 then t.vals.(i) <- v
  else begin
    let i = -1 - i in
    t.keys.(i) <- key;
    t.vals.(i) <- v;
    Bytes.set t.used i '\001';
    t.count <- t.count + 1
  end

let clear t =
  Bytes.fill t.used 0 (Bytes.length t.used) '\000';
  t.count <- 0

let iter f t =
  for i = 0 to Array.length t.keys - 1 do
    if Bytes.get t.used i <> '\000' then f t.keys.(i) t.vals.(i)
  done
