(** Growable arrays for allocation-free hot loops.

    The simulation engines route every message through per-round
    mailboxes; cons-list accumulation allocates two to three words per
    message per round on top of the envelope itself. A [Vec] amortizes
    that to zero: the backing array is reused across rounds ([clear]
    keeps storage), and double-buffered mailboxes exchange their
    contents with [swap] instead of copying. *)

type 'a t

val create : unit -> 'a t
(** Empty vector with no storage; the first [push] allocates. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** Replace an existing element; raises [Invalid_argument] out of
    bounds (cannot extend — use [push]). *)

val push : 'a t -> 'a -> unit
(** Append, doubling the backing array when full (amortized O(1)). *)

val pop : 'a t -> 'a
(** Remove and return the last element in O(1) (storage retained, so
    the popped element stays reachable until overwritten). Raises
    [Invalid_argument] on an empty vector. *)

val clear : 'a t -> unit
(** Set the length to zero. Storage is retained for reuse, so
    previously pushed elements stay reachable until overwritten. *)

val capacity : 'a t -> int
(** Allocated slots in the backing array (≥ [length]) — the retained
    footprint [clear] keeps alive, in elements. *)

val reset : 'a t -> unit
(** Like [clear], but drop the backing array too — the eviction path:
    the next [push] starts from an empty allocation. *)

val swap : 'a t -> 'a t -> unit
(** Exchange the contents (storage and length) of two vectors in O(1). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate in push order over the elements present when iteration of
    each index occurs; elements pushed mid-iteration are visited. *)

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes every element of [src] onto [dst]. *)

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list
(** Elements in push order. *)

val to_array : 'a t -> 'a array
(** Fresh array of the live prefix. *)

val of_list : 'a list -> 'a t
