type 'a outcome =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

let recommended_jobs ?cap () =
  let base =
    match Sys.getenv_opt "FBA_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  let base = match cap with Some c -> min c base | None -> base in
  max 1 base

let unwrap results =
  (* Lowest-index failure wins, whatever order the workers hit them. *)
  Array.iter
    (function Failed (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
    results;
  Array.map
    (function Done v -> v | Pending | Failed _ -> assert false)
    results

let run_seq f len =
  let results = Array.make len Pending in
  for i = 0 to len - 1 do
    results.(i) <- Done (f i)
  done;
  unwrap results

let run ~jobs f len =
  if len = 0 then [||]
  else if jobs <= 1 || len = 1 then run_seq f len
  else begin
    let jobs = min jobs len in
    let results = Array.make len Pending in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    (* Each slot is written by exactly one domain and read only after
       the joins below, which order those writes before the reads. *)
    let rec worker () =
      if not (Atomic.get failed) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < len then begin
          (match f i with
          | v -> results.(i) <- Done v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            results.(i) <- Failed (e, bt);
            Atomic.set failed true);
          worker ()
        end
      end
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the pool's last worker. *)
    (try worker ()
     with e ->
       (* A crash here (stack overflow, out of memory) must not leak
          the spawned domains. *)
       Atomic.set failed true;
       Array.iter Domain.join domains;
       raise e);
    Array.iter Domain.join domains;
    unwrap results
  end

let map ~jobs f arr = run ~jobs (fun i -> f arr.(i)) (Array.length arr)

let map_list ~jobs f l =
  Array.to_list (map ~jobs f (Array.of_list l))
