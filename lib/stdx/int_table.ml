(* Open-addressing int -> int table, the immediate-key twin of
   I64_table. Keys are non-negative packed identifiers (sid, (x, s)
   pairs, bitmask slots), so -1 works as the empty-slot marker and the
   whole table is two unboxed int arrays — no Bytes occupancy plane,
   no boxing, no per-entry allocation. Used as the protocol's set and
   counter representation, where Hashtbl's per-probe hashing and
   per-add bucket cons dominate the delivery path. *)

type t = {
  mutable keys : int array;  (* -1 = empty slot *)
  mutable vals : int array;
  mutable mask : int;  (* capacity - 1 *)
  mutable count : int;
}

let initial_capacity = 16

let create ?(capacity = initial_capacity) () =
  let cap =
    let rec up c = if c >= capacity then c else up (2 * c) in
    up initial_capacity
  in
  { keys = Array.make cap (-1); vals = Array.make cap 0; mask = cap - 1; count = 0 }

let length t = t.count

(* Fibonacci multiplicative hashing: packed keys are structured (field
   concatenations), so low bits alone would cluster. *)
let slot_of key mask = key * 0x9E3779B97F4A7C1 lsr 30 land mask

let rec probe keys key mask i =
  let k = Array.unsafe_get keys i in
  if k = key then i else if k = -1 then -1 - i else probe keys key mask ((i + 1) land mask)

let find_slot t key = probe t.keys key t.mask (slot_of key t.mask)

let mem t key = find_slot t key >= 0

let get_or t key ~default =
  let i = find_slot t key in
  if i >= 0 then Array.unsafe_get t.vals i else default

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  for i = 0 to Array.length old_keys - 1 do
    let key = old_keys.(i) in
    if key >= 0 then begin
      let j =
        let rec free j = if t.keys.(j) = -1 then j else free ((j + 1) land t.mask) in
        free (slot_of key t.mask)
      in
      t.keys.(j) <- key;
      t.vals.(j) <- old_vals.(i)
    end
  done

let set t key v =
  if key < 0 then invalid_arg "Int_table.set: negative key";
  if 2 * (t.count + 1) > t.mask + 1 then grow t;
  let i = find_slot t key in
  if i >= 0 then t.vals.(i) <- v
  else begin
    let i = -1 - i in
    t.keys.(i) <- key;
    t.vals.(i) <- v;
    t.count <- t.count + 1
  end

(* Set-flavoured entry points: [add] is first-insertion detection (the
   value plane is unused), [incr] is an in-place counter bump returning
   the new count, [add_bit] maintains a 62-bit presence mask. All three
   are single-probe on the hit path. *)

let add t key =
  if key < 0 then invalid_arg "Int_table.add: negative key";
  if 2 * (t.count + 1) > t.mask + 1 then grow t;
  let i = find_slot t key in
  if i >= 0 then false
  else begin
    let i = -1 - i in
    t.keys.(i) <- key;
    t.vals.(i) <- 0;
    t.count <- t.count + 1;
    true
  end

let incr t key =
  if key < 0 then invalid_arg "Int_table.incr: negative key";
  if 2 * (t.count + 1) > t.mask + 1 then grow t;
  let i = find_slot t key in
  if i >= 0 then begin
    let v = t.vals.(i) + 1 in
    t.vals.(i) <- v;
    v
  end
  else begin
    let i = -1 - i in
    t.keys.(i) <- key;
    t.vals.(i) <- 1;
    t.count <- t.count + 1;
    1
  end

let add_bit t key ~bit =
  if key < 0 then invalid_arg "Int_table.add_bit: negative key";
  if 2 * (t.count + 1) > t.mask + 1 then grow t;
  let b = 1 lsl bit in
  let i = find_slot t key in
  if i >= 0 then begin
    let v = t.vals.(i) in
    if v land b <> 0 then false
    else begin
      t.vals.(i) <- v lor b;
      true
    end
  end
  else begin
    let i = -1 - i in
    t.keys.(i) <- key;
    t.vals.(i) <- b;
    t.count <- t.count + 1;
    true
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  t.count <- 0

let reset t =
  t.keys <- Array.make initial_capacity (-1);
  t.vals <- Array.make initial_capacity 0;
  t.mask <- initial_capacity - 1;
  t.count <- 0

let capacity_words t = 2 * (t.mask + 1)

let iter f t =
  for i = 0 to Array.length t.keys - 1 do
    let key = Array.unsafe_get t.keys i in
    if key >= 0 then f key t.vals.(i)
  done
