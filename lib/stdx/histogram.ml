type t = { counts : (int, int) Hashtbl.t; mutable total : int }

let create () = { counts = Hashtbl.create 16; total = 0 }

let add_many t v k =
  if v < 0 then invalid_arg "Histogram.add: negative value";
  if k < 0 then invalid_arg "Histogram.add_many: negative count";
  if k > 0 then begin
    Hashtbl.replace t.counts v (k + Option.value ~default:0 (Hashtbl.find_opt t.counts v));
    t.total <- t.total + k
  end

let add t v = add_many t v 1

let count t v = Option.value ~default:0 (Hashtbl.find_opt t.counts v)

let total t = t.total

let to_rows t =
  List.sort compare (Hashtbl.fold (fun v c acc -> if c > 0 then (v, c) :: acc else acc) t.counts [])

let max_value t =
  match List.rev (to_rows t) with [] -> None | (v, _) :: _ -> Some v

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  let target = p /. 100.0 *. float_of_int t.total in
  let rec scan acc = function
    | [] -> invalid_arg "Histogram.percentile: unreachable"
    | [ (v, _) ] -> v
    | (v, c) :: rest ->
      let acc = acc + c in
      if float_of_int acc >= target then v else scan acc rest
  in
  scan 0 (to_rows t)

let percentile_opt t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile_opt: p out of range";
  if t.total = 0 then None else Some (percentile t p)

let render ?(width = 40) t =
  let rows = to_rows t in
  let peak = List.fold_left (fun m (_, c) -> max m c) 1 rows in
  let label_width =
    List.fold_left (fun m (v, _) -> max m (String.length (string_of_int v))) 1 rows
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (v, c) ->
      let bar = max 1 (c * width / peak) in
      Buffer.add_string buf (Printf.sprintf "%*d | %s  %d\n" label_width v (String.make bar '#') c))
    rows;
  Buffer.contents buf
