type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

(* The pushed element doubles as the array filler, so no dummy value is
   ever needed and slots past [len] only ever hold previously live
   elements. *)
let push t x =
  if t.len = Array.length t.data then begin
    let cap = if t.len = 0 then 16 else 2 * t.len in
    let data = Array.make cap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let clear t = t.len <- 0

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty vector";
  t.len <- t.len - 1;
  t.data.(t.len)

let capacity t = Array.length t.data

let reset t =
  t.data <- [||];
  t.len <- 0

let swap a b =
  let data = a.data and len = a.len in
  a.data <- b.data;
  a.len <- b.len;
  b.data <- data;
  b.len <- len

let iter f t =
  let i = ref 0 in
  while !i < t.len do
    f t.data.(!i);
    incr i
  done

let append dst src =
  (* via the length, not [iter], so appending a vec to itself terminates *)
  let n = src.len in
  for i = 0 to n - 1 do
    push dst src.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.data.(i) :: acc) in
  build (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t
