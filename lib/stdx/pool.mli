(** Fixed worker pool over OCaml 5 domains.

    [run ~jobs f len] evaluates [f 0 .. f (len-1)] across at most
    [jobs] domains and returns the results in index order. Tasks are
    claimed from a shared atomic counter, so unequal task costs
    self-balance; results land in their own slot, so collection is
    ordered by construction and independent of scheduling.

    The tasks must be isolated: [f i] may freely allocate and mutate
    state it creates itself, but must not touch mutable state shared
    with another task. Under that contract the result array is
    identical for every [jobs] value — parallelism cannot be observed
    in the output.

    [jobs <= 1] (or a single task) runs everything inline on the
    calling domain, in index order, spawning nothing: the degenerate
    path is ordinary sequential code.

    If a task raises, the pool stops handing out new tasks, waits for
    in-flight tasks, and re-raises the pending exception with the
    smallest task index (with its backtrace). Results of completed
    tasks are discarded in that case. *)

val recommended_jobs : ?cap:int -> unit -> int
(** Default worker count: the [FBA_JOBS] environment variable when set
    to a positive integer, otherwise [Domain.recommended_domain_count
    ()]; clamped to [>= 1], and to [<= cap] when [cap] is given. There
    is no built-in ceiling — machines with more cores get more
    domains unless the caller or the environment says otherwise. *)

val run : jobs:int -> (int -> 'a) -> int -> 'a array
(** [run ~jobs f len] is [[| f 0; ...; f (len-1) |]], computed on
    [min jobs len] domains. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] is [Array.map f arr] via {!run}. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f l] is [List.map f l] via {!run}. *)
