(** Small integer histograms with ASCII rendering.

    Used to display decision-round and per-node-load distributions in
    experiment output — the paper's time bounds are about the {e tail}
    of the decision distribution, which a mean hides. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Count one occurrence of a value. Negative values are rejected with
    [Invalid_argument]. *)

val add_many : t -> int -> int -> unit
(** [add_many t v k] counts [k] occurrences. *)

val count : t -> int -> int

val total : t -> int

val max_value : t -> int option
(** Largest value with a non-zero count. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [\[0,100\]]: smallest value v such that
    at least [p]% of the mass is ≤ v. Raises [Invalid_argument] on an
    empty histogram — callers that may see degenerate (zero-sample)
    runs should use {!percentile_opt} instead. *)

val percentile_opt : t -> float -> int option
(** Total version of {!percentile}: [None] on an empty histogram
    (degenerate runs report "-" / null instead of crashing). Still
    raises [Invalid_argument] when [p] is outside [\[0,100\]]. *)

val to_rows : t -> (int * int) list
(** (value, count) pairs in increasing value order, zero counts
    skipped. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one line per distinct value:
    {v
    4 | ########################################  812
    5 | ###                                        61
    v} *)
