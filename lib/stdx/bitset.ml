type t = { words : Bytes.t; capacity : int }

(* Implemented over Bytes to keep the representation compact; a word
   array would also work but Bytes gives us blit/fill for free. *)

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((capacity + 7) / 8) '\000'; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: element out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.words b (Char.chr (Char.code (Bytes.get t.words b) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.words b
    (Char.chr (Char.code (Bytes.get t.words b) land lnot (1 lsl (i land 7)) land 0xff))

let popcount_byte =
  let table = Array.init 256 (fun i ->
    let rec count n = if n = 0 then 0 else (n land 1) + count (n lsr 1) in
    count i)
  in
  fun c -> table.(Char.code c)

let cardinal t =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) t.words;
  !acc

let is_empty t = cardinal t = 0

let copy t = { words = Bytes.copy t.words; capacity = t.capacity }

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let of_list capacity elements =
  let t = create capacity in
  List.iter (add t) elements;
  t

let of_array capacity elements =
  let t = create capacity in
  Array.iter (add t) elements;
  t

let iter f t =
  for i = 0 to t.capacity - 1 do
    if Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let fold f init t =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

(* Phantom bits past [capacity] are kept zero by every constructor
   (complement masks them), so a raw byte comparison is sound. *)
let equal a b = a.capacity = b.capacity && Bytes.equal a.words b.words

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let map2 f a b =
  same_capacity a b;
  let out = create a.capacity in
  for i = 0 to Bytes.length a.words - 1 do
    Bytes.set out.words i
      (Char.chr (f (Char.code (Bytes.get a.words i)) (Char.code (Bytes.get b.words i)) land 0xff))
  done;
  out

let union a b = map2 (lor) a b
let inter a b = map2 (land) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement t =
  let out = create t.capacity in
  for i = 0 to Bytes.length t.words - 1 do
    Bytes.set out.words i (Char.chr (lnot (Char.code (Bytes.get t.words i)) land 0xff))
  done;
  (* Mask out phantom bits past capacity. *)
  let rem = t.capacity land 7 in
  if rem <> 0 && Bytes.length out.words > 0 then begin
    let last = Bytes.length out.words - 1 in
    Bytes.set out.words last (Char.chr (Char.code (Bytes.get out.words last) land ((1 lsl rem) - 1)))
  end;
  out

let count_in t a =
  let acc = ref 0 in
  Array.iter (fun i -> if mem t i then incr acc) a;
  !acc
