(** Open-addressing hash table keyed by [int64].

    Built for the sampler caches: quorum lookups key on the absorbed
    64-bit hash state of [(s, x)] or [(x, r)], so a generic [Hashtbl]
    over those tuples boxes a fresh key on every probe. This table
    probes with the int64 directly — no per-lookup allocation on hits
    ([get] raises [Not_found] instead of returning an option) — using
    linear probing over a power-of-two slot array at load factor
    <= 1/2. Keys cannot be removed; [clear] drops everything. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
(** Number of distinct keys present. *)

val mem : 'a t -> int64 -> bool

val get : 'a t -> int64 -> 'a
(** Raises [Not_found]; allocation-free on the hit path. *)

val find_opt : 'a t -> int64 -> 'a option

val set : 'a t -> int64 -> 'a -> unit
(** Insert or replace. *)

val clear : 'a t -> unit
(** Forget all bindings, retaining storage. *)

val iter : (int64 -> 'a -> unit) -> 'a t -> unit
