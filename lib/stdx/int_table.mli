(** Open-addressing [int -> int] hash table — the immediate-key twin
    of {!I64_table}.

    Keys are non-negative packed identifiers (interned ids, packed
    (x, s) pairs, bitmask slots); [-1] marks an empty slot, so the
    table is two unboxed int arrays with no occupancy side plane and
    no allocation on any operation except growth. The protocol's
    per-node sets and counters use it in place of [Hashtbl], whose
    per-probe hashing and per-binding bucket cons dominate the message
    delivery path at sweep sizes. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty table; [capacity] (default 16) rounds up to a power of two. *)

val length : t -> int
(** Number of distinct keys present. *)

val mem : t -> int -> bool

val get_or : t -> int -> default:int -> int
(** Value bound to the key, or [default] if absent. Allocation-free. *)

val set : t -> int -> int -> unit
(** Bind (or rebind) the key. Raises [Invalid_argument] on a negative
    key. *)

val add : t -> int -> bool
(** Set-flavoured insert: [true] iff the key was absent (it is bound
    to [0]). One probe; the membership test and the insertion share it. *)

val incr : t -> int -> int
(** Bump the key's counter in place (absent counts as 0) and return
    the new value. *)

val add_bit : t -> int -> bit:int -> bool
(** Treat the key's value as a presence mask: set bit [bit]
    (0 ≤ bit < 62) and return [true] iff it was clear. One probe.
    Together with a counter kept via {!incr} this represents sets of
    quorum positions without per-element storage. *)

val clear : t -> unit
(** Remove every binding, keeping the storage. *)

val reset : t -> unit
(** Remove every binding {e and} shrink the storage back to the
    initial capacity — the state-eviction path: a table whose rows can
    no longer be referenced gives its words back to the GC. *)

val capacity_words : t -> int
(** Words currently held by the two backing arrays (2 × capacity) —
    the retained footprint, for peak-memory accounting. *)

val iter : (int -> int -> unit) -> t -> unit
(** Iterate bindings in unspecified (slot) order. *)
