open Fba_stdx

type config = {
  n : int;
  members : int array;
  slot_of : (int, int) Hashtbl.t;  (* node id -> committee slot *)
  relays : int;
  initial : int -> string;
  str_bits : int;
}

let make_config ?(committee_factor = 2.0) ?relays ~n ~seed ~initial ~str_bits () =
  if n < 2 then invalid_arg "Committee_relay.make_config: n < 2";
  if str_bits < 1 then invalid_arg "Committee_relay.make_config: str_bits < 1";
  if committee_factor <= 0.0 then
    invalid_arg "Committee_relay.make_config: committee_factor <= 0";
  let size =
    Intx.clamp ~lo:1 ~hi:n
      (int_of_float (ceil (committee_factor *. sqrt (float_of_int n))))
  in
  let sampler =
    Fba_samplers.Sampler.create
      ~seed:(Hash64.finish (Hash64.add_int (Hash64.init seed) 0x5e1))
      ~n ~d:size
  in
  let members = Fba_samplers.Sampler.quorum_xr sampler ~x:0 ~r:0L in
  let slot_of = Hashtbl.create size in
  Array.iteri (fun slot id -> if not (Hashtbl.mem slot_of id) then Hashtbl.add slot_of id slot) members;
  let relays =
    match relays with
    | Some k when k >= 1 && k <= size -> k
    | Some _ -> invalid_arg "Committee_relay.make_config: relays out of range"
    | None -> min size ((2 * Intx.ceil_log2 (max 2 n)) + 1)
  in
  { n; members; slot_of; relays; initial; str_bits }

let committee cfg = cfg.members

(* Relay j of node x: a deterministic stride through the committee, so
   a relay can enumerate its assigned nodes without any request
   traffic. *)
let relay_slot cfg ~x ~j = (x + 1 + (j * ((Array.length cfg.members / cfg.relays) + 1)))
                           mod Array.length cfg.members

let is_relay_of cfg ~slot ~x =
  let rec loop j = j < cfg.relays && (relay_slot cfg ~x ~j = slot || loop (j + 1)) in
  loop 0

type msg = Exchange of string | Deliver of string

type tally = { mutable seen : int list; counts : (string, int) Hashtbl.t }

let fresh_tally () = { seen = []; counts = Hashtbl.create 8 }

let tally_add t ~src v =
  if not (List.mem src t.seen) then begin
    t.seen <- src :: t.seen;
    Hashtbl.replace t.counts v (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts v))
  end

let tally_plurality t =
  Hashtbl.fold
    (fun v c best ->
      match best with
      | Some (bv, bc) when c < bc || (c = bc && v >= bv) -> Some (bv, bc)
      | _ -> Some (v, c))
    t.counts None

type state = {
  ctx : Fba_sim.Ctx.t;
  slot : int option;  (* my committee slot, if a member *)
  exchange_tally : tally;
  deliver_tally : tally;
  mutable result : string option;
}

let name = "committee-relay"
let compile _ = ()

let init cfg ctx =
  let id = ctx.Fba_sim.Ctx.id in
  let slot = Hashtbl.find_opt cfg.slot_of id in
  let st = { ctx; slot; exchange_tally = fresh_tally (); deliver_tally = fresh_tally (); result = None } in
  let outs =
    match slot with
    | None -> []
    | Some _ ->
      let v = cfg.initial id in
      tally_add st.exchange_tally ~src:id v;
      Array.to_list
        (Array.map (fun dst -> (dst, Exchange v)) cfg.members)
      |> List.filter (fun (dst, _) -> dst <> id)
  in
  (st, outs)

let on_round cfg st ~round =
  let id = st.ctx.Fba_sim.Ctx.id in
  match round with
  | 2 ->
    (* Exchanges arrived during round 1: members adopt the committee
       majority and push it to their assigned nodes. *)
    (match st.slot with
    | None -> []
    | Some slot ->
      let v =
        match tally_plurality st.exchange_tally with
        | Some (v, _) -> v
        | None -> cfg.initial id
      in
      let outs = ref [] in
      for x = 0 to cfg.n - 1 do
        if is_relay_of cfg ~slot ~x then outs := (x, Deliver v) :: !outs
      done;
      !outs)
  | 4 ->
    if st.result = None then
      st.result <-
        (match tally_plurality st.deliver_tally with
        | Some (v, _) -> Some v
        | None -> Some (cfg.initial id));
    []
  | _ -> []

let on_receive cfg st ~round:_ ~src m =
  let id = st.ctx.Fba_sim.Ctx.id in
  (match m with
  | Exchange v ->
    if st.slot <> None && Hashtbl.mem cfg.slot_of src then
      tally_add st.exchange_tally ~src v
  | Deliver v ->
    (match Hashtbl.find_opt cfg.slot_of src with
    | Some slot when is_relay_of cfg ~slot ~x:id -> tally_add st.deliver_tally ~src v
    | _ -> ()));
  []

let output st = st.result

let msg_bits cfg m =
  let id_bits = Intx.ceil_log2 (max 2 cfg.n) in
  let header = 8 + (2 * id_bits) in
  match m with Exchange _ | Deliver _ -> header + cfg.str_bits

let receive_into = None

let pp_msg _cfg fmt = function
  | Exchange _ -> Format.fprintf fmt "Exchange"
  | Deliver _ -> Format.fprintf fmt "Deliver"

let msg_tags _cfg = [| "Exchange"; "Deliver" |]
let msg_tag _cfg = function Exchange _ -> 0 | Deliver _ -> 1

let total_rounds = 5
