(** Communication and time accounting for a protocol execution.

    The paper's communication complexity (Section 2.1) is the total
    number of exchanged bits divided by n ("amortized"); because AER is
    deliberately *not* load-balanced, we also track per-node maxima, and
    we separate traffic sent by correct nodes from Byzantine-triggered
    receptions so that flooding attacks are visible in the numbers
    rather than hidden in an average. *)

type t

val create : n:int -> corrupted:Fba_stdx.Bitset.t -> t

val n : t -> int

val corrupted : t -> Fba_stdx.Bitset.t

val record_send : t -> src:int -> dst:int -> bits:int -> unit
(** Account one message of [bits] payload bits (headers included by the
    protocol's [msg_bits]). *)

val record_decision : t -> id:int -> round:int -> unit
(** First decision round of node [id]; later calls are ignored. *)

val set_rounds : t -> int -> unit
(** Total rounds (or normalized async time) the execution used. *)

val rounds : t -> int

val set_peak_mailbox_words : t -> int -> unit
(** Peak delivery-plane footprint (mailbox/calendar words) of the
    execution; keeps the maximum across calls. *)

val peak_mailbox_words : t -> int

val sent_messages_of : t -> int -> int
val sent_bits_of : t -> int -> int
val recv_messages_of : t -> int -> int
val recv_bits_of : t -> int -> int

val total_bits_correct : t -> int
(** Bits sent by correct nodes. *)

val total_messages_correct : t -> int
(** Messages sent by correct nodes — Lemmas 9/10 bound this by O~(n). *)

val total_bits_all : t -> int
(** Bits sent by everyone, Byzantine flooding included. *)

val amortized_bits : t -> float
(** [total_bits_correct / n] — the paper's communication metric. *)

val max_sent_bits_correct : t -> int
(** Heaviest correct sender, for the load-balance column of Fig. 1(a). *)

val max_recv_bits_correct : t -> int

val load_imbalance : t -> float
(** max correct node traffic (sent+received) divided by the mean;
    1.0 is perfectly balanced. Degenerate executions — an empty correct
    set, or no correct node having sent or received anything — return
    0. instead of dividing by zero. *)

val decision_round : t -> int -> int option

val decided_count : t -> int
(** Number of nodes with a recorded decision. *)

val max_decision_round_correct : t -> int option
(** Latest decision among correct nodes, or [None] if some correct node
    never decided. *)

val merge_phases : t -> t -> t
(** [merge_phases first second] combines the accounting of two
    consecutive protocol phases over the same node set (e.g.
    almost-everywhere agreement followed by AER): traffic counters are
    summed, rounds are added, and decisions are taken from [second]
    offset by [first]'s round count. Raises [Invalid_argument] if
    sizes or corruption sets differ. *)

val pp_summary : Format.formatter -> t -> unit
