type t = {
  counts : (int * string, int) Hashtbl.t;
  mutable kind_set : (string, unit) Hashtbl.t;
  mutable max_round : int;
}

let create () = { counts = Hashtbl.create 64; kind_set = Hashtbl.create 8; max_round = -1 }

let record t ~round ~kind =
  let key = (round, kind) in
  Hashtbl.replace t.counts key (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key));
  if not (Hashtbl.mem t.kind_set kind) then Hashtbl.add t.kind_set kind ();
  if round > t.max_round then t.max_round <- round

let kinds t = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.kind_set [])

let rounds t = t.max_round + 1

let count t ~round ~kind = Option.value ~default:0 (Hashtbl.find_opt t.counts (round, kind))

let total t ~kind =
  let acc = ref 0 in
  for round = 0 to t.max_round do
    acc := !acc + count t ~round ~kind
  done;
  !acc

(* Shared by the markdown and CSV renderings: one row per round, one
   right-aligned count column per kind, and a stable trailing "total"
   row (present even when nothing was recorded, so downstream parsers
   can rely on it). *)
let to_table t =
  let ks = kinds t in
  let tbl =
    Fba_stdx.Table.create
      ~columns:(("round", Fba_stdx.Table.Right) :: List.map (fun k -> (k, Fba_stdx.Table.Right)) ks)
  in
  for round = 0 to t.max_round do
    Fba_stdx.Table.add_row tbl
      (string_of_int round :: List.map (fun k -> string_of_int (count t ~round ~kind:k)) ks)
  done;
  Fba_stdx.Table.add_row tbl
    ("total" :: List.map (fun k -> string_of_int (total t ~kind:k)) ks);
  tbl

let render t = Fba_stdx.Table.to_markdown (to_table t)

let to_csv t = Fba_stdx.Table.to_csv (to_table t)

(* First token of the pp rendering, e.g. "Fw1(x=3, ...)" -> "Fw1". *)
let kind_of_pp pp msg =
  let s = Format.asprintf "%a" pp msg in
  let stop = ref (String.length s) in
  String.iteri (fun i c -> if !stop = String.length s && (c = '(' || c = ' ') then stop := i) s;
  String.sub s 0 !stop

module Traced (P : Protocol.S) = struct
  type config = P.config * t
  type msg = P.msg
  type state = P.state

  let name = P.name ^ "-traced"

  let compile (cfg, _) = P.compile cfg

  let init (cfg, _) ctx = P.init cfg ctx

  let on_round (cfg, _) st ~round = P.on_round cfg st ~round

  let on_receive (cfg, trace) st ~round ~src msg =
    record trace ~round ~kind:(kind_of_pp (P.pp_msg cfg) msg);
    P.on_receive cfg st ~round ~src msg

  (* The fast path must record too, so wrap P's when present; a [None]
     inner protocol falls back to [on_receive] above. *)
  let receive_into =
    match P.receive_into with
    | None -> None
    | Some f ->
      Some
        (fun (cfg, trace) st ~round ~src msg ~emit ->
          record trace ~round ~kind:(kind_of_pp (P.pp_msg cfg) msg);
          f cfg st ~round ~src msg ~emit)

  let output = P.output

  let msg_bits (cfg, _) msg = P.msg_bits cfg msg

  let pp_msg (cfg, _) = P.pp_msg cfg

  let msg_tags (cfg, _) = P.msg_tags cfg
  let msg_tag (cfg, _) msg = P.msg_tag cfg msg
end
