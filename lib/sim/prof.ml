(* Opt-in run profiler: per-(round, slot) wall-clock and allocation
   attribution over a single engine run.

   The design mirrors [?events]: engines take an optional [?prof], and
   every instrumentation site is guarded on the option so a disabled
   run does no extra work and no extra allocation (the perf gate is
   measured with profiling off and must stay within its tolerances).

   Accounting is a single running cursor over integer snapshots: each
   attribution point takes one (wall ns, allocated words) snapshot and
   charges the delta since the previous snapshot to exactly one
   (round, slot) cell. Because consecutive snapshots partition the
   timeline, the integer cell deltas telescope and [check] can insist
   that the per-cell matrix sums *exactly* to the run totals — any
   double-charge, missed attribution or indexing bug breaks the
   identity (the same contract as the per-phase bit accounting of
   `fba trace`).

   Slots are the protocol's message tags ([Protocol.S.msg_tags] — for
   AER these are precisely the Compiled dispatch jump-table indices)
   plus one trailing "engine" slot that absorbs everything outside a
   delivery handler: round bookkeeping, sends, adversary calls, GC
   time, the profiler's own snapshots. *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Total allocated words so far. The floats Gc reports are exact
   integer word counts (< 2^53 for any feasible run), so the int
   conversion is lossless and deltas sum exactly. quick_stat allocates
   a small record per call; that self-cost lands in whichever cell is
   being charged, which keeps the accounting identity intact. *)
let words_now () =
  let s = Gc.quick_stat () in
  int_of_float (s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words)

type t = {
  mutable slot_names : string array;  (* protocol tags + trailing "engine" *)
  mutable n_slots : int;
  (* Cell matrices, round-major: index = round * n_slots + slot. Grown
     geometrically, and only from [round] (rounds advance monotonically),
     so the delivery-path [enter]/[leave] never allocate. *)
  mutable wall : int array;  (* ns *)
  mutable alloc : int array;  (* words *)
  mutable hits : int array;
  mutable cap_rounds : int;
  mutable max_round : int;
  mutable cur_round : int;
  mutable last_ns : int;
  mutable last_words : int;
  mutable start_ns : int;
  mutable start_words : int;
  mutable total_ns : int;
  mutable total_words : int;
  mutable running : bool;
  mutable started : bool;  (* a run completed (or is underway) *)
  mutable peak_mailbox_words : int;  (* delivery-plane high-water gauge *)
}

let create () =
  {
    slot_names = [| "engine" |];
    n_slots = 1;
    wall = [||];
    alloc = [||];
    hits = [||];
    cap_rounds = 0;
    max_round = 0;
    cur_round = 0;
    last_ns = 0;
    last_words = 0;
    start_ns = 0;
    start_words = 0;
    total_ns = 0;
    total_words = 0;
    running = false;
    started = false;
    peak_mailbox_words = 0;
  }

let engine_slot t = t.n_slots - 1

let ensure_rounds t r =
  if r >= t.cap_rounds then begin
    let cap = max (r + 1) (max 16 (2 * t.cap_rounds)) in
    let grow a =
      let b = Array.make (cap * t.n_slots) 0 in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    t.wall <- grow t.wall;
    t.alloc <- grow t.alloc;
    t.hits <- grow t.hits;
    t.cap_rounds <- cap
  end

(* Engines call this once per run, before any instrumentation, with
   the protocol's tag names. Restarting resets all cells, so one [t]
   profiles exactly the most recent run. *)
let start t ~tags =
  t.slot_names <- Array.append tags [| "engine" |];
  t.n_slots <- Array.length t.slot_names;
  t.wall <- [||];
  t.alloc <- [||];
  t.hits <- [||];
  t.cap_rounds <- 0;
  t.max_round <- 0;
  t.cur_round <- 0;
  ensure_rounds t 0;
  t.running <- true;
  t.started <- true;
  t.peak_mailbox_words <- 0;
  t.total_ns <- 0;
  t.total_words <- 0;
  t.start_ns <- now_ns ();
  t.start_words <- words_now ();
  t.last_ns <- t.start_ns;
  t.last_words <- t.start_words

(* Charge the elapsed (wall, alloc) since the previous snapshot to
   cell (cur_round, slot) and advance the cursor. *)
let charge t ~slot =
  let ns = now_ns () and words = words_now () in
  let cell = (t.cur_round * t.n_slots) + slot in
  t.wall.(cell) <- t.wall.(cell) + (ns - t.last_ns);
  t.alloc.(cell) <- t.alloc.(cell) + (words - t.last_words);
  t.last_ns <- ns;
  t.last_words <- words

let round t r =
  if t.running then begin
    charge t ~slot:(engine_slot t);
    ensure_rounds t r;
    t.cur_round <- r;
    if r > t.max_round then t.max_round <- r
  end

let enter t = if t.running then charge t ~slot:(engine_slot t)

let leave t ~tag =
  if t.running then begin
    charge t ~slot:tag;
    t.hits.((t.cur_round * t.n_slots) + tag) <- t.hits.((t.cur_round * t.n_slots) + tag) + 1
  end

let stop t =
  if t.running then begin
    charge t ~slot:(engine_slot t);
    t.total_ns <- t.last_ns - t.start_ns;
    t.total_words <- t.last_words - t.start_words;
    t.running <- false
  end

(* --- Read-side accessors (after [stop]) --- *)

let started t = t.started
let rounds t = if t.started then t.max_round + 1 else 0
let slots t = t.n_slots
let slot_name t i = t.slot_names.(i)

let cell t a ~round ~slot =
  if round > t.max_round || round < 0 then 0 else a.((round * t.n_slots) + slot)

let wall t ~round ~slot = cell t t.wall ~round ~slot
let alloc t ~round ~slot = cell t t.alloc ~round ~slot
let hits t ~round ~slot = cell t t.hits ~round ~slot

let sum_slot t a slot =
  let acc = ref 0 in
  for r = 0 to t.max_round do
    acc := !acc + a.((r * t.n_slots) + slot)
  done;
  !acc

let slot_wall t slot = sum_slot t t.wall slot
let slot_alloc t slot = sum_slot t t.alloc slot
let slot_hits t slot = sum_slot t t.hits slot

let sum_round t a r =
  let acc = ref 0 in
  for s = 0 to t.n_slots - 1 do
    acc := !acc + a.((r * t.n_slots) + s)
  done;
  !acc

let round_wall t r = sum_round t t.wall r
let round_alloc t r = sum_round t t.alloc r

let total_wall_ns t = t.total_ns
let total_alloc_words t = t.total_words

(* Gauge, not a cursor cell: set once by the engine at run end, so it
   deliberately stays outside the [check] accounting identity. *)
let note_peak_mailbox_words t w = t.peak_mailbox_words <- max t.peak_mailbox_words w
let peak_mailbox_words t = t.peak_mailbox_words

(* The accounting identity: every cell delta was charged between two
   consecutive snapshots, so the matrix must sum exactly — in integer
   nanoseconds and integer words — to the run totals. *)
let check t =
  let w = ref 0 and a = ref 0 in
  for r = 0 to t.max_round do
    w := !w + round_wall t r;
    a := !a + round_alloc t r
  done;
  !w = t.total_ns && !a = t.total_words
