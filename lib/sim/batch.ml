open Fba_stdx

(* A batch of in-flight messages as three parallel lanes instead of an
   ['msg Envelope.t Vec.t]: pushing a message writes two ints and one
   ['msg] into reusable buffers, so once the lanes are warm an enqueue
   allocates nothing — and when ['msg] is an immediate (the packed
   message plane) the whole batch lives outside the heap. Envelopes
   are only materialized on demand, for the adversary-observation
   interface. *)

type 'msg t = { srcs : int Vec.t; dsts : int Vec.t; msgs : 'msg Vec.t }

let create () = { srcs = Vec.create (); dsts = Vec.create (); msgs = Vec.create () }

let length t = Vec.length t.msgs

let is_empty t = Vec.is_empty t.msgs

let push t ~src ~dst msg =
  Vec.push t.srcs src;
  Vec.push t.dsts dst;
  Vec.push t.msgs msg

let src t i = Vec.get t.srcs i
let dst t i = Vec.get t.dsts i
let msg t i = Vec.get t.msgs i

let clear t =
  Vec.clear t.srcs;
  Vec.clear t.dsts;
  Vec.clear t.msgs

let swap a b =
  Vec.swap a.srcs b.srcs;
  Vec.swap a.dsts b.dsts;
  Vec.swap a.msgs b.msgs

let append dst src =
  Vec.append dst.srcs src.srcs;
  Vec.append dst.dsts src.dsts;
  Vec.append dst.msgs src.msgs

let iter f t =
  for i = 0 to length t - 1 do
    f ~src:(Vec.get t.srcs i) ~dst:(Vec.get t.dsts i) (Vec.get t.msgs i)
  done

let to_envelopes t =
  let rec build i acc =
    if i < 0 then acc
    else
      build (i - 1)
        (Envelope.make ~src:(Vec.get t.srcs i) ~dst:(Vec.get t.dsts i) (Vec.get t.msgs i) :: acc)
  in
  build (length t - 1) []

let capacity_words t = Vec.capacity t.srcs + Vec.capacity t.dsts + Vec.capacity t.msgs

(* --- Streamed delivery plane: a chunked segment arena ---

   The double-buffered mailboxes above retain one flat lane per role
   for the whole run, so a burst round's footprint is paid three or
   four times over (current sends + staged + delivery buffer, each
   with Vec doubling slack) and never given back. The arena replaces
   the monolithic lanes with fixed-size segments threaded into chains:
   a drain recycles each segment through the arena's free list the
   moment its last message is handled, so sends emitted *by* those
   deliveries refill the very segments just vacated — peak footprint
   tracks the largest single round, not a sum of adjacent ones.

   Chains are single-owner and push-ordered; pushing into a chain that
   is currently being drained is forbidden (the engines never do: sync
   deliveries refill the next round's chain, async deliveries schedule
   into strictly-future calendar buckets). *)

module Seg = struct
  (* Two lanes, not three: the (src, dst) pair is fused into one word
     ([src lsl 31 lor dst] — node ids are < 2^31 by a huge margin; the
     packed plane's own ceiling is n = 2^18), so a stored message costs
     2 words where the monolithic lanes pay 3. At wide-tier populations
     the live burst is the footprint floor, and this is the one
     per-message constant the exact delivery order still lets us cut. *)
  type 'msg t = {
    sd : int array;  (* src lsl 31 lor dst *)
    mutable msgs : 'msg array;  (* [||] until the first push provides a filler *)
    mutable len : int;
    mutable next : 'msg t option;
  }

  let make cap = { sd = Array.make cap 0; msgs = [||]; len = 0; next = None }
end

module Arena = struct
  type 'msg t = {
    seg_cap : int;
    free : 'msg Seg.t Vec.t;
    mutable segs_created : int;  (* monotone: also the concurrent-demand high-water *)
  }

  let default_seg_cap = 1024

  let create ?(seg_cap = default_seg_cap) () =
    if seg_cap < 1 then invalid_arg "Batch.Arena.create: seg_cap < 1";
    { seg_cap; free = Vec.create (); segs_created = 0 }

  let seg_cap t = t.seg_cap

  let take t =
    if Vec.is_empty t.free then begin
      t.segs_created <- t.segs_created + 1;
      Seg.make t.seg_cap
    end
    else Vec.pop t.free

  let recycle t (s : 'msg Seg.t) =
    s.Seg.len <- 0;
    s.Seg.next <- None;
    Vec.push t.free s

  let free_segments t = Vec.length t.free

  (* Two lanes of [seg_cap] slots per segment (fused src|dst + msg);
     [segs_created] never shrinks (recycled segments are retained), so
     this is both the current footprint and the peak concurrent
     demand. *)
  let peak_words t = 2 * t.seg_cap * t.segs_created
end

module Chain = struct
  type 'msg t = {
    arena : 'msg Arena.t;
    mutable head : 'msg Seg.t option;
    mutable tail : 'msg Seg.t option;
    mutable total : int;
  }

  let create arena = { arena; head = None; tail = None; total = 0 }

  let length t = t.total

  let is_empty t = t.total = 0

  let push t ~src ~dst msg =
    if (src lor dst) lsr 31 <> 0 then
      invalid_arg "Batch.Chain.push: src/dst outside [0, 2^31) cannot share a fused word";
    let seg =
      match t.tail with
      | Some s when s.Seg.len < t.arena.Arena.seg_cap -> s
      | tail ->
        let s = Arena.take t.arena in
        (match tail with
        | Some prev -> prev.Seg.next <- Some s
        | None -> t.head <- Some s);
        t.tail <- Some s;
        s
    in
    let i = seg.Seg.len in
    seg.Seg.sd.(i) <- (src lsl 31) lor dst;
    if Array.length seg.Seg.msgs = 0 then seg.Seg.msgs <- Array.make t.arena.Arena.seg_cap msg
    else seg.Seg.msgs.(i) <- msg;
    seg.Seg.len <- i + 1;
    t.total <- t.total + 1

  let clear t =
    let rec go = function
      | None -> ()
      | Some (s : 'msg Seg.t) ->
        let next = s.Seg.next in
        Arena.recycle t.arena s;
        go next
    in
    go t.head;
    t.head <- None;
    t.tail <- None;
    t.total <- 0

  (* Detach [src]'s whole segment chain onto [into]'s tail: O(1), no
     copying — the commit step that used to duplicate every correct
     send into the staged lane. Partially-filled boundary segments stay
     partially filled; iteration respects per-segment lengths. *)
  let transfer src ~into =
    if src != into then begin
      match src.head with
      | None -> ()
      | Some h ->
        (match into.tail with
        | None -> into.head <- Some h
        | Some t -> t.Seg.next <- Some h);
        into.tail <- src.tail;
        into.total <- into.total + src.total;
        src.head <- None;
        src.tail <- None;
        src.total <- 0
    end

  let iter f t =
    let rec go = function
      | None -> ()
      | Some (s : 'msg Seg.t) ->
        for i = 0 to s.Seg.len - 1 do
          let sd = s.Seg.sd.(i) in
          f ~src:(sd lsr 31) ~dst:(sd land 0x7FFFFFFF) s.Seg.msgs.(i)
        done;
        go s.Seg.next
    in
    go t.head

  (* Deliver-as-you-go: visit every message in push order, recycling
     each segment into the arena's free list the moment its last
     message is handed to [f] — so pushes [f] performs into *other*
     chains of the same arena reuse the vacated storage immediately.
     The chain is detached up front; pushing into it from [f] is
     forbidden. *)
  let drain t ~f =
    let head = t.head in
    t.head <- None;
    t.tail <- None;
    t.total <- 0;
    let rec go = function
      | None -> ()
      | Some (s : 'msg Seg.t) ->
        for i = 0 to s.Seg.len - 1 do
          let sd = s.Seg.sd.(i) in
          f ~src:(sd lsr 31) ~dst:(sd land 0x7FFFFFFF) s.Seg.msgs.(i)
        done;
        let next = s.Seg.next in
        Arena.recycle t.arena s;
        go next
    in
    go head

  let to_envelopes t =
    let acc = ref [] in
    iter (fun ~src ~dst msg -> acc := Envelope.make ~src ~dst msg :: !acc) t;
    List.rev !acc
end

(* --- Process-wide peak-mailbox gauge ---

   Engines report each run's peak mailbox/calendar words here at run
   end; the bench harness resets before a target and reads after, and
   the sweep heartbeat reports the running peak without threading a
   handle through every experiment signature. Atomic because sweep
   cells finish on arbitrary pool domains. *)

module Peak = struct
  let cell = Atomic.make 0

  let reset () = Atomic.set cell 0

  let rec note w =
    let cur = Atomic.get cell in
    if w > cur && not (Atomic.compare_and_set cell cur w) then note w

  let get () = Atomic.get cell
end
