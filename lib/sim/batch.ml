open Fba_stdx

(* A batch of in-flight messages as three parallel lanes instead of an
   ['msg Envelope.t Vec.t]: pushing a message writes two ints and one
   ['msg] into reusable buffers, so once the lanes are warm an enqueue
   allocates nothing — and when ['msg] is an immediate (the packed
   message plane) the whole batch lives outside the heap. Envelopes
   are only materialized on demand, for the adversary-observation
   interface. *)

type 'msg t = { srcs : int Vec.t; dsts : int Vec.t; msgs : 'msg Vec.t }

let create () = { srcs = Vec.create (); dsts = Vec.create (); msgs = Vec.create () }

let length t = Vec.length t.msgs

let is_empty t = Vec.is_empty t.msgs

let push t ~src ~dst msg =
  Vec.push t.srcs src;
  Vec.push t.dsts dst;
  Vec.push t.msgs msg

let src t i = Vec.get t.srcs i
let dst t i = Vec.get t.dsts i
let msg t i = Vec.get t.msgs i

let clear t =
  Vec.clear t.srcs;
  Vec.clear t.dsts;
  Vec.clear t.msgs

let swap a b =
  Vec.swap a.srcs b.srcs;
  Vec.swap a.dsts b.dsts;
  Vec.swap a.msgs b.msgs

let append dst src =
  Vec.append dst.srcs src.srcs;
  Vec.append dst.dsts src.dsts;
  Vec.append dst.msgs src.msgs

let iter f t =
  for i = 0 to length t - 1 do
    f ~src:(Vec.get t.srcs i) ~dst:(Vec.get t.dsts i) (Vec.get t.msgs i)
  done

let to_envelopes t =
  let rec build i acc =
    if i < 0 then acc
    else
      build (i - 1)
        (Envelope.make ~src:(Vec.get t.srcs i) ~dst:(Vec.get t.dsts i) (Vec.get t.msgs i) :: acc)
  in
  build (length t - 1) []
