(** Opt-in run profiler: per-round, per-handler-tag wall-clock and
    allocation attribution.

    {!Metrics} and the {!Events} pipeline attribute {e bits} per phase;
    this module attributes {e wall-clock nanoseconds} and {e allocated
    words} — the resources the scaling roadmap (n ≥ 65536 sweeps,
    instances/sec service benchmarks) is actually gated on. It follows
    the [?events] contract exactly: engines take an optional [?prof]
    and every instrumentation site is guarded, so a run without a
    profiler performs no extra work and no extra allocation.

    Attribution is a single running cursor over integer snapshots
    ([Unix.gettimeofday] in whole nanoseconds; [Gc.quick_stat]
    minor+major−promoted words). Each attribution point charges the
    delta since the previous snapshot to exactly one (round, slot)
    cell, so consecutive snapshots partition the run's timeline and
    {!check} can demand that the cell matrix sums {e exactly} — in
    integer ns and words — to the run totals. [fba profile] exits
    non-zero when the identity fails, mirroring the per-phase bit
    accounting of [fba trace].

    Slots are the protocol's message tags ({!Protocol.S.msg_tags};
    for AER these are the {!Fba_core.Compiled} dispatch jump-table
    indices, so the per-slot hit/time counters are literally hot-spot
    counters on the compiled dispatch table) plus one trailing
    ["engine"] slot that absorbs everything outside a delivery
    handler: round bookkeeping, sends, adversary strategy calls, GC
    pauses and the profiler's own snapshot cost. *)

type t

val create : unit -> t
(** An idle profiler. Pass it to an engine run ([?prof] /
    [Runner.config.prof]); the engine initializes the slot table from
    the protocol's [msg_tags] at run start. One [t] holds the most
    recent run it was attached to. *)

(** {1 Engine-side instrumentation}

    Called by {!Engine_core} and the engines; not intended for
    protocol or experiment code. *)

val start : t -> tags:string array -> unit
(** Begin a run: install [tags ^ \[|"engine"|\]] as the slot table,
    reset all cells and take the opening snapshot. *)

val round : t -> int -> unit
(** Advance the round cursor (charging the gap to the current round's
    engine slot). Rounds must be non-decreasing; per-round storage
    grows geometrically here and only here, so {!enter}/{!leave} never
    allocate. *)

val enter : t -> unit
(** Immediately before a delivery handler: charge the elapsed engine
    time to the current round's engine slot. *)

val leave : t -> tag:int -> unit
(** Immediately after a delivery handler: charge the handler's time
    and allocation to [(current round, tag)] and count one hit. *)

val stop : t -> unit
(** End the run: charge the tail to the engine slot and fix the run
    totals. Idempotent. *)

val note_peak_mailbox_words : t -> int -> unit
(** Record the run's peak delivery-plane footprint (mailbox/calendar
    words); engines call this once at run end. Keeps the maximum, so
    multi-phase runs sharing one profiler report the larger phase. A
    gauge, outside the {!check} accounting identity. *)

(** {1 Reading the profile} (after {!stop}) *)

val started : t -> bool
(** At least one run was attached (accessors are meaningful). *)

val rounds : t -> int
(** Rounds (or async time steps) profiled, i.e. last round + 1; 0 when
    never started. *)

val slots : t -> int
(** Slot count, protocol tags plus the engine slot. *)

val slot_name : t -> int -> string
(** Slot [i]'s name; index [slots t - 1] is ["engine"]. *)

val wall : t -> round:int -> slot:int -> int
(** Wall-clock nanoseconds charged to the cell (0 out of range). *)

val alloc : t -> round:int -> slot:int -> int
(** Allocated words charged to the cell. *)

val hits : t -> round:int -> slot:int -> int
(** Handler invocations counted on the cell (engine slot: always 0). *)

val slot_wall : t -> int -> int
val slot_alloc : t -> int -> int

val slot_hits : t -> int -> int
(** Per-slot totals over all rounds — the top-K handler-tag table. *)

val round_wall : t -> int -> int
val round_alloc : t -> int -> int
(** Per-round totals over all slots. *)

val total_wall_ns : t -> int
val total_alloc_words : t -> int
(** Run totals, measured independently as last − first snapshot. *)

val peak_mailbox_words : t -> int
(** Peak delivery-plane footprint noted by the engine (0 when no engine
    reported one). *)

val check : t -> bool
(** The accounting identity: Σ cells = totals, exactly, for both wall
    nanoseconds and allocated words. *)
