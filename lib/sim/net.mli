(** Pluggable network conditions.

    The paper's model (Section 2.1) assumes a fully-connected,
    authenticated, {e reliable} network; both engines default to
    {!Reliable}, which reproduces that model bit-for-bit and costs
    nothing (no PRNG draws, no allocation — the determinism goldens and
    the perf gate pin this). Every other condition is deliberately
    {e off-model}: it quantifies how far AER's guarantees survive when
    the reliability assumption is weakened, in the spirit of Byzantine
    agreement on incomplete networks (arXiv:2410.20865) and the
    reliability axis of the communication-complexity survey
    (arXiv:2111.02162).

    Conditions are specified as data ({!spec}), instantiated once per
    run with a PRNG stream split from the scenario seed
    ({!instantiate}), and consulted by the engines on every delivery
    ({!verdict}) and — asynchronous engine only — on every send
    ({!extra_delay}). Because each run owns its state and the engines
    query in a deterministic order, every (spec, seed) pair is
    reproducible and sweeps stay byte-identical for any [--jobs]
    value. *)

(** What can go wrong on the wire. [round] means the synchronous round
    for {!Sync_engine} and the time step for {!Async_engine}. *)
type spec =
  | Reliable  (** the paper's model: every message is delivered *)
  | Drop of { rate : float }
      (** i.i.d. per-delivery loss with probability [rate] in [\[0,1\]] *)
  | Crash of { at : int; fraction : float }
      (** crash-stop receivers: at round [at], a [fraction] of ids
          (chosen uniformly from the PRNG stream) stop receiving —
          every message to them from then on is lost. Their state
          machines starve; the rest of the system must cope. *)
  | Partition of { from_round : int; rounds : int }
      (** transient bisection: for rounds [from_round] to
          [from_round + rounds - 1] inclusive, messages between the two
          halves ([id < n/2] vs [id >= n/2]) are lost, symmetrically *)
  | Jitter of { extra : int }
      (** asynchronous engine only: each send gets an extra delay drawn
          uniformly from [\[0, extra\]] on top of the adversary's
          choice. The synchronous engine ignores it (its delivery
          schedule {e is} the round structure). *)
  | Compose of spec list
      (** several conditions at once; at most one of each kind, no
          nesting *)

val reason_loss : string
(** ["net-loss"] — the {!Events.Drop} reason tag for {!Drop}. *)

val reason_crash : string
(** ["net-crash"] — the reason tag for {!Crash}. *)

val reason_partition : string
(** ["net-partition"] — the reason tag for {!Partition}. *)

val max_extra_delay : spec -> int
(** Upper bound on {!extra_delay} for this spec — the asynchronous
    engine widens its calendar ring by this much. *)

type t
(** Instantiated per-run state (PRNG streams, crash-victim set). *)

val instantiate : spec -> n:int -> seed:int64 -> t
(** Compile [spec] for a system of [n] nodes. Randomized conditions
    draw from streams split from a root PRNG derived from [seed] (label
    ["net"]) at fixed per-condition indices, so conditions never
    perturb each other's streams. Raises [Invalid_argument] on
    out-of-range parameters, duplicate condition kinds, or nested
    [Compose]. *)

val reliable : n:int -> t
(** [instantiate Reliable ~n ~seed:0L] — the zero-cost default. *)

type verdict = Pass | Lose of string  (** [Lose reason] with one of the tags above *)

val verdict : t -> round:int -> src:int -> dst:int -> verdict
(** Fate of one delivery. {!Reliable} returns [Pass] without touching
    any PRNG. Priority when several conditions apply: crash, then
    partition, then i.i.d. loss. A {!Drop} condition performs exactly
    one PRNG draw per query regardless of the outcome, so two nets with
    the same seed and rates [p <= q] lose coupled subsets — the
    monotonicity property in the test suite. *)

val extra_delay : t -> time:int -> src:int -> dst:int -> int
(** Jitter draw for one send (0 unless a {!Jitter} condition is
    present). *)

val crashed : t -> (int * Fba_stdx.Bitset.t) option
(** The crash round and victim set, when a {!Crash} condition is
    present — exposed for tests and reporting. *)
