(** Synchronous round-based engine (Section 2.1 of the paper): a
    message sent during round [r] is delivered during round [r+1].

    The adversary is a closure invoked once per round. In [`Rushing]
    mode it sees the messages correct nodes send in the *current* round
    before choosing its own (the paper's rushing adversary); in
    [`Non_rushing] mode it only sees the previous round's messages. In
    both modes it has full information: every message ever sent is
    eventually reachable through [act]'s [observed] thunk (which
    materializes envelopes from the engine's flat lanes only when
    called — an adversary that never looks costs nothing per round).

    Delivery itself is pluggable: the [?net] network-condition layer
    ({!Net}) defaults to [Reliable] — the paper's model, bit-identical
    to the goldens — and may drop deliveries (i.i.d. loss, crash-stop
    receivers, transient partitions) for off-model robustness runs.
    Shared bookkeeping (mailboxes, adversary validation, metrics,
    decisions, tracing) lives in {!Engine_core}. *)

open Fba_stdx

type 'msg adversary = 'msg Engine_core.sync_adversary = {
  corrupted : Bitset.t;
  act : round:int -> observed:(unit -> 'msg Envelope.t list) -> 'msg Envelope.t list;
}

let null_adversary = Engine_core.null_sync_adversary

type mode = [ `Rushing | `Non_rushing ]

type 'state result = {
  metrics : Metrics.t;
  outputs : string option array;
  states : 'state option array;  (** [None] for corrupted identities *)
  all_decided : bool;
  rounds_used : int;
}

module Make (P : Protocol.S) = struct
  module Core = Engine_core.Make (P)

  type nonrec adversary = P.msg adversary

  type nonrec result = P.state result

  let validate_adversary_envelope ~n ~corrupted e =
    Engine_core.validate_adversary_envelope ~who:"Sync_engine" ~n ~corrupted e

  let run ?(quiet_limit = 3) ?events ?prof ?(net = Net.Reliable) ~(config : P.config) ~n
      ~seed ~(adversary : adversary) ~(mode : mode) ~max_rounds () =
    if quiet_limit < 1 then invalid_arg "Sync_engine.run: quiet_limit < 1";
    let corrupted = adversary.corrupted in
    let core = Core.create ?events ?prof ~net ~config ~n ~seed ~corrupted () in
    Core.prof_start core;
    let mb : P.msg Engine_core.Mailbox.t = Engine_core.Mailbox.create () in
    let send src dst msg =
      if dst < 0 || dst >= n then invalid_arg "Sync_engine: destination out of range";
      Batch.push mb.correct_out ~src ~dst msg
    in
    (* All closures the delivery path needs are built once, reading the
       current round/sender through refs, so the loops allocate no
       per-message (or per-node) closures. *)
    let cur_round = ref 0 in
    let cur_node = ref 0 in
    let emit dst msg = send !cur_node dst msg in
    let receive = Core.handler_of core ~emit in
    let handle dst st ~src msg =
      cur_node := dst;
      receive st ~round:!cur_round ~src msg
    in
    let send_pair (dst, msg) = send !cur_node dst msg in
    let observed =
      match mode with
      | `Rushing -> fun () -> Batch.to_envelopes mb.correct_out
      | `Non_rushing -> fun () -> Batch.to_envelopes mb.prev_correct
    in
    Core.trace_round_start core ~round:0;
    (* Round 0: initialize correct nodes. *)
    Core.init_nodes core ~seed ~dispatch:(fun id out ->
        cur_node := id;
        List.iter send_pair out);
    Core.check_decisions core ~round:0;
    let commit_round ~round =
      let correct_count = Batch.length mb.correct_out in
      (* Ask the adversary for its round-[round] messages; [observed]
         materializes envelopes only if the strategy actually looks. *)
      let byz = adversary.act ~round ~observed in
      List.iter (validate_adversary_envelope ~n ~corrupted) byz;
      (* Byzantine messages are delivered before correct ones next
         round: adversary-favorable tie-breaking, so races (e.g. the
         overload filter of Algorithm 3) resolve for the worst case. *)
      Batch.clear mb.in_flight;
      List.iter
        (fun (e : P.msg Envelope.t) ->
          Core.record_send core ~src:e.src ~dst:e.dst e.msg;
          Core.trace_msg core ~round ~byzantine:true ~delay:1 ~src:e.src ~dst:e.dst e.msg;
          Batch.push mb.in_flight ~src:e.src ~dst:e.dst e.msg)
        byz;
      Batch.iter (fun ~src ~dst msg -> Core.record_send core ~src ~dst msg) mb.correct_out;
      (match events with
      | None -> ()
      | Some _ ->
        Batch.iter
          (fun ~src ~dst msg ->
            Core.trace_msg core ~round ~byzantine:false ~delay:1 ~src ~dst msg)
          mb.correct_out);
      Batch.append mb.in_flight mb.correct_out;
      (match mode with
      | `Non_rushing ->
        (* Keep this round's correct sends alive for next round's
           observation window. *)
        Batch.clear mb.prev_correct;
        Batch.append mb.prev_correct mb.correct_out
      | `Rushing -> ());
      Batch.clear mb.correct_out;
      correct_count
    in
    let prev_correct = ref (commit_round ~round:0) in
    let round = ref 0 in
    (* Quiescence: some protocols (committee trees, phase king,
       re-polling AER) have planned gaps with nothing in flight, so we
       only stop after [quiet_limit] consecutive rounds with no traffic
       at all. Protocols with round timers longer than the default must
       raise it. *)
    let quiet = ref 0 in
    let last_active = ref 0 in
    (* Main loop: rounds 1 .. max_rounds. *)
    let continue = ref (core.undecided > 0 || not (Batch.is_empty mb.in_flight)) in
    while !continue && !round < max_rounds do
      incr round;
      let r = !round in
      cur_round := r;
      Core.trace_round_start core ~round:r;
      Core.prof_round core ~round:r;
      (* Clock hook. *)
      for id = 0 to n - 1 do
        match core.states.(id) with
        | None -> ()
        | Some st ->
          cur_node := id;
          List.iter send_pair (P.on_round config st ~round:r)
      done;
      (* Deliver last round's messages: swap the staged mailbox into the
         delivery buffer so [send] can refill [correct_out]/[in_flight]
         while we iterate. *)
      Engine_core.Mailbox.stage_deliveries mb;
      let delivered_any = not (Batch.is_empty mb.deliveries) in
      let due = Batch.length mb.deliveries in
      for i = 0 to due - 1 do
        Core.deliver core ~round:r ~src:(Batch.src mb.deliveries i)
          ~dst:(Batch.dst mb.deliveries i) (Batch.msg mb.deliveries i) ~handle
      done;
      Core.check_decisions core ~round:r;
      prev_correct := commit_round ~round:r;
      if (not delivered_any) && Batch.is_empty mb.in_flight then incr quiet
      else begin
        quiet := 0;
        last_active := r
      end;
      continue :=
        (core.undecided > 0 || (not (Batch.is_empty mb.in_flight)) || !prev_correct > 0)
        && !quiet < quiet_limit
    done;
    let rounds_used = if !quiet > 0 then !last_active else !round in
    Core.prof_stop core;
    Metrics.set_rounds core.metrics rounds_used;
    {
      metrics = core.metrics;
      outputs = core.outputs;
      states = core.states;
      all_decided = core.undecided = 0;
      rounds_used;
    }
end
