(** Synchronous round-based engine (Section 2.1 of the paper): a
    message sent during round [r] is delivered during round [r+1].

    The adversary is a closure invoked once per round. In [`Rushing]
    mode it sees the messages correct nodes send in the *current* round
    before choosing its own (the paper's rushing adversary); in
    [`Non_rushing] mode it only sees the previous round's messages. In
    both modes it has full information: every message ever sent is
    eventually reachable through [act]'s [observed] thunk (which
    materializes envelopes from the engine's flat lanes only when
    called — an adversary that never looks costs nothing per round).

    Delivery itself is pluggable: the [?net] network-condition layer
    ({!Net}) defaults to [Reliable] — the paper's model, bit-identical
    to the goldens — and may drop deliveries (i.i.d. loss, crash-stop
    receivers, transient partitions) for off-model robustness runs.
    Shared bookkeeping (mailboxes, adversary validation, metrics,
    decisions, tracing) lives in {!Engine_core}. *)

open Fba_stdx

type 'msg adversary = 'msg Engine_core.sync_adversary = {
  corrupted : Bitset.t;
  act : round:int -> observed:(unit -> 'msg Envelope.t list) -> 'msg Envelope.t list;
}

let null_adversary = Engine_core.null_sync_adversary

type mode = [ `Rushing | `Non_rushing ]

type 'state result = {
  metrics : Metrics.t;
  outputs : string option array;
  states : 'state option array;  (** [None] for corrupted identities *)
  all_decided : bool;
  rounds_used : int;
}

module Make (P : Protocol.S) = struct
  module Core = Engine_core.Make (P)

  type nonrec adversary = P.msg adversary

  type nonrec result = P.state result

  let validate_adversary_envelope ~n ~corrupted e =
    Engine_core.validate_adversary_envelope ~who:"Sync_engine" ~n ~corrupted e

  (* An in-flight run, advanced one round at a time. [step] executes
     one iteration of the historical round loop (false once the loop
     condition fails); [finish] is its epilogue. [run] below is
     literally start-step*-finish, so a stepped run is the same
     execution — the stepper exists so an instance stream
     ({!Fba_harness.Service}) can keep several runs concurrently open
     and interleave their rounds. *)
  type running = { r_step : unit -> bool; r_finish : unit -> result }

  let start ?(quiet_limit = 3) ?stream ?mailbox ?events ?prof ?(net = Net.Reliable)
      ~(config : P.config) ~n ~seed ~(adversary : adversary) ~(mode : mode) ~max_rounds ()
      =
    if quiet_limit < 1 then invalid_arg "Sync_engine.run: quiet_limit < 1";
    let corrupted = adversary.corrupted in
    let core = Core.create ?events ?prof ~net ~config ~n ~seed ~corrupted () in
    Core.prof_start core;
    let mb : P.msg Engine_core.Mailbox.t =
      match mailbox with
      | Some mb ->
        Engine_core.Mailbox.reset mb;
        mb
      | None -> Engine_core.Mailbox.create ?stream ~n ()
    in
    let send src dst msg =
      if dst < 0 || dst >= n then invalid_arg "Sync_engine: destination out of range";
      Engine_core.Mailbox.push_correct mb ~src ~dst msg
    in
    (* All closures the delivery path needs are built once, reading the
       current round/sender through refs, so the loops allocate no
       per-message (or per-node) closures. *)
    let cur_round = ref 0 in
    let cur_node = ref 0 in
    let emit dst msg = send !cur_node dst msg in
    let receive = Core.handler_of core ~emit in
    let handle dst st ~src msg =
      cur_node := dst;
      receive st ~round:!cur_round ~src msg
    in
    let send_pair (dst, msg) = send !cur_node dst msg in
    let observed =
      match mode with
      | `Rushing -> fun () -> Engine_core.Mailbox.correct_envelopes mb
      | `Non_rushing -> fun () -> Engine_core.Mailbox.prev_envelopes mb
    in
    Core.trace_round_start core ~round:0;
    (* Round 0: initialize correct nodes. *)
    Core.init_nodes core ~seed ~dispatch:(fun id out ->
        cur_node := id;
        List.iter send_pair out);
    Core.check_decisions core ~round:0;
    let commit_round ~round =
      let correct_count = Engine_core.Mailbox.correct_length mb in
      (* Ask the adversary for its round-[round] messages; [observed]
         materializes envelopes only if the strategy actually looks. *)
      let byz = adversary.act ~round ~observed in
      List.iter (validate_adversary_envelope ~n ~corrupted) byz;
      (* Byzantine messages are delivered before correct ones next
         round: adversary-favorable tie-breaking, so races (e.g. the
         overload filter of Algorithm 3) resolve for the worst case. *)
      Engine_core.Mailbox.begin_commit mb;
      List.iter
        (fun (e : P.msg Envelope.t) ->
          Core.record_send core ~src:e.src ~dst:e.dst e.msg;
          Core.trace_msg core ~round ~byzantine:true ~delay:1 ~src:e.src ~dst:e.dst e.msg;
          Engine_core.Mailbox.push_staged mb ~src:e.src ~dst:e.dst e.msg)
        byz;
      Engine_core.Mailbox.iter_correct
        (fun ~src ~dst msg -> Core.record_send core ~src ~dst msg)
        mb;
      (match events with
      | None -> ()
      | Some _ ->
        Engine_core.Mailbox.iter_correct
          (fun ~src ~dst msg ->
            Core.trace_msg core ~round ~byzantine:false ~delay:1 ~src ~dst msg)
          mb);
      Engine_core.Mailbox.commit mb ~keep_prev:(mode = `Non_rushing);
      correct_count
    in
    let prev_correct = ref (commit_round ~round:0) in
    let round = ref 0 in
    (* Quiescence: some protocols (committee trees, phase king,
       re-polling AER) have planned gaps with nothing in flight, so we
       only stop after [quiet_limit] consecutive rounds with no traffic
       at all. Protocols with round timers longer than the default must
       raise it. *)
    let quiet = ref 0 in
    let last_active = ref 0 in
    (* Main loop: rounds 1 .. max_rounds, one iteration per [step]. *)
    let continue = ref (core.undecided > 0 || Engine_core.Mailbox.pending_any mb) in
    let step () =
      if not (!continue && !round < max_rounds) then false
      else begin
        incr round;
        let r = !round in
        cur_round := r;
        Core.trace_round_start core ~round:r;
        Core.prof_round core ~round:r;
        (* Clock hook. *)
        for id = 0 to n - 1 do
          match core.states.(id) with
          | None -> ()
          | Some st ->
            cur_node := id;
            List.iter send_pair (P.on_round config st ~round:r)
        done;
        (* Deliver last round's messages. On the buffered plane [stage]
           swaps the staged mailbox into a separate delivery buffer; on
           the streamed plane the drain recycles each segment as its last
           message is handled, so [send]'s pushes refill the storage the
           deliveries just vacated. *)
        Engine_core.Mailbox.stage mb;
        let delivered_any = Engine_core.Mailbox.staged_any mb in
        Engine_core.Mailbox.drain mb ~f:(fun ~src ~dst msg ->
            Core.deliver core ~round:r ~src ~dst msg ~handle);
        Core.check_decisions core ~round:r;
        prev_correct := commit_round ~round:r;
        if (not delivered_any) && not (Engine_core.Mailbox.pending_any mb) then incr quiet
        else begin
          quiet := 0;
          last_active := r
        end;
        continue :=
          (core.undecided > 0 || Engine_core.Mailbox.pending_any mb || !prev_correct > 0)
          && !quiet < quiet_limit;
        true
      end
    in
    let finish () =
      let rounds_used = if !quiet > 0 then !last_active else !round in
      Core.prof_stop core;
      Metrics.set_rounds core.metrics rounds_used;
      let peak = Engine_core.Mailbox.peak_words mb in
      Metrics.set_peak_mailbox_words core.metrics peak;
      Batch.Peak.note peak;
      (match prof with None -> () | Some p -> Prof.note_peak_mailbox_words p peak);
      {
        metrics = core.metrics;
        outputs = core.outputs;
        states = core.states;
        all_decided = core.undecided = 0;
        rounds_used;
      }
    in
    { r_step = step; r_finish = finish }

  let step r = r.r_step ()

  let finish r = r.r_finish ()

  let run ?quiet_limit ?stream ?events ?prof ?net ~(config : P.config) ~n ~seed
      ~(adversary : adversary) ~(mode : mode) ~max_rounds () =
    let r =
      start ?quiet_limit ?stream ?events ?prof ?net ~config ~n ~seed ~adversary ~mode
        ~max_rounds ()
    in
    while r.r_step () do
      ()
    done;
    r.r_finish ()
end
