(** Synchronous round-based engine (Section 2.1 of the paper): a
    message sent during round [r] is delivered during round [r+1].

    The adversary is a closure invoked once per round. In [`Rushing]
    mode it sees the messages correct nodes send in the *current* round
    before choosing its own (the paper's rushing adversary); in
    [`Non_rushing] mode it only sees the previous round's messages. In
    both modes it has full information: every message ever sent is
    eventually passed to [act] through [observed]. *)

open Fba_stdx

type 'msg adversary = {
  corrupted : Bitset.t;
  act : round:int -> observed:'msg Envelope.t list -> 'msg Envelope.t list;
      (** [observed] is the batch of correct-node messages the adversary
          is entitled to have seen when choosing its round-[round]
          messages (current round when rushing, previous otherwise).
          Returned envelopes must have a corrupted [src]. *)
}

let null_adversary ~corrupted = { corrupted; act = (fun ~round:_ ~observed:_ -> []) }

type mode = [ `Rushing | `Non_rushing ]

type 'state result = {
  metrics : Metrics.t;
  outputs : string option array;
  states : 'state option array;  (** [None] for corrupted identities *)
  all_decided : bool;
  rounds_used : int;
}

module Make (P : Protocol.S) = struct
  type nonrec adversary = P.msg adversary

  type nonrec result = P.state result

  let validate_adversary_envelope ~n ~(corrupted : Bitset.t) (e : P.msg Envelope.t) =
    if e.Envelope.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
      invalid_arg "Sync_engine: adversary envelope out of range";
    if not (Bitset.mem corrupted e.src) then
      invalid_arg "Sync_engine: adversary may only send from corrupted identities"

  let run ?(quiet_limit = 3) ?events ~(config : P.config) ~n ~seed ~(adversary : adversary)
      ~(mode : mode) ~max_rounds () =
    if quiet_limit < 1 then invalid_arg "Sync_engine.run: quiet_limit < 1";
    let corrupted = adversary.corrupted in
    let metrics = Metrics.create ~n ~corrupted in
    let states : P.state option array = Array.make n None in
    let outputs : string option array = Array.make n None in
    let undecided = ref 0 in
    (* Mailboxes: flat growable buffers reused across rounds, so the
       steady-state engine allocates only the envelopes themselves.
       [correct_out] collects the current round's correct sends,
       [in_flight] holds what commit_round staged for next round, and
       [deliveries] is the double buffer [in_flight] is swapped into
       at delivery time. *)
    let correct_out : P.msg Envelope.t Vec.t = Vec.create () in
    let in_flight : P.msg Envelope.t Vec.t = Vec.create () in
    let deliveries : P.msg Envelope.t Vec.t = Vec.create () in
    let send src (dst, msg) =
      if dst < 0 || dst >= n then invalid_arg "Sync_engine: destination out of range";
      Vec.push correct_out (Envelope.make ~src ~dst msg)
    in
    (* Every tracing site is guarded on [events] so a disabled run does
       no extra work (and no allocation) in the hot loops. *)
    let trace_msg ~round ~byzantine (e : P.msg Envelope.t) =
      match events with
      | None -> ()
      | Some k ->
        let kind = Events.kind_of_pp P.pp_msg e.Envelope.msg in
        let bits = P.msg_bits config e.Envelope.msg in
        if byzantine then
          Events.emit k
            (Events.Inject { round; src = e.src; dst = e.dst; kind; bits; delay = 1 })
        else Events.emit k (Events.Send { round; src = e.src; dst = e.dst; kind; bits; delay = 1 })
    in
    (match events with
    | None -> ()
    | Some k -> Events.emit k (Events.Round_start { round = 0 }));
    (* Round 0: initialize correct nodes. *)
    for id = 0 to n - 1 do
      if not (Bitset.mem corrupted id) then begin
        let ctx = Ctx.make ~n ~id ~seed in
        let state, out = P.init config ctx in
        states.(id) <- Some state;
        List.iter (send id) out;
        incr undecided
      end
    done;
    let check_decision ~round id =
      if outputs.(id) = None then begin
        match states.(id) with
        | None -> ()
        | Some st ->
          (match P.output st with
          | Some v ->
            outputs.(id) <- Some v;
            Metrics.record_decision metrics ~id ~round;
            decr undecided;
            (match events with
            | None -> ()
            | Some k -> Events.emit k (Events.Decide { round; id; value = v }))
          | None -> ())
      end
    in
    for id = 0 to n - 1 do
      check_decision ~round:0 id
    done;
    let record (e : P.msg Envelope.t) =
      Metrics.record_send metrics ~src:e.src ~dst:e.dst ~bits:(P.msg_bits config e.msg)
    in
    let commit_round ~round ~prev_correct =
      (* Ask the adversary for its round-[round] messages. The adversary
         interface stays list-based; the per-round list materialization
         here is the price of its full-information contract. *)
      let this_round_correct = Vec.to_list correct_out in
      let observed =
        match mode with `Rushing -> this_round_correct | `Non_rushing -> prev_correct
      in
      let byz = adversary.act ~round ~observed in
      List.iter (validate_adversary_envelope ~n ~corrupted) byz;
      (* Byzantine messages are delivered before correct ones next
         round: adversary-favorable tie-breaking, so races (e.g. the
         overload filter of Algorithm 3) resolve for the worst case. *)
      Vec.clear in_flight;
      List.iter
        (fun e ->
          record e;
          trace_msg ~round ~byzantine:true e;
          Vec.push in_flight e)
        byz;
      Vec.iter record correct_out;
      (match events with
      | None -> ()
      | Some _ -> Vec.iter (trace_msg ~round ~byzantine:false) correct_out);
      Vec.append in_flight correct_out;
      Vec.clear correct_out;
      this_round_correct
    in
    let prev_correct = ref (commit_round ~round:0 ~prev_correct:[]) in
    let round = ref 0 in
    (* Quiescence: some protocols (committee trees, phase king,
       re-polling AER) have planned gaps with nothing in flight, so we
       only stop after [quiet_limit] consecutive rounds with no traffic
       at all. Protocols with round timers longer than the default must
       raise it. *)
    let quiet = ref 0 in
    let last_active = ref 0 in
    (* Main loop: rounds 1 .. max_rounds. *)
    let continue = ref (!undecided > 0 || not (Vec.is_empty in_flight)) in
    while !continue && !round < max_rounds do
      incr round;
      let r = !round in
      (match events with
      | None -> ()
      | Some k -> Events.emit k (Events.Round_start { round = r }));
      (* Clock hook. *)
      for id = 0 to n - 1 do
        match states.(id) with
        | None -> ()
        | Some st -> List.iter (send id) (P.on_round config st ~round:r)
      done;
      (* Deliver last round's messages: swap the staged mailbox into the
         delivery buffer so [send] can refill [correct_out]/[in_flight]
         while we iterate. *)
      Vec.swap deliveries in_flight;
      Vec.clear in_flight;
      let delivered_any = not (Vec.is_empty deliveries) in
      Vec.iter
        (fun (e : P.msg Envelope.t) ->
          match states.(e.Envelope.dst) with
          | None ->
            (* Destination is Byzantine: adversary saw it via observed. *)
            (match events with
            | None -> ()
            | Some k ->
              Events.emit k
                (Events.Drop
                   {
                     round = r;
                     src = e.src;
                     dst = e.dst;
                     kind = Events.kind_of_pp P.pp_msg e.msg;
                     reason = "byzantine-dst";
                   }))
          | Some st ->
            (match events with
            | None -> ()
            | Some k ->
              Events.emit k
                (Events.Deliver
                   {
                     round = r;
                     src = e.src;
                     dst = e.dst;
                     kind = Events.kind_of_pp P.pp_msg e.msg;
                     bits = P.msg_bits config e.msg;
                   }));
            List.iter (send e.dst) (P.on_receive config st ~round:r ~src:e.src e.msg))
        deliveries;
      for id = 0 to n - 1 do
        check_decision ~round:r id
      done;
      prev_correct := commit_round ~round:r ~prev_correct:!prev_correct;
      if (not delivered_any) && Vec.is_empty in_flight then incr quiet
      else begin
        quiet := 0;
        last_active := r
      end;
      continue :=
        (!undecided > 0 || not (Vec.is_empty in_flight) || !prev_correct <> [])
        && !quiet < quiet_limit
    done;
    let rounds_used = if !quiet > 0 then !last_active else !round in
    Metrics.set_rounds metrics rounds_used;
    { metrics; outputs; states; all_decided = !undecided = 0; rounds_used }
end
