(** Synchronous round-based engine (Section 2.1 of the paper): a
    message sent during round [r] is delivered during round [r+1].

    The adversary is a closure invoked once per round. In [`Rushing]
    mode it sees the messages correct nodes send in the *current* round
    before choosing its own (the paper's rushing adversary); in
    [`Non_rushing] mode it only sees the previous round's messages. In
    both modes it has full information: every message ever sent is
    eventually passed to [act] through [observed].

    Delivery itself is pluggable: the [?net] network-condition layer
    ({!Net}) defaults to [Reliable] — the paper's model, bit-identical
    to the goldens — and may drop deliveries (i.i.d. loss, crash-stop
    receivers, transient partitions) for off-model robustness runs.
    Shared bookkeeping (mailboxes, adversary validation, metrics,
    decisions, tracing) lives in {!Engine_core}. *)

open Fba_stdx

type 'msg adversary = 'msg Engine_core.sync_adversary = {
  corrupted : Bitset.t;
  act : round:int -> observed:'msg Envelope.t list -> 'msg Envelope.t list;
}

let null_adversary = Engine_core.null_sync_adversary

type mode = [ `Rushing | `Non_rushing ]

type 'state result = {
  metrics : Metrics.t;
  outputs : string option array;
  states : 'state option array;  (** [None] for corrupted identities *)
  all_decided : bool;
  rounds_used : int;
}

module Make (P : Protocol.S) = struct
  module Core = Engine_core.Make (P)

  type nonrec adversary = P.msg adversary

  type nonrec result = P.state result

  let validate_adversary_envelope ~n ~corrupted e =
    Engine_core.validate_adversary_envelope ~who:"Sync_engine" ~n ~corrupted e

  let run ?(quiet_limit = 3) ?events ?(net = Net.Reliable) ~(config : P.config) ~n ~seed
      ~(adversary : adversary) ~(mode : mode) ~max_rounds () =
    if quiet_limit < 1 then invalid_arg "Sync_engine.run: quiet_limit < 1";
    let corrupted = adversary.corrupted in
    let core = Core.create ?events ~net ~config ~n ~seed ~corrupted () in
    let mb : P.msg Engine_core.Mailbox.t = Engine_core.Mailbox.create () in
    let send src (dst, msg) =
      if dst < 0 || dst >= n then invalid_arg "Sync_engine: destination out of range";
      Vec.push mb.correct_out (Envelope.make ~src ~dst msg)
    in
    (* Hoisted so the delivery loop allocates no per-message closures. *)
    let respond dst out = List.iter (send dst) out in
    Core.trace_round_start core ~round:0;
    (* Round 0: initialize correct nodes. *)
    Core.init_nodes core ~seed ~dispatch:(fun id out -> List.iter (send id) out);
    Core.check_decisions core ~round:0;
    let commit_round ~round ~prev_correct =
      (* Ask the adversary for its round-[round] messages. The adversary
         interface stays list-based; the per-round list materialization
         here is the price of its full-information contract. *)
      let this_round_correct = Vec.to_list mb.correct_out in
      let observed =
        match mode with `Rushing -> this_round_correct | `Non_rushing -> prev_correct
      in
      let byz = adversary.act ~round ~observed in
      List.iter (validate_adversary_envelope ~n ~corrupted) byz;
      (* Byzantine messages are delivered before correct ones next
         round: adversary-favorable tie-breaking, so races (e.g. the
         overload filter of Algorithm 3) resolve for the worst case. *)
      Vec.clear mb.in_flight;
      List.iter
        (fun e ->
          Core.record_send core e;
          Core.trace_msg core ~round ~byzantine:true ~delay:1 e;
          Vec.push mb.in_flight e)
        byz;
      Vec.iter (Core.record_send core) mb.correct_out;
      (match events with
      | None -> ()
      | Some _ -> Vec.iter (Core.trace_msg core ~round ~byzantine:false ~delay:1) mb.correct_out);
      Vec.append mb.in_flight mb.correct_out;
      Vec.clear mb.correct_out;
      this_round_correct
    in
    let prev_correct = ref (commit_round ~round:0 ~prev_correct:[]) in
    let round = ref 0 in
    (* Quiescence: some protocols (committee trees, phase king,
       re-polling AER) have planned gaps with nothing in flight, so we
       only stop after [quiet_limit] consecutive rounds with no traffic
       at all. Protocols with round timers longer than the default must
       raise it. *)
    let quiet = ref 0 in
    let last_active = ref 0 in
    (* Main loop: rounds 1 .. max_rounds. *)
    let continue = ref (core.undecided > 0 || not (Vec.is_empty mb.in_flight)) in
    while !continue && !round < max_rounds do
      incr round;
      let r = !round in
      Core.trace_round_start core ~round:r;
      (* Clock hook. *)
      for id = 0 to n - 1 do
        match core.states.(id) with
        | None -> ()
        | Some st -> List.iter (send id) (P.on_round config st ~round:r)
      done;
      (* Deliver last round's messages: swap the staged mailbox into the
         delivery buffer so [send] can refill [correct_out]/[in_flight]
         while we iterate. *)
      Engine_core.Mailbox.stage_deliveries mb;
      let delivered_any = not (Vec.is_empty mb.deliveries) in
      Vec.iter (fun (e : P.msg Envelope.t) -> Core.deliver core ~round:r e ~respond) mb.deliveries;
      Core.check_decisions core ~round:r;
      prev_correct := commit_round ~round:r ~prev_correct:!prev_correct;
      if (not delivered_any) && Vec.is_empty mb.in_flight then incr quiet
      else begin
        quiet := 0;
        last_active := r
      end;
      continue :=
        (core.undecided > 0 || not (Vec.is_empty mb.in_flight) || !prev_correct <> [])
        && !quiet < quiet_limit
    done;
    let rounds_used = if !quiet > 0 then !last_active else !round in
    Metrics.set_rounds core.metrics rounds_used;
    {
      metrics = core.metrics;
      outputs = core.outputs;
      states = core.states;
      all_decided = core.undecided = 0;
      rounds_used;
    }
end
