(** Structured execution events: the phase-aware trace pipeline.

    The paper's communication bounds are per-phase (Lemmas 3–10 bound
    pushes, polls and the Fw1/Fw2 bursts separately), so whole-run
    {!Metrics} aggregates are too coarse to diagnose a lemma-gauge
    regression. This module defines typed trace events emitted by the
    engines ({!Sync_engine}, {!Async_engine}) and by protocols (phase
    markers), and pluggable consumers: a preallocated ring buffer, an
    unbounded in-memory collector, a JSONL writer, and a phase
    accumulator that splits every [Metrics]-style counter by protocol
    phase.

    Tracing is strictly opt-in: engines take an optional [?events]
    sink, and every emission site is guarded so a disabled run performs
    no extra work and no extra allocation (the perf-regression gate of
    [bench perf --json] is measured with tracing off and must not
    move). *)

type event =
  | Round_start of { round : int }
      (** Engine clock tick ([round] is the async time step for the
          asynchronous engine). *)
  | Phase of { round : int; name : string }
      (** A protocol announced that phase [name] became active. Emitted
          via {!phase}, which deduplicates: each name appears once, at
          the round of its first activation. *)
  | Send of { round : int; src : int; dst : int; kind : string; bits : int; delay : int }
      (** A correct node sent a message. [delay] is the delivery delay
          in engine steps (always 1 for the synchronous engine, the
          adversary-chosen clamped delay for the asynchronous one). *)
  | Inject of { round : int; src : int; dst : int; kind : string; bits : int; delay : int }
      (** The adversary sent a message from a corrupted identity. *)
  | Deliver of { round : int; src : int; dst : int; kind : string; bits : int }
      (** A message reached a correct node's handler. *)
  | Drop of { round : int; src : int; dst : int; kind : string; reason : string }
      (** A message was discarded by the engine instead of delivered
          (e.g. the destination is a Byzantine identity with no state
          machine behind it). *)
  | Decide of { round : int; id : int; value : string }
      (** Node [id] fixed its output. *)

val kind_of_pp : (Format.formatter -> 'msg -> unit) -> 'msg -> string
(** First token of the message's [pp] rendering ("Fw1(x=3, ...)" ->
    "Fw1") — the kind label engines stamp on message events. *)

(** {1 Sinks}

    A sink fans each event out to its attached consumers, in attach
    order. Consumers are plain [event -> unit] functions, so the ring
    buffer, the JSONL writer and the phase accumulator below compose
    freely and callers can attach ad-hoc closures. *)

type sink

val create : unit -> sink
(** A sink with no consumers. Emitting into it only costs the
    consumer-list walk (i.e. nothing). *)

val attach : sink -> (event -> unit) -> unit

val emit : sink -> event -> unit

val phase : sink -> round:int -> string -> unit
(** [phase sink ~round name] emits [Phase {round; name}] the first time
    [name] is announced and is a no-op afterwards. Protocol phases
    overlap across nodes (every AER node pushes {e and} polls from
    round 0), so the marker stream records each phase's activation
    round rather than pretending execution is globally sequential. *)

val phases_seen : sink -> (string * int) list
(** Announced phases with their activation rounds, in announcement
    order. *)

(** {1 Preallocated ring buffer}

    Bounded trace retention for long executions: the backing array is
    allocated once at [create] and the newest events overwrite the
    oldest on wrap-around. *)

module Ring : sig
  type t

  val create : capacity:int -> t
  (** Raises [Invalid_argument] if [capacity < 1]. *)

  val consumer : t -> event -> unit
  (** Attach with {!attach}. *)

  val capacity : t -> int

  val length : t -> int
  (** Events currently retained ([<= capacity]). *)

  val total : t -> int
  (** Events ever consumed, including overwritten ones. *)

  val to_list : t -> event list
  (** Retained events, oldest first. *)
end

(** {1 Unbounded in-memory collector} *)

module Memory : sig
  type t

  val create : unit -> t
  val consumer : t -> event -> unit
  val length : t -> int
  val iter : (event -> unit) -> t -> unit
  val to_list : t -> event list
end

(** {1 JSONL export}

    One JSON object per event, one event per line: machine-readable
    traces for offline analysis. Every object carries an ["ev"]
    discriminator and a ["round"]; the remaining keys depend on the
    event. Strings are escaped so that every line is valid ASCII JSON
    even when values carry arbitrary bytes (gstrings are random). *)

module Jsonl : sig
  val escape : string -> string
  (** JSON string-body escaping: quote, backslash and control
      characters per RFC 8259, plus non-ASCII bytes as [\u00XX] so the
      output never contains invalid UTF-8. *)

  val to_string : event -> string
  (** The event's JSON object, without a trailing newline. *)

  val consumer : Buffer.t -> event -> unit
  (** Appends [to_string event ^ "\n"] to the buffer. *)

  val writer : out_channel -> event -> unit
  (** Writes [to_string event ^ "\n"] to the channel. *)
end

(** {1 Phase accumulator}

    Splits the [Metrics] counters by protocol phase. Each [Send] and
    [Inject] is attributed to the phase [classify ~kind] names — for
    AER, {!Fba_core.Aer.phase_of_kind} maps message kinds onto the
    push/poll/fw1/fw2/answer pipeline. Classification is by message
    kind rather than by the latest {!Phase} marker because phases
    overlap in time across nodes; kind-based attribution keeps the
    invariant that per-phase bits sum exactly to
    [Metrics.total_bits_all]. *)

module Phase_acc : sig
  type t

  type row = {
    phase : string;
    first_round : int;  (** round of the first event attributed to the phase *)
    last_round : int;
    msgs_correct : int;
    msgs_byz : int;
    bits_correct : int;
    bits_byz : int;
    max_sent_bits : int;  (** heaviest correct sender within the phase *)
    max_recv_bits : int;  (** heaviest correct receiver within the phase *)
    max_fanout : int;  (** most messages sent by one correct node in the phase *)
  }

  val create : ?classify:(kind:string -> string) -> n:int -> unit -> t
  (** [classify] defaults to the identity (each message kind is its own
      phase). [n] is the system size, for the per-node maxima. *)

  val consumer : t -> event -> unit

  val rows : t -> row list
  (** One row per phase, in first-attribution order. *)

  val total_bits : t -> int
  (** Sum of [bits_correct + bits_byz] over all rows — equals
      [Metrics.total_bits_all] of the same run when the accumulator saw
      every send. *)

  val total_messages : t -> int

  val render : t -> string
  (** Markdown phase timeline: one row per phase with its round span,
      message counts (correct and Byzantine), bits per node (correct
      senders, amortized over the accumulator's [n]) and worst fan-out,
      plus a stable [total] row. *)
end
