(** Execution tracing: per-round message counts by kind.

    Wrap any protocol with {!Traced} to collect, without touching the
    protocol code, how many messages of each kind crossed the wire in
    each round — the raw material for the phase diagrams one draws of
    AER executions (pushes, then polls/pulls, then the Fw1 burst, then
    Fw2s and answers). The kind of a message is the first token of its
    [pp_msg] rendering, so every protocol gets sensible labels for
    free. *)

type t

val create : unit -> t

val record : t -> round:int -> kind:string -> unit

val kinds : t -> string list
(** All kinds seen, sorted. *)

val rounds : t -> int
(** Highest round recorded + 1 (0 if nothing recorded). *)

val count : t -> round:int -> kind:string -> int

val total : t -> kind:string -> int
(** Sum of [count] over all rounds. *)

val render : t -> string
(** A markdown table: one row per round, one right-aligned count column
    per kind, plus a stable trailing [total] row (emitted even for an
    empty trace). *)

val to_csv : t -> string
(** The same table as {!render}, as RFC-4180-ish CSV — the
    kind-per-round counts in machine-readable form. *)

(** Wrap a protocol so that every received message is recorded into the
    given trace. The wrapped protocol is otherwise bit-for-bit
    identical (same sends, same decisions, same accounting). *)
module Traced (P : Protocol.S) : sig
  include
    Protocol.S
      with type config = P.config * t
       and type msg = P.msg
       and type state = P.state
end
