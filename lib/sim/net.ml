open Fba_stdx

type spec =
  | Reliable
  | Drop of { rate : float }
  | Crash of { at : int; fraction : float }
  | Partition of { from_round : int; rounds : int }
  | Jitter of { extra : int }
  | Compose of spec list

let reason_loss = "net-loss"
let reason_crash = "net-crash"
let reason_partition = "net-partition"

(* Compiled runtime: one slot per condition kind. Each randomized
   condition owns a dedicated PRNG stream split at a fixed index from
   the scenario-seed-derived root, so adding one condition never shifts
   another's draws and every jobs/seed combination stays deterministic
   (each run instantiates its own state from the seed — nothing is
   shared across runs or domains). *)
type t = {
  trivial : bool;  (* no condition can interfere: the Reliable fast path *)
  n : int;
  drop : drop option;
  crash : crash option;
  partition : partition option;
  jitter : jitter option;
}

and drop = { rate : float; drop_rng : Prng.t }

and crash = { crash_at : int; victims : Bitset.t }

and partition = { cut_from : int; cut_until : int (* exclusive *) }

and jitter = { extra : int; jitter_rng : Prng.t }

let rec validate = function
  | Reliable -> ()
  | Drop { rate } ->
    if not (rate >= 0.0 && rate <= 1.0) then invalid_arg "Net: drop rate outside [0, 1]"
  | Crash { at; fraction } ->
    if at < 0 then invalid_arg "Net: crash round negative";
    if not (fraction >= 0.0 && fraction <= 1.0) then
      invalid_arg "Net: crash fraction outside [0, 1]"
  | Partition { from_round; rounds } ->
    if from_round < 0 then invalid_arg "Net: partition start negative";
    if rounds < 0 then invalid_arg "Net: partition length negative"
  | Compose specs ->
    List.iter
      (fun s ->
        (match s with
        | Compose _ -> invalid_arg "Net: nested Compose"
        | _ -> ());
        validate s)
      specs
  | Jitter { extra } -> if extra < 0 then invalid_arg "Net: jitter extra negative"

let rec max_extra_delay = function
  | Reliable | Drop _ | Crash _ | Partition _ -> 0
  | Jitter { extra } -> extra
  | Compose specs -> List.fold_left (fun acc s -> max acc (max_extra_delay s)) 0 specs

(* Fixed split indices: 0 = drop stream, 1 = jitter stream, 2 = crash
   victim selection. *)
let instantiate spec ~n ~seed =
  validate spec;
  let root =
    lazy (Prng.create (Hash64.finish (Hash64.add_string (Hash64.init seed) "net")))
  in
  let state =
    { trivial = false; n; drop = None; crash = None; partition = None; jitter = None }
  in
  let add state = function
    | Reliable -> state
    | Compose _ -> assert false (* rejected by validate *)
    | Drop { rate } ->
      if state.drop <> None then invalid_arg "Net: two Drop conditions";
      if rate = 0.0 then state
      else { state with drop = Some { rate; drop_rng = Prng.split_at (Lazy.force root) 0 } }
    | Crash { at; fraction } ->
      if state.crash <> None then invalid_arg "Net: two Crash conditions";
      let k = min n (int_of_float (ceil (fraction *. float_of_int n))) in
      if k = 0 then state
      else
        let rng = Prng.split_at (Lazy.force root) 2 in
        let victims = Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k) in
        { state with crash = Some { crash_at = at; victims } }
    | Partition { from_round; rounds } ->
      if state.partition <> None then invalid_arg "Net: two Partition conditions";
      if rounds = 0 then state
      else
        { state with
          partition = Some { cut_from = from_round; cut_until = from_round + rounds } }
    | Jitter { extra } ->
      if state.jitter <> None then invalid_arg "Net: two Jitter conditions";
      if extra = 0 then state
      else { state with jitter = Some { extra; jitter_rng = Prng.split_at (Lazy.force root) 1 } }
  in
  let state =
    match spec with Compose specs -> List.fold_left add state specs | s -> add state s
  in
  { state with
    trivial = state.drop = None && state.crash = None && state.partition = None }

let reliable ~n = instantiate Reliable ~n ~seed:0L

type verdict = Pass | Lose of string

(* Bisection sides: ids [0, n/2) vs [n/2, n). *)
let side t id = if id < t.n / 2 then 0 else 1

let verdict t ~round ~src ~dst =
  if t.trivial then Pass
  else begin
    match t.crash with
    | Some { crash_at; victims } when round >= crash_at && Bitset.mem victims dst ->
      Lose reason_crash
    | _ -> (
      match t.partition with
      | Some { cut_from; cut_until }
        when round >= cut_from && round < cut_until && side t src <> side t dst ->
        Lose reason_partition
      | _ -> (
        match t.drop with
        | Some { rate; drop_rng } ->
          (* Exactly one draw per query, whatever the outcome: two nets
             with the same seed and rates p <= q then drop coupled
             subsets (u < p implies u < q), which is what the
             monotonicity property tests. *)
          if Prng.float drop_rng < rate then Lose reason_loss else Pass
        | None -> Pass))
  end

let extra_delay t ~time:_ ~src:_ ~dst:_ =
  match t.jitter with
  | None -> 0
  | Some { extra; jitter_rng } -> Prng.int jitter_rng (extra + 1)

let crashed t = match t.crash with None -> None | Some { crash_at; victims } -> Some (crash_at, victims)
