(** Synchronous round-based engine (Section 2.1 of the paper): a
    message sent during round [r] is delivered during round [r+1],
    subject to the pluggable {!Net} layer (default [Reliable] — the
    paper's model). *)

open Fba_stdx

type 'msg adversary = 'msg Engine_core.sync_adversary = {
  corrupted : Bitset.t;
  act : round:int -> observed:(unit -> 'msg Envelope.t list) -> 'msg Envelope.t list;
      (** [observed ()] is the batch of correct-node messages the
          adversary is entitled to have seen when choosing its
          round-[round] messages (current round when rushing, previous
          otherwise); it materializes envelopes from the engine's flat
          lanes only when called, and the result is valid only for the
          duration of the call. Returned envelopes must have a
          corrupted [src]. *)
}

val null_adversary : corrupted:Bitset.t -> 'msg adversary
(** Alias of {!Engine_core.null_sync_adversary}: corrupted identities
    that never send. *)

type mode = [ `Rushing | `Non_rushing ]

type 'state result = {
  metrics : Metrics.t;
  outputs : string option array;
  states : 'state option array;  (** [None] for corrupted identities *)
  all_decided : bool;
  rounds_used : int;
}

module Make (P : Protocol.S) : sig
  type nonrec adversary = P.msg adversary

  type nonrec result = P.state result

  val validate_adversary_envelope : n:int -> corrupted:Bitset.t -> P.msg Envelope.t -> unit
  (** Alias of {!Engine_core.validate_adversary_envelope} with this
      engine's error prefix. *)

  type running
  (** An in-flight run, advanced one round per {!step}. *)

  val start :
    ?quiet_limit:int ->
    ?stream:bool ->
    ?mailbox:P.msg Engine_core.Mailbox.t ->
    ?events:Events.sink ->
    ?prof:Prof.t ->
    ?net:Net.spec ->
    config:P.config ->
    n:int ->
    seed:int64 ->
    adversary:adversary ->
    mode:mode ->
    max_rounds:int ->
    unit ->
    running
  (** Open a run: same parameters and semantics as {!run}, which is
      literally [start] + [step] until false + [finish] — a stepped run
      is the same execution, round for round. The stepper exists so an
      instance stream ({!Fba_harness.Service}) can keep several runs
      concurrently open and interleave their rounds. [mailbox] hands
      in a previous run's delivery storage for epoch reuse; it is
      {!Engine_core.Mailbox.reset} in place (its shape then overrides
      [stream]). *)

  val step : running -> bool
  (** Execute one round; [false] once the run's loop condition has
      failed (nothing left in flight, quiescence, or the round cap) —
      at which point only {!finish} remains. *)

  val finish : running -> result
  (** The run epilogue: close metrics and return the result. Call once,
      after {!step} returns false. *)

  val run :
    ?quiet_limit:int ->
    ?stream:bool ->
    ?events:Events.sink ->
    ?prof:Prof.t ->
    ?net:Net.spec ->
    config:P.config ->
    n:int ->
    seed:int64 ->
    adversary:adversary ->
    mode:mode ->
    max_rounds:int ->
    unit ->
    result
  (** [quiet_limit] (default 3) is the number of consecutive rounds
      with no traffic after which the engine declares quiescence —
      protocols with longer planned gaps must raise it. [stream]
      (default {!Engine_core.stream_default}, i.e. on unless
      [FBA_NO_STREAM] is set) selects the chunked streamed mailbox;
      [~stream:false] is the historical double-buffered plane —
      delivery order and every observable output are identical either
      way. [net] defaults to [Net.Reliable]; any other condition may
      drop deliveries (attributed through {!Events.Drop} with the
      {!Net} reason tags). [Net.Jitter] is a no-op here: the
      synchronous delivery schedule {e is} the round structure. [prof],
      when given, records per-round / per-handler-tag wall-clock and
      allocation into the attached {!Prof.t}; absent, the run does no
      profiling work at all. *)
end
