open Fba_stdx

(* --- Adversary records (shared between the two engines) ---

   Observation is lazy: [observed]/[observe] hand the adversary a
   thunk that materializes envelopes from the engine's flat lanes only
   when called, so strategies that never look (or look once) cost
   nothing per round. The thunk's result is valid only for the
   duration of the call — the engine reuses the underlying buffers. *)

type 'msg sync_adversary = {
  corrupted : Bitset.t;
  act : round:int -> observed:(unit -> 'msg Envelope.t list) -> 'msg Envelope.t list;
}

type 'msg async_adversary = {
  corrupted : Bitset.t;
  max_delay : int;
  delay : time:int -> src:int -> dst:int -> 'msg -> int;
  observe : time:int -> src:int -> dst:int -> 'msg -> unit;
  inject : time:int -> ('msg Envelope.t * int) list;
}

let null_sync_adversary ~corrupted = { corrupted; act = (fun ~round:_ ~observed:_ -> []) }

let null_async_adversary ~corrupted =
  {
    corrupted;
    max_delay = 1;
    delay = (fun ~time:_ ~src:_ ~dst:_ _ -> 1);
    observe = (fun ~time:_ ~src:_ ~dst:_ _ -> ());
    inject = (fun ~time:_ -> []);
  }

let validate_adversary_envelope ~who ~n ~(corrupted : Bitset.t) (e : _ Envelope.t) =
  if e.Envelope.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
    invalid_arg (who ^ ": adversary envelope out of range");
  if not (Bitset.mem corrupted e.src) then
    invalid_arg (who ^ ": adversary may only send from corrupted identities")

(* FBA_NO_STREAM flips the engines back onto the historical
   double-buffered mailbox lanes everywhere at once — the ci-level A/B
   switch for the streamed delivery plane, mirroring FBA_NO_COMPILE.
   Behaviour is byte-identical either way (the streamed-vs-buffered
   trace-identity property pins it); only the memory shape changes. *)
let stream_default () = Sys.getenv_opt "FBA_NO_STREAM" = None

(* Segment granularity: scale with the population so tiny test runs do
   not pay kilowords of arena slack per chain, while sweep-scale runs
   amortize chain bookkeeping over big segments. *)
let seg_cap_for ~n = max 64 (min Batch.Arena.default_seg_cap n)

(* --- Sync mailboxes, in two interchangeable shapes.

   [Buffered] is the historical plane: parallel (src, dst, msg) lanes
   reused across rounds — [correct_out] collects the current round's
   correct sends, [in_flight] holds what the commit step staged for
   next round (byzantine first, then a *copy* of the correct sends),
   [deliveries] is the double buffer [in_flight] is swapped into at
   delivery time, and [prev_correct] keeps the previous round's correct
   sends alive for non-rushing adversaries. Fast and allocation-free
   once warm, but a burst round's footprint is retained several times
   over for the rest of the run.

   [Streamed] (the default) rebuilds the same schedule from chunked
   arena segments: correct sends are *linked* after the staged
   byzantine messages at commit (O(1), no copy), and the delivery step
   drains the staged chain segment by segment, recycling each into the
   shared arena the moment its last message is handled — so the sends
   those deliveries trigger refill the storage just vacated. Delivery
   order is identical by construction: byzantine pushes first, then
   the correct chain in send order. --- *)

module Mailbox = struct
  type 'msg buffered = {
    correct_out : 'msg Batch.t;
    in_flight : 'msg Batch.t;
    deliveries : 'msg Batch.t;
    prev_correct : 'msg Batch.t;
  }

  type 'msg streamed = {
    arena : 'msg Batch.Arena.t;
    correct : 'msg Batch.Chain.t;  (* current round's correct sends *)
    staged : 'msg Batch.Chain.t;  (* next round's deliveries: byz then correct *)
    prev : 'msg Batch.Chain.t;  (* previous round's correct sends (non-rushing) *)
  }

  type 'msg t = Buffered of 'msg buffered * int ref | Streamed of 'msg streamed

  let create ?stream ?seg_cap ~n () =
    let stream = match stream with Some b -> b | None -> stream_default () in
    if stream then begin
      let arena =
        Batch.Arena.create
          ~seg_cap:(match seg_cap with Some c -> c | None -> seg_cap_for ~n)
          ()
      in
      Streamed
        {
          arena;
          correct = Batch.Chain.create arena;
          staged = Batch.Chain.create arena;
          prev = Batch.Chain.create arena;
        }
    end
    else
      Buffered
        ( {
            correct_out = Batch.create ();
            in_flight = Batch.create ();
            deliveries = Batch.create ();
            prev_correct = Batch.create ();
          },
          ref 0 )

  let streamed = function Streamed _ -> true | Buffered _ -> false

  (* Current round's correct sends. *)
  let push_correct t ~src ~dst msg =
    match t with
    | Buffered (b, _) -> Batch.push b.correct_out ~src ~dst msg
    | Streamed s -> Batch.Chain.push s.correct ~src ~dst msg

  let correct_length = function
    | Buffered (b, _) -> Batch.length b.correct_out
    | Streamed s -> Batch.Chain.length s.correct

  let iter_correct f = function
    | Buffered (b, _) -> Batch.iter f b.correct_out
    | Streamed s -> Batch.Chain.iter f s.correct

  (* Adversary observation (lazy; envelopes materialized on demand). *)
  let correct_envelopes = function
    | Buffered (b, _) -> Batch.to_envelopes b.correct_out
    | Streamed s -> Batch.Chain.to_envelopes s.correct

  let prev_envelopes = function
    | Buffered (b, _) -> Batch.to_envelopes b.prev_correct
    | Streamed s -> Batch.Chain.to_envelopes s.prev

  (* Commit step. [begin_commit] readies the staging area (the
     byzantine messages of the round are pushed first — adversary-
     favorable tie-breaking), [push_staged] adds one of them, and
     [commit] moves the round's correct sends in after them: a copy on
     the buffered plane, an O(1) segment link on the streamed one. *)
  let begin_commit = function
    | Buffered (b, _) -> Batch.clear b.in_flight
    | Streamed _ -> ()
  (* streamed: the staged chain was fully drained by [drain] *)

  let push_staged t ~src ~dst msg =
    match t with
    | Buffered (b, _) -> Batch.push b.in_flight ~src ~dst msg
    | Streamed s -> Batch.Chain.push s.staged ~src ~dst msg

  let commit t ~keep_prev =
    match t with
    | Buffered (b, _) ->
      Batch.append b.in_flight b.correct_out;
      if keep_prev then begin
        (* Keep this round's correct sends alive for next round's
           observation window. *)
        Batch.clear b.prev_correct;
        Batch.append b.prev_correct b.correct_out
      end;
      Batch.clear b.correct_out
    | Streamed s ->
      if keep_prev then begin
        Batch.Chain.clear s.prev;
        Batch.Chain.iter (fun ~src ~dst msg -> Batch.Chain.push s.prev ~src ~dst msg) s.correct
      end;
      Batch.Chain.transfer s.correct ~into:s.staged

  (* Delivery step. [stage] swaps the staged mailbox into the delivery
     buffer (buffered plane only — the streamed chain *is* the delivery
     buffer), [staged_any] reports whether anything is due, and [drain]
     visits every due message in order: an indexed loop on the buffered
     plane, a segment-recycling drain on the streamed one. *)
  let stage = function
    | Buffered (b, due) ->
      Batch.swap b.deliveries b.in_flight;
      Batch.clear b.in_flight;
      due := Batch.length b.deliveries
    | Streamed _ -> ()

  let staged_any = function
    | Buffered (b, _) -> not (Batch.is_empty b.deliveries)
    | Streamed s -> not (Batch.Chain.is_empty s.staged)

  let drain t ~f =
    match t with
    | Buffered (b, due) ->
      (* No clear: the buffer is reused at the next [stage] swap, as the
         historical engine did. Handlers push into [correct_out], never
         into [deliveries], so the captured length is stable. *)
      let d = b.deliveries in
      for i = 0 to !due - 1 do
        f ~src:(Batch.src d i) ~dst:(Batch.dst d i) (Batch.msg d i)
      done
    | Streamed s -> Batch.Chain.drain s.staged ~f

  (* Anything staged for the next round (the quiescence check). *)
  let pending_any = function
    | Buffered (b, _) -> not (Batch.is_empty b.in_flight)
    | Streamed s -> not (Batch.Chain.is_empty s.staged)

  (* Epoch reset for instance streams: empty every lane in place. On
     the streamed plane the chains recycle their segments back into the
     arena free list, so the next run's bursts refill storage this one
     already created; on the buffered plane the lanes keep their
     capacity. Peak accounting is deliberately not reset — the arena
     high-water is a property of the stream, not of one instance. *)
  let reset = function
    | Buffered (b, due) ->
      Batch.clear b.correct_out;
      Batch.clear b.in_flight;
      Batch.clear b.deliveries;
      Batch.clear b.prev_correct;
      due := 0
    | Streamed s ->
      Batch.Chain.clear s.correct;
      Batch.Chain.clear s.staged;
      Batch.Chain.clear s.prev

  (* Peak footprint of the delivery plane, in words: arena high-water
     on the streamed plane, retained lane capacities on the buffered
     one (lanes never shrink, so current capacity is the high-water). *)
  let peak_words = function
    | Buffered (b, _) ->
      Batch.capacity_words b.correct_out + Batch.capacity_words b.in_flight
      + Batch.capacity_words b.deliveries
      + Batch.capacity_words b.prev_correct
    | Streamed s -> Batch.Arena.peak_words s.arena
end

(* --- Async calendar queue: every delay is clamped to [1, width - 1],
   so a message scheduled at time t lands strictly within the next
   [width - 1] steps and a ring of [width] reusable buckets indexed by
   [at mod width] can never alias two distinct due times that are both
   live. Scheduling is a push into flat storage — no hashing, no list
   refs, no envelope. On the streamed plane the buckets are chains over
   one shared arena: draining the due bucket recycles its segments
   while the deliveries schedule into strictly-future buckets, which
   take those same segments from the free list — so jitter-widened
   rings no longer retain every bucket's burst high-water. --- *)

module Calendar = struct
  type 'msg buckets =
    | Bbuf of 'msg Batch.t array
    | Bstream of 'msg Batch.Arena.t * 'msg Batch.Chain.t array

  type 'msg t = { width : int; buckets : 'msg buckets; mutable pending : int }

  let create ?stream ?seg_cap ~n ~max_delay () =
    let stream = match stream with Some b -> b | None -> stream_default () in
    let width = max_delay + 1 in
    let buckets =
      if stream then begin
        let arena =
          Batch.Arena.create
            ~seg_cap:(match seg_cap with Some c -> c | None -> seg_cap_for ~n)
            ()
        in
        Bstream (arena, Array.init width (fun _ -> Batch.Chain.create arena))
      end
      else Bbuf (Array.init width (fun _ -> Batch.create ()))
    in
    { width; buckets; pending = 0 }

  let schedule t ~at ~src ~dst msg =
    (match t.buckets with
    | Bbuf b -> Batch.push b.(at mod t.width) ~src ~dst msg
    | Bstream (_, b) -> Batch.Chain.push b.(at mod t.width) ~src ~dst msg);
    t.pending <- t.pending + 1

  let due_count t ~time =
    match t.buckets with
    | Bbuf b -> Batch.length b.(time mod t.width)
    | Bstream (_, b) -> Batch.Chain.length b.(time mod t.width)

  (* Drain the bucket due at [time], in schedule order. Deliveries
     schedule at delay >= 1 < width, so they push into other buckets,
     never the one being drained — the chain-drain precondition. *)
  let drain_due t ~time ~f =
    match t.buckets with
    | Bbuf b ->
      let bucket = b.(time mod t.width) in
      let due = Batch.length bucket in
      for i = 0 to due - 1 do
        f ~src:(Batch.src bucket i) ~dst:(Batch.dst bucket i) (Batch.msg bucket i)
      done;
      Batch.clear bucket
    | Bstream (_, b) -> Batch.Chain.drain b.(time mod t.width) ~f

  let pending t = t.pending

  let consumed t k = t.pending <- t.pending - k

  (* Epoch reset: empty every bucket in place (streamed buckets recycle
     their segments into the shared arena). Peak accounting survives,
     as with {!Mailbox.reset}. *)
  let reset t =
    (match t.buckets with
    | Bbuf b -> Array.iter Batch.clear b
    | Bstream (_, b) -> Array.iter Batch.Chain.clear b);
    t.pending <- 0

  let peak_words t =
    match t.buckets with
    | Bbuf b -> Array.fold_left (fun acc bucket -> acc + Batch.capacity_words bucket) 0 b
    | Bstream (arena, _) -> Batch.Arena.peak_words arena
end

(* --- Shared run state: everything both engine loops book-keep
   identically — node states and outputs, metrics, decision tracking,
   the optional event sink, and the instantiated network-condition
   layer. --- *)

module Make (P : Protocol.S) = struct
  type t = {
    n : int;
    config : P.config;
    corrupted : Bitset.t;
    metrics : Metrics.t;
    states : P.state option array;
    outputs : string option array;
    mutable undecided : int;
    events : Events.sink option;
    prof : Prof.t option;
    net : Net.t;
  }

  let create ?events ?prof ~net ~config ~n ~seed ~corrupted () =
    P.compile config;
    {
      n;
      config;
      corrupted;
      metrics = Metrics.create ~n ~corrupted;
      states = Array.make n None;
      outputs = Array.make n None;
      undecided = 0;
      events;
      prof;
      net = Net.instantiate net ~n ~seed;
    }

  (* Profiling sites mirror the [events] guards: a run without a
     profiler attached does no extra work in the hot loops. *)
  let prof_start t =
    match t.prof with None -> () | Some p -> Prof.start p ~tags:(P.msg_tags t.config)

  let prof_round t ~round =
    match t.prof with None -> () | Some p -> Prof.round p round

  let prof_stop t = match t.prof with None -> () | Some p -> Prof.stop p

  (* Round 0 / time 0: create correct nodes and hand their initial
     sends to the engine's dispatch. *)
  let init_nodes t ~seed ~dispatch =
    for id = 0 to t.n - 1 do
      if not (Bitset.mem t.corrupted id) then begin
        let ctx = Ctx.make ~n:t.n ~id ~seed in
        let state, out = P.init t.config ctx in
        t.states.(id) <- Some state;
        t.undecided <- t.undecided + 1;
        dispatch id out
      end
    done

  let record_send t ~src ~dst msg =
    Metrics.record_send t.metrics ~src ~dst ~bits:(P.msg_bits t.config msg)

  (* Every tracing site is guarded on [events] so a disabled run does
     no extra work (and no allocation) in the hot loops. *)
  let trace_round_start t ~round =
    match t.events with
    | None -> ()
    | Some k -> Events.emit k (Events.Round_start { round })

  let trace_msg t ~round ~byzantine ~delay ~src ~dst msg =
    match t.events with
    | None -> ()
    | Some k ->
      let kind = Events.kind_of_pp (P.pp_msg t.config) msg in
      let bits = P.msg_bits t.config msg in
      if byzantine then Events.emit k (Events.Inject { round; src; dst; kind; bits; delay })
      else Events.emit k (Events.Send { round; src; dst; kind; bits; delay })

  let trace_drop t ~round ~src ~dst msg reason =
    match t.events with
    | None -> ()
    | Some k ->
      Events.emit k
        (Events.Drop { round; src; dst; kind = Events.kind_of_pp (P.pp_msg t.config) msg; reason })

  let check_decision t ~round id =
    if t.outputs.(id) = None then begin
      match t.states.(id) with
      | None -> ()
      | Some st ->
        (match P.output st with
        | Some v ->
          t.outputs.(id) <- Some v;
          Metrics.record_decision t.metrics ~id ~round;
          t.undecided <- t.undecided - 1;
          (match t.events with
          | None -> ()
          | Some k -> Events.emit k (Events.Decide { round; id; value = v }))
        | None -> ())
    end

  let check_decisions t ~round =
    for id = 0 to t.n - 1 do
      check_decision t ~round id
    done

  (* The per-delivery protocol entry point: the allocation-free
     [receive_into] when the protocol provides it, otherwise the
     list-returning [on_receive] drained through [emit] (same order). *)
  let handler_of t ~emit =
    match P.receive_into with
    | Some f -> fun st ~round ~src msg -> f t.config st ~round ~src msg ~emit
    | None ->
      fun st ~round ~src msg ->
        List.iter (fun (d, m) -> emit d m) (P.on_receive t.config st ~round ~src msg)

  (* The shared delivery step: consult the network-condition layer
     (free under [Net.Reliable]), drop messages to Byzantine
     destinations (the adversary already saw them via its observation
     hook), hand the rest to the protocol via [handle]. *)
  let deliver t ~round ~src ~dst msg ~handle =
    match Net.verdict t.net ~round ~src ~dst with
    | Net.Lose reason -> trace_drop t ~round ~src ~dst msg reason
    | Net.Pass -> (
      match t.states.(dst) with
      | None -> trace_drop t ~round ~src ~dst msg "byzantine-dst"
      | Some st ->
        (match t.events with
        | None -> ()
        | Some k ->
          Events.emit k
            (Events.Deliver
               {
                 round;
                 src;
                 dst;
                 kind = Events.kind_of_pp (P.pp_msg t.config) msg;
                 bits = P.msg_bits t.config msg;
               }));
        (match t.prof with
        | None -> handle dst st ~src msg
        | Some p ->
          Prof.enter p;
          handle dst st ~src msg;
          Prof.leave p ~tag:(P.msg_tag t.config msg)))
end
