open Fba_stdx

(* --- Adversary records (shared between the two engines) --- *)

type 'msg sync_adversary = {
  corrupted : Bitset.t;
  act : round:int -> observed:'msg Envelope.t list -> 'msg Envelope.t list;
}

type 'msg async_adversary = {
  corrupted : Bitset.t;
  max_delay : int;
  delay : time:int -> 'msg Envelope.t -> int;
  observe : time:int -> 'msg Envelope.t list -> unit;
  inject : time:int -> ('msg Envelope.t * int) list;
}

let null_sync_adversary ~corrupted = { corrupted; act = (fun ~round:_ ~observed:_ -> []) }

let null_async_adversary ~corrupted =
  {
    corrupted;
    max_delay = 1;
    delay = (fun ~time:_ _ -> 1);
    observe = (fun ~time:_ _ -> ());
    inject = (fun ~time:_ -> []);
  }

let validate_adversary_envelope ~who ~n ~(corrupted : Bitset.t) (e : _ Envelope.t) =
  if e.Envelope.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
    invalid_arg (who ^ ": adversary envelope out of range");
  if not (Bitset.mem corrupted e.src) then
    invalid_arg (who ^ ": adversary may only send from corrupted identities")

(* --- Sync mailboxes: flat growable buffers reused across rounds, so
   the steady-state engine allocates only the envelopes themselves.
   [correct_out] collects the current round's correct sends,
   [in_flight] holds what the commit step staged for next round, and
   [deliveries] is the double buffer [in_flight] is swapped into at
   delivery time. --- *)

module Mailbox = struct
  type 'msg t = {
    correct_out : 'msg Envelope.t Vec.t;
    in_flight : 'msg Envelope.t Vec.t;
    deliveries : 'msg Envelope.t Vec.t;
  }

  let create () = { correct_out = Vec.create (); in_flight = Vec.create (); deliveries = Vec.create () }

  (* Swap the staged mailbox into the delivery buffer so sends can
     refill [correct_out]/[in_flight] while the caller iterates. *)
  let stage_deliveries t =
    Vec.swap t.deliveries t.in_flight;
    Vec.clear t.in_flight
end

(* --- Async calendar queue: every delay is clamped to [1, width - 1],
   so a message scheduled at time t lands strictly within the next
   [width - 1] steps and a ring of [width] reusable Vec buckets indexed
   by [at mod width] can never alias two distinct due times that are
   both live. Scheduling is a push into a flat buffer — no hashing, no
   list refs. --- *)

module Calendar = struct
  type 'msg t = {
    width : int;
    buckets : 'msg Envelope.t Vec.t array;
    mutable pending : int;
  }

  let create ~max_delay =
    { width = max_delay + 1; buckets = Array.init (max_delay + 1) (fun _ -> Vec.create ());
      pending = 0 }

  let schedule t ~at e =
    Vec.push t.buckets.(at mod t.width) e;
    t.pending <- t.pending + 1

  let due t ~time = t.buckets.(time mod t.width)

  let consumed t k = t.pending <- t.pending - k
end

(* --- Shared run state: everything both engine loops book-keep
   identically — node states and outputs, metrics, decision tracking,
   the optional event sink, and the instantiated network-condition
   layer. --- *)

module Make (P : Protocol.S) = struct
  type t = {
    n : int;
    config : P.config;
    corrupted : Bitset.t;
    metrics : Metrics.t;
    states : P.state option array;
    outputs : string option array;
    mutable undecided : int;
    events : Events.sink option;
    net : Net.t;
  }

  let create ?events ~net ~config ~n ~seed ~corrupted () =
    {
      n;
      config;
      corrupted;
      metrics = Metrics.create ~n ~corrupted;
      states = Array.make n None;
      outputs = Array.make n None;
      undecided = 0;
      events;
      net = Net.instantiate net ~n ~seed;
    }

  (* Round 0 / time 0: create correct nodes and hand their initial
     sends to the engine's dispatch. *)
  let init_nodes t ~seed ~dispatch =
    for id = 0 to t.n - 1 do
      if not (Bitset.mem t.corrupted id) then begin
        let ctx = Ctx.make ~n:t.n ~id ~seed in
        let state, out = P.init t.config ctx in
        t.states.(id) <- Some state;
        t.undecided <- t.undecided + 1;
        dispatch id out
      end
    done

  let record_send t (e : P.msg Envelope.t) =
    Metrics.record_send t.metrics ~src:e.src ~dst:e.dst ~bits:(P.msg_bits t.config e.msg)

  (* Every tracing site is guarded on [events] so a disabled run does
     no extra work (and no allocation) in the hot loops. *)
  let trace_round_start t ~round =
    match t.events with
    | None -> ()
    | Some k -> Events.emit k (Events.Round_start { round })

  let trace_msg t ~round ~byzantine ~delay (e : P.msg Envelope.t) =
    match t.events with
    | None -> ()
    | Some k ->
      let kind = Events.kind_of_pp P.pp_msg e.Envelope.msg in
      let bits = P.msg_bits t.config e.Envelope.msg in
      if byzantine then
        Events.emit k (Events.Inject { round; src = e.src; dst = e.dst; kind; bits; delay })
      else Events.emit k (Events.Send { round; src = e.src; dst = e.dst; kind; bits; delay })

  let trace_drop t ~round (e : P.msg Envelope.t) reason =
    match t.events with
    | None -> ()
    | Some k ->
      Events.emit k
        (Events.Drop
           {
             round;
             src = e.src;
             dst = e.dst;
             kind = Events.kind_of_pp P.pp_msg e.msg;
             reason;
           })

  let check_decision t ~round id =
    if t.outputs.(id) = None then begin
      match t.states.(id) with
      | None -> ()
      | Some st ->
        (match P.output st with
        | Some v ->
          t.outputs.(id) <- Some v;
          Metrics.record_decision t.metrics ~id ~round;
          t.undecided <- t.undecided - 1;
          (match t.events with
          | None -> ()
          | Some k -> Events.emit k (Events.Decide { round; id; value = v }))
        | None -> ())
    end

  let check_decisions t ~round =
    for id = 0 to t.n - 1 do
      check_decision t ~round id
    done

  (* The shared delivery step: consult the network-condition layer
     (free under [Net.Reliable]), drop messages to Byzantine
     destinations (the adversary already saw them via its observation
     hook), hand the rest to the protocol and the resulting sends to
     the engine's [respond]. *)
  let deliver t ~round (e : P.msg Envelope.t) ~respond =
    match Net.verdict t.net ~round ~src:e.Envelope.src ~dst:e.dst with
    | Net.Lose reason -> trace_drop t ~round e reason
    | Net.Pass -> (
      match t.states.(e.dst) with
      | None -> trace_drop t ~round e "byzantine-dst"
      | Some st ->
        (match t.events with
        | None -> ()
        | Some k ->
          Events.emit k
            (Events.Deliver
               {
                 round;
                 src = e.src;
                 dst = e.dst;
                 kind = Events.kind_of_pp P.pp_msg e.msg;
                 bits = P.msg_bits t.config e.msg;
               }));
        respond e.dst (P.on_receive t.config st ~round ~src:e.src e.msg))
end
