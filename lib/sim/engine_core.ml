open Fba_stdx

(* --- Adversary records (shared between the two engines) ---

   Observation is lazy: [observed]/[observe] hand the adversary a
   thunk that materializes envelopes from the engine's flat lanes only
   when called, so strategies that never look (or look once) cost
   nothing per round. The thunk's result is valid only for the
   duration of the call — the engine reuses the underlying buffers. *)

type 'msg sync_adversary = {
  corrupted : Bitset.t;
  act : round:int -> observed:(unit -> 'msg Envelope.t list) -> 'msg Envelope.t list;
}

type 'msg async_adversary = {
  corrupted : Bitset.t;
  max_delay : int;
  delay : time:int -> src:int -> dst:int -> 'msg -> int;
  observe : time:int -> src:int -> dst:int -> 'msg -> unit;
  inject : time:int -> ('msg Envelope.t * int) list;
}

let null_sync_adversary ~corrupted = { corrupted; act = (fun ~round:_ ~observed:_ -> []) }

let null_async_adversary ~corrupted =
  {
    corrupted;
    max_delay = 1;
    delay = (fun ~time:_ ~src:_ ~dst:_ _ -> 1);
    observe = (fun ~time:_ ~src:_ ~dst:_ _ -> ());
    inject = (fun ~time:_ -> []);
  }

let validate_adversary_envelope ~who ~n ~(corrupted : Bitset.t) (e : _ Envelope.t) =
  if e.Envelope.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
    invalid_arg (who ^ ": adversary envelope out of range");
  if not (Bitset.mem corrupted e.src) then
    invalid_arg (who ^ ": adversary may only send from corrupted identities")

(* --- Sync mailboxes: parallel (src, dst, msg) lanes reused across
   rounds, so the steady-state engine allocates nothing per message.
   [correct_out] collects the current round's correct sends,
   [in_flight] holds what the commit step staged for next round,
   [deliveries] is the double buffer [in_flight] is swapped into at
   delivery time, and [prev_correct] keeps the previous round's
   correct sends alive for non-rushing adversaries. --- *)

module Mailbox = struct
  type 'msg t = {
    correct_out : 'msg Batch.t;
    in_flight : 'msg Batch.t;
    deliveries : 'msg Batch.t;
    prev_correct : 'msg Batch.t;
  }

  let create () =
    {
      correct_out = Batch.create ();
      in_flight = Batch.create ();
      deliveries = Batch.create ();
      prev_correct = Batch.create ();
    }

  (* Swap the staged mailbox into the delivery buffer so sends can
     refill [correct_out]/[in_flight] while the caller iterates. *)
  let stage_deliveries t =
    Batch.swap t.deliveries t.in_flight;
    Batch.clear t.in_flight
end

(* --- Async calendar queue: every delay is clamped to [1, width - 1],
   so a message scheduled at time t lands strictly within the next
   [width - 1] steps and a ring of [width] reusable lane buckets
   indexed by [at mod width] can never alias two distinct due times
   that are both live. Scheduling is a push into flat buffers — no
   hashing, no list refs, no envelope. --- *)

module Calendar = struct
  type 'msg t = {
    width : int;
    buckets : 'msg Batch.t array;
    mutable pending : int;
  }

  let create ~max_delay =
    { width = max_delay + 1; buckets = Array.init (max_delay + 1) (fun _ -> Batch.create ());
      pending = 0 }

  let schedule t ~at ~src ~dst msg =
    Batch.push t.buckets.(at mod t.width) ~src ~dst msg;
    t.pending <- t.pending + 1

  let due t ~time = t.buckets.(time mod t.width)

  let consumed t k = t.pending <- t.pending - k
end

(* --- Shared run state: everything both engine loops book-keep
   identically — node states and outputs, metrics, decision tracking,
   the optional event sink, and the instantiated network-condition
   layer. --- *)

module Make (P : Protocol.S) = struct
  type t = {
    n : int;
    config : P.config;
    corrupted : Bitset.t;
    metrics : Metrics.t;
    states : P.state option array;
    outputs : string option array;
    mutable undecided : int;
    events : Events.sink option;
    prof : Prof.t option;
    net : Net.t;
  }

  let create ?events ?prof ~net ~config ~n ~seed ~corrupted () =
    P.compile config;
    {
      n;
      config;
      corrupted;
      metrics = Metrics.create ~n ~corrupted;
      states = Array.make n None;
      outputs = Array.make n None;
      undecided = 0;
      events;
      prof;
      net = Net.instantiate net ~n ~seed;
    }

  (* Profiling sites mirror the [events] guards: a run without a
     profiler attached does no extra work in the hot loops. *)
  let prof_start t =
    match t.prof with None -> () | Some p -> Prof.start p ~tags:(P.msg_tags t.config)

  let prof_round t ~round =
    match t.prof with None -> () | Some p -> Prof.round p round

  let prof_stop t = match t.prof with None -> () | Some p -> Prof.stop p

  (* Round 0 / time 0: create correct nodes and hand their initial
     sends to the engine's dispatch. *)
  let init_nodes t ~seed ~dispatch =
    for id = 0 to t.n - 1 do
      if not (Bitset.mem t.corrupted id) then begin
        let ctx = Ctx.make ~n:t.n ~id ~seed in
        let state, out = P.init t.config ctx in
        t.states.(id) <- Some state;
        t.undecided <- t.undecided + 1;
        dispatch id out
      end
    done

  let record_send t ~src ~dst msg =
    Metrics.record_send t.metrics ~src ~dst ~bits:(P.msg_bits t.config msg)

  (* Every tracing site is guarded on [events] so a disabled run does
     no extra work (and no allocation) in the hot loops. *)
  let trace_round_start t ~round =
    match t.events with
    | None -> ()
    | Some k -> Events.emit k (Events.Round_start { round })

  let trace_msg t ~round ~byzantine ~delay ~src ~dst msg =
    match t.events with
    | None -> ()
    | Some k ->
      let kind = Events.kind_of_pp (P.pp_msg t.config) msg in
      let bits = P.msg_bits t.config msg in
      if byzantine then Events.emit k (Events.Inject { round; src; dst; kind; bits; delay })
      else Events.emit k (Events.Send { round; src; dst; kind; bits; delay })

  let trace_drop t ~round ~src ~dst msg reason =
    match t.events with
    | None -> ()
    | Some k ->
      Events.emit k
        (Events.Drop { round; src; dst; kind = Events.kind_of_pp (P.pp_msg t.config) msg; reason })

  let check_decision t ~round id =
    if t.outputs.(id) = None then begin
      match t.states.(id) with
      | None -> ()
      | Some st ->
        (match P.output st with
        | Some v ->
          t.outputs.(id) <- Some v;
          Metrics.record_decision t.metrics ~id ~round;
          t.undecided <- t.undecided - 1;
          (match t.events with
          | None -> ()
          | Some k -> Events.emit k (Events.Decide { round; id; value = v }))
        | None -> ())
    end

  let check_decisions t ~round =
    for id = 0 to t.n - 1 do
      check_decision t ~round id
    done

  (* The per-delivery protocol entry point: the allocation-free
     [receive_into] when the protocol provides it, otherwise the
     list-returning [on_receive] drained through [emit] (same order). *)
  let handler_of t ~emit =
    match P.receive_into with
    | Some f -> fun st ~round ~src msg -> f t.config st ~round ~src msg ~emit
    | None ->
      fun st ~round ~src msg ->
        List.iter (fun (d, m) -> emit d m) (P.on_receive t.config st ~round ~src msg)

  (* The shared delivery step: consult the network-condition layer
     (free under [Net.Reliable]), drop messages to Byzantine
     destinations (the adversary already saw them via its observation
     hook), hand the rest to the protocol via [handle]. *)
  let deliver t ~round ~src ~dst msg ~handle =
    match Net.verdict t.net ~round ~src ~dst with
    | Net.Lose reason -> trace_drop t ~round ~src ~dst msg reason
    | Net.Pass -> (
      match t.states.(dst) with
      | None -> trace_drop t ~round ~src ~dst msg "byzantine-dst"
      | Some st ->
        (match t.events with
        | None -> ()
        | Some k ->
          Events.emit k
            (Events.Deliver
               {
                 round;
                 src;
                 dst;
                 kind = Events.kind_of_pp (P.pp_msg t.config) msg;
                 bits = P.msg_bits t.config msg;
               }));
        (match t.prof with
        | None -> handle dst st ~src msg
        | Some p ->
          Prof.enter p;
          handle dst st ~src msg;
          Prof.leave p ~tag:(P.msg_tag t.config msg)))
end
