open Fba_stdx

type event =
  | Round_start of { round : int }
  | Phase of { round : int; name : string }
  | Send of { round : int; src : int; dst : int; kind : string; bits : int; delay : int }
  | Inject of { round : int; src : int; dst : int; kind : string; bits : int; delay : int }
  | Deliver of { round : int; src : int; dst : int; kind : string; bits : int }
  | Drop of { round : int; src : int; dst : int; kind : string; reason : string }
  | Decide of { round : int; id : int; value : string }

(* First token of the pp rendering, e.g. "Fw1(x=3, ...)" -> "Fw1".
   Same convention as Trace, so kind columns line up across tools. *)
let kind_of_pp pp msg =
  let s = Format.asprintf "%a" pp msg in
  let stop = ref (String.length s) in
  String.iteri (fun i c -> if !stop = String.length s && (c = '(' || c = ' ') then stop := i) s;
  String.sub s 0 !stop

type sink = {
  mutable consumers : (event -> unit) list;  (* reversed attach order *)
  mutable phases : (string * int) list;  (* announced phases, reversed *)
}

let create () = { consumers = []; phases = [] }

let attach t f = t.consumers <- f :: t.consumers

let emit t ev = List.iter (fun f -> f ev) (List.rev t.consumers)

let phase t ~round name =
  if not (List.mem_assoc name t.phases) then begin
    t.phases <- (name, round) :: t.phases;
    emit t (Phase { round; name })
  end

let phases_seen t = List.rev t.phases

module Ring = struct
  type t = {
    slots : event array;
    mutable next : int;  (* write cursor *)
    mutable total : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Events.Ring.create: capacity < 1";
    { slots = Array.make capacity (Round_start { round = 0 }); next = 0; total = 0 }

  let capacity t = Array.length t.slots

  let consumer t ev =
    t.slots.(t.next) <- ev;
    t.next <- (t.next + 1) mod Array.length t.slots;
    t.total <- t.total + 1

  let length t = min t.total (Array.length t.slots)

  let total t = t.total

  let to_list t =
    let cap = Array.length t.slots in
    let len = length t in
    let first = if t.total <= cap then 0 else t.next in
    List.init len (fun i -> t.slots.((first + i) mod cap))
end

module Memory = struct
  type t = event Vec.t

  let create () = Vec.create ()
  let consumer t ev = Vec.push t ev
  let length = Vec.length
  let iter = Vec.iter
  let to_list = Vec.to_list
end

module Jsonl = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_string = function
    | Round_start { round } -> Printf.sprintf {|{"ev":"round_start","round":%d}|} round
    | Phase { round; name } ->
      Printf.sprintf {|{"ev":"phase","round":%d,"name":"%s"}|} round (escape name)
    | Send { round; src; dst; kind; bits; delay } ->
      Printf.sprintf {|{"ev":"send","round":%d,"src":%d,"dst":%d,"kind":"%s","bits":%d,"delay":%d}|}
        round src dst (escape kind) bits delay
    | Inject { round; src; dst; kind; bits; delay } ->
      Printf.sprintf
        {|{"ev":"inject","round":%d,"src":%d,"dst":%d,"kind":"%s","bits":%d,"delay":%d}|} round
        src dst (escape kind) bits delay
    | Deliver { round; src; dst; kind; bits } ->
      Printf.sprintf {|{"ev":"deliver","round":%d,"src":%d,"dst":%d,"kind":"%s","bits":%d}|}
        round src dst (escape kind) bits
    | Drop { round; src; dst; kind; reason } ->
      Printf.sprintf {|{"ev":"drop","round":%d,"src":%d,"dst":%d,"kind":"%s","reason":"%s"}|}
        round src dst (escape kind) (escape reason)
    | Decide { round; id; value } ->
      Printf.sprintf {|{"ev":"decide","round":%d,"id":%d,"value":"%s"}|} round id (escape value)

  let consumer buf ev =
    Buffer.add_string buf (to_string ev);
    Buffer.add_char buf '\n'

  let writer oc ev =
    output_string oc (to_string ev);
    output_char oc '\n'
end

module Phase_acc = struct
  type row = {
    phase : string;
    first_round : int;
    last_round : int;
    msgs_correct : int;
    msgs_byz : int;
    bits_correct : int;
    bits_byz : int;
    max_sent_bits : int;
    max_recv_bits : int;
    max_fanout : int;
  }

  (* Mutable per-phase cell; per-node arrays sized once at creation
     (phases are few, so the n-sized arrays are cheap). *)
  type cell = {
    c_phase : string;
    mutable c_first : int;
    mutable c_last : int;
    mutable c_msgs_correct : int;
    mutable c_msgs_byz : int;
    mutable c_bits_correct : int;
    mutable c_bits_byz : int;
    sent_bits : int array;  (* per correct-sender node *)
    recv_bits : int array;
    sent_msgs : int array;
  }

  type t = {
    n : int;
    classify : kind:string -> string;
    cells : (string, cell) Hashtbl.t;
    mutable order : cell list;  (* reversed first-attribution order *)
  }

  let create ?(classify = fun ~kind -> kind) ~n () =
    { n; classify; cells = Hashtbl.create 8; order = [] }

  let cell t ~round kind =
    let name = t.classify ~kind in
    match Hashtbl.find_opt t.cells name with
    | Some c -> c
    | None ->
      let c =
        {
          c_phase = name;
          c_first = round;
          c_last = round;
          c_msgs_correct = 0;
          c_msgs_byz = 0;
          c_bits_correct = 0;
          c_bits_byz = 0;
          sent_bits = Array.make t.n 0;
          recv_bits = Array.make t.n 0;
          sent_msgs = Array.make t.n 0;
        }
      in
      Hashtbl.add t.cells name c;
      t.order <- c :: t.order;
      c

  let touch c round =
    if round < c.c_first then c.c_first <- round;
    if round > c.c_last then c.c_last <- round

  let consumer t = function
    | Send { round; src; kind; bits; _ } ->
      let c = cell t ~round kind in
      touch c round;
      c.c_msgs_correct <- c.c_msgs_correct + 1;
      c.c_bits_correct <- c.c_bits_correct + bits;
      c.sent_bits.(src) <- c.sent_bits.(src) + bits;
      c.sent_msgs.(src) <- c.sent_msgs.(src) + 1
    | Inject { round; kind; bits; _ } ->
      let c = cell t ~round kind in
      touch c round;
      c.c_msgs_byz <- c.c_msgs_byz + 1;
      c.c_bits_byz <- c.c_bits_byz + bits
    | Deliver { round; dst; kind; bits; _ } ->
      let c = cell t ~round kind in
      touch c round;
      c.recv_bits.(dst) <- c.recv_bits.(dst) + bits
    | Round_start _ | Phase _ | Drop _ | Decide _ -> ()

  let row_of c =
    let amax a = Array.fold_left max 0 a in
    {
      phase = c.c_phase;
      first_round = c.c_first;
      last_round = c.c_last;
      msgs_correct = c.c_msgs_correct;
      msgs_byz = c.c_msgs_byz;
      bits_correct = c.c_bits_correct;
      bits_byz = c.c_bits_byz;
      max_sent_bits = amax c.sent_bits;
      max_recv_bits = amax c.recv_bits;
      max_fanout = amax c.sent_msgs;
    }

  let rows t = List.rev_map row_of t.order

  let total_bits t =
    List.fold_left (fun acc r -> acc + r.bits_correct + r.bits_byz) 0 (rows t)

  let total_messages t =
    List.fold_left (fun acc r -> acc + r.msgs_correct + r.msgs_byz) 0 (rows t)

  let render t =
    let tbl =
      Table.create
        ~columns:
          [
            ("phase", Table.Left); ("rounds", Table.Right); ("msgs", Table.Right);
            ("byz msgs", Table.Right); ("bits/node", Table.Right); ("max fanout", Table.Right);
            ("max recv bits", Table.Right);
          ]
    in
    let span first last = if first = last then string_of_int first
      else Printf.sprintf "%d-%d" first last
    in
    let rs = rows t in
    List.iter
      (fun r ->
        Table.add_row tbl
          [
            r.phase; span r.first_round r.last_round; Table.cell_int r.msgs_correct;
            Table.cell_int r.msgs_byz;
            Table.cell_float ~decimals:1
              (float_of_int r.bits_correct /. float_of_int (max 1 t.n));
            Table.cell_int r.max_fanout; Table.cell_int r.max_recv_bits;
          ])
      rs;
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 rs in
    let fmax f = List.fold_left (fun acc r -> max acc (f r)) 0 rs in
    let first = List.fold_left (fun acc r -> min acc r.first_round) max_int rs in
    Table.add_row tbl
      [
        "total";
        (if rs = [] then "-" else span first (fmax (fun r -> r.last_round)));
        Table.cell_int (sum (fun r -> r.msgs_correct));
        Table.cell_int (sum (fun r -> r.msgs_byz));
        Table.cell_float ~decimals:1
          (float_of_int (sum (fun r -> r.bits_correct)) /. float_of_int (max 1 t.n));
        Table.cell_int (fmax (fun r -> r.max_fanout));
        Table.cell_int (fmax (fun r -> r.max_recv_bits));
      ];
    Table.to_markdown tbl
end
