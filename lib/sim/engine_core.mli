(** Shared core of the two engines.

    {!Sync_engine} and {!Async_engine} used to be near-duplicate loops;
    everything they book-keep identically lives here instead — the
    adversary records and their validation, the reusable mailbox /
    calendar-queue storage ({!Batch} lanes, so the steady-state engines
    allocate nothing per message), and a per-run state ({!Make.t})
    carrying node states, metrics, decision tracking, the optional
    {!Events} sink and the instantiated {!Net} layer. The engines keep
    only what genuinely differs: the synchronous round structure vs the
    adversary-scheduled calendar. *)

open Fba_stdx

(** {1 Adversaries}

    The engines re-export these as [Sync_engine.adversary] /
    [Async_engine.adversary]; use those aliases in protocol code.
    Observation is lazy: the engine hands over thunks that materialize
    envelopes from its flat lanes only when actually called, so
    strategies that never look cost nothing per round. A thunk's
    result is valid only for the duration of the call. *)

type 'msg sync_adversary = {
  corrupted : Bitset.t;
  act : round:int -> observed:(unit -> 'msg Envelope.t list) -> 'msg Envelope.t list;
      (** [observed ()] is the batch of correct-node messages the
          adversary is entitled to have seen when choosing its
          round-[round] messages (current round when rushing, previous
          otherwise). Returned envelopes must have a corrupted [src]. *)
}

type 'msg async_adversary = {
  corrupted : Bitset.t;
  max_delay : int;  (** upper bound the engine enforces on [delay] *)
  delay : time:int -> src:int -> dst:int -> 'msg -> int;
      (** delivery delay for a correct node's message, clamped to
          [\[1, max_delay\]] *)
  observe : time:int -> src:int -> dst:int -> 'msg -> unit;
      (** full-information hook: called for every message a correct
          node sends, at the moment it is sent, in send order *)
  inject : time:int -> ('msg Envelope.t * int) list;
      (** messages from corrupted identities, each with its own delay *)
}

val null_sync_adversary : corrupted:Bitset.t -> 'msg sync_adversary

val null_async_adversary : corrupted:Bitset.t -> 'msg async_adversary

val validate_adversary_envelope :
  who:string -> n:int -> corrupted:Bitset.t -> 'msg Envelope.t -> unit
(** Raises [Invalid_argument] (prefixed with [who]) if the envelope is
    out of range or its source is not corrupted. *)

(** {1 Reusable delivery storage}

    Both structures come in two interchangeable shapes behind one
    interface: the historical double-buffered {!Batch} lanes, and the
    streamed plane (default) built from {!Batch.Arena} segments that
    are recycled as each is drained, so peak footprint tracks the
    largest single round instead of retaining every burst for the whole
    run. [FBA_NO_STREAM=1] (or [~stream:false]) selects the buffered
    shape; delivery order is byte-identical either way. *)

val stream_default : unit -> bool
(** [true] unless [FBA_NO_STREAM] is set — the process-wide default for
    the [?stream] parameters below and {!Fba_harness.Runner.config}. *)

val seg_cap_for : n:int -> int
(** Default arena segment granularity for an [n]-node run. *)

(** Synchronous mailboxes. The round schedule: correct sends are pushed
    via [push_correct]; the commit step readies staging
    ([begin_commit]), pushes the round's byzantine messages
    ([push_staged]) and then moves the correct sends in after them
    ([commit]); the next round's delivery step is [stage] + [drain]. *)
module Mailbox : sig
  type 'msg t

  val create : ?stream:bool -> ?seg_cap:int -> n:int -> unit -> 'msg t
  (** [stream] defaults to {!stream_default}; [seg_cap] (streamed shape
      only) to {!seg_cap_for}[ ~n]. *)

  val streamed : 'msg t -> bool

  val push_correct : 'msg t -> src:int -> dst:int -> 'msg -> unit
  (** Record one correct send of the current round. *)

  val correct_length : 'msg t -> int

  val iter_correct : (src:int -> dst:int -> 'msg -> unit) -> 'msg t -> unit
  (** Visit the current round's correct sends in send order. *)

  val correct_envelopes : 'msg t -> 'msg Envelope.t list
  (** Materialize the current round's correct sends (the rushing
      adversary's observation window). *)

  val prev_envelopes : 'msg t -> 'msg Envelope.t list
  (** Materialize the previous round's correct sends (the non-rushing
      observation window; maintained only when [commit ~keep_prev]). *)

  val begin_commit : 'msg t -> unit
  (** Ready the staging area for the round's commit. *)

  val push_staged : 'msg t -> src:int -> dst:int -> 'msg -> unit
  (** Stage one byzantine message for delivery next round (before
      [commit], so byzantine messages deliver first). *)

  val commit : 'msg t -> keep_prev:bool -> unit
  (** Move the round's correct sends into the staged schedule after the
      byzantine ones — a copy on the buffered plane, an O(1) segment
      link on the streamed one — and snapshot them into the previous-
      round window when [keep_prev]. *)

  val stage : 'msg t -> unit
  (** Flip the staged schedule into the delivery buffer (buffered plane
      only; the streamed chain {e is} the delivery buffer). *)

  val staged_any : 'msg t -> bool
  (** After [stage]: is anything due this round? *)

  val drain : 'msg t -> f:(src:int -> dst:int -> 'msg -> unit) -> unit
  (** Deliver everything staged, in order (byzantine first, then correct
      sends in send order). On the streamed plane each segment is
      recycled the moment its last message is handed to [f]. *)

  val pending_any : 'msg t -> bool
  (** Is anything staged for the next round (the quiescence check)? *)

  val reset : 'msg t -> unit
  (** Epoch reset for instance streams: empty every lane in place —
      streamed chains recycle their segments into the arena free list,
      buffered lanes keep their capacity. Peak accounting survives (the
      arena high-water belongs to the stream, not one instance). *)

  val peak_words : 'msg t -> int
  (** Peak delivery-plane footprint of the run so far, in words. *)
end

(** Asynchronous calendar queue: a ring of [max_delay + 1] reusable
    buckets indexed by [due mod width]. Delays clamped to
    [\[1, max_delay\]] can never alias two live due times. On the
    streamed plane the buckets are chains over one shared arena, so
    draining the due bucket recycles segments that future buckets then
    reuse. *)
module Calendar : sig
  type 'msg t

  val create : ?stream:bool -> ?seg_cap:int -> n:int -> max_delay:int -> unit -> 'msg t

  val schedule : 'msg t -> at:int -> src:int -> dst:int -> 'msg -> unit

  val due_count : 'msg t -> time:int -> int
  (** Messages due at [time]. *)

  val drain_due : 'msg t -> time:int -> f:(src:int -> dst:int -> 'msg -> unit) -> unit
  (** Deliver (and clear) the bucket due at [time], in schedule order.
      [f] may schedule — delays are >= 1, so never into the bucket being
      drained. *)

  val pending : 'msg t -> int
  (** Scheduled but not yet consumed. *)

  val consumed : 'msg t -> int -> unit
  (** Deduct [k] drained messages from [pending]. *)

  val reset : 'msg t -> unit
  (** Epoch reset: empty every bucket in place (streamed buckets
      recycle their segments); peak accounting survives. *)

  val peak_words : 'msg t -> int
  (** Peak calendar footprint of the run so far, in words. *)
end

(** {1 Per-run shared state} *)

module Make (P : Protocol.S) : sig
  type t = {
    n : int;
    config : P.config;
    corrupted : Bitset.t;
    metrics : Metrics.t;
    states : P.state option array;
    outputs : string option array;
    mutable undecided : int;
    events : Events.sink option;
    prof : Prof.t option;
    net : Net.t;
  }

  val create :
    ?events:Events.sink ->
    ?prof:Prof.t ->
    net:Net.spec ->
    config:P.config ->
    n:int ->
    seed:int64 ->
    corrupted:Bitset.t ->
    unit ->
    t
  (** Fresh run state; instantiates [net] from [seed]. *)

  val prof_start : t -> unit
  (** When a profiler is attached, (re)arm it with the protocol's
      {!Protocol.S.msg_tags} and take the opening snapshot; free
      otherwise. Call once, before {!init_nodes}. *)

  val prof_round : t -> round:int -> unit
  (** Close the profiler's current round and open [round]; free when no
      profiler is attached. Call beside {!trace_round_start}. *)

  val prof_stop : t -> unit
  (** Take the closing snapshot so totals become available; free when
      no profiler is attached. *)

  val init_nodes : t -> seed:int64 -> dispatch:(int -> (int * P.msg) list -> unit) -> unit
  (** Create every correct node ([P.init]) and pass its initial sends
      to [dispatch]. *)

  val record_send : t -> src:int -> dst:int -> P.msg -> unit

  val trace_round_start : t -> round:int -> unit

  val trace_msg :
    t -> round:int -> byzantine:bool -> delay:int -> src:int -> dst:int -> P.msg -> unit
  (** Emits [Send] (correct) or [Inject] (byzantine) when a sink is
      attached; free otherwise. *)

  val trace_drop : t -> round:int -> src:int -> dst:int -> P.msg -> string -> unit

  val check_decision : t -> round:int -> int -> unit

  val check_decisions : t -> round:int -> unit

  val handler_of :
    t ->
    emit:(int -> P.msg -> unit) ->
    P.state -> round:int -> src:int -> P.msg -> unit
  (** The per-delivery protocol entry point: [P.receive_into] when the
      protocol provides it, otherwise [P.on_receive] drained through
      [emit] in list order. Build it once per run (it captures [emit]). *)

  val deliver :
    t ->
    round:int ->
    src:int ->
    dst:int ->
    P.msg ->
    handle:(int -> P.state -> src:int -> P.msg -> unit) ->
    unit
  (** The shared delivery step: {!Net.verdict} first (free under
      [Reliable]), then the Byzantine-destination drop, then
      [handle dst state ~src msg] (see {!handler_of}). Network losses
      are traced through {!Events.Drop} with the {!Net} reason tags. *)
end
