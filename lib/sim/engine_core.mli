(** Shared core of the two engines.

    {!Sync_engine} and {!Async_engine} used to be near-duplicate loops;
    everything they book-keep identically lives here instead — the
    adversary records and their validation, the reusable mailbox /
    calendar-queue storage ({!Batch} lanes, so the steady-state engines
    allocate nothing per message), and a per-run state ({!Make.t})
    carrying node states, metrics, decision tracking, the optional
    {!Events} sink and the instantiated {!Net} layer. The engines keep
    only what genuinely differs: the synchronous round structure vs the
    adversary-scheduled calendar. *)

open Fba_stdx

(** {1 Adversaries}

    The engines re-export these as [Sync_engine.adversary] /
    [Async_engine.adversary]; use those aliases in protocol code.
    Observation is lazy: the engine hands over thunks that materialize
    envelopes from its flat lanes only when actually called, so
    strategies that never look cost nothing per round. A thunk's
    result is valid only for the duration of the call. *)

type 'msg sync_adversary = {
  corrupted : Bitset.t;
  act : round:int -> observed:(unit -> 'msg Envelope.t list) -> 'msg Envelope.t list;
      (** [observed ()] is the batch of correct-node messages the
          adversary is entitled to have seen when choosing its
          round-[round] messages (current round when rushing, previous
          otherwise). Returned envelopes must have a corrupted [src]. *)
}

type 'msg async_adversary = {
  corrupted : Bitset.t;
  max_delay : int;  (** upper bound the engine enforces on [delay] *)
  delay : time:int -> src:int -> dst:int -> 'msg -> int;
      (** delivery delay for a correct node's message, clamped to
          [\[1, max_delay\]] *)
  observe : time:int -> src:int -> dst:int -> 'msg -> unit;
      (** full-information hook: called for every message a correct
          node sends, at the moment it is sent, in send order *)
  inject : time:int -> ('msg Envelope.t * int) list;
      (** messages from corrupted identities, each with its own delay *)
}

val null_sync_adversary : corrupted:Bitset.t -> 'msg sync_adversary

val null_async_adversary : corrupted:Bitset.t -> 'msg async_adversary

val validate_adversary_envelope :
  who:string -> n:int -> corrupted:Bitset.t -> 'msg Envelope.t -> unit
(** Raises [Invalid_argument] (prefixed with [who]) if the envelope is
    out of range or its source is not corrupted. *)

(** {1 Reusable delivery storage} *)

(** Synchronous mailboxes: {!Batch} lanes reused across rounds
    (double-buffered), so the steady-state engine allocates nothing
    per message. *)
module Mailbox : sig
  type 'msg t = {
    correct_out : 'msg Batch.t;  (** current round's correct sends *)
    in_flight : 'msg Batch.t;  (** staged for delivery next round *)
    deliveries : 'msg Batch.t;  (** the double buffer being drained *)
    prev_correct : 'msg Batch.t;  (** previous round's correct sends, for non-rushing observation *)
  }

  val create : unit -> 'msg t

  val stage_deliveries : 'msg t -> unit
  (** Swap [in_flight] into [deliveries] (clearing [in_flight]) so
      sends can refill the former while the caller drains the latter. *)
end

(** Asynchronous calendar queue: a ring of [max_delay + 1] reusable
    lane buckets indexed by [due mod width]. Delays clamped to
    [\[1, max_delay\]] can never alias two live due times. *)
module Calendar : sig
  type 'msg t = {
    width : int;
    buckets : 'msg Batch.t array;
    mutable pending : int;  (** scheduled but not yet consumed *)
  }

  val create : max_delay:int -> 'msg t

  val schedule : 'msg t -> at:int -> src:int -> dst:int -> 'msg -> unit

  val due : 'msg t -> time:int -> 'msg Batch.t
  (** The bucket for [time]; the caller drains and clears it. *)

  val consumed : 'msg t -> int -> unit
  (** Deduct [k] drained messages from [pending]. *)
end

(** {1 Per-run shared state} *)

module Make (P : Protocol.S) : sig
  type t = {
    n : int;
    config : P.config;
    corrupted : Bitset.t;
    metrics : Metrics.t;
    states : P.state option array;
    outputs : string option array;
    mutable undecided : int;
    events : Events.sink option;
    prof : Prof.t option;
    net : Net.t;
  }

  val create :
    ?events:Events.sink ->
    ?prof:Prof.t ->
    net:Net.spec ->
    config:P.config ->
    n:int ->
    seed:int64 ->
    corrupted:Bitset.t ->
    unit ->
    t
  (** Fresh run state; instantiates [net] from [seed]. *)

  val prof_start : t -> unit
  (** When a profiler is attached, (re)arm it with the protocol's
      {!Protocol.S.msg_tags} and take the opening snapshot; free
      otherwise. Call once, before {!init_nodes}. *)

  val prof_round : t -> round:int -> unit
  (** Close the profiler's current round and open [round]; free when no
      profiler is attached. Call beside {!trace_round_start}. *)

  val prof_stop : t -> unit
  (** Take the closing snapshot so totals become available; free when
      no profiler is attached. *)

  val init_nodes : t -> seed:int64 -> dispatch:(int -> (int * P.msg) list -> unit) -> unit
  (** Create every correct node ([P.init]) and pass its initial sends
      to [dispatch]. *)

  val record_send : t -> src:int -> dst:int -> P.msg -> unit

  val trace_round_start : t -> round:int -> unit

  val trace_msg :
    t -> round:int -> byzantine:bool -> delay:int -> src:int -> dst:int -> P.msg -> unit
  (** Emits [Send] (correct) or [Inject] (byzantine) when a sink is
      attached; free otherwise. *)

  val trace_drop : t -> round:int -> src:int -> dst:int -> P.msg -> string -> unit

  val check_decision : t -> round:int -> int -> unit

  val check_decisions : t -> round:int -> unit

  val handler_of :
    t ->
    emit:(int -> P.msg -> unit) ->
    P.state -> round:int -> src:int -> P.msg -> unit
  (** The per-delivery protocol entry point: [P.receive_into] when the
      protocol provides it, otherwise [P.on_receive] drained through
      [emit] in list order. Build it once per run (it captures [emit]). *)

  val deliver :
    t ->
    round:int ->
    src:int ->
    dst:int ->
    P.msg ->
    handle:(int -> P.state -> src:int -> P.msg -> unit) ->
    unit
  (** The shared delivery step: {!Net.verdict} first (free under
      [Reliable]), then the Byzantine-destination drop, then
      [handle dst state ~src msg] (see {!handler_of}). Network losses
      are traced through {!Events.Drop} with the {!Net} reason tags. *)
end
