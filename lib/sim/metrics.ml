open Fba_stdx

type t = {
  n : int;
  corrupted : Bitset.t;
  sent_msgs : int array;
  sent_bits : int array;
  recv_msgs : int array;
  recv_bits : int array;
  decision : int option array;
  mutable rounds : int;
  mutable peak_mailbox_words : int;
}

let create ~n ~corrupted =
  {
    n;
    corrupted;
    sent_msgs = Array.make n 0;
    sent_bits = Array.make n 0;
    recv_msgs = Array.make n 0;
    recv_bits = Array.make n 0;
    decision = Array.make n None;
    rounds = 0;
    peak_mailbox_words = 0;
  }

let n t = t.n
let corrupted t = t.corrupted

let record_send t ~src ~dst ~bits =
  t.sent_msgs.(src) <- t.sent_msgs.(src) + 1;
  t.sent_bits.(src) <- t.sent_bits.(src) + bits;
  t.recv_msgs.(dst) <- t.recv_msgs.(dst) + 1;
  t.recv_bits.(dst) <- t.recv_bits.(dst) + bits

let record_decision t ~id ~round =
  match t.decision.(id) with
  | None -> t.decision.(id) <- Some round
  | Some _ -> ()

let set_rounds t r = t.rounds <- r
let rounds t = t.rounds

let set_peak_mailbox_words t w = t.peak_mailbox_words <- max t.peak_mailbox_words w
let peak_mailbox_words t = t.peak_mailbox_words

let sent_messages_of t i = t.sent_msgs.(i)
let sent_bits_of t i = t.sent_bits.(i)
let recv_messages_of t i = t.recv_msgs.(i)
let recv_bits_of t i = t.recv_bits.(i)

let sum_where t a ~only_correct =
  let acc = ref 0 in
  for i = 0 to t.n - 1 do
    if (not only_correct) || not (Bitset.mem t.corrupted i) then acc := !acc + a.(i)
  done;
  !acc

let total_bits_correct t = sum_where t t.sent_bits ~only_correct:true
let total_messages_correct t = sum_where t t.sent_msgs ~only_correct:true
let total_bits_all t = sum_where t t.sent_bits ~only_correct:false

let amortized_bits t = float_of_int (total_bits_correct t) /. float_of_int t.n

let max_where t a =
  let acc = ref 0 in
  for i = 0 to t.n - 1 do
    if not (Bitset.mem t.corrupted i) then acc := max !acc a.(i)
  done;
  !acc

let max_sent_bits_correct t = max_where t t.sent_bits
let max_recv_bits_correct t = max_where t t.recv_bits

let load_imbalance t =
  let correct = t.n - Bitset.cardinal t.corrupted in
  (* Degenerate cases return 0. rather than dividing: with no correct
     node (or no correct traffic at all) there is no mean load, and
     pretending the execution was "perfectly balanced" (1.0) would hide
     a fully corrupted or fully silent run in aggregated tables. *)
  if correct = 0 then 0.0
  else begin
    let total = ref 0 and peak = ref 0 in
    for i = 0 to t.n - 1 do
      if not (Bitset.mem t.corrupted i) then begin
        let load = t.sent_bits.(i) + t.recv_bits.(i) in
        total := !total + load;
        peak := max !peak load
      end
    done;
    if !total = 0 then 0.0
    else float_of_int !peak /. (float_of_int !total /. float_of_int correct)
  end

let decision_round t i = t.decision.(i)

let decided_count t =
  Array.fold_left (fun acc -> function Some _ -> acc + 1 | None -> acc) 0 t.decision

let max_decision_round_correct t =
  let latest = ref 0 and complete = ref true in
  for i = 0 to t.n - 1 do
    if not (Bitset.mem t.corrupted i) then begin
      match t.decision.(i) with
      | Some r -> latest := max !latest r
      | None -> complete := false
    end
  done;
  if !complete then Some !latest else None

let merge_phases first second =
  if first.n <> second.n then invalid_arg "Metrics.merge_phases: size mismatch";
  if not (Bitset.equal first.corrupted second.corrupted) then
    invalid_arg "Metrics.merge_phases: corruption sets differ";
  let add a b = Array.init first.n (fun i -> a.(i) + b.(i)) in
  {
    n = first.n;
    corrupted = first.corrupted;
    sent_msgs = add first.sent_msgs second.sent_msgs;
    sent_bits = add first.sent_bits second.sent_bits;
    recv_msgs = add first.recv_msgs second.recv_msgs;
    recv_bits = add first.recv_bits second.recv_bits;
    decision =
      Array.map (Option.map (fun r -> r + first.rounds)) second.decision;
    rounds = first.rounds + second.rounds;
    (* Phases run sequentially, so the process-wide peak is the larger
       of the two, not their sum. *)
    peak_mailbox_words = max first.peak_mailbox_words second.peak_mailbox_words;
  }

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>nodes: %d (corrupt %d)@,rounds: %d@,bits/node (correct sends): %.1f@,\
     max correct sender: %d bits@,load imbalance: %.2fx@,decided: %d/%d@]"
    t.n (Bitset.cardinal t.corrupted) t.rounds (amortized_bits t)
    (max_sent_bits_correct t) (load_imbalance t) (decided_count t) t.n
