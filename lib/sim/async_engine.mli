(** Asynchronous engine: the adversary schedules deliveries within a
    [max_delay] bound; dividing completion time by [max_delay] gives
    the normalized asynchronous round count of Lemmas 6 and 10. The
    pluggable {!Net} layer (default [Reliable]) may additionally lose
    deliveries or stretch them ([Jitter]). *)

open Fba_stdx

type 'msg adversary = 'msg Engine_core.async_adversary = {
  corrupted : Bitset.t;
  max_delay : int;  (** upper bound the engine enforces on [delay] *)
  delay : time:int -> src:int -> dst:int -> 'msg -> int;
      (** delivery delay for a correct node's message, clamped to
          [\[1, max_delay\]] *)
  observe : time:int -> src:int -> dst:int -> 'msg -> unit;
      (** full-information hook: called for every message a correct
          node sends, at the moment it is sent, in send order *)
  inject : time:int -> ('msg Envelope.t * int) list;
      (** messages from corrupted identities, each with its own delay *)
}

val null_adversary : corrupted:Bitset.t -> 'msg adversary
(** Alias of {!Engine_core.null_async_adversary}: instant delivery
    ([max_delay = 1]), no observation, no injections. *)

type 'state result = {
  metrics : Metrics.t;
  outputs : string option array;
  states : 'state option array;
  all_decided : bool;
  time_used : int;
  normalized_rounds : float;  (** time divided by [max_delay] *)
}

module Make (P : Protocol.S) : sig
  type nonrec adversary = P.msg adversary

  type nonrec result = P.state result

  val run :
    ?quiet_limit:int ->
    ?stream:bool ->
    ?events:Events.sink ->
    ?prof:Prof.t ->
    ?net:Net.spec ->
    config:P.config ->
    n:int ->
    seed:int64 ->
    adversary:adversary ->
    max_time:int ->
    unit ->
    result
  (** [quiet_limit] (default 6) counts consecutive steps with no sends
      and no deliveries. [stream] (default {!Engine_core.stream_default})
      selects the chunked streamed calendar buckets; [~stream:false] is
      the historical flat-lane ring — behaviour is identical either
      way. [net] defaults to [Net.Reliable]; losses are
      attributed through {!Events.Drop} with the {!Net} reason tags,
      and [Net.Jitter] adds an extra per-send delay on top of the
      adversary's choice (the calendar ring is widened by the jitter
      bound, and [normalized_rounds] keeps dividing by the adversary's
      [max_delay], so jitter shows up as stretched normalized time).
      [prof], when given, records per-step / per-handler-tag wall-clock
      and allocation into the attached {!Prof.t}; absent, the run does
      no profiling work at all. *)
end
