(** Asynchronous engine: the adversary schedules deliveries.

    The network is asynchronous but — by default — reliable
    (Section 2.1): every message sent to a correct node is eventually
    delivered, with the adversary choosing the order. We use the
    standard normalization: the adversary assigns each message an
    integer delay in [\[1, max_delay\]]; dividing the completion time by
    [max_delay] gives the asynchronous round count that Lemma 6 and
    Lemma 10 refer to. The adversary has full information (its
    [observe] hook sees every send, field by field, at the moment it
    happens — strictly stronger than rushing) and may inject messages
    from corrupted identities at any time step.

    The [?net] network-condition layer ({!Net}) defaults to [Reliable]
    (the paper's model, bit-identical to the goldens); off-model runs
    may lose deliveries (i.i.d. loss, crash-stop receivers, transient
    partitions) or stretch them ([Jitter] adds an extra per-send delay
    on top of the adversary's choice — the calendar ring is widened by
    the jitter bound so scheduling invariants hold). Shared bookkeeping
    (calendar queue, adversary validation, metrics, decisions, tracing)
    lives in {!Engine_core}. *)

open Fba_stdx

type 'msg adversary = 'msg Engine_core.async_adversary = {
  corrupted : Bitset.t;
  max_delay : int;
  delay : time:int -> src:int -> dst:int -> 'msg -> int;
  observe : time:int -> src:int -> dst:int -> 'msg -> unit;
  inject : time:int -> ('msg Envelope.t * int) list;
}

let null_adversary = Engine_core.null_async_adversary

type 'state result = {
  metrics : Metrics.t;
  outputs : string option array;
  states : 'state option array;
  all_decided : bool;
  time_used : int;
  normalized_rounds : float;  (** time divided by [max_delay] *)
}

module Make (P : Protocol.S) = struct
  module Core = Engine_core.Make (P)

  type nonrec adversary = P.msg adversary

  type nonrec result = P.state result

  let run ?(quiet_limit = 6) ?stream ?events ?prof ?(net = Net.Reliable)
      ~(config : P.config) ~n ~seed ~(adversary : adversary) ~max_time () =
    if adversary.max_delay < 1 then invalid_arg "Async_engine: max_delay < 1";
    if quiet_limit < 1 then invalid_arg "Async_engine: quiet_limit < 1";
    let corrupted = adversary.corrupted in
    let core = Core.create ?events ?prof ~net ~config ~n ~seed ~corrupted () in
    Core.prof_start core;
    (* The calendar ring must fit the adversary's delay bound plus the
       worst-case network jitter, so jittered deliveries still land
       strictly within the ring. *)
    let cal : P.msg Engine_core.Calendar.t =
      Engine_core.Calendar.create ?stream ~n
        ~max_delay:(adversary.max_delay + Net.max_extra_delay net)
        ()
    in
    let clamp_delay d = Intx.clamp ~lo:1 ~hi:adversary.max_delay d in
    (* Activity counters for quiescence detection. *)
    let sends_this_step = ref 0 in
    let delivered_this_step = ref 0 in
    let time = ref 0 in
    let cur_node = ref 0 in
    (* Send one message from correct node [!cur_node] at [!time]: the
       adversary observes it, chooses its delay, and the network jitter
       (0 under [Reliable]) stretches the delivery on top. One shared
       closure — the delivery loop allocates nothing per message. *)
    let emit dst msg =
      if dst < 0 || dst >= n then invalid_arg "Async_engine: destination out of range";
      incr sends_this_step;
      let t = !time and src = !cur_node in
      Core.record_send core ~src ~dst msg;
      adversary.observe ~time:t ~src ~dst msg;
      let d =
        clamp_delay (adversary.delay ~time:t ~src ~dst msg)
        + Net.extra_delay core.net ~time:t ~src ~dst
      in
      Core.trace_msg core ~round:t ~byzantine:false ~delay:d ~src ~dst msg;
      Engine_core.Calendar.schedule cal ~at:(t + d) ~src ~dst msg
    in
    let receive = Core.handler_of core ~emit in
    let handle dst st ~src msg =
      cur_node := dst;
      receive st ~round:!time ~src msg
    in
    let emit_pair (dst, msg) = emit dst msg in
    let dispatch_correct src out =
      cur_node := src;
      List.iter emit_pair out
    in
    let dispatch_byzantine ~time pairs =
      List.iter
        (fun ((e : P.msg Envelope.t), d) ->
          Engine_core.validate_adversary_envelope ~who:"Async_engine" ~n ~corrupted e;
          Core.record_send core ~src:e.src ~dst:e.dst e.msg;
          let d = clamp_delay d + Net.extra_delay core.net ~time ~src:e.src ~dst:e.dst in
          Core.trace_msg core ~round:time ~byzantine:true ~delay:d ~src:e.src ~dst:e.dst e.msg;
          Engine_core.Calendar.schedule cal ~at:(time + d) ~src:e.src ~dst:e.dst e.msg)
        pairs
    in
    (* Time 0: initialization. *)
    Core.trace_round_start core ~round:0;
    Core.init_nodes core ~seed ~dispatch:dispatch_correct;
    dispatch_byzantine ~time:0 (adversary.inject ~time:0);
    Core.check_decisions core ~round:0;
    (* Round-driven protocols (committee trees, phase king, re-polling)
       can have steps with nothing in flight while a timer is pending,
       so we only stop after [quiet_limit] consecutive steps with no
       deliveries and no sends. *)
    let quiet = ref 0 in
    let continue = ref (core.undecided > 0 && Engine_core.Calendar.pending cal > 0) in
    while !continue && !time < max_time do
      incr time;
      let t = !time in
      Core.trace_round_start core ~round:t;
      Core.prof_round core ~round:t;
      sends_this_step := 0;
      delivered_this_step := 0;
      (* Clock hook for correct nodes. *)
      for id = 0 to n - 1 do
        match core.states.(id) with
        | None -> ()
        | Some st -> dispatch_correct id (P.on_round config st ~round:t)
      done;
      (* Deliver everything scheduled for t, in schedule order. Sends
         triggered by these deliveries carry delay >= 1 < width, so they
         land in other buckets, never the one being drained — which on
         the streamed plane means they take the very segments the drain
         is recycling. *)
      let due = Engine_core.Calendar.due_count cal ~time:t in
      if due > 0 then begin
        Engine_core.Calendar.consumed cal due;
        delivered_this_step := !delivered_this_step + due;
        Engine_core.Calendar.drain_due cal ~time:t ~f:(fun ~src ~dst msg ->
            Core.deliver core ~round:t ~src ~dst msg ~handle)
      end;
      dispatch_byzantine ~time:t (adversary.inject ~time:t);
      Core.check_decisions core ~round:t;
      if !sends_this_step = 0 && !delivered_this_step = 0 then incr quiet else quiet := 0;
      continue :=
        core.undecided > 0 && (Engine_core.Calendar.pending cal > 0 || !quiet < quiet_limit)
    done;
    Core.prof_stop core;
    Metrics.set_rounds core.metrics !time;
    let peak = Engine_core.Calendar.peak_words cal in
    Metrics.set_peak_mailbox_words core.metrics peak;
    Batch.Peak.note peak;
    (match prof with None -> () | Some p -> Prof.note_peak_mailbox_words p peak);
    {
      metrics = core.metrics;
      outputs = core.outputs;
      states = core.states;
      all_decided = core.undecided = 0;
      time_used = !time;
      normalized_rounds = float_of_int !time /. float_of_int adversary.max_delay;
    }
end
