(** Asynchronous engine: the adversary schedules deliveries.

    The network is reliable but asynchronous (Section 2.1): every
    message sent to a correct node is eventually delivered, with the
    adversary choosing the order. We use the standard normalization:
    the adversary assigns each message an integer delay in
    [\[1, max_delay\]]; dividing the completion time by [max_delay]
    gives the asynchronous round count that Lemma 6 and Lemma 10 refer
    to. The adversary has full information (it observes every send at
    the moment it happens — strictly stronger than rushing) and may
    inject messages from corrupted identities at any time step. *)

open Fba_stdx

type 'msg adversary = {
  corrupted : Bitset.t;
  max_delay : int;  (** upper bound the engine enforces on [delay] *)
  delay : time:int -> 'msg Envelope.t -> int;
      (** delivery delay for a correct node's message, clamped to
          [\[1, max_delay\]] *)
  observe : time:int -> 'msg Envelope.t list -> unit;
      (** full-information hook: all messages sent at [time] *)
  inject : time:int -> ('msg Envelope.t * int) list;
      (** messages from corrupted identities, each with its own delay *)
}

let null_adversary ~corrupted =
  {
    corrupted;
    max_delay = 1;
    delay = (fun ~time:_ _ -> 1);
    observe = (fun ~time:_ _ -> ());
    inject = (fun ~time:_ -> []);
  }

type 'state result = {
  metrics : Metrics.t;
  outputs : string option array;
  states : 'state option array;
  all_decided : bool;
  time_used : int;
  normalized_rounds : float;  (** time divided by [max_delay] *)
}

module Make (P : Protocol.S) = struct
  type nonrec adversary = P.msg adversary

  type nonrec result = P.state result

  let run ?(quiet_limit = 6) ?events ~(config : P.config) ~n ~seed ~(adversary : adversary)
      ~max_time () =
    if adversary.max_delay < 1 then invalid_arg "Async_engine: max_delay < 1";
    if quiet_limit < 1 then invalid_arg "Async_engine: quiet_limit < 1";
    let corrupted = adversary.corrupted in
    let metrics = Metrics.create ~n ~corrupted in
    let states : P.state option array = Array.make n None in
    let outputs : string option array = Array.make n None in
    let undecided = ref 0 in
    (* Calendar queue: every delay is clamped to [1, max_delay], so a
       message scheduled at time t lands strictly within the next
       [max_delay] steps and a ring of [max_delay + 1] reusable Vec
       buckets indexed by [at mod width] can never alias two distinct
       due times that are both live. Scheduling is a push into a flat
       buffer — no hashing, no list refs. *)
    let width = adversary.max_delay + 1 in
    let buckets : P.msg Envelope.t Vec.t array = Array.init width (fun _ -> Vec.create ()) in
    let pending = ref 0 in
    let schedule ~at e =
      Vec.push buckets.(at mod width) e;
      incr pending
    in
    let clamp_delay d = Intx.clamp ~lo:1 ~hi:adversary.max_delay d in
    (* Tracing sites are guarded on [events]: a disabled run performs no
       extra work and no extra allocation. *)
    let trace_msg ~time ~byzantine ~delay (e : P.msg Envelope.t) =
      match events with
      | None -> ()
      | Some k ->
        let kind = Events.kind_of_pp P.pp_msg e.Envelope.msg in
        let bits = P.msg_bits config e.Envelope.msg in
        if byzantine then
          Events.emit k
            (Events.Inject { round = time; src = e.src; dst = e.dst; kind; bits; delay })
        else
          Events.emit k
            (Events.Send { round = time; src = e.src; dst = e.dst; kind; bits; delay })
    in
    (* Activity counters for quiescence detection. *)
    let sends_this_step = ref 0 in
    let delivered_this_step = ref 0 in
    (* Send messages produced by a correct node at [time]. *)
    let dispatch_correct ~time src out =
      sends_this_step := !sends_this_step + List.length out;
      let envs =
        List.map
          (fun (dst, msg) ->
            if dst < 0 || dst >= n then invalid_arg "Async_engine: destination out of range";
            Envelope.make ~src ~dst msg)
          out
      in
      if envs <> [] then adversary.observe ~time envs;
      List.iter
        (fun (e : P.msg Envelope.t) ->
          Metrics.record_send metrics ~src:e.src ~dst:e.dst ~bits:(P.msg_bits config e.msg);
          let d = clamp_delay (adversary.delay ~time e) in
          trace_msg ~time ~byzantine:false ~delay:d e;
          schedule ~at:(time + d) e)
        envs
    in
    let dispatch_byzantine ~time pairs =
      List.iter
        (fun ((e : P.msg Envelope.t), d) ->
          if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
            invalid_arg "Async_engine: adversary envelope out of range";
          if not (Bitset.mem corrupted e.src) then
            invalid_arg "Async_engine: adversary may only send from corrupted identities";
          Metrics.record_send metrics ~src:e.src ~dst:e.dst ~bits:(P.msg_bits config e.msg);
          let d = clamp_delay d in
          trace_msg ~time ~byzantine:true ~delay:d e;
          schedule ~at:(time + d) e)
        pairs
    in
    let check_decision ~time id =
      if outputs.(id) = None then begin
        match states.(id) with
        | None -> ()
        | Some st ->
          (match P.output st with
          | Some v ->
            outputs.(id) <- Some v;
            Metrics.record_decision metrics ~id ~round:time;
            decr undecided;
            (match events with
            | None -> ()
            | Some k -> Events.emit k (Events.Decide { round = time; id; value = v }))
          | None -> ())
      end
    in
    (* Time 0: initialization. *)
    (match events with
    | None -> ()
    | Some k -> Events.emit k (Events.Round_start { round = 0 }));
    for id = 0 to n - 1 do
      if not (Bitset.mem corrupted id) then begin
        let ctx = Ctx.make ~n ~id ~seed in
        let state, out = P.init config ctx in
        states.(id) <- Some state;
        incr undecided;
        dispatch_correct ~time:0 id out
      end
    done;
    dispatch_byzantine ~time:0 (adversary.inject ~time:0);
    for id = 0 to n - 1 do
      check_decision ~time:0 id
    done;
    let time = ref 0 in
    (* Round-driven protocols (committee trees, phase king, re-polling)
       can have steps with nothing in flight while a timer is pending,
       so we only stop after [quiet_limit] consecutive steps with no
       deliveries and no sends. *)
    let quiet = ref 0 in
    let continue = ref (!undecided > 0 && !pending > 0) in
    while !continue && !time < max_time do
      incr time;
      let t = !time in
      (match events with
      | None -> ()
      | Some k -> Events.emit k (Events.Round_start { round = t }));
      sends_this_step := 0;
      delivered_this_step := 0;
      (* Clock hook for correct nodes. *)
      for id = 0 to n - 1 do
        match states.(id) with
        | None -> ()
        | Some st -> dispatch_correct ~time:t id (P.on_round config st ~round:t)
      done;
      (* Deliver everything scheduled for t, in schedule order. Sends
         triggered by these deliveries carry delay >= 1 < width, so they
         land in other buckets, never the one being drained. *)
      let bucket = buckets.(t mod width) in
      let due = Vec.length bucket in
      if due > 0 then begin
        pending := !pending - due;
        delivered_this_step := !delivered_this_step + due;
        for i = 0 to due - 1 do
          let e : P.msg Envelope.t = Vec.get bucket i in
          match states.(e.Envelope.dst) with
          | None ->
            (match events with
            | None -> ()
            | Some k ->
              Events.emit k
                (Events.Drop
                   {
                     round = t;
                     src = e.src;
                     dst = e.dst;
                     kind = Events.kind_of_pp P.pp_msg e.msg;
                     reason = "byzantine-dst";
                   }))
          | Some st ->
            (match events with
            | None -> ()
            | Some k ->
              Events.emit k
                (Events.Deliver
                   {
                     round = t;
                     src = e.src;
                     dst = e.dst;
                     kind = Events.kind_of_pp P.pp_msg e.msg;
                     bits = P.msg_bits config e.msg;
                   }));
            dispatch_correct ~time:t e.dst (P.on_receive config st ~round:t ~src:e.src e.msg)
        done;
        Vec.clear bucket
      end;
      dispatch_byzantine ~time:t (adversary.inject ~time:t);
      for id = 0 to n - 1 do
        check_decision ~time:t id
      done;
      if !sends_this_step = 0 && !delivered_this_step = 0 then incr quiet else quiet := 0;
      continue := !undecided > 0 && (!pending > 0 || !quiet < quiet_limit)
    done;
    Metrics.set_rounds metrics !time;
    {
      metrics;
      outputs;
      states;
      all_decided = !undecided = 0;
      time_used = !time;
      normalized_rounds = float_of_int !time /. float_of_int adversary.max_delay;
    }
end
