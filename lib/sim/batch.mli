(** In-flight messages as three parallel (src, dst, msg) lanes.

    The engines' mailboxes and calendar buckets store messages here
    instead of in ['msg Envelope.t Vec.t]: an enqueue writes into
    reusable flat buffers (zero allocation once warm — and fully
    unboxed when ['msg] is an immediate, as on the packed message
    plane). {!to_envelopes} materializes real envelopes only when an
    adversary actually asks to observe a batch. *)

type 'msg t

val create : unit -> 'msg t

val length : 'msg t -> int

val is_empty : 'msg t -> bool

val push : 'msg t -> src:int -> dst:int -> 'msg -> unit

val src : 'msg t -> int -> int

val dst : 'msg t -> int -> int

val msg : 'msg t -> int -> 'msg

val clear : 'msg t -> unit
(** Constant-time; buffers are retained for reuse. *)

val swap : 'msg t -> 'msg t -> unit
(** Exchange the lanes of two batches (the double-buffering step). *)

val append : 'msg t -> 'msg t -> unit
(** [append dst src] pushes every element of [src] onto [dst]. *)

val iter : (src:int -> dst:int -> 'msg -> unit) -> 'msg t -> unit

val to_envelopes : 'msg t -> 'msg Envelope.t list
(** Materialize the batch, in order — the lazy adversary-observation
    path. Costs one envelope per element; hot loops never call it. *)
