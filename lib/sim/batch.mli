(** In-flight messages as three parallel (src, dst, msg) lanes.

    The engines' mailboxes and calendar buckets store messages here
    instead of in ['msg Envelope.t Vec.t]: an enqueue writes into
    reusable flat buffers (zero allocation once warm — and fully
    unboxed when ['msg] is an immediate, as on the packed message
    plane). {!to_envelopes} materializes real envelopes only when an
    adversary actually asks to observe a batch. *)

type 'msg t

val create : unit -> 'msg t

val length : 'msg t -> int

val is_empty : 'msg t -> bool

val push : 'msg t -> src:int -> dst:int -> 'msg -> unit

val src : 'msg t -> int -> int

val dst : 'msg t -> int -> int

val msg : 'msg t -> int -> 'msg

val clear : 'msg t -> unit
(** Constant-time; buffers are retained for reuse. *)

val swap : 'msg t -> 'msg t -> unit
(** Exchange the lanes of two batches (the double-buffering step). *)

val append : 'msg t -> 'msg t -> unit
(** [append dst src] pushes every element of [src] onto [dst]. *)

val iter : (src:int -> dst:int -> 'msg -> unit) -> 'msg t -> unit

val to_envelopes : 'msg t -> 'msg Envelope.t list
(** Materialize the batch, in order — the lazy adversary-observation
    path. Costs one envelope per element; hot loops never call it. *)

val capacity_words : 'msg t -> int
(** Slots allocated across the three lanes (3 × lane capacity) — the
    retained footprint, for peak-memory accounting of the buffered
    (non-streamed) mailbox path. *)

(** {1 Streamed delivery plane}

    Fixed-size segments recycled through a per-arena free list. The
    monolithic lanes above retain every burst's footprint for the whole
    run, several times over (double buffering, doubling slack); chains
    built from a shared arena give each drained segment back the moment
    its last message is handled, so the sends a delivery triggers refill
    the storage just vacated and peak footprint tracks the largest
    single round. *)

(** The segment store: all chains of one engine run share one arena, so
    recycling moves storage between roles (delivery buffer → next
    round's sends) without copying or growth. *)
module Arena : sig
  type 'msg t

  val default_seg_cap : int

  val create : ?seg_cap:int -> unit -> 'msg t
  (** [seg_cap] (default {!default_seg_cap}) is the messages-per-segment
      granularity: smaller wastes less on small runs, larger amortizes
      chain bookkeeping on burst rounds. *)

  val seg_cap : 'msg t -> int

  val free_segments : 'msg t -> int
  (** Segments currently parked on the free list. *)

  val peak_words : 'msg t -> int
  (** 2 × seg_cap × segments-ever-created (segments fuse the (src,
      dst) pair into one word beside the message): the arena never
      frees, so this is both the current footprint and the peak
      concurrent demand across every chain sharing the arena. *)
end

(** A push-ordered message sequence built from arena segments. Chains
    are single-owner: pushing into a chain that is currently being
    {!Chain.drain}ed is forbidden (the engines never do — deliveries
    refill {e other} chains of the same arena). *)
module Chain : sig
  type 'msg t

  val create : 'msg Arena.t -> 'msg t
  (** An empty chain holding no segments. *)

  val length : 'msg t -> int

  val is_empty : 'msg t -> bool

  val push : 'msg t -> src:int -> dst:int -> 'msg -> unit
  (** Append; takes a segment from the arena's free list (or creates
      one) only when the tail segment is full. [src] and [dst] must be
      in [\[0, 2^31)] (they share one fused word — node ids are bounded
      far below this by the packed plane's n = 2^18 ceiling); raises
      [Invalid_argument] otherwise. *)

  val clear : 'msg t -> unit
  (** Recycle every segment back to the arena. *)

  val transfer : 'msg t -> into:'msg t -> unit
  (** Detach [t]'s whole segment chain onto [into]'s tail: O(1) pointer
      moves, no copying. [t] is empty afterwards. No-op when [t] and
      [into] are the same chain or [t] is empty. *)

  val iter : (src:int -> dst:int -> 'msg -> unit) -> 'msg t -> unit
  (** Non-destructive visit in push order. *)

  val drain : 'msg t -> f:(src:int -> dst:int -> 'msg -> unit) -> unit
  (** Visit every message in push order, recycling each segment the
      moment its last message is handed to [f] — deliver-as-you-go.
      The chain is empty afterwards. [f] may push into other chains of
      the same arena (that is the point); pushing into the drained
      chain itself is forbidden. *)

  val to_envelopes : 'msg t -> 'msg Envelope.t list
  (** Materialize, in push order — the adversary-observation path. *)
end

(** Process-wide peak-mailbox-words gauge: engines {!Peak.note} each
    run's peak at run end; the bench harness brackets a target with
    {!Peak.reset}/{!Peak.get}, and the sweep heartbeat reports the
    running peak. Atomic — sweep cells finish on arbitrary domains. *)
module Peak : sig
  val reset : unit -> unit

  val note : int -> unit
  (** Raise the gauge to [max current w]. *)

  val get : unit -> int
end
