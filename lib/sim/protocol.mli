(** Signature a protocol must implement to run on the engines.

    A protocol describes only *correct* nodes: Byzantine behaviour is
    produced by an adversary strategy at the engine level, which may
    inject arbitrary messages on behalf of corrupted identities. State
    is expected to be mutable internally; handlers return the messages
    to send. *)

module type S = sig
  type config
  (** Static parameters shared by all nodes (system size, quorum sizes,
      sampler seeds, ...). *)

  type msg
  (** Wire messages. *)

  type state
  (** Per-node mutable state. *)

  val name : string

  val compile : config -> unit
  (** One-time lowering hook, called by the engines once per run before
      the first [init]. Protocols with a static-structure compiler
      (e.g. {!Fba_core.Compiled}) build their dispatch tables here;
      must be idempotent (engines sharing a config may call it more
      than once) and must not change observable behaviour. Protocols
      without a compile step implement it as [fun _ -> ()]. *)

  val init : config -> Ctx.t -> state * (int * msg) list
  (** Create the node and return its round-0 sends as
      [(destination, message)] pairs. *)

  val on_round : config -> state -> round:int -> (int * msg) list
  (** Clock hook, called at the start of every round (synchronous) or
      time step (asynchronous), from round 1 on. *)

  val on_receive : config -> state -> round:int -> src:int -> msg -> (int * msg) list
  (** Deliver one message. [src] is authenticated by the network. *)

  val receive_into :
    (config -> state -> round:int -> src:int -> msg -> emit:(int -> msg -> unit) -> unit)
    option
  (** Optional allocation-free twin of [on_receive]: handle the message
      and hand each send to [emit dst msg] instead of returning a list.
      When present the engines deliver through it (sends must be emitted
      in exactly the order [on_receive] would list them); [None] makes
      the engines fall back to [on_receive]. *)

  val output : state -> string option
  (** The node's decision, once reached. Must be monotone: once
      [Some v], it never changes. *)

  val msg_bits : config -> msg -> int
  (** Size of a message on the wire, in bits, headers included. Used
      for the paper's communication-complexity accounting. *)

  val msg_tags : config -> string array
  (** Handler-tag names for profiler attribution ({!Prof}), indexed by
      {!msg_tag}. One entry per message kind; names should match the
      first token of [pp_msg] so profiler tables line up with trace
      kinds. Called once per profiled run (never on hot paths). *)

  val msg_tag : config -> msg -> int
  (** Dense tag of a message: [0 <= msg_tag c m < Array.length
      (msg_tags c)]. For packed message planes this is the wire tag
      (AER: the {!Fba_core.Compiled} dispatch jump-table index); for
      variant planes, the constructor index. Must be allocation-free —
      the engines call it per profiled delivery. *)

  val pp_msg : config -> Format.formatter -> msg -> unit
  (** Render a message for traces and event kinds. Takes the config so
      packed (interned-id) message planes can resolve payloads back to
      the real strings. *)
end
