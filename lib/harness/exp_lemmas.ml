open Fba_stdx
open Fba_core
module Attacks = Fba_adversary.Aer_attacks

let sizes full = if full then [ 128; 256; 512; 1024 ] else [ 64; 128; 256 ]
let seed_count full = if full then 3 else 3

(* Lemmas 3, 4, 5, 7: push-phase bounds and safety under the strongest
   flooding workload — shared junk, push flooding and bogus answers. *)
let push_and_safety ~full ~out =
  let setup = { Runner.default_setup with Runner.junk = Scenario.Junk_shared 2 } in
  let tbl = Table.create
      ~columns:
        [ ("n", Table.Right); ("d_i", Table.Right);
          ("max push msgs (L3)", Table.Right); ("sum|Lx|/n (L4)", Table.Right);
          ("gstring missing (L5)", Table.Right); ("wrong decisions (L7)", Table.Right);
          ("agreed", Table.Right); ("rounds", Table.Right) ]
  in
  List.iter
    (fun n ->
      let runs =
        List.map
          (fun seed ->
            let sc = Runner.scenario_of_setup setup ~n ~seed in
            let adversary sc =
              Attacks.(compose sc [ push_flood ~fake_strings:3 sc; wrong_answer sc ])
            in
            Runner.run_aer_sync ~adversary sc)
          (Runner.seeds (seed_count full))
      in
      let d_i = Params.((List.hd runs).Runner.scenario.Scenario.params.d_i) in
      let max_push = List.fold_left (fun a r -> max a r.Runner.push_max_messages) 0 runs in
      let lx_per_n =
        Stats.mean
          (Array.of_list
             (List.map (fun r -> float_of_int r.Runner.candidate_sum /. float_of_int n) runs))
      in
      let missing = List.fold_left (fun a r -> a + r.Runner.gstring_missing) 0 runs in
      let obs = List.map (fun r -> r.Runner.obs) runs in
      let s = Obs.aggregate obs in
      Table.add_row tbl
        [ Table.cell_int n; Table.cell_int d_i; Table.cell_int max_push;
          Table.cell_float lx_per_n; Table.cell_int missing;
          Table.cell_int s.Obs.total_wrong; Printf.sprintf "%.3f" s.Obs.mean_agreed;
          Table.cell_float s.Obs.mean_rounds ])
    (sizes full);
  Printf.fprintf out
    "### Lemmas 3, 4, 5, 7 — push bounds and safety (push-flood + bogus-answer adversary, \
     shared junk)\n\nLemma 3 expects max push msgs = O(d_i); Lemma 4 expects sum|Lx|/n = O(1); \
     Lemmas 5 and 7 expect the last two counters to be 0 w.h.p.\n\n";
  output_string out (Table.to_markdown tbl)

(* Lemmas 6 and 8: decision-time tails, non-rushing vs rushing vs
   asynchronous cornering. The answer filter is set near its honest
   load so the attack has bite at simulated sizes (the paper's log² n
   headroom dwarfs the adversary budget at small n). *)
let cornering_setup ~n ~seed =
  let base =
    { Runner.default_setup with Runner.byzantine_fraction = 0.2; knowledgeable_fraction = 0.8 }
  in
  let probe = Runner.scenario_of_setup base ~n ~seed in
  let pf = Params.(probe.Scenario.params.d_j) + 2 in
  Runner.scenario_of_setup { base with Runner.pull_filter = Some pf } ~n ~seed

let decision_time ~full ~out =
  let tbl = Table.create
      ~columns:
        [ ("n", Table.Right); ("mode", Table.Left); ("p95 decision", Table.Right);
          ("worst decision", Table.Left); ("decided", Table.Right); ("agreed", Table.Right) ]
  in
  List.iter
    (fun n ->
      let run_mode label runs =
        let s = Obs.aggregate runs in
        Table.add_row tbl
          [ Table.cell_int n; label; Table.cell_float s.Obs.mean_p95_decision;
            (match s.Obs.worst_decision_round with
            | Some r -> string_of_int r
            | None -> "incomplete");
            Printf.sprintf "%.3f" s.Obs.mean_decided; Printf.sprintf "%.3f" s.Obs.mean_agreed ]
      in
      let seeds = Runner.seeds (seed_count full) in
      run_mode "sync non-rushing (L8)"
        (List.map
           (fun seed ->
             (Runner.run_aer_sync ~mode:`Non_rushing
                ~adversary:(fun sc -> Attacks.cornering sc)
                (cornering_setup ~n ~seed))
               .Runner.obs)
           seeds);
      run_mode "sync rushing (L6)"
        (List.map
           (fun seed ->
             (Runner.run_aer_sync ~mode:`Rushing
                ~adversary:(fun sc -> Attacks.cornering sc)
                (cornering_setup ~n ~seed))
               .Runner.obs)
           seeds);
      run_mode "async (L6/L10)"
        (List.map
           (fun seed ->
             let r, norm =
               Runner.run_aer_async
                 ~adversary:(fun sc -> Attacks.async_cornering sc)
                 (cornering_setup ~n ~seed)
             in
             (* Normalize decision rounds by the delay bound. *)
             let o = r.Runner.obs in
             let scale v = if o.Obs.rounds > 0 then v *. norm /. float_of_int o.Obs.rounds else v in
             { o with
               Obs.p95_decision_round = scale o.Obs.p95_decision_round;
               max_decision_round =
                 Option.map
                   (fun m -> int_of_float (ceil (scale (float_of_int m))))
                   o.Obs.max_decision_round })
           seeds))
    (sizes full);
  Printf.fprintf out
    "\n### Lemmas 6 and 8 — decision time under the cornering adversary (answer filter near \
     honest load)\n\nLemma 8 expects the non-rushing column constant in n; Lemmas 6/10 allow \
     the rushing and async tails to grow slowly (O(log n / log log n)).\n\n";
  output_string out (Table.to_markdown tbl)

(* Lemmas 9/10: end-to-end totals. *)
let end_to_end ~full ~out =
  let tbl = Table.create
      ~columns:
        [ ("n", Table.Right); ("engine", Table.Left); ("rounds", Table.Right);
          ("total msgs/n", Table.Right); ("bits/node", Table.Right); ("agreed", Table.Right) ]
  in
  List.iter
    (fun n ->
      let seeds = Runner.seeds (seed_count full) in
      let sync_runs =
        List.map
          (fun seed ->
            let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
            Runner.run_aer_sync ~mode:`Non_rushing ~adversary:Attacks.silent sc)
          seeds
      in
      let msgs_per_n runs =
        Stats.mean (Array.of_list (List.map (fun (o : Obs.observation) -> o.Obs.msgs_per_node) runs))
      in
      let sync_obs = List.map (fun (r : Runner.aer_run) -> r.Runner.obs) sync_runs in
      let s = Obs.aggregate sync_obs in
      Table.add_row tbl
        [ Table.cell_int n; "sync non-rushing (L9)"; Table.cell_float s.Obs.mean_rounds;
          Table.cell_float (msgs_per_n sync_obs);
          Table.cell_float ~decimals:0 s.Obs.mean_bits_per_node;
          Printf.sprintf "%.3f" s.Obs.mean_agreed ];
      let async_runs =
        List.map
          (fun seed ->
            let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
            let r, norm = Runner.run_aer_async ~adversary:(fun sc -> Attacks.async_cornering sc) sc in
            (r, norm))
          seeds
      in
      let async_obs = List.map (fun ((r : Runner.aer_run), _) -> r.Runner.obs) async_runs in
      let s2 = Obs.aggregate async_obs in
      let mean_norm = Stats.mean (Array.of_list (List.map snd async_runs)) in
      Table.add_row tbl
        [ Table.cell_int n; "async (L10)"; Table.cell_float mean_norm;
          Table.cell_float (msgs_per_n async_obs);
          Table.cell_float ~decimals:0 s2.Obs.mean_bits_per_node;
          Printf.sprintf "%.3f" s2.Obs.mean_agreed ])
    (sizes full);
  Printf.fprintf out
    "\n### Lemmas 9 and 10 — end-to-end AER\n\nSync rounds should be constant; async \
     normalized rounds near-constant (bounded by O(log n/log log n)); bits/node \
     polylogarithmic.\n\n";
  output_string out (Table.to_markdown tbl);
  Printf.fprintf out "\n"

(* Per-phase breakdown next to the lemma gauges: the same flooding
   workload as [push_and_safety], split by protocol phase so each lemma
   can be read against the traffic of the phase it bounds (Lemma 3/5 →
   push, Lemma 4/6 → poll, Lemmas on forwarding → fw1/fw2). *)
let phase_breakdown ~full ~out =
  let setup = { Runner.default_setup with Runner.junk = Scenario.Junk_shared 2 } in
  let n = List.fold_left max 0 (sizes full) in
  let seed = List.hd (Runner.seeds 1) in
  let sc = Runner.scenario_of_setup setup ~n ~seed in
  let adversary sc =
    Attacks.(compose sc [ push_flood ~fake_strings:3 sc; wrong_answer sc ])
  in
  let run, acc = Runner.run_aer_phases ~adversary sc in
  Printf.fprintf out
    "\n### Per-phase traffic (same adversary as the push/safety table, n=%d, one seed)\n\n\
     Phase attribution is by message kind (push / poll / fw1 / fw2), so the bits column \
     sums exactly to the run's total %d bits.\n\n"
    n run.Runner.obs.Obs.total_bits_all;
  output_string out (Fba_sim.Events.Phase_acc.render acc);
  Printf.fprintf out "\n"

let run ?(full = false) ~out () =
  Printf.fprintf out "## Lemma-level reproduction\n\n";
  push_and_safety ~full ~out;
  decision_time ~full ~out;
  end_to_end ~full ~out;
  phase_breakdown ~full ~out
