open Fba_stdx
open Fba_core
module Attacks = Fba_adversary.Aer_attacks

let sizes full = if full then [ 128; 256; 512; 1024 ] else [ 64; 128; 256 ]
let seed_count full = if full then 3 else 3

type cell =
  | Push_safety of { n : int; seeds : int64 list }
  | Decision of { n : int; mode : [ `Snr | `Sr | `Async ]; seeds : int64 list }
  | End_to_end of { n : int; engine : [ `Sync | `Async ]; seeds : int64 list }
  | Phase_breakdown of { n : int; seed : int64 }

let cell_size = function
  | Push_safety { n; _ } | Decision { n; _ } | End_to_end { n; _ } | Phase_breakdown { n; _ }
    -> n

type push_safety_row = {
  n : int;
  d_i : int;
  max_push : int;
  lx_per_n : float;
  missing : int;
  wrong : int;
  agreed : float;
  rounds : float;
}

type decision_row = {
  n : int;
  label : string;
  p95 : float;
  worst : int option;
  decided : float;
  agreed : float;
}

type e2e_row = {
  n : int;
  label : string;
  rounds : float;
  msgs : float;
  bits : float;
  agreed : float;
}

type phase_breakdown_row = { n : int; total_bits : int; rendered : string }

type row =
  | Push_safety_row of push_safety_row
  | Decision_row of decision_row
  | End_to_end_row of e2e_row
  | Phase_breakdown_row of phase_breakdown_row

let name = "lemmas"

let grid ~full =
  let seeds = Runner.seeds (seed_count full) in
  let push = List.map (fun n -> Push_safety { n; seeds }) (sizes full) in
  let decision =
    List.concat_map
      (fun n ->
        List.map (fun mode -> Decision { n; mode; seeds }) [ `Snr; `Sr; `Async ])
      (sizes full)
  in
  let e2e =
    List.concat_map
      (fun n -> List.map (fun engine -> End_to_end { n; engine; seeds }) [ `Sync; `Async ])
      (sizes full)
  in
  let breakdown =
    [ Phase_breakdown { n = List.fold_left max 0 (sizes full); seed = List.hd (Runner.seeds 1) } ]
  in
  push @ decision @ e2e @ breakdown

(* Lemmas 3, 4, 5, 7: push-phase bounds and safety under the strongest
   flooding workload — shared junk, push flooding and bogus answers. *)
let flood_setup = { Runner.default_setup with Runner.junk = Scenario.Junk_shared 2 }

let flood_adversary sc =
  Attacks.(compose sc [ push_flood ~fake_strings:3 sc; wrong_answer sc ])

(* Lemmas 6 and 8: decision-time tails, non-rushing vs rushing vs
   asynchronous cornering. The answer filter is set near its honest
   load so the attack has bite at simulated sizes (the paper's log² n
   headroom dwarfs the adversary budget at small n). *)
let cornering_setup ~n ~seed =
  let base =
    { Runner.default_setup with Runner.byzantine_fraction = 0.2; knowledgeable_fraction = 0.8 }
  in
  let probe = Runner.scenario_of_setup base ~n ~seed in
  let pf = Params.(probe.Scenario.params.d_j) + 2 in
  Runner.scenario_of_setup { base with Runner.pull_filter = Some pf } ~n ~seed

let run_cell = function
  | Push_safety { n; seeds } ->
    let runs =
      List.map
        (fun seed ->
          let sc = Runner.scenario_of_setup flood_setup ~n ~seed in
          Runner.aer_sync ~adversary:flood_adversary sc)
        seeds
    in
    let d_i = Params.((List.hd runs).Runner.scenario.Scenario.params.d_i) in
    let max_push = List.fold_left (fun a r -> max a r.Runner.push_max_messages) 0 runs in
    let lx_per_n =
      Stats.mean
        (Array.of_list
           (List.map (fun r -> float_of_int r.Runner.candidate_sum /. float_of_int n) runs))
    in
    let missing = List.fold_left (fun a r -> a + r.Runner.gstring_missing) 0 runs in
    let s = Obs.aggregate (List.map (fun r -> r.Runner.obs) runs) in
    Push_safety_row
      {
        n;
        d_i;
        max_push;
        lx_per_n;
        missing;
        wrong = s.Obs.total_wrong;
        agreed = s.Obs.mean_agreed;
        rounds = s.Obs.mean_rounds;
      }
  | Decision { n; mode; seeds } ->
    let label, runs =
      match mode with
      | `Snr ->
        ( "sync non-rushing (L8)",
          List.map
            (fun seed ->
              (Runner.aer_sync
                 ~config:{ Runner.default_config with Runner.mode = `Non_rushing }
                 ~adversary:(fun sc -> Attacks.cornering sc)
                 (cornering_setup ~n ~seed))
                .Runner.obs)
            seeds )
      | `Sr ->
        ( "sync rushing (L6)",
          List.map
            (fun seed ->
              (Runner.aer_sync
                 ~adversary:(fun sc -> Attacks.cornering sc)
                 (cornering_setup ~n ~seed))
                .Runner.obs)
            seeds )
      | `Async ->
        ( "async (L6/L10)",
          List.map
            (fun seed ->
              let r, norm =
                Runner.aer_async
                  ~adversary:(fun sc -> Attacks.async_cornering sc)
                  (cornering_setup ~n ~seed)
              in
              (* Normalize decision rounds by the delay bound. *)
              let o = r.Runner.obs in
              let scale v =
                if o.Obs.rounds > 0 then v *. norm /. float_of_int o.Obs.rounds else v
              in
              { o with
                Obs.p95_decision_round = scale o.Obs.p95_decision_round;
                max_decision_round =
                  Option.map
                    (fun m -> int_of_float (ceil (scale (float_of_int m))))
                    o.Obs.max_decision_round })
            seeds )
    in
    let s = Obs.aggregate runs in
    Decision_row
      {
        n;
        label;
        p95 = s.Obs.mean_p95_decision;
        worst = s.Obs.worst_decision_round;
        decided = s.Obs.mean_decided;
        agreed = s.Obs.mean_agreed;
      }
  | End_to_end { n; engine; seeds } ->
    let msgs_per_n runs =
      Stats.mean (Array.of_list (List.map (fun (o : Obs.observation) -> o.Obs.msgs_per_node) runs))
    in
    (match engine with
    | `Sync ->
      let sync_obs =
        List.map
          (fun seed ->
            let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
            (Runner.aer_sync
               ~config:{ Runner.default_config with Runner.mode = `Non_rushing }
               ~adversary:Attacks.silent sc)
              .Runner.obs)
          seeds
      in
      let s = Obs.aggregate sync_obs in
      End_to_end_row
        {
          n;
          label = "sync non-rushing (L9)";
          rounds = s.Obs.mean_rounds;
          msgs = msgs_per_n sync_obs;
          bits = s.Obs.mean_bits_per_node;
          agreed = s.Obs.mean_agreed;
        }
    | `Async ->
      let async_runs =
        List.map
          (fun seed ->
            let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
            Runner.aer_async ~adversary:(fun sc -> Attacks.async_cornering sc) sc)
          seeds
      in
      let async_obs = List.map (fun ((r : Runner.aer_run), _) -> r.Runner.obs) async_runs in
      let s2 = Obs.aggregate async_obs in
      let mean_norm = Stats.mean (Array.of_list (List.map snd async_runs)) in
      End_to_end_row
        {
          n;
          label = "async (L10)";
          rounds = mean_norm;
          msgs = msgs_per_n async_obs;
          bits = s2.Obs.mean_bits_per_node;
          agreed = s2.Obs.mean_agreed;
        })
  | Phase_breakdown { n; seed } ->
    (* Per-phase breakdown next to the lemma gauges: the same flooding
       workload as the push/safety table, split by protocol phase so
       each lemma can be read against the traffic of the phase it
       bounds (Lemma 3/5 → push, Lemma 4/6 → poll, Lemmas on
       forwarding → fw1/fw2). *)
    let sc = Runner.scenario_of_setup flood_setup ~n ~seed in
    let run, acc = Runner.aer_phases ~adversary:flood_adversary sc in
    Phase_breakdown_row
      {
        n;
        total_bits = run.Runner.obs.Obs.total_bits_all;
        rendered = Fba_sim.Events.Phase_acc.render acc;
      }

let render ~full:_ ~out rows =
  Printf.fprintf out "## Lemma-level reproduction\n\n";
  let push_rows = List.filter_map (function Push_safety_row r -> Some r | _ -> None) rows in
  if push_rows <> [] then begin
    let tbl = Table.create
        ~columns:
          [ ("n", Table.Right); ("d_i", Table.Right);
            ("max push msgs (L3)", Table.Right); ("sum|Lx|/n (L4)", Table.Right);
            ("gstring missing (L5)", Table.Right); ("wrong decisions (L7)", Table.Right);
            ("agreed", Table.Right); ("rounds", Table.Right) ]
    in
    List.iter
      (fun (r : push_safety_row) ->
        Table.add_row tbl
          [ Table.cell_int r.n; Table.cell_int r.d_i; Table.cell_int r.max_push;
            Table.cell_float r.lx_per_n; Table.cell_int r.missing;
            Table.cell_int r.wrong; Printf.sprintf "%.3f" r.agreed;
            Table.cell_float r.rounds ])
      push_rows;
    Printf.fprintf out
      "### Lemmas 3, 4, 5, 7 — push bounds and safety (push-flood + bogus-answer adversary, \
       shared junk)\n\nLemma 3 expects max push msgs = O(d_i); Lemma 4 expects sum|Lx|/n = O(1); \
       Lemmas 5 and 7 expect the last two counters to be 0 w.h.p.\n\n";
    output_string out (Table.to_markdown tbl)
  end;
  let decision_rows = List.filter_map (function Decision_row r -> Some r | _ -> None) rows in
  if decision_rows <> [] then begin
    let tbl = Table.create
        ~columns:
          [ ("n", Table.Right); ("mode", Table.Left); ("p95 decision", Table.Right);
            ("worst decision", Table.Left); ("decided", Table.Right); ("agreed", Table.Right) ]
    in
    List.iter
      (fun (r : decision_row) ->
        Table.add_row tbl
          [ Table.cell_int r.n; r.label; Table.cell_float r.p95;
            (match r.worst with Some x -> string_of_int x | None -> "incomplete");
            Printf.sprintf "%.3f" r.decided; Printf.sprintf "%.3f" r.agreed ])
      decision_rows;
    Printf.fprintf out
      "\n### Lemmas 6 and 8 — decision time under the cornering adversary (answer filter near \
       honest load)\n\nLemma 8 expects the non-rushing column constant in n; Lemmas 6/10 allow \
       the rushing and async tails to grow slowly (O(log n / log log n)).\n\n";
    output_string out (Table.to_markdown tbl)
  end;
  let e2e_rows = List.filter_map (function End_to_end_row r -> Some r | _ -> None) rows in
  if e2e_rows <> [] then begin
    let tbl = Table.create
        ~columns:
          [ ("n", Table.Right); ("engine", Table.Left); ("rounds", Table.Right);
            ("total msgs/n", Table.Right); ("bits/node", Table.Right); ("agreed", Table.Right) ]
    in
    List.iter
      (fun (r : e2e_row) ->
        Table.add_row tbl
          [ Table.cell_int r.n; r.label; Table.cell_float r.rounds;
            Table.cell_float r.msgs; Table.cell_float ~decimals:0 r.bits;
            Printf.sprintf "%.3f" r.agreed ])
      e2e_rows;
    Printf.fprintf out
      "\n### Lemmas 9 and 10 — end-to-end AER\n\nSync rounds should be constant; async \
       normalized rounds near-constant (bounded by O(log n/log log n)); bits/node \
       polylogarithmic.\n\n";
    output_string out (Table.to_markdown tbl);
    Printf.fprintf out "\n"
  end;
  List.iter
    (function
      | Phase_breakdown_row r ->
        Printf.fprintf out
          "\n### Per-phase traffic (same adversary as the push/safety table, n=%d, one seed)\n\n\
           Phase attribution is by message kind (push / poll / fw1 / fw2), so the bits column \
           sums exactly to the run's total %d bits.\n\n"
          r.n r.total_bits;
        output_string out r.rendered;
        Printf.fprintf out "\n"
      | _ -> ())
    rows

let run ?(jobs = 0) ?(full = false) ~out () =
  render ~full ~out (Sweep.cells ~jobs run_cell (grid ~full))
