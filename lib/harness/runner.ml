open Fba_stdx
open Fba_core
module Aer_sync = Fba_sim.Sync_engine.Make (Aer)
module Aer_async = Fba_sim.Async_engine.Make (Aer)
module Grid = Fba_baselines.Grid_aetoe
module Grid_sync = Fba_sim.Sync_engine.Make (Grid)
module Naive = Fba_baselines.Naive_aetoe
module Naive_sync = Fba_sim.Sync_engine.Make (Naive)

type aer_setup = {
  byzantine_fraction : float;
  knowledgeable_fraction : float;
  junk : Scenario.junk;
  pull_filter : int option;
  d_override : (int * int * int) option;
  gstring_bits : int option;
  per_run_miss : float;
  layout : Msg.Layout.choice;
}

let default_setup =
  {
    byzantine_fraction = 0.10;
    knowledgeable_fraction = 0.85;
    junk = Scenario.Junk_unique;
    pull_filter = None;
    d_override = None;
    gstring_bits = None;
    per_run_miss = 0.05;
    layout = Msg.Layout.Auto;
  }

let scenario_of_setup ?intern setup ~n ~seed =
  let params =
    match setup.d_override with
    | Some (d_i, d_h, d_j) ->
      Params.make ~d_i ~d_h ~d_j ?gstring_bits:setup.gstring_bits
        ?pull_filter:setup.pull_filter ~n ~seed ()
    | None ->
      Params.make_for ~per_run_miss:setup.per_run_miss ?gstring_bits:setup.gstring_bits
        ?pull_filter:setup.pull_filter ~n ~seed
        ~byzantine_fraction:setup.byzantine_fraction
        ~knowledgeable_fraction:setup.knowledgeable_fraction ()
  in
  let rng = Prng.create (Hash64.finish (Hash64.add_string (Hash64.init seed) "workload")) in
  Scenario.make ?intern ~junk:setup.junk ~layout:setup.layout ~params ~rng
    ~byzantine_fraction:setup.byzantine_fraction
    ~knowledgeable_fraction:setup.knowledgeable_fraction ()

(* --- Run configuration (one record instead of repeated optionals) --- *)

type config = {
  mode : Fba_sim.Sync_engine.mode;
  max_rounds : int;
  max_time : int;
  events : Fba_sim.Events.sink option;
  phase_acc : Fba_sim.Events.Phase_acc.t option;
  prof : Fba_sim.Prof.t option;
  flood : bool;
  net : Fba_sim.Net.spec;
  compile : bool;  (* lower the scenario before the run (Compiled) *)
  stream : bool;  (* chunked streamed delivery plane (FBA_NO_STREAM off) *)
}

let default_config =
  {
    mode = `Rushing;
    max_rounds = 300;
    max_time = 4000;
    events = None;
    phase_acc = None;
    prof = None;
    flood = false;
    net = Fba_sim.Net.Reliable;
    (* On unless FBA_NO_COMPILE is set — the same A/B switch
       Aer.config_of_scenario defaults to, read once per config. *)
    compile = Sys.getenv_opt "FBA_NO_COMPILE" = None;
    (* Likewise for FBA_NO_STREAM: the delivery-plane A/B switch. *)
    stream = Fba_sim.Engine_core.stream_default ();
  }

type aer_run = {
  scenario : Scenario.t;
  obs : Obs.observation;
  metrics : Fba_sim.Metrics.t;
  push_max_messages : int;
  candidate_sum : int;
  candidate_max : int;
  gstring_missing : int;
}

let aer_gauges (sc : Scenario.t) states =
  let push_max = ref 0 and cand_sum = ref 0 and cand_max = ref 0 and missing = ref 0 in
  Array.iteri
    (fun i st ->
      match st with
      | Some st when Scenario.is_correct sc i ->
        push_max := max !push_max (Aer.push_messages_sent st);
        cand_sum := !cand_sum + Aer.candidate_count st;
        cand_max := max !cand_max (Aer.candidate_count st);
        if not (List.mem sc.Scenario.gstring (Aer.candidates st)) then incr missing
      | _ -> ())
    states;
  (!push_max, !cand_sum, !cand_max, !missing)

(* When a phase accumulator is supplied, make sure a sink exists and
   the accumulator listens on it; [Obs.of_metrics] then gets the rows. *)
let wire_phase_acc events phase_acc =
  match phase_acc with
  | None -> events
  | Some acc ->
    let sink = match events with Some k -> k | None -> Fba_sim.Events.create () in
    Fba_sim.Events.attach sink (Fba_sim.Events.Phase_acc.consumer acc);
    Some sink

let phase_rows = function
  | None -> []
  | Some acc -> Fba_sim.Events.Phase_acc.rows acc

let aer_sync ?(config = default_config) ~adversary (sc : Scenario.t) =
  let events = wire_phase_acc config.events config.phase_acc in
  let cfg = Aer.config_of_scenario ?events ~compile:config.compile sc in
  let n = Scenario.(sc.params.Params.n) in
  (* Re-polling nodes wake up after repoll_timeout idle rounds; the
     quiescence cutoff must not fire before then. *)
  let quiet_limit =
    if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
      Params.(sc.Scenario.params.repoll_timeout) + 2
    else 3
  in
  let res =
    Aer_sync.run ~quiet_limit ~stream:config.stream ?events ?prof:config.prof ~net:config.net ~config:cfg ~n
      ~seed:sc.Scenario.params.Params.seed ~adversary:(adversary sc) ~mode:config.mode
      ~max_rounds:config.max_rounds ()
  in
  let metrics = res.Fba_sim.Sync_engine.metrics in
  let obs =
    Obs.of_metrics ~phases:(phase_rows config.phase_acc) ~metrics
      ~outputs:res.Fba_sim.Sync_engine.outputs ~reference:(Some sc.Scenario.gstring) ()
  in
  let push_max_messages, candidate_sum, candidate_max, gstring_missing =
    aer_gauges sc res.Fba_sim.Sync_engine.states
  in
  { scenario = sc; obs; metrics; push_max_messages; candidate_sum; candidate_max;
    gstring_missing }

let aer_async ?(config = default_config) ~adversary (sc : Scenario.t) =
  let events = wire_phase_acc config.events config.phase_acc in
  let cfg = Aer.config_of_scenario ?events ~compile:config.compile sc in
  let n = Scenario.(sc.params.Params.n) in
  let res =
    Aer_async.run ~stream:config.stream ?events ?prof:config.prof ~net:config.net ~config:cfg ~n
      ~seed:sc.Scenario.params.Params.seed ~adversary:(adversary sc)
      ~max_time:config.max_time ()
  in
  let metrics = res.Fba_sim.Async_engine.metrics in
  let obs =
    Obs.of_metrics ~phases:(phase_rows config.phase_acc) ~metrics
      ~outputs:res.Fba_sim.Async_engine.outputs ~reference:(Some sc.Scenario.gstring) ()
  in
  let push_max_messages, candidate_sum, candidate_max, gstring_missing =
    aer_gauges sc res.Fba_sim.Async_engine.states
  in
  ( { scenario = sc; obs; metrics; push_max_messages; candidate_sum; candidate_max;
      gstring_missing },
    res.Fba_sim.Async_engine.normalized_rounds )

let aer_phases ?(config = default_config) ~adversary (sc : Scenario.t) =
  let n = Scenario.(sc.params.Params.n) in
  let acc =
    Fba_sim.Events.Phase_acc.create ~classify:(fun ~kind -> Aer.phase_of_kind kind) ~n ()
  in
  let run = aer_sync ~config:{ config with phase_acc = Some acc } ~adversary sc in
  (run, acc)

let str_bits (sc : Scenario.t) = 8 * String.length sc.Scenario.gstring

let run_grid ?(config = default_config) (sc : Scenario.t) =
  let n = Scenario.(sc.params.Params.n) in
  let cfg =
    Grid.make_config ~n ~initial:(fun i -> sc.Scenario.initial.(i)) ~str_bits:(str_bits sc)
  in
  let res =
    Grid_sync.run ~stream:config.stream ?prof:config.prof ~net:config.net ~config:cfg ~n
      ~seed:sc.Scenario.params.Params.seed
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted:sc.Scenario.corrupted)
      ~mode:`Rushing ~max_rounds:(Grid.total_rounds + 2) ()
  in
  Obs.of_metrics ~metrics:res.Fba_sim.Sync_engine.metrics ~outputs:res.Fba_sim.Sync_engine.outputs
    ~reference:(Some sc.Scenario.gstring) ()

(* The two attackable baselines share [config.flood]: [false] (the
   default) runs the honest/silent adversary on both, [true] turns on
   each protocol's worst flooding strategy. One knob, one default —
   the old per-function [?flood] optionals drifted apart. *)

let naive ?(config = default_config) (sc : Scenario.t) =
  let n = Scenario.(sc.params.Params.n) in
  let cfg =
    Naive.make_config ~n ~initial:(fun i -> sc.Scenario.initial.(i)) ~str_bits:(str_bits sc) ()
  in
  let adversary =
    if config.flood then Naive.flood_adversary cfg ~corrupted:sc.Scenario.corrupted
    else Fba_sim.Sync_engine.null_adversary ~corrupted:sc.Scenario.corrupted
  in
  let res =
    Naive_sync.run ~stream:config.stream ?prof:config.prof ~net:config.net ~config:cfg ~n
      ~seed:sc.Scenario.params.Params.seed
      ~adversary ~mode:`Rushing ~max_rounds:(Naive.total_rounds + 2) ()
  in
  let worst_replies = ref 0 in
  Array.iteri
    (fun i st ->
      match st with
      | Some st when Scenario.is_correct sc i ->
        worst_replies := max !worst_replies (Naive.queries_answered st)
      | _ -> ())
    res.Fba_sim.Sync_engine.states;
  ( Obs.of_metrics ~metrics:res.Fba_sim.Sync_engine.metrics
      ~outputs:res.Fba_sim.Sync_engine.outputs ~reference:(Some sc.Scenario.gstring) (),
    !worst_replies )

module Ks09 = Fba_baselines.Ks09_aetoe
module Ks09_sync = Fba_sim.Sync_engine.Make (Ks09)

let ks09 ?(config = default_config) (sc : Scenario.t) =
  let n = Scenario.(sc.params.Params.n) in
  let cfg =
    Ks09.make_config ~n ~initial:(fun i -> sc.Scenario.initial.(i)) ~str_bits:(str_bits sc) ()
  in
  let adversary =
    if config.flood then Ks09.flood_adversary cfg ~corrupted:sc.Scenario.corrupted
    else Fba_sim.Sync_engine.null_adversary ~corrupted:sc.Scenario.corrupted
  in
  let res =
    Ks09_sync.run ~stream:config.stream ?prof:config.prof ~net:config.net ~config:cfg ~n
      ~seed:sc.Scenario.params.Params.seed
      ~adversary ~mode:`Rushing ~max_rounds:(Ks09.total_rounds + 2) ()
  in
  Obs.of_metrics ~metrics:res.Fba_sim.Sync_engine.metrics ~outputs:res.Fba_sim.Sync_engine.outputs
    ~reference:(Some sc.Scenario.gstring) ()

module Relay = Fba_extensions.Committee_relay
module Relay_sync = Fba_sim.Sync_engine.Make (Relay)

let run_relay ?(config = default_config) (sc : Scenario.t) =
  let n = Scenario.(sc.params.Params.n) in
  let cfg =
    Relay.make_config ~n ~seed:sc.Scenario.params.Params.seed
      ~initial:(fun i -> sc.Scenario.initial.(i))
      ~str_bits:(str_bits sc) ()
  in
  let res =
    Relay_sync.run ~stream:config.stream ?prof:config.prof ~net:config.net ~config:cfg ~n
      ~seed:sc.Scenario.params.Params.seed
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted:sc.Scenario.corrupted)
      ~mode:`Rushing ~max_rounds:(Relay.total_rounds + 2) ()
  in
  Obs.of_metrics ~metrics:res.Fba_sim.Sync_engine.metrics ~outputs:res.Fba_sim.Sync_engine.outputs
    ~reference:(Some sc.Scenario.gstring) ()

let seeds k = List.init k (fun i -> Int64.of_int ((1013 * (i + 1)) + 7))
