(** Experiment [fig1b] — reproduce Figure 1(b): the Byzantine
    Agreement comparison.

    Paper's table:
    {v
              [BOPV06]   [KLST11]  BA (this paper)  [PR10]        [KS13]
    Model     SR         SR        SR               APC           Async
    Time      O(log n)   polylog   polylog          O(1)          O~(n^2.5)
    Bits      n^O(log n) O~(√n)    polylog          Ω(n² log n)   ?
    n         4t+1       3t+1      3t+1             4t+1          500t
    v}

    We run: BA = aeba ∘ AER (the paper's protocol), aeba ∘ grid (the
    KLST11-style row), a common-coin randomized BA ([PR10] stand-in,
    DESIGN.md substitution 3), Ben-Or with private coins, and the
    deterministic phase-king protocol (the super-polylog bits wall that
    [BOPV06]'s n^{O(log n)} also sits behind; BOPV06 itself is not
    runnable beyond toy sizes — substitution 4). [KS13] is quoted but
    not run (orthogonal contribution).

    Implements {!Experiment.S}. *)

val name : string

type cell
type row

val grid : full:bool -> cell list
val run_cell : cell -> row
val render : full:bool -> out:out_channel -> row list -> unit

val run : ?jobs:int -> ?full:bool -> out:out_channel -> unit -> unit
(** [full] (default false) enlarges the size grid and seed count;
    [jobs] (default auto) shards grid cells across domains. *)
