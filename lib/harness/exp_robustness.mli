(** Experiment [robustness] — off-model network conditions.

    The paper's model (Section 2.1) assumes a fully-connected,
    authenticated, {e reliable} network; this experiment deliberately
    steps outside it. Using the pluggable {!Fba_sim.Net} layer it
    sweeps

    - i.i.d. per-delivery loss (drop rate 0–0.20), and
    - transient bisections (the two halves cut off from round 1, for a
      sweep of lengths),

    for AER vs the naive-flooding and grid baselines, with a silent
    Byzantine coalition so the network axis is isolated from the
    adversary axis. Reported per condition: the mean fraction of
    correct nodes deciding gstring ("decide probability"), the
    fraction of runs where all of them did, mean rounds-to-decide, and
    mean bits/node — the degradation curves that quantify how far the
    O~(1)-bits guarantee survives off-model.

    Implements {!Experiment.S}. *)

val name : string

type cell
type row

val grid : full:bool -> cell list
(** Setting the [FBA_ROBUSTNESS_SMOKE] environment variable shrinks the
    grid to one drop rate and one partition length at n=48 (used by
    [scripts/ci.sh] to diff [--jobs] runs cheaply). *)

val run_cell : cell -> row
val render : full:bool -> out:out_channel -> row list -> unit

val run : ?jobs:int -> ?full:bool -> out:out_channel -> unit -> unit
(** [full] (default false) enlarges n, the seed count and the
    partition-length sweep; [jobs] (default auto) shards grid cells
    across domains — the output is byte-identical for every value. *)
