(* Off-model robustness: how far does AER's O~(1)-bits guarantee
   survive when the paper's reliable-network assumption (Section 2.1)
   is weakened? The sweep runs AER against the naive and grid baselines
   under the {!Fba_sim.Net} conditions — i.i.d. per-delivery loss and
   transient bisections — and reports decide probability,
   rounds-to-decide and bits/node degradation curves. The Byzantine
   coalition stays silent so the network-condition axis is isolated
   from the adversary axis (the other experiments cover the latter). *)

module Net = Fba_sim.Net
module Attacks = Fba_adversary.Aer_attacks

let name = "robustness"

type proto = Aer | Naive | Grid

type cond = Drop_rate of float | Partition_len of int

type cell = { proto : proto; cond : cond; n : int; seeds : int64 list }

type row = {
  r_proto : proto;
  r_cond : cond;
  r_n : int;
  r_seeds : int;
  agreed : float;  (** mean fraction of correct nodes deciding gstring *)
  all_agreed : float;  (** fraction of runs where every correct node did *)
  rounds : float;  (** mean engine rounds *)
  bits : float;  (** mean bits/node (correct senders) *)
}

let drop_rates = [ 0.0; 0.02; 0.05; 0.10; 0.20 ]

let partition_lens full = if full then [ 0; 1; 2; 4; 8 ] else [ 0; 1; 2; 4 ]

let protos = [ Aer; Naive; Grid ]

(* FBA_ROBUSTNESS_SMOKE shrinks the sweep to one non-zero drop rate and
   one partition length at small n, so scripts/ci.sh can diff a
   sequential run against a sharded one cheaply. [render] tolerates the
   subset grid (missing cells print "-"). *)
let smoke () = Sys.getenv_opt "FBA_ROBUSTNESS_SMOKE" <> None

let grid ~full =
  let conds, n, seeds =
    if smoke () then ([ Drop_rate 0.10; Partition_len 2 ], 48, Runner.seeds 2)
    else
      ( List.map (fun r -> Drop_rate r) drop_rates
        @ List.map (fun k -> Partition_len k) (partition_lens full),
        (if full then 256 else 96),
        Runner.seeds (if full then 5 else 3) )
  in
  List.concat_map
    (fun cond -> List.map (fun proto -> { proto; cond; n; seeds }) protos)
    conds

(* The bisection starts at round 1: round-0 pushes are already in
   flight, the cut lands on the poll/answer exchange — the phase whose
   chains Lemma 6 bounds. *)
let net_of_cond = function
  | Drop_rate 0.0 -> Net.Reliable
  | Drop_rate rate -> Net.Drop { rate }
  | Partition_len 0 -> Net.Reliable
  | Partition_len rounds -> Net.Partition { from_round = 1; rounds }

let run_cell { proto; cond; n; seeds } =
  let config = { Runner.default_config with Runner.net = net_of_cond cond } in
  let observations =
    List.map
      (fun seed ->
        let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
        match proto with
        | Aer -> (Runner.aer_sync ~config ~adversary:Attacks.silent sc).Runner.obs
        | Naive -> fst (Runner.naive ~config sc)
        | Grid -> Runner.run_grid ~config sc)
      seeds
  in
  let k = float_of_int (List.length observations) in
  let mean f = List.fold_left (fun acc o -> acc +. f o) 0.0 observations /. k in
  {
    r_proto = proto;
    r_cond = cond;
    r_n = n;
    r_seeds = List.length seeds;
    agreed = mean (fun o -> o.Obs.agreed_fraction);
    all_agreed =
      mean (fun o -> if o.Obs.agreed_fraction >= 1.0 then 1.0 else 0.0);
    rounds = mean (fun o -> float_of_int o.Obs.rounds);
    bits = mean (fun o -> o.Obs.bits_per_node);
  }

let proto_label = function Aer -> "AER" | Naive -> "naive" | Grid -> "grid"

let cond_label = function
  | Drop_rate r -> Printf.sprintf "%.2f" r
  | Partition_len k -> string_of_int k

open Fba_stdx

(* One table per condition family, conditions as rows, one column
   group per protocol. Tolerates subset grids: missing cells print
   "-", empty families are skipped. *)
let render_family ~out ~title ~cond_col rows conds =
  let rows_for cond proto =
    List.find_opt (fun r -> r.r_cond = cond && r.r_proto = proto) rows
  in
  let any = List.exists (fun c -> List.exists (fun r -> r.r_cond = c) rows) conds in
  if any then begin
    Printf.fprintf out "%s\n\n" title;
    let tbl =
      Table.create
        ~columns:
          (( cond_col, Table.Left )
          :: List.concat_map
               (fun p ->
                 let l = proto_label p in
                 [
                   (l ^ " agreed", Table.Right); (l ^ " runs ok", Table.Right);
                   (l ^ " rounds", Table.Right); (l ^ " bits/node", Table.Right);
                 ])
               protos)
    in
    List.iter
      (fun cond ->
        let cells =
          List.concat_map
            (fun p ->
              match rows_for cond p with
              | None -> [ "-"; "-"; "-"; "-" ]
              | Some r ->
                [
                  Table.cell_float ~decimals:3 r.agreed;
                  Table.cell_float ~decimals:2 r.all_agreed;
                  Table.cell_float ~decimals:1 r.rounds;
                  Table.cell_float ~decimals:0 r.bits;
                ])
            protos
        in
        if List.exists (fun c -> c <> "-") cells then
          Table.add_row tbl (cond_label cond :: cells))
      conds;
    output_string out (Table.to_markdown tbl);
    Printf.fprintf out "\n"
  end

let render ~full ~out rows =
  Printf.fprintf out "## Off-model robustness (network conditions beyond Section 2.1)\n\n";
  (match rows with
  | [] -> ()
  | r :: _ ->
    Printf.fprintf out
      "Silent Byzantine coalition (byz=%.2f), n=%d, %d seeds per cell. The paper assumes a \
       reliable network; every non-zero condition below is off-model. \"agreed\" is the mean \
       fraction of correct nodes deciding gstring, \"runs ok\" the fraction of runs where all \
       of them did.\n\n"
      Runner.default_setup.Runner.byzantine_fraction r.r_n r.r_seeds);
  render_family ~out
    ~title:"### Decide probability vs i.i.d. delivery loss (drop rate sweep)"
    ~cond_col:"drop rate" rows
    (List.map (fun r -> Drop_rate r) drop_rates);
  render_family ~out
    ~title:
      "### Decide probability vs transient bisection (partition from round 1, length sweep)"
    ~cond_col:"partition rounds" rows
    (List.map (fun k -> Partition_len k) (partition_lens full))

let run ?(jobs = 0) ?(full = false) ~out () =
  render ~full ~out (Sweep.cells ~jobs run_cell (grid ~full))
