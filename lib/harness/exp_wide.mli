(** Experiment [wide] — the Figure 1(a) comparison continued past the
    narrow packed plane's n = 8192 ceiling.

    Every cell runs on the wide message layout
    ({!Fba_core.Msg.Layout.wide_for}): AER under the cornering
    adversary against the grid and naive baselines at
    n = 32768 … 262144 (full grid), with shared junk strings so the sid
    field stays narrow at populations where unique junk is infeasible.
    Reports per-size time/bits/load plus the bits/node crossover ratios
    and fitted power exponents the paper's asymptotic table predicts.

    The [FBA_WIDE_SWEEP_SIZES] environment variable (comma-separated
    populations) substitutes the size grid — the ci smoke uses it to
    run the pipeline in seconds.

    Implements {!Experiment.S}. *)

val name : string

type cell
type row

val grid : full:bool -> cell list
val run_cell : cell -> row
val render : full:bool -> out:out_channel -> row list -> unit

val run : ?jobs:int -> ?full:bool -> out:out_channel -> unit -> unit
(** [full] (default false) extends the size grid to 262144 and adds a
    seed; [jobs] shards cells across domains (byte-identical output
    for every value). *)
