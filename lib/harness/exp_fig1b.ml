open Fba_stdx
module RBA = Fba_baselines.Randomized_ba
module RBA_sync = Fba_sim.Sync_engine.Make (RBA)
module PK = Fba_baselines.Phase_king_proto
module PK_sync = Fba_sim.Sync_engine.Make (PK)

let sizes full = if full then [ 64; 128; 256; 512 ] else [ 64; 128; 256 ]
let pk_sizes full = if full then [ 16; 32; 64; 128 ] else [ 16; 32; 64 ]
let seed_count full = if full then 3 else 2

let byz = 0.10

let random_corruption ~n ~seed =
  let rng = Prng.create (Hash64.finish (Hash64.add_string (Hash64.init seed) "corruption")) in
  let t = int_of_float (byz *. float_of_int n) in
  Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k:t)

let random_inputs ~seed i =
  Int64.logand (Hash64.finish (Hash64.add_int (Hash64.init seed) i)) 1L = 1L

type proto = Ba | Aeba_grid | Common_coin | Ben_or | Bit_reduction | Phase_king

let proto_name = function
  | Ba -> "BA (this paper)"
  | Aeba_grid -> "aeba+grid (KLST11-like)"
  | Common_coin -> "common-coin BA (PR10-like)"
  | Ben_or -> "Ben-Or (BO83)"
  | Bit_reduction -> "BA + bit reduction (ext.)"
  | Phase_king -> "phase-king (deterministic)"

type cell = { proto : proto; n : int; seeds : int64 list }

(* One row of measurements. [phase2] isolates the a.e.→e. phase for
   the compositions (the committee phase 1 is identical in both); for
   the single-phase protocols it equals [bits]. *)
type row = {
  r_proto : proto;
  r_n : int;
  rounds : float;
  bits : float;
  phase2 : float;
  agreed : float;
}

let name = "fig1b"

let grid ~full =
  let seeds = Runner.seeds (seed_count full) in
  List.concat_map
    (fun n ->
      List.map
        (fun proto -> { proto; n; seeds })
        [ Ba; Aeba_grid; Common_coin; Ben_or; Bit_reduction ])
    (sizes full)
  @ List.map (fun n -> { proto = Phase_king; n; seeds }) (pk_sizes full)

let mean l = Stats.mean (Array.of_list l)

let run_rba ~coin ~n ~seeds =
  let per_seed =
    List.map
      (fun seed ->
        let corrupted = random_corruption ~n ~seed in
        let t_assumed = max 1 ((n / 6) - 1) in
        (* Cap the logical rounds: a private-coin run that fails to
           converge within 24 rounds is reported as such (that failure
           is Ben-Or's scaling story), and an uncapped run at large n
           costs tens of millions of messages. *)
        let cfg =
          RBA.make_config ~max_logical_rounds:24 ~n ~t_assumed ~coin
            ~inputs:(random_inputs ~seed) ()
        in
        let adversary = RBA.split_vote_adversary cfg ~corrupted in
        let res =
          RBA_sync.run ~config:cfg ~n ~seed ~adversary ~mode:`Rushing
            ~max_rounds:(RBA.max_engine_rounds cfg) ()
        in
        let obs =
          Obs.of_metrics ~metrics:res.Fba_sim.Sync_engine.metrics
            ~outputs:res.Fba_sim.Sync_engine.outputs ~reference:None ()
        in
        ( float_of_int obs.Obs.rounds,
          obs.Obs.bits_per_node,
          obs.Obs.agreed_fraction ))
      seeds
  in
  let bits = mean (List.map (fun (_, b, _) -> b) per_seed) in
  ( mean (List.map (fun (r, _, _) -> r) per_seed),
    bits,
    bits,
    mean (List.map (fun (_, _, a) -> a) per_seed) )

let run_pk ~n ~seeds =
  let per_seed =
    List.map
      (fun seed ->
        let corrupted = random_corruption ~n ~seed in
        (* String agreement with (1/2+eps) shared inputs, like the other rows. *)
        let shared = Printf.sprintf "pk-value-%Ld" seed in
        let inputs i =
          if i mod 4 = 0 then Printf.sprintf "junk-%d" i else shared
        in
        let cfg = PK.make_config ~n ~initial:inputs ~str_bits:(8 * String.length shared) in
        let res =
          PK_sync.run ~config:cfg ~n ~seed
            ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
            ~mode:`Rushing ~max_rounds:(PK.total_rounds cfg) ()
        in
        let obs =
          Obs.of_metrics ~metrics:res.Fba_sim.Sync_engine.metrics
            ~outputs:res.Fba_sim.Sync_engine.outputs ~reference:None ()
        in
        (float_of_int obs.Obs.rounds, obs.Obs.bits_per_node, obs.Obs.agreed_fraction))
      seeds
  in
  let bits = mean (List.map (fun (_, b, _) -> b) per_seed) in
  ( mean (List.map (fun (r, _, _) -> r) per_seed),
    bits,
    bits,
    mean (List.map (fun (_, _, a) -> a) per_seed) )

let composition_stats rows =
  ( mean (List.map (fun (r : Composition.result) -> float_of_int r.Composition.rounds) rows),
    mean (List.map (fun (r : Composition.result) -> r.Composition.bits_per_node) rows),
    mean (List.map (fun (r : Composition.result) -> r.Composition.phase2_bits_per_node) rows),
    mean
      (List.map
         (fun (r : Composition.result) ->
           float_of_int r.Composition.agreed /. float_of_int (max 1 r.Composition.correct))
         rows) )

let run_cell { proto; n; seeds } =
  let rounds, bits, phase2, agreed =
    match proto with
    | Ba ->
      (* BA = aeba + AER (the paper). *)
      composition_stats
        (List.map
           (fun seed ->
             let r = Fba_core.Ba.run_sync ~n ~seed ~byzantine_fraction:byz () in
             Composition.of_ba_result r)
           seeds)
    | Aeba_grid ->
      (* aeba + grid (KLST11-style). *)
      composition_stats
        (List.map
           (fun seed -> Composition.run_aeba_grid ~n ~seed ~byzantine_fraction:byz)
           seeds)
    | Common_coin -> run_rba ~coin:(`Common 1234L) ~n ~seeds
    | Ben_or -> run_rba ~coin:`Local ~n ~seeds
    | Bit_reduction ->
      (* The classical bit-output notion, via the reduction: BA's
         string seeds the common coin of a binary agreement on real
         inputs (50/50 split + vote-splitting adversary). *)
      let bit_rows =
        List.map
          (fun seed ->
            let r =
              Fba_core.Binary_ba.run_sync
                ~inputs:(random_inputs ~seed)
                ~n ~seed ~byzantine_fraction:byz ()
            in
            ( float_of_int (Fba_sim.Metrics.rounds r.Fba_core.Binary_ba.metrics),
              Fba_sim.Metrics.amortized_bits r.Fba_core.Binary_ba.metrics,
              float_of_int r.Fba_core.Binary_ba.agreed
              /. float_of_int (max 1 r.Fba_core.Binary_ba.correct) ))
          seeds
      in
      let bits = mean (List.map (fun (_, b, _) -> b) bit_rows) in
      ( mean (List.map (fun (r, _, _) -> r) bit_rows),
        bits,
        bits,
        mean (List.map (fun (_, _, a) -> a) bit_rows) )
    | Phase_king -> run_pk ~n ~seeds
  in
  { r_proto = proto; r_n = n; rounds; bits; phase2; agreed }

let render ~full ~out rows =
  let tbl = Table.create
      ~columns:
        [ ("protocol", Table.Left); ("n", Table.Right); ("rounds", Table.Right);
          ("bits/node (total)", Table.Right); ("bits/node (a.e.->e. phase)", Table.Right);
          ("agreed", Table.Right) ]
  in
  (* Growth fits run on the a.e.→e. phase bits: the committee phase is
     common to both compositions and dominates at small n. *)
  let series : (string * int, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let name = proto_name r.r_proto in
      Hashtbl.add series (name, r.r_n) r.phase2;
      Table.add_row tbl
        [ name; Table.cell_int r.r_n; Table.cell_float r.rounds;
          Table.cell_float ~decimals:0 r.bits; Table.cell_float ~decimals:0 r.phase2;
          Printf.sprintf "%.3f" r.agreed ])
    rows;
  Printf.fprintf out "## Figure 1(b) — Byzantine Agreement protocols\n\n";
  Printf.fprintf out "### Measurements (byz=%.2f, vote-splitting adversary for the binary \
                      protocols)\n\n" byz;
  output_string out (Table.to_markdown tbl);
  (* Reproduction summary with growth fits where we have a series. *)
  let fit name ns =
    let pts = List.filter_map (fun n ->
        Option.map (fun b -> (n, b)) (Hashtbl.find_opt series (name, n))) ns in
    if List.length pts >= 3 then Stats.Growth.to_string (Stats.Growth.classify (Array.of_list pts))
    else "-"
  in
  let repro = Table.create
      ~columns:
        [ ("protocol", Table.Left); ("model", Table.Left); ("paper time", Table.Left);
          ("paper bits", Table.Left); ("paper n", Table.Left);
          ("measured a.e.->e. bits growth", Table.Left) ]
  in
  Table.add_row repro
    [ "[BOPV06]"; "SR"; "O(log n)"; "n^O(log n)"; "4t+1";
      "not run (toy-only; phase-king shows the deterministic bits wall)" ];
  Table.add_row repro
    [ "[KLST11]"; "SR"; "polylog"; "O~(sqrt n)"; "3t+1"; fit "aeba+grid (KLST11-like)" (sizes full) ];
  Table.add_row repro
    [ "BA (this paper)"; "SR"; "polylog"; "polylog"; "3t+1"; fit "BA (this paper)" (sizes full) ];
  Table.add_row repro
    [ "[PR10]"; "APC"; "O(1)"; "Omega(n^2 log n)"; "4t+1"; fit "common-coin BA (PR10-like)" (sizes full) ];
  Table.add_row repro [ "[KS13]"; "Async"; "O~(n^2.5)"; "?"; "500t"; "not run (orthogonal)" ];
  Table.add_row repro
    [ "phase-king (extra)"; "SR"; "O(t)"; "O(n^2 t |s|)"; "3t+1"; fit "phase-king (deterministic)" (pk_sizes full) ];
  Printf.fprintf out "\n### Reproduction vs paper\n\n";
  output_string out (Table.to_markdown repro);
  Printf.fprintf out "\n"

let run ?(jobs = 0) ?(full = false) ~out () =
  render ~full ~out (Sweep.cells ~jobs run_cell (grid ~full))
