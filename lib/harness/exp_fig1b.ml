open Fba_stdx
module RBA = Fba_baselines.Randomized_ba
module RBA_sync = Fba_sim.Sync_engine.Make (RBA)
module PK = Fba_baselines.Phase_king_proto
module PK_sync = Fba_sim.Sync_engine.Make (PK)

let sizes full = if full then [ 64; 128; 256; 512 ] else [ 64; 128; 256 ]
let pk_sizes full = if full then [ 16; 32; 64; 128 ] else [ 16; 32; 64 ]
let seed_count full = if full then 3 else 2

let byz = 0.10

let random_corruption ~n ~seed =
  let rng = Prng.create (Hash64.finish (Hash64.add_string (Hash64.init seed) "corruption")) in
  let t = int_of_float (byz *. float_of_int n) in
  Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k:t)

let random_inputs ~seed i =
  Int64.logand (Hash64.finish (Hash64.add_int (Hash64.init seed) i)) 1L = 1L

(* One row of measurements. [phase2] isolates the a.e.→e. phase for
   the compositions (the committee phase 1 is identical in both); for
   the single-phase protocols it equals [bits]. *)
type row = { rounds : float; bits : float; phase2 : float; agreed : float }

let mean l = Stats.mean (Array.of_list l)

let run_rba ~coin ~n ~seeds =
  let per_seed =
    List.map
      (fun seed ->
        let corrupted = random_corruption ~n ~seed in
        let t_assumed = max 1 ((n / 6) - 1) in
        (* Cap the logical rounds: a private-coin run that fails to
           converge within 24 rounds is reported as such (that failure
           is Ben-Or's scaling story), and an uncapped run at large n
           costs tens of millions of messages. *)
        let cfg =
          RBA.make_config ~max_logical_rounds:24 ~n ~t_assumed ~coin
            ~inputs:(random_inputs ~seed) ()
        in
        let adversary = RBA.split_vote_adversary cfg ~corrupted in
        let res =
          RBA_sync.run ~config:cfg ~n ~seed ~adversary ~mode:`Rushing
            ~max_rounds:(RBA.max_engine_rounds cfg) ()
        in
        let obs =
          Obs.of_metrics ~metrics:res.Fba_sim.Sync_engine.metrics
            ~outputs:res.Fba_sim.Sync_engine.outputs ~reference:None ()
        in
        ( float_of_int obs.Obs.rounds,
          obs.Obs.bits_per_node,
          obs.Obs.agreed_fraction ))
      seeds
  in
  let bits = mean (List.map (fun (_, b, _) -> b) per_seed) in
  {
    rounds = mean (List.map (fun (r, _, _) -> r) per_seed);
    bits;
    phase2 = bits;
    agreed = mean (List.map (fun (_, _, a) -> a) per_seed);
  }

let run_pk ~n ~seeds =
  let per_seed =
    List.map
      (fun seed ->
        let corrupted = random_corruption ~n ~seed in
        (* String agreement with (1/2+eps) shared inputs, like the other rows. *)
        let shared = Printf.sprintf "pk-value-%Ld" seed in
        let inputs i =
          if i mod 4 = 0 then Printf.sprintf "junk-%d" i else shared
        in
        let cfg = PK.make_config ~n ~initial:inputs ~str_bits:(8 * String.length shared) in
        let res =
          PK_sync.run ~config:cfg ~n ~seed
            ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
            ~mode:`Rushing ~max_rounds:(PK.total_rounds cfg) ()
        in
        let obs =
          Obs.of_metrics ~metrics:res.Fba_sim.Sync_engine.metrics
            ~outputs:res.Fba_sim.Sync_engine.outputs ~reference:None ()
        in
        (float_of_int obs.Obs.rounds, obs.Obs.bits_per_node, obs.Obs.agreed_fraction))
      seeds
  in
  let bits = mean (List.map (fun (_, b, _) -> b) per_seed) in
  {
    rounds = mean (List.map (fun (r, _, _) -> r) per_seed);
    bits;
    phase2 = bits;
    agreed = mean (List.map (fun (_, _, a) -> a) per_seed);
  }

let run ?(full = false) ~out () =
  let seeds = Runner.seeds (seed_count full) in
  let tbl = Table.create
      ~columns:
        [ ("protocol", Table.Left); ("n", Table.Right); ("rounds", Table.Right);
          ("bits/node (total)", Table.Right); ("bits/node (a.e.->e. phase)", Table.Right);
          ("agreed", Table.Right) ]
  in
  (* Growth fits run on the a.e.→e. phase bits: the committee phase is
     common to both compositions and dominates at small n. *)
  let series : (string * int, float) Hashtbl.t = Hashtbl.create 32 in
  let add name n (row : row) =
    Hashtbl.add series (name, n) row.phase2;
    Table.add_row tbl
      [ name; Table.cell_int n; Table.cell_float row.rounds;
        Table.cell_float ~decimals:0 row.bits; Table.cell_float ~decimals:0 row.phase2;
        Printf.sprintf "%.3f" row.agreed ]
  in
  List.iter
    (fun n ->
      (* BA = aeba + AER (the paper). *)
      let ba_rows =
        List.map
          (fun seed ->
            let r = Fba_core.Ba.run_sync ~n ~seed ~byzantine_fraction:byz () in
            Composition.of_ba_result r)
          seeds
      in
      add "BA (this paper)" n
        {
          rounds = mean (List.map (fun (r : Composition.result) -> float_of_int r.Composition.rounds) ba_rows);
          bits = mean (List.map (fun (r : Composition.result) -> r.Composition.bits_per_node) ba_rows);
          phase2 = mean (List.map (fun (r : Composition.result) -> r.Composition.phase2_bits_per_node) ba_rows);
          agreed =
            mean
              (List.map
                 (fun (r : Composition.result) ->
                   float_of_int r.Composition.agreed /. float_of_int (max 1 r.Composition.correct))
                 ba_rows);
        };
      (* aeba + grid (KLST11-style). *)
      let gr_rows =
        List.map (fun seed -> Composition.run_aeba_grid ~n ~seed ~byzantine_fraction:byz) seeds
      in
      add "aeba+grid (KLST11-like)" n
        {
          rounds = mean (List.map (fun (r : Composition.result) -> float_of_int r.Composition.rounds) gr_rows);
          bits = mean (List.map (fun (r : Composition.result) -> r.Composition.bits_per_node) gr_rows);
          phase2 = mean (List.map (fun (r : Composition.result) -> r.Composition.phase2_bits_per_node) gr_rows);
          agreed =
            mean
              (List.map
                 (fun (r : Composition.result) ->
                   float_of_int r.Composition.agreed /. float_of_int (max 1 r.Composition.correct))
                 gr_rows);
        };
      add "common-coin BA (PR10-like)" n (run_rba ~coin:(`Common 1234L) ~n ~seeds);
      add "Ben-Or (BO83)" n (run_rba ~coin:`Local ~n ~seeds);
      (* The classical bit-output notion, via the reduction: BA's
         string seeds the common coin of a binary agreement on real
         inputs (50/50 split + vote-splitting adversary). *)
      let bit_rows =
        List.map
          (fun seed ->
            let r =
              Fba_core.Binary_ba.run_sync
                ~inputs:(random_inputs ~seed)
                ~n ~seed ~byzantine_fraction:byz ()
            in
            ( float_of_int (Fba_sim.Metrics.rounds r.Fba_core.Binary_ba.metrics),
              Fba_sim.Metrics.amortized_bits r.Fba_core.Binary_ba.metrics,
              float_of_int r.Fba_core.Binary_ba.agreed
              /. float_of_int (max 1 r.Fba_core.Binary_ba.correct) ))
          seeds
      in
      let bits = mean (List.map (fun (_, b, _) -> b) bit_rows) in
      add "BA + bit reduction (ext.)" n
        {
          rounds = mean (List.map (fun (r, _, _) -> r) bit_rows);
          bits;
          phase2 = bits;
          agreed = mean (List.map (fun (_, _, a) -> a) bit_rows);
        })
    (sizes full);
  List.iter (fun n -> add "phase-king (deterministic)" n (run_pk ~n ~seeds)) (pk_sizes full);
  Printf.fprintf out "## Figure 1(b) — Byzantine Agreement protocols\n\n";
  Printf.fprintf out "### Measurements (byz=%.2f, vote-splitting adversary for the binary \
                      protocols)\n\n" byz;
  output_string out (Table.to_markdown tbl);
  (* Reproduction summary with growth fits where we have a series. *)
  let fit name ns =
    let pts = List.filter_map (fun n ->
        Option.map (fun b -> (n, b)) (Hashtbl.find_opt series (name, n))) ns in
    if List.length pts >= 3 then Stats.Growth.to_string (Stats.Growth.classify (Array.of_list pts))
    else "-"
  in
  let repro = Table.create
      ~columns:
        [ ("protocol", Table.Left); ("model", Table.Left); ("paper time", Table.Left);
          ("paper bits", Table.Left); ("paper n", Table.Left);
          ("measured a.e.->e. bits growth", Table.Left) ]
  in
  Table.add_row repro
    [ "[BOPV06]"; "SR"; "O(log n)"; "n^O(log n)"; "4t+1";
      "not run (toy-only; phase-king shows the deterministic bits wall)" ];
  Table.add_row repro
    [ "[KLST11]"; "SR"; "polylog"; "O~(sqrt n)"; "3t+1"; fit "aeba+grid (KLST11-like)" (sizes full) ];
  Table.add_row repro
    [ "BA (this paper)"; "SR"; "polylog"; "polylog"; "3t+1"; fit "BA (this paper)" (sizes full) ];
  Table.add_row repro
    [ "[PR10]"; "APC"; "O(1)"; "Omega(n^2 log n)"; "4t+1"; fit "common-coin BA (PR10-like)" (sizes full) ];
  Table.add_row repro [ "[KS13]"; "Async"; "O~(n^2.5)"; "?"; "500t"; "not run (orthogonal)" ];
  Table.add_row repro
    [ "phase-king (extra)"; "SR"; "O(t)"; "O(n^2 t |s|)"; "3t+1"; fit "phase-king (deterministic)" (pk_sizes full) ];
  Printf.fprintf out "\n### Reproduction vs paper\n\n";
  output_string out (Table.to_markdown repro);
  Printf.fprintf out "\n"
