open Fba_stdx
open Fba_samplers
open Fba_core

let sizes full = if full then [ 256; 512; 1024; 2048 ] else [ 128; 256; 512 ]

let good_set ~n ~rng ~fraction =
  let k = int_of_float (ceil (fraction *. float_of_int n)) in
  Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k)

type cell =
  | Prop of { n : int; tries : int }
  | Seize of { n : int; d : int; frac : float }

type prop_row = {
  n : int;
  d_j : int;
  frac_random : float;
  frac_worst : float;
  overload : float;
  p1 : float;
  boundary_random : float;
  boundary_greedy : float;
}

type seize_row = { frac : float; affine_seized : float; sampler_seized : float }

type row = Prop_row of prop_row | Seize_row of seize_row

let name = "samplers"

(* Section 2.2's motivating dichotomy uses the second size of the grid. *)
let seize_n full = List.nth (sizes full) 1
let seize_d n = 2 * Intx.ceil_log2 n

let grid ~full =
  let tries = if full then 200 else 60 in
  let props = List.map (fun n -> Prop { n; tries }) (sizes full) in
  let n = seize_n full in
  let d = seize_d n in
  let seize = List.map (fun frac -> Seize { n; d; frac }) [ 0.05; 0.10; 0.20; 0.33 ] in
  props @ seize

let run_cell = function
  | Prop { n; tries } ->
    let params =
      Params.make_for ~n ~seed:97L ~byzantine_fraction:0.1 ~knowledgeable_fraction:0.75 ()
    in
    let si = Params.sampler_i params in
    let sj = Params.sampler_j params in
    let rng = Prng.create (Int64.of_int (n + 13)) in
    let good = good_set ~n ~rng ~fraction:0.75 in
    let random_s = Bytes.unsafe_to_string (Prng.bits rng Params.(params.gstring_bits)) in
    let frac_random = Property_check.bad_quorum_fraction si ~good ~s:random_s in
    let _, frac_worst =
      Property_check.worst_string_search si ~good ~rng ~tries
        ~bits:Params.(params.gstring_bits)
    in
    let overload =
      Property_check.overload_factor si
        ~strings:(List.init 4 (fun _ ->
            Bytes.unsafe_to_string (Prng.bits rng Params.(params.gstring_bits))))
    in
    let p1 = Property_check.property1_estimate sj ~good ~samples:20000 ~rng in
    let u = max 2 (n / Intx.ceil_log2 n) in
    let boundary_random =
      Stats.mean
        (Array.init 3 (fun _ ->
             Digraph.boundary_ratio sj (Digraph.random_l sj ~rng ~size:u)))
    in
    let boundary_greedy =
      Digraph.boundary_ratio sj
        (Digraph.greedy_adversarial_l sj ~rng ~size:u ~labels_per_step:24)
    in
    Prop_row
      {
        n;
        d_j = Params.(params.d_j);
        frac_random;
        frac_worst;
        overload;
        p1;
        boundary_random;
        boundary_greedy;
      }
  | Seize { n; d; frac } ->
    let affine = Affine_sampler.create ~n ~d ~stride:(Intx.isqrt n) in
    let hash_sampler = Sampler.create ~seed:11L ~n ~d in
    let budget = int_of_float (frac *. float_of_int n) in
    Seize_row
      {
        frac;
        affine_seized = Affine_sampler.seizable_fraction affine ~budget;
        sampler_seized = Property_check.seizable_fraction hash_sampler ~s:"g" ~budget;
      }

let render ~full ~out rows =
  Printf.fprintf out "## Sampler properties (Lemmas 1–2, Section 4.1)\n\n";
  let prop_rows = List.filter_map (function Prop_row r -> Some r | _ -> None) rows in
  if prop_rows <> [] then begin
    let tbl = Table.create
        ~columns:
          [ ("n", Table.Right); ("d", Table.Right);
            ("bad I-quorums, random s", Table.Right); ("bad I-quorums, worst of 200", Table.Right);
            ("overload factor (L1)", Table.Right); ("P1 bad poll lists", Table.Right);
            ("boundary random L (P2)", Table.Right); ("boundary greedy L (P2)", Table.Right) ]
    in
    List.iter
      (fun (r : prop_row) ->
        Table.add_row tbl
          [ Table.cell_int r.n; Table.cell_int r.d_j;
            Table.cell_float ~decimals:4 r.frac_random; Table.cell_float ~decimals:4 r.frac_worst;
            Table.cell_float r.overload; Table.cell_float ~decimals:4 r.p1;
            Table.cell_float r.boundary_random; Table.cell_float r.boundary_greedy ])
      prop_rows;
    output_string out (Table.to_markdown tbl);
    Printf.fprintf out
      "\nExpectations: bad-quorum fractions stay O(1/n)-ish even under adversarial string \
       search (Lemma 1 / Lemma 5's union bound); the overload factor stays a small constant \
       (Lemma 1); Property 1's fraction is near zero; both boundary ratios stay above the \
       paper's 2/3 bound for |L| = n/log n (Property 2, Figure 3 digraph model) — the greedy \
       adversarial L is the interesting column, since a random L is trivially expanding.\n\n"
  end;
  let seize_rows = List.filter_map (function Seize_row r -> Some r | _ -> None) rows in
  if seize_rows <> [] then begin
    (* Section 2.2's motivating dichotomy: a structured deterministic
       quorum choice is seized with a tiny budget; the sampler resists
       until the budget nears n/2. *)
    let seize = Table.create
        ~columns:
          [ ("budget (fraction of n)", Table.Left); ("affine quorums seized", Table.Right);
            ("sampler quorums seized", Table.Right) ]
    in
    List.iter
      (fun (r : seize_row) ->
        Table.add_row seize
          [ Printf.sprintf "%.2f" r.frac; Table.cell_float r.affine_seized;
            Table.cell_float r.sampler_seized ])
      seize_rows;
    let n = seize_n full in
    Printf.fprintf out
      "### Deterministic quorums vs samplers (Section 2.2's dichotomy, n=%d, d=%d, greedy \
       corruption)\n\nThe arithmetic-progression construction concentrates coverage, so a \
       small corruption budget seizes a large fraction of quorums; the hash sampler spreads \
       coverage uniformly:\n\n" n (seize_d n);
    output_string out (Table.to_markdown seize);
    Printf.fprintf out "\n"
  end

let run ?(jobs = 0) ?(full = false) ~out () =
  render ~full ~out (Sweep.cells ~jobs run_cell (grid ~full))
