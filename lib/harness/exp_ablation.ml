open Fba_stdx
open Fba_core
module Attacks = Fba_adversary.Aer_attacks

let n_of full = if full then 512 else 256
let seed_count full = if full then 3 else 2

type cell =
  | Quorum of { n : int; d : int; seeds : int64 list }
  | Filter of { n : int; label : string; pf : int; d_j : int; seeds : int64 list }
  | Gstring of { n : int; c : int; bits : int; budget : int; seeds : int64 list }
  | Semantics of { n : int; label : string; strict : bool; attempts : int; seeds : int64 list }
  | Adaptive of { n : int; adaptive : bool; seeds : int64 list }

type quorum_row = { d : int; agreed : float; missing : int; bits : float; p95 : float }
type filter_row = {
  label : string;
  d_j : int;
  decided : float;
  agreed : float;
  p95 : float;
  worst : int option;
}
type gstring_row = { label : string; budget : int; frac : float; missing : int; agreed : float }
type semantics_row = { label : string; decided : float; agreed : float; p95 : float }
type adaptive_row = { label : string; denied : int; others_agreed : float }

type row =
  | Quorum_row of quorum_row
  | Filter_row of filter_row
  | Gstring_row of gstring_row
  | Semantics_row of semantics_row
  | Adaptive_row of adaptive_row

let name = "ablation"

(* Sweep 2's filter grid is anchored at the poll-list size the
   auto-sizer picks for this n (probed once, deterministically). *)
let filter_base =
  { Runner.default_setup with Runner.byzantine_fraction = 0.2; knowledgeable_fraction = 0.8 }

let grid ~full =
  let n = n_of full in
  let seeds = Runner.seeds (seed_count full) in
  let quorum = List.map (fun d -> Quorum { n; d; seeds }) [ 9; 13; 17; 25; 33; 45 ] in
  let filter =
    let probe = Runner.scenario_of_setup filter_base ~n ~seed:1L in
    let d_j = Params.(probe.Scenario.params.d_j) in
    let log2n = Intx.ceil_log2 n in
    List.map
      (fun (label, pf) -> Filter { n; label; pf; d_j; seeds })
      [
        (Printf.sprintf "d_j/2 = %d (below honest load)" (d_j / 2), max 1 (d_j / 2));
        (Printf.sprintf "d_j = %d" d_j, d_j);
        (Printf.sprintf "d_j+8 = %d" (d_j + 8), d_j + 8);
        (Printf.sprintf "2*d_j = %d" (2 * d_j), 2 * d_j);
        (Printf.sprintf "log^2 n = %d (paper)" (log2n * log2n), log2n * log2n);
      ]
  in
  let gstring =
    let log2n = Intx.ceil_log2 n in
    List.map
      (fun c ->
        let bits = max 6 (c * log2n) in
        let free_bits = bits / 3 in
        let budget = min (if full then 512 else 128) (Intx.pow 2 (min free_bits 20)) in
        Gstring { n; c; bits; budget; seeds })
      [ 1; 2; 4; 8 ]
  in
  let semantics =
    List.map
      (fun (label, strict, attempts) -> Semantics { n; label; strict; attempts; seeds })
      [
        ("buffered replay (ours, default)", false, 1);
        ("literal drop (paper pseudo-code)", true, 1);
        ("re-poll x3 + deliberately lax quorums", false, 3);
      ]
  in
  let adaptive = List.map (fun adaptive -> Adaptive { n; adaptive; seeds }) [ false; true ] in
  quorum @ filter @ gstring @ semantics @ adaptive

let summarize runs =
  let obs = List.map (fun (r : Runner.aer_run) -> r.Runner.obs) runs in
  Obs.aggregate obs

let semantics_setup =
  { Runner.default_setup with Runner.byzantine_fraction = 0.15; knowledgeable_fraction = 0.70 }

let adaptive_byz = 0.2
let adaptive_victims = 2

let run_cell = function
  | Quorum { n; d; seeds } ->
    (* Sweep 1: quorum size, under a harsher fault mix than the
       auto-sizer would pick for, so the failure region is visible. *)
    let setup =
      { Runner.default_setup with
        Runner.byzantine_fraction = 0.2;
        knowledgeable_fraction = 0.75;
        d_override = Some (d, d, d) }
    in
    let runs =
      List.map
        (fun seed ->
          Runner.aer_sync ~adversary:Attacks.silent (Runner.scenario_of_setup setup ~n ~seed))
        seeds
    in
    let s = summarize runs in
    let missing = List.fold_left (fun a r -> a + r.Runner.gstring_missing) 0 runs in
    Quorum_row
      {
        d;
        agreed = s.Obs.mean_agreed;
        missing;
        bits = s.Obs.mean_bits_per_node;
        p95 = s.Obs.mean_p95_decision;
      }
  | Filter { n; label; pf; d_j; seeds } ->
    (* Sweep 2: the Algorithm-3 answer filter under cornering. *)
    let runs =
      List.map
        (fun seed ->
          Runner.aer_sync
            ~adversary:(fun sc -> Attacks.cornering sc)
            (Runner.scenario_of_setup { filter_base with Runner.pull_filter = Some pf } ~n ~seed))
        seeds
    in
    let s = summarize runs in
    Filter_row
      {
        label;
        d_j;
        decided = s.Obs.mean_decided;
        agreed = s.Obs.mean_agreed;
        p95 = s.Obs.mean_p95_decision;
        worst = s.Obs.worst_decision_round;
      }
  | Gstring { n; c; bits; budget; seeds } ->
    (* Sweep 3: gstring length (the constant c of Lemma 5). The
       adversary contributes the trailing 1/3−ε of gstring's bits and
       may enumerate its completions of the fixed random prefix,
       looking for one whose push quorums are bad. Quorums are
       deliberately sized one notch lax (per-run miss budget 1.0) so
       the failure region is visible. *)
    let free_bits = bits / 3 in
    let setup =
      { Runner.default_setup with
        Runner.byzantine_fraction = 0.2;
        knowledgeable_fraction = 0.75;
        gstring_bits = Some bits;
        per_run_miss = 1.0 }
    in
    let runs =
      List.map
        (fun seed ->
          let probe = Runner.scenario_of_setup setup ~n ~seed in
          let params = probe.Scenario.params in
          let rng =
            Prng.create (Hash64.finish (Hash64.add_string (Hash64.init seed) "gsearch"))
          in
          let prefix = Bytes.unsafe_to_string (Prng.bits rng bits) in
          let bad_gstring, frac =
            Fba_samplers.Property_check.worst_completion_search (Params.sampler_i params)
              ~good:probe.Scenario.knowledgeable ~rng ~tries:budget ~prefix ~free_bits
          in
          let wl_rng =
            Prng.create (Hash64.finish (Hash64.add_string (Hash64.init seed) "workload"))
          in
          let sc =
            Scenario.make ~junk:setup.Runner.junk ~gstring:bad_gstring ~params ~rng:wl_rng
              ~byzantine_fraction:setup.Runner.byzantine_fraction
              ~knowledgeable_fraction:setup.Runner.knowledgeable_fraction ()
          in
          (Runner.aer_sync ~adversary:Attacks.silent sc, frac))
        seeds
    in
    let s = summarize (List.map fst runs) in
    let missing = List.fold_left (fun a (r, _) -> a + r.Runner.gstring_missing) 0 runs in
    let frac = Stats.mean (Array.of_list (List.map snd runs)) in
    Gstring_row
      {
        label = Printf.sprintf "%d (c=%d)" bits c;
        budget;
        frac;
        missing;
        agreed = s.Obs.mean_agreed;
      }
  | Semantics { n; label; strict; attempts; seeds } ->
    (* Sweep 4: buffering vs the paper's literal message-dropping
       (DESIGN.md substitution 6), and the re-poll extension. *)
    let runs =
      List.map
        (fun seed ->
          let setup =
            if attempts > 1 then { semantics_setup with Runner.per_run_miss = 0.5 }
            else semantics_setup
          in
          let probe = Runner.scenario_of_setup setup ~n ~seed in
          let params = probe.Scenario.params in
          let params =
            if attempts > 1 then
              Params.make ~d_i:Params.(params.d_i) ~d_h:Params.(params.d_h)
                ~d_j:Params.(params.d_j) ~gstring_bits:Params.(params.gstring_bits)
                ~pull_filter:Params.(params.pull_filter) ~max_poll_attempts:attempts ~n
                ~seed ()
            else params
          in
          let wl_rng =
            Prng.create (Hash64.finish (Hash64.add_string (Hash64.init seed) "workload"))
          in
          let sc =
            Scenario.make ~junk:setup.Runner.junk ~params ~rng:wl_rng
              ~byzantine_fraction:setup.Runner.byzantine_fraction
              ~knowledgeable_fraction:setup.Runner.knowledgeable_fraction ()
          in
          let cfg = Aer.config_of_scenario ~strict_drop:strict sc in
          let module E = Fba_sim.Sync_engine.Make (Aer) in
          let quiet_limit =
            if Params.(params.max_poll_attempts) > 1 then Params.(params.repoll_timeout) + 2
            else 3
          in
          let res =
            E.run ~quiet_limit ~config:cfg ~n ~seed:params.Params.seed
              ~adversary:(Attacks.silent sc) ~mode:`Rushing ~max_rounds:200 ()
          in
          Obs.of_metrics ~metrics:res.Fba_sim.Sync_engine.metrics
            ~outputs:res.Fba_sim.Sync_engine.outputs ~reference:(Some sc.Scenario.gstring) ())
        seeds
    in
    let s = Obs.aggregate runs in
    Semantics_row
      {
        label;
        decided = s.Obs.mean_decided;
        agreed = s.Obs.mean_agreed;
        p95 = s.Obs.mean_p95_decision;
      }
  | Adaptive { n; adaptive; seeds } ->
    (* Sweep 5: the non-adaptive-adversary assumption (Section 2.1).
       Same corruption budget, chosen either uniformly (the paper's
       model) or adaptively after seeing the samplers — seizing the
       victims' push quorums I(gstring, v) outright. *)
    let byz = adaptive_byz and kn = 0.75 in
    let victims = adaptive_victims in
    let denied = ref 0 and agreed = ref 0 and correct_others = ref 0 in
    List.iter
      (fun seed ->
        let params = Params.make_for ~n ~seed ~byzantine_fraction:byz ~knowledgeable_fraction:kn () in
        let rng = Prng.create (Hash64.finish (Hash64.add_string (Hash64.init seed) "adaptive")) in
        let gstring = Bytes.unsafe_to_string (Prng.bits rng Params.(params.gstring_bits)) in
        let victim_ids = List.init victims (fun i -> i) in
        let budget = int_of_float (byz *. float_of_int n) in
        let corrupted =
          if adaptive then
            Fba_adversary.Corruption.seize_push_quorum ~sampler_i:(Params.sampler_i params)
              ~gstring ~victims:victim_ids ~n ~rng ~count:budget
          else Fba_adversary.Corruption.random ~n ~rng ~count:budget
        in
        (* Knowledge assignment: victims are deliberately ignorant so
           they must learn gstring through the protocol. *)
        let initial =
          Array.init n (fun i ->
              if List.mem i victim_ids || Bitset.mem corrupted i || i mod 10 = 9 then
                Printf.sprintf "junk-%d" i
              else gstring)
        in
        let sc = Scenario.of_assignment ~params ~gstring ~corrupted ~initial () in
        let cfg = Aer.config_of_scenario sc in
        let module E = Fba_sim.Sync_engine.Make (Aer) in
        let res =
          E.run ~config:cfg ~n ~seed:params.Params.seed ~adversary:(Attacks.silent sc)
            ~mode:`Rushing ~max_rounds:100 ()
        in
        List.iter
          (fun v ->
            if Scenario.is_correct sc v && res.Fba_sim.Sync_engine.outputs.(v) <> Some gstring
            then incr denied)
          victim_ids;
        Array.iteri
          (fun i o ->
            if Scenario.is_correct sc i && not (List.mem i victim_ids) then begin
              incr correct_others;
              if o = Some gstring then incr agreed
            end)
          res.Fba_sim.Sync_engine.outputs)
      seeds;
    Adaptive_row
      {
        label = (if adaptive then "adaptive quorum seizure" else "uniform (paper's model)");
        denied = !denied;
        others_agreed = float_of_int !agreed /. float_of_int (max 1 !correct_others);
      }

let render ~full ~out rows =
  let n = n_of full in
  Printf.fprintf out "## Design-choice ablations\n\n";
  let quorum_rows = List.filter_map (function Quorum_row r -> Some r | _ -> None) rows in
  if quorum_rows <> [] then begin
    let tbl = Table.create
        ~columns:
          [ ("d (all samplers)", Table.Right); ("agreed", Table.Right);
            ("gstring missing", Table.Right); ("bits/node", Table.Right);
            ("p95 decision", Table.Right) ]
    in
    List.iter
      (fun (r : quorum_row) ->
        Table.add_row tbl
          [ Table.cell_int r.d; Printf.sprintf "%.3f" r.agreed; Table.cell_int r.missing;
            Table.cell_float ~decimals:0 r.bits; Table.cell_float r.p95 ])
      quorum_rows;
    Printf.fprintf out
      "### Quorum-size sweep (n=%d, byz=0.20, knowledgeable=0.75, silent adversary)\n\n\
       Small quorums leave Byzantine majorities in push quorums and poll lists (missed \
       gstrings, failed agreement); large quorums multiply the Fw1 fan-out cost \
       (bits/node grows as d^3).\n\n" n;
    output_string out (Table.to_markdown tbl)
  end;
  let filter_rows = List.filter_map (function Filter_row r -> Some r | _ -> None) rows in
  (match filter_rows with
  | [] -> ()
  | first :: _ ->
    let tbl = Table.create
        ~columns:
          [ ("pull filter", Table.Left); ("decided", Table.Right); ("agreed", Table.Right);
            ("p95 decision", Table.Right); ("worst decision", Table.Left) ]
    in
    List.iter
      (fun (r : filter_row) ->
        Table.add_row tbl
          [ r.label; Printf.sprintf "%.3f" r.decided; Printf.sprintf "%.3f" r.agreed;
            Table.cell_float r.p95;
            (match r.worst with Some x -> string_of_int x | None -> "incomplete") ])
      filter_rows;
    Printf.fprintf out
      "\n### Pull-filter sweep under cornering (n=%d, byz=0.20; honest answer load is about \
       d_j=%d per node)\n\nBelow the honest load most nodes mute themselves and decisions \
       stall by several multiples (with tight enough budgets the system can deadlock \
       outright); just above it the adversary's budget buys modest delay; at the paper's \
       log^2 n the attack budget is absorbed entirely.\n\n" n first.d_j;
    output_string out (Table.to_markdown tbl));
  let gstring_rows = List.filter_map (function Gstring_row r -> Some r | _ -> None) rows in
  if gstring_rows <> [] then begin
    let tbl = Table.create
        ~columns:
          [ ("gstring bits", Table.Left); ("adversary budget", Table.Right);
            ("bad quorums (worst completion)", Table.Right);
            ("gstring missing", Table.Right); ("agreed", Table.Right) ]
    in
    List.iter
      (fun (r : gstring_row) ->
        Table.add_row tbl
          [ r.label; Table.cell_int r.budget; Table.cell_float ~decimals:4 r.frac;
            Table.cell_int r.missing; Printf.sprintf "%.3f" r.agreed ])
      gstring_rows;
    Printf.fprintf out
      "\n### gstring-length sweep with adversarially completed gstring (Lemma 5's constant c, \
       n=%d, deliberately lax quorums)\n\nAt c=1 the adversary's bit share gives it almost no \
       completions to search; larger c buys it a bigger search space. Note the direction: with \
       {e hash-based} samplers the per-string bad-quorum probability is independent of c, so a \
       larger c cannot dilute the bad strings the way Lemma 5's counting argument (over an \
       existence-style sampler with O(n) bad inputs in the whole domain) requires — see \
       EXPERIMENTS.md for the discussion of this theory/practice gap. What protects the hash \
       instantiation is quorum sizing (sweep 1), not gstring length.\n\n" n;
    output_string out (Table.to_markdown tbl)
  end;
  let semantics_rows = List.filter_map (function Semantics_row r -> Some r | _ -> None) rows in
  if semantics_rows <> [] then begin
    let tbl = Table.create
        ~columns:
          [ ("variant", Table.Left); ("decided", Table.Right); ("agreed", Table.Right);
            ("p95 decision", Table.Right) ]
    in
    List.iter
      (fun (r : semantics_row) ->
        Table.add_row tbl
          [ r.label; Printf.sprintf "%.3f" r.decided; Printf.sprintf "%.3f" r.agreed;
            Table.cell_float r.p95 ])
      semantics_rows;
    Printf.fprintf out
      "\n### Message semantics and the re-poll extension (n=%d, byz=0.15, knowledgeable=0.70)\n\n\
       Literal dropping starves nodes whose quorum members decide late in a synchronous \
       schedule (substitution 6). The re-poll row uses deliberately undersized quorums \
       (per-run miss budget 0.5) to show attempts>1 recovering nodes whose first poll list \
       drew a Byzantine majority.\n\n" n;
    output_string out (Table.to_markdown tbl);
    Printf.fprintf out "\n"
  end;
  let adaptive_rows = List.filter_map (function Adaptive_row r -> Some r | _ -> None) rows in
  if adaptive_rows <> [] then begin
    let tbl = Table.create
        ~columns:
          [ ("corruption", Table.Left); ("victims denied gstring", Table.Right);
            ("other correct nodes agreed", Table.Right) ]
    in
    List.iter
      (fun (r : adaptive_row) ->
        Table.add_row tbl
          [ r.label; Table.cell_int r.denied; Printf.sprintf "%.3f" r.others_agreed ])
      adaptive_rows;
    Printf.fprintf out
      "\n### The non-adaptive assumption (n=%d, byz=%.2f, %d designated victims per run)\n\n\
       An adversary allowed to corrupt after seeing the public samplers seizes the victims' \
       Input Quorums I(gstring, v) with a sliver of its budget and denies them gstring \
       permanently — no quorum size fixes this, which is why the paper (after [LSP82]) \
       assumes corruption is chosen before the execution:\n\n" n adaptive_byz adaptive_victims;
    output_string out (Table.to_markdown tbl);
    Printf.fprintf out "\n"
  end

let run ?(jobs = 0) ?(full = false) ~out () =
  render ~full ~out (Sweep.cells ~jobs run_cell (grid ~full))
