let default_jobs () = Fba_stdx.Pool.recommended_jobs ()
let resolve_jobs j = if j > 0 then j else default_jobs ()
let cells ~jobs run_cell grid = Fba_stdx.Pool.map_list ~jobs:(resolve_jobs jobs) run_cell grid
