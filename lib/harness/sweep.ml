let default_jobs () = Fba_stdx.Pool.recommended_jobs ()
let resolve_jobs j = if j > 0 then j else default_jobs ()

(* Opt-in heartbeat: one stderr line per completed cell. Long grids
   (n-sweeps, robustness matrices) otherwise run for minutes with no
   sign of life. stderr only — experiment stdout stays byte-identical
   — and the completion counter is atomic because cells finish on
   arbitrary pool domains. *)
let progress_enabled () =
  match Sys.getenv_opt "FBA_PROGRESS" with None | Some "" | Some "0" -> false | Some _ -> true

let with_progress ~total run_cell =
  let done_ = Atomic.make 0 in
  fun cell ->
    let row = run_cell cell in
    let k = 1 + Atomic.fetch_and_add done_ 1 in
    (* The running delivery-plane high-water ({!Fba_sim.Batch.Peak} —
       engines note it at run end, across all domains): long grids show
       their memory ceiling live, not only post-mortem. *)
    Printf.eprintf "[sweep] %d/%d cells  (peak mailbox words %d)\n%!" k total
      (Fba_sim.Batch.Peak.get ());
    row

let cells ~jobs run_cell grid =
  let run_cell =
    if progress_enabled () then with_progress ~total:(List.length grid) run_cell else run_cell
  in
  Fba_stdx.Pool.map_list ~jobs:(resolve_jobs jobs) run_cell grid
