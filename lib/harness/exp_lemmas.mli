(** Experiment [lemmas] — empirical checks of the paper's Lemmas 3–10.

    - Lemma 3: push-phase communication is O(log n) messages per node
      (no node is overloaded by the sampler I);
    - Lemma 4: the candidate lists of correct nodes sum to O(n) even
      under push-flooding;
    - Lemma 5: every correct node has gstring in its candidate list
      w.h.p.;
    - Lemmas 6/8: polls are answered in O(1) rounds against a
      non-rushing adversary, and the rushing/asynchronous cornering
      adversary stretches that to a slowly growing (O(log n/log log n))
      tail;
    - Lemma 7: no correct node decides on anything but gstring;
    - Lemmas 9/10: end-to-end — constant rounds (sync non-rushing) and
      O~(n) total messages.

    Implements {!Experiment.S}. *)

val name : string

type cell
type row

val cell_size : cell -> int
(** The system size [n] of a cell — lets tests sweep a cheap subset of
    the grid (the jobs-invariance golden filters on it). *)

val grid : full:bool -> cell list
val run_cell : cell -> row
val render : full:bool -> out:out_channel -> row list -> unit
(** [render] tolerates subset grids: a section whose rows are absent
    is skipped entirely. *)

val run : ?jobs:int -> ?full:bool -> out:out_channel -> unit -> unit
(** [full] (default false) enlarges the size grid; [jobs] (default
    auto) shards grid cells across domains. *)
