(** Experiment [ablation] — the design-choice sweeps DESIGN.md calls
    out:

    - quorum size d: soundness (agreement) vs cost (bits), the
      "large enough constants" the paper's asymptotics hide;
    - pull filter (Algorithm 3's log² n cap): too small starves honest
      polls (down to total deadlock below the honest load), too large
      admits more Byzantine-triggered answer traffic;
    - gstring length c·log n: Lemma 5's union bound needs a large
      enough c once the adversary searches for bad strings;
    - buffering vs literal dropping of belief-mismatched messages
      (DESIGN.md substitution 6);
    - the re-poll extension (Section 5 "future work" flavoured):
      attempts > 1 rescues nodes whose poll list drew a Byzantine
      majority;
    - the non-adaptive-adversary assumption: adaptive quorum seizure
      denies designated victims gstring permanently.

    Implements {!Experiment.S}. *)

val name : string

type cell
type row

val grid : full:bool -> cell list
val run_cell : cell -> row
val render : full:bool -> out:out_channel -> row list -> unit

val run : ?jobs:int -> ?full:bool -> out:out_channel -> unit -> unit
(** [full] (default false) enlarges n; [jobs] (default auto) shards
    grid cells across domains. *)
