(** Execution helpers shared by all experiments: build a workload,
    run a protocol under an adversary, reduce to {!Obs.observation}
    plus protocol-specific gauges. *)

open Fba_core

type aer_setup = {
  byzantine_fraction : float;
  knowledgeable_fraction : float;
  junk : Scenario.junk;
  pull_filter : int option;  (** [None] = the paper's log² n default *)
  d_override : (int * int * int) option;  (** (d_i, d_h, d_j) if forced *)
  gstring_bits : int option;
  per_run_miss : float;
}

val default_setup : aer_setup
(** byz 0.10, knowledgeable 0.85, unique junk, defaults elsewhere. *)

val scenario_of_setup : aer_setup -> n:int -> seed:int64 -> Scenario.t
(** Auto-sizes quorums via {!Params.make_for} unless [d_override]. *)

type aer_run = {
  scenario : Scenario.t;
  obs : Obs.observation;
  push_max_messages : int;  (** Lemma 3 gauge: worst correct push fan-out *)
  candidate_sum : int;  (** Lemma 4 gauge: Σ|L_x| over correct nodes *)
  candidate_max : int;  (** load-balance gauge: the largest candidate list *)
  gstring_missing : int;  (** Lemma 5 gauge: correct nodes whose list lacks gstring *)
}

val run_aer_sync :
  ?mode:Fba_sim.Sync_engine.mode ->
  ?max_rounds:int ->
  ?events:Fba_sim.Events.sink ->
  ?phase_acc:Fba_sim.Events.Phase_acc.t ->
  adversary:(Scenario.t -> Fba_adversary.Aer_attacks.sync) ->
  Scenario.t ->
  aer_run
(** [events] traces the execution (engine traffic + protocol phase
    markers); [phase_acc] additionally attaches a per-phase accumulator
    to the sink (creating one if [events] was not given) and fills
    [obs.phases] with its rows. Omitting both keeps the run on the
    zero-allocation untraced path. *)

val run_aer_async :
  ?max_time:int ->
  ?events:Fba_sim.Events.sink ->
  ?phase_acc:Fba_sim.Events.Phase_acc.t ->
  adversary:(Scenario.t -> Fba_adversary.Aer_attacks.async) ->
  Scenario.t ->
  aer_run * float
(** Also returns the normalized round count (time / max_delay).
    [events]/[phase_acc] as in {!run_aer_sync}. *)

val run_aer_phases :
  ?mode:Fba_sim.Sync_engine.mode ->
  ?max_rounds:int ->
  adversary:(Scenario.t -> Fba_adversary.Aer_attacks.sync) ->
  Scenario.t ->
  aer_run * Fba_sim.Events.Phase_acc.t
(** {!run_aer_sync} with a fresh phase accumulator classifying message
    kinds via {!Fba_core.Aer.phase_of_kind}; returns the accumulator
    alongside the run (whose [obs.phases] is already filled). *)

val run_grid : Scenario.t -> Obs.observation
(** Grid baseline on the same workload (silent adversary — its
    vulnerability axis is load, not safety). *)

val run_naive : ?flood:bool -> Scenario.t -> Obs.observation * int
(** Naive baseline; also returns the worst per-node replies-sent count.
    [flood] (default false) turns on the query-flooding adversary. *)

val run_ks09 : ?flood:bool -> Scenario.t -> Obs.observation
(** The [KS09]-shaped random-push baseline; [flood] aims every
    Byzantine push budget at a few victims (receive-side hot spot). *)

val run_relay : Scenario.t -> Obs.observation
(** The committee-relay extension ({!Fba_extensions.Committee_relay})
    on the same workload — the load-balance/communication trade-off
    point of the paper's concluding open question. *)

val seeds : int -> int64 list
(** [seeds k] is [k] fixed distinct seeds, stable across runs. *)
