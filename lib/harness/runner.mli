(** Execution helpers shared by all experiments: build a workload,
    run a protocol under an adversary, reduce to {!Obs.observation}
    plus protocol-specific gauges. *)

open Fba_core

type aer_setup = {
  byzantine_fraction : float;
  knowledgeable_fraction : float;
  junk : Scenario.junk;
  pull_filter : int option;  (** [None] = the paper's log² n default *)
  d_override : (int * int * int) option;  (** (d_i, d_h, d_j) if forced *)
  gstring_bits : int option;
  per_run_miss : float;
  layout : Msg.Layout.choice;
      (** packed field widths ({!Fba_core.Msg.Layout.choose}):
          [Auto] (default) takes the narrow n ≤ 8192 fast path whenever
          it fits and the wide lane above, honouring [FBA_WIDE] *)
}

val default_setup : aer_setup
(** byz 0.10, knowledgeable 0.85, unique junk, [Auto] layout, defaults
    elsewhere. *)

val scenario_of_setup : ?intern:Intern.t -> aer_setup -> n:int -> seed:int64 -> Scenario.t
(** Auto-sizes quorums via {!Params.make_for} unless [d_override].
    [intern] hands in a previous scenario's interner for epoch reuse
    (instance streams, {!Service}): it is {!Intern.reset} to this
    scenario's layout caps and repopulated — ids are identical to a
    fresh interner's, so executions cannot tell the difference. *)

(** {1 Run configuration}

    One record carries every knob the run functions used to take as
    scattered optional arguments. Build variations with record update
    on {!default_config}:
    [{ Runner.default_config with mode = `Non_rushing }]. *)

type config = {
  mode : Fba_sim.Sync_engine.mode;  (** sync engines; default [`Rushing] *)
  max_rounds : int;  (** sync round cap; default 300 *)
  max_time : int;  (** async time cap; default 4000 *)
  events : Fba_sim.Events.sink option;
      (** trace sink (engine traffic + protocol phase markers);
          [None] keeps the zero-allocation untraced path *)
  phase_acc : Fba_sim.Events.Phase_acc.t option;
      (** per-phase accumulator, attached to [events] (a sink is
          created if [events] is [None]); fills [obs.phases] *)
  prof : Fba_sim.Prof.t option;
      (** run profiler threaded into every engine run; [None] (default)
          keeps the zero-work unprofiled path. The engine re-arms the
          profiler at run start ({!Fba_sim.Prof.start}), so one [Prof.t]
          can be reused across runs — it always holds the last run. *)
  flood : bool;
      (** attackable baselines ({!naive}, {!ks09}): [false] (default)
          = silent adversary on both, [true] = the protocol's worst
          flooding strategy. Replaces the old per-function [?flood]
          optionals, whose defaults were easy to drift apart. *)
  net : Fba_sim.Net.spec;
      (** network-condition layer threaded into every engine run.
          [Reliable] (default) is the paper's model and is
          byte-identical to the pre-layer engines; anything else is an
          off-model robustness condition (see {!Fba_sim.Net} and
          {!Exp_robustness}). *)
  compile : bool;
      (** lower the scenario into flat dispatch tables
          ({!Fba_core.Compiled}) before the run. Default: on unless the
          [FBA_NO_COMPILE] environment variable is set. On or off the
          execution is byte-identical (the compiled plane only replaces
          the lookup machinery); the switch exists for the parity
          harness and for A/B perf measurements. *)
  stream : bool;
      (** chunked streamed delivery plane (segment arenas recycled
          within a round) instead of the historical double-buffered
          mailbox lanes. Default: on unless [FBA_NO_STREAM] is set.
          On or off the execution is byte-identical — only peak memory
          changes; the switch exists for the parity harness and A/B
          memory measurements. *)
}

val default_config : config

type aer_run = {
  scenario : Scenario.t;
  obs : Obs.observation;
  metrics : Fba_sim.Metrics.t;
      (** the raw engine metrics behind [obs] — {!Telemetry.of_aer_run}
          reads per-node distributions from here *)
  push_max_messages : int;  (** Lemma 3 gauge: worst correct push fan-out *)
  candidate_sum : int;  (** Lemma 4 gauge: Σ|L_x| over correct nodes *)
  candidate_max : int;  (** load-balance gauge: the largest candidate list *)
  gstring_missing : int;  (** Lemma 5 gauge: correct nodes whose list lacks gstring *)
}

val aer_sync :
  ?config:config ->
  adversary:(Scenario.t -> Fba_adversary.Aer_attacks.sync) ->
  Scenario.t ->
  aer_run
(** AER on the synchronous engine. Uses [config.mode], [max_rounds],
    [events], [phase_acc]. *)

val aer_async :
  ?config:config ->
  adversary:(Scenario.t -> Fba_adversary.Aer_attacks.async) ->
  Scenario.t ->
  aer_run * float
(** AER on the asynchronous engine; also returns the normalized round
    count (time / max_delay). Uses [config.max_time], [events],
    [phase_acc]. *)

val aer_phases :
  ?config:config ->
  adversary:(Scenario.t -> Fba_adversary.Aer_attacks.sync) ->
  Scenario.t ->
  aer_run * Fba_sim.Events.Phase_acc.t
(** {!aer_sync} with a fresh phase accumulator classifying message
    kinds via {!Fba_core.Aer.phase_of_kind} (overriding
    [config.phase_acc]); returns the accumulator alongside the run
    (whose [obs.phases] is already filled). *)

val run_grid : ?config:config -> Scenario.t -> Obs.observation
(** Grid baseline on the same workload (silent adversary — its
    vulnerability axis is load, not safety). Uses [config.net]. *)

val naive : ?config:config -> Scenario.t -> Obs.observation * int
(** Naive baseline; also returns the worst per-node replies-sent
    count. [config.flood] selects the query-flooding adversary. *)

val ks09 : ?config:config -> Scenario.t -> Obs.observation
(** The [KS09]-shaped random-push baseline; [config.flood] aims every
    Byzantine push budget at a few victims (receive-side hot spot). *)

val run_relay : ?config:config -> Scenario.t -> Obs.observation
(** The committee-relay extension ({!Fba_extensions.Committee_relay})
    on the same workload — the load-balance/communication trade-off
    point of the paper's concluding open question. Uses [config.net]. *)

val seeds : int -> int64 list
(** [seeds k] is [k] fixed distinct seeds, stable across runs. Grid
    cells derive their per-run randomness from these, which is what
    makes cell-wise parallel sweeps ({!Sweep}) deterministic. *)
