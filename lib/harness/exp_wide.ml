open Fba_stdx
module Attacks = Fba_adversary.Aer_attacks
module Layout = Fba_core.Msg.Layout

(* Populations strictly above the narrow plane's n = 8192 ceiling:
   every cell here runs on the wide layout, and the interesting
   comparison is how the three protocol families scale once quorum
   polylogs are genuinely small against n. Even the default grid is
   batch work (tens of minutes per AER cell on one core — see
   EXPERIMENTS.md "Sweep ceilings"); --full is sharded-cluster scale. *)
let default_sizes full = if full then [ 32768; 65536; 131072; 262144 ] else [ 16384; 32768 ]

(* FBA_WIDE_SWEEP_SIZES="16384,32768" substitutes the size grid — the
   ci smoke knob (the default grid is minutes of wall clock; ci wants
   seconds). The env var is read once per process, so sharded sweeps
   still see one consistent grid. *)
let sizes full =
  match Sys.getenv_opt "FBA_WIDE_SWEEP_SIZES" with
  | Some spec when spec <> "" ->
    List.map
      (fun tok ->
        match int_of_string_opt (String.trim tok) with
        | Some n when n >= 4 -> n
        | _ -> invalid_arg "FBA_WIDE_SWEEP_SIZES: comma-separated populations >= 4")
      (String.split_on_char ',' spec)
  | _ -> default_sizes full

let seed_count full = if full then 3 else 2

(* Unique junk is infeasible up here — n/7 distinct strings would blow
   any sid field that still leaves room for node ids. A handful of
   shared junk strings keeps the sid field narrow (the realistic
   regime: adversarial noise is cheap to generate but not unbounded in
   variety) while every protocol still faces non-gstring candidates. *)
let wide_setup =
  { Runner.default_setup with Runner.junk = Fba_core.Scenario.Junk_shared 8 }

type variant = Aer | Grid | Naive

let variant_name = function
  | Aer -> "AER sync rushing"
  | Grid -> "grid (KLST11-like)"
  | Naive -> "naive everyone-asks"

type cell = { variant : variant; n : int; seeds : int64 list }

type row = {
  variant : variant;
  n : int;
  id_bits : int;  (* the layout lane the runs used; narrow is 13 *)
  mean_time : float;
  mean_bits : float;
  mean_max_sent : float;
  mean_agreed : float;
}

let name = "wide"

let grid ~full =
  let seeds = Runner.seeds (seed_count full) in
  List.concat_map
    (fun variant -> List.map (fun n -> { variant; n; seeds }) (sizes full))
    [ Aer; Grid; Naive ]

let run_variant variant sc =
  match variant with
  | Aer ->
    let r = Runner.aer_sync ~adversary:(fun sc -> Attacks.cornering sc) sc in
    r.Runner.obs
  | Grid -> Runner.run_grid sc
  | Naive -> fst (Runner.naive sc)

let run_cell { variant; n; seeds } =
  let scs = List.map (fun seed -> Runner.scenario_of_setup wide_setup ~n ~seed) seeds in
  let id_bits =
    (List.hd scs).Fba_core.Scenario.layout.Layout.id_bits
  in
  let obs = List.map (run_variant variant) scs in
  let s = Obs.aggregate obs in
  {
    variant;
    n;
    id_bits;
    mean_time = s.Obs.mean_p95_decision;
    mean_bits = s.Obs.mean_bits_per_node;
    mean_max_sent = s.Obs.mean_max_sent;
    mean_agreed = s.Obs.mean_agreed;
  }

let render ~full:_ ~out rows =
  let ns =
    List.sort_uniq compare (List.map (fun r -> r.n) rows)
  in
  let series = Hashtbl.create 16 in
  let tbl =
    Table.create
      ~columns:
        [
          ("protocol", Table.Left); ("n", Table.Right); ("layout", Table.Right);
          ("time", Table.Right); ("bits/node", Table.Right);
          ("max-node bits", Table.Right); ("agreed", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Hashtbl.replace series (r.variant, r.n) r;
      Table.add_row tbl
        [
          variant_name r.variant; Table.cell_int r.n;
          Printf.sprintf "wide/%d" r.id_bits; Table.cell_float r.mean_time;
          Table.cell_float ~decimals:0 r.mean_bits;
          Table.cell_float ~decimals:0 r.mean_max_sent;
          Printf.sprintf "%.3f" r.mean_agreed;
        ])
    rows;
  Printf.fprintf out "## Wide-plane sweep — Figure 1(a) beyond the n = 8192 ceiling\n\n";
  Printf.fprintf out
    "### Measurements (byz=%.2f, knowledgeable=%.2f, shared junk, cornering adversary on AER)\n\n"
    wide_setup.Runner.byzantine_fraction wide_setup.Runner.knowledgeable_fraction;
  output_string out (Table.to_markdown tbl);
  (* Crossover analysis: per-size bits/node ratios against AER, and
     fitted power exponents over whatever sizes the rows cover. *)
  let covered v = List.for_all (fun n -> Hashtbl.mem series (v, n)) ns in
  if List.length ns >= 2 && List.for_all covered [ Aer; Grid; Naive ] then begin
    let ratio = Table.create
        ~columns:
          [ ("n", Table.Right); ("grid/AER bits", Table.Right);
            ("naive/AER bits", Table.Right) ]
    in
    List.iter
      (fun n ->
        let b v = (Hashtbl.find series (v, n)).mean_bits in
        Table.add_row ratio
          [ Table.cell_int n; Table.cell_float (b Grid /. b Aer);
            Table.cell_float (b Naive /. b Aer) ])
      ns;
    Printf.fprintf out
      "\n### Crossover (bits/node relative to AER)\n\n\
       The paper's Figure 1(a) ordering at scale: AER pays polylog bits per node (with a \
       large d_h^2*d_j constant from the Fw1 fan-out), the grid pays O~(sqrt n). Ratios \
       below 1 mean AER's constants still dominate at this n; the crossover is where the \
       grid/AER ratio reaches 1, and the trend toward it must be monotone in n. The naive \
       baseline is cheap under a silent adversary — its Figure 1(a) axis is the flooded \
       receive hot spot (see the fig1a load-balance section), not bits:\n\n";
    output_string out (Table.to_markdown ratio);
    let exponent v =
      Stats.Growth.power_exponent
        (Array.of_list
           (List.map (fun n -> (n, (Hashtbl.find series (v, n)).mean_bits)) ns))
    in
    Printf.fprintf out
      "\nFitted bits/node power exponents over this grid: AER %.2f (paper: polylog, \
       exponent -> 0 as n grows), grid %.2f (paper: 0.5 up to polylog), naive %.2f \
       (polylog query fan-out under a silent adversary).\n"
      (exponent Aer) (exponent Grid) (exponent Naive)
  end

let run ?(jobs = 0) ?(full = false) ~out () =
  render ~full ~out (Sweep.cells ~jobs run_cell (grid ~full))
