open Fba_stdx
module Attacks = Fba_adversary.Aer_attacks

let sizes full = if full then [ 128; 256; 512; 1024 ] else [ 64; 128; 256 ]
let seed_count full = if full then 3 else 2

type variant = Grid | Aer_snr | Aer_sr | Aer_async

let variant_name = function
  | Grid -> "grid (KLST11-like)"
  | Aer_snr -> "AER sync non-rushing"
  | Aer_sr -> "AER sync rushing"
  | Aer_async -> "AER async"

(* Load-balance section: the paper's "AER is not load-balanced" claim
   needs quorums sized below the safe regime, forced explicitly. *)
let lb_setup =
  { Runner.default_setup with
    Runner.byzantine_fraction = 0.25;
    knowledgeable_fraction = 0.70;
    d_override = Some (14, 14, 14) }

type cell =
  | Main of { variant : variant; n : int; seeds : int64 list }
  | Lb_aer of { label : string; capture : bool; n : int; seeds : int64 list }
  | Lb_ks09 of { label : string; flood : bool; n : int; seeds : int64 list }
  | Lb_relay of { n : int; seeds : int64 list }

type main_row = {
  variant : variant;
  n : int;
  mean_time : float;
  mean_bits : float;
  mean_max_sent : float;
  mean_imbalance : float;
  mean_agreed : float;
  model_pred : float option;  (* AER SNR only: uncalibrated d_h^2 * d_j * msg_bits *)
}

type lb_aer_row = {
  label : string;
  n : int;
  mean_lx : float;
  max_lx : int;
  mean_max_sent : float;
  mean_agreed : float;
}

type lb_ks09_row = { label : string; n : int; max_recv : int; mean_agreed : float }
type lb_relay_row = { n : int; mean_max_sent : float; mean_agreed : float }

type row =
  | Main_row of main_row
  | Lb_aer_row of lb_aer_row
  | Lb_ks09_row of lb_ks09_row
  | Lb_relay_row of lb_relay_row

let name = "fig1a"

let grid ~full =
  let seeds = Runner.seeds (seed_count full) in
  let main =
    List.concat_map
      (fun variant -> List.map (fun n -> Main { variant; n; seeds }) (sizes full))
      [ Grid; Aer_snr; Aer_sr; Aer_async ]
  in
  let lb =
    List.concat_map
      (fun n ->
        [
          Lb_aer { label = "AER, silent adversary"; capture = false; n; seeds };
          Lb_aer { label = "AER, quorum-capture"; capture = true; n; seeds };
          Lb_ks09 { label = "KS09-like push, silent"; flood = false; n; seeds };
          Lb_ks09 { label = "KS09-like push, flooded"; flood = true; n; seeds };
          Lb_relay { n; seeds };
        ])
      (sizes full)
  in
  main @ lb

let run_variant variant ~n ~seed =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
  match variant with
  | Grid -> (Runner.run_grid sc, None)
  | Aer_snr ->
    let config = { Runner.default_config with Runner.mode = `Non_rushing } in
    let r = Runner.aer_sync ~config ~adversary:(fun sc -> Attacks.cornering sc) sc in
    (r.Runner.obs, None)
  | Aer_sr ->
    let r = Runner.aer_sync ~adversary:(fun sc -> Attacks.cornering sc) sc in
    (r.Runner.obs, None)
  | Aer_async ->
    let r, norm = Runner.aer_async ~adversary:(fun sc -> Attacks.async_cornering sc) sc in
    (r.Runner.obs, Some norm)

(* Time metric: the 95th-percentile decision round among correct nodes
   (robust against the rare sized-out quorum miss that leaves a single
   node undecided), normalized for the async engine so rounds are
   comparable across engines. *)
let time_of (obs : Obs.observation) norm =
  let raw = obs.Obs.p95_decision_round in
  match norm with
  | Some normalized when obs.Obs.rounds > 0 ->
    raw *. normalized /. float_of_int obs.Obs.rounds
  | _ -> raw

(* Model check input: AER's traffic is dominated by the Fw1 fan-out,
   predicted per node as d_h^2 * d_j * (message bits). *)
let model_prediction ~n =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed:1L in
  let p = sc.Fba_core.Scenario.params in
  let msg_bits =
    float_of_int
      Fba_core.Params.(p.gstring_bits + label_bits + (3 * Fba_core.Params.id_bits p))
  in
  float_of_int Fba_core.Params.(p.d_h * p.d_h * p.d_j) *. msg_bits

let run_cell = function
  | Main { variant; n; seeds } ->
    let per_seed = List.map (fun seed -> run_variant variant ~n ~seed) seeds in
    let obs_list = List.map fst per_seed in
    let s = Obs.aggregate obs_list in
    let times = List.map (fun (o, norm) -> time_of o norm) per_seed in
    Main_row
      {
        variant;
        n;
        mean_time = Stats.mean (Array.of_list times);
        mean_bits = s.Obs.mean_bits_per_node;
        mean_max_sent = s.Obs.mean_max_sent;
        mean_imbalance = s.Obs.mean_imbalance;
        mean_agreed = s.Obs.mean_agreed;
        model_pred = (if variant = Aer_snr then Some (model_prediction ~n) else None);
      }
  | Lb_aer { label; capture; n; seeds } ->
    let adv sc = if capture then Attacks.quorum_capture sc else Attacks.silent sc in
    let runs =
      List.map
        (fun seed -> Runner.aer_sync ~adversary:adv (Runner.scenario_of_setup lb_setup ~n ~seed))
        seeds
    in
    let s = Obs.aggregate (List.map (fun r -> r.Runner.obs) runs) in
    let mean_lx =
      Stats.mean
        (Array.of_list
           (List.map
              (fun r ->
                float_of_int r.Runner.candidate_sum
                /. float_of_int (Fba_core.Scenario.correct_count r.Runner.scenario))
              runs))
    in
    let max_lx = List.fold_left (fun acc r -> max acc r.Runner.candidate_max) 0 runs in
    Lb_aer_row
      {
        label;
        n;
        mean_lx;
        max_lx;
        mean_max_sent = s.Obs.mean_max_sent;
        mean_agreed = s.Obs.mean_agreed;
      }
  | Lb_ks09 { label; flood; n; seeds } ->
    (* The flood makes chosen victims' receive load explode — the hot
       spot AER's membership filter removes. *)
    let config = { Runner.default_config with Runner.flood } in
    let obs =
      List.map
        (fun seed -> Runner.ks09 ~config (Runner.scenario_of_setup lb_setup ~n ~seed))
        seeds
    in
    let s = Obs.aggregate obs in
    let max_recv =
      List.fold_left (fun acc (o : Obs.observation) -> max acc o.Obs.max_recv_bits) 0 obs
    in
    Lb_ks09_row { label; n; max_recv; mean_agreed = s.Obs.mean_agreed }
  | Lb_relay { n; seeds } ->
    (* The committee-relay extension: same workload, deterministic
       Θ~(√n) maximum load regardless of the adversary (its only
       traffic is pushed along a fixed public assignment). *)
    let relay_obs =
      List.map (fun seed -> Runner.run_relay (Runner.scenario_of_setup lb_setup ~n ~seed)) seeds
    in
    let sr = Obs.aggregate relay_obs in
    Lb_relay_row { n; mean_max_sent = sr.Obs.mean_max_sent; mean_agreed = sr.Obs.mean_agreed }

let render ~full ~out rows =
  let measurements = Table.create
      ~columns:
        [
          ("protocol", Table.Left); ("n", Table.Right); ("time", Table.Right);
          ("bits/node", Table.Right); ("max-node bits", Table.Right);
          ("imbalance", Table.Right); ("agreed", Table.Right);
        ]
  in
  (* (variant, n) -> (mean time, mean bits, mean imbalance) *)
  let series = Hashtbl.create 16 in
  List.iter
    (fun (r : _) ->
      match r with
      | Main_row m ->
        Hashtbl.add series (m.variant, m.n) (m.mean_time, m.mean_bits, m.mean_imbalance);
        Table.add_row measurements
          [
            variant_name m.variant; Table.cell_int m.n; Table.cell_float m.mean_time;
            Table.cell_float ~decimals:0 m.mean_bits;
            Table.cell_float ~decimals:0 m.mean_max_sent;
            Table.cell_float m.mean_imbalance;
            Printf.sprintf "%.3f" m.mean_agreed;
          ]
      | _ -> ())
    rows;
  Printf.fprintf out "## Figure 1(a) — almost-everywhere to everywhere protocols\n\n";
  Printf.fprintf out "### Measurements (byz=%.2f, knowledgeable=%.2f, cornering adversary)\n\n"
    Runner.default_setup.Runner.byzantine_fraction
    Runner.default_setup.Runner.knowledgeable_fraction;
  output_string out (Table.to_markdown measurements);
  (* Growth-class reproduction table; needs the whole size grid, so
     only rendered when the rows cover it (subset grids skip it). *)
  let covered variant =
    List.for_all (fun n -> Hashtbl.mem series (variant, n)) (sizes full)
  in
  if List.for_all covered [ Grid; Aer_snr; Aer_async ] then begin
    let growth variant pick =
      let pts =
        List.map (fun n -> let v = Hashtbl.find series (variant, n) in (n, pick v)) (sizes full)
      in
      Stats.Growth.classify (Array.of_list pts)
    in
    let fst3 (a, _, _) = a and snd3 (_, b, _) = b and thd3 (_, _, c) = c in
    let balanced variant =
      let worst =
        List.fold_left (fun acc n -> max acc (thd3 (Hashtbl.find series (variant, n)))) 0.0
          (sizes full)
      in
      if worst < 4.0 then "Yes" else "No"
    in
    let repro = Table.create
        ~columns:
          [
            ("", Table.Left); ("[KLST11] (paper)", Table.Left); ("grid (ours)", Table.Left);
            ("AER SNR (paper)", Table.Left); ("AER SNR (ours)", Table.Left);
            ("AER async (paper)", Table.Left); ("AER async (ours)", Table.Left);
          ]
    in
    let gs v p = Stats.Growth.to_string (growth v p) in
    Table.add_row repro
      [
        "Time"; "O(log^2 n)"; gs Grid (fun v -> fst3 v +. 1.0);
        "O(1)"; gs Aer_snr (fun v -> fst3 v +. 1.0);
        "O(log n/log log n)"; gs Aer_async (fun v -> fst3 v +. 1.0);
      ];
    Table.add_row repro
      [
        "Bits"; "O~(sqrt n)"; gs Grid snd3;
        "O(log^2 n)"; gs Aer_snr snd3;
        "O(log^2 n)"; gs Aer_async snd3;
      ];
    Table.add_row repro
      [
        "Load-balanced"; "Yes"; balanced Grid;
        "No"; balanced Aer_snr;
        "No"; balanced Aer_async;
      ];
    Printf.fprintf out "\n### Reproduction vs paper (growth classes fitted over the size grid)\n\n";
    output_string out (Table.to_markdown repro);
    let bits_exp v = Stats.Growth.power_exponent
        (Array.of_list (List.map (fun n -> (n, snd3 (Hashtbl.find series (v, n)))) (sizes full)))
    in
    Printf.fprintf out
      "\nFitted bits/node power exponents: grid %.2f (paper: 0.5 up to polylog), AER SNR %.2f, \
       AER async %.2f (paper: polylog, i.e. exponent -> 0 as n grows; at these n a log^k fit \
       retains a positive apparent exponent — see EXPERIMENTS.md).\n\n"
      (bits_exp Grid) (bits_exp Aer_snr) (bits_exp Aer_async);
    (* Model check, calibrated at the smallest size. *)
    let model = Table.create
        ~columns:
          [ ("n", Table.Right); ("measured bits/node", Table.Right);
            ("model C*dh^2*dj*msgbits", Table.Right); ("ratio", Table.Right) ]
    in
    let prediction n =
      let found =
        List.fold_left
          (fun acc r ->
            match r with
            | Main_row { variant = Aer_snr; n = n'; model_pred = Some p; _ } when n' = n ->
              Some p
            | _ -> acc)
          None rows
      in
      match found with Some p -> p | None -> model_prediction ~n
    in
    let n0 = List.hd (sizes full) in
    let measured n = snd3 (Hashtbl.find series (Aer_snr, n)) in
    let calib = measured n0 /. prediction n0 in
    List.iter
      (fun n ->
        let pred = calib *. prediction n in
        Table.add_row model
          [ Table.cell_int n; Table.cell_float ~decimals:0 (measured n);
            Table.cell_float ~decimals:0 pred; Table.cell_float (measured n /. pred) ])
      (sizes full);
    Printf.fprintf out
      "### AER bits/node vs the d_h^2*d_j analytical model (calibrated at n=%d)\n\n" n0;
    output_string out (Table.to_markdown model)
  end;
  (* Load balance under attack. *)
  let lb = Table.create
      ~columns:
        [ ("variant", Table.Left); ("n", Table.Right); ("mean |Lx|", Table.Right);
          ("max |Lx|", Table.Right); ("max-node bits", Table.Right); ("agreed", Table.Right) ]
  in
  let lb_seen = ref false in
  List.iter
    (function
      | Main_row _ -> ()
      | Lb_aer_row r ->
        lb_seen := true;
        Table.add_row lb
          [ r.label; Table.cell_int r.n; Table.cell_float r.mean_lx; Table.cell_int r.max_lx;
            Table.cell_float ~decimals:0 r.mean_max_sent;
            Printf.sprintf "%.3f" r.mean_agreed ]
      | Lb_ks09_row r ->
        lb_seen := true;
        Table.add_row lb
          [ r.label; Table.cell_int r.n; "-"; "-";
            Printf.sprintf "%d recv" r.max_recv; Printf.sprintf "%.3f" r.mean_agreed ]
      | Lb_relay_row r ->
        lb_seen := true;
        Table.add_row lb
          [ "committee-relay (Sec. 5 ext.)"; Table.cell_int r.n; "-"; "-";
            Table.cell_float ~decimals:0 r.mean_max_sent;
            Printf.sprintf "%.3f" r.mean_agreed ])
    rows;
  if !lb_seen then begin
    Printf.fprintf out
      "\n### Load balance under Input-Quorum capture (byz=0.25, quorums forced small, d=14)\n\n\
       The paper (Section 1): the adversary \"can seize control of several Input Quorums, \
       associated to a few nodes, and force these nodes to verify an almost-linear number of \
       strings: as such, AER is not load-balanced.\" The victims' candidate lists |Lx| below \
       grow with n while the mean stays constant:\n\n";
    output_string out (Table.to_markdown lb);
    Printf.fprintf out "\n"
  end

let run ?(jobs = 0) ?(full = false) ~out () =
  render ~full ~out (Sweep.cells ~jobs run_cell (grid ~full))
