open Fba_stdx

type observation = {
  n : int;
  rounds : int;
  decided_fraction : float;
  agreed_fraction : float;
  wrong_decisions : int;
  max_decision_round : int option;
  p95_decision_round : float;
  bits_per_node : float;
  msgs_per_node : float;
  total_bits_all : int;
  max_sent_bits : int;
  max_recv_bits : int;
  load_imbalance : float;
  phases : Fba_sim.Events.Phase_acc.row list;
}

let plurality_reference outputs corrupted =
  let counts = Hashtbl.create 8 in
  Array.iteri
    (fun i o ->
      match o with
      | Some v when not (Bitset.mem corrupted i) ->
        Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
      | _ -> ())
    outputs;
  Hashtbl.fold
    (fun v c best -> match best with Some (_, bc) when c <= bc -> best | _ -> Some (v, c))
    counts None
  |> Option.map fst

let of_metrics ?(phases = []) ~metrics ~outputs ~reference () =
  let n = Fba_sim.Metrics.n metrics in
  let corrupted = Fba_sim.Metrics.corrupted metrics in
  let reference =
    match reference with Some r -> Some r | None -> plurality_reference outputs corrupted
  in
  let correct = ref 0 and decided = ref 0 and agreed = ref 0 and wrong = ref 0 in
  let decision_rounds = ref [] in
  for i = 0 to n - 1 do
    if not (Bitset.mem corrupted i) then begin
      incr correct;
      match outputs.(i) with
      | None -> ()
      | Some v ->
        incr decided;
        (match Fba_sim.Metrics.decision_round metrics i with
        | Some r -> decision_rounds := float_of_int r :: !decision_rounds
        | None -> ());
        if reference = Some v then incr agreed else incr wrong
    end
  done;
  (* [max 1] guards keep every fraction 0. (not NaN) when the correct
     set is empty — metrics over a fully corrupted execution must stay
     aggregatable. *)
  let correct_f = float_of_int (max 1 !correct) in
  let dr = Array.of_list !decision_rounds in
  {
    n;
    rounds = Fba_sim.Metrics.rounds metrics;
    decided_fraction = float_of_int !decided /. correct_f;
    agreed_fraction = float_of_int !agreed /. correct_f;
    wrong_decisions = !wrong;
    max_decision_round = Fba_sim.Metrics.max_decision_round_correct metrics;
    p95_decision_round = (if Array.length dr = 0 then 0.0 else Stats.percentile dr 95.0);
    bits_per_node = Fba_sim.Metrics.amortized_bits metrics;
    msgs_per_node =
      float_of_int (Fba_sim.Metrics.total_messages_correct metrics) /. float_of_int (max 1 n);
    total_bits_all = Fba_sim.Metrics.total_bits_all metrics;
    max_sent_bits = Fba_sim.Metrics.max_sent_bits_correct metrics;
    max_recv_bits = Fba_sim.Metrics.max_recv_bits_correct metrics;
    load_imbalance = Fba_sim.Metrics.load_imbalance metrics;
    phases;
  }

type summary = {
  s_n : int;
  runs : int;
  mean_rounds : float;
  mean_bits_per_node : float;
  mean_max_sent : float;
  mean_imbalance : float;
  mean_decided : float;
  mean_agreed : float;
  total_wrong : int;
  mean_p95_decision : float;
  worst_decision_round : int option;
}

let aggregate = function
  | [] -> invalid_arg "Obs.aggregate: empty"
  | first :: _ as obs ->
    List.iter
      (fun o -> if o.n <> first.n then invalid_arg "Obs.aggregate: mixed system sizes")
      obs;
    let fmean f = Stats.mean (Array.of_list (List.map f obs)) in
    let worst =
      List.fold_left
        (fun acc o ->
          match (acc, o.max_decision_round) with
          | Some a, Some b -> Some (max a b)
          | _ -> None)
        (Some 0) obs
    in
    {
      s_n = first.n;
      runs = List.length obs;
      mean_rounds = fmean (fun o -> float_of_int o.rounds);
      mean_bits_per_node = fmean (fun o -> o.bits_per_node);
      mean_max_sent = fmean (fun o -> float_of_int o.max_sent_bits);
      mean_imbalance = fmean (fun o -> o.load_imbalance);
      mean_decided = fmean (fun o -> o.decided_fraction);
      mean_agreed = fmean (fun o -> o.agreed_fraction);
      total_wrong = List.fold_left (fun acc o -> acc + o.wrong_decisions) 0 obs;
      mean_p95_decision = fmean (fun o -> o.p95_decision_round);
      worst_decision_round = worst;
    }
