(** Agreement as a service: a long-lived instance stream.

    Executes many BA instances over one fixed population size, reusing
    every piece of per-run storage from instance to instance instead
    of reallocating it — the interner ({!Fba_core.Intern.reset}),
    quorum caches and push plan ({!Fba_samplers.Cache.reset},
    {!Fba_samplers.Push_plan.reset}), compile scratch
    ({!Fba_core.Compiled.builder}) and the engine's delivery storage
    ({!Fba_sim.Engine_core.Mailbox.reset}), all chained through
    {!Fba_core.Aer.config_epoch}.

    {b Seeding discipline.} Instance [k] runs the scenario
    [Runner.scenario_of_setup setup ~n ~seed:(instance_seed stream_seed
    k)] — the same construction as a fresh one-shot run, so per-instance
    executions (message counters, decision rounds, fingerprints) are
    byte-identical to {!Runner.aer_sync} on that scenario, for every
    pipeline width and every [jobs] value. Epoch reuse is storage-only.

    {b Pipelining.} Each worker domain drives [width] lanes through a
    round-robin scheduler: [width] instances are concurrently open,
    each advancing one engine round per pass. Width changes latency
    (an instance's wall-clock includes the rounds of its lane-mates),
    never results.

    {b Sharding.} [jobs] domains each own a contiguous block of the
    instance index space and a private set of lanes
    ({!Fba_stdx.Pool}); [jobs <= 1] runs inline. *)

open Fba_core

val instance_seed : int64 -> int -> int64
(** [instance_seed stream_seed k] is the scenario seed of instance [k]
    — hash-derived, independent of width, jobs, and completion order.
    Exposed so benchmarks and tests can replay any instance as a
    one-shot {!Runner} run. *)

val fingerprint : Fba_sim.Metrics.t -> int64
(** The determinism-golden folding of a run's metrics: every node's
    sent/received message and bit counters plus its decision round,
    then the round count. Equal fingerprints mean the executions are
    indistinguishable through the metrics plane. *)

(** {1 Stream configuration} *)

type stream = {
  setup : Runner.aer_setup;  (** per-instance scenario shape *)
  config : Runner.config;
      (** run knobs; [mode], [max_rounds], [net], [compile] and
          [stream] are honoured. [events], [phase_acc] and [prof] are
          ignored — concurrently open instances would interleave a
          shared sink; trace one instance with {!Runner.aer_sync}
          instead. *)
  n : int;  (** population size of every instance *)
  stream_seed : int64;  (** root of the per-instance seed schedule *)
  instances : int;  (** number of instances to execute *)
  width : int;  (** concurrently open instances per domain (>= 1) *)
  jobs : int;  (** worker domains; 0 = auto ({!Sweep.resolve_jobs}) *)
}

val default_stream : stream
(** n 128, 256 instances, width 4, jobs 1, stream seed 42,
    {!Runner.default_setup} / {!Runner.default_config}. *)

(** {1 Results} *)

type instance_result = {
  index : int;
  seed : int64;  (** = [instance_seed stream_seed index] *)
  fingerprint : int64;  (** {!fingerprint} of the instance's metrics *)
  rounds_used : int;
  decided : int;  (** nodes that decided *)
  agreed : bool;  (** every decision equals the instance's gstring *)
  latency_ns : int;
      (** open-to-finish wall-clock, including the rounds of lane
          mates interleaved with this instance (pipelined latency) *)
}

type summary = {
  results : instance_result array;  (** in instance-index order *)
  n : int;
  instances : int;
  elapsed_ns : int;
  instances_per_sec : float;
  p50_instance_latency_ns : int;
      (** µs-resolution percentile of [latency_ns], reported in ns *)
  p99_instance_latency_ns : int;
}

val run :
  ?stream:stream ->
  adversary:(Scenario.t -> Fba_adversary.Aer_attacks.sync) ->
  unit ->
  summary
(** Execute the stream. Everything in [results] except [latency_ns]
    is deterministic (identical across width/jobs); the throughput
    and latency fields are wall-clock. When [FBA_PROGRESS] is set
    (non-empty, not ["0"]) a heartbeat line
    [\[service\] k/N instances, X inst/s] is printed to {e stderr}
    per completed instance — stdout stays byte-identical. *)

val pp_trace : out_channel -> summary -> unit
(** Print the deterministic face of a summary — one line per instance
    (seed, fingerprint, rounds, decisions) — used by [fba service] and
    the CI parity smoke ([--jobs 2] vs [--jobs 1] must byte-diff
    clean). *)
