(** Run-level telemetry: one versioned JSON document per run.

    {!Obs} reduces an engine run for the experiment tables;
    {!Fba_sim.Metrics} holds the raw per-node accounting; the
    {!Fba_sim.Events} pipeline attributes bits per phase; and
    {!Fba_sim.Prof} attributes wall-clock and allocation. This module
    is the export seam that merges all four into a single flat
    document with a stable schema, for dashboards and offline
    regression tooling:

    {v
    {"telemetry_version": 1,
     "counters": {"n": 128, "rounds": 24, ...},
     "gauges":   {"agreed_fraction": 1.0, ...},
     "dists":    {"decision_round": {"count":..,"p50":..,"p95":..,"p99":..,"max":..}, ...},
     "phases":   [{"phase":"push", ...}, ...],
     "prof":     {"rounds":..,"total_wall_ns":..,"total_alloc_words":..,"slots":[...]} | null}
    v}

    Key order is fixed and every byte is ASCII ({!Fba_sim.Events.Jsonl}
    escaping), so documents are golden-testable and safe to embed in
    logs. Degenerate runs (no decisions) export [null] percentiles via
    {!Fba_stdx.Histogram.percentile_opt} rather than crashing. *)

type dist = {
  count : int;
  p50 : int option;  (** [None] on an empty distribution *)
  p95 : int option;
  p99 : int option;
  max : int option;
}

val dist_of_histogram : Fba_stdx.Histogram.t -> dist

type t

val create : unit -> t

val counter : t -> string -> int -> unit
(** Set integer metric [name]. First set fixes the position in the
    document; setting again overwrites the value. *)

val gauge : t -> string -> float -> unit

val dist : t -> string -> Fba_stdx.Histogram.t -> unit
(** Reduce [h] via {!dist_of_histogram} and register it. *)

val set_phases : t -> Fba_sim.Events.Phase_acc.row list -> unit

val set_prof : t -> Fba_sim.Prof.t -> unit
(** Attach a (stopped) run profile; exported under ["prof"]. *)

val counters : t -> (string * int) list
val gauges : t -> (string * float) list
val dists : t -> (string * dist) list

val of_aer_run : ?prof:Fba_sim.Prof.t -> Runner.aer_run -> t
(** The standard reduction: counters and gauges from the run's
    {!Obs.observation} and AER gauges, per-correct-node
    [decision_round] / [sent_bits] / [recv_bits] distributions from
    its {!Fba_sim.Metrics}, phase rows when the run was traced, and
    the profile when [prof] was attached to the run (ignored if it
    never started). *)

val version : int
(** The ["telemetry_version"] this writer emits. *)

val to_json : t -> string
(** The document, single line, no trailing newline. *)
