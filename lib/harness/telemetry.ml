(* Run-level metrics registry: counters, gauges and histogram-backed
   distributions, merged with the per-phase bit accounting and the
   optional run profile into one versioned JSON document. *)

type dist = {
  count : int;
  p50 : int option;
  p95 : int option;
  p99 : int option;
  max : int option;
}

let dist_of_histogram h =
  {
    count = Fba_stdx.Histogram.total h;
    p50 = Fba_stdx.Histogram.percentile_opt h 50.0;
    p95 = Fba_stdx.Histogram.percentile_opt h 95.0;
    p99 = Fba_stdx.Histogram.percentile_opt h 99.0;
    max = Fba_stdx.Histogram.max_value h;
  }

type t = {
  mutable counters : (string * int) list;  (* insertion order, last set wins *)
  mutable gauges : (string * float) list;
  mutable dists : (string * dist) list;
  mutable phases : Fba_sim.Events.Phase_acc.row list;
  mutable prof : Fba_sim.Prof.t option;
}

let create () = { counters = []; gauges = []; dists = []; phases = []; prof = None }

let set_assoc xs name v =
  if List.mem_assoc name xs then List.map (fun (n, x) -> if n = name then (n, v) else (n, x)) xs
  else xs @ [ (name, v) ]

let counter t name v = t.counters <- set_assoc t.counters name v
let gauge t name v = t.gauges <- set_assoc t.gauges name v
let dist t name h = t.dists <- set_assoc t.dists name (dist_of_histogram h)
let set_phases t rows = t.phases <- rows
let set_prof t p = t.prof <- Some p

let counters t = t.counters
let gauges t = t.gauges
let dists t = t.dists

(* --- The standard reduction: one AER run --- *)

let of_aer_run ?prof (run : Runner.aer_run) =
  let t = create () in
  let obs = run.Runner.obs in
  let m = run.Runner.metrics in
  let n = obs.Obs.n in
  counter t "n" n;
  counter t "rounds" obs.Obs.rounds;
  counter t "wrong_decisions" obs.Obs.wrong_decisions;
  counter t "total_bits_all" obs.Obs.total_bits_all;
  counter t "max_sent_bits" obs.Obs.max_sent_bits;
  counter t "max_recv_bits" obs.Obs.max_recv_bits;
  counter t "push_max_messages" run.Runner.push_max_messages;
  counter t "candidate_sum" run.Runner.candidate_sum;
  counter t "candidate_max" run.Runner.candidate_max;
  counter t "gstring_missing" run.Runner.gstring_missing;
  counter t "peak_mailbox_words" (Fba_sim.Metrics.peak_mailbox_words m);
  gauge t "decided_fraction" obs.Obs.decided_fraction;
  gauge t "agreed_fraction" obs.Obs.agreed_fraction;
  gauge t "bits_per_node" obs.Obs.bits_per_node;
  gauge t "msgs_per_node" obs.Obs.msgs_per_node;
  gauge t "load_imbalance" obs.Obs.load_imbalance;
  let corrupted = Fba_sim.Metrics.corrupted m in
  let decision = Fba_stdx.Histogram.create () in
  let sent_bits = Fba_stdx.Histogram.create () in
  let recv_bits = Fba_stdx.Histogram.create () in
  for i = 0 to n - 1 do
    if not (Fba_stdx.Bitset.mem corrupted i) then begin
      (match Fba_sim.Metrics.decision_round m i with
      | Some r -> Fba_stdx.Histogram.add decision r
      | None -> ());
      Fba_stdx.Histogram.add sent_bits (Fba_sim.Metrics.sent_bits_of m i);
      Fba_stdx.Histogram.add recv_bits (Fba_sim.Metrics.recv_bits_of m i)
    end
  done;
  dist t "decision_round" decision;
  dist t "sent_bits" sent_bits;
  dist t "recv_bits" recv_bits;
  set_phases t obs.Obs.phases;
  (match prof with Some p when Fba_sim.Prof.started p -> set_prof t p | _ -> ());
  t

(* --- JSON export ---

   Hand-rolled on a Buffer like Events.Jsonl (the repo carries no JSON
   dependency); [Events.Jsonl.escape] keeps every byte ASCII. Key order
   is fixed so the document is golden-testable. *)

let version = 1

let esc s = Fba_sim.Events.Jsonl.escape s

let buf_opt_int b = function
  | None -> Buffer.add_string b "null"
  | Some v -> Buffer.add_string b (string_of_int v)

let buf_float b v =
  (* %.17g round-trips any float; trim the common integral case. *)
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" v)
  else Buffer.add_string b (Printf.sprintf "%.17g" v)

let buf_fields b xs ~value =
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b (esc name);
      Buffer.add_string b "\":";
      value b v)
    xs;
  Buffer.add_char b '}'

let buf_dist b (d : dist) =
  Buffer.add_string b (Printf.sprintf "{\"count\":%d,\"p50\":" d.count);
  buf_opt_int b d.p50;
  Buffer.add_string b ",\"p95\":";
  buf_opt_int b d.p95;
  Buffer.add_string b ",\"p99\":";
  buf_opt_int b d.p99;
  Buffer.add_string b ",\"max\":";
  buf_opt_int b d.max;
  Buffer.add_char b '}'

let buf_phase b (r : Fba_sim.Events.Phase_acc.row) =
  Buffer.add_string b
    (Printf.sprintf
       "{\"phase\":\"%s\",\"first_round\":%d,\"last_round\":%d,\"msgs_correct\":%d,\"msgs_byz\":%d,\"bits_correct\":%d,\"bits_byz\":%d,\"max_sent_bits\":%d}"
       (esc r.Fba_sim.Events.Phase_acc.phase)
       r.Fba_sim.Events.Phase_acc.first_round r.Fba_sim.Events.Phase_acc.last_round
       r.Fba_sim.Events.Phase_acc.msgs_correct r.Fba_sim.Events.Phase_acc.msgs_byz
       r.Fba_sim.Events.Phase_acc.bits_correct r.Fba_sim.Events.Phase_acc.bits_byz
       r.Fba_sim.Events.Phase_acc.max_sent_bits)

let buf_prof b p =
  let module P = Fba_sim.Prof in
  Buffer.add_string b
    (Printf.sprintf "{\"rounds\":%d,\"total_wall_ns\":%d,\"total_alloc_words\":%d,\"slots\":["
       (P.rounds p) (P.total_wall_ns p) (P.total_alloc_words p));
  for s = 0 to P.slots p - 1 do
    if s > 0 then Buffer.add_char b ',';
    Buffer.add_string b
      (Printf.sprintf "{\"name\":\"%s\",\"hits\":%d,\"wall_ns\":%d,\"alloc_words\":%d}"
         (esc (P.slot_name p s))
         (P.slot_hits p s) (P.slot_wall p s) (P.slot_alloc p s))
  done;
  Buffer.add_string b "]}"

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "{\"telemetry_version\":%d,\"counters\":" version);
  buf_fields b t.counters ~value:(fun b v -> Buffer.add_string b (string_of_int v));
  Buffer.add_string b ",\"gauges\":";
  buf_fields b t.gauges ~value:buf_float;
  Buffer.add_string b ",\"dists\":";
  buf_fields b t.dists ~value:buf_dist;
  Buffer.add_string b ",\"phases\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      buf_phase b r)
    t.phases;
  Buffer.add_string b "],\"prof\":";
  (match t.prof with None -> Buffer.add_string b "null" | Some p -> buf_prof b p);
  Buffer.add_char b '}';
  Buffer.contents b
