module type S = sig
  val name : string

  type cell
  type row

  val grid : full:bool -> cell list
  val run_cell : cell -> row
  val render : full:bool -> out:out_channel -> row list -> unit
end

type t = (module S)

let name (module E : S) = E.name

let run ?(jobs = 0) ?(full = false) (module E : S) ~out () =
  let rows = Sweep.cells ~jobs E.run_cell (E.grid ~full) in
  E.render ~full ~out rows
