open Fba_stdx
open Fba_core
module Aer_sync = Fba_sim.Sync_engine.Make (Aer)
module Engine_core = Fba_sim.Engine_core
module Metrics = Fba_sim.Metrics

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Per-instance seeds are hash-derived from the stream seed, so the
   schedule of seeds depends only on (stream_seed, k) — never on the
   pipeline width, the domain count, or completion order. *)
let instance_seed stream_seed k =
  Hash64.finish (Hash64.add_int (Hash64.add_string (Hash64.init stream_seed) "instance") k)

(* Same folding as the determinism goldens: every node's traffic
   counters plus its decision round, then the round count. *)
let fingerprint m =
  let h = ref (Hash64.init 0x600DL) in
  let n = Metrics.n m in
  for i = 0 to n - 1 do
    h := Hash64.add_int !h (Metrics.sent_messages_of m i);
    h := Hash64.add_int !h (Metrics.sent_bits_of m i);
    h := Hash64.add_int !h (Metrics.recv_messages_of m i);
    h := Hash64.add_int !h (Metrics.recv_bits_of m i);
    h := Hash64.add_int !h (match Metrics.decision_round m i with None -> -1 | Some r -> r)
  done;
  Hash64.finish (Hash64.add_int !h (Metrics.rounds m))

type stream = {
  setup : Runner.aer_setup;
  config : Runner.config;
  n : int;
  stream_seed : int64;
  instances : int;
  width : int;
  jobs : int;
}

let default_stream =
  {
    setup = Runner.default_setup;
    config = Runner.default_config;
    n = 128;
    stream_seed = 42L;
    instances = 256;
    width = 4;
    jobs = 1;
  }

type instance_result = {
  index : int;
  seed : int64;
  fingerprint : int64;
  rounds_used : int;
  decided : int;
  agreed : bool;
  latency_ns : int;
}

type summary = {
  results : instance_result array;
  n : int;
  instances : int;
  elapsed_ns : int;
  instances_per_sec : float;
  p50_instance_latency_ns : int;
  p99_instance_latency_ns : int;
}

(* One pipeline lane: the storage an epoch chain reuses from instance
   to instance. Concurrently open instances can never share an
   interner (each run packs its own strings), so every lane owns a
   full set — interner, config chain (quorum caches + push plan +
   compile scratch, reset through Aer.config_epoch) and mailbox. *)
type lane = {
  mutable intern : Intern.t option;
  mutable prev : Aer.config option;
  mailbox : Aer.msg Engine_core.Mailbox.t;
}

(* An instance in flight on a lane. *)
type open_instance = {
  oi_index : int;
  oi_seed : int64;
  oi_scenario : Scenario.t;
  oi_running : Aer_sync.running;
  oi_t0 : int;
}

(* Mirrors Runner.aer_sync's quiescence window. *)
let quiet_limit_of sc =
  if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
    Params.(sc.Scenario.params.repoll_timeout) + 2
  else 3

(* Open instance [k] on [lane]: build the scenario exactly as the
   one-shot path does (Runner.scenario_of_setup with the derived
   seed), but evaluate it into the lane's recycled storage. The first
   instance of a lane pays the allocations; every later one resets in
   place. *)
let open_instance t lane ~adversary k =
  let t0 = now_ns () in
  let seed = instance_seed t.stream_seed k in
  let sc = Runner.scenario_of_setup ?intern:lane.intern t.setup ~n:t.n ~seed in
  lane.intern <- Some sc.Scenario.intern;
  let cfg =
    match lane.prev with
    | None -> Aer.config_of_scenario ~compile:t.config.Runner.compile sc
    | Some prev -> Aer.config_epoch ~prev sc
  in
  lane.prev <- Some cfg;
  let running =
    Aer_sync.start ~quiet_limit:(quiet_limit_of sc) ~mailbox:lane.mailbox
      ~net:t.config.Runner.net ~config:cfg ~n:t.n ~seed:sc.Scenario.params.Params.seed
      ~adversary:(adversary sc) ~mode:t.config.Runner.mode
      ~max_rounds:t.config.Runner.max_rounds ()
  in
  { oi_index = k; oi_seed = seed; oi_scenario = sc; oi_running = running; oi_t0 = t0 }

let close_instance oi =
  let res = Aer_sync.finish oi.oi_running in
  let m = res.Fba_sim.Sync_engine.metrics in
  let gstring = oi.oi_scenario.Scenario.gstring in
  let decided = ref 0 in
  let agreed = ref true in
  Array.iter
    (function
      | Some s ->
        incr decided;
        if not (String.equal s gstring) then agreed := false
      | None -> ())
    res.Fba_sim.Sync_engine.outputs;
  {
    index = oi.oi_index;
    seed = oi.oi_seed;
    fingerprint = fingerprint m;
    rounds_used = res.Fba_sim.Sync_engine.rounds_used;
    decided = !decided;
    agreed = !agreed;
    latency_ns = max 0 (now_ns () - oi.oi_t0);
  }

(* Drive one contiguous block of instances through [width] lanes with
   a round-robin scheduler: every pass steps each open instance one
   round; a finished instance is closed and its lane immediately
   reopened on the block's next index. Instances never interact —
   each owns its lane's storage exclusively while open — so the
   results are identical for every width; only the latency
   distribution changes. *)
let run_block t ~adversary ~heartbeat ~lo ~hi =
  let count = hi - lo in
  let results = Array.make count None in
  if count > 0 then begin
    let width = max 1 (min t.width count) in
    let lanes =
      Array.init width (fun _ ->
          {
            intern = None;
            prev = None;
            mailbox = Engine_core.Mailbox.create ~stream:t.config.Runner.stream ~n:t.n ();
          })
    in
    let open_ : open_instance option array = Array.make width None in
    let next = ref lo in
    let remaining = ref count in
    let rec pump s =
      match open_.(s) with
      | None ->
        if !next < hi then begin
          open_.(s) <- Some (open_instance t lanes.(s) ~adversary !next);
          incr next;
          pump s
        end
      | Some oi ->
        if not (Aer_sync.step oi.oi_running) then begin
          results.(oi.oi_index - lo) <- Some (close_instance oi);
          decr remaining;
          heartbeat ();
          open_.(s) <- None;
          pump s
        end
    in
    while !remaining > 0 do
      for s = 0 to width - 1 do
        pump s
      done
    done
  end;
  Array.map (function Some r -> r | None -> assert false) results

let progress_enabled () =
  match Sys.getenv_opt "FBA_PROGRESS" with None | Some "" | Some "0" -> false | Some _ -> true

let run ?(stream = default_stream) ~adversary () =
  let t = stream in
  if t.instances < 0 then invalid_arg "Service.run: instances < 0";
  let jobs = Sweep.resolve_jobs t.jobs in
  let t_start = now_ns () in
  (* Same stderr-only convention as the sweep heartbeat: opt-in, one
     line per completed instance, atomic counter because instances
     finish on arbitrary pool domains; stdout stays byte-identical. *)
  let heartbeat =
    if progress_enabled () then begin
      let done_ = Atomic.make 0 in
      fun () ->
        let k = 1 + Atomic.fetch_and_add done_ 1 in
        let dt = float_of_int (max 1 (now_ns () - t_start)) /. 1e9 in
        Printf.eprintf "[service] %d/%d instances, %.1f inst/s\n%!" k t.instances
          (float_of_int k /. dt)
    end
    else fun () -> ()
  in
  (* Contiguous blocks, one per domain: lane storage stays
     domain-private, and instance k's block depends only on
     (instances, jobs) — never on scheduling. *)
  let nblocks = max 1 (min jobs (max 1 t.instances)) in
  let bounds b = (b * t.instances / nblocks, (b + 1) * t.instances / nblocks) in
  let per_block =
    Pool.run ~jobs
      (fun b ->
        let lo, hi = bounds b in
        run_block t ~adversary ~heartbeat ~lo ~hi)
      nblocks
  in
  let results = Array.concat (Array.to_list per_block) in
  let elapsed_ns = max 1 (now_ns () - t_start) in
  (* Latencies are µs-bucketed: Histogram keys by value, and raw
     nanosecond keys would give one bucket per sample. *)
  let hist = Histogram.create () in
  Array.iter (fun r -> Histogram.add hist (r.latency_ns / 1000)) results;
  let pct p =
    match Histogram.percentile_opt hist p with None -> 0 | Some us -> us * 1000
  in
  {
    results;
    n = t.n;
    instances = t.instances;
    elapsed_ns;
    instances_per_sec = float_of_int t.instances /. (float_of_int elapsed_ns /. 1e9);
    p50_instance_latency_ns = pct 50.0;
    p99_instance_latency_ns = pct 99.0;
  }

(* The deterministic face of a summary: everything except wall-clock.
   `fba service` prints this to stdout (timings go to stderr), so
   --jobs 2 and --jobs 1 runs byte-diff clean. *)
let pp_trace out (s : summary) =
  Printf.fprintf out "service n=%d instances=%d\n" s.n s.instances;
  Array.iter
    (fun r ->
      Printf.fprintf out "instance %d seed=%Ld fp=0x%016Lx rounds=%d decided=%d agreed=%b\n"
        r.index r.seed r.fingerprint r.rounds_used r.decided r.agreed)
    s.results
