(** The common shape of every experiment module.

    An experiment is a pure pipeline [grid → run_cell* → render]:
    [grid ~full] enumerates the independent cells (each cell carries
    everything it needs, including its seed list), [run_cell] runs the
    simulations of one cell and reduces them to a plain-data row, and
    [render] formats the rows — in grid order — into the tables and
    prose the paper reproduction reports. Because all simulation
    happens in [run_cell] and all I/O in [render], {!Sweep} can shard
    any experiment across domains without the experiment knowing. *)

module type S = sig
  val name : string

  type cell
  (** One independent unit of work. Self-contained: no mutable state
      may be shared between cells (each builds its own scenario,
      metrics and accumulators from the data in the cell). *)

  type row
  (** The plain-data result of one cell — everything [render] needs,
      and nothing live (no channels, no engines). *)

  val grid : full:bool -> cell list
  (** The full grid, in the order the report lists it. Must be cheap
      and deterministic. *)

  val run_cell : cell -> row
  (** Runs on a worker domain; must only touch state it creates. *)

  val render : full:bool -> out:out_channel -> row list -> unit
  (** Renders rows in grid order. Must tolerate a subset grid (tests
      render filtered grids), skipping sections with no rows. *)
end

type t = (module S)

val name : t -> string

val run : ?jobs:int -> ?full:bool -> t -> out:out_channel -> unit -> unit
(** [run ?jobs ?full e ~out ()] = grid, sweep, render. [jobs]
    defaults to 0 = auto ({!Sweep.resolve_jobs}); [full] defaults to
    [false]. Output is byte-identical for every [jobs] value. *)
