(** Cell-wise parallel execution of experiment grids.

    Every experiment is a grid of independent cells (a protocol
    variant at a size, a parameter point of a sweep); each cell
    derives its own seeds through {!Runner.seeds} and builds its own
    scenario, engine, metrics and accumulators. [cells] shards such a
    grid across a {!Fba_stdx.Pool} of domains and returns the rows in
    grid order, so the rendered output is byte-identical for every
    [jobs] value — parallelism only changes wall-clock. *)

val default_jobs : unit -> int
(** {!Fba_stdx.Pool.recommended_jobs} — the [--jobs] default. *)

val resolve_jobs : int -> int
(** [resolve_jobs j] is [j] if positive, else {!default_jobs} [()]
    (the CLI convention: [--jobs 0] or an absent flag means "auto"). *)

val cells : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [cells ~jobs run_cell grid] maps [run_cell] over [grid] on
    [resolve_jobs jobs] domains, preserving grid order. [~jobs:1]
    runs inline (no domain is spawned).

    When the [FBA_PROGRESS] environment variable is set (non-empty,
    not ["0"]), a heartbeat line [\[sweep\] k/total cells] is printed
    to {e stderr} as each cell completes — completion order, so the
    counter is monotone for any [jobs] value while stdout stays
    byte-identical. *)
