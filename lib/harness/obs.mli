(** Standardized per-execution observations and their aggregation
    across seeds. Every experiment reduces an engine run to an
    {!observation}; {!aggregate} folds a batch into the statistics the
    tables report. *)

type observation = {
  n : int;
  rounds : int;  (** engine rounds (or normalized async rounds) *)
  decided_fraction : float;  (** correct nodes that decided at all *)
  agreed_fraction : float;  (** correct nodes that decided the reference value *)
  wrong_decisions : int;  (** correct nodes that decided something else *)
  max_decision_round : int option;  (** None if some correct node never decided *)
  p95_decision_round : float;  (** over correct nodes that decided *)
  bits_per_node : float;  (** amortized over n, correct senders only *)
  msgs_per_node : float;  (** messages amortized over n, correct senders only *)
  total_bits_all : int;  (** bits sent by everyone, Byzantine included *)
  max_sent_bits : int;
  max_recv_bits : int;
  load_imbalance : float;
  phases : Fba_sim.Events.Phase_acc.row list;
      (** per-phase breakdown when the run was traced (see
          {!Fba_sim.Events.Phase_acc}); [[]] otherwise *)
}

val of_metrics :
  ?phases:Fba_sim.Events.Phase_acc.row list ->
  metrics:Fba_sim.Metrics.t ->
  outputs:string option array ->
  reference:string option ->
  unit ->
  observation
(** Reduce one engine result. [reference] is the value correct nodes
    were supposed to decide (gstring); [None] means plurality of
    correct outputs is used. All fractions are 0. (never NaN) when the
    correct set is empty. [phases] defaults to the empty list for
    untraced runs. *)

type summary = {
  s_n : int;
  runs : int;
  mean_rounds : float;
  mean_bits_per_node : float;
  mean_max_sent : float;
  mean_imbalance : float;
  mean_decided : float;
  mean_agreed : float;
  total_wrong : int;
  mean_p95_decision : float;
  worst_decision_round : int option;
      (** max over runs; [None] if any run left a correct node undecided *)
}

val aggregate : observation list -> summary
(** Raises [Invalid_argument] on the empty list or mixed n. *)
