(** Experiment [fig1a] — reproduce Figure 1(a): the comparison of
    almost-everywhere→everywhere protocols.

    Paper's table:
    {v
                [KLST11]      AER (sync non-rushing)   AER (async)
    Time        O(log² n)     O(1)                     O(log n / log log n)
    Bits        O~(√n)        O(log² n)                O(log² n)
    Balanced    Yes           No                       No
    v}

    We run the grid baseline (KLST11 stand-in, DESIGN.md substitution 2)
    and AER under a synchronous non-rushing, synchronous rushing and
    asynchronous cornering adversary, over a grid of system sizes, and
    report measured rounds, bits/node, per-node maxima and load
    imbalance, plus fitted growth classes.

    Implements {!Experiment.S}; the toplevel values below are that
    signature, so [(module Exp_fig1a : Experiment.S)] drives it. *)

val name : string

type cell
type row

val grid : full:bool -> cell list
val run_cell : cell -> row
val render : full:bool -> out:out_channel -> row list -> unit

val run : ?jobs:int -> ?full:bool -> out:out_channel -> unit -> unit
(** [full] (default false) enlarges the size grid and seed count;
    [jobs] (default auto, {!Sweep.resolve_jobs}) shards grid cells
    across domains — the output is identical for every value. *)
