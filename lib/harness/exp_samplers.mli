(** Experiment [samplers] — validate the sampler properties the
    analysis rests on (Lemma 1, Lemma 2 / Section 4.1 / Figure 3).

    - Lemma 1: the (θ,δ)-sampler behaviour of I/H — for any candidate
      string, only a vanishing fraction of quorums lacks a good
      majority, and no node is overloaded (bounded inverse degree);
    - Lemma 2 Property 1: few poll lists have a good-node minority;
    - Lemma 2 Property 2: the boundary-expansion bound |∂L| > (2/3)d|L|
      of the random-digraph model, checked for random and for
      greedily-adversarial ("cornering") label sets L up to the
      n/log n size the lemma covers.

    Implements {!Experiment.S}. *)

val name : string

type cell
type row

val grid : full:bool -> cell list
val run_cell : cell -> row
val render : full:bool -> out:out_channel -> row list -> unit

val run : ?jobs:int -> ?full:bool -> out:out_channel -> unit -> unit
(** [full] (default false) enlarges the size grid and search budget;
    [jobs] (default auto) shards grid cells across domains. *)
