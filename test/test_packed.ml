(* Packed message plane (Msg.Packed + Intern).

   Three layers of evidence that the immediate-int wire plane is an
   exact stand-in for the variant messages:

   - layout goldens: hard-coded packed words pin the documented bit
     layout (tag:3 | sid:13 | rid:20 | x:13 | w:13, LSB first) so an
     accidental field reshuffle cannot hide behind a self-consistent
     codec;
   - qcheck properties: pack/unpack round-trips every constructor
     across the full field ranges, [Packed.bits] agrees with [Msg.bits]
     and [Packed.pp] renders exactly as [Msg.pp];
   - engine equivalence: running AER through the allocation-free
     [receive_into] fast path and through the list-returning
     [on_receive] fallback produces bit-identical metrics, outputs and
     JSONL traces on small adversarial scenarios — the two delivery
     paths of the engines are the same protocol. *)

module Attacks = Fba_adversary.Aer_attacks
module Runner = Fba_harness.Runner
module Metrics = Fba_sim.Metrics
open Fba_core
open Fba_stdx
module Packed = Msg.Packed

(* --- Layout goldens --- *)

let test_layout_goldens () =
  let it = Intern.create () in
  Alcotest.(check int) "first string id" 0 (Intern.intern it "alpha");
  Alcotest.(check int) "second string id" 1 (Intern.intern it "beta");
  Alcotest.(check int) "interning is idempotent" 0 (Intern.intern it "alpha");
  Alcotest.(check int) "first label id" 0 (Intern.intern_label it 0x5EEDL);
  Alcotest.(check int) "second label id" 1 (Intern.intern_label it 42L);
  let pack m = Packed.pack it m in
  Alcotest.(check int) "Push alpha" 1 (pack (Msg.Push "alpha"));
  Alcotest.(check int) "Answer alpha" 6 (pack (Msg.Answer "alpha"));
  Alcotest.(check int) "Poll beta/0x5EED" 10 (pack (Msg.Poll { s = "beta"; r = 0x5EEDL }));
  Alcotest.(check int) "Pull beta/0x5EED" 11 (pack (Msg.Pull { s = "beta"; r = 0x5EEDL }));
  Alcotest.(check int) "Poll alpha/42 (rid 1)" 65538 (pack (Msg.Poll { s = "alpha"; r = 42L }));
  Alcotest.(check int) "Fw1 x=5 w=7" 3940993271332868
    (pack (Msg.Fw1 { x = 5; s = "alpha"; r = 0x5EEDL; w = 7 }));
  Alcotest.(check int) "Fw2 x=5" 343597383685 (pack (Msg.Fw2 { x = 5; s = "alpha"; r = 0x5EEDL }))

let test_field_boundaries () =
  let max_sid = Intern.max_strings - 1 in
  let max_rid = Intern.max_labels - 1 in
  let p = Packed.fw1 ~sid:max_sid ~rid:max_rid ~x:8191 ~w:8191 in
  Alcotest.(check int) "max word uses exactly 62 bits" 4611686018427387900 p;
  Alcotest.(check int) "tag at boundary" Packed.tag_fw1 (Packed.tag p);
  Alcotest.(check int) "sid at boundary" max_sid (Packed.sid p);
  Alcotest.(check int) "rid at boundary" max_rid (Packed.rid p);
  Alcotest.(check int) "x at boundary" 8191 (Packed.x p);
  Alcotest.(check int) "w at boundary" 8191 (Packed.w p);
  let rejects name f =
    match f () with
    | (_ : int) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  rejects "sid overflow" (fun () -> Packed.push ~sid:(max_sid + 1));
  rejects "rid overflow" (fun () -> Packed.poll ~sid:0 ~rid:(max_rid + 1));
  rejects "x overflow" (fun () -> Packed.fw2 ~sid:0 ~rid:0 ~x:8192);
  rejects "w overflow" (fun () -> Packed.fw1 ~sid:0 ~rid:0 ~x:0 ~w:8192);
  rejects "negative sid" (fun () -> Packed.push ~sid:(-1))

(* --- qcheck codec properties --- *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Strings from a mix of arbitrary bytes and a small pool (so repeated
   interning — the realistic case — is exercised too); labels across
   the full int64 range, node ids across the full 13-bit field. *)
let gen_msg =
  let open QCheck2.Gen in
  let gs =
    oneof
      [ string_size (int_range 0 48); map (Printf.sprintf "s%d") (int_range 0 9) ]
  in
  let gr = oneof [ int64; map Int64.of_int (int_range 0 9) ] in
  let gx = int_range 0 8191 in
  oneof
    [
      map (fun s -> Msg.Push s) gs;
      map2 (fun s r -> Msg.Poll { s; r }) gs gr;
      map2 (fun s r -> Msg.Pull { s; r }) gs gr;
      map3 (fun (x, w) s r -> Msg.Fw1 { x; s; r; w }) (pair gx gx) gs gr;
      map3 (fun x s r -> Msg.Fw2 { x; s; r }) gx gs gr;
      map (fun s -> Msg.Answer s) gs;
    ]

let gen_msgs = QCheck2.Gen.(list_size (int_range 1 40) gen_msg)

let prop_roundtrip =
  qtest "Packed codec round-trips every constructor" gen_msgs (fun ms ->
      let it = Intern.create () in
      List.for_all
        (fun m ->
          let p = Packed.pack it m in
          Packed.unpack it p = m && Packed.pack it m = p)
        ms)

let prop_bits =
  qtest "Packed.bits equals Msg.bits on the unpacked message" gen_msgs (fun ms ->
      let it = Intern.create () in
      let params = Params.make ~n:1024 ~seed:1L () in
      List.for_all
        (fun m -> Packed.bits params it (Packed.pack it m) = Msg.bits params m)
        ms)

let prop_pp =
  qtest "Packed.pp renders exactly as Msg.pp" gen_msgs (fun ms ->
      let it = Intern.create () in
      List.for_all
        (fun m ->
          Format.asprintf "%a" (Packed.pp it) (Packed.pack it m)
          = Format.asprintf "%a" Msg.pp m)
        ms)

(* --- Fast-path vs fallback engine equivalence --- *)

(* Same protocol, [receive_into] withheld: the engines must take the
   list-returning [on_receive] shim instead. *)
module Aer_fallback = struct
  include Aer

  let receive_into = None
end

module E_fast = Fba_sim.Sync_engine.Make (Aer)
module E_slow = Fba_sim.Sync_engine.Make (Aer_fallback)
module A_fast = Fba_sim.Async_engine.Make (Aer)
module A_slow = Fba_sim.Async_engine.Make (Aer_fallback)

let fingerprint m =
  let h = ref (Hash64.init 0x600DL) in
  let n = Metrics.n m in
  for i = 0 to n - 1 do
    h := Hash64.add_int !h (Metrics.sent_messages_of m i);
    h := Hash64.add_int !h (Metrics.sent_bits_of m i);
    h := Hash64.add_int !h (Metrics.recv_messages_of m i);
    h := Hash64.add_int !h (Metrics.recv_bits_of m i);
    h := Hash64.add_int !h (match Metrics.decision_round m i with None -> -1 | Some r -> r)
  done;
  Hash64.finish (Hash64.add_int !h (Metrics.rounds m))

let quiet_limit_of sc =
  if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
    Params.(sc.Scenario.params.repoll_timeout) + 2
  else 3

let jsonl_sink () =
  let buf = Buffer.create 4096 in
  let sink = Fba_sim.Events.create () in
  Fba_sim.Events.attach sink (Fba_sim.Events.Jsonl.consumer buf);
  (sink, buf)

let arb_run =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%Ld" n seed)
    QCheck.Gen.(pair (int_range 24 64) (map Int64.of_int (int_range 1 1000)))

let prop_sync_fallback_identical =
  QCheck.Test.make ~name:"sync: receive_into and on_receive runs are trace-identical" ~count:8
    arb_run (fun (n, seed) ->
      let run (type a) (run_engine : events:Fba_sim.Events.sink -> Aer.config -> a) =
        let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
        let events, buf = jsonl_sink () in
        let cfg = Aer.config_of_scenario ~events sc in
        (run_engine ~events cfg, buf, quiet_limit_of sc, sc)
      in
      let fast, fast_buf, _, _ =
        run (fun ~events cfg ->
            let sc = Aer.config_scenario cfg in
            E_fast.run ~quiet_limit:(quiet_limit_of sc) ~events ~config:cfg ~n ~seed
              ~adversary:(Attacks.cornering sc) ~mode:`Rushing ~max_rounds:300 ())
      in
      let slow, slow_buf, _, _ =
        run (fun ~events cfg ->
            let sc = Aer.config_scenario cfg in
            E_slow.run ~quiet_limit:(quiet_limit_of sc) ~events ~config:cfg ~n ~seed
              ~adversary:(Attacks.cornering sc) ~mode:`Rushing ~max_rounds:300 ())
      in
      Int64.equal
        (fingerprint fast.Fba_sim.Sync_engine.metrics)
        (fingerprint slow.Fba_sim.Sync_engine.metrics)
      && fast.Fba_sim.Sync_engine.outputs = slow.Fba_sim.Sync_engine.outputs
      && Buffer.contents fast_buf = Buffer.contents slow_buf)

let prop_async_fallback_identical =
  QCheck.Test.make ~name:"async: receive_into and on_receive runs are trace-identical" ~count:5
    arb_run (fun (n, seed) ->
      let run_with runner =
        let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
        let events, buf = jsonl_sink () in
        let cfg = Aer.config_of_scenario ~events sc in
        (runner ~events ~config:cfg ~adversary:(Attacks.async_cornering sc), buf)
      in
      let fast, fast_buf =
        run_with (fun ~events ~config ~adversary ->
            A_fast.run ~events ~config ~n ~seed ~adversary ~max_time:4000 ())
      in
      let slow, slow_buf =
        run_with (fun ~events ~config ~adversary ->
            A_slow.run ~events ~config ~n ~seed ~adversary ~max_time:4000 ())
      in
      Int64.equal
        (fingerprint fast.Fba_sim.Async_engine.metrics)
        (fingerprint slow.Fba_sim.Async_engine.metrics)
      && fast.Fba_sim.Async_engine.outputs = slow.Fba_sim.Async_engine.outputs
      && Buffer.contents fast_buf = Buffer.contents slow_buf)

let suites =
  [
    ( "packed.codec",
      [
        Alcotest.test_case "layout goldens" `Quick test_layout_goldens;
        Alcotest.test_case "field boundaries" `Quick test_field_boundaries;
        prop_roundtrip;
        prop_bits;
        prop_pp;
      ] );
    ( "packed.engine",
      List.map QCheck_alcotest.to_alcotest
        [ prop_sync_fallback_identical; prop_async_fallback_identical ] );
  ]
