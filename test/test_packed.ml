(* Packed message plane (Msg.Packed + Intern).

   Three layers of evidence that the immediate-int wire plane is an
   exact stand-in for the variant messages:

   - layout goldens: hard-coded packed words pin the narrow layout
     (tag:3 | sid:13 | rid:20 | x:13 | w:13, LSB first) so an
     accidental field reshuffle cannot hide behind a self-consistent
     codec, and Layout.choose is pinned at the n=8192 boundary;
   - qcheck properties: pack/unpack round-trips every constructor
     across the full field ranges of both the narrow and the wide
     layout at the boundary populations (n = 8191, 8192, 8193, 65536),
     [Packed.bits] agrees with [Msg.bits] and [Packed.pp] renders
     exactly as [Msg.pp] under every layout;
   - narrow-vs-wide identity: at n <= 8192 a run forced onto the wide
     layout is trace-identical to the narrow fast path — field widths
     are representation, not behaviour;
   - engine equivalence: running AER through the allocation-free
     [receive_into] fast path and through the list-returning
     [on_receive] fallback produces bit-identical metrics, outputs and
     JSONL traces on small adversarial scenarios — the two delivery
     paths of the engines are the same protocol. *)

module Attacks = Fba_adversary.Aer_attacks
module Runner = Fba_harness.Runner
module Metrics = Fba_sim.Metrics
open Fba_core
open Fba_stdx
module Packed = Msg.Packed

(* --- Layout goldens --- *)

let nar = Msg.Layout.narrow

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_layout_goldens () =
  let it = Intern.create () in
  Alcotest.(check int) "first string id" 0 (Intern.intern it "alpha");
  Alcotest.(check int) "second string id" 1 (Intern.intern it "beta");
  Alcotest.(check int) "interning is idempotent" 0 (Intern.intern it "alpha");
  Alcotest.(check int) "first label id" 0 (Intern.intern_label it 0x5EEDL);
  Alcotest.(check int) "second label id" 1 (Intern.intern_label it 42L);
  let pack m = Packed.pack nar it m in
  Alcotest.(check int) "Push alpha" 1 (pack (Msg.Push "alpha"));
  Alcotest.(check int) "Answer alpha" 6 (pack (Msg.Answer "alpha"));
  Alcotest.(check int) "Poll beta/0x5EED" 10 (pack (Msg.Poll { s = "beta"; r = 0x5EEDL }));
  Alcotest.(check int) "Pull beta/0x5EED" 11 (pack (Msg.Pull { s = "beta"; r = 0x5EEDL }));
  Alcotest.(check int) "Poll alpha/42 (rid 1)" 65538 (pack (Msg.Poll { s = "alpha"; r = 42L }));
  Alcotest.(check int) "Fw1 x=5 w=7" 3940993271332868
    (pack (Msg.Fw1 { x = 5; s = "alpha"; r = 0x5EEDL; w = 7 }));
  Alcotest.(check int) "Fw2 x=5" 343597383685 (pack (Msg.Fw2 { x = 5; s = "alpha"; r = 0x5EEDL }))

let test_field_boundaries () =
  let max_sid = Intern.max_strings - 1 in
  let max_rid = Intern.max_labels - 1 in
  let p = Packed.fw1 nar ~sid:max_sid ~rid:max_rid ~x:8191 ~w:8191 in
  Alcotest.(check int) "max word uses exactly 62 bits" 4611686018427387900 p;
  Alcotest.(check int) "tag at boundary" Packed.tag_fw1 (Packed.tag p);
  Alcotest.(check int) "sid at boundary" max_sid (Packed.sid nar p);
  Alcotest.(check int) "rid at boundary" max_rid (Packed.rid nar p);
  Alcotest.(check int) "x at boundary" 8191 (Packed.x nar p);
  Alcotest.(check int) "w at boundary" 8191 (Packed.w nar p);
  (* Overflow errors must name the overflowing field. *)
  let rejects name field f =
    match f () with
    | (_ : int) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
      if not (contains_sub msg (field ^ "=")) then
        Alcotest.failf "%s: error %S does not name field %s" name msg field
  in
  rejects "sid overflow" "sid" (fun () -> Packed.push nar ~sid:(max_sid + 1));
  rejects "rid overflow" "rid" (fun () -> Packed.poll nar ~sid:0 ~rid:(max_rid + 1));
  rejects "x overflow" "x" (fun () -> Packed.fw2 nar ~sid:0 ~rid:0 ~x:8192);
  rejects "w overflow" "w" (fun () -> Packed.fw1 nar ~sid:0 ~rid:0 ~x:0 ~w:8192);
  rejects "negative sid" "sid" (fun () -> Packed.push nar ~sid:(-1))

let test_layout_choose () =
  let open Msg.Layout in
  Alcotest.(check bool) "n=8191 Auto is narrow" true
    (is_narrow (choose Auto ~n:8191 ~strings:64));
  Alcotest.(check bool) "n=8192 Auto is narrow" true
    (is_narrow (choose Auto ~n:8192 ~strings:64));
  Alcotest.(check bool) "n=8193 Auto is wide" false
    (is_narrow (choose Auto ~n:8193 ~strings:64));
  let w = choose Auto ~n:65536 ~strings:10 in
  Alcotest.(check int) "n=65536 id_bits" 16 w.id_bits;
  Alcotest.(check bool) "n=65536 fits an immediate" true (total_bits w <= 63);
  Alcotest.(check bool) "wide addresses the population" true (w.max_n >= 65536);
  Alcotest.(check bool) "rid outgrows id" true (w.rid_bits >= w.id_bits + 1);
  (* mask_mult of the narrow layout is the historical constant. *)
  Alcotest.(check int) "narrow mask_mult is 133" 133 narrow.mask_mult;
  (match choose Narrow ~n:8193 ~strings:4 with
  | (_ : t) -> Alcotest.fail "Narrow at n=8193: expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  (* A wide request that cannot fit 63 bits names the starved field. *)
  (match wide_for ~n:262144 ~strings:5000 with
  | (_ : t) -> Alcotest.fail "infeasible wide layout: expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "error names rid" true (contains_sub msg "rid"))

(* --- qcheck codec properties --- *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Boundary populations around the narrow/wide switch, each paired with
   the layout Auto picks there — and, below the ceiling, the forced wide
   layout too, so both lanes are exercised on either side of n = 8192. *)
let boundary_layouts =
  [
    ("n=8191/narrow", 8191, Msg.Layout.choose Msg.Layout.Narrow ~n:8191 ~strings:64);
    ("n=8191/wide", 8191, Msg.Layout.wide_for ~n:8191 ~strings:300);
    ("n=8192/narrow", 8192, Msg.Layout.choose Msg.Layout.Auto ~n:8192 ~strings:64);
    ("n=8192/wide", 8192, Msg.Layout.wide_for ~n:8192 ~strings:300);
    ("n=8193/wide", 8193, Msg.Layout.wide_for ~n:8193 ~strings:300);
    ("n=65536/wide", 65536, Msg.Layout.wide_for ~n:65536 ~strings:300);
  ]

let intern_for (lt : Msg.Layout.t) =
  Intern.create ~max_strings:lt.Msg.Layout.max_strings ~max_labels:lt.Msg.Layout.max_labels ()

(* Strings from a mix of arbitrary bytes and a small pool (so repeated
   interning — the realistic case — is exercised too); labels across
   the full int64 range; node ids across the full population, biased
   toward the top of the id field where overflow bugs live. *)
let gen_msg_for ~n =
  let open QCheck2.Gen in
  let gs =
    oneof
      [ string_size (int_range 0 48); map (Printf.sprintf "s%d") (int_range 0 9) ]
  in
  let gr = oneof [ int64; map Int64.of_int (int_range 0 9) ] in
  let gx = oneof [ int_range 0 (n - 1); int_range (n - 8) (n - 1) ] in
  oneof
    [
      map (fun s -> Msg.Push s) gs;
      map2 (fun s r -> Msg.Poll { s; r }) gs gr;
      map2 (fun s r -> Msg.Pull { s; r }) gs gr;
      map3 (fun (x, w) s r -> Msg.Fw1 { x; s; r; w }) (pair gx gx) gs gr;
      map3 (fun x s r -> Msg.Fw2 { x; s; r }) gx gs gr;
      map (fun s -> Msg.Answer s) gs;
    ]

let codec_props =
  List.concat_map
    (fun (tag, n, lt) ->
      let gen = QCheck2.Gen.(list_size (int_range 1 40) (gen_msg_for ~n)) in
      [
        qtest (tag ^ ": codec round-trips every constructor") gen (fun ms ->
            let it = intern_for lt in
            List.for_all
              (fun m ->
                let p = Packed.pack lt it m in
                Packed.unpack lt it p = m && Packed.pack lt it m = p)
              ms);
        qtest (tag ^ ": Packed.bits equals Msg.bits on the unpacked message") gen (fun ms ->
            let it = intern_for lt in
            let params = Params.make ~n ~seed:1L () in
            List.for_all
              (fun m -> Packed.bits lt params it (Packed.pack lt it m) = Msg.bits params m)
              ms);
        qtest ~count:100 (tag ^ ": Packed.pp renders exactly as Msg.pp") gen (fun ms ->
            let it = intern_for lt in
            List.for_all
              (fun m ->
                Format.asprintf "%a" (Packed.pp lt it) (Packed.pack lt it m)
                = Format.asprintf "%a" Msg.pp m)
              ms);
      ])
    boundary_layouts

(* --- Fast-path vs fallback engine equivalence --- *)

(* Same protocol, [receive_into] withheld: the engines must take the
   list-returning [on_receive] shim instead. *)
module Aer_fallback = struct
  include Aer

  let receive_into = None
end

module E_fast = Fba_sim.Sync_engine.Make (Aer)
module E_slow = Fba_sim.Sync_engine.Make (Aer_fallback)
module A_fast = Fba_sim.Async_engine.Make (Aer)
module A_slow = Fba_sim.Async_engine.Make (Aer_fallback)

let fingerprint m =
  let h = ref (Hash64.init 0x600DL) in
  let n = Metrics.n m in
  for i = 0 to n - 1 do
    h := Hash64.add_int !h (Metrics.sent_messages_of m i);
    h := Hash64.add_int !h (Metrics.sent_bits_of m i);
    h := Hash64.add_int !h (Metrics.recv_messages_of m i);
    h := Hash64.add_int !h (Metrics.recv_bits_of m i);
    h := Hash64.add_int !h (match Metrics.decision_round m i with None -> -1 | Some r -> r)
  done;
  Hash64.finish (Hash64.add_int !h (Metrics.rounds m))

let quiet_limit_of sc =
  if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
    Params.(sc.Scenario.params.repoll_timeout) + 2
  else 3

let jsonl_sink () =
  let buf = Buffer.create 4096 in
  let sink = Fba_sim.Events.create () in
  Fba_sim.Events.attach sink (Fba_sim.Events.Jsonl.consumer buf);
  (sink, buf)

let arb_run =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%Ld" n seed)
    QCheck.Gen.(pair (int_range 24 64) (map Int64.of_int (int_range 1 1000)))

let prop_sync_fallback_identical =
  QCheck.Test.make ~name:"sync: receive_into and on_receive runs are trace-identical" ~count:8
    arb_run (fun (n, seed) ->
      let run (type a) (run_engine : events:Fba_sim.Events.sink -> Aer.config -> a) =
        let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
        let events, buf = jsonl_sink () in
        let cfg = Aer.config_of_scenario ~events sc in
        (run_engine ~events cfg, buf, quiet_limit_of sc, sc)
      in
      let fast, fast_buf, _, _ =
        run (fun ~events cfg ->
            let sc = Aer.config_scenario cfg in
            E_fast.run ~quiet_limit:(quiet_limit_of sc) ~events ~config:cfg ~n ~seed
              ~adversary:(Attacks.cornering sc) ~mode:`Rushing ~max_rounds:300 ())
      in
      let slow, slow_buf, _, _ =
        run (fun ~events cfg ->
            let sc = Aer.config_scenario cfg in
            E_slow.run ~quiet_limit:(quiet_limit_of sc) ~events ~config:cfg ~n ~seed
              ~adversary:(Attacks.cornering sc) ~mode:`Rushing ~max_rounds:300 ())
      in
      Int64.equal
        (fingerprint fast.Fba_sim.Sync_engine.metrics)
        (fingerprint slow.Fba_sim.Sync_engine.metrics)
      && fast.Fba_sim.Sync_engine.outputs = slow.Fba_sim.Sync_engine.outputs
      && Buffer.contents fast_buf = Buffer.contents slow_buf)

let prop_async_fallback_identical =
  QCheck.Test.make ~name:"async: receive_into and on_receive runs are trace-identical" ~count:5
    arb_run (fun (n, seed) ->
      let run_with runner =
        let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
        let events, buf = jsonl_sink () in
        let cfg = Aer.config_of_scenario ~events sc in
        (runner ~events ~config:cfg ~adversary:(Attacks.async_cornering sc), buf)
      in
      let fast, fast_buf =
        run_with (fun ~events ~config ~adversary ->
            A_fast.run ~events ~config ~n ~seed ~adversary ~max_time:4000 ())
      in
      let slow, slow_buf =
        run_with (fun ~events ~config ~adversary ->
            A_slow.run ~events ~config ~n ~seed ~adversary ~max_time:4000 ())
      in
      Int64.equal
        (fingerprint fast.Fba_sim.Async_engine.metrics)
        (fingerprint slow.Fba_sim.Async_engine.metrics)
      && fast.Fba_sim.Async_engine.outputs = slow.Fba_sim.Async_engine.outputs
      && Buffer.contents fast_buf = Buffer.contents slow_buf)

(* The wide layout is a representation change only: forcing it on a
   population the narrow fast path covers must leave every observable
   byte of the run unchanged. *)
let prop_wide_trace_identical =
  QCheck.Test.make ~name:"narrow and forced-wide runs are trace-identical (n <= 8192)"
    ~count:6 arb_run (fun (n, seed) ->
      let run layout =
        let sc = Runner.scenario_of_setup { Runner.default_setup with layout } ~n ~seed in
        let events, buf = jsonl_sink () in
        let cfg = Aer.config_of_scenario ~events sc in
        let r =
          E_fast.run ~quiet_limit:(quiet_limit_of sc) ~events ~config:cfg ~n ~seed
            ~adversary:(Attacks.cornering sc) ~mode:`Rushing ~max_rounds:300 ()
        in
        (r, buf, Msg.Layout.is_narrow (Aer.config_layout cfg))
      in
      let rn, rn_buf, rn_narrow = run Msg.Layout.Narrow in
      let rw, rw_buf, rw_narrow = run Msg.Layout.Wide in
      rn_narrow && (not rw_narrow)
      && Int64.equal
           (fingerprint rn.Fba_sim.Sync_engine.metrics)
           (fingerprint rw.Fba_sim.Sync_engine.metrics)
      && rn.Fba_sim.Sync_engine.outputs = rw.Fba_sim.Sync_engine.outputs
      && Buffer.contents rn_buf = Buffer.contents rw_buf)

let suites =
  [
    ( "packed.codec",
      Alcotest.test_case "layout goldens" `Quick test_layout_goldens
      :: Alcotest.test_case "field boundaries" `Quick test_field_boundaries
      :: Alcotest.test_case "layout choice" `Quick test_layout_choose
      :: codec_props );
    ( "packed.engine",
      QCheck_alcotest.to_alcotest prop_wide_trace_identical
      :: List.map QCheck_alcotest.to_alcotest
           [ prop_sync_fallback_identical; prop_async_fallback_identical ] );
  ]
