open Fba_stdx
open Fba_core
module Attacks = Fba_adversary.Aer_attacks
module Engine = Fba_sim.Sync_engine.Make (Aer)
module Async = Fba_sim.Async_engine.Make (Aer)

(* --- Params --- *)

let test_params_defaults () =
  let p = Params.make ~n:1024 ~seed:1L () in
  Alcotest.(check int) "d_i" 20 p.Params.d_i;
  Alcotest.(check int) "d_j" 20 p.Params.d_j;
  Alcotest.(check int) "d_h" 15 p.Params.d_h;
  Alcotest.(check int) "gstring bits" 80 p.Params.gstring_bits;
  Alcotest.(check int) "pull filter" 100 p.Params.pull_filter;
  Alcotest.(check int) "poll attempts default to the paper's 1" 1 p.Params.max_poll_attempts

let test_params_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Params.make: n must be at least 4")
    (fun () -> ignore (Params.make ~n:3 ~seed:1L ()));
  Alcotest.check_raises "d out of range" (Invalid_argument "Params.make: d_i out of range")
    (fun () -> ignore (Params.make ~d_i:0 ~n:16 ~seed:1L ()));
  Alcotest.check_raises "byz out of range"
    (Invalid_argument "Params.make_for: byzantine_fraction must be in [0, 1/3)") (fun () ->
      ignore
        (Params.make_for ~n:64 ~seed:1L ~byzantine_fraction:0.34 ~knowledgeable_fraction:0.6 ()))

let test_params_make_for_sizing () =
  let lax = Params.make_for ~n:256 ~seed:1L ~byzantine_fraction:0.05 ~knowledgeable_fraction:0.9 () in
  let harsh =
    Params.make_for ~n:256 ~seed:1L ~byzantine_fraction:0.25 ~knowledgeable_fraction:0.7 ()
  in
  Alcotest.(check bool) "harsher faults need bigger push quorums" true
    (harsh.Params.d_i > lax.Params.d_i);
  Alcotest.(check bool) "harsher faults need bigger poll lists" true
    (harsh.Params.d_j > lax.Params.d_j);
  (* The sizing target must actually be met. *)
  let miss =
    Stats.binomial_tail ~trials:harsh.Params.d_i ~p:0.3
      ~at_least:(Params.majority_i harsh)
  in
  Alcotest.(check bool) "per-run miss below budget" true (miss *. 256.0 <= 0.05 +. 1e-9)

let test_params_samplers_distinct () =
  let p = Params.make ~n:64 ~seed:1L () in
  let qi = Fba_samplers.Sampler.quorum_sx (Params.sampler_i p) ~s:"s" ~x:0 in
  let qh = Fba_samplers.Sampler.quorum_sx (Params.sampler_h p) ~s:"s" ~x:0 in
  Alcotest.(check bool) "I and H are independent samplers" false (qi = qh)

(* --- Msg --- *)

let test_msg_bits () =
  let p = Params.make ~n:256 ~seed:1L () in
  let s = String.make 8 'x' in
  let push = Msg.bits p (Msg.Push s) in
  let poll = Msg.bits p (Msg.Poll { s; r = 1L }) in
  let fw1 = Msg.bits p (Msg.Fw1 { x = 0; s; r = 1L; w = 1 }) in
  let fw2 = Msg.bits p (Msg.Fw2 { x = 0; s; r = 1L }) in
  let answer = Msg.bits p (Msg.Answer s) in
  Alcotest.(check bool) "all positive" true (List.for_all (fun b -> b > 0) [ push; poll; fw1; fw2; answer ]);
  Alcotest.(check bool) "poll adds a label over push" true (poll > push);
  Alcotest.(check bool) "fw1 > fw2 (extra id)" true (fw1 > fw2);
  Alcotest.(check int) "push = header + payload" (8 + (2 * 8) + 64) push

(* --- Scenario --- *)

let mk_scenario ?(junk = Scenario.Junk_unique) ?(byz = 0.1) ?(kn = 0.85) ?(n = 128) seed =
  let params = Params.make_for ~n ~seed ~byzantine_fraction:byz ~knowledgeable_fraction:kn () in
  let rng = Prng.create (Int64.add seed 1000L) in
  Scenario.make ~junk ~params ~rng ~byzantine_fraction:byz ~knowledgeable_fraction:kn ()

let test_scenario_invariants () =
  let n = 128 in
  let sc = mk_scenario ~n 1L in
  Alcotest.(check int) "byzantine count" 12 (Bitset.cardinal sc.Scenario.corrupted);
  Alcotest.(check int) "knowledgeable count" 109 (Bitset.cardinal sc.Scenario.knowledgeable);
  (* Disjointness and assignment consistency. *)
  Bitset.iter
    (fun i ->
      Alcotest.(check bool) "knowledgeable are correct" false (Bitset.mem sc.Scenario.corrupted i);
      Alcotest.(check string) "knowledgeable hold gstring" sc.Scenario.gstring
        sc.Scenario.initial.(i))
    sc.Scenario.knowledgeable;
  for i = 0 to n - 1 do
    if Scenario.is_correct sc i && not (Bitset.mem sc.Scenario.knowledgeable i) then
      Alcotest.(check bool) "ignorant don't hold gstring" false
        (sc.Scenario.initial.(i) = sc.Scenario.gstring)
  done

let test_scenario_junk_modes () =
  let sc = mk_scenario ~junk:Scenario.Junk_default 2L in
  let ignorant =
    List.filter
      (fun i -> Scenario.is_correct sc i && not (Scenario.knows_gstring sc i))
      (List.init 128 (fun i -> i))
  in
  (match ignorant with
  | a :: b :: _ ->
    Alcotest.(check string) "default junk is shared" sc.Scenario.initial.(a)
      sc.Scenario.initial.(b)
  | _ -> Alcotest.fail "expected ignorant nodes");
  let sc2 = mk_scenario ~junk:(Scenario.Junk_shared 2) 3L in
  let distinct = Hashtbl.create 4 in
  List.iter
    (fun i ->
      if Scenario.is_correct sc2 i && not (Scenario.knows_gstring sc2 i) then
        Hashtbl.replace distinct sc2.Scenario.initial.(i) ())
    (List.init 128 (fun i -> i));
  Alcotest.(check int) "two shared junk strings" 2 (Hashtbl.length distinct)

let test_scenario_validation () =
  let params = Params.make ~n:64 ~seed:1L () in
  let rng = Prng.create 1L in
  Alcotest.check_raises "byz out of range"
    (Invalid_argument "Scenario.make: byzantine_fraction must be in [0, 1/3)") (fun () ->
      ignore
        (Scenario.make ~params ~rng ~byzantine_fraction:0.5 ~knowledgeable_fraction:0.8 ()));
  Alcotest.check_raises "know out of range"
    (Invalid_argument "Scenario.make: knowledgeable_fraction must be in (1/2, 1]") (fun () ->
      ignore
        (Scenario.make ~params ~rng ~byzantine_fraction:0.1 ~knowledgeable_fraction:0.5 ()));
  Alcotest.check_raises "overcommitted"
    (Invalid_argument "Scenario.make: more knowledgeable nodes requested than correct nodes exist")
    (fun () ->
      ignore
        (Scenario.make ~params ~rng ~byzantine_fraction:0.3 ~knowledgeable_fraction:0.9 ()))

let test_scenario_of_assignment () =
  let params = Params.make ~n:8 ~seed:1L ~gstring_bits:8 () in
  let corrupted = Bitset.of_list 8 [ 0 ] in
  let initial = [| "x"; "g"; "g"; "g"; "g"; "j"; "g"; "g" |] in
  let sc = Scenario.of_assignment ~params ~gstring:"g" ~corrupted ~initial () in
  Alcotest.(check int) "knowledgeable derived" 6 (Bitset.cardinal sc.Scenario.knowledgeable);
  Alcotest.(check bool) "corrupted holder not knowledgeable" false
    (Bitset.mem sc.Scenario.knowledgeable 0);
  Alcotest.(check (float 0.001)) "fraction" 0.75 (Scenario.knowledgeable_fraction sc)

let test_scenario_gstring_override_stable () =
  (* Same seed with/without explicit gstring must corrupt the same
     identities (the split-stream property used by ablations). *)
  let params = Params.make_for ~n:64 ~seed:4L ~byzantine_fraction:0.1 ~knowledgeable_fraction:0.8 () in
  let mk g =
    let rng = Prng.create 77L in
    Scenario.make ?gstring:g ~params ~rng ~byzantine_fraction:0.1 ~knowledgeable_fraction:0.8 ()
  in
  let a = mk None in
  let b = mk (Some (String.make ((Params.(params.gstring_bits) + 7) / 8) 'Q')) in
  Alcotest.(check (list int)) "same corruption" (Bitset.to_list a.Scenario.corrupted)
    (Bitset.to_list b.Scenario.corrupted);
  Alcotest.(check (list int)) "same knowledge" (Bitset.to_list a.Scenario.knowledgeable)
    (Bitset.to_list b.Scenario.knowledgeable)

(* --- AER end-to-end --- *)

let run_sync ?(mode = `Rushing) ?(strict_drop = false) ~attack sc =
  let cfg = Aer.config_of_scenario ~strict_drop sc in
  let n = Scenario.(sc.params.Params.n) in
  let quiet_limit =
    if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
      Params.(sc.Scenario.params.repoll_timeout) + 2
    else 3
  in
  Engine.run ~quiet_limit ~config:cfg ~n ~seed:sc.Scenario.params.Params.seed
    ~adversary:(attack sc) ~mode ~max_rounds:200 ()

let outcomes sc (res : Engine.result) =
  let ok = ref 0 and bad = ref 0 and und = ref 0 in
  Array.iteri
    (fun i o ->
      if Scenario.is_correct sc i then begin
        match o with
        | Some v when v = sc.Scenario.gstring -> incr ok
        | Some _ -> incr bad
        | None -> incr und
      end)
    res.Fba_sim.Sync_engine.outputs;
  (!ok, !bad, !und)

let test_aer_silent () =
  let sc = mk_scenario 10L in
  let res = run_sync ~attack:Attacks.silent sc in
  let ok, bad, und = outcomes sc res in
  Alcotest.(check int) "no wrong decisions" 0 bad;
  Alcotest.(check int) "no undecided" 0 und;
  Alcotest.(check int) "everyone on gstring" (Scenario.correct_count sc) ok;
  Alcotest.(check bool) "constant rounds" true
    (Fba_sim.Metrics.rounds res.Fba_sim.Sync_engine.metrics <= 10)

let test_aer_success_guaranteed_no_faults () =
  (* "unlike many randomized protocols, success is guaranteed when
     there is no Byzantine fault" — with 0 corruption every node must
     decide gstring. *)
  let params = Params.make_for ~n:64 ~seed:11L ~byzantine_fraction:0.0 ~knowledgeable_fraction:0.8 () in
  let rng = Prng.create 12L in
  let sc =
    Scenario.make ~params ~rng ~byzantine_fraction:0.0 ~knowledgeable_fraction:0.8 ()
  in
  let res = run_sync ~attack:Attacks.silent sc in
  let ok, bad, und = outcomes sc res in
  Alcotest.(check int) "all decide" 64 ok;
  Alcotest.(check int) "none wrong" 0 bad;
  Alcotest.(check int) "none undecided" 0 und

let test_aer_flood_safety () =
  let sc = mk_scenario ~junk:(Scenario.Junk_shared 2) 13L in
  let res =
    run_sync ~attack:(fun sc -> Attacks.(compose sc [ push_flood ~fake_strings:4 sc; wrong_answer sc ])) sc
  in
  let ok, bad, und = outcomes sc res in
  Alcotest.(check int) "no wrong decisions under flood+lies" 0 bad;
  Alcotest.(check int) "no undecided" 0 und;
  Alcotest.(check int) "all on gstring" (Scenario.correct_count sc) ok

let test_aer_flood_candidate_bound () =
  (* Lemma 4: sum of candidate-list sizes stays O(n). *)
  let sc = mk_scenario ~junk:(Scenario.Junk_shared 2) ~n:128 14L in
  let cfg = Aer.config_of_scenario sc in
  let res =
    Engine.run ~config:cfg ~n:128 ~seed:sc.Scenario.params.Params.seed
      ~adversary:(Attacks.push_flood ~fake_strings:6 sc)
      ~mode:`Rushing ~max_rounds:100 ()
  in
  let sum = ref 0 and maxp = ref 0 in
  Array.iteri
    (fun i st ->
      match st with
      | Some st when Scenario.is_correct sc i ->
        sum := !sum + Aer.candidate_count st;
        maxp := max !maxp (Aer.push_messages_sent st)
      | _ -> ())
    res.Fba_sim.Sync_engine.states;
  Alcotest.(check bool) "Lemma 4: sum|Lx| <= 3n" true (!sum <= 3 * 128);
  (* Lemma 3: no correct node pushes more than O(d_i). *)
  Alcotest.(check bool) "Lemma 3: push fan-out bounded" true
    (!maxp <= 3 * Params.(sc.Scenario.params.d_i))

let test_aer_blast_flood_ignored () =
  let sc = mk_scenario ~n:64 15L in
  let res = run_sync ~attack:(fun sc -> Attacks.push_flood ~blast:true sc) sc in
  let _, bad, und = outcomes sc res in
  Alcotest.(check int) "blast flood: no wrong" 0 bad;
  Alcotest.(check int) "blast flood: no undecided" 0 und

let test_aer_non_rushing_constant_time () =
  let sc = mk_scenario ~byz:0.2 ~kn:0.8 16L in
  let res = run_sync ~mode:`Non_rushing ~attack:(fun sc -> Attacks.cornering sc) sc in
  let _, bad, und = outcomes sc res in
  Alcotest.(check int) "no wrong" 0 bad;
  Alcotest.(check int) "no undecided" 0 und;
  match Fba_sim.Metrics.max_decision_round_correct res.Fba_sim.Sync_engine.metrics with
  | Some r -> Alcotest.(check bool) "Lemma 8: constant decision time" true (r <= 8)
  | None -> Alcotest.fail "incomplete"

let test_aer_cornering_safety () =
  let sc = mk_scenario ~byz:0.2 ~kn:0.8 17L in
  let res = run_sync ~mode:`Rushing ~attack:(fun sc -> Attacks.cornering sc) sc in
  let _, bad, und = outcomes sc res in
  Alcotest.(check int) "no wrong under cornering" 0 bad;
  Alcotest.(check int) "all decide eventually" 0 und

let test_aer_quorum_capture_concentrates_load () =
  let params = Params.make ~n:128 ~seed:18L ~d_i:12 ~d_h:12 ~d_j:12 () in
  let rng = Prng.create 19L in
  let sc =
    Scenario.make ~params ~rng ~byzantine_fraction:0.25 ~knowledgeable_fraction:0.7 ()
  in
  let cfg = Aer.config_of_scenario sc in
  let res =
    Engine.run ~config:cfg ~n:128 ~seed:params.Params.seed
      ~adversary:(Attacks.quorum_capture ~victims:2 ~strings_per_victim:16 sc)
      ~mode:`Rushing ~max_rounds:100 ()
  in
  let max_cand = ref 0 in
  Array.iteri
    (fun i st ->
      match st with
      | Some st when Scenario.is_correct sc i -> max_cand := max !max_cand (Aer.candidate_count st)
      | _ -> ())
    res.Fba_sim.Sync_engine.states;
  (* Victims get force-fed candidates: the max list must be far above
     the ~1 of unattacked runs. *)
  Alcotest.(check bool) "victim verifies many strings" true (!max_cand >= 8)

let test_aer_async () =
  let sc = mk_scenario ~n:96 20L in
  let cfg = Aer.config_of_scenario sc in
  let adversary = Attacks.async_cornering sc in
  let res =
    Async.run ~config:cfg ~n:96 ~seed:sc.Scenario.params.Params.seed ~adversary ~max_time:3000 ()
  in
  let ok = ref 0 and bad = ref 0 in
  Array.iteri
    (fun i o ->
      if Scenario.is_correct sc i then
        match o with
        | Some v when v = sc.Scenario.gstring -> incr ok
        | Some _ -> incr bad
        | None -> ())
    res.Fba_sim.Async_engine.outputs;
  Alcotest.(check int) "async: no wrong" 0 !bad;
  Alcotest.(check int) "async: all decide gstring" (Scenario.correct_count sc) !ok

let test_aer_repoll_extension () =
  (* With deliberately tiny poll lists (but safe pull quorums — a bad
     H(g,x) is label-independent, so re-polling cannot rescue it),
     attempts=1 strands some nodes and attempts=4 must recover them. *)
  let run attempts =
    let params =
      Params.make ~n:128 ~seed:2033L ~d_i:17 ~d_h:17 ~d_j:7 ~max_poll_attempts:attempts ()
    in
    let rng = Prng.create 3033L in
    let sc =
      Scenario.make ~params ~rng ~byzantine_fraction:0.2 ~knowledgeable_fraction:0.8 ()
    in
    let res = run_sync ~attack:Attacks.silent sc in
    let _, _, und = outcomes sc res in
    und
  in
  let und1 = run 1 and und4 = run 4 in
  Alcotest.(check bool) "re-polling helps" true (und4 <= und1);
  Alcotest.(check int) "re-polling completes" 0 und4

let test_aer_deterministic () =
  let sc1 = mk_scenario ~n:64 21L in
  let sc2 = mk_scenario ~n:64 21L in
  let r1 = run_sync ~attack:Attacks.silent sc1 in
  let r2 = run_sync ~attack:Attacks.silent sc2 in
  Alcotest.(check int) "same bits"
    (Fba_sim.Metrics.total_bits_correct r1.Fba_sim.Sync_engine.metrics)
    (Fba_sim.Metrics.total_bits_correct r2.Fba_sim.Sync_engine.metrics);
  Alcotest.(check int) "same rounds"
    (Fba_sim.Metrics.rounds r1.Fba_sim.Sync_engine.metrics)
    (Fba_sim.Metrics.rounds r2.Fba_sim.Sync_engine.metrics)

let test_aer_strict_drop_runs () =
  let sc = mk_scenario ~n:64 22L in
  let res = run_sync ~strict_drop:true ~attack:Attacks.silent sc in
  let _, bad, _ = outcomes sc res in
  Alcotest.(check int) "strict mode safe" 0 bad

(* --- BA composition --- *)

let test_ba_end_to_end () =
  let r = Ba.run_sync ~n:128 ~seed:30L ~byzantine_fraction:0.1 () in
  Alcotest.(check bool) "phase 1 reaches a.e." true (r.Ba.ae_fraction > 0.75);
  Alcotest.(check int) "everyone agrees" r.Ba.correct r.Ba.agreed;
  Alcotest.(check bool) "all decided" true r.Ba.all_decided;
  match r.Ba.gstring with
  | Some g -> Alcotest.(check bool) "gstring non-trivial" true (String.length g > 0)
  | None -> Alcotest.fail "no gstring"

let test_ba_metrics_merged () =
  let r = Ba.run_sync ~n:64 ~seed:31L ~byzantine_fraction:0.1 () in
  Alcotest.(check int) "rounds add up"
    (Fba_sim.Metrics.rounds r.Ba.aeba_metrics + Fba_sim.Metrics.rounds r.Ba.aer_metrics)
    (Fba_sim.Metrics.rounds r.Ba.metrics);
  Alcotest.(check int) "bits add up"
    (Fba_sim.Metrics.total_bits_correct r.Ba.aeba_metrics
    + Fba_sim.Metrics.total_bits_correct r.Ba.aer_metrics)
    (Fba_sim.Metrics.total_bits_correct r.Ba.metrics)

let test_ba_no_faults () =
  let r = Ba.run_sync ~n:64 ~seed:32L ~byzantine_fraction:0.0 () in
  Alcotest.(check int) "unanimous" 64 r.Ba.agreed

let suites =
  [
    ( "core.params",
      [
        Alcotest.test_case "defaults" `Quick test_params_defaults;
        Alcotest.test_case "validation" `Quick test_params_validation;
        Alcotest.test_case "make_for sizing" `Quick test_params_make_for_sizing;
        Alcotest.test_case "independent samplers" `Quick test_params_samplers_distinct;
      ] );
    ("core.msg", [ Alcotest.test_case "wire sizes" `Quick test_msg_bits ]);
    ( "core.scenario",
      [
        Alcotest.test_case "invariants" `Quick test_scenario_invariants;
        Alcotest.test_case "junk modes" `Quick test_scenario_junk_modes;
        Alcotest.test_case "validation" `Quick test_scenario_validation;
        Alcotest.test_case "of_assignment" `Quick test_scenario_of_assignment;
        Alcotest.test_case "gstring override keeps workload" `Quick
          test_scenario_gstring_override_stable;
      ] );
    ( "core.aer",
      [
        Alcotest.test_case "silent adversary" `Quick test_aer_silent;
        Alcotest.test_case "guaranteed success, no faults" `Quick
          test_aer_success_guaranteed_no_faults;
        Alcotest.test_case "flood + bogus answers safety (L4/L5/L7)" `Quick test_aer_flood_safety;
        Alcotest.test_case "candidate and push bounds (L3/L4)" `Quick
          test_aer_flood_candidate_bound;
        Alcotest.test_case "blast flood ignored" `Quick test_aer_blast_flood_ignored;
        Alcotest.test_case "non-rushing constant time (L8)" `Quick
          test_aer_non_rushing_constant_time;
        Alcotest.test_case "cornering safety (L6)" `Quick test_aer_cornering_safety;
        Alcotest.test_case "quorum capture concentrates load" `Quick
          test_aer_quorum_capture_concentrates_load;
        Alcotest.test_case "asynchronous execution (L10)" `Quick test_aer_async;
        Alcotest.test_case "re-poll extension" `Quick test_aer_repoll_extension;
        Alcotest.test_case "deterministic replay" `Quick test_aer_deterministic;
        Alcotest.test_case "strict-drop mode" `Quick test_aer_strict_drop_runs;
      ] );
    ( "core.ba",
      [
        Alcotest.test_case "end to end" `Quick test_ba_end_to_end;
        Alcotest.test_case "metrics merged" `Quick test_ba_metrics_merged;
        Alcotest.test_case "no faults" `Quick test_ba_no_faults;
      ] );
  ]
