open Fba_stdx
open Fba_core
module Attacks = Fba_adversary.Aer_attacks
module Corruption = Fba_adversary.Corruption
module Schedulers = Fba_adversary.Schedulers
module Engine = Fba_sim.Sync_engine.Make (Aer)

let mk_scenario ?(byz = 0.1) ?(kn = 0.85) ?(n = 96) seed =
  let params = Params.make_for ~n ~seed ~byzantine_fraction:byz ~knowledgeable_fraction:kn () in
  let rng = Prng.create (Int64.add seed 500L) in
  Scenario.make ~params ~rng ~byzantine_fraction:byz ~knowledgeable_fraction:kn ()

(* --- attack envelope hygiene: every strategy must only send from
   corrupted identities (the engine enforces it; these tests check the
   strategies never trip that check on a real run). --- *)

let run_with attack sc =
  let cfg = Aer.config_of_scenario sc in
  let n = Scenario.(sc.params.Params.n) in
  Engine.run ~config:cfg ~n ~seed:sc.Scenario.params.Params.seed ~adversary:(attack sc)
    ~mode:`Rushing ~max_rounds:100 ()

let test_attacks_are_well_formed () =
  let sc = mk_scenario 1L in
  List.iter
    (fun (name, attack) ->
      match run_with attack sc with
      | _ -> Alcotest.(check pass) name () ()
      | exception Invalid_argument msg ->
        Alcotest.failf "%s sent an invalid envelope: %s" name msg)
    [
      ("silent", Attacks.silent);
      ("push_flood", fun sc -> Attacks.push_flood sc);
      ("push_flood blast", fun sc -> Attacks.push_flood ~blast:true sc);
      ("wrong_answer", Attacks.wrong_answer);
      ("cornering", fun sc -> Attacks.cornering sc);
      ("quorum_capture", fun sc -> Attacks.quorum_capture sc);
      ("composed", fun sc -> Attacks.(compose sc [ push_flood sc; wrong_answer sc ]));
    ]

let test_compose_rejects_mismatched () =
  let sc1 = mk_scenario 2L in
  let sc2 = mk_scenario 3L in
  Alcotest.check_raises "different scenarios rejected"
    (Invalid_argument "Aer_attacks.compose: attacks built from different scenarios") (fun () ->
      ignore (Attacks.compose sc1 [ Attacks.silent sc1; Attacks.silent sc2 ]))

let test_push_flood_volume () =
  (* Smart flooding sends each fake string only to the quorums the
     sender sits in: per fake string at most ~(a*d_i) targets/sender. *)
  let sc = mk_scenario 4L in
  let attack = Attacks.push_flood ~fake_strings:2 sc in
  let envs = attack.Fba_sim.Sync_engine.act ~round:0 ~observed:(fun () -> []) in
  let t = Bitset.cardinal sc.Scenario.corrupted in
  let d_i = Params.(sc.Scenario.params.d_i) in
  Alcotest.(check bool) "nonempty" true (envs <> []);
  Alcotest.(check bool) "bounded by inverse-degree" true
    (List.length envs <= 2 * t * 4 * d_i);
  (* Idempotence: only fires in round 0. *)
  Alcotest.(check (list reject)) "fires once"
    []
    (List.map (fun _ -> ()) (attack.Fba_sim.Sync_engine.act ~round:1 ~observed:(fun () -> [])))

let test_cornering_budget () =
  (* Each corrupted node spends exactly one pull request: d_j polls +
     d_h pulls. *)
  let sc = mk_scenario ~byz:0.2 ~kn:0.8 5L in
  let attack = Attacks.cornering sc in
  (* feed it a synthetic observation: one honest poll (packed, like
     everything the engine would show it) *)
  let intern = sc.Scenario.intern in
  let observed =
    [
      Fba_sim.Envelope.make ~src:1 ~dst:2
        (Msg.Packed.pack sc.Scenario.layout intern
           (Msg.Poll { s = sc.Scenario.gstring; r = 5L }));
    ]
  in
  let envs = attack.Fba_sim.Sync_engine.act ~round:0 ~observed:(fun () -> observed) in
  let t = Bitset.cardinal sc.Scenario.corrupted in
  let expected = t * (Params.(sc.Scenario.params.d_j) + Params.(sc.Scenario.params.d_h)) in
  Alcotest.(check int) "budget = t*(d_j + d_h) messages" expected (List.length envs);
  List.iter
    (fun (e : Aer.msg Fba_sim.Envelope.t) ->
      Alcotest.(check bool) "from corrupted" true (Bitset.mem sc.Scenario.corrupted e.src);
      match Msg.Packed.unpack sc.Scenario.layout intern e.Fba_sim.Envelope.msg with
      | Msg.Poll { s; _ } | Msg.Pull { s; _ } ->
        Alcotest.(check string) "targets gstring" sc.Scenario.gstring s
      | _ -> Alcotest.fail "unexpected message kind")
    envs

let test_quorum_capture_strings_pass_filter () =
  (* Every push the capture attack sends must come from a member of the
     push quorum it targets (otherwise receivers drop it silently). *)
  let params = Params.make ~n:96 ~seed:6L ~d_i:12 ~d_h:12 ~d_j:12 () in
  let rng = Prng.create 7L in
  let sc = Scenario.make ~params ~rng ~byzantine_fraction:0.25 ~knowledgeable_fraction:0.7 () in
  let attack = Attacks.quorum_capture ~victims:2 ~strings_per_victim:4 sc in
  let envs = attack.Fba_sim.Sync_engine.act ~round:0 ~observed:(fun () -> []) in
  Alcotest.(check bool) "found capture strings" true (envs <> []);
  let si = Params.sampler_i params in
  List.iter
    (fun (e : Aer.msg Fba_sim.Envelope.t) ->
      match Msg.Packed.unpack sc.Scenario.layout sc.Scenario.intern e.Fba_sim.Envelope.msg with
      | Msg.Push s ->
        Alcotest.(check bool) "sender in I(s, victim)" true
          (Fba_samplers.Sampler.mem_sx si ~s ~x:e.dst ~y:e.src)
      | _ -> Alcotest.fail "capture should only push")
    envs

(* --- Corruption --- *)

let test_corruption_random () =
  let rng = Prng.create 8L in
  let c = Corruption.random ~n:100 ~rng ~count:25 in
  Alcotest.(check int) "exact count" 25 (Bitset.cardinal c)

let test_corruption_adaptive_denies_gstring () =
  (* The adaptive adversary corrupts a majority of I(gstring, victim):
     the victim can never accept gstring — the capability the paper's
     non-adaptive assumption removes. *)
  let n = 96 in
  let params = Params.make_for ~n ~seed:9L ~byzantine_fraction:0.2 ~knowledgeable_fraction:0.8 () in
  let rng = Prng.create 10L in
  let gstring = Bytes.unsafe_to_string (Prng.bits rng params.Params.gstring_bits) in
  let victim = 0 in
  let t = n / 5 in
  let corrupted =
    Corruption.seize_push_quorum ~sampler_i:(Params.sampler_i params) ~gstring
      ~victims:[ victim ] ~n ~rng ~count:t
  in
  Alcotest.(check int) "budget respected" t (Bitset.cardinal corrupted);
  Alcotest.(check bool) "victim itself not corrupted" false (Bitset.mem corrupted victim);
  (* Build the scenario around this corruption via of_assignment. *)
  let initial =
    Array.init n (fun i ->
        if Bitset.mem corrupted i || i mod 7 = 0 then Printf.sprintf "junk-%d" i else gstring)
  in
  let sc = Scenario.of_assignment ~params ~gstring ~corrupted ~initial () in
  let res = run_with Attacks.silent sc in
  (match res.Fba_sim.Sync_engine.states.(victim) with
  | Some st ->
    Alcotest.(check bool) "victim never accepts gstring via push" false
      (List.mem gstring (Aer.candidates st) && not (Scenario.knows_gstring sc victim))
  | None -> Alcotest.fail "victim should be correct");
  (* The victim can only know gstring if it started with it. *)
  if not (Scenario.knows_gstring sc victim) then
    Alcotest.(check (option string)) "victim cannot decide gstring" None
      res.Fba_sim.Sync_engine.outputs.(victim)

(* --- Schedulers --- *)

let test_schedulers () =
  Alcotest.(check int) "unit" 1 (Schedulers.unit_delay ~time:0 ~src:1 ~dst:2 ());
  let corrupted = Bitset.of_list 4 [ 3 ] in
  Alcotest.(check int) "slow correct-correct" 5
    (Schedulers.slow_correct ~corrupted ~max_delay:5 ~time:0 ~src:1 ~dst:2 ());
  Alcotest.(check int) "fast byzantine" 1
    (Schedulers.slow_correct ~corrupted ~max_delay:5 ~time:0 ~src:3 ~dst:2 ());
  for t = 0 to 50 do
    let d = Schedulers.uniform_random ~seed:1L ~max_delay:7 ~time:t ~src:1 ~dst:2 () in
    Alcotest.(check bool) "uniform in range" true (d >= 1 && d <= 7)
  done;
  (* determinism *)
  Alcotest.(check int) "uniform deterministic"
    (Schedulers.uniform_random ~seed:1L ~max_delay:7 ~time:3 ~src:1 ~dst:2 ())
    (Schedulers.uniform_random ~seed:1L ~max_delay:7 ~time:3 ~src:1 ~dst:2 ())

let suites =
  [
    ( "adversary.attacks",
      [
        Alcotest.test_case "well-formed envelopes" `Quick test_attacks_are_well_formed;
        Alcotest.test_case "compose validation" `Quick test_compose_rejects_mismatched;
        Alcotest.test_case "push flood volume" `Quick test_push_flood_volume;
        Alcotest.test_case "cornering budget" `Quick test_cornering_budget;
        Alcotest.test_case "quorum capture passes filter" `Quick
          test_quorum_capture_strings_pass_filter;
      ] );
    ( "adversary.corruption",
      [
        Alcotest.test_case "random count" `Quick test_corruption_random;
        Alcotest.test_case "adaptive quorum seizure" `Quick
          test_corruption_adaptive_denies_gstring;
      ] );
    ("adversary.schedulers", [ Alcotest.test_case "delay policies" `Quick test_schedulers ]);
  ]
