open Fba_stdx
open Fba_aeba

(* --- Phase_king as a pure machine, driven by a tiny synchronous
   simulator that also lets us script Byzantine members. --- *)

(* Run phase-king among [members]; [byz] maps a Byzantine id to a
   function from (round, honest messages so far) to its sends. Returns
   the final values of the honest members. *)
let run_phase_king ~members ~byz ~initial =
  let honest = List.filter (fun m -> not (List.mem_assoc m byz)) (Array.to_list members) in
  let machines =
    List.map (fun m -> (m, Phase_king.create ~members ~me:m ~initial:(initial m))) honest
  in
  let rounds = Phase_king.rounds_needed (snd (List.hd machines)) in
  (* mailbox: messages to deliver next round: (dst, src, msg) *)
  let mailbox = ref [] in
  for round = 0 to rounds do
    (* deliver messages sent last round *)
    let deliveries = !mailbox in
    mailbox := [];
    List.iter
      (fun (dst, src, m) ->
        match List.assoc_opt dst machines with
        | Some machine -> Phase_king.on_receive machine ~round ~src m
        | None -> ())
      deliveries;
    (* honest sends *)
    List.iter
      (fun (me, machine) ->
        List.iter
          (fun (dst, m) -> mailbox := (dst, me, m) :: !mailbox)
          (Phase_king.on_round machine ~round))
      machines;
    (* byzantine sends *)
    List.iter
      (fun (b, strategy) ->
        List.iter (fun (dst, m) -> mailbox := (dst, b, m) :: !mailbox) (strategy round))
      byz
  done;
  List.map (fun (m, machine) -> (m, Phase_king.current machine)) machines

let all_same = function
  | [] -> true
  | (_, v) :: rest -> List.for_all (fun (_, v') -> v' = v) rest

let test_pk_validity_no_faults () =
  let members = Array.init 7 (fun i -> i) in
  let outs = run_phase_king ~members ~byz:[] ~initial:(fun _ -> "v") in
  Alcotest.(check bool) "agreement" true (all_same outs);
  List.iter (fun (_, v) -> Alcotest.(check string) "validity" "v" v) outs

let test_pk_agreement_mixed_inputs () =
  let members = Array.init 7 (fun i -> i) in
  let outs =
    run_phase_king ~members ~byz:[] ~initial:(fun i -> if i < 3 then "a" else "b")
  in
  Alcotest.(check bool) "agreement on something" true (all_same outs)

let test_pk_silent_byzantine () =
  let members = Array.init 10 (fun i -> i) in
  (* t = 3 tolerated; 3 silent byz. *)
  let byz = [ (0, fun _ -> []); (4, (fun _ -> [])); (8, fun _ -> []) ] in
  let outs = run_phase_king ~members ~byz ~initial:(fun _ -> "v") in
  Alcotest.(check bool) "agreement" true (all_same outs);
  List.iter (fun (_, v) -> Alcotest.(check string) "validity kept" "v" v) outs

let test_pk_equivocating_byzantine () =
  let members = Array.init 10 (fun i -> i) in
  (* A Byzantine member (also an early king) equivocates values. *)
  let equivocate _b round =
    if round mod 4 = 0 then
      Array.to_list
        (Array.map (fun m -> (m, Phase_king.Value (if m mod 2 = 0 then "x" else "y"))) members)
    else if round mod 4 = 2 then
      Array.to_list (Array.map (fun m -> (m, Phase_king.King (Printf.sprintf "k%d" m))) members)
    else []
  in
  let byz = [ (0, equivocate 0); (5, equivocate 5) ] in
  let outs =
    run_phase_king ~members ~byz ~initial:(fun i -> if i < 5 then "a" else "b")
  in
  Alcotest.(check bool) "agreement despite equivocation" true (all_same outs)

let test_pk_validity_under_equivocation () =
  let members = Array.init 10 (fun i -> i) in
  let flood _b round =
    if round mod 4 = 0 then Array.to_list (Array.map (fun m -> (m, Phase_king.Value "evil")) members)
    else if round mod 4 = 2 then
      Array.to_list (Array.map (fun m -> (m, Phase_king.King "evil")) members)
    else []
  in
  let byz = [ (1, flood 1); (6, flood 6); (9, flood 9) ] in
  (* All honest agree on "v" initially: validity must hold (n - t = 7 >= keep threshold). *)
  let outs = run_phase_king ~members ~byz ~initial:(fun _ -> "v") in
  List.iter (fun (_, v) -> Alcotest.(check string) "validity under attack" "v" v) outs

let test_pk_rounds_needed () =
  let members = Array.init 10 (fun i -> i) in
  let m = Phase_king.create ~members ~me:0 ~initial:"v" in
  (* t = 3, phases = 4, rounds = 16. *)
  Alcotest.(check int) "rounds" 16 (Phase_king.rounds_needed m);
  Alcotest.(check bool) "not finished early" false (Phase_king.finished m ~round:15);
  Alcotest.(check bool) "finished at the end" true (Phase_king.finished m ~round:16)

let test_pk_validation () =
  Alcotest.check_raises "empty members" (Invalid_argument "Phase_king.create: empty member set")
    (fun () -> ignore (Phase_king.create ~members:[||] ~me:0 ~initial:"v"));
  Alcotest.check_raises "me not a member" (Invalid_argument "Phase_king.create: me not a member")
    (fun () -> ignore (Phase_king.create ~members:[| 1; 2 |] ~me:0 ~initial:"v"))

(* --- Committee_tree --- *)

let test_tree_structure () =
  let t = Committee_tree.build ~n:256 ~seed:3L ~group_size:16 ~committee_size:16 in
  Alcotest.(check int) "n" 256 (Committee_tree.n t);
  Alcotest.(check int) "committee size" 16 (Committee_tree.committee_size t);
  Alcotest.(check int) "groups are a power of two" (1 lsl Committee_tree.levels t)
    (Committee_tree.group_count t);
  (* Groups partition the nodes. *)
  let seen = Array.make 256 0 in
  for g = 0 to Committee_tree.group_count t - 1 do
    Array.iter (fun id -> seen.(id) <- seen.(id) + 1) (Committee_tree.group_members t g)
  done;
  Array.iteri
    (fun id c -> Alcotest.(check int) (Printf.sprintf "node %d in one group" id) 1 c)
    seen

let test_tree_group_of () =
  let t = Committee_tree.build ~n:100 ~seed:3L ~group_size:10 ~committee_size:8 in
  for id = 0 to 99 do
    let g = Committee_tree.group_of t id in
    Alcotest.(check bool)
      (Printf.sprintf "node %d listed in its group" id)
      true
      (Array.exists (fun v -> v = id) (Committee_tree.group_members t g))
  done

let test_tree_memberships () =
  let t = Committee_tree.build ~n:128 ~seed:3L ~group_size:16 ~committee_size:12 in
  (* memberships must agree with committee listings, both directions. *)
  for level = 0 to Committee_tree.levels t do
    for index = 0 to (1 lsl level) - 1 do
      Array.iter
        (fun id ->
          Alcotest.(check bool) "listed membership" true
            (List.mem (level, index) (Committee_tree.memberships t id)))
        (Committee_tree.committee t ~level ~index)
    done
  done;
  for id = 0 to 127 do
    List.iter
      (fun (level, index) ->
        Alcotest.(check bool) "membership is real" true
          (Committee_tree.is_member t ~level ~index id))
      (Committee_tree.memberships t id)
  done

let test_tree_parent_children () =
  let t = Committee_tree.build ~n:64 ~seed:3L ~group_size:8 ~committee_size:8 in
  Alcotest.(check (option (pair int int))) "root has no parent" None
    (Committee_tree.parent t ~level:0 ~index:0);
  (match Committee_tree.children t ~level:0 ~index:0 with
  | [ (1, 0); (1, 1) ] -> ()
  | _ -> Alcotest.fail "root children");
  let leaf = Committee_tree.levels t in
  Alcotest.(check (list (pair int int))) "leaves have no children" []
    (Committee_tree.children t ~level:leaf ~index:0);
  Alcotest.(check (option (pair int int))) "child's parent" (Some (0, 0))
    (Committee_tree.parent t ~level:1 ~index:1)

let test_tree_determinism () =
  let t1 = Committee_tree.build ~n:64 ~seed:3L ~group_size:8 ~committee_size:8 in
  let t2 = Committee_tree.build ~n:64 ~seed:3L ~group_size:8 ~committee_size:8 in
  Alcotest.(check (array int)) "same seed same root" (Committee_tree.root t1)
    (Committee_tree.root t2)

let test_tree_edge_shapes () =
  (* group_size > n collapses to a single group; committee clamps to n. *)
  let t = Committee_tree.build ~n:5 ~seed:1L ~group_size:50 ~committee_size:50 in
  Alcotest.(check int) "one group" 1 (Committee_tree.group_count t);
  Alcotest.(check int) "levels 0" 0 (Committee_tree.levels t);
  Alcotest.(check int) "committee clamped" 5 (Committee_tree.committee_size t);
  Alcotest.(check int) "all in group 0" 5 (Array.length (Committee_tree.group_members t 0));
  (* n = 1: trivial but must not crash. *)
  let t1 = Committee_tree.build ~n:1 ~seed:1L ~group_size:1 ~committee_size:1 in
  Alcotest.(check (array int)) "singleton root" [| 0 |] (Committee_tree.root t1)

(* --- Aeba end-to-end --- *)

module Engine = Fba_sim.Sync_engine.Make (Aeba)

let run_aeba ~n ~byz_frac ~seed =
  let cfg = Aeba.make_config ~n ~seed ~byzantine_fraction:byz_frac () in
  let rng = Prng.create (Int64.add seed 17L) in
  let t = int_of_float (byz_frac *. float_of_int n) in
  let corrupted = Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k:t) in
  let res =
    Engine.run ~config:cfg ~n ~seed
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing
      ~max_rounds:(Aeba.total_rounds cfg + 2) ()
  in
  (cfg, corrupted, res)

let test_aeba_agreement () =
  let n = 128 in
  let _, corrupted, res = run_aeba ~n ~byz_frac:0.1 ~seed:21L in
  let mask = Array.init n (fun i -> not (Bitset.mem corrupted i)) in
  let reference = Aeba.reference_string res.Fba_sim.Sync_engine.outputs mask in
  Alcotest.(check bool) "has a reference" true (reference <> None);
  let agree = ref 0 and correct = ref 0 in
  Array.iteri
    (fun i o ->
      if mask.(i) then begin
        incr correct;
        Alcotest.(check bool) "every correct node outputs" true (o <> None);
        if o = reference then incr agree
      end)
    res.Fba_sim.Sync_engine.outputs;
  (* Almost-everywhere: at least 90% of correct nodes agree. *)
  Alcotest.(check bool) "a.e. agreement" true
    (float_of_int !agree >= 0.9 *. float_of_int !correct)

let test_aeba_rounds_budget () =
  let n = 128 in
  let cfg, _, res = run_aeba ~n ~byz_frac:0.1 ~seed:22L in
  Alcotest.(check bool) "finishes on schedule" true
    (Fba_sim.Metrics.rounds res.Fba_sim.Sync_engine.metrics <= Aeba.total_rounds cfg)

let test_aeba_gstring_length () =
  let n = 64 in
  let cfg, corrupted, res = run_aeba ~n ~byz_frac:0.1 ~seed:23L in
  let mask = Array.init n (fun i -> not (Bitset.mem corrupted i)) in
  match Aeba.reference_string res.Fba_sim.Sync_engine.outputs mask with
  | None -> Alcotest.fail "no reference"
  | Some g ->
    Alcotest.(check int) "gstring length matches config" (Aeba.config_gstring_bits cfg)
      (8 * String.length g)

let test_aeba_no_faults_unanimous () =
  let n = 64 in
  let cfg = Aeba.make_config ~n ~seed:31L ~byzantine_fraction:0.1 () in
  let res =
    Engine.run ~config:cfg ~n ~seed:31L
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted:(Bitset.create n))
      ~mode:`Rushing
      ~max_rounds:(Aeba.total_rounds cfg + 2) ()
  in
  let first = res.Fba_sim.Sync_engine.outputs.(0) in
  Alcotest.(check bool) "output exists" true (first <> None);
  Array.iteri
    (fun i o -> Alcotest.(check bool) (Printf.sprintf "node %d agrees" i) true (o = first))
    res.Fba_sim.Sync_engine.outputs

let test_aeba_config_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Aeba.make_config: n < 2") (fun () ->
      ignore (Aeba.make_config ~n:1 ~seed:1L ()));
  let cfg = Aeba.make_config ~n:64 ~seed:1L ~byzantine_fraction:0.2 () in
  let cfg2 = Aeba.make_config ~n:64 ~seed:1L ~byzantine_fraction:0.1 () in
  let m tree = Committee_tree.committee_size tree in
  Alcotest.(check bool) "higher byz -> larger committees" true
    (m (Aeba.config_tree cfg) >= m (Aeba.config_tree cfg2))

(* --- The asynchrony boundary (paper, Section 5) --- *)

module Async_engine = Fba_sim.Async_engine.Make (Aeba)

let run_aeba_async ~n ~seed ~delay_fn ~max_delay =
  let cfg = Aeba.make_config ~n ~seed ~byzantine_fraction:0.1 () in
  let adversary =
    {
      (Fba_sim.Async_engine.null_adversary ~corrupted:(Bitset.create n)) with
      Fba_sim.Async_engine.max_delay;
      delay = delay_fn;
    }
  in
  let res =
    Async_engine.run ~config:cfg ~n ~seed ~adversary
      ~max_time:(4 * (Aeba.total_rounds cfg + 2) * max_delay) ()
  in
  let mask = Array.init n (fun _ -> true) in
  match Aeba.reference_string res.Fba_sim.Async_engine.outputs mask with
  | None -> (0.0, "")
  | Some r ->
    let agree = ref 0 in
    Array.iter (fun o -> if o = Some r then incr agree) res.Fba_sim.Async_engine.outputs;
    (float_of_int !agree /. float_of_int n, r)

let is_all_zero s = String.for_all (fun c -> c = '\000') s

let test_aeba_async_boundary () =
  (* With unit delays the asynchronous engine reduces to lock-step:
     full agreement on a string with actual entropy. *)
  let frac1, g1 = run_aeba_async ~n:64 ~seed:51L ~delay_fn:(fun ~time:_ ~src:_ ~dst:_ _ -> 1) ~max_delay:1 in
  Alcotest.(check (float 0.001)) "lock-step async works" 1.0 frac1;
  Alcotest.(check bool) "lock-step string carries entropy" false (is_all_zero g1);
  (* With real asynchrony (every message delayed 3 steps) the fixed
     round schedule misses every delivery: the committees time out and
     fall back to defaults, so nodes still "agree" — on the all-zero
     default string, which the adversary can predict. The randomness
     the composition needs is gone, which is exactly why the paper's
     conclusion lists asynchronous almost-everywhere agreement as an
     open problem. *)
  let _, g3 = run_aeba_async ~n:64 ~seed:51L ~delay_fn:(fun ~time:_ ~src:_ ~dst:_ _ -> 3) ~max_delay:3 in
  Alcotest.(check bool) "asynchrony degrades the output to the default" true (is_all_zero g3)

(* --- Aeba under dedicated attacks --- *)

let run_aeba_attacked ~n ~byz_frac ~seed ~attack =
  let cfg = Aeba.make_config ~n ~seed ~byzantine_fraction:byz_frac () in
  let rng = Prng.create (Int64.add seed 17L) in
  let t = int_of_float (byz_frac *. float n) in
  let corrupted = Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k:t) in
  let adversary = attack cfg ~corrupted in
  let res =
    Engine.run ~config:cfg ~n ~seed ~adversary ~mode:`Rushing
      ~max_rounds:(Aeba.total_rounds cfg + 2) ()
  in
  (corrupted, res)

let ae_fraction ~n corrupted (res : Engine.result) =
  let mask = Array.init n (fun i -> not (Bitset.mem corrupted i)) in
  match Aeba.reference_string res.Fba_sim.Sync_engine.outputs mask with
  | None -> 0.0
  | Some r ->
    let agree = ref 0 and correct = ref 0 in
    Array.iteri
      (fun i o ->
        if mask.(i) then begin
          incr correct;
          if o = Some r then incr agree
        end)
      res.Fba_sim.Sync_engine.outputs;
    float_of_int !agree /. float_of_int (max 1 !correct)

let test_aeba_biased_contribution () =
  let n = 128 in
  let corrupted, res =
    run_aeba_attacked ~n ~byz_frac:0.15 ~seed:41L
      ~attack:Fba_adversary.Aeba_attacks.biased_contribution
  in
  (* Bias cannot break agreement — only color the adversary's slices. *)
  Alcotest.(check bool) "a.e. agreement holds" true (ae_fraction ~n corrupted res >= 0.9)

let test_aeba_equivocating_relay () =
  let n = 128 in
  let corrupted, res =
    run_aeba_attacked ~n ~byz_frac:0.15 ~seed:42L
      ~attack:Fba_adversary.Aeba_attacks.equivocating_relay
  in
  (* Children take the parent-committee plurality: equivocation only
     wins where the adversary holds a committee majority. *)
  Alcotest.(check bool) "a.e. agreement under equivocation" true
    (ae_fraction ~n corrupted res >= 0.85)

let suites =
  [
    ( "aeba.phase_king",
      [
        Alcotest.test_case "validity, no faults" `Quick test_pk_validity_no_faults;
        Alcotest.test_case "agreement, mixed inputs" `Quick test_pk_agreement_mixed_inputs;
        Alcotest.test_case "silent byzantine" `Quick test_pk_silent_byzantine;
        Alcotest.test_case "equivocating byzantine" `Quick test_pk_equivocating_byzantine;
        Alcotest.test_case "validity under flooding" `Quick test_pk_validity_under_equivocation;
        Alcotest.test_case "round budget" `Quick test_pk_rounds_needed;
        Alcotest.test_case "validation" `Quick test_pk_validation;
      ] );
    ( "aeba.committee_tree",
      [
        Alcotest.test_case "structure + partition" `Quick test_tree_structure;
        Alcotest.test_case "group_of" `Quick test_tree_group_of;
        Alcotest.test_case "memberships two-way" `Quick test_tree_memberships;
        Alcotest.test_case "parent/children" `Quick test_tree_parent_children;
        Alcotest.test_case "determinism" `Quick test_tree_determinism;
        Alcotest.test_case "edge shapes" `Quick test_tree_edge_shapes;
      ] );
    ( "aeba.protocol",
      [
        Alcotest.test_case "almost-everywhere agreement" `Quick test_aeba_agreement;
        Alcotest.test_case "round budget" `Quick test_aeba_rounds_budget;
        Alcotest.test_case "gstring length" `Quick test_aeba_gstring_length;
        Alcotest.test_case "unanimous without faults" `Quick test_aeba_no_faults_unanimous;
        Alcotest.test_case "config validation/sizing" `Quick test_aeba_config_validation;
        Alcotest.test_case "biased contributions" `Quick test_aeba_biased_contribution;
        Alcotest.test_case "equivocating relays" `Quick test_aeba_equivocating_relay;
        Alcotest.test_case "asynchrony boundary (Sec. 5)" `Quick test_aeba_async_boundary;
      ] );
  ]
