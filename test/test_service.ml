(* Agreement-as-a-service: the instance stream must be a pure storage
   optimisation.

   - qcheck property: every instance of an epoch-reset stream is
     trace-fingerprint-identical to a fresh one-shot Runner run of the
     same derived seed — across pipeline widths, worker-domain counts,
     the buffered delivery plane (config.stream = false, the
     FBA_NO_STREAM shape) and narrow vs wide packed layouts.
   - unit suite for the reset entry points themselves: no stale
     interner ids, sampler rows or mailbox/calendar contents survive
     an epoch boundary. *)

module Runner = Fba_harness.Runner
module Service = Fba_harness.Service
module Attacks = Fba_adversary.Aer_attacks
module Engine_core = Fba_sim.Engine_core
open Fba_core
open Fba_stdx

(* --- qcheck: stream vs one-shot fingerprint identity --- *)

let one_shot_fp ~config ~setup ~n ~seed =
  let sc = Runner.scenario_of_setup setup ~n ~seed in
  Service.fingerprint (Runner.aer_sync ~config ~adversary:Attacks.cornering sc).Runner.metrics

let case_gen =
  QCheck2.Gen.(
    let* n = oneofl [ 32; 48; 64 ] in
    let* instances = int_range 2 6 in
    let* width = oneofl [ 1; 2; 4 ] in
    let* jobs = oneofl [ 1; 2; 4 ] in
    let* stream_plane = bool in
    let* wide = bool in
    let* seed = int_range 1 10_000 in
    return (n, instances, width, jobs, stream_plane, wide, seed))

let prop_stream_matches_oneshot =
  QCheck2.Test.make ~count:6 ~name:"service.stream = fresh one-shot runs" case_gen
    (fun (n, instances, width, jobs, stream_plane, wide, seed) ->
      let setup =
        if wide then { Runner.default_setup with Runner.layout = Msg.Layout.Wide }
        else Runner.default_setup
      in
      let config = { Runner.default_config with Runner.stream = stream_plane } in
      let stream =
        { Service.setup;
          config;
          n;
          stream_seed = Int64.of_int seed;
          instances;
          width;
          jobs }
      in
      let s = Service.run ~stream ~adversary:Attacks.cornering () in
      Array.length s.Service.results = instances
      && Array.for_all
           (fun (r : Service.instance_result) ->
             Int64.equal r.Service.fingerprint
               (one_shot_fp ~config ~setup ~n ~seed:r.Service.seed))
           s.Service.results)

(* Latency aside, a stream's deterministic face must not depend on how
   it was scheduled: same instances, any width/jobs split. *)
let strip (s : Service.summary) =
  Array.map
    (fun (r : Service.instance_result) ->
      (r.Service.index, r.Service.seed, r.Service.fingerprint, r.Service.rounds_used,
       r.Service.decided, r.Service.agreed))
    s.Service.results

let prop_schedule_invariance =
  QCheck2.Test.make ~count:4 ~name:"service.results independent of width and jobs"
    QCheck2.Gen.(
      let* seed = int_range 1 10_000 in
      let* instances = int_range 3 7 in
      return (seed, instances))
    (fun (seed, instances) ->
      let stream w j =
        { Service.default_stream with
          Service.n = 48;
          stream_seed = Int64.of_int seed;
          instances;
          width = w;
          jobs = j }
      in
      let base = strip (Service.run ~stream:(stream 1 1) ~adversary:Attacks.cornering ()) in
      List.for_all
        (fun (w, j) ->
          strip (Service.run ~stream:(stream w j) ~adversary:Attacks.cornering ()) = base)
        [ (3, 1); (2, 2); (4, 4) ])

(* --- unit: reset entry points --- *)

(* Intern.reset must forget everything (no stale ids served) and
   reassign the same ids as a fresh interner on replay. *)
let test_intern_reset () =
  let it = Intern.create () in
  let id_a = Intern.intern it "alpha" in
  let _ = Intern.intern it "beta" in
  let lab = Intern.intern_label it 77L in
  Alcotest.(check int) "two strings registered" 2 (Intern.string_count it);
  Intern.reset it;
  Alcotest.(check int) "strings forgotten" 0 (Intern.string_count it);
  Alcotest.(check int) "labels forgotten" 0 (Intern.label_count it);
  Alcotest.(check int) "no stale string id" (-1) (Intern.find it "alpha");
  let id_b = Intern.intern it "beta" in
  Alcotest.(check int) "ids restart at 0" id_a id_b;
  let lab2 = Intern.intern_label it 78L in
  Alcotest.(check int) "label ids restart at 0" lab lab2

(* Cache.reset onto a different sampler must answer exactly like a
   fresh cache over that sampler — stale rows from the first epoch
   must not leak into quorum answers. *)
let test_cache_reset () =
  let s1 = Fba_samplers.Sampler.create ~seed:3L ~n:64 ~d:8 in
  let s2 = Fba_samplers.Sampler.create ~seed:9L ~n:64 ~d:8 in
  let reused = Fba_samplers.Cache.create s1 in
  for x = 0 to 15 do
    ignore (Fba_samplers.Cache.quorum_sx reused ~s:"epoch-one" ~x);
    ignore (Fba_samplers.Cache.quorum_xr reused ~x ~r:(Int64.of_int x))
  done;
  Fba_samplers.Cache.reset reused ~sampler:s2;
  let fresh = Fba_samplers.Cache.create s2 in
  for x = 0 to 15 do
    Alcotest.(check (array int))
      (Printf.sprintf "quorum_sx x=%d" x)
      (Fba_samplers.Cache.quorum_sx fresh ~s:"epoch-two" ~x)
      (Fba_samplers.Cache.quorum_sx reused ~s:"epoch-two" ~x);
    Alcotest.(check (array int))
      (Printf.sprintf "quorum_xr x=%d" x)
      (Fba_samplers.Cache.quorum_xr fresh ~x ~r:(Int64.of_int (1000 + x)))
      (Fba_samplers.Cache.quorum_xr reused ~x ~r:(Int64.of_int (1000 + x)))
  done

(* Aer.config_epoch chains the whole per-run state (interner, quorum
   caches, push plan, compile scratch) through a reset; the second
   epoch must produce the exact execution a fresh config produces. *)
let test_config_epoch () =
  let n = 48 in
  let seed_a = 11L and seed_b = 12L in
  let sc_a = Runner.scenario_of_setup Runner.default_setup ~n ~seed:seed_a in
  let cfg_a = Aer.config_of_scenario sc_a in
  let module E = Fba_sim.Sync_engine.Make (Aer) in
  let quiet_limit sc =
    if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
      Params.(sc.Scenario.params.repoll_timeout) + 2
    else 3
  in
  let run cfg (sc : Scenario.t) =
    Service.fingerprint
      (E.run ~quiet_limit:(quiet_limit sc) ~config:cfg ~n
         ~seed:sc.Scenario.params.Params.seed ~adversary:(Attacks.cornering sc)
         ~mode:`Rushing ~max_rounds:300 ())
        .Fba_sim.Sync_engine.metrics
  in
  ignore (run cfg_a sc_a);
  let sc_b =
    Runner.scenario_of_setup ~intern:sc_a.Scenario.intern Runner.default_setup ~n ~seed:seed_b
  in
  let cfg_b = Aer.config_epoch ~prev:cfg_a sc_b in
  let fp_epoch = run cfg_b sc_b in
  let sc_fresh = Runner.scenario_of_setup Runner.default_setup ~n ~seed:seed_b in
  let fp_fresh = run (Aer.config_of_scenario sc_fresh) sc_fresh in
  Alcotest.(check int64) "epoch-reset config replays the fresh execution" fp_fresh fp_epoch

(* Mailbox/Calendar reset: nothing staged, pending or deliverable may
   survive the epoch boundary, on either delivery-plane shape. *)
let test_mailbox_reset () =
  List.iter
    (fun stream ->
      let mb : int Engine_core.Mailbox.t = Engine_core.Mailbox.create ~stream ~n:8 () in
      Engine_core.Mailbox.push_correct mb ~src:0 ~dst:1 42;
      Engine_core.Mailbox.begin_commit mb;
      Engine_core.Mailbox.push_staged mb ~src:2 ~dst:3 7;
      Engine_core.Mailbox.commit mb ~keep_prev:true;
      Engine_core.Mailbox.push_correct mb ~src:1 ~dst:2 43;
      Engine_core.Mailbox.reset mb;
      Alcotest.(check bool)
        (Printf.sprintf "stream=%b nothing pending" stream)
        false
        (Engine_core.Mailbox.pending_any mb);
      Alcotest.(check int)
        (Printf.sprintf "stream=%b no correct sends" stream)
        0
        (Engine_core.Mailbox.correct_length mb);
      Engine_core.Mailbox.stage mb;
      Alcotest.(check bool)
        (Printf.sprintf "stream=%b nothing staged" stream)
        false
        (Engine_core.Mailbox.staged_any mb);
      let delivered = ref 0 in
      Engine_core.Mailbox.drain mb ~f:(fun ~src:_ ~dst:_ _ -> incr delivered);
      Alcotest.(check int) (Printf.sprintf "stream=%b nothing delivered" stream) 0 !delivered)
    [ true; false ]

let test_calendar_reset () =
  List.iter
    (fun stream ->
      let cal : int Engine_core.Calendar.t =
        Engine_core.Calendar.create ~stream ~n:8 ~max_delay:4 ()
      in
      Engine_core.Calendar.schedule cal ~at:2 ~src:0 ~dst:1 5;
      Engine_core.Calendar.schedule cal ~at:3 ~src:1 ~dst:2 6;
      Engine_core.Calendar.reset cal;
      Alcotest.(check int)
        (Printf.sprintf "stream=%b nothing pending" stream)
        0 (Engine_core.Calendar.pending cal);
      for t = 0 to 4 do
        Alcotest.(check int)
          (Printf.sprintf "stream=%b bucket %d empty" stream t)
          0
          (Engine_core.Calendar.due_count cal ~time:t)
      done)
    [ true; false ]

(* The FBA_JOBS override behind Pool.recommended_jobs, exercised the
   way the service resolves jobs=0. *)
let test_fba_jobs_override () =
  let before = Sys.getenv_opt "FBA_JOBS" in
  Unix.putenv "FBA_JOBS" "3";
  let got = Pool.recommended_jobs () in
  (match before with Some v -> Unix.putenv "FBA_JOBS" v | None -> Unix.putenv "FBA_JOBS" "");
  Alcotest.(check int) "FBA_JOBS=3 overrides the domain count" 3 got

let suites =
  [
    ( "service.stream",
      [
        QCheck_alcotest.to_alcotest prop_stream_matches_oneshot;
        QCheck_alcotest.to_alcotest prop_schedule_invariance;
      ] );
    ( "service.reset",
      [
        Alcotest.test_case "intern reset" `Quick test_intern_reset;
        Alcotest.test_case "cache reset" `Quick test_cache_reset;
        Alcotest.test_case "config epoch parity" `Quick test_config_epoch;
        Alcotest.test_case "mailbox reset" `Quick test_mailbox_reset;
        Alcotest.test_case "calendar reset" `Quick test_calendar_reset;
        Alcotest.test_case "FBA_JOBS override" `Quick test_fba_jobs_override;
      ] );
  ]
