open Fba_stdx
module Obs = Fba_harness.Obs
module Runner = Fba_harness.Runner
module Composition = Fba_harness.Composition

(* --- Obs --- *)

let mk_metrics ~n ~corrupted_ids =
  let corrupted = Bitset.of_list n corrupted_ids in
  Fba_sim.Metrics.create ~n ~corrupted

let test_obs_of_metrics () =
  let m = mk_metrics ~n:4 ~corrupted_ids:[ 3 ] in
  Fba_sim.Metrics.record_send m ~src:0 ~dst:1 ~bits:100;
  Fba_sim.Metrics.record_decision m ~id:0 ~round:2;
  Fba_sim.Metrics.record_decision m ~id:1 ~round:4;
  Fba_sim.Metrics.set_rounds m 5;
  let outputs = [| Some "g"; Some "bad"; None; Some "g" |] in
  let obs = Obs.of_metrics ~metrics:m ~outputs ~reference:(Some "g") () in
  Alcotest.(check int) "rounds" 5 obs.Obs.rounds;
  (* 3 correct nodes: 0 decided g, 1 decided bad, 2 undecided. *)
  Alcotest.(check (float 0.001)) "decided" (2.0 /. 3.0) obs.Obs.decided_fraction;
  Alcotest.(check (float 0.001)) "agreed" (1.0 /. 3.0) obs.Obs.agreed_fraction;
  Alcotest.(check int) "wrong" 1 obs.Obs.wrong_decisions;
  Alcotest.(check (option int)) "max decision incomplete" None obs.Obs.max_decision_round;
  Alcotest.(check (float 0.001)) "bits/node" 25.0 obs.Obs.bits_per_node

let test_obs_plurality_reference () =
  let m = mk_metrics ~n:3 ~corrupted_ids:[] in
  Fba_sim.Metrics.set_rounds m 1;
  let outputs = [| Some "a"; Some "a"; Some "b" |] in
  let obs = Obs.of_metrics ~metrics:m ~outputs ~reference:None () in
  Alcotest.(check (float 0.001)) "plurality wins" (2.0 /. 3.0) obs.Obs.agreed_fraction

let test_obs_aggregate () =
  let mk_obs rounds bits =
    let m = mk_metrics ~n:2 ~corrupted_ids:[] in
    Fba_sim.Metrics.record_send m ~src:0 ~dst:1 ~bits:(bits * 2);
    Fba_sim.Metrics.record_decision m ~id:0 ~round:rounds;
    Fba_sim.Metrics.record_decision m ~id:1 ~round:rounds;
    Fba_sim.Metrics.set_rounds m rounds;
    Obs.of_metrics ~metrics:m ~outputs:[| Some "g"; Some "g" |] ~reference:(Some "g") ()
  in
  let s = Obs.aggregate [ mk_obs 2 10; mk_obs 4 30 ] in
  Alcotest.(check int) "runs" 2 s.Obs.runs;
  Alcotest.(check (float 0.001)) "mean rounds" 3.0 s.Obs.mean_rounds;
  Alcotest.(check (float 0.001)) "mean bits" 20.0 s.Obs.mean_bits_per_node;
  Alcotest.(check (option int)) "worst decision" (Some 4) s.Obs.worst_decision_round;
  Alcotest.check_raises "empty rejected" (Invalid_argument "Obs.aggregate: empty") (fun () ->
      ignore (Obs.aggregate []))

let test_obs_all_corrupted_guard () =
  (* Every node Byzantine: all fractions must come out 0., never NaN. *)
  let m = mk_metrics ~n:3 ~corrupted_ids:[ 0; 1; 2 ] in
  Fba_sim.Metrics.record_send m ~src:0 ~dst:1 ~bits:50;
  Fba_sim.Metrics.set_rounds m 2;
  let obs = Obs.of_metrics ~metrics:m ~outputs:[| None; None; None |] ~reference:None () in
  Alcotest.(check (float 0.0)) "decided" 0.0 obs.Obs.decided_fraction;
  Alcotest.(check (float 0.0)) "agreed" 0.0 obs.Obs.agreed_fraction;
  Alcotest.(check (float 0.0)) "imbalance" 0.0 obs.Obs.load_imbalance;
  List.iter
    (fun (name, v) -> Alcotest.(check bool) (name ^ " not NaN") false (Float.is_nan v))
    [
      ("decided", obs.Obs.decided_fraction);
      ("agreed", obs.Obs.agreed_fraction);
      ("bits/node", obs.Obs.bits_per_node);
      ("msgs/node", obs.Obs.msgs_per_node);
      ("imbalance", obs.Obs.load_imbalance);
    ];
  Alcotest.(check int) "byz bits still counted" 50 obs.Obs.total_bits_all

let test_obs_silent_correct_guard () =
  (* Correct nodes exist but none of them ever sends. *)
  let m = mk_metrics ~n:4 ~corrupted_ids:[ 3 ] in
  Fba_sim.Metrics.set_rounds m 1;
  let obs =
    Obs.of_metrics ~metrics:m ~outputs:[| None; None; None; None |] ~reference:(Some "g") ()
  in
  Alcotest.(check (float 0.0)) "imbalance" 0.0 obs.Obs.load_imbalance;
  Alcotest.(check (float 0.0)) "bits/node" 0.0 obs.Obs.bits_per_node;
  Alcotest.(check bool) "imbalance not NaN" false (Float.is_nan obs.Obs.load_imbalance);
  Alcotest.(check (list Alcotest.reject)) "no phases on untraced runs" [] obs.Obs.phases

(* --- Runner + composition, fast smoke-level checks --- *)

let test_runner_end_to_end () =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n:64 ~seed:11L in
  let r = Runner.aer_sync ~adversary:Fba_adversary.Aer_attacks.silent sc in
  Alcotest.(check (float 0.001)) "all agreed" 1.0 r.Runner.obs.Obs.agreed_fraction;
  Alcotest.(check int) "no missing gstring" 0 r.Runner.gstring_missing;
  Alcotest.(check bool) "push bounded" true
    (r.Runner.push_max_messages <= 3 * Fba_core.Params.(sc.Fba_core.Scenario.params.d_i));
  let grid_obs = Runner.run_grid sc in
  Alcotest.(check (float 0.001)) "grid agrees too" 1.0 grid_obs.Obs.agreed_fraction;
  let relay_obs = Runner.run_relay sc in
  Alcotest.(check (float 0.001)) "relay agrees too" 1.0 relay_obs.Obs.agreed_fraction

let test_runner_seeds_stable () =
  Alcotest.(check (list int64)) "fixed seed list" [ 1020L; 2033L ]
    (Runner.seeds 2)

let test_runner_phase_breakdown () =
  (* The per-phase split must repartition the run's traffic exactly:
     bits over phases sum to Metrics.total_bits_all, messages to the
     total message count, and the phase names are AER's pipeline. *)
  let sc = Runner.scenario_of_setup Runner.default_setup ~n:64 ~seed:11L in
  let adversary sc =
    Fba_adversary.Aer_attacks.(compose sc [ push_flood sc; wrong_answer sc ])
  in
  let run, acc = Runner.aer_phases ~adversary sc in
  let obs = run.Runner.obs in
  Alcotest.(check int) "phase bits sum to total_bits_all" obs.Obs.total_bits_all
    (Fba_sim.Events.Phase_acc.total_bits acc);
  Alcotest.(check bool) "phases observed" true (obs.Obs.phases <> []);
  let names = List.map (fun r -> r.Fba_sim.Events.Phase_acc.phase) obs.Obs.phases in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("phase " ^ name ^ " is an AER phase") true
        (List.mem name [ "push"; "poll"; "fw1"; "fw2" ]))
    names;
  Alcotest.(check bool) "push phase present" true (List.mem "push" names);
  let row_bits =
    List.fold_left
      (fun a (r : Fba_sim.Events.Phase_acc.row) ->
        a + r.Fba_sim.Events.Phase_acc.bits_correct + r.Fba_sim.Events.Phase_acc.bits_byz)
      0 obs.Obs.phases
  in
  Alcotest.(check int) "rows agree with accumulator" (Fba_sim.Events.Phase_acc.total_bits acc)
    row_bits;
  (* An untraced run of the same scenario is unaffected by tracing. *)
  let plain = Runner.aer_sync ~adversary sc in
  Alcotest.(check int) "tracing did not change traffic" plain.Runner.obs.Obs.total_bits_all
    obs.Obs.total_bits_all

(* --- Sweep: jobs-invariance golden --- *)

module Exp_lemmas = Fba_harness.Exp_lemmas
module Sweep = Fba_harness.Sweep

let render_lemmas rows =
  let path = Filename.temp_file "fba_lemmas" ".md" in
  let oc = open_out_bin path in
  Exp_lemmas.render ~full:false ~out:oc rows;
  close_out oc;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  s

let test_sweep_jobs_invariance () =
  (* The cheap (n<=64) subset of the lemmas grid, rendered sequentially
     and on 4 domains: the reports must be byte-identical. *)
  let cells =
    List.filter (fun c -> Exp_lemmas.cell_size c <= 64) (Exp_lemmas.grid ~full:false)
  in
  Alcotest.(check bool) "subset grid non-empty" true (cells <> []);
  let render_at jobs = render_lemmas (Sweep.cells ~jobs Exp_lemmas.run_cell cells) in
  let sequential = render_at 1 in
  let sharded = render_at 4 in
  Alcotest.(check bool) "rendered something" true (String.length sequential > 0);
  Alcotest.(check string) "byte-identical at jobs=1 and jobs=4" sequential sharded

let test_composition_grid () =
  let r = Composition.run_aeba_grid ~n:64 ~seed:12L ~byzantine_fraction:0.1 in
  Alcotest.(check int) "everyone agrees" r.Composition.correct r.Composition.agreed;
  Alcotest.(check bool) "phase2 bits accounted" true (r.Composition.phase2_bits_per_node > 0.0);
  Alcotest.(check bool) "phase2 below total" true
    (r.Composition.phase2_bits_per_node < r.Composition.bits_per_node)

let test_composition_naive () =
  let quiet = Composition.run_aeba_naive ~n:64 ~seed:16L ~byzantine_fraction:0.1 ~flood:false in
  let flooded = Composition.run_aeba_naive ~n:64 ~seed:16L ~byzantine_fraction:0.1 ~flood:true in
  Alcotest.(check int) "quiet agrees" quiet.Composition.correct quiet.Composition.agreed;
  Alcotest.(check bool) "flooding costs more" true
    (flooded.Composition.phase2_bits_per_node > quiet.Composition.phase2_bits_per_node)

let test_composition_of_ba () =
  let ba = Fba_core.Ba.run_sync ~n:64 ~seed:13L ~byzantine_fraction:0.1 () in
  let r = Composition.of_ba_result ba in
  Alcotest.(check int) "agreed carried over" ba.Fba_core.Ba.agreed r.Composition.agreed;
  Alcotest.(check (float 0.001)) "bits carried over"
    (Fba_sim.Metrics.amortized_bits ba.Fba_core.Ba.metrics)
    r.Composition.bits_per_node

(* --- Binary BA reduction --- *)

let test_binary_ba () =
  let r =
    Fba_core.Binary_ba.run_sync ~inputs:(fun i -> i mod 2 = 0) ~n:64 ~seed:14L
      ~byzantine_fraction:0.1 ()
  in
  Alcotest.(check int) "unanimity among correct" r.Fba_core.Binary_ba.correct
    r.Fba_core.Binary_ba.agreed;
  Alcotest.(check bool) "validity" true r.Fba_core.Binary_ba.validity_respected;
  Alcotest.(check bool) "decided" true (r.Fba_core.Binary_ba.decided_bit <> None)

let test_binary_ba_no_attack () =
  let r =
    Fba_core.Binary_ba.run_sync ~split_attack:false ~inputs:(fun i -> i mod 3 = 0) ~n:64
      ~seed:18L ~byzantine_fraction:0.1 ()
  in
  Alcotest.(check int) "agreement" r.Fba_core.Binary_ba.correct r.Fba_core.Binary_ba.agreed;
  Alcotest.(check bool) "validity" true r.Fba_core.Binary_ba.validity_respected

let test_binary_ba_validity_unanimous () =
  (* All-true inputs must decide true whatever the coin says. *)
  let r =
    Fba_core.Binary_ba.run_sync ~inputs:(fun _ -> true) ~n:64 ~seed:15L
      ~byzantine_fraction:0.1 ()
  in
  Alcotest.(check (option bool)) "decides the unanimous input" (Some true)
    r.Fba_core.Binary_ba.decided_bit;
  Alcotest.(check bool) "validity" true r.Fba_core.Binary_ba.validity_respected

let suites =
  [
    ( "harness.obs",
      [
        Alcotest.test_case "of_metrics" `Quick test_obs_of_metrics;
        Alcotest.test_case "plurality reference" `Quick test_obs_plurality_reference;
        Alcotest.test_case "aggregate" `Quick test_obs_aggregate;
        Alcotest.test_case "all-corrupted guards" `Quick test_obs_all_corrupted_guard;
        Alcotest.test_case "silent-correct guards" `Quick test_obs_silent_correct_guard;
      ] );
    ( "harness.runner",
      [
        Alcotest.test_case "end to end" `Quick test_runner_end_to_end;
        Alcotest.test_case "stable seeds" `Quick test_runner_seeds_stable;
        Alcotest.test_case "phase breakdown accounting" `Quick test_runner_phase_breakdown;
      ] );
    ( "harness.sweep",
      [ Alcotest.test_case "jobs invariance (lemmas subset)" `Quick test_sweep_jobs_invariance ] );
    ( "harness.composition",
      [
        Alcotest.test_case "aeba + grid" `Quick test_composition_grid;
        Alcotest.test_case "aeba + naive (flood contrast)" `Quick test_composition_naive;
        Alcotest.test_case "of BA result" `Quick test_composition_of_ba;
      ] );
    ( "core.binary_ba",
      [
        Alcotest.test_case "agreement on split inputs" `Quick test_binary_ba;
        Alcotest.test_case "agreement without attack" `Quick test_binary_ba_no_attack;
        Alcotest.test_case "validity on unanimous inputs" `Quick test_binary_ba_validity_unanimous;
      ] );
  ]
