open Fba_stdx
open Fba_samplers

let sampler ?(n = 128) ?(d = 12) ?(seed = 5L) () = Sampler.create ~seed ~n ~d

let test_quorum_shape () =
  let s = sampler () in
  let q = Sampler.quorum_sx s ~s:"candidate" ~x:7 in
  Alcotest.(check int) "size d" 12 (Array.length q);
  let sorted = Array.copy q in
  Array.sort compare sorted;
  for i = 1 to Array.length sorted - 1 do
    Alcotest.(check bool) "distinct members" true (sorted.(i) <> sorted.(i - 1))
  done;
  Array.iter (fun y -> Alcotest.(check bool) "in range" true (y >= 0 && y < 128)) q

let test_quorum_deterministic () =
  let s1 = sampler () and s2 = sampler () in
  Alcotest.(check (array int)) "same seed same quorum"
    (Sampler.quorum_sx s1 ~s:"abc" ~x:3)
    (Sampler.quorum_sx s2 ~s:"abc" ~x:3);
  let s3 = sampler ~seed:6L () in
  Alcotest.(check bool) "different seed differs" false
    (Sampler.quorum_sx s1 ~s:"abc" ~x:3 = Sampler.quorum_sx s3 ~s:"abc" ~x:3)

let test_quorum_key_sensitivity () =
  let s = sampler () in
  Alcotest.(check bool) "string matters" false
    (Sampler.quorum_sx s ~s:"a" ~x:3 = Sampler.quorum_sx s ~s:"b" ~x:3);
  Alcotest.(check bool) "node matters" false
    (Sampler.quorum_sx s ~s:"a" ~x:3 = Sampler.quorum_sx s ~s:"a" ~x:4);
  Alcotest.(check bool) "label matters" false
    (Sampler.quorum_xr s ~x:3 ~r:1L = Sampler.quorum_xr s ~x:3 ~r:2L)

let test_membership_consistency () =
  let s = sampler () in
  let q = Sampler.quorum_sx s ~s:"xyz" ~x:11 in
  Array.iter
    (fun y -> Alcotest.(check bool) "member reported" true (Sampler.mem_sx s ~s:"xyz" ~x:11 ~y))
    q;
  let members = Array.to_list q in
  for y = 0 to 127 do
    if not (List.mem y members) then
      Alcotest.(check bool) "non-member rejected" false (Sampler.mem_sx s ~s:"xyz" ~x:11 ~y)
  done

let test_sampler_validation () =
  Alcotest.check_raises "d > n" (Invalid_argument "Sampler.create: need 1 <= d <= n")
    (fun () -> ignore (Sampler.create ~seed:1L ~n:4 ~d:5));
  Alcotest.check_raises "d = 0" (Invalid_argument "Sampler.create: need 1 <= d <= n")
    (fun () -> ignore (Sampler.create ~seed:1L ~n:4 ~d:0))

let test_d_equals_n () =
  (* Extreme case: the quorum must be the whole population. *)
  let s = Sampler.create ~seed:2L ~n:8 ~d:8 in
  let q = Sampler.quorum_sx s ~s:"full" ~x:0 in
  let sorted = Array.copy q in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "full population" (Array.init 8 (fun i -> i)) sorted

let test_majority_threshold () =
  Alcotest.(check int) "of 11" 6 (Sampler.majority_threshold 11);
  Alcotest.(check int) "of 12" 7 (Sampler.majority_threshold 12);
  Alcotest.(check int) "of 1" 1 (Sampler.majority_threshold 1)

let test_default_d () =
  Alcotest.(check int) "default d at 1024" 40 (Sampler.default_d ~n:1024);
  Alcotest.(check bool) "clamped at tiny n" true (Sampler.default_d ~n:4 <= 4)

(* --- Cache --- *)

let test_cache_equivalence () =
  let s = sampler () in
  let c = Cache.create s in
  for x = 0 to 20 do
    Alcotest.(check (array int)) "sx agrees"
      (Sampler.quorum_sx s ~s:"k" ~x)
      (Cache.quorum_sx c ~s:"k" ~x);
    Alcotest.(check (array int)) "xr agrees"
      (Sampler.quorum_xr s ~x ~r:(Int64.of_int x))
      (Cache.quorum_xr c ~x ~r:(Int64.of_int x))
  done;
  Alcotest.(check bool) "mem agrees" true
    (Cache.mem_sx c ~s:"k" ~x:1 ~y:(Sampler.quorum_sx s ~s:"k" ~x:1).(0))

let test_cache_returns_shared () =
  let c = Cache.create (sampler ()) in
  let q1 = Cache.quorum_sx c ~s:"z" ~x:0 in
  let q2 = Cache.quorum_sx c ~s:"z" ~x:0 in
  Alcotest.(check bool) "physically shared" true (q1 == q2)

(* --- Push_plan --- *)

let test_push_plan_inverse () =
  let s = sampler ~n:64 ~d:8 () in
  let plan = Push_plan.create ~sampler:s () in
  let str = "gstring" in
  (* y ∈ I(s, x) iff x ∈ targets(s, y). *)
  for x = 0 to 63 do
    let q = Push_plan.quorum plan ~s:str ~x in
    Array.iter
      (fun y ->
        let targets = Push_plan.targets plan ~s:str ~y in
        Alcotest.(check bool)
          (Printf.sprintf "x=%d in targets of y=%d" x y)
          true
          (Array.exists (fun v -> v = x) targets))
      q
  done;
  (* Total fan-out equals n*d. *)
  let total = ref 0 in
  for y = 0 to 63 do
    total := !total + Array.length (Push_plan.targets plan ~s:str ~y)
  done;
  Alcotest.(check int) "total inverse degree" (64 * 8) !total;
  Alcotest.(check bool) "max load sane" true (Push_plan.max_load plan ~s:str >= 8);
  Alcotest.(check int) "memo counts strings" 1 (Push_plan.distinct_strings plan)

(* --- Property_check --- *)

let good_set n fraction rng =
  let k = int_of_float (fraction *. float_of_int n) in
  Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k)

let test_property1 () =
  let s = Sampler.create ~seed:3L ~n:256 ~d:16 in
  let rng = Prng.create 1L in
  let good = good_set 256 0.8 rng in
  let frac = Property_check.property1_estimate s ~good ~samples:3000 ~rng in
  Alcotest.(check bool) "few bad poll lists" true (frac < 0.05);
  (* With a good minority, most lists must be bad. *)
  let minority = good_set 256 0.2 (Prng.create 2L) in
  let frac2 = Property_check.property1_estimate s ~good:minority ~samples:1000 ~rng in
  Alcotest.(check bool) "minority flips the estimate" true (frac2 > 0.9)

let test_bad_quorum_fraction_bounds () =
  let s = Sampler.create ~seed:3L ~n:256 ~d:16 in
  let rng = Prng.create 4L in
  let all = good_set 256 1.0 rng in
  Alcotest.(check (float 1e-9)) "all good -> none bad" 0.0
    (Property_check.bad_quorum_fraction s ~good:all ~s:"any");
  let none = Bitset.create 256 in
  Alcotest.(check (float 1e-9)) "none good -> all bad" 1.0
    (Property_check.bad_quorum_fraction s ~good:none ~s:"any")

let test_worst_string_search_monotone () =
  let s = Sampler.create ~seed:3L ~n:128 ~d:10 in
  let rng = Prng.create 5L in
  let good = good_set 128 0.7 rng in
  let _, f1 = Property_check.worst_string_search s ~good ~rng ~tries:1 ~bits:64 in
  let _, f50 = Property_check.worst_string_search s ~good ~rng ~tries:50 ~bits:64 in
  Alcotest.(check bool) "more tries at least as bad" true (f50 >= f1)

let test_completion_search_respects_prefix () =
  let s = Sampler.create ~seed:3L ~n:128 ~d:10 in
  let rng = Prng.create 6L in
  let good = good_set 128 0.7 rng in
  let prefix = "0123456789abcdef" in
  let found, _ =
    Property_check.worst_completion_search s ~good ~rng ~tries:20 ~prefix ~free_bits:16
  in
  Alcotest.(check int) "same length" (String.length prefix) (String.length found);
  (* Only the last 16 bits (2 bytes) may change. *)
  Alcotest.(check string) "prefix preserved"
    (String.sub prefix 0 14)
    (String.sub found 0 14)

let test_overload_factor () =
  let s = Sampler.create ~seed:3L ~n:256 ~d:12 in
  let f = Property_check.overload_factor s ~strings:[ "a"; "b"; "c" ] in
  (* Mean inverse load is exactly d; the max should be within a small
     constant of it (Lemma 1's non-overload). *)
  Alcotest.(check bool) "bounded overload" true (f >= 1.0 && f < 3.5)

(* --- Affine sampler (the Section 2.2 strawman) --- *)

let test_affine_shape () =
  let t = Affine_sampler.create ~n:128 ~d:10 ~stride:11 in
  let q = Affine_sampler.quorum_sx t ~s:"abc" ~x:5 in
  Alcotest.(check int) "size" 10 (Array.length q);
  let sorted = Array.copy q in
  Array.sort compare sorted;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  Alcotest.(check (array int)) "deterministic" q (Affine_sampler.quorum_sx t ~s:"abc" ~x:5)

let test_affine_seizable () =
  let n = 256 in
  let d = 16 in
  let affine = Affine_sampler.create ~n ~d ~stride:16 in
  let hash = Sampler.create ~seed:3L ~n ~d in
  let budget = n / 5 in
  let a = Affine_sampler.seizable_fraction affine ~budget in
  let h = Property_check.seizable_fraction hash ~s:"g" ~budget in
  (* The structured construction is seized in bulk (the adversary
     knows the windows and corrupts progression blocks); the sampler
     is essentially immune at this budget (Section 2.2's dichotomy). *)
  Alcotest.(check bool) "affine heavily seized" true (a > 0.25);
  Alcotest.(check bool) "hash sampler resists" true (h < 0.05);
  Alcotest.(check bool) "ordering" true (a > 5.0 *. h +. 0.1)

let test_affine_validation () =
  Alcotest.check_raises "bad d" (Invalid_argument "Affine_sampler.create: need 1 <= d <= n")
    (fun () -> ignore (Affine_sampler.create ~n:8 ~d:9 ~stride:3));
  Alcotest.check_raises "bad stride"
    (Invalid_argument "Affine_sampler.create: need 1 <= stride < n") (fun () ->
      ignore (Affine_sampler.create ~n:8 ~d:4 ~stride:8))

(* --- Digraph --- *)

let test_boundary_bounds () =
  let s = Sampler.create ~seed:9L ~n:256 ~d:16 in
  let rng = Prng.create 7L in
  let l = Digraph.random_l s ~rng ~size:32 in
  let ratio = Digraph.boundary_ratio s l in
  Alcotest.(check bool) "ratio in [0,1]" true (ratio >= 0.0 && ratio <= 1.0);
  (* A random small L should expand well. *)
  Alcotest.(check bool) "random L expands" true (ratio > 2.0 /. 3.0)

let test_boundary_single_vertex () =
  let s = Sampler.create ~seed:9L ~n:256 ~d:16 in
  (* A single labeled vertex: only self-edges are internal. *)
  let l = [| { Digraph.node = 5; label = 77L } |] in
  let ratio = Digraph.boundary_ratio s l in
  let q = Sampler.quorum_xr s ~x:5 ~r:77L in
  let self = Array.fold_left (fun a y -> if y = 5 then a + 1 else a) 0 q in
  Alcotest.(check (float 1e-9)) "exact single-vertex boundary"
    (float_of_int (16 - self) /. 16.0)
    ratio

let test_boundary_validation () =
  let s = Sampler.create ~seed:9L ~n:64 ~d:8 in
  Alcotest.check_raises "empty L" (Invalid_argument "Digraph.boundary_ratio: empty L")
    (fun () -> ignore (Digraph.boundary_ratio s [||]));
  Alcotest.check_raises "duplicate node" (Invalid_argument "Digraph: at most one label per node")
    (fun () ->
      ignore
        (Digraph.boundary_ratio s
           [| { Digraph.node = 1; label = 1L }; { Digraph.node = 1; label = 2L } |]))

let test_greedy_weaker_than_random () =
  let s = Sampler.create ~seed:9L ~n:256 ~d:16 in
  let rng = Prng.create 8L in
  let size = 32 in
  let random_ratio = Digraph.boundary_ratio s (Digraph.random_l s ~rng ~size) in
  let greedy_ratio =
    Digraph.boundary_ratio s (Digraph.greedy_adversarial_l s ~rng ~size ~labels_per_step:16)
  in
  Alcotest.(check bool) "greedy attack shrinks the boundary" true (greedy_ratio < random_ratio)

let suites =
  [
    ( "samplers.sampler",
      [
        Alcotest.test_case "quorum shape" `Quick test_quorum_shape;
        Alcotest.test_case "deterministic" `Quick test_quorum_deterministic;
        Alcotest.test_case "key sensitivity" `Quick test_quorum_key_sensitivity;
        Alcotest.test_case "membership consistency" `Quick test_membership_consistency;
        Alcotest.test_case "validation" `Quick test_sampler_validation;
        Alcotest.test_case "d = n" `Quick test_d_equals_n;
        Alcotest.test_case "majority threshold" `Quick test_majority_threshold;
        Alcotest.test_case "default d" `Quick test_default_d;
      ] );
    ( "samplers.cache",
      [
        Alcotest.test_case "equivalence" `Quick test_cache_equivalence;
        Alcotest.test_case "sharing" `Quick test_cache_returns_shared;
      ] );
    ("samplers.push_plan", [ Alcotest.test_case "inverse consistency" `Quick test_push_plan_inverse ]);
    ( "samplers.properties",
      [
        Alcotest.test_case "property 1" `Quick test_property1;
        Alcotest.test_case "bad-quorum extremes" `Quick test_bad_quorum_fraction_bounds;
        Alcotest.test_case "worst-string search monotone" `Quick test_worst_string_search_monotone;
        Alcotest.test_case "completion search prefix" `Quick test_completion_search_respects_prefix;
        Alcotest.test_case "overload factor" `Quick test_overload_factor;
      ] );
    ( "samplers.affine",
      [
        Alcotest.test_case "quorum shape" `Quick test_affine_shape;
        Alcotest.test_case "seizability dichotomy" `Quick test_affine_seizable;
        Alcotest.test_case "validation" `Quick test_affine_validation;
      ] );
    ( "samplers.digraph",
      [
        Alcotest.test_case "boundary bounds" `Quick test_boundary_bounds;
        Alcotest.test_case "single-vertex boundary" `Quick test_boundary_single_vertex;
        Alcotest.test_case "validation" `Quick test_boundary_validation;
        Alcotest.test_case "greedy beats random" `Quick test_greedy_weaker_than_random;
      ] );
  ]
