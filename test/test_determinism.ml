(* Engine-determinism goldens.

   The mailbox/calendar-queue engine internals and the sampler cache
   layout are pure performance work: for a fixed (setup, n, seed) they
   must reproduce the exact per-node traffic and decision history the
   cons-list engines produced. Two layers of evidence:

   - recorded golden runs at n = 256: a 64-bit fingerprint over every
     node's sent/received message and bit counters plus its decision
     round, checked against values recorded from the pre-refactor
     engines — any reordering of deliveries, adversary observations or
     sampler draws shows up here;
   - a qcheck property that running the same scenario twice (and the
     sync engine against a fresh scenario value) is bit-identical, so
     engine state can't leak across runs through reused storage. *)

module Attacks = Fba_adversary.Aer_attacks
module Runner = Fba_harness.Runner
module Metrics = Fba_sim.Metrics
open Fba_core
open Fba_stdx
module Aer_sync = Fba_sim.Sync_engine.Make (Aer)
module Aer_async = Fba_sim.Async_engine.Make (Aer)

let fingerprint m =
  let h = ref (Hash64.init 0x600DL) in
  let n = Metrics.n m in
  for i = 0 to n - 1 do
    h := Hash64.add_int !h (Metrics.sent_messages_of m i);
    h := Hash64.add_int !h (Metrics.sent_bits_of m i);
    h := Hash64.add_int !h (Metrics.recv_messages_of m i);
    h := Hash64.add_int !h (Metrics.recv_bits_of m i);
    h := Hash64.add_int !h (match Metrics.decision_round m i with None -> -1 | Some r -> r)
  done;
  Hash64.finish (Hash64.add_int !h (Metrics.rounds m))

(* Mirrors Runner.aer_sync's quiescence window so the goldens pin
   the same executions the harness produces. *)
let quiet_limit_of sc =
  if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
    Params.(sc.Scenario.params.repoll_timeout) + 2
  else 3

let run_sync_res ?events ~n ~seed adv =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
  let cfg = Aer.config_of_scenario ?events sc in
  Aer_sync.run ~quiet_limit:(quiet_limit_of sc) ?events ~config:cfg ~n ~seed ~adversary:(adv sc)
    ~mode:`Rushing ~max_rounds:300 ()

let run_sync ~n ~seed adv = (run_sync_res ~n ~seed adv).Fba_sim.Sync_engine.metrics

let run_async_res ?events ~n ~seed adv =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
  let cfg = Aer.config_of_scenario ?events sc in
  Aer_async.run ?events ~config:cfg ~n ~seed ~adversary:(adv sc) ~max_time:4000 ()

let run_async ~n ~seed adv = (run_async_res ~n ~seed adv).Fba_sim.Async_engine.metrics

let check_golden name ~fp ~bits ~msgs ~rounds ~decided m =
  Alcotest.(check int) (name ^ " total bits") bits (Metrics.total_bits_correct m);
  Alcotest.(check int) (name ^ " total msgs") msgs (Metrics.total_messages_correct m);
  Alcotest.(check int) (name ^ " rounds") rounds (Metrics.rounds m);
  Alcotest.(check int) (name ^ " decided") decided (Metrics.decided_count m);
  if not (Int64.equal fp (fingerprint m)) then
    Alcotest.failf "%s fingerprint drifted: got 0x%LxL, recorded 0x%LxL" name (fingerprint m) fp

(* Recorded from the seed (pre-refactor) engines at n=256, seed=7. *)
let test_golden_sync_silent () =
  check_golden "sync-silent" ~fp:0xaea3f126fbae39daL ~bits:84037104 ~msgs:505908 ~rounds:6
    ~decided:231
    (run_sync ~n:256 ~seed:7L Attacks.silent)

let test_golden_sync_cornering () =
  check_golden "sync-cornering" ~fp:0x13bb2c9332c814d7L ~bits:93214536 ~msgs:560854 ~rounds:6
    ~decided:231
    (run_sync ~n:256 ~seed:7L (fun sc -> Attacks.cornering sc))

let test_golden_async_cornering () =
  check_golden "async-cornering" ~fp:0xb7148be671e42b29L ~bits:93214536 ~msgs:560854 ~rounds:20
    ~decided:231
    (run_async ~n:256 ~seed:7L (fun sc -> Attacks.async_cornering sc))

(* Packed-path golden: the interner is the packed plane's side table —
   every string and label a run touches is registered in deterministic
   order, so its final contents are as much a fingerprint of the
   execution as the traffic counters above. Recorded from the same
   n=256 seed=7 cornering run the sync golden pins. *)
let test_golden_intern_table () =
  let n = 256 and seed = 7L in
  let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
  let cfg = Aer.config_of_scenario sc in
  ignore
    (Aer_sync.run ~quiet_limit:(quiet_limit_of sc) ~config:cfg ~n ~seed
       ~adversary:(Attacks.cornering sc) ~mode:`Rushing ~max_rounds:300 ());
  let it = sc.Scenario.intern in
  Alcotest.(check int) "interned strings" 39 (Intern.string_count it);
  Alcotest.(check int) "interned labels" 269 (Intern.label_count it);
  let h = ref (Hash64.init 0x1D5L) in
  for i = 0 to Intern.string_count it - 1 do
    h := Hash64.add_string !h (Intern.string it i)
  done;
  for i = 0 to Intern.label_count it - 1 do
    h := Hash64.add_int64 !h (Intern.label it i)
  done;
  let got = Hash64.finish !h in
  if not (Int64.equal got 0x52c40008e5570c47L) then
    Alcotest.failf "intern table drifted: got 0x%LxL, recorded 0x52c40008e5570c47L" got

let arb_run =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%Ld" n seed)
    QCheck.Gen.(pair (int_range 24 64) (map Int64.of_int (int_range 1 1000)))

let prop_sync_run_twice =
  QCheck.Test.make ~name:"sync run twice is bit-identical" ~count:10 arb_run (fun (n, seed) ->
      let fp1 = fingerprint (run_sync ~n ~seed (fun sc -> Attacks.cornering sc)) in
      let fp2 = fingerprint (run_sync ~n ~seed (fun sc -> Attacks.cornering sc)) in
      Int64.equal fp1 fp2)

let prop_async_run_twice =
  QCheck.Test.make ~name:"async run twice is bit-identical" ~count:6 arb_run (fun (n, seed) ->
      let fp1 = fingerprint (run_async ~n ~seed (fun sc -> Attacks.async_cornering sc)) in
      let fp2 = fingerprint (run_async ~n ~seed (fun sc -> Attacks.async_cornering sc)) in
      Int64.equal fp1 fp2)

(* Event tracing must be pure observation: a run with a loaded sink
   (ring buffer + phase accumulator + JSONL buffer, i.e. every shipped
   consumer) produces bit-identical metrics and the same decision
   vector as the untraced run. *)
let loaded_sink ~n =
  let sink = Fba_sim.Events.create () in
  let ring = Fba_sim.Events.Ring.create ~capacity:512 in
  Fba_sim.Events.attach sink (Fba_sim.Events.Ring.consumer ring);
  let acc =
    Fba_sim.Events.Phase_acc.create ~classify:(fun ~kind -> Aer.phase_of_kind kind) ~n ()
  in
  Fba_sim.Events.attach sink (Fba_sim.Events.Phase_acc.consumer acc);
  let buf = Buffer.create 4096 in
  Fba_sim.Events.attach sink (Fba_sim.Events.Jsonl.consumer buf);
  sink

let prop_sync_events_transparent =
  QCheck.Test.make ~name:"sync tracing is pure observation" ~count:10 arb_run
    (fun (n, seed) ->
      let adv sc = Attacks.cornering sc in
      let plain = run_sync_res ~n ~seed adv in
      let traced = run_sync_res ~events:(loaded_sink ~n) ~n ~seed adv in
      Int64.equal
        (fingerprint plain.Fba_sim.Sync_engine.metrics)
        (fingerprint traced.Fba_sim.Sync_engine.metrics)
      && plain.Fba_sim.Sync_engine.outputs = traced.Fba_sim.Sync_engine.outputs)

let prop_async_events_transparent =
  QCheck.Test.make ~name:"async tracing is pure observation" ~count:6 arb_run
    (fun (n, seed) ->
      let adv sc = Attacks.async_cornering sc in
      let plain = run_async_res ~n ~seed adv in
      let traced = run_async_res ~events:(loaded_sink ~n) ~n ~seed adv in
      Int64.equal
        (fingerprint plain.Fba_sim.Async_engine.metrics)
        (fingerprint traced.Fba_sim.Async_engine.metrics)
      && plain.Fba_sim.Async_engine.outputs = traced.Fba_sim.Async_engine.outputs)

let suites =
  [
    ( "determinism.golden",
      [
        Alcotest.test_case "aer sync silent n=256" `Slow test_golden_sync_silent;
        Alcotest.test_case "aer sync cornering n=256" `Slow test_golden_sync_cornering;
        Alcotest.test_case "aer async cornering n=256" `Slow test_golden_async_cornering;
        Alcotest.test_case "packed intern table n=256" `Slow test_golden_intern_table;
      ] );
    ( "determinism.qcheck",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_sync_run_twice;
          prop_async_run_twice;
          prop_sync_events_transparent;
          prop_async_events_transparent;
        ] );
  ]
