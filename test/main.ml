let () =
  Alcotest.run "fast-byzantine-agreement"
    (List.concat
       [
         Test_stdx.suites;
         Test_pool.suites;
         Test_sim.suites;
         Test_samplers.suites;
         Test_aeba.suites;
         Test_baselines.suites;
         Test_core.suites;
         Test_aer_unit.suites;
         Test_adversary.suites;
         Test_extensions.suites;
         Test_harness.suites;
         Test_props.suites;
         Test_packed.suites;
         Test_compiled.suites;
         Test_determinism.suites;
         Test_net.suites;
         Test_prof.suites;
         Test_streamed.suites;
         Test_service.suites;
       ])
