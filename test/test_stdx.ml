open Fba_stdx

(* --- Intx --- *)

let test_ilog2 () =
  Alcotest.(check int) "ilog2 1" 0 (Intx.ilog2 1);
  Alcotest.(check int) "ilog2 2" 1 (Intx.ilog2 2);
  Alcotest.(check int) "ilog2 3" 1 (Intx.ilog2 3);
  Alcotest.(check int) "ilog2 1024" 10 (Intx.ilog2 1024);
  Alcotest.(check int) "ilog2 1025" 10 (Intx.ilog2 1025);
  Alcotest.check_raises "ilog2 0" (Invalid_argument "Intx.ilog2: non-positive argument")
    (fun () -> ignore (Intx.ilog2 0))

let test_ceil_log2 () =
  Alcotest.(check int) "ceil_log2 1" 0 (Intx.ceil_log2 1);
  Alcotest.(check int) "ceil_log2 2" 1 (Intx.ceil_log2 2);
  Alcotest.(check int) "ceil_log2 3" 2 (Intx.ceil_log2 3);
  Alcotest.(check int) "ceil_log2 1024" 10 (Intx.ceil_log2 1024);
  Alcotest.(check int) "ceil_log2 1025" 11 (Intx.ceil_log2 1025)

let test_isqrt () =
  Alcotest.(check int) "isqrt 0" 0 (Intx.isqrt 0);
  Alcotest.(check int) "isqrt 1" 1 (Intx.isqrt 1);
  Alcotest.(check int) "isqrt 15" 3 (Intx.isqrt 15);
  Alcotest.(check int) "isqrt 16" 4 (Intx.isqrt 16);
  Alcotest.(check int) "isqrt 1000000" 1000 (Intx.isqrt 1000000)

let test_pow_cdiv_clamp () =
  Alcotest.(check int) "pow 2^10" 1024 (Intx.pow 2 10);
  Alcotest.(check int) "pow x^0" 1 (Intx.pow 7 0);
  Alcotest.(check int) "cdiv exact" 3 (Intx.cdiv 9 3);
  Alcotest.(check int) "cdiv round up" 4 (Intx.cdiv 10 3);
  Alcotest.(check int) "clamp below" 2 (Intx.clamp ~lo:2 ~hi:5 0);
  Alcotest.(check int) "clamp above" 5 (Intx.clamp ~lo:2 ~hi:5 9);
  Alcotest.(check int) "clamp inside" 3 (Intx.clamp ~lo:2 ~hi:5 3)

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 42L and b = Prng.create 43L in
  Alcotest.(check bool) "different seeds differ" false (Prng.next64 a = Prng.next64 b)

let test_prng_int_bounds () =
  let rng = Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: non-positive bound") (fun () ->
      ignore (Prng.int rng 0))

let test_prng_float_range () =
  let rng = Prng.create 3L in
  for _ = 1 to 1000 do
    let v = Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_split_independent () =
  let base = Prng.create 1L in
  let child = Prng.split base in
  (* The two streams should not be identical. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next64 base = Prng.next64 child then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let test_prng_split_at_distinct () =
  let base = Prng.create 5L in
  let a = Prng.split_at base 0 and b = Prng.split_at base 1 in
  Alcotest.(check bool) "distinct indices distinct streams" false
    (Prng.next64 a = Prng.next64 b);
  (* split_at must not consume base state: same index twice gives the
     same stream. *)
  let c = Prng.split_at base 0 in
  let a' = Prng.split_at base 0 in
  Alcotest.(check int64) "split_at is pure" (Prng.next64 c) (Prng.next64 a')

let test_prng_bits () =
  let rng = Prng.create 11L in
  let b = Prng.bits rng 12 in
  Alcotest.(check int) "12 bits = 2 bytes" 2 (Bytes.length b);
  (* The top 4 bits of the last byte must be zero. *)
  Alcotest.(check int) "high bits masked" 0 (Char.code (Bytes.get b 1) land 0xf0);
  Alcotest.(check int) "0 bits = empty" 0 (Bytes.length (Prng.bits rng 0))

let test_sample_without_replacement () =
  let rng = Prng.create 13L in
  List.iter
    (fun (n, k) ->
      let s = Prng.sample_without_replacement rng ~n ~k in
      Alcotest.(check int) "size" k (Array.length s);
      let sorted = Array.copy s in
      Array.sort compare sorted;
      for i = 1 to k - 1 do
        Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
      done;
      Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < n)) s)
    [ (10, 10); (10, 3); (1000, 5); (100, 99); (1, 0) ]

let test_shuffle_permutation () =
  let rng = Prng.create 17L in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_chi_square () =
  (* 16 buckets, 8000 draws: chi-square statistic should sit well below
     the 0.001-significance cutoff (~39 for 15 dof). *)
  let rng = Prng.create 99L in
  let buckets = Array.make 16 0 in
  let draws = 8000 in
  for _ = 1 to draws do
    let b = Prng.int rng 16 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expected = float_of_int draws /. 16.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 buckets
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 = %.1f < 39" chi2) true (chi2 < 39.0)

(* --- Hash64 --- *)

let test_hash_deterministic () =
  let h1 = Hash64.hash_string ~seed:1L "hello" in
  let h2 = Hash64.hash_string ~seed:1L "hello" in
  Alcotest.(check int64) "same input same hash" h1 h2;
  Alcotest.(check bool) "different seed differs" false
    (Hash64.hash_string ~seed:2L "hello" = h1);
  Alcotest.(check bool) "different input differs" false
    (Hash64.hash_string ~seed:1L "hellp" = h1)

let test_hash_length_matters () =
  (* "a" absorbed then "b" must differ from "ab" then "" etc. *)
  let h1 = Hash64.finish (Hash64.add_string (Hash64.add_string (Hash64.init 1L) "a") "b") in
  let h2 = Hash64.finish (Hash64.add_string (Hash64.add_string (Hash64.init 1L) "ab") "") in
  Alcotest.(check bool) "no concatenation collision" false (h1 = h2)

let test_hash_to_range () =
  let rng = Prng.create 23L in
  for _ = 1 to 500 do
    let h = Prng.int64 rng in
    let v = Hash64.to_range h 97 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 97)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Hash64.to_range: non-positive bound")
    (fun () -> ignore (Hash64.to_range 5L 0))

let test_hash_uniformity_rough () =
  (* Chi-square-free sanity: all 16 buckets populated over 4096 hashes. *)
  let buckets = Array.make 16 0 in
  for i = 0 to 4095 do
    let h = Hash64.finish (Hash64.add_int (Hash64.init 9L) i) in
    let b = Hash64.to_range h 16 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter (fun c -> Alcotest.(check bool) "bucket populated" true (c > 150)) buckets

(* --- Bitset --- *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check int) "empty" 0 (Bitset.cardinal s);
  Bitset.add s 0;
  Bitset.add s 99;
  Bitset.add s 42;
  Bitset.add s 42;
  Alcotest.(check int) "cardinal after adds" 3 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 42" true (Bitset.mem s 42);
  Alcotest.(check bool) "not mem 41" false (Bitset.mem s 41);
  Bitset.remove s 42;
  Alcotest.(check bool) "removed" false (Bitset.mem s 42);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 99 ] (Bitset.to_list s);
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: element out of range")
    (fun () -> Bitset.add s 100)

let test_bitset_set_ops () =
  let a = Bitset.of_list 20 [ 1; 2; 3; 10 ] in
  let b = Bitset.of_list 20 [ 3; 10; 11 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 10; 11 ] (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3; 10 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.to_list (Bitset.diff a b))

let test_bitset_complement () =
  let a = Bitset.of_list 10 [ 0; 5; 9 ] in
  let c = Bitset.complement a in
  Alcotest.(check (list int)) "complement" [ 1; 2; 3; 4; 6; 7; 8 ] (Bitset.to_list c);
  Alcotest.(check int) "cardinals sum" 10 (Bitset.cardinal a + Bitset.cardinal c)

let test_bitset_count_in () =
  let a = Bitset.of_list 10 [ 1; 3; 5 ] in
  Alcotest.(check int) "count_in" 2 (Bitset.count_in a [| 1; 2; 5; 6 |])

let test_bitset_copy_clear () =
  let a = Bitset.of_list 8 [ 1; 2 ] in
  let b = Bitset.copy a in
  Bitset.add b 3;
  Alcotest.(check int) "copy is independent" 2 (Bitset.cardinal a);
  Bitset.clear b;
  Alcotest.(check int) "clear" 0 (Bitset.cardinal b)

let test_bitset_equal () =
  let a = Bitset.of_list 70 [ 0; 33; 69 ] in
  let b = Bitset.of_list 70 [ 0; 33; 69 ] in
  let c = Bitset.of_list 70 [ 0; 33 ] in
  Alcotest.(check bool) "equal" true (Bitset.equal a b);
  Alcotest.(check bool) "unequal members" false (Bitset.equal a c);
  Alcotest.(check bool) "unequal capacity" false (Bitset.equal a (Bitset.of_list 71 [ 0; 33; 69 ]));
  (* add + remove must leave no phantom bits behind *)
  Bitset.add c 69;
  Bitset.add c 42;
  Bitset.remove c 42;
  Alcotest.(check bool) "equal after add/remove" true (Bitset.equal a c)

(* --- Vec --- *)

let test_vec_push_get () =
  let v = Vec.create () in
  Alcotest.(check bool) "fresh empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 7);
  Alcotest.(check (list int)) "to_list order" [ 0; 1; 4 ]
    (Vec.to_list v |> List.filteri (fun i _ -> i < 3));
  Alcotest.(check int) "fold" (Vec.fold_left ( + ) 0 v)
    (Array.fold_left ( + ) 0 (Vec.to_array v))

let test_vec_clear_reuse () =
  let v = Vec.create () in
  Vec.push v "a";
  Vec.push v "b";
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v "c";
  Alcotest.(check string) "reused storage" "c" (Vec.get v 0);
  Alcotest.(check (list string)) "of_list round trip" [ "x"; "y" ]
    (Vec.to_list (Vec.of_list [ "x"; "y" ]))

let test_vec_swap () =
  let a = Vec.of_list [ 1; 2; 3 ] and b = Vec.of_list [ 9 ] in
  Vec.swap a b;
  Alcotest.(check (list int)) "a got b" [ 9 ] (Vec.to_list a);
  Alcotest.(check (list int)) "b got a" [ 1; 2; 3 ] (Vec.to_list b);
  let sink = Vec.create () in
  Vec.append sink a;
  Vec.append sink b;
  Alcotest.(check (list int)) "append concatenates" [ 9; 1; 2; 3 ] (Vec.to_list sink)

let test_vec_iter_sees_mid_iteration_pushes () =
  let v = Vec.of_list [ 0; 1; 2 ] in
  let seen = ref [] in
  Vec.iter (fun x ->
      seen := x :: !seen;
      if x < 2 then Vec.push v (x + 10))
    v;
  (* iter re-reads the length, so elements pushed during iteration are
     visited too — the delivery loops rely on this. *)
  Alcotest.(check (list int)) "visited appended" [ 0; 1; 2; 10; 11 ] (List.rev !seen)

(* --- I64_table --- *)

let test_i64_table_basic () =
  let t = I64_table.create () in
  Alcotest.(check int) "fresh" 0 (I64_table.length t);
  Alcotest.(check bool) "0L absent" false (I64_table.mem t 0L);
  I64_table.set t 0L "zero";
  I64_table.set t Int64.min_int "min";
  I64_table.set t (-1L) "m1";
  Alcotest.(check string) "get 0L" "zero" (I64_table.get t 0L);
  Alcotest.(check string) "get min" "min" (I64_table.get t Int64.min_int);
  Alcotest.(check (option string)) "find_opt hit" (Some "m1") (I64_table.find_opt t (-1L));
  Alcotest.(check (option string)) "find_opt miss" None (I64_table.find_opt t 17L);
  Alcotest.check_raises "get miss" Not_found (fun () -> ignore (I64_table.get t 17L));
  I64_table.set t 0L "zero'";
  Alcotest.(check string) "overwrite" "zero'" (I64_table.get t 0L);
  Alcotest.(check int) "length counts keys" 3 (I64_table.length t)

let test_i64_table_grow () =
  let t = I64_table.create () in
  let key i = Int64.mul (Int64.of_int i) 0x10000001L in
  for i = 0 to 999 do
    I64_table.set t (key i) i
  done;
  Alcotest.(check int) "length" 1000 (I64_table.length t);
  for i = 0 to 999 do
    if I64_table.get t (key i) <> i then Alcotest.failf "lost key %d across growth" i
  done;
  let sum = ref 0 in
  I64_table.iter (fun _ v -> sum := !sum + v) t;
  Alcotest.(check int) "iter visits all" (999 * 1000 / 2) !sum;
  I64_table.clear t;
  Alcotest.(check int) "clear" 0 (I64_table.length t);
  Alcotest.(check bool) "cleared key gone" false (I64_table.mem t (key 5))

(* --- Stats --- *)

let feq msg expected actual = Alcotest.(check (float 1e-9)) msg expected actual

let test_stats_basic () =
  feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  feq "mean empty" 0.0 (Stats.mean [||]);
  feq "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  feq "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  feq "p0 is min" 1.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] 0.0);
  feq "p100 is max" 3.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] 100.0);
  (* mean 2, every deviation ±1 -> population stddev exactly 1 *)
  feq "stddev" 1.0 (Stats.stddev [| 1.0; 3.0; 1.0; 3.0; 1.0; 3.0; 1.0; 3.0 |])

let test_linear_fit () =
  let fit = Stats.linear_fit [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |] in
  feq "slope" 2.0 fit.Stats.slope;
  feq "intercept" 1.0 fit.Stats.intercept;
  feq "r2 perfect" 1.0 fit.Stats.r2

let test_binomial_tail () =
  feq "tail at 0 is 1" 1.0 (Stats.binomial_tail ~trials:10 ~p:0.3 ~at_least:0);
  feq "tail beyond trials is 0" 0.0 (Stats.binomial_tail ~trials:10 ~p:0.3 ~at_least:11);
  (* P(Bin(2, 1/2) >= 1) = 3/4 *)
  Alcotest.(check (float 1e-9)) "exact small case" 0.75
    (Stats.binomial_tail ~trials:2 ~p:0.5 ~at_least:1);
  (* P(Bin(4, 1/2) >= 2) = 11/16 *)
  Alcotest.(check (float 1e-9)) "exact Bin(4)" (11.0 /. 16.0)
    (Stats.binomial_tail ~trials:4 ~p:0.5 ~at_least:2)

let test_growth_classify () =
  let power points = Stats.Growth.classify points in
  let mk f = Array.of_list (List.map (fun n -> (n, f n)) [ 64; 128; 256; 512; 1024 ]) in
  (match power (mk (fun _ -> 5.0)) with
  | Stats.Growth.Constant -> ()
  | g -> Alcotest.failf "constant misclassified as %s" (Stats.Growth.to_string g));
  (match power (mk (fun n -> float_of_int n)) with
  | Stats.Growth.Power e when e > 0.9 && e < 1.1 -> ()
  | g -> Alcotest.failf "linear misclassified as %s" (Stats.Growth.to_string g));
  (match power (mk (fun n -> sqrt (float_of_int n))) with
  | Stats.Growth.Power e when e > 0.4 && e < 0.6 -> ()
  | g -> Alcotest.failf "sqrt misclassified as %s" (Stats.Growth.to_string g));
  match power (mk (fun n -> let l = log (float_of_int n) in l *. l)) with
  | Stats.Growth.Polylog -> ()
  | g -> Alcotest.failf "log^2 misclassified as %s" (Stats.Growth.to_string g)

(* --- Histogram --- *)

let test_histogram_basic () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty total" 0 (Histogram.total h);
  Alcotest.(check (option int)) "empty max" None (Histogram.max_value h);
  Histogram.add h 4;
  Histogram.add h 4;
  Histogram.add_many h 7 3;
  Alcotest.(check int) "total" 5 (Histogram.total h);
  Alcotest.(check int) "count 4" 2 (Histogram.count h 4);
  Alcotest.(check int) "count missing" 0 (Histogram.count h 5);
  Alcotest.(check (option int)) "max value" (Some 7) (Histogram.max_value h);
  Alcotest.(check (list (pair int int))) "rows" [ (4, 2); (7, 3) ] (Histogram.to_rows h);
  Alcotest.check_raises "negative rejected" (Invalid_argument "Histogram.add: negative value")
    (fun () -> Histogram.add h (-1))

let test_histogram_percentile () =
  let h = Histogram.create () in
  Histogram.add_many h 1 90;
  Histogram.add_many h 10 10;
  Alcotest.(check int) "p50" 1 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p95" 10 (Histogram.percentile h 95.0);
  Alcotest.(check int) "p100" 10 (Histogram.percentile h 100.0);
  let empty = Histogram.create () in
  Alcotest.check_raises "empty percentile" (Invalid_argument "Histogram.percentile: empty")
    (fun () -> ignore (Histogram.percentile empty 50.0))

let test_histogram_percentile_opt () =
  let h = Histogram.create () in
  Histogram.add_many h 1 90;
  Histogram.add_many h 10 10;
  Alcotest.(check (option int)) "agrees with percentile" (Some 1)
    (Histogram.percentile_opt h 50.0);
  Alcotest.(check (option int)) "p95" (Some 10) (Histogram.percentile_opt h 95.0);
  (* The degenerate case percentile crashes on: total instead of raise. *)
  let empty = Histogram.create () in
  Alcotest.(check (option int)) "empty is None" None (Histogram.percentile_opt empty 50.0);
  Alcotest.check_raises "out-of-range p still rejected"
    (Invalid_argument "Histogram.percentile_opt: p out of range") (fun () ->
      ignore (Histogram.percentile_opt empty 101.0))

let test_histogram_render () =
  let h = Histogram.create () in
  Histogram.add_many h 3 4;
  Histogram.add h 12;
  let s = Histogram.render ~width:8 h in
  Alcotest.(check bool) "mentions both rows" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.filter (fun l -> l <> "") |> List.length = 2)

(* --- Table --- *)

let test_table_markdown () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "23" ];
  let md = Table.to_markdown t in
  Alcotest.(check bool) "has header" true
    (String.length md > 0 && String.sub md 0 1 = "|");
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' md |> List.exists (fun l -> String.length l > 0 && l.[0] = '|'
      && String.length l > 2 && String.index_opt l 'x' <> None))

let test_table_arity () =
  let t = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_csv () =
  let t = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Left) ] in
  Table.add_row t [ "x,y"; "plain" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv escaping" "a,b\n\"x,y\",plain\n" csv

let suites =
  [
    ( "stdx.intx",
      [
        Alcotest.test_case "ilog2" `Quick test_ilog2;
        Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
        Alcotest.test_case "isqrt" `Quick test_isqrt;
        Alcotest.test_case "pow/cdiv/clamp" `Quick test_pow_cdiv_clamp;
      ] );
    ( "stdx.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "float range" `Quick test_prng_float_range;
        Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        Alcotest.test_case "split_at purity" `Quick test_prng_split_at_distinct;
        Alcotest.test_case "bits masking" `Quick test_prng_bits;
        Alcotest.test_case "sampling w/o replacement" `Quick test_sample_without_replacement;
        Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
        Alcotest.test_case "chi-square uniformity" `Quick test_prng_chi_square;
      ] );
    ( "stdx.hash64",
      [
        Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
        Alcotest.test_case "length absorption" `Quick test_hash_length_matters;
        Alcotest.test_case "to_range" `Quick test_hash_to_range;
        Alcotest.test_case "rough uniformity" `Quick test_hash_uniformity_rough;
      ] );
    ( "stdx.bitset",
      [
        Alcotest.test_case "basics" `Quick test_bitset_basic;
        Alcotest.test_case "set operations" `Quick test_bitset_set_ops;
        Alcotest.test_case "complement" `Quick test_bitset_complement;
        Alcotest.test_case "count_in" `Quick test_bitset_count_in;
        Alcotest.test_case "copy/clear" `Quick test_bitset_copy_clear;
        Alcotest.test_case "equal" `Quick test_bitset_equal;
      ] );
    ( "stdx.vec",
      [
        Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
        Alcotest.test_case "clear reuses storage" `Quick test_vec_clear_reuse;
        Alcotest.test_case "swap/append" `Quick test_vec_swap;
        Alcotest.test_case "iter sees appended" `Quick test_vec_iter_sees_mid_iteration_pushes;
      ] );
    ( "stdx.i64_table",
      [
        Alcotest.test_case "basics" `Quick test_i64_table_basic;
        Alcotest.test_case "growth keeps keys" `Quick test_i64_table_grow;
      ] );
    ( "stdx.stats",
      [
        Alcotest.test_case "mean/median/percentile" `Quick test_stats_basic;
        Alcotest.test_case "linear fit" `Quick test_linear_fit;
        Alcotest.test_case "binomial tail" `Quick test_binomial_tail;
        Alcotest.test_case "growth classification" `Quick test_growth_classify;
      ] );
    ( "stdx.histogram",
      [
        Alcotest.test_case "basics" `Quick test_histogram_basic;
        Alcotest.test_case "percentile" `Quick test_histogram_percentile;
        Alcotest.test_case "percentile_opt" `Quick test_histogram_percentile_opt;
        Alcotest.test_case "render" `Quick test_histogram_render;
      ] );
    ( "stdx.table",
      [
        Alcotest.test_case "markdown" `Quick test_table_markdown;
        Alcotest.test_case "arity check" `Quick test_table_arity;
        Alcotest.test_case "csv escaping" `Quick test_table_csv;
      ] );
  ]
