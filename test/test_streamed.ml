(* Streamed delivery plane (Batch.Arena / Batch.Chain + engine wiring).

   Two layers of evidence that the chunked streamed plane is an exact
   stand-in for the historical double-buffered mailbox lanes:

   - arena/chain unit suite: segment recycling through the free list,
     O(1) chain transfer, drain-time recycling, and the no-stale-reads
     guarantee (a recycled segment never leaks a retired chain's
     messages back into a new owner);
   - qcheck trace identity: AER runs with the streamed plane on and off
     ([~stream:true] vs [~stream:false]) are bit-identical in metrics,
     outputs and JSONL traces — on the synchronous and asynchronous
     engines, on the narrow and forced-wide layouts, and with lossy /
     jittery network conditions active (the [?net] layer reorders
     nothing, but its drops and delays must land on the same messages
     either way).

   The wide_for boundary tests pin the packed plane's structural
   ceiling: past n = 2^18 the 63-bit immediate cannot host any wide
   layout, and the failure is a named [Immediate_exhausted] (pointing
   at the planned 2-int lane), distinct from the fewer-strings advice
   for feasible populations. *)

module Attacks = Fba_adversary.Aer_attacks
module Runner = Fba_harness.Runner
module Metrics = Fba_sim.Metrics
module Batch = Fba_sim.Batch
open Fba_core
open Fba_stdx

(* --- Arena / Chain unit suite --- *)

let chain_list c =
  let out = ref [] in
  Batch.Chain.iter (fun ~src ~dst m -> out := (src, dst, m) :: !out) c;
  List.rev !out

let push_range c ~from ~count =
  for i = from to from + count - 1 do
    Batch.Chain.push c ~src:i ~dst:(i + 1) (i * 10)
  done

let expect_range ~from ~count = List.init count (fun k -> (from + k, from + k + 1, (from + k) * 10))

let test_chain_order () =
  let a = Batch.Arena.create ~seg_cap:4 () in
  let c = Batch.Chain.create a in
  Alcotest.(check bool) "fresh chain is empty" true (Batch.Chain.is_empty c);
  push_range c ~from:0 ~count:11;
  Alcotest.(check int) "length spans segments" 11 (Batch.Chain.length c);
  Alcotest.(check (list (triple int int int))) "iter in push order" (expect_range ~from:0 ~count:11)
    (chain_list c);
  let envs = Batch.Chain.to_envelopes c in
  Alcotest.(check int) "to_envelopes materializes all" 11 (List.length envs);
  let e = List.nth envs 5 in
  Alcotest.(check int) "envelope src" 5 e.Fba_sim.Envelope.src;
  Alcotest.(check int) "envelope dst" 6 e.Fba_sim.Envelope.dst;
  Alcotest.(check int) "envelope msg" 50 e.Fba_sim.Envelope.msg;
  Alcotest.(check int) "iter is non-destructive" 11 (Batch.Chain.length c)

let test_free_list_recycling () =
  let a = Batch.Arena.create ~seg_cap:4 () in
  let c = Batch.Chain.create a in
  push_range c ~from:0 ~count:12 (* exactly 3 segments *);
  let peak0 = Batch.Arena.peak_words a in
  Alcotest.(check int) "3 segments live, none free" 0 (Batch.Arena.free_segments a);
  Alcotest.(check int) "peak counts 3 two-lane segments" (3 * 2 * 4) peak0;
  Batch.Chain.clear c;
  Alcotest.(check int) "clear parks all segments" 3 (Batch.Arena.free_segments a);
  Alcotest.(check int) "clear frees nothing (peak is retained)" peak0 (Batch.Arena.peak_words a);
  (* A refill of the same size must be served entirely from the free
     list: the arena creates no segment, so peak_words cannot move. *)
  let c2 = Batch.Chain.create a in
  push_range c2 ~from:100 ~count:12;
  Alcotest.(check int) "refill drains the free list" 0 (Batch.Arena.free_segments a);
  Alcotest.(check int) "refill reuses, never grows" peak0 (Batch.Arena.peak_words a)

let test_no_stale_reads () =
  let a = Batch.Arena.create ~seg_cap:4 () in
  let c1 = Batch.Chain.create a in
  push_range c1 ~from:0 ~count:10;
  Batch.Chain.clear c1;
  Alcotest.(check (list (triple int int int))) "retired chain reads empty" [] (chain_list c1);
  Alcotest.(check int) "retired chain has length 0" 0 (Batch.Chain.length c1);
  (* The new owner of the recycled segments sees only its own pushes —
     a partial refill must not resurrect the tail of the old lane. *)
  let c2 = Batch.Chain.create a in
  push_range c2 ~from:50 ~count:5;
  Alcotest.(check (list (triple int int int))) "recycled segments carry only the new owner's data"
    (expect_range ~from:50 ~count:5) (chain_list c2)

let test_transfer () =
  let a = Batch.Arena.create ~seg_cap:4 () in
  let src = Batch.Chain.create a in
  let into = Batch.Chain.create a in
  push_range into ~from:0 ~count:3;
  push_range src ~from:3 ~count:9;
  Batch.Chain.transfer src ~into;
  Alcotest.(check int) "transfer empties the source" 0 (Batch.Chain.length src);
  Alcotest.(check (list (triple int int int))) "transfer appends in order"
    (expect_range ~from:0 ~count:12) (chain_list into);
  (* Self-transfer and empty-source transfer are no-ops. *)
  Batch.Chain.transfer into ~into;
  Batch.Chain.transfer src ~into;
  Alcotest.(check int) "self/empty transfer is a no-op" 12 (Batch.Chain.length into)

let test_drain_recycles () =
  let a = Batch.Arena.create ~seg_cap:4 () in
  let c = Batch.Chain.create a in
  let next = Batch.Chain.create a in
  push_range c ~from:0 ~count:12;
  let peak0 = Batch.Arena.peak_words a in
  (* Deliver-as-you-go: every delivery from [c] triggers a push into
     [next] (the engine's send-refills-sends pattern). Segments drained
     from [c] return to the free list mid-drain and serve [next], so
     the arena grows by at most one segment of slack. *)
  let seen = ref [] in
  Batch.Chain.drain c ~f:(fun ~src ~dst m ->
      seen := (src, dst, m) :: !seen;
      Batch.Chain.push next ~src ~dst (m + 1));
  Alcotest.(check (list (triple int int int))) "drain visits in push order"
    (expect_range ~from:0 ~count:12) (List.rev !seen);
  Alcotest.(check int) "drained chain is empty" 0 (Batch.Chain.length c);
  Alcotest.(check int) "refilled chain holds every delivery" 12 (Batch.Chain.length next);
  Alcotest.(check bool)
    (Printf.sprintf "drain recycles in flight: peak %d <= %d + one segment"
       (Batch.Arena.peak_words a) peak0)
    true
    (Batch.Arena.peak_words a <= peak0 + (2 * 4))

let test_peak_gauge () =
  Batch.Peak.reset ();
  Alcotest.(check int) "reset zeroes the gauge" 0 (Batch.Peak.get ());
  Batch.Peak.note 300;
  Batch.Peak.note 120;
  Alcotest.(check int) "note keeps the max" 300 (Batch.Peak.get ());
  Batch.Peak.note 450;
  Alcotest.(check int) "note raises monotonically" 450 (Batch.Peak.get ());
  Batch.Peak.reset ()

(* --- wide_for structural ceiling --- *)

let test_immediate_exhausted () =
  let open Msg.Layout in
  (* n = 2^18 is the last feasible population: 18-bit ids still leave a
     19-bit label field beside the minimal string budget. *)
  let lt = wide_for ~n:262144 ~strings:8 in
  Alcotest.(check bool) "n=2^18 still fits" true (total_bits lt <= 63);
  Alcotest.(check bool) "n=2^18 addresses the population" true (lt.max_n >= 262144);
  Alcotest.(check int) "n=2^18 id_bits" 18 lt.id_bits;
  (match wide_for ~n:262145 ~strings:8 with
  | (_ : t) -> Alcotest.fail "n=2^18+1: expected Immediate_exhausted"
  | exception Immediate_exhausted { n; id_bits } ->
    Alcotest.(check int) "exception carries n" 262145 n;
    Alcotest.(check int) "exception carries id_bits" 19 id_bits);
  (* The structural ceiling outranks the fewer-strings advice: a huge
     string budget at an infeasible n must not be blamed on strings. *)
  (match wide_for ~n:524288 ~strings:5000 with
  | (_ : t) -> Alcotest.fail "n=2^19: expected Immediate_exhausted"
  | exception Immediate_exhausted _ -> ());
  let msg =
    try
      ignore (wide_for ~n:262145 ~strings:8);
      ""
    with e -> Printexc.to_string e
  in
  let contains needle =
    let nh = String.length msg and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub msg i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "printer names the ceiling" true (contains "262144");
  Alcotest.(check bool) "printer points at the 2-int lane" true (contains "2-int")

(* --- Streamed vs buffered engine identity --- *)

module E = Fba_sim.Sync_engine.Make (Aer)
module A = Fba_sim.Async_engine.Make (Aer)

let fingerprint m =
  let h = ref (Hash64.init 0x600DL) in
  let n = Metrics.n m in
  for i = 0 to n - 1 do
    h := Hash64.add_int !h (Metrics.sent_messages_of m i);
    h := Hash64.add_int !h (Metrics.sent_bits_of m i);
    h := Hash64.add_int !h (Metrics.recv_messages_of m i);
    h := Hash64.add_int !h (Metrics.recv_bits_of m i);
    h := Hash64.add_int !h (match Metrics.decision_round m i with None -> -1 | Some r -> r)
  done;
  Hash64.finish (Hash64.add_int !h (Metrics.rounds m))

let quiet_limit_of sc =
  if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
    Params.(sc.Scenario.params.repoll_timeout) + 2
  else 3

let jsonl_sink () =
  let buf = Buffer.create 4096 in
  let sink = Fba_sim.Events.create () in
  Fba_sim.Events.attach sink (Fba_sim.Events.Jsonl.consumer buf);
  (sink, buf)

let arb_run =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%Ld" n seed)
    QCheck.Gen.(pair (int_range 24 64) (map Int64.of_int (int_range 1 1000)))

(* One sync run at a given stream setting; the net layer is active
   (i.i.d. drops) so the identity also covers the drop-attribution
   path through the mailbox. *)
let sync_run ~layout ~net ~stream (n, seed) =
  let sc = Runner.scenario_of_setup { Runner.default_setup with layout } ~n ~seed in
  let events, buf = jsonl_sink () in
  let cfg = Aer.config_of_scenario ~events sc in
  let r =
    E.run ~quiet_limit:(quiet_limit_of sc) ~stream ~events ?net ~config:cfg ~n ~seed
      ~adversary:(Attacks.cornering sc) ~mode:`Rushing ~max_rounds:300 ()
  in
  (r, buf)

let sync_identical ~layout ~net args =
  let s, s_buf = sync_run ~layout ~net ~stream:true args in
  let b, b_buf = sync_run ~layout ~net ~stream:false args in
  Int64.equal
    (fingerprint s.Fba_sim.Sync_engine.metrics)
    (fingerprint b.Fba_sim.Sync_engine.metrics)
  && s.Fba_sim.Sync_engine.outputs = b.Fba_sim.Sync_engine.outputs
  && Buffer.contents s_buf = Buffer.contents b_buf

let prop_sync_stream_identical =
  QCheck.Test.make ~name:"sync: streamed and buffered runs are trace-identical (narrow, lossy net)"
    ~count:6 arb_run
    (sync_identical ~layout:Msg.Layout.Narrow ~net:(Some (Fba_sim.Net.Drop { rate = 0.05 })))

let prop_sync_stream_identical_wide =
  QCheck.Test.make ~name:"sync: streamed and buffered runs are trace-identical (wide layout)"
    ~count:4 arb_run (sync_identical ~layout:Msg.Layout.Wide ~net:None)

let prop_sync_stream_identical_non_rushing =
  (* `Non_rushing keeps the previous round's batch observable — the
     streamed prev chain rebuild must match the buffered copy. *)
  QCheck.Test.make ~name:"sync: streamed and buffered runs are trace-identical (non-rushing)"
    ~count:4 arb_run (fun (n, seed) ->
      let run stream =
        let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
        let events, buf = jsonl_sink () in
        let cfg = Aer.config_of_scenario ~events sc in
        let r =
          E.run ~quiet_limit:(quiet_limit_of sc) ~stream ~events ~config:cfg ~n ~seed
            ~adversary:(Attacks.cornering sc) ~mode:`Non_rushing ~max_rounds:300 ()
        in
        (r, buf)
      in
      let s, s_buf = run true in
      let b, b_buf = run false in
      Int64.equal
        (fingerprint s.Fba_sim.Sync_engine.metrics)
        (fingerprint b.Fba_sim.Sync_engine.metrics)
      && s.Fba_sim.Sync_engine.outputs = b.Fba_sim.Sync_engine.outputs
      && Buffer.contents s_buf = Buffer.contents b_buf)

let prop_async_stream_identical =
  QCheck.Test.make
    ~name:"async: streamed and buffered runs are trace-identical (drop + jitter net)" ~count:4
    arb_run (fun (n, seed) ->
      let net =
        Fba_sim.Net.Compose [ Fba_sim.Net.Drop { rate = 0.03 }; Fba_sim.Net.Jitter { extra = 2 } ]
      in
      let run stream =
        let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
        let events, buf = jsonl_sink () in
        let cfg = Aer.config_of_scenario ~events sc in
        let r =
          A.run ~stream ~events ~net ~config:cfg ~n ~seed
            ~adversary:(Attacks.async_cornering sc) ~max_time:4000 ()
        in
        (r, buf)
      in
      let s, s_buf = run true in
      let b, b_buf = run false in
      Int64.equal
        (fingerprint s.Fba_sim.Async_engine.metrics)
        (fingerprint b.Fba_sim.Async_engine.metrics)
      && s.Fba_sim.Async_engine.outputs = b.Fba_sim.Async_engine.outputs
      && Buffer.contents s_buf = Buffer.contents b_buf)

let suites =
  [
    ( "streamed.arena",
      [
        Alcotest.test_case "chain push order across segments" `Quick test_chain_order;
        Alcotest.test_case "free-list recycling" `Quick test_free_list_recycling;
        Alcotest.test_case "no stale reads after retirement" `Quick test_no_stale_reads;
        Alcotest.test_case "O(1) transfer" `Quick test_transfer;
        Alcotest.test_case "drain recycles in flight" `Quick test_drain_recycles;
        Alcotest.test_case "process-wide peak gauge" `Quick test_peak_gauge;
      ] );
    ( "streamed.layout",
      [ Alcotest.test_case "immediate ceiling past n=2^18" `Quick test_immediate_exhausted ] );
    ( "streamed.engine",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_sync_stream_identical;
          prop_sync_stream_identical_wide;
          prop_sync_stream_identical_non_rushing;
          prop_async_stream_identical;
        ] );
  ]
