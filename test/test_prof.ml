(* The run profiler (Fba_sim.Prof) and the Telemetry export seam.

   The profiler's two contracts:

   - transparency: attaching a profiler must not change the execution.
     qcheck runs the same scenario with and without a profiler (sync
     and async) and demands identical metrics fingerprints, outputs
     and event streams;
   - exact accounting: consecutive snapshots partition the run's
     timeline, so the (round, slot) cell matrix must sum — in integer
     nanoseconds and words — to the run totals, and the per-slot hit
     counters must agree with the event stream's Deliver counts per
     message kind.

   Telemetry gets a schema golden: the document for a fixed run is
   byte-stable (profile omitted — wall-clock is nondeterministic),
   ASCII, and carries the versioned envelope. *)

module Prof = Fba_sim.Prof
module Events = Fba_sim.Events
module Metrics = Fba_sim.Metrics
module Attacks = Fba_adversary.Aer_attacks
module Runner = Fba_harness.Runner
module Telemetry = Fba_harness.Telemetry
open Fba_core
module Aer_sync = Fba_sim.Sync_engine.Make (Aer)
module Aer_async = Fba_sim.Async_engine.Make (Aer)

let fingerprint = Test_determinism.fingerprint

let quiet_limit_of sc =
  if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
    Params.(sc.Scenario.params.repoll_timeout) + 2
  else 3

let run_sync ?events ?prof ~n ~seed adv =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
  let cfg = Aer.config_of_scenario ?events sc in
  Aer_sync.run ~quiet_limit:(quiet_limit_of sc) ?events ?prof ~config:cfg ~n ~seed
    ~adversary:(adv sc) ~mode:`Rushing ~max_rounds:300 ()

let run_async ?events ?prof ~n ~seed adv =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
  let cfg = Aer.config_of_scenario ?events sc in
  Aer_async.run ?events ?prof ~config:cfg ~n ~seed ~adversary:(adv sc) ~max_time:4000 ()

let arb_run =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%Ld" n seed)
    QCheck.Gen.(pair (int_range 24 64) (map Int64.of_int (int_range 1 1000)))

(* --- Transparency: profiling on vs off is byte-identical --- *)

let collect_events run =
  let mem = Events.Memory.create () in
  let sink = Events.create () in
  Events.attach sink (Events.Memory.consumer mem);
  let res = run ~events:sink in
  (res, Events.Memory.to_list mem)

let prop_sync_transparent =
  QCheck.Test.make ~name:"sync: attaching a profiler changes nothing observable" ~count:15
    arb_run (fun (n, seed) ->
      let base, base_ev =
        collect_events (fun ~events -> run_sync ~events ~n ~seed Attacks.cornering)
      in
      let prof = Prof.create () in
      let profiled, prof_ev =
        collect_events (fun ~events -> run_sync ~events ~prof ~n ~seed Attacks.cornering)
      in
      fingerprint base.Fba_sim.Sync_engine.metrics
      = fingerprint profiled.Fba_sim.Sync_engine.metrics
      && base.Fba_sim.Sync_engine.outputs = profiled.Fba_sim.Sync_engine.outputs
      && base_ev = prof_ev)

let prop_async_transparent =
  QCheck.Test.make ~name:"async: attaching a profiler changes nothing observable" ~count:10
    arb_run (fun (n, seed) ->
      let adv sc = Attacks.async_cornering sc in
      let base, base_ev = collect_events (fun ~events -> run_async ~events ~n ~seed adv) in
      let prof = Prof.create () in
      let profiled, prof_ev =
        collect_events (fun ~events -> run_async ~events ~prof ~n ~seed adv)
      in
      fingerprint base.Fba_sim.Async_engine.metrics
      = fingerprint profiled.Fba_sim.Async_engine.metrics
      && base.Fba_sim.Async_engine.outputs = profiled.Fba_sim.Async_engine.outputs
      && base_ev = prof_ev)

(* --- Exact accounting: cells partition the run totals --- *)

let sums_to_totals prof =
  let rounds = Prof.rounds prof and slots = Prof.slots prof in
  let w = ref 0 and a = ref 0 and rw = ref 0 and ra = ref 0 and sw = ref 0 and sa = ref 0 in
  for r = 0 to rounds - 1 do
    rw := !rw + Prof.round_wall prof r;
    ra := !ra + Prof.round_alloc prof r;
    for s = 0 to slots - 1 do
      w := !w + Prof.wall prof ~round:r ~slot:s;
      a := !a + Prof.alloc prof ~round:r ~slot:s
    done
  done;
  for s = 0 to slots - 1 do
    sw := !sw + Prof.slot_wall prof s;
    sa := !sa + Prof.slot_alloc prof s
  done;
  Prof.check prof
  && !w = Prof.total_wall_ns prof
  && !a = Prof.total_alloc_words prof
  && !rw = Prof.total_wall_ns prof
  && !ra = Prof.total_alloc_words prof
  && !sw = Prof.total_wall_ns prof
  && !sa = Prof.total_alloc_words prof

let prop_sync_sums =
  QCheck.Test.make ~name:"sync: profiler cells sum exactly to run totals" ~count:15 arb_run
    (fun (n, seed) ->
      let prof = Prof.create () in
      ignore (run_sync ~prof ~n ~seed Attacks.cornering);
      sums_to_totals prof)

let prop_async_sums =
  QCheck.Test.make ~name:"async: profiler cells sum exactly to run totals" ~count:10 arb_run
    (fun (n, seed) ->
      let prof = Prof.create () in
      ignore (run_async ~prof ~n ~seed (fun sc -> Attacks.async_cornering sc));
      sums_to_totals prof)

(* --- Hit counters agree with the event stream --- *)

let prop_hits_match_delivers =
  QCheck.Test.make ~name:"per-tag hits = Deliver events per kind (and per round)" ~count:15
    arb_run (fun (n, seed) ->
      let prof = Prof.create () in
      let _, evs =
        collect_events (fun ~events -> run_sync ~events ~prof ~n ~seed Attacks.cornering)
      in
      let slots = Prof.slots prof in
      (* Deliver counts from the event stream, keyed the same way:
         kind string -> slot index via the profiler's own slot table. *)
      let slot_of_kind k =
        let found = ref (-1) in
        for s = 0 to slots - 1 do
          if Prof.slot_name prof s = k then found := s
        done;
        !found
      in
      let by_slot = Array.make slots 0 in
      let by_cell = Hashtbl.create 64 in
      List.iter
        (function
          | Events.Deliver { round; kind; _ } ->
            let s = slot_of_kind kind in
            if s < 0 then failwith ("Deliver kind not in profiler slots: " ^ kind);
            by_slot.(s) <- by_slot.(s) + 1;
            Hashtbl.replace by_cell (round, s)
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_cell (round, s)))
          | _ -> ())
        evs;
      let slot_ok = ref true in
      for s = 0 to slots - 1 do
        if Prof.slot_hits prof s <> by_slot.(s) then slot_ok := false
      done;
      let cell_ok = ref true in
      for r = 0 to Prof.rounds prof - 1 do
        for s = 0 to slots - 1 do
          let expect = Option.value ~default:0 (Hashtbl.find_opt by_cell (r, s)) in
          if Prof.hits prof ~round:r ~slot:s <> expect then cell_ok := false
        done
      done;
      !slot_ok && !cell_ok)

(* --- Prof unit details --- *)

let test_engine_slot_is_last () =
  let prof = Prof.create () in
  Alcotest.(check bool) "idle profiler not started" false (Prof.started prof);
  ignore (run_sync ~prof ~n:32 ~seed:5L Attacks.silent);
  Alcotest.(check bool) "started after a run" true (Prof.started prof);
  Alcotest.(check string) "trailing slot is engine" "engine"
    (Prof.slot_name prof (Prof.slots prof - 1));
  (* AER's tag table is the packed wire-tag numbering. *)
  Alcotest.(check string) "slot 1 is Push" "Push" (Prof.slot_name prof 1);
  Alcotest.(check int) "engine slot counts no handler hits" 0
    (Prof.slot_hits prof (Prof.slots prof - 1))

let test_prof_reuse_resets () =
  let prof = Prof.create () in
  ignore (run_sync ~prof ~n:48 ~seed:5L Attacks.cornering);
  let big_hits = Prof.slot_hits prof 4 in
  ignore (run_sync ~prof ~n:24 ~seed:6L Attacks.silent);
  (* Re-arming replaced the matrix: totals are the new run's, not a
     running sum (hits strictly smaller at a third the size). *)
  Alcotest.(check bool) "second run replaces the first" true (Prof.slot_hits prof 4 < big_hits);
  Alcotest.(check bool) "still sums exactly" true (sums_to_totals prof)

(* --- Telemetry --- *)

let stable_run () =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n:32 ~seed:11L in
  Runner.aer_sync ~adversary:Attacks.silent sc

let test_telemetry_schema () =
  let doc = Telemetry.to_json (Telemetry.of_aer_run (stable_run ())) in
  let contains sub =
    let n = String.length doc and m = String.length sub in
    let rec go i = i + m <= n && (String.sub doc i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "versioned envelope" true
    (contains (Printf.sprintf "{\"telemetry_version\":%d,\"counters\":{" Telemetry.version));
  List.iter
    (fun key -> Alcotest.(check bool) key true (contains (Printf.sprintf "\"%s\"" key)))
    [
      "counters"; "gauges"; "dists"; "phases"; "prof"; "n"; "rounds"; "decision_round";
      "sent_bits"; "recv_bits"; "agreed_fraction"; "peak_mailbox_words";
    ];
  Alcotest.(check bool) "no profiler attached -> prof is null" true (contains "\"prof\":null");
  String.iter
    (fun c ->
      if Char.code c >= 128 then Alcotest.failf "non-ASCII byte %02x in document" (Char.code c))
    doc

let test_telemetry_golden () =
  (* Same run, built twice: the document is byte-stable. Goldens the
     key order and number formatting the schema promises. *)
  let d1 = Telemetry.to_json (Telemetry.of_aer_run (stable_run ())) in
  let d2 = Telemetry.to_json (Telemetry.of_aer_run (stable_run ())) in
  Alcotest.(check string) "deterministic document" d1 d2;
  (* Counter values surface verbatim from the run. *)
  let run = stable_run () in
  let t = Telemetry.of_aer_run run in
  Alcotest.(check (list (pair string int)))
    "n and rounds lead the counters"
    [ ("n", 32); ("rounds", run.Runner.obs.Fba_harness.Obs.rounds) ]
    (List.filteri (fun i _ -> i < 2) (Telemetry.counters t))

let test_telemetry_registry () =
  let t = Telemetry.create () in
  Telemetry.counter t "a" 1;
  Telemetry.counter t "b" 2;
  Telemetry.counter t "a" 3;
  Alcotest.(check (list (pair string int)))
    "set keeps position, overwrites value"
    [ ("a", 3); ("b", 2) ]
    (Telemetry.counters t);
  let h = Fba_stdx.Histogram.create () in
  Telemetry.dist t "empty" h;
  Telemetry.gauge t "g" 0.5;
  let doc = Telemetry.to_json t in
  Alcotest.(check string) "empty dist exports null percentiles"
    "{\"telemetry_version\":1,\"counters\":{\"a\":3,\"b\":2},\"gauges\":{\"g\":0.5},\"dists\":{\"empty\":{\"count\":0,\"p50\":null,\"p95\":null,\"p99\":null,\"max\":null}},\"phases\":[],\"prof\":null}"
    doc

let test_telemetry_with_prof () =
  let prof = Prof.create () in
  let sc = Runner.scenario_of_setup Runner.default_setup ~n:32 ~seed:11L in
  let config = { Runner.default_config with Runner.prof = Some prof } in
  let run = Runner.aer_sync ~config ~adversary:Attacks.silent sc in
  let doc = Telemetry.to_json (Telemetry.of_aer_run ~prof run) in
  let contains sub =
    let n = String.length doc and m = String.length sub in
    let rec go i = i + m <= n && (String.sub doc i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prof section present" true (contains "\"prof\":{\"rounds\":");
  Alcotest.(check bool) "slots array present" true (contains "\"slots\":[{\"name\":\"invalid\"")

let suites =
  [
    ( "prof",
      [
        Alcotest.test_case "engine slot layout" `Quick test_engine_slot_is_last;
        Alcotest.test_case "reuse re-arms" `Quick test_prof_reuse_resets;
      ] );
    ( "prof.qcheck",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_sync_transparent;
          prop_async_transparent;
          prop_sync_sums;
          prop_async_sums;
          prop_hits_match_delivers;
        ] );
    ( "telemetry",
      [
        Alcotest.test_case "schema" `Quick test_telemetry_schema;
        Alcotest.test_case "golden document" `Quick test_telemetry_golden;
        Alcotest.test_case "registry semantics" `Quick test_telemetry_registry;
        Alcotest.test_case "prof section" `Quick test_telemetry_with_prof;
      ] );
  ]
