open Fba_stdx
open Fba_sim

(* Toy ring protocol: node 0 starts a token that hops to the next
   identity each round; a node decides when the token reaches it. Node
   i therefore decides in round i (node 0 at init), which makes engine
   timing assertable. *)
module Ring = struct
  type config = { n : int }
  type msg = Token
  type state = { ctx : Ctx.t; mutable got : bool }

  let name = "ring"
  let compile _ = ()

  let init cfg ctx =
    let st = { ctx; got = ctx.Ctx.id = 0 } in
    let outs = if ctx.Ctx.id = 0 then [ ((ctx.Ctx.id + 1) mod cfg.n, Token) ] else [] in
    (st, outs)

  let on_round _ _ ~round:_ = []

  let on_receive cfg st ~round:_ ~src:_ Token =
    if st.got then []
    else begin
      st.got <- true;
      [ ((st.ctx.Ctx.id + 1) mod cfg.n, Token) ]
    end

  let receive_into = None
  let output st = if st.got then Some "done" else None
  let msg_bits _ Token = 16
  let pp_msg _cfg fmt Token = Format.fprintf fmt "Token"
  let msg_tags _cfg = [| "Token" |]
  let msg_tag _cfg Token = 0
end

module Ring_sync = Sync_engine.Make (Ring)
module Ring_async = Async_engine.Make (Ring)

let no_corruption n = Bitset.create n

let test_sync_ring_timing () =
  let n = 6 in
  let res =
    Ring_sync.run ~config:{ Ring.n } ~n ~seed:1L
      ~adversary:(Sync_engine.null_adversary ~corrupted:(no_corruption n))
      ~mode:`Rushing ~max_rounds:20 ()
  in
  Alcotest.(check bool) "all decided" true res.Sync_engine.all_decided;
  for i = 0 to n - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "node %d decision round" i)
      (Some i)
      (Metrics.decision_round res.Sync_engine.metrics i)
  done

let test_sync_metrics_accounting () =
  let n = 4 in
  let res =
    Ring_sync.run ~config:{ Ring.n } ~n ~seed:1L
      ~adversary:(Sync_engine.null_adversary ~corrupted:(no_corruption n))
      ~mode:`Rushing ~max_rounds:20 ()
  in
  let m = res.Sync_engine.metrics in
  (* Each node sends the token exactly once (node 3 sends back to 0,
     who ignores it). *)
  Alcotest.(check int) "total messages" n (Metrics.total_messages_correct m);
  Alcotest.(check int) "total bits" (16 * n) (Metrics.total_bits_correct m);
  for i = 0 to n - 1 do
    Alcotest.(check int) "per-node sends" 1 (Metrics.sent_messages_of m i)
  done

let test_sync_byzantine_breaks_ring () =
  let n = 6 in
  let corrupted = Bitset.of_list n [ 3 ] in
  let res =
    Ring_sync.run ~config:{ Ring.n } ~n ~seed:1L
      ~adversary:(Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing ~max_rounds:50 ()
  in
  Alcotest.(check bool) "not all decided" false res.Sync_engine.all_decided;
  Alcotest.(check (option string)) "node 2 decided" (Some "done") res.Sync_engine.outputs.(2);
  Alcotest.(check (option string)) "node 4 starved" None res.Sync_engine.outputs.(4);
  (* Quiescence detection: the engine must stop shortly after the token
     dies at node 3, not spin to max_rounds. *)
  Alcotest.(check bool) "stops early" true (res.Sync_engine.rounds_used < 12)

let test_sync_adversary_validation () =
  let n = 4 in
  let corrupted = Bitset.of_list n [ 2 ] in
  let forged =
    {
      Sync_engine.corrupted;
      act =
        (fun ~round ~observed:_ ->
          if round = 0 then [ Envelope.make ~src:1 (* not corrupted! *) ~dst:0 Ring.Token ]
          else []);
    }
  in
  Alcotest.check_raises "forged sender rejected"
    (Invalid_argument "Sync_engine: adversary may only send from corrupted identities")
    (fun () ->
      ignore
        (Ring_sync.run ~config:{ Ring.n } ~n ~seed:1L ~adversary:forged ~mode:`Rushing
           ~max_rounds:5 ()))

let test_rushing_vs_non_rushing_observation () =
  let n = 4 in
  let corrupted = Bitset.of_list n [ 2 ] in
  let observed_round0 = ref (-1) in
  let spy mode =
    observed_round0 := -1;
    let adversary =
      {
        Sync_engine.corrupted;
        act =
          (fun ~round ~observed ->
            if round = 0 then observed_round0 := List.length (observed ());
            []);
      }
    in
    ignore
      (Ring_sync.run ~config:{ Ring.n } ~n ~seed:1L ~adversary ~mode ~max_rounds:10 ());
    !observed_round0
  in
  (* Rushing sees node 0's round-0 token; non-rushing sees nothing yet. *)
  Alcotest.(check int) "rushing sees current round" 1 (spy `Rushing);
  Alcotest.(check int) "non-rushing sees nothing in round 0" 0 (spy `Non_rushing)

let test_async_delays () =
  let n = 4 in
  let adversary =
    {
      (Async_engine.null_adversary ~corrupted:(no_corruption n)) with
      Async_engine.max_delay = 3;
      delay = (fun ~time:_ ~src:_ ~dst:_ _ -> 3);
    }
  in
  let res =
    Ring_async.run ~config:{ Ring.n } ~n ~seed:1L ~adversary ~max_time:100 ()
  in
  Alcotest.(check bool) "all decided" true res.Async_engine.all_decided;
  (* Token hop costs 3 time units: node i decides at time 3i. *)
  for i = 1 to n - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "node %d decision time" i)
      (Some (3 * i))
      (Metrics.decision_round res.Async_engine.metrics i)
  done;
  Alcotest.(check (float 0.01)) "normalized rounds" 3.0 res.Async_engine.normalized_rounds

let test_async_delay_clamping () =
  let n = 3 in
  let adversary =
    {
      (Async_engine.null_adversary ~corrupted:(no_corruption n)) with
      Async_engine.max_delay = 2;
      delay = (fun ~time:_ ~src:_ ~dst:_ _ -> 100);
      (* must be clamped to 2 *)
    }
  in
  let res = Ring_async.run ~config:{ Ring.n } ~n ~seed:1L ~adversary ~max_time:50 () in
  Alcotest.(check (option int)) "clamped delay" (Some 2)
    (Metrics.decision_round res.Async_engine.metrics 1)

(* The async engine keeps its pending messages in a calendar queue of
   [max_delay + 1] buckets indexed by [time mod width]; these two tests
   drive the token around that ring several times so bucket reuse and
   the wrap-around indexing are both exercised. *)
let test_async_calendar_wraparound () =
  let n = 4 in
  let adversary =
    {
      (Async_engine.null_adversary ~corrupted:(no_corruption n)) with
      Async_engine.max_delay = 2;
      (* width 3 *)
      delay = (fun ~time ~src:_ ~dst:_ _ -> 1 + (time mod 2));
    }
  in
  let res = Ring_async.run ~config:{ Ring.n } ~n ~seed:1L ~adversary ~max_time:100 () in
  Alcotest.(check bool) "all decided" true res.Async_engine.all_decided;
  (* Hops: 0->1 sent at t=0 (delay 1), 1->2 at t=1 (delay 2),
     2->3 at t=3 (delay 2): arrivals 1, 3, 5 — the width-3 bucket ring
     is reused on every lap. *)
  List.iteri
    (fun i expected ->
      Alcotest.(check (option int))
        (Printf.sprintf "node %d decision time" (i + 1))
        (Some expected)
        (Metrics.decision_round res.Async_engine.metrics (i + 1)))
    [ 1; 3; 5 ]

let test_async_calendar_mixed_delays () =
  let n = 5 in
  let adversary =
    {
      (Async_engine.null_adversary ~corrupted:(no_corruption n)) with
      Async_engine.max_delay = 3;
      (* width 4 *)
      delay = (fun ~time:_ ~src:_ ~dst _ -> if dst mod 2 = 0 then 1 else 3);
    }
  in
  let res = Ring_async.run ~config:{ Ring.n } ~n ~seed:1L ~adversary ~max_time:100 () in
  Alcotest.(check bool) "all decided" true res.Async_engine.all_decided;
  (* Arrivals 3, 4, 7, 8 land in buckets 3, 0, 3, 0 of the width-4
     ring: alternating delays make consecutive laps collide on the
     same bucket index without ever aliasing two live due-times. *)
  List.iteri
    (fun i expected ->
      Alcotest.(check (option int))
        (Printf.sprintf "node %d decision time" (i + 1))
        (Some expected)
        (Metrics.decision_round res.Async_engine.metrics (i + 1)))
    [ 3; 4; 7; 8 ]

let test_async_injection_validation () =
  let n = 3 in
  let corrupted = Bitset.of_list n [ 1 ] in
  let adversary =
    {
      (Async_engine.null_adversary ~corrupted) with
      Async_engine.inject =
        (fun ~time ->
          if time = 0 then [ (Envelope.make ~src:0 ~dst:2 Ring.Token, 1) ] else []);
    }
  in
  Alcotest.check_raises "forged async injection"
    (Invalid_argument "Async_engine: adversary may only send from corrupted identities")
    (fun () ->
      ignore (Ring_async.run ~config:{ Ring.n } ~n ~seed:1L ~adversary ~max_time:10 ()))

let test_metrics_merge () =
  let corrupted = Bitset.of_list 3 [ 2 ] in
  let a = Metrics.create ~n:3 ~corrupted in
  let b = Metrics.create ~n:3 ~corrupted in
  Metrics.record_send a ~src:0 ~dst:1 ~bits:10;
  Metrics.set_rounds a 5;
  Metrics.record_send b ~src:1 ~dst:0 ~bits:20;
  Metrics.record_decision b ~id:0 ~round:2;
  Metrics.set_rounds b 7;
  let m = Metrics.merge_phases a b in
  Alcotest.(check int) "bits summed" 30 (Metrics.total_bits_correct m);
  Alcotest.(check int) "rounds summed" 12 (Metrics.rounds m);
  Alcotest.(check (option int)) "decision offset" (Some 7) (Metrics.decision_round m 0)

let test_metrics_imbalance () =
  let corrupted = Bitset.create 2 in
  let m = Metrics.create ~n:2 ~corrupted in
  Metrics.record_send m ~src:0 ~dst:1 ~bits:30;
  (* node 0: sent 30; node 1: received 30 -> both have load 30: balanced. *)
  Alcotest.(check (float 0.01)) "balanced" 1.0 (Metrics.load_imbalance m);
  Metrics.record_send m ~src:0 ~dst:1 ~bits:30;
  Alcotest.(check (float 0.01)) "still balanced by symmetry" 1.0 (Metrics.load_imbalance m)

let test_envelope_pp () =
  let e = Envelope.make ~src:1 ~dst:2 Ring.Token in
  let s = Format.asprintf "%a" (Envelope.pp (Ring.pp_msg { Ring.n = 3 })) e in
  Alcotest.(check string) "pp" "1->2: Token" s

(* --- Trace --- *)

let test_trace_records () =
  let t = Trace.create () in
  Trace.record t ~round:1 ~kind:"Push";
  Trace.record t ~round:1 ~kind:"Push";
  Trace.record t ~round:2 ~kind:"Poll";
  Alcotest.(check (list string)) "kinds sorted" [ "Poll"; "Push" ] (Trace.kinds t);
  Alcotest.(check int) "rounds" 3 (Trace.rounds t);
  Alcotest.(check int) "count" 2 (Trace.count t ~round:1 ~kind:"Push");
  Alcotest.(check int) "absent" 0 (Trace.count t ~round:0 ~kind:"Poll");
  let rendered = Trace.render t in
  Alcotest.(check bool) "renders a table" true (String.length rendered > 0)

let test_traced_protocol_transparent () =
  (* The Traced wrapper must not change behaviour, only observe. *)
  let n = 5 in
  let module TRing = Trace.Traced (Ring) in
  let module TEngine = Sync_engine.Make (TRing) in
  let trace = Trace.create () in
  let plain =
    Ring_sync.run ~config:{ Ring.n } ~n ~seed:1L
      ~adversary:(Sync_engine.null_adversary ~corrupted:(no_corruption n))
      ~mode:`Rushing ~max_rounds:20 ()
  in
  let traced =
    TEngine.run
      ~config:({ Ring.n }, trace)
      ~n ~seed:1L
      ~adversary:(Sync_engine.null_adversary ~corrupted:(no_corruption n))
      ~mode:`Rushing ~max_rounds:20 ()
  in
  Alcotest.(check int) "same bits"
    (Metrics.total_bits_correct plain.Sync_engine.metrics)
    (Metrics.total_bits_correct traced.Sync_engine.metrics);
  Alcotest.(check bool) "same outputs" true
    (plain.Sync_engine.outputs = traced.Sync_engine.outputs);
  (* n tokens received in total (one per node, incl. the wrap-around). *)
  let total = ref 0 in
  for r = 0 to Trace.rounds trace - 1 do
    total := !total + Trace.count trace ~round:r ~kind:"Token"
  done;
  Alcotest.(check int) "all deliveries traced" n !total

(* --- Events --- *)

let mk_send ~round ~src ~dst ~bits =
  Events.Send { round; src; dst; kind = "Token"; bits; delay = 1 }

let test_events_ring_wraparound () =
  let ring = Events.Ring.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Events.Ring.capacity ring);
  Alcotest.(check int) "empty length" 0 (Events.Ring.length ring);
  Alcotest.(check (list int)) "empty to_list" []
    (List.map (fun _ -> 0) (Events.Ring.to_list ring));
  for r = 0 to 4 do
    Events.Ring.consumer ring (Events.Round_start { round = r })
  done;
  Alcotest.(check int) "length capped" 3 (Events.Ring.length ring);
  Alcotest.(check int) "total counts overwritten" 5 (Events.Ring.total ring);
  let rounds =
    List.map
      (function Events.Round_start { round } -> round | _ -> -1)
      (Events.Ring.to_list ring)
  in
  (* Oldest events (rounds 0 and 1) were overwritten; order preserved. *)
  Alcotest.(check (list int)) "oldest first after wrap" [ 2; 3; 4 ] rounds;
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Events.Ring.create: capacity < 1") (fun () ->
      ignore (Events.Ring.create ~capacity:0))

let test_events_phase_dedup () =
  let sink = Events.create () in
  let mem = Events.Memory.create () in
  Events.attach sink (Events.Memory.consumer mem);
  Events.phase sink ~round:0 "push";
  Events.phase sink ~round:3 "push";
  (* duplicate: dropped *)
  Events.phase sink ~round:2 "poll";
  Alcotest.(check (list (pair string int)))
    "first activation only"
    [ ("push", 0); ("poll", 2) ]
    (Events.phases_seen sink);
  Alcotest.(check int) "one Phase event per name" 2 (Events.Memory.length mem)

let test_jsonl_escaping () =
  Alcotest.(check string) "plain" "abc" (Events.Jsonl.escape "abc");
  Alcotest.(check string) "quote and backslash" {|a\"b\\c|} (Events.Jsonl.escape {|a"b\c|});
  Alcotest.(check string) "newline and tab" {|\n\t|} (Events.Jsonl.escape "\n\t");
  Alcotest.(check string) "control byte" {|\u0001|} (Events.Jsonl.escape "\x01");
  (* gstrings are arbitrary bytes; non-ASCII must never leak through raw. *)
  Alcotest.(check string) "high byte" {|\u00ff|} (Events.Jsonl.escape "\xff");
  let line = Events.Jsonl.to_string (Events.Decide { round = 2; id = 7; value = "g\xffs" }) in
  Alcotest.(check string) "decide object"
    {|{"ev":"decide","round":2,"id":7,"value":"g\u00ffs"}|} line;
  String.iter
    (fun c -> Alcotest.(check bool) "ascii only" true (Char.code c < 0x80))
    line

let test_jsonl_consumer_buffers_lines () =
  let buf = Buffer.create 64 in
  Events.Jsonl.consumer buf (Events.Round_start { round = 0 });
  Events.Jsonl.consumer buf (mk_send ~round:0 ~src:1 ~dst:2 ~bits:16);
  Alcotest.(check string) "two newline-terminated objects"
    ({|{"ev":"round_start","round":0}|} ^ "\n"
    ^ {|{"ev":"send","round":0,"src":1,"dst":2,"kind":"Token","bits":16,"delay":1}|} ^ "\n")
    (Buffer.contents buf)

let test_phase_acc_accounting () =
  let acc =
    Events.Phase_acc.create
      ~classify:(fun ~kind -> if kind = "Token" then "transit" else kind)
      ~n:4 ()
  in
  let c = Events.Phase_acc.consumer acc in
  c (mk_send ~round:0 ~src:0 ~dst:1 ~bits:10);
  c (mk_send ~round:2 ~src:0 ~dst:2 ~bits:10);
  c (mk_send ~round:2 ~src:1 ~dst:2 ~bits:30);
  c (Events.Inject { round = 1; src = 3; dst = 0; kind = "Token"; bits = 7; delay = 1 });
  c (Events.Deliver { round = 1; src = 0; dst = 1; kind = "Token"; bits = 10 });
  c (Events.Deliver { round = 3; src = 1; dst = 2; kind = "Token"; bits = 30 });
  (match Events.Phase_acc.rows acc with
  | [ row ] ->
    Alcotest.(check string) "phase name" "transit" row.Events.Phase_acc.phase;
    Alcotest.(check int) "first round" 0 row.Events.Phase_acc.first_round;
    Alcotest.(check int) "last round" 3 row.Events.Phase_acc.last_round;
    Alcotest.(check int) "correct msgs" 3 row.Events.Phase_acc.msgs_correct;
    Alcotest.(check int) "byz msgs" 1 row.Events.Phase_acc.msgs_byz;
    Alcotest.(check int) "correct bits" 50 row.Events.Phase_acc.bits_correct;
    Alcotest.(check int) "byz bits" 7 row.Events.Phase_acc.bits_byz;
    (* node 0 sent 20 bits, node 1 sent 30. *)
    Alcotest.(check int) "max sent" 30 row.Events.Phase_acc.max_sent_bits;
    (* node 2 received 30 delivered bits, node 1 received 10. *)
    Alcotest.(check int) "max recv" 30 row.Events.Phase_acc.max_recv_bits;
    Alcotest.(check int) "max fanout" 2 row.Events.Phase_acc.max_fanout
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows));
  Alcotest.(check int) "total bits" 57 (Events.Phase_acc.total_bits acc);
  Alcotest.(check int) "total msgs" 4 (Events.Phase_acc.total_messages acc);
  let rendered = Events.Phase_acc.render acc in
  Alcotest.(check bool) "render has total row" true
    (String.length rendered > 0
    && String.length (String.concat "" (String.split_on_char '\n' rendered)) > 0)

let test_engine_emits_events () =
  let n = 4 in
  let sink = Events.create () in
  let mem = Events.Memory.create () in
  Events.attach sink (Events.Memory.consumer mem);
  let corrupted = Bitset.of_list n [ 3 ] in
  let res =
    Ring_sync.run ~events:sink ~config:{ Ring.n } ~n ~seed:1L
      ~adversary:(Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing ~max_rounds:20 ()
  in
  ignore res;
  let count p = List.length (List.filter p (Events.Memory.to_list mem)) in
  (* Nodes 0, 1, 2 each send the token once; node 3 is corrupted. *)
  Alcotest.(check int) "sends" 3 (count (function Events.Send _ -> true | _ -> false));
  (* The hop 2 -> 3 is dropped at the Byzantine destination. *)
  Alcotest.(check int) "drops" 1 (count (function Events.Drop _ -> true | _ -> false));
  Alcotest.(check int) "delivers" 2
    (count (function Events.Deliver _ -> true | _ -> false));
  (* Nodes 0, 1, 2 decide. *)
  Alcotest.(check int) "decides" 3 (count (function Events.Decide _ -> true | _ -> false));
  Alcotest.(check bool) "round starts" true
    (count (function Events.Round_start _ -> true | _ -> false) >= 2)

let test_async_engine_emits_events () =
  let n = 3 in
  let sink = Events.create () in
  let mem = Events.Memory.create () in
  Events.attach sink (Events.Memory.consumer mem);
  let adversary =
    {
      (Async_engine.null_adversary ~corrupted:(no_corruption n)) with
      Async_engine.max_delay = 2;
      delay = (fun ~time:_ ~src:_ ~dst:_ _ -> 2);
    }
  in
  let res =
    Ring_async.run ~events:sink ~config:{ Ring.n } ~n ~seed:1L ~adversary ~max_time:50 ()
  in
  Alcotest.(check bool) "all decided" true res.Async_engine.all_decided;
  let sends =
    List.filter_map
      (function Events.Send { delay; _ } -> Some delay | _ -> None)
      (Events.Memory.to_list mem)
  in
  Alcotest.(check (list int)) "adversary-chosen delays recorded" [ 2; 2; 2 ] sends;
  let delivers =
    List.length
      (List.filter
         (function Events.Deliver _ -> true | _ -> false)
         (Events.Memory.to_list mem))
  in
  (* Node 0 holds the token from init, so the engine stops as soon as
     node 2 decides — the wrap-around hop 2->0 is sent (third delay
     above) but still in flight at termination. *)
  Alcotest.(check int) "delivers" 2 delivers

let test_metrics_imbalance_guards () =
  (* Every node corrupted: no mean load to divide by. *)
  let all_bad = Bitset.of_list 2 [ 0; 1 ] in
  let m = Metrics.create ~n:2 ~corrupted:all_bad in
  Metrics.record_send m ~src:0 ~dst:1 ~bits:100;
  Alcotest.(check (float 0.0)) "empty correct set" 0.0 (Metrics.load_imbalance m);
  (* Correct nodes exist but never touch a message. *)
  let quiet = Metrics.create ~n:3 ~corrupted:(Bitset.of_list 3 [ 2 ]) in
  Alcotest.(check (float 0.0)) "no correct traffic" 0.0 (Metrics.load_imbalance quiet);
  Alcotest.(check bool) "never NaN" false (Float.is_nan (Metrics.load_imbalance quiet))

let test_trace_total_and_csv () =
  let t = Trace.create () in
  Trace.record t ~round:0 ~kind:"Push";
  Trace.record t ~round:2 ~kind:"Push";
  Trace.record t ~round:2 ~kind:"Poll";
  Alcotest.(check int) "total" 2 (Trace.total t ~kind:"Push");
  Alcotest.(check int) "total absent kind" 0 (Trace.total t ~kind:"Fw1");
  let csv = Trace.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check (list string)) "csv with stable total row"
    [ "round,Poll,Push"; "0,0,1"; "1,0,0"; "2,1,1"; "total,1,2" ]
    lines;
  (* The total row survives an empty trace, so parsers can rely on it. *)
  let empty = String.trim (Trace.to_csv (Trace.create ())) in
  Alcotest.(check string) "empty trace keeps total row" "round\ntotal" empty

let suites =
  [
    ( "sim.sync",
      [
        Alcotest.test_case "ring timing" `Quick test_sync_ring_timing;
        Alcotest.test_case "metrics accounting" `Quick test_sync_metrics_accounting;
        Alcotest.test_case "byzantine breaks ring + quiescence" `Quick
          test_sync_byzantine_breaks_ring;
        Alcotest.test_case "adversary sender validation" `Quick test_sync_adversary_validation;
        Alcotest.test_case "rushing vs non-rushing observation" `Quick
          test_rushing_vs_non_rushing_observation;
      ] );
    ( "sim.async",
      [
        Alcotest.test_case "delayed delivery" `Quick test_async_delays;
        Alcotest.test_case "delay clamping" `Quick test_async_delay_clamping;
        Alcotest.test_case "calendar-queue wrap-around" `Quick test_async_calendar_wraparound;
        Alcotest.test_case "calendar-queue mixed delays" `Quick test_async_calendar_mixed_delays;
        Alcotest.test_case "injection validation" `Quick test_async_injection_validation;
      ] );
    ( "sim.trace",
      [
        Alcotest.test_case "recording" `Quick test_trace_records;
        Alcotest.test_case "wrapper transparency" `Quick test_traced_protocol_transparent;
        Alcotest.test_case "totals and csv" `Quick test_trace_total_and_csv;
      ] );
    ( "sim.events",
      [
        Alcotest.test_case "ring buffer wrap-around" `Quick test_events_ring_wraparound;
        Alcotest.test_case "phase marker dedup" `Quick test_events_phase_dedup;
        Alcotest.test_case "jsonl escaping" `Quick test_jsonl_escaping;
        Alcotest.test_case "jsonl consumer" `Quick test_jsonl_consumer_buffers_lines;
        Alcotest.test_case "phase accumulator accounting" `Quick test_phase_acc_accounting;
        Alcotest.test_case "sync engine emission" `Quick test_engine_emits_events;
        Alcotest.test_case "async engine emission" `Quick test_async_engine_emits_events;
      ] );
    ( "sim.metrics",
      [
        Alcotest.test_case "merge phases" `Quick test_metrics_merge;
        Alcotest.test_case "load imbalance" `Quick test_metrics_imbalance;
        Alcotest.test_case "load imbalance degenerate cases" `Quick
          test_metrics_imbalance_guards;
        Alcotest.test_case "envelope pp" `Quick test_envelope_pp;
      ] );
  ]
