(* The pluggable network-condition layer (Fba_sim.Net).

   Three layers of evidence that the layer is safe to carry in the
   default engines:

   - goldens: an engine run with an explicit [Net.Reliable] (and with
     conditions that never fire — sync jitter, a crash scheduled after
     quiescence) reproduces the recorded pre-refactor fingerprints
     bit-for-bit, so the layer costs nothing when off;
   - qcheck properties: drop-rate monotonicity (a delivery lost at rate
     p is lost at every rate q >= p under the same seed — the coupled
     one-draw-per-query contract), partition symmetry (the bisection
     cuts both directions identically), and engine determinism under
     every condition kind;
   - unit tests for crash-stop semantics: victims are selected
     deterministically at the advertised size, receive nothing from the
     crash round on (checked on the event stream), and everything
     before the crash round is delivered. *)

module Net = Fba_sim.Net
module Events = Fba_sim.Events
module Metrics = Fba_sim.Metrics
module Attacks = Fba_adversary.Aer_attacks
module Runner = Fba_harness.Runner
open Fba_core
open Fba_stdx
module Aer_sync = Fba_sim.Sync_engine.Make (Aer)
module Aer_async = Fba_sim.Async_engine.Make (Aer)

let fingerprint = Test_determinism.fingerprint

(* Mirrors Runner.aer_sync's quiescence window, like test_determinism. *)
let quiet_limit_of sc =
  if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
    Params.(sc.Scenario.params.repoll_timeout) + 2
  else 3

let run_sync ?events ?net ~n ~seed adv =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
  let cfg = Aer.config_of_scenario ?events sc in
  Aer_sync.run ~quiet_limit:(quiet_limit_of sc) ?events ?net ~config:cfg ~n ~seed
    ~adversary:(adv sc) ~mode:`Rushing ~max_rounds:300 ()

let run_async ?events ?net ~n ~seed adv =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
  let cfg = Aer.config_of_scenario ?events sc in
  Aer_async.run ?events ?net ~config:cfg ~n ~seed ~adversary:(adv sc) ~max_time:4000 ()

let sync_fp res = fingerprint res.Fba_sim.Sync_engine.metrics

let async_fp res = fingerprint res.Fba_sim.Async_engine.metrics

(* --- Goldens: Reliable (and never-firing conditions) reproduce the
   recorded pre-refactor executions. The fingerprint is the one
   test_determinism.ml recorded from the seed engines at n=256,
   seed=7. --- *)

let golden_cornering_fp = 0x13bb2c9332c814d7L

let test_reliable_explicit_golden () =
  let fp = sync_fp (run_sync ~net:Net.Reliable ~n:256 ~seed:7L (fun sc -> Attacks.cornering sc)) in
  if not (Int64.equal fp golden_cornering_fp) then
    Alcotest.failf "explicit Net.Reliable drifted from the recorded golden: 0x%LxL" fp

let test_sync_jitter_is_noop () =
  (* The synchronous engine's delivery schedule IS the round structure:
     a jitter-only net must be byte-identical to Reliable. *)
  let fp =
    sync_fp
      (run_sync ~net:(Net.Jitter { extra = 3 }) ~n:256 ~seed:7L (fun sc -> Attacks.cornering sc))
  in
  if not (Int64.equal fp golden_cornering_fp) then
    Alcotest.failf "sync jitter-only net drifted from the Reliable golden: 0x%LxL" fp

let test_late_crash_is_noop () =
  (* A crash scheduled after the run quiesces never fires; everything
     before it must be untouched. *)
  let fp =
    sync_fp
      (run_sync
         ~net:(Net.Crash { at = 1000; fraction = 0.3 })
         ~n:256 ~seed:7L
         (fun sc -> Attacks.cornering sc))
  in
  if not (Int64.equal fp golden_cornering_fp) then
    Alcotest.failf "late-crash net drifted from the Reliable golden: 0x%LxL" fp

(* --- Net-layer qcheck properties --- *)

let arb_queries =
  QCheck.make
    ~print:(fun (n, seed, k) -> Printf.sprintf "n=%d seed=%Ld queries=%d" n seed k)
    QCheck.Gen.(
      triple (int_range 8 128) (map Int64.of_int (int_range 1 10000)) (int_range 1 500))

(* A deterministic query sequence: what matters is that both nets see
   the same one. *)
let query_seq n k f =
  for i = 0 to k - 1 do
    f ~round:(i / n) ~src:(i mod n) ~dst:((i * 7 + 3) mod n)
  done

let prop_drop_monotone =
  QCheck.Test.make ~name:"drop-rate monotonicity: lost at p => lost at q >= p" ~count:100
    (QCheck.pair arb_queries
       (QCheck.pair (QCheck.float_range 0.0 1.0) (QCheck.float_range 0.0 1.0)))
    (fun ((n, seed, k), (a, b)) ->
      let p = min a b and q = max a b in
      let lo = Net.instantiate (Net.Drop { rate = p }) ~n ~seed in
      let hi = Net.instantiate (Net.Drop { rate = q }) ~n ~seed in
      let ok = ref true in
      query_seq n k (fun ~round ~src ~dst ->
          let vl = Net.verdict lo ~round ~src ~dst in
          let vh = Net.verdict hi ~round ~src ~dst in
          match (vl, vh) with
          | Net.Lose _, Net.Pass -> ok := false
          | _ -> ());
      !ok)

let prop_drop_counts_monotone =
  QCheck.Test.make ~name:"drop-rate monotonicity: no more deliveries at higher rate"
    ~count:100
    (QCheck.pair arb_queries
       (QCheck.pair (QCheck.float_range 0.0 1.0) (QCheck.float_range 0.0 1.0)))
    (fun ((n, seed, k), (a, b)) ->
      let p = min a b and q = max a b in
      let delivered rate =
        let net = Net.instantiate (Net.Drop { rate }) ~n ~seed in
        let c = ref 0 in
        query_seq n k (fun ~round ~src ~dst ->
            match Net.verdict net ~round ~src ~dst with Net.Pass -> incr c | Net.Lose _ -> ());
        !c
      in
      delivered q <= delivered p)

let prop_partition_symmetric =
  QCheck.Test.make ~name:"partition symmetry: src/dst swap gives the same verdict" ~count:200
    (QCheck.pair arb_queries (QCheck.pair (QCheck.int_range 0 20) (QCheck.int_range 0 20)))
    (fun ((n, seed, _), (from_round, rounds)) ->
      let net = Net.instantiate (Net.Partition { from_round; rounds }) ~n ~seed in
      let ok = ref true in
      for round = 0 to from_round + rounds + 1 do
        for src = 0 to n - 1 do
          let dst = (src * 5 + 1) mod n in
          if Net.verdict net ~round ~src ~dst <> Net.verdict net ~round ~src:dst ~dst:src then
            ok := false
        done
      done;
      !ok)

let test_partition_window () =
  let n = 10 in
  let net = Net.instantiate (Net.Partition { from_round = 2; rounds = 3 }) ~n ~seed:1L in
  let cross ~round = Net.verdict net ~round ~src:0 ~dst:9 in
  let same ~round = Net.verdict net ~round ~src:0 ~dst:4 in
  Alcotest.(check bool) "before window" true (cross ~round:1 = Net.Pass);
  Alcotest.(check bool) "inside window" true
    (cross ~round:2 = Net.Lose Net.reason_partition
    && cross ~round:4 = Net.Lose Net.reason_partition);
  Alcotest.(check bool) "after window" true (cross ~round:5 = Net.Pass);
  Alcotest.(check bool) "same side never cut" true
    (same ~round:2 = Net.Pass && same ~round:3 = Net.Pass)

(* --- Engine determinism under every condition kind --- *)

let arb_run =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%Ld" n seed)
    QCheck.Gen.(pair (int_range 24 64) (map Int64.of_int (int_range 1 1000)))

let nets_under_test =
  [
    Net.Drop { rate = 0.1 };
    Net.Crash { at = 2; fraction = 0.2 };
    Net.Partition { from_round = 1; rounds = 2 };
    Net.Compose [ Net.Drop { rate = 0.05 }; Net.Partition { from_round = 2; rounds = 1 } ];
  ]

let prop_sync_net_deterministic =
  QCheck.Test.make ~name:"sync run under net conditions is bit-identical when repeated"
    ~count:8 arb_run (fun (n, seed) ->
      List.for_all
        (fun net ->
          let fp1 = sync_fp (run_sync ~net ~n ~seed (fun sc -> Attacks.cornering sc)) in
          let fp2 = sync_fp (run_sync ~net ~n ~seed (fun sc -> Attacks.cornering sc)) in
          Int64.equal fp1 fp2)
        nets_under_test)

let prop_async_net_deterministic =
  QCheck.Test.make ~name:"async run under net conditions (incl. jitter) is bit-identical"
    ~count:5 arb_run (fun (n, seed) ->
      List.for_all
        (fun net ->
          let fp1 = async_fp (run_async ~net ~n ~seed (fun sc -> Attacks.async_cornering sc)) in
          let fp2 = async_fp (run_async ~net ~n ~seed (fun sc -> Attacks.async_cornering sc)) in
          Int64.equal fp1 fp2)
        (Net.Jitter { extra = 3 } :: nets_under_test))

(* --- Crash-stop semantics --- *)

let test_crash_victim_selection () =
  let n = 100 in
  let net = Net.instantiate (Net.Crash { at = 3; fraction = 0.25 }) ~n ~seed:5L in
  match Net.crashed net with
  | None -> Alcotest.fail "crash condition lost at instantiation"
  | Some (at, victims) ->
    Alcotest.(check int) "crash round" 3 at;
    Alcotest.(check int) "victim count = ceil(fraction*n)" 25 (Bitset.cardinal victims);
    (* Same (spec, seed) selects the same victims. *)
    (match Net.crashed (Net.instantiate (Net.Crash { at = 3; fraction = 0.25 }) ~n ~seed:5L) with
    | Some (_, v2) ->
      Alcotest.(check bool) "selection deterministic" true (Bitset.equal victims v2)
    | None -> Alcotest.fail "second instantiation lost the crash condition")

let test_crash_verdicts () =
  let n = 40 in
  let net = Net.instantiate (Net.Crash { at = 2; fraction = 0.2 }) ~n ~seed:9L in
  let at, victims =
    match Net.crashed net with Some x -> x | None -> Alcotest.fail "no crash state"
  in
  let victim =
    match Bitset.to_list victims with v :: _ -> v | [] -> Alcotest.fail "no victims"
  in
  let alive =
    let rec find i = if Bitset.mem victims i then find ((i + 1) mod n) else i in
    find ((victim + 1) mod n)
  in
  Alcotest.(check bool) "before crash round: delivered" true
    (Net.verdict net ~round:(at - 1) ~src:alive ~dst:victim = Net.Pass);
  Alcotest.(check bool) "at crash round: lost" true
    (Net.verdict net ~round:at ~src:alive ~dst:victim = Net.Lose Net.reason_crash);
  Alcotest.(check bool) "long after: still lost" true
    (Net.verdict net ~round:(at + 100) ~src:alive ~dst:victim = Net.Lose Net.reason_crash);
  Alcotest.(check bool) "non-victims unaffected" true
    (Net.verdict net ~round:(at + 100) ~src:victim ~dst:alive = Net.Pass)

(* Engine-level semantics, checked on the event stream: from the crash
   round on, no Deliver event targets a victim, every net-crash loss
   targets a victim at or after the crash round, and deliveries to
   victims before the crash round exist (the condition really is
   scheduled, not immediate). *)
let test_crash_stop_engine_semantics () =
  let n = 48 and seed = 11L in
  let net = Net.Crash { at = 2; fraction = 0.25 } in
  let mem = Events.Memory.create () in
  let sink = Events.create () in
  Events.attach sink (Events.Memory.consumer mem);
  let res = run_sync ~events:sink ~net ~n ~seed Attacks.silent in
  let victims =
    match Net.crashed (Net.instantiate net ~n ~seed) with
    | Some (_, v) -> v
    | None -> Alcotest.fail "no crash state"
  in
  let late_deliver_to_victim = ref 0 in
  let early_deliver_to_victim = ref 0 in
  let crash_drops = ref 0 in
  let mistargeted_crash_drops = ref 0 in
  Events.Memory.iter
    (fun ev ->
      match ev with
      | Events.Deliver { round; dst; _ } when Bitset.mem victims dst ->
        if round >= 2 then incr late_deliver_to_victim else incr early_deliver_to_victim
      | Events.Drop { round; dst; reason; _ } when reason = Net.reason_crash ->
        if not (round >= 2 && Bitset.mem victims dst) then incr mistargeted_crash_drops;
        incr crash_drops
      | _ -> ())
    mem;
  Alcotest.(check int) "no deliveries to crashed receivers from the crash round" 0
    !late_deliver_to_victim;
  Alcotest.(check int) "net-crash drops only target victims from the crash round" 0
    !mistargeted_crash_drops;
  Alcotest.(check bool) "victims received traffic before crashing" true
    (!early_deliver_to_victim > 0);
  Alcotest.(check bool) "the crash actually dropped messages" true (!crash_drops > 0);
  (* The run itself must terminate despite the starved victims. *)
  Alcotest.(check bool) "run terminated before the round cap" true
    (res.Fba_sim.Sync_engine.rounds_used < 300)

(* --- Spec validation --- *)

let test_spec_validation () =
  let invalid spec =
    match Net.instantiate spec ~n:8 ~seed:1L with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "rate > 1 rejected" true (invalid (Net.Drop { rate = 1.5 }));
  Alcotest.(check bool) "negative rate rejected" true (invalid (Net.Drop { rate = -0.1 }));
  Alcotest.(check bool) "negative crash round rejected" true
    (invalid (Net.Crash { at = -1; fraction = 0.5 }));
  Alcotest.(check bool) "negative partition length rejected" true
    (invalid (Net.Partition { from_round = 0; rounds = -2 }));
  Alcotest.(check bool) "duplicate kinds rejected" true
    (invalid (Net.Compose [ Net.Drop { rate = 0.1 }; Net.Drop { rate = 0.2 } ]));
  Alcotest.(check bool) "nested compose rejected" true
    (invalid (Net.Compose [ Net.Compose [ Net.Reliable ] ]));
  Alcotest.(check bool) "negative jitter rejected" true (invalid (Net.Jitter { extra = -1 }))

(* --- Async jitter: reliable but stretched --- *)

let test_async_jitter_stretches_time () =
  let n = 48 and seed = 3L in
  let plain = run_async ~n ~seed (fun sc -> Attacks.async_cornering sc) in
  let jittered =
    run_async ~net:(Net.Jitter { extra = 4 }) ~n ~seed (fun sc -> Attacks.async_cornering sc)
  in
  (* Jitter loses nothing: the same number of correct nodes decide. *)
  Alcotest.(check int) "same decisions as reliable"
    (Metrics.decided_count plain.Fba_sim.Async_engine.metrics)
    (Metrics.decided_count jittered.Fba_sim.Async_engine.metrics);
  Alcotest.(check bool) "jitter does not speed the run up" true
    (jittered.Fba_sim.Async_engine.time_used >= plain.Fba_sim.Async_engine.time_used)

let suites =
  [
    ( "net.golden",
      [
        Alcotest.test_case "explicit Reliable matches recorded golden n=256" `Slow
          test_reliable_explicit_golden;
        Alcotest.test_case "sync jitter-only net is a no-op (golden)" `Slow
          test_sync_jitter_is_noop;
        Alcotest.test_case "crash after quiescence is a no-op (golden)" `Slow
          test_late_crash_is_noop;
      ] );
    ( "net.unit",
      [
        Alcotest.test_case "partition window and sides" `Quick test_partition_window;
        Alcotest.test_case "crash victim selection" `Quick test_crash_victim_selection;
        Alcotest.test_case "crash verdicts" `Quick test_crash_verdicts;
        Alcotest.test_case "crash-stop engine semantics (event stream)" `Quick
          test_crash_stop_engine_semantics;
        Alcotest.test_case "spec validation" `Quick test_spec_validation;
        Alcotest.test_case "async jitter stretches but loses nothing" `Quick
          test_async_jitter_stretches_time;
      ] );
    ( "net.qcheck",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_drop_monotone;
          prop_drop_counts_monotone;
          prop_partition_symmetric;
          prop_sync_net_deterministic;
          prop_async_net_deterministic;
        ] );
  ]
