open Fba_stdx

(* --- Pool: the domain worker pool behind experiment sweeps --- *)

(* Burn CPU so tasks finish out of submission order when sharded:
   early indices get the most work. Returns a value derived from the
   work so the loop cannot be optimized away. *)
let lopsided_task len i =
  let spins = (len - i) * 2000 in
  let acc = ref 0 in
  for k = 1 to spins do
    acc := (!acc + k) land 0xFFFF
  done;
  (i * i) + (!acc * 0)

let test_ordering_unequal_costs () =
  let len = 24 in
  let expected = Array.init len (fun i -> i * i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "ordered results at jobs=%d" jobs)
        expected
        (Pool.run ~jobs (lopsided_task len) len))
    [ 1; 2; 4 ]

let test_jobs_exceeding_len () =
  Alcotest.(check (array int)) "jobs > len" [| 0; 10; 20 |]
    (Pool.run ~jobs:16 (fun i -> 10 * i) 3)

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "len=0" [||] (Pool.run ~jobs:4 (fun i -> i) 0);
  Alcotest.(check (array int)) "len=1" [| 7 |] (Pool.run ~jobs:4 (fun _ -> 7) 1)

let test_sequential_matches_parallel () =
  let f i = Hashtbl.hash (i * 31) in
  Alcotest.(check (array int)) "jobs=1 = jobs=4"
    (Pool.run ~jobs:1 f 50) (Pool.run ~jobs:4 f 50)

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "worker failure re-raised at jobs=%d" jobs)
        (Failure "boom")
        (fun () ->
          ignore (Pool.run ~jobs (fun i -> if i = 3 then failwith "boom" else i) 8)))
    [ 1; 4 ]

let test_first_failure_wins () =
  (* Two failing tasks: the lowest-index failure is the one reported,
     whatever order workers hit them in. *)
  let f i = if i = 2 then failwith "first" else if i = 6 then failwith "second" else i in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "lowest-index failure at jobs=%d" jobs)
        (Failure "first")
        (fun () -> ignore (Pool.run ~jobs f 8)))
    [ 1; 4 ]

let test_map_list () =
  Alcotest.(check (list int)) "map_list keeps list order" [ 1; 4; 9; 16 ]
    (Pool.map_list ~jobs:3 (fun x -> x * x) [ 1; 2; 3; 4 ])

let test_recommended_jobs_bounds () =
  let j = Pool.recommended_jobs () in
  Alcotest.(check bool) "at least 1" true (j >= 1);
  Alcotest.(check int) "cap respected" 1 (Pool.recommended_jobs ~cap:1 ())

let suites =
  [
    ( "stdx.pool",
      [
        Alcotest.test_case "ordering under unequal costs" `Quick test_ordering_unequal_costs;
        Alcotest.test_case "jobs exceeding len" `Quick test_jobs_exceeding_len;
        Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
        Alcotest.test_case "jobs=1 matches jobs=4" `Quick test_sequential_matches_parallel;
        Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
        Alcotest.test_case "lowest-index failure wins" `Quick test_first_failure_wins;
        Alcotest.test_case "map_list" `Quick test_map_list;
        Alcotest.test_case "recommended_jobs bounds" `Quick test_recommended_jobs_bounds;
      ] );
  ]
