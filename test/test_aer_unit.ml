(* Message-level unit tests of AER's handlers (Algorithms 1–3): drive
   a single node's state machine with hand-crafted messages whose
   quorum membership we compute from the shared samplers, and check
   each filter in isolation. *)

open Fba_stdx
open Fba_core
module Sampler = Fba_samplers.Sampler

let n = 64

(* A scenario where node [node] is correct but ignorant, so its
   acceptance of gstring is driven purely by the pushes we craft. *)
let make_env ?(seed = 77L) () =
  let params = Params.make ~n ~seed ~d_i:8 ~d_h:8 ~d_j:8 ~gstring_bits:48 () in
  let rng = Prng.create 5L in
  let sc =
    Scenario.make ~junk:Scenario.Junk_default ~params ~rng ~byzantine_fraction:0.1
      ~knowledgeable_fraction:0.8 ()
  in
  (params, sc, Aer.config_of_scenario sc)

(* The protocol runs on the packed plane; these tests reason at the
   variant level, so the helpers pack on the way in and unpack on the
   way out. *)
let unpack_outs cfg outs = List.map (fun (dst, m) -> (dst, Aer.unpack cfg m)) outs

let init_node cfg id =
  let ctx = Fba_sim.Ctx.make ~n ~id ~seed:77L in
  let st, outs = Aer.init cfg ctx in
  (st, unpack_outs cfg outs)

(* Find a correct, ignorant node to exercise. *)
let pick_ignorant sc =
  let rec loop i =
    if i >= n then Alcotest.fail "no ignorant node"
    else if Scenario.is_correct sc i && not (Scenario.knows_gstring sc i) then i
    else loop (i + 1)
  in
  loop 0

let push_quorum params ~s ~x = Sampler.quorum_sx (Params.sampler_i params) ~s ~x

let deliver cfg st ~src msg =
  unpack_outs cfg (Aer.on_receive cfg st ~round:1 ~src (Aer.pack cfg msg))

let test_push_requires_membership () =
  let params, sc, cfg = make_env () in
  let x = pick_ignorant sc in
  let st, _ = init_node cfg x in
  let g = sc.Scenario.gstring in
  let quorum = push_quorum params ~s:g ~x in
  (* A sender outside I(g, x) must be ignored even if it floods. *)
  let outsider =
    let rec loop i = if Array.exists (fun v -> v = i) quorum then loop (i + 1) else i in
    loop 0
  in
  for _ = 1 to 20 do
    ignore (deliver cfg st ~src:outsider (Msg.Push g))
  done;
  Alcotest.(check bool) "outsider pushes ignored" false (List.mem g (Aer.candidates st))

let test_push_majority_threshold () =
  let params, sc, cfg = make_env () in
  let x = pick_ignorant sc in
  let st, _ = init_node cfg x in
  let g = sc.Scenario.gstring in
  let quorum = push_quorum params ~s:g ~x in
  let maj = Params.majority_i params in
  (* One below the majority: not accepted. *)
  for i = 0 to maj - 2 do
    ignore (deliver cfg st ~src:quorum.(i) (Msg.Push g))
  done;
  Alcotest.(check bool) "below majority: not a candidate" false (List.mem g (Aer.candidates st));
  (* Duplicates from the same member must not count twice. *)
  for _ = 1 to 5 do
    ignore (deliver cfg st ~src:quorum.(0) (Msg.Push g))
  done;
  Alcotest.(check bool) "duplicates don't count" false (List.mem g (Aer.candidates st));
  (* The majority-th distinct member tips it, and the node immediately
     polls (Algorithm 1): d_j Polls + d_h Pulls. *)
  let outs = deliver cfg st ~src:quorum.(maj - 1) (Msg.Push g) in
  Alcotest.(check bool) "accepted at majority" true (List.mem g (Aer.candidates st));
  let polls = List.filter (fun (_, m) -> match m with Msg.Poll _ -> true | _ -> false) outs in
  let pulls = List.filter (fun (_, m) -> match m with Msg.Pull _ -> true | _ -> false) outs in
  Alcotest.(check int) "polls to J list" Params.(params.d_j) (List.length polls);
  Alcotest.(check int) "pulls to H quorum" Params.(params.d_h) (List.length pulls)

let test_pull_membership_and_dedup () =
  let params, sc, cfg = make_env () in
  (* Use a knowledgeable node as the proxy y; it believes gstring. *)
  let y =
    let rec loop i = if Scenario.knows_gstring sc i then i else loop (i + 1) in
    loop 0
  in
  let st, _ = init_node cfg y in
  let g = sc.Scenario.gstring in
  (* Find a requester x with y ∈ H(g, x). *)
  let h = Params.sampler_h params in
  let x =
    let rec loop i =
      if i >= n then Alcotest.fail "no requester found"
      else if Sampler.mem_sx h ~s:g ~x:i ~y && i <> y then i
      else loop (i + 1)
    in
    loop 0
  in
  let outs1 = deliver cfg st ~src:x (Msg.Pull { s = g; r = 9L }) in
  let fw1s = List.filter (fun (_, m) -> match m with Msg.Fw1 _ -> true | _ -> false) outs1 in
  Alcotest.(check int) "Fw1 fan-out = d_j * d_h"
    Params.(params.d_j * params.d_h)
    (List.length fw1s);
  (* Same (x, s) again — even with a fresh label — must be dropped
     (Algorithm 2's flooding note; label budget = max_poll_attempts = 1). *)
  let outs2 = deliver cfg st ~src:x (Msg.Pull { s = g; r = 10L }) in
  Alcotest.(check int) "pull dedup" 0 (List.length outs2);
  (* A requester x' with y ∉ H(g, x') is refused. *)
  let x' =
    let rec loop i =
      if i >= n then Alcotest.fail "no non-member requester"
      else if (not (Sampler.mem_sx h ~s:g ~x:i ~y)) && i <> y then i
      else loop (i + 1)
    in
    loop 0
  in
  let outs3 = deliver cfg st ~src:x' (Msg.Pull { s = g; r = 11L }) in
  Alcotest.(check int) "non-member pull refused" 0 (List.length outs3)

let test_answer_requires_poll_list_membership () =
  let params, sc, cfg = make_env () in
  let x = pick_ignorant sc in
  let st, outs0 = init_node cfg x in
  (* The node polled for its own initial junk candidate at init; its
     poll label is in the Poll messages it just sent. *)
  let r, poll_targets =
    match
      List.filter_map
        (fun (dst, m) -> match m with Msg.Poll { r; _ } -> Some (r, dst) | _ -> None)
        outs0
    with
    | (r, dst) :: rest -> (r, dst :: List.map snd rest)
    | [] -> Alcotest.fail "no initial poll"
  in
  ignore r;
  let junk = sc.Scenario.initial.(x) in
  (* Answers from outside J(x, r) never count: send d_j of them from
     non-members. *)
  let non_members =
    List.filter (fun i -> (not (List.mem i poll_targets)) && i <> x) (List.init n (fun i -> i))
  in
  List.iteri
    (fun i src -> if i < Params.(params.d_j) then ignore (deliver cfg st ~src (Msg.Answer junk)))
    non_members;
  Alcotest.(check (option string)) "outsider answers don't decide" None (Aer.decided st);
  (* A majority of genuine poll-list members does decide. *)
  let maj = Params.majority_j params in
  List.iteri
    (fun i src -> if i < maj then ignore (deliver cfg st ~src (Msg.Answer junk)))
    poll_targets;
  Alcotest.(check (option string)) "majority of J decides" (Some junk) (Aer.decided st)

let test_answer_dedup_per_sender () =
  let params, sc, cfg = make_env () in
  let x = pick_ignorant sc in
  let st, outs0 = init_node cfg x in
  let poll_targets =
    List.filter_map (fun (dst, m) -> match m with Msg.Poll _ -> Some dst | _ -> None) outs0
  in
  let junk = sc.Scenario.initial.(x) in
  (* One member answering many times must not reach the majority. *)
  (match poll_targets with
  | w :: _ ->
    for _ = 1 to 3 * Params.(params.d_j) do
      ignore (deliver cfg st ~src:w (Msg.Answer junk))
    done
  | [] -> Alcotest.fail "no poll targets");
  Alcotest.(check (option string)) "repeated answers don't decide" None (Aer.decided st)

let test_decision_is_monotone () =
  let params, sc, cfg = make_env () in
  ignore params;
  let x = pick_ignorant sc in
  let st, outs0 = init_node cfg x in
  let poll_targets =
    List.filter_map (fun (dst, m) -> match m with Msg.Poll _ -> Some dst | _ -> None) outs0
  in
  let junk = sc.Scenario.initial.(x) in
  List.iter (fun src -> ignore (deliver cfg st ~src (Msg.Answer junk))) poll_targets;
  let first = Aer.decided st in
  Alcotest.(check bool) "decided" true (first <> None);
  (* Further pushes and answers must not change the decision. *)
  let g = sc.Scenario.gstring in
  Array.iter
    (fun src -> ignore (deliver cfg st ~src (Msg.Push g)))
    (Sampler.quorum_sx (Params.sampler_i sc.Scenario.params) ~s:g ~x);
  Alcotest.(check bool) "decision unchanged" true (Aer.decided st = first)

let test_fw2_requires_h_membership () =
  let params, sc, cfg = make_env () in
  (* w receives Fw2s for a poll it was named in; senders must sit in
     H(s, w). Use a knowledgeable node as w and its own belief as s. *)
  let w =
    let rec loop i = if Scenario.knows_gstring sc i then i else loop (i + 1) in
    loop 0
  in
  let st, _ = init_node cfg w in
  let g = sc.Scenario.gstring in
  let j = Params.sampler_j params in
  (* Find (x, r) with w ∈ J(x, r). *)
  let x = ref (-1) and r = ref 0L in
  (try
     for cand_x = 0 to n - 1 do
       for cand_r = 1 to 50 do
         if !x < 0 && Sampler.mem_xr j ~x:cand_x ~r:(Int64.of_int cand_r) ~y:w && cand_x <> w
         then begin
           x := cand_x;
           r := Int64.of_int cand_r;
           raise Exit
         end
       done
     done
   with Exit -> ());
  Alcotest.(check bool) "found a poll naming w" true (!x >= 0);
  (* Register the poll. *)
  ignore (deliver cfg st ~src:!x (Msg.Poll { s = g; r = !r }));
  (* Fw2s from nodes outside H(g, w) must never produce an answer. *)
  let h = Params.sampler_h params in
  let outsiders =
    List.filter (fun i -> (not (Sampler.mem_sx h ~s:g ~x:w ~y:i)) && i <> w)
      (List.init n (fun i -> i))
  in
  let answers = ref 0 in
  List.iter
    (fun z ->
      List.iter
        (fun (_, m) -> match m with Msg.Answer _ -> incr answers | _ -> ())
        (deliver cfg st ~src:z (Msg.Fw2 { x = !x; s = g; r = !r })))
    outsiders;
  Alcotest.(check int) "no answers from outsider Fw2s" 0 !answers;
  (* A majority of genuine H(g, w) members does trigger the answer. *)
  let members = Sampler.quorum_sx h ~s:g ~x:w in
  List.iter
    (fun z ->
      List.iter
        (fun (dst, m) ->
          match m with
          | Msg.Answer s -> if dst = !x && s = g then incr answers
          | _ -> ())
        (deliver cfg st ~src:z (Msg.Fw2 { x = !x; s = g; r = !r })))
    (Array.to_list members);
  Alcotest.(check int) "answered exactly once" 1 !answers

let suites =
  [
    ( "core.aer.handlers",
      [
        Alcotest.test_case "push: membership filter" `Quick test_push_requires_membership;
        Alcotest.test_case "push: majority + dedup + poll trigger" `Quick
          test_push_majority_threshold;
        Alcotest.test_case "pull: membership + (x,s) dedup" `Quick test_pull_membership_and_dedup;
        Alcotest.test_case "answer: J-membership required" `Quick
          test_answer_requires_poll_list_membership;
        Alcotest.test_case "answer: per-sender dedup" `Quick test_answer_dedup_per_sender;
        Alcotest.test_case "decision monotone" `Quick test_decision_is_monotone;
        Alcotest.test_case "fw2: H-membership + single answer" `Quick
          test_fw2_requires_h_membership;
      ] );
  ]
