(* Property-based tests (qcheck) on the core data structures and
   protocol invariants. *)

open Fba_stdx

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seed_gen = QCheck2.Gen.map Int64.of_int (QCheck2.Gen.int_range 1 1_000_000)

(* --- Prng properties --- *)

let prop_prng_int_in_bounds =
  qtest "Prng.int stays in bounds"
    QCheck2.Gen.(pair seed_gen (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Prng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_sample_distinct =
  qtest "sample_without_replacement: distinct, in range, right size"
    QCheck2.Gen.(pair seed_gen (pair (int_range 1 300) (int_range 0 300)))
    (fun (seed, (n, k0)) ->
      let k = min k0 n in
      let rng = Prng.create seed in
      let s = Prng.sample_without_replacement rng ~n ~k in
      let sorted = Array.copy s in
      Array.sort compare sorted;
      let distinct = ref true in
      for i = 1 to k - 1 do
        if sorted.(i) = sorted.(i - 1) then distinct := false
      done;
      Array.length s = k && !distinct && Array.for_all (fun v -> v >= 0 && v < n) s)

let prop_bits_masked =
  qtest "Prng.bits masks unused high bits"
    QCheck2.Gen.(pair seed_gen (int_range 1 128))
    (fun (seed, k) ->
      let rng = Prng.create seed in
      let b = Prng.bits rng k in
      let nbytes = (k + 7) / 8 in
      let rem = k mod 8 in
      Bytes.length b = nbytes
      && (rem = 0 || Char.code (Bytes.get b (nbytes - 1)) land lnot ((1 lsl rem) - 1) = 0))

(* --- Bitset model-based --- *)

module ISet = Set.Make (Int)

let prop_bitset_model =
  qtest "Bitset agrees with a functional set model"
    QCheck2.Gen.(list_size (int_range 0 200) (pair bool (int_range 0 63)))
    (fun ops ->
      let bs = Bitset.create 64 in
      let model =
        List.fold_left
          (fun m (add, v) ->
            if add then begin
              Bitset.add bs v;
              ISet.add v m
            end
            else begin
              Bitset.remove bs v;
              ISet.remove v m
            end)
          ISet.empty ops
      in
      Bitset.cardinal bs = ISet.cardinal model
      && List.for_all (fun v -> Bitset.mem bs v = ISet.mem v model) (List.init 64 (fun i -> i))
      && Bitset.to_list bs = ISet.elements model)

let prop_bitset_ops_model =
  qtest "union/inter/diff agree with the model"
    QCheck2.Gen.(
      pair (list_size (int_range 0 40) (int_range 0 31)) (list_size (int_range 0 40) (int_range 0 31)))
    (fun (la, lb) ->
      let a = Bitset.of_list 32 la and b = Bitset.of_list 32 lb in
      let sa = ISet.of_list la and sb = ISet.of_list lb in
      Bitset.to_list (Bitset.union a b) = ISet.elements (ISet.union sa sb)
      && Bitset.to_list (Bitset.inter a b) = ISet.elements (ISet.inter sa sb)
      && Bitset.to_list (Bitset.diff a b) = ISet.elements (ISet.diff sa sb))

(* --- Stats --- *)

let prop_percentile_bounded =
  qtest "percentile stays within [min, max]"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 50) (float_range (-1000.) 1000.))
        (float_range 0.0 100.0))
    (fun (l, p) ->
      let a = Array.of_list l in
      let v = Stats.percentile a p in
      v >= Stats.minimum a -. 1e-9 && v <= Stats.maximum a +. 1e-9)

let prop_binomial_tail_monotone =
  qtest "binomial tail is non-increasing in the threshold"
    QCheck2.Gen.(pair (int_range 1 40) (float_range 0.01 0.99))
    (fun (trials, p) ->
      let ok = ref true in
      let prev = ref 1.1 in
      for k = 0 to trials + 1 do
        let v = Stats.binomial_tail ~trials ~p ~at_least:k in
        if v > !prev +. 1e-12 then ok := false;
        prev := v
      done;
      !ok)

(* --- Sampler invariants --- *)

let prop_sampler_quorum_invariants =
  qtest "quorums: exact size, distinct members, deterministic"
    QCheck2.Gen.(pair seed_gen (pair (int_range 0 1023) (small_string ~gen:printable)))
    (fun (seed, (x, s)) ->
      let sampler = Fba_samplers.Sampler.create ~seed ~n:1024 ~d:16 in
      let q1 = Fba_samplers.Sampler.quorum_sx sampler ~s ~x in
      let q2 = Fba_samplers.Sampler.quorum_sx sampler ~s ~x in
      let sorted = Array.copy q1 in
      Array.sort compare sorted;
      let distinct = ref true in
      for i = 1 to 15 do
        if sorted.(i) = sorted.(i - 1) then distinct := false
      done;
      Array.length q1 = 16 && q1 = q2 && !distinct
      && Array.for_all (fun y -> y >= 0 && y < 1024) q1)

let prop_sampler_membership =
  qtest "mem_xr agrees with quorum_xr"
    QCheck2.Gen.(pair seed_gen (pair (int_range 0 255) (int_range 0 255)))
    (fun (seed, (x, y)) ->
      let sampler = Fba_samplers.Sampler.create ~seed ~n:256 ~d:12 in
      let r = 12345L in
      let q = Fba_samplers.Sampler.quorum_xr sampler ~x ~r in
      Fba_samplers.Sampler.mem_xr sampler ~x ~r ~y = Array.exists (fun v -> v = y) q)

let prop_push_plan_inverse =
  qtest ~count:20 "push plan is the exact inverse of I"
    QCheck2.Gen.(pair seed_gen (small_string ~gen:printable))
    (fun (seed, s) ->
      let sampler = Fba_samplers.Sampler.create ~seed ~n:64 ~d:6 in
      let plan = Fba_samplers.Push_plan.create ~sampler () in
      let ok = ref true in
      for y = 0 to 63 do
        let targets = Fba_samplers.Push_plan.targets plan ~s ~y in
        Array.iter
          (fun x ->
            if not (Fba_samplers.Sampler.mem_sx sampler ~s ~x ~y) then ok := false)
          targets
      done;
      (* and every membership is covered *)
      for x = 0 to 63 do
        Array.iter
          (fun y ->
            let targets = Fba_samplers.Push_plan.targets plan ~s ~y in
            if not (Array.exists (fun v -> v = x) targets) then ok := false)
          (Fba_samplers.Sampler.quorum_sx sampler ~s ~x)
      done;
      !ok)

(* --- Histogram model-based --- *)

let prop_histogram_model =
  qtest "Histogram agrees with a list model"
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 20))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      let model v = List.length (List.filter (fun x -> x = v) values) in
      Histogram.total h = List.length values
      && List.for_all (fun v -> Histogram.count h v = model v) (List.init 21 (fun i -> i))
      && (values = [] || Histogram.max_value h = Some (List.fold_left max 0 values)))

let prop_histogram_percentile_monotone =
  qtest "Histogram percentiles are monotone in p"
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 30))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ] in
      let qs = List.map (Histogram.percentile h) ps in
      let rec mono = function a :: (b :: _ as rest) -> a <= b && mono rest | _ -> true in
      mono qs)

(* --- Committee relay assignment --- *)

let prop_relay_assignment_consistent =
  qtest ~count:25 "relay assignment is consistent both ways"
    QCheck2.Gen.(pair seed_gen (int_range 16 200))
    (fun (seed, n) ->
      let cfg =
        Fba_extensions.Committee_relay.make_config ~n ~seed ~initial:(fun _ -> "v")
          ~str_bits:8 ()
      in
      let committee = Fba_extensions.Committee_relay.committee cfg in
      Array.length committee >= 1 && Array.length committee <= n
      && Array.for_all (fun id -> id >= 0 && id < n) committee)

(* --- Protocol-level properties --- *)

let prop_majority_thresholds =
  qtest "majority threshold is a strict majority"
    QCheck2.Gen.(int_range 1 100)
    (fun k ->
      let m = Fba_samplers.Sampler.majority_threshold k in
      (2 * m > k) && (2 * (m - 1) <= k))

let prop_aer_safety_random_small =
  (* Randomized mini-executions: whatever the seed, no correct node may
     decide anything but gstring under the flooding adversary. *)
  qtest ~count:6 "AER safety on random small instances"
    seed_gen
    (fun seed ->
      let n = 48 in
      let params =
        Fba_core.Params.make_for ~n ~seed ~byzantine_fraction:0.1 ~knowledgeable_fraction:0.85 ()
      in
      let rng = Prng.create (Int64.add seed 7L) in
      let sc =
        Fba_core.Scenario.make ~junk:(Fba_core.Scenario.Junk_shared 2) ~params ~rng
          ~byzantine_fraction:0.1 ~knowledgeable_fraction:0.85 ()
      in
      let cfg = Fba_core.Aer.config_of_scenario sc in
      let module E = Fba_sim.Sync_engine.Make (Fba_core.Aer) in
      let adversary =
        Fba_adversary.Aer_attacks.(compose sc [ push_flood sc; wrong_answer sc ])
      in
      let res =
        E.run ~config:cfg ~n ~seed:params.Fba_core.Params.seed ~adversary ~mode:`Rushing
          ~max_rounds:100 ()
      in
      let safe = ref true in
      Array.iteri
        (fun i o ->
          if Fba_core.Scenario.is_correct sc i then
            match o with
            | Some v when v <> sc.Fba_core.Scenario.gstring -> safe := false
            | _ -> ())
        res.Fba_sim.Sync_engine.outputs;
      !safe)

let prop_phase_king_agreement_random =
  qtest ~count:15 "phase king agreement on random inputs"
    QCheck2.Gen.(pair seed_gen (int_range 4 16))
    (fun (seed, m) ->
      let members = Array.init m (fun i -> i) in
      let rng = Prng.create seed in
      let initial = Array.init m (fun _ -> if Prng.bool rng then "a" else "b") in
      let machines =
        Array.to_list
          (Array.map
             (fun me -> (me, Fba_aeba.Phase_king.create ~members ~me ~initial:initial.(me)))
             members)
      in
      let rounds = Fba_aeba.Phase_king.rounds_needed (snd (List.hd machines)) in
      let mailbox = ref [] in
      for round = 0 to rounds do
        let deliveries = !mailbox in
        mailbox := [];
        List.iter
          (fun (dst, src, msg) ->
            match List.assoc_opt dst machines with
            | Some machine -> Fba_aeba.Phase_king.on_receive machine ~round ~src msg
            | None -> ())
          deliveries;
        List.iter
          (fun (me, machine) ->
            List.iter
              (fun (dst, msg) -> mailbox := (dst, me, msg) :: !mailbox)
              (Fba_aeba.Phase_king.on_round machine ~round))
          machines
      done;
      match machines with
      | [] -> true
      | (_, first) :: rest ->
        let v = Fba_aeba.Phase_king.current first in
        List.for_all (fun (_, m) -> Fba_aeba.Phase_king.current m = v) rest)

let prop_scenario_invariants =
  qtest ~count:30 "Scenario.make invariants under random fractions"
    QCheck2.Gen.(triple seed_gen (float_range 0.0 0.32) (float_range 0.55 0.95))
    (fun (seed, byz, kn) ->
      let n = 96 in
      QCheck2.assume (byz +. kn <= 0.99);
      let params = Fba_core.Params.make ~n ~seed () in
      let rng = Prng.create seed in
      let sc =
        Fba_core.Scenario.make ~params ~rng ~byzantine_fraction:byz
          ~knowledgeable_fraction:kn ()
      in
      let corrupted = sc.Fba_core.Scenario.corrupted in
      let knowledgeable = sc.Fba_core.Scenario.knowledgeable in
      (* counts, disjointness, assignment consistency *)
      Bitset.cardinal corrupted = int_of_float (byz *. float_of_int n)
      && Bitset.cardinal knowledgeable = int_of_float (ceil (kn *. float_of_int n))
      && Bitset.cardinal (Bitset.inter corrupted knowledgeable) = 0
      && List.for_all
           (fun i -> sc.Fba_core.Scenario.initial.(i) = sc.Fba_core.Scenario.gstring)
           (Bitset.to_list knowledgeable)
      && Array.length sc.Fba_core.Scenario.initial = n)

let prop_committee_tree_shapes =
  qtest ~count:30 "Committee_tree structural invariants under random shapes"
    QCheck2.Gen.(triple seed_gen (int_range 2 300) (pair (int_range 1 40) (int_range 1 40)))
    (fun (seed, n, (group_size, committee_size)) ->
      let t = Fba_aeba.Committee_tree.build ~n ~seed ~group_size ~committee_size in
      let g = Fba_aeba.Committee_tree.group_count t in
      (* groups are a power of two and partition [0, n) *)
      g = 1 lsl Fba_aeba.Committee_tree.levels t
      && (let covered = Array.make n 0 in
          for k = 0 to g - 1 do
            Array.iter (fun id -> covered.(id) <- covered.(id) + 1)
              (Fba_aeba.Committee_tree.group_members t k)
          done;
          Array.for_all (fun c -> c = 1) covered)
      && (* every committee has the clamped size with distinct in-range members *)
      (let m = Fba_aeba.Committee_tree.committee_size t in
       let ok = ref true in
       for level = 0 to Fba_aeba.Committee_tree.levels t do
         for index = 0 to (1 lsl level) - 1 do
           let c = Fba_aeba.Committee_tree.committee t ~level ~index in
           if Array.length c <> m then ok := false;
           Array.iter (fun id -> if id < 0 || id >= n then ok := false) c
         done
       done;
       !ok))

let prop_cache_equals_sampler =
  qtest ~count:50 "Cache returns exactly the sampler's quorums"
    QCheck2.Gen.(triple seed_gen (int_range 0 255) (small_string ~gen:printable))
    (fun (seed, x, s) ->
      let sampler = Fba_samplers.Sampler.create ~seed ~n:256 ~d:10 in
      let cache = Fba_samplers.Cache.create sampler in
      Fba_samplers.Cache.quorum_sx cache ~s ~x = Fba_samplers.Sampler.quorum_sx sampler ~s ~x
      && Fba_samplers.Cache.quorum_xr cache ~x ~r:seed
         = Fba_samplers.Sampler.quorum_xr sampler ~x ~r:seed)

let suites =
  [
    ( "props.prng",
      [ prop_prng_int_in_bounds; prop_sample_distinct; prop_bits_masked ] );
    ("props.bitset", [ prop_bitset_model; prop_bitset_ops_model ]);
    ("props.stats", [ prop_percentile_bounded; prop_binomial_tail_monotone ]);
    ( "props.samplers",
      [ prop_sampler_quorum_invariants; prop_sampler_membership; prop_push_plan_inverse ] );
    ("props.histogram", [ prop_histogram_model; prop_histogram_percentile_monotone ]);
    ("props.extensions", [ prop_relay_assignment_consistent ]);
    ( "props.structures",
      [ prop_scenario_invariants; prop_committee_tree_shapes; prop_cache_equals_sampler ] );
    ( "props.protocol",
      [ prop_majority_thresholds; prop_aer_safety_random_small; prop_phase_king_agreement_random ] );
  ]
