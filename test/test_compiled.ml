(* Scenario compiler (Fba_core.Compiled + Int_table + the interned-id
   cache extensions).

   The compiled plane must be invisible: lowering the scenario into
   flat dispatch tables may change how lookups are answered, never what
   they answer. Evidence, bottom up:

   - Int_table vs a Hashtbl model: randomized op sequences agree on
     every returned value (the table underlies all compiled-path
     per-node sets and counters);
   - membership oracles: [Cache.pos_sid]/[pos_rid] agree with
     [mem_sid]/[mem_rid] and index the cached quorum correctly;
   - CSR fan-out vs Push_plan: the compiled push edges are exactly
     [Push_plan.targets] for every correct node, and the rows the
     build donates to the push cache are exactly the sampler's;
   - wire accounting: [Compiled.bits] equals [Packed.bits], including
     for strings interned after compilation;
   - trace identity: full runs with compilation on and off are
     bit-identical (metrics fingerprint, outputs, JSONL event stream)
     on adversarial scenarios, sync and async — the determinism goldens
     (test_determinism) then pin the shared behaviour to the historical
     wire trace. *)

module Attacks = Fba_adversary.Aer_attacks
module Runner = Fba_harness.Runner
module Metrics = Fba_sim.Metrics
module Cache = Fba_samplers.Cache
module Sampler = Fba_samplers.Sampler
module Push_plan = Fba_samplers.Push_plan
open Fba_core
open Fba_stdx
module Packed = Msg.Packed

(* --- Int_table vs Hashtbl model --- *)

type iop = Set of int * int | Add of int | Incr of int | Add_bit of int * int | Mem of int | Clear

let gen_iop =
  let open QCheck2.Gen in
  (* Keys from a small range so collisions, growth and re-touching are
     all exercised. *)
  let k = int_range 0 200 in
  oneof
    [
      map2 (fun k v -> Set (k, v)) k (int_range 0 1000);
      map (fun k -> Add k) k;
      map (fun k -> Incr k) k;
      map2 (fun k b -> Add_bit (k, b)) k (int_range 0 61);
      map (fun k -> Mem k) k;
      return Clear;
    ]

let prop_int_table =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"Int_table agrees with a Hashtbl model"
       QCheck2.Gen.(list_size (int_range 0 400) gen_iop)
       (fun ops ->
         let t = Int_table.create ~capacity:2 () in
         let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
         let get_m k = match Hashtbl.find_opt model k with Some v -> v | None -> min_int in
         List.for_all
           (fun op ->
             let ok =
               match op with
               | Set (k, v) ->
                 Int_table.set t k v;
                 Hashtbl.replace model k v;
                 true
               | Add k ->
                 let fresh = Int_table.add t k in
                 let fresh' = not (Hashtbl.mem model k) in
                 if fresh' then Hashtbl.replace model k 0;
                 fresh = fresh'
               | Incr k ->
                 let v = Int_table.incr t k in
                 let v' = (match Hashtbl.find_opt model k with Some v -> v | None -> 0) + 1 in
                 Hashtbl.replace model k v';
                 v = v'
               | Add_bit (k, b) ->
                 let fresh = Int_table.add_bit t k ~bit:b in
                 let prev = match Hashtbl.find_opt model k with Some v -> v | None -> 0 in
                 Hashtbl.replace model k (prev lor (1 lsl b));
                 fresh = (prev land (1 lsl b) = 0)
               | Mem k -> Int_table.mem t k = Hashtbl.mem model k
               | Clear ->
                 Int_table.clear t;
                 Hashtbl.reset model;
                 true
             in
             ok
             && Int_table.length t = Hashtbl.length model
             && (match op with
                | Set (k, _) | Add k | Incr k | Add_bit (k, _) | Mem k ->
                  Int_table.get_or t k ~default:min_int = get_m k
                | Clear -> true))
           ops))

let test_int_table_negative () =
  let t = Int_table.create () in
  let rejects name f =
    match f () with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  rejects "set" (fun () -> Int_table.set t (-1) 0);
  rejects "add" (fun () -> ignore (Int_table.add t (-3)));
  rejects "incr" (fun () -> ignore (Int_table.incr t (-1)));
  rejects "add_bit" (fun () -> ignore (Int_table.add_bit t (-1) ~bit:0))

(* --- Shared scenario fixtures --- *)

let scenario ~n ~seed = Runner.scenario_of_setup Runner.default_setup ~n ~seed

(* Build against a local push cache (what Aer.compile does with the
   config's qi), keeping the donated rows inspectable. *)
let compiled_of sc =
  let find s = Intern.find sc.Scenario.intern s in
  let qi = Cache.create ~find (Params.sampler_i sc.Scenario.params) in
  let cp = Compiled.build ~scenario:sc ~qi () in
  (qi, cp)

(* --- Position oracles --- *)

let test_pos_oracles () =
  let sc = scenario ~n:64 ~seed:11L in
  let params = sc.Scenario.params in
  let intern = sc.Scenario.intern in
  let find s = Intern.find intern s in
  let qh = Cache.create ~find (Params.sampler_h params) in
  let qj = Cache.create ~find (Params.sampler_j params) in
  let n = params.Params.n in
  for x = 0 to n - 1 do
    let s = sc.Scenario.initial.(x) in
    let sid = Intern.find intern s in
    Alcotest.(check bool) "initials are interned" true (sid >= 0);
    let q = Cache.quorum_sid qh ~sid ~s ~x in
    for y = 0 to n - 1 do
      let pos = Cache.pos_sid qh ~sid ~s ~x ~y in
      let mem = Cache.mem_sid qh ~sid ~s ~x ~y in
      Alcotest.(check bool) "pos_sid >= 0 iff mem_sid" mem (pos >= 0);
      if pos >= 0 then Alcotest.(check int) "pos_sid indexes the quorum" y q.(pos)
    done
  done;
  let r = 0xFACEL in
  let rid = Intern.intern_label intern r in
  let x = 3 in
  let q = Cache.quorum_rid qj ~x ~rid ~r in
  for y = 0 to n - 1 do
    let pos = Cache.pos_rid qj ~x ~rid ~r ~y in
    let mem = Cache.mem_rid qj ~x ~rid ~r ~y in
    Alcotest.(check bool) "pos_rid >= 0 iff mem_rid" mem (pos >= 0);
    if pos >= 0 then Alcotest.(check int) "pos_rid indexes the quorum" y q.(pos)
  done

(* --- CSR fan-out vs the Push_plan oracle --- *)

let test_csr_matches_push_plan () =
  List.iter
    (fun (n, seed) ->
      let sc = scenario ~n ~seed in
      let _qi, cp = compiled_of sc in
      (* Independent oracle: a fresh plan over a fresh sampler-equal
         cache, no interner routing. *)
      let plan = Push_plan.create ~sampler:(Params.sampler_i sc.Scenario.params) () in
      Alcotest.(check int) "compiled n" n (Compiled.n cp);
      for y = 0 to n - 1 do
        if Scenario.is_correct sc y then
          Alcotest.(check (array int))
            (Printf.sprintf "targets of correct node %d" y)
            (Push_plan.targets plan ~s:sc.Scenario.initial.(y) ~y)
            (Compiled.push_targets cp ~y)
        else
          Alcotest.(check (array int))
            (Printf.sprintf "corrupted node %d has no compiled edges" y)
            [||] (Compiled.push_targets cp ~y)
      done)
    [ (48, 5L); (96, 23L) ]

let test_seeded_rows_match_sampler () =
  let sc = scenario ~n:64 ~seed:3L in
  let qi, _cp = compiled_of sc in
  let si = Params.sampler_i sc.Scenario.params in
  let intern = sc.Scenario.intern in
  for x = 0 to sc.Scenario.params.Params.n - 1 do
    Array.iter
      (fun s ->
        let sid = Intern.find intern s in
        Alcotest.(check (array int))
          (Printf.sprintf "qi row (%s, %d)" s x)
          (Sampler.quorum_sx si ~s ~x)
          (Cache.quorum_sid qi ~sid ~s ~x))
      sc.Scenario.initial
  done

(* --- Wire accounting --- *)

let test_bits_agree () =
  let sc = scenario ~n:128 ~seed:9L in
  let params = sc.Scenario.params in
  let intern = sc.Scenario.intern in
  let lt = sc.Scenario.layout in
  let _qi, cp = compiled_of sc in
  let check_msg m =
    let p = Packed.pack lt intern m in
    Alcotest.(check int)
      (Format.asprintf "bits of %a" Msg.pp m)
      (Packed.bits lt params intern p) (Compiled.bits cp p)
  in
  let s0 = sc.Scenario.gstring and s1 = sc.Scenario.initial.(1) in
  List.iter check_msg
    [
      Msg.Push s0;
      Msg.Answer s1;
      Msg.Poll { s = s0; r = 77L };
      Msg.Pull { s = s1; r = -1L };
      Msg.Fw1 { x = 5; s = s0; r = 3L; w = 100 };
      Msg.Fw2 { x = 127; s = s1; r = 0L };
    ];
  (* A string the compiler never saw (interned after the build, as an
     adversary's junk would be) takes the slow path, once. *)
  let late = "late-junk-string-after-compile" in
  ignore (Intern.intern intern late);
  check_msg (Msg.Push late);
  check_msg (Msg.Push late);
  match Compiled.bits cp 0 with
  | (_ : int) -> Alcotest.fail "invalid tag accepted"
  | exception Invalid_argument _ -> ()

(* --- Trace identity: compile on vs off --- *)

module E = Fba_sim.Sync_engine.Make (Aer)
module A = Fba_sim.Async_engine.Make (Aer)

let fingerprint m =
  let h = ref (Hash64.init 0x600DL) in
  let n = Metrics.n m in
  for i = 0 to n - 1 do
    h := Hash64.add_int !h (Metrics.sent_messages_of m i);
    h := Hash64.add_int !h (Metrics.sent_bits_of m i);
    h := Hash64.add_int !h (Metrics.recv_messages_of m i);
    h := Hash64.add_int !h (Metrics.recv_bits_of m i);
    h := Hash64.add_int !h (match Metrics.decision_round m i with None -> -1 | Some r -> r)
  done;
  Hash64.finish (Hash64.add_int !h (Metrics.rounds m))

let quiet_limit_of sc =
  if Params.(sc.Scenario.params.max_poll_attempts) > 1 then
    Params.(sc.Scenario.params.repoll_timeout) + 2
  else 3

let jsonl_sink () =
  let buf = Buffer.create 4096 in
  let sink = Fba_sim.Events.create () in
  Fba_sim.Events.attach sink (Fba_sim.Events.Jsonl.consumer buf);
  (sink, buf)

let arb_run =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%Ld" n seed)
    QCheck.Gen.(pair (int_range 24 64) (map Int64.of_int (int_range 1 1000)))

let sync_run ~compile (n, seed) =
  let sc = scenario ~n ~seed in
  let events, buf = jsonl_sink () in
  let cfg = Aer.config_of_scenario ~events ~compile sc in
  let res =
    E.run ~quiet_limit:(quiet_limit_of sc) ~events ~config:cfg ~n ~seed
      ~adversary:(Attacks.cornering sc) ~mode:`Rushing ~max_rounds:300 ()
  in
  (res, buf)

let prop_sync_compile_identical =
  QCheck.Test.make ~name:"sync: compiled and dynamic runs are trace-identical" ~count:8 arb_run
    (fun run ->
      let on, on_buf = sync_run ~compile:true run in
      let off, off_buf = sync_run ~compile:false run in
      Int64.equal (fingerprint on.Fba_sim.Sync_engine.metrics)
        (fingerprint off.Fba_sim.Sync_engine.metrics)
      && on.Fba_sim.Sync_engine.outputs = off.Fba_sim.Sync_engine.outputs
      && Buffer.contents on_buf = Buffer.contents off_buf)

let async_run ~compile (n, seed) =
  let sc = scenario ~n ~seed in
  let events, buf = jsonl_sink () in
  let cfg = Aer.config_of_scenario ~events ~compile sc in
  let res =
    A.run ~events ~config:cfg ~n ~seed ~adversary:(Attacks.async_cornering sc) ~max_time:4000 ()
  in
  (res, buf)

let prop_async_compile_identical =
  QCheck.Test.make ~name:"async: compiled and dynamic runs are trace-identical" ~count:5 arb_run
    (fun run ->
      let on, on_buf = async_run ~compile:true run in
      let off, off_buf = async_run ~compile:false run in
      Int64.equal (fingerprint on.Fba_sim.Async_engine.metrics)
        (fingerprint off.Fba_sim.Async_engine.metrics)
      && on.Fba_sim.Async_engine.outputs = off.Fba_sim.Async_engine.outputs
      && Buffer.contents on_buf = Buffer.contents off_buf)

let suites =
  [
    ( "compiled.int_table",
      [ prop_int_table; Alcotest.test_case "negative keys rejected" `Quick test_int_table_negative ]
    );
    ( "compiled.tables",
      [
        Alcotest.test_case "pos_sid/pos_rid agree with the mem oracles" `Quick test_pos_oracles;
        Alcotest.test_case "CSR fan-out equals Push_plan" `Quick test_csr_matches_push_plan;
        Alcotest.test_case "donated qi rows equal the sampler" `Quick test_seeded_rows_match_sampler;
        Alcotest.test_case "Compiled.bits equals Packed.bits" `Quick test_bits_agree;
      ] );
    ( "compiled.parity",
      List.map QCheck_alcotest.to_alcotest
        [ prop_sync_compile_identical; prop_async_compile_identical ] );
  ]
