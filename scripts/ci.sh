#!/bin/sh
# Build everything and run the test suite — the gate `bench/main.exe
# perf --json` insists on before recording performance numbers.
set -e
cd "$(dirname "$0")/.."
dune build @all
dune runtest

# Trace pipeline smoke test: the fba trace subcommand must succeed on a
# small scenario (its exit status already enforces the per-phase bits
# == Metrics.total_bits_all cross-check) and its JSONL export must be
# one parseable JSON object per line with the required keys.
jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT
dune exec bin/fba.exe -- trace -n 48 --attack flood --jsonl "$jsonl" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$jsonl" <<'EOF'
import json, sys
evs = {"round_start", "phase", "send", "inject", "deliver", "drop", "decide"}
lines = 0
with open(sys.argv[1]) as f:
    for i, line in enumerate(f, 1):
        try:
            o = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"line {i}: invalid JSON: {e}")
        if not isinstance(o, dict):
            sys.exit(f"line {i}: not a JSON object")
        if "ev" not in o or "round" not in o:
            sys.exit(f"line {i}: missing required key (ev/round): {o}")
        if o["ev"] not in evs:
            sys.exit(f"line {i}: unknown ev {o['ev']!r}")
        lines += 1
if lines == 0:
    sys.exit("JSONL trace is empty")
print(f"trace JSONL ok: {lines} events")
EOF
else
  echo "python3 not found; skipping JSONL validation" >&2
fi

# Sweep-executor smoke test: the experiment sweeps must produce
# byte-identical reports whether the grid runs sequentially or sharded
# across worker domains. Uses the two cheapest experiments.
seq_out="$(mktemp)"
par_out="$(mktemp)"
trap 'rm -f "$jsonl" "$seq_out" "$par_out"' EXIT
dune exec bench/main.exe -- samplers fig1a --jobs 1 > "$seq_out"
dune exec bench/main.exe -- samplers fig1a --jobs 2 > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "sweep jobs smoke ok: --jobs 2 output identical to --jobs 1"
else
  echo "sweep smoke FAILED: --jobs 2 output differs from --jobs 1" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi
