#!/bin/sh
# Build everything and run the test suite — the gate `bench/main.exe
# perf --json` insists on before recording performance numbers.
set -e
cd "$(dirname "$0")/.."
dune build @all
dune runtest
