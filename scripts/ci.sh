#!/bin/sh
# Build everything and run the test suite — the gate `bench/main.exe
# perf --json` insists on before recording performance numbers.
set -e
cd "$(dirname "$0")/.."
dune build @all
dune runtest

# Trace pipeline smoke test: the fba trace subcommand must succeed on a
# small scenario (its exit status already enforces the per-phase bits
# == Metrics.total_bits_all cross-check) and its JSONL export must be
# one parseable JSON object per line with the required keys.
jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT
dune exec bin/fba.exe -- trace -n 48 --attack flood --jsonl "$jsonl" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$jsonl" <<'EOF'
import json, sys
evs = {"round_start", "phase", "send", "inject", "deliver", "drop", "decide"}
lines = 0
with open(sys.argv[1]) as f:
    for i, line in enumerate(f, 1):
        try:
            o = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"line {i}: invalid JSON: {e}")
        if not isinstance(o, dict):
            sys.exit(f"line {i}: not a JSON object")
        if "ev" not in o or "round" not in o:
            sys.exit(f"line {i}: missing required key (ev/round): {o}")
        if o["ev"] not in evs:
            sys.exit(f"line {i}: unknown ev {o['ev']!r}")
        lines += 1
if lines == 0:
    sys.exit("JSONL trace is empty")
print(f"trace JSONL ok: {lines} events")
EOF
else
  echo "python3 not found; skipping JSONL validation" >&2
fi

# Sweep-executor smoke test: the experiment sweeps must produce
# byte-identical reports whether the grid runs sequentially or sharded
# across worker domains. Uses the two cheapest experiments.
seq_out="$(mktemp)"
par_out="$(mktemp)"
trap 'rm -f "$jsonl" "$seq_out" "$par_out"' EXIT
dune exec bench/main.exe -- samplers fig1a --jobs 1 > "$seq_out"
dune exec bench/main.exe -- samplers fig1a --jobs 2 > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "sweep jobs smoke ok: --jobs 2 output identical to --jobs 1"
else
  echo "sweep smoke FAILED: --jobs 2 output differs from --jobs 1" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi

# Robustness smoke test: the off-model network-condition sweep, shrunk
# to one drop rate and one partition length (FBA_ROBUSTNESS_SMOKE),
# must also be byte-identical whether sequential or sharded — the Net
# layer's per-run PRNG state must not leak across cells or domains.
FBA_ROBUSTNESS_SMOKE=1 dune exec bench/main.exe -- robustness --jobs 1 > "$seq_out"
FBA_ROBUSTNESS_SMOKE=1 dune exec bench/main.exe -- robustness --jobs 2 > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "robustness jobs smoke ok: --jobs 2 output identical to --jobs 1"
else
  echo "robustness smoke FAILED: --jobs 2 output differs from --jobs 1" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi

# Compiled-dispatch parity smoke: the scenario compiler must be
# behaviour-invisible end to end. One experiment run with the compile
# step disabled (FBA_NO_COMPILE=1) must be byte-identical to the
# default compiled run; the full parity evidence is the
# compiled.parity qcheck suite plus the determinism goldens.
dune exec bench/main.exe -- fig1a --jobs 2 > "$seq_out"
FBA_NO_COMPILE=1 dune exec bench/main.exe -- fig1a --jobs 2 > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "compile parity smoke ok: FBA_NO_COMPILE=1 output identical"
else
  echo "compile parity smoke FAILED: compiled run differs from dynamic run" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi

# Perf gate: the cornering perf target must stay close to the most
# recent recorded BENCH_<rev>.json baseline. Two checks share one
# measurement (perf-target --record writes it as a one-target
# BENCH-format file):
#   - allocation within +1% (deterministic for this workload, so a
#     tight relative bound is safe where a wall-time bound would flake);
#   - wall time within +FBA_PERF_TIME_TOL percent (default 10 — a
#     generous bound that still catches order-of-magnitude slips),
#     via `bench perf --compare --metric time`.
baseline=""
for rev in $(git log --format=%h 2>/dev/null); do
  if [ -f "BENCH_$rev.json" ]; then baseline="BENCH_$rev.json"; break; fi
done
if [ -n "$baseline" ]; then
  current="$(mktemp)"
  trap 'rm -f "$jsonl" "$seq_out" "$par_out" "$current"' EXIT
  words="$(dune exec bench/main.exe -- perf-target fig1a/aer-cornering-n128 --record "$current")"
  dune exec bench/main.exe -- perf --compare "$baseline" "$current" \
    --tol "${FBA_PERF_TIME_TOL:-10}" --metric time
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$baseline" "$words" <<'EOF'
import json, sys
baseline_path, words = sys.argv[1], float(sys.argv[2])
with open(baseline_path) as f:
    doc = json.load(f)
target = "fig1a/aer-cornering-n128"
base = next((t["allocated_words_per_run"] for t in doc["targets"] if t["name"] == target), None)
if base is None:
    sys.exit(f"{baseline_path} has no {target} entry")
ratio = words / base
if ratio > 1.01:
    sys.exit(
        f"allocation gate FAILED: {target} now allocates {words:.0f} words/run, "
        f"{(ratio - 1) * 100:.2f}% above the {baseline_path} baseline ({base:.0f})"
    )
print(f"allocation gate ok: {target} at {words:.0f} words/run, "
      f"{(ratio - 1) * 100:+.2f}% vs {baseline_path}")
EOF
  else
    echo "python3 not found; skipping allocation gate" >&2
  fi
else
  echo "no recorded BENCH_<rev>.json baseline; skipping perf gates" >&2
fi
