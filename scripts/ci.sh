#!/bin/sh
# Build everything and run the test suite — the gate `bench/main.exe
# perf --json` insists on before recording performance numbers.
set -e
cd "$(dirname "$0")/.."
dune build @all
dune runtest

# Trace pipeline smoke test: the fba trace subcommand must succeed on a
# small scenario (its exit status already enforces the per-phase bits
# == Metrics.total_bits_all cross-check) and its JSONL export must be
# one parseable JSON object per line with the required keys.
jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT
dune exec bin/fba.exe -- trace -n 48 --attack flood --jsonl "$jsonl" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$jsonl" <<'EOF'
import json, sys
evs = {"round_start", "phase", "send", "inject", "deliver", "drop", "decide"}
lines = 0
with open(sys.argv[1]) as f:
    for i, line in enumerate(f, 1):
        try:
            o = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"line {i}: invalid JSON: {e}")
        if not isinstance(o, dict):
            sys.exit(f"line {i}: not a JSON object")
        if "ev" not in o or "round" not in o:
            sys.exit(f"line {i}: missing required key (ev/round): {o}")
        if o["ev"] not in evs:
            sys.exit(f"line {i}: unknown ev {o['ev']!r}")
        lines += 1
if lines == 0:
    sys.exit("JSONL trace is empty")
print(f"trace JSONL ok: {lines} events")
EOF
else
  echo "python3 not found; skipping JSONL validation" >&2
fi

# Profiler smoke test: `fba profile` must pass its own accounting
# cross-check (the per-round x per-tag wall/alloc cells must sum
# exactly to the run totals; it exits non-zero otherwise), and its
# --json Telemetry document must parse, be pure ASCII, and carry the
# versioned envelope.
dune exec bin/fba.exe -- profile -n 48 --attack cornering > /dev/null
echo "profile accounting smoke ok"
telemetry="$(mktemp)"
trap 'rm -f "$jsonl" "$telemetry"' EXIT
dune exec bin/fba.exe -- profile -n 48 --attack cornering --json > "$telemetry"
if command -v python3 > /dev/null 2>&1; then
  python3 - "$telemetry" <<'EOF'
import json, sys
raw = open(sys.argv[1], "rb").read()
if any(b >= 128 for b in raw):
    sys.exit("telemetry document contains non-ASCII bytes")
doc = json.loads(raw)
if doc.get("telemetry_version") != 1:
    sys.exit(f"unexpected telemetry_version: {doc.get('telemetry_version')!r}")
for key in ("counters", "gauges", "dists", "phases", "prof"):
    if key not in doc:
        sys.exit(f"telemetry document missing {key!r}")
if doc["prof"] is None:
    sys.exit("profiled run exported prof: null")
cells = sum(s["wall_ns"] for s in doc["prof"]["slots"])
if cells != doc["prof"]["total_wall_ns"]:
    sys.exit("prof slot wall times do not sum to total_wall_ns")
print(f"telemetry JSON ok: {len(doc['counters'])} counters, "
      f"{len(doc['prof']['slots'])} prof slots")
EOF
else
  echo "python3 not found; skipping telemetry validation" >&2
fi

# Bench-history smoke test: the trajectory tool must render the
# checked-in BENCH_<rev>.json files (>= 1 revision) and emit valid,
# git-date-ordered JSON.
if ls BENCH_*.json > /dev/null 2>&1; then
  dune exec bench/main.exe -- history > /dev/null
  if command -v python3 > /dev/null 2>&1; then
    history="$(mktemp)"
    trap 'rm -f "$jsonl" "$telemetry" "$history"' EXIT
    dune exec bench/main.exe -- history --json > "$history"
    python3 - "$history" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc.get("bench_history_version") != 1:
    sys.exit("unexpected bench_history_version")
revs = doc["revs"]
if not revs:
    sys.exit("bench history found no revisions")
times = [r["commit_time"] for r in revs if r["commit_time"] is not None]
if times != sorted(times):
    sys.exit("bench history revisions not in commit-date order")
print(f"bench history ok: {len(revs)} revisions, {len(doc['targets'])} targets")
EOF
  fi
else
  echo "no BENCH_*.json files; skipping bench history smoke" >&2
fi

# Sweep-executor smoke test: the experiment sweeps must produce
# byte-identical reports whether the grid runs sequentially or sharded
# across worker domains. Uses the two cheapest experiments.
seq_out="$(mktemp)"
par_out="$(mktemp)"
trap 'rm -f "$jsonl" "$telemetry" "$history" "$seq_out" "$par_out"' EXIT
dune exec bench/main.exe -- samplers fig1a --jobs 1 > "$seq_out"
dune exec bench/main.exe -- samplers fig1a --jobs 2 > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "sweep jobs smoke ok: --jobs 2 output identical to --jobs 1"
else
  echo "sweep smoke FAILED: --jobs 2 output differs from --jobs 1" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi

# Robustness smoke test: the off-model network-condition sweep, shrunk
# to one drop rate and one partition length (FBA_ROBUSTNESS_SMOKE),
# must also be byte-identical whether sequential or sharded — the Net
# layer's per-run PRNG state must not leak across cells or domains.
FBA_ROBUSTNESS_SMOKE=1 dune exec bench/main.exe -- robustness --jobs 1 > "$seq_out"
FBA_ROBUSTNESS_SMOKE=1 dune exec bench/main.exe -- robustness --jobs 2 > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "robustness jobs smoke ok: --jobs 2 output identical to --jobs 1"
else
  echo "robustness smoke FAILED: --jobs 2 output differs from --jobs 1" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi

# Compiled-dispatch parity smoke: the scenario compiler must be
# behaviour-invisible end to end. One experiment run with the compile
# step disabled (FBA_NO_COMPILE=1) must be byte-identical to the
# default compiled run; the full parity evidence is the
# compiled.parity qcheck suite plus the determinism goldens.
dune exec bench/main.exe -- fig1a --jobs 2 > "$seq_out"
FBA_NO_COMPILE=1 dune exec bench/main.exe -- fig1a --jobs 2 > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "compile parity smoke ok: FBA_NO_COMPILE=1 output identical"
else
  echo "compile parity smoke FAILED: compiled run differs from dynamic run" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi

# Wide-layout parity smoke: the packed field widths are representation,
# not behaviour. Forcing every Auto-layout scenario onto the wide
# layout (FBA_WIDE=1) must leave an experiment's report byte-identical
# to the default narrow fast path; the full evidence is the
# packed.engine narrow-vs-wide trace-identity property.
dune exec bench/main.exe -- fig1a --jobs 2 > "$seq_out"
FBA_WIDE=1 dune exec bench/main.exe -- fig1a --jobs 2 > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "wide layout parity smoke ok: FBA_WIDE=1 output identical"
else
  echo "wide layout parity smoke FAILED: wide-layout run differs from narrow run" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi

# Streamed-delivery parity smoke: the chunked streamed mailbox/calendar
# plane must be behaviour-invisible end to end. One experiment run with
# the plane disabled (FBA_NO_STREAM=1, the historical double-buffered
# lanes) must be byte-identical to the default streamed run; the full
# parity evidence is the streamed.engine trace-identity qcheck suite.
dune exec bench/main.exe -- fig1a --jobs 2 > "$seq_out"
FBA_NO_STREAM=1 dune exec bench/main.exe -- fig1a --jobs 2 > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "streamed parity smoke ok: FBA_NO_STREAM=1 output identical"
else
  echo "streamed parity smoke FAILED: streamed run differs from buffered run" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi

# Wide-sweep pipeline smoke: the wide experiment itself, shrunk to
# populations that run in seconds (FBA_WIDE=1 keeps them on the wide
# lane despite being under the n <= 8192 ceiling), must be
# byte-identical sequential vs sharded like every other sweep.
FBA_WIDE=1 FBA_WIDE_SWEEP_SIZES="256,512" dune exec bench/main.exe -- wide --jobs 1 > "$seq_out"
FBA_WIDE=1 FBA_WIDE_SWEEP_SIZES="256,512" dune exec bench/main.exe -- wide --jobs 2 > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "wide sweep smoke ok: --jobs 2 output identical to --jobs 1"
else
  echo "wide sweep smoke FAILED: --jobs 2 output differs from --jobs 1" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi

# Agreement-service smoke: the instance stream's per-instance traces
# (stdout: seeds, fingerprints, rounds, decisions) must be
# byte-identical whether the stream runs on one domain or sharded —
# the second run also exercises the FBA_JOBS override (--jobs 0 =
# auto, forced to 2 workers by the environment). --check re-derives
# the latency histogram from the raw per-instance latencies and exits
# non-zero if the sample count or p50/p99 disagree with the summary.
dune exec bin/fba.exe -- service -n 64 --instances 12 --width 3 --jobs 1 --check > "$seq_out"
FBA_JOBS=2 dune exec bin/fba.exe -- service -n 64 --instances 12 --width 3 --jobs 0 --check > "$par_out"
if cmp -s "$seq_out" "$par_out"; then
  echo "service jobs smoke ok: FBA_JOBS=2 traces identical to --jobs 1"
else
  echo "service smoke FAILED: sharded instance traces differ from sequential" >&2
  diff "$seq_out" "$par_out" >&2 || true
  exit 1
fi

# Perf gate: the cornering perf target must stay close to the most
# recent recorded BENCH_<rev>.json baseline. Two checks share one
# measurement (perf-target --record writes it as a one-target
# BENCH-format file):
#   - allocation within +1% (deterministic for this workload, so a
#     tight relative bound is safe where a wall-time bound would flake);
#   - wall time within +FBA_PERF_TIME_TOL percent (default 10 — a
#     generous bound that still catches order-of-magnitude slips),
#     via `bench perf --compare --metric time`.
baseline=""
for rev in $(git log --format=%h 2>/dev/null); do
  if [ -f "BENCH_$rev.json" ]; then baseline="BENCH_$rev.json"; break; fi
done
if [ -n "$baseline" ]; then
  current="$(mktemp)"
  trap 'rm -f "$jsonl" "$telemetry" "$history" "$seq_out" "$par_out" "$current"' EXIT
  words="$(dune exec bench/main.exe -- perf-target fig1a/aer-cornering-n128 --record "$current")"
  dune exec bench/main.exe -- perf --compare "$baseline" "$current" \
    --tol "${FBA_PERF_TIME_TOL:-10}" --metric time
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$baseline" "$words" "$current" <<'EOF'
import json, sys
baseline_path, words, current_path = sys.argv[1], float(sys.argv[2]), sys.argv[3]
with open(baseline_path) as f:
    doc = json.load(f)
target = "fig1a/aer-cornering-n128"
entry = next((t for t in doc["targets"] if t["name"] == target), None)
if entry is None:
    sys.exit(f"{baseline_path} has no {target} entry")
base = entry["allocated_words_per_run"]
ratio = words / base
if ratio > 1.01:
    sys.exit(
        f"allocation gate FAILED: {target} now allocates {words:.0f} words/run, "
        f"{(ratio - 1) * 100:.2f}% above the {baseline_path} baseline ({base:.0f})"
    )
print(f"allocation gate ok: {target} at {words:.0f} words/run, "
      f"{(ratio - 1) * 100:+.2f}% vs {baseline_path}")
# Peak-words gate: the streamed delivery plane's whole point is a low
# memory ceiling, and segment accounting is as deterministic as the
# allocation count, so the same tight +1% bound applies. Baselines
# recorded before the gauge existed simply skip the gate.
base_peak = entry.get("peak_mailbox_words")
if base_peak is None:
    print(f"peak-words gate skipped: {baseline_path} predates the gauge")
else:
    with open(current_path) as f:
        cur = json.load(f)
    peak = next((t.get("peak_mailbox_words") for t in cur["targets"] if t["name"] == target), None)
    if peak is None:
        sys.exit(f"{current_path} has no {target} peak_mailbox_words entry")
    if base_peak > 0 and peak / base_peak > 1.01:
        sys.exit(
            f"peak-words gate FAILED: {target} now peaks at {peak} mailbox words, "
            f"{(peak / base_peak - 1) * 100:.2f}% above the {baseline_path} baseline ({base_peak})"
        )
    print(f"peak-words gate ok: {target} at {peak} peak mailbox words vs {base_peak} baseline")
EOF
  else
    echo "python3 not found; skipping allocation gate" >&2
  fi
  # Throughput gate: the service instance-stream rows ride the same
  # wall-time compare machinery — time per instance is inverse
  # throughput, so a --metric time regression IS a throughput
  # regression. Baselines recorded before the service existed skip it.
  if grep -q '"service/stream-n128"' "$baseline"; then
    svc="$(mktemp)"
    trap 'rm -f "$jsonl" "$telemetry" "$history" "$seq_out" "$par_out" "$current" "$svc"' EXIT
    dune exec bench/main.exe -- perf-target service/stream-n128 --record "$svc" > /dev/null
    dune exec bench/main.exe -- perf --compare "$baseline" "$svc" \
      --tol "${FBA_PERF_TIME_TOL:-10}" --metric time
    echo "service throughput gate ok: stream-n128 time/instance within tolerance"
  else
    echo "baseline predates service rows; skipping throughput gate" >&2
  fi
else
  echo "no recorded BENCH_<rev>.json baseline; skipping perf gates" >&2
fi
