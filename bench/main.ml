(* Benchmark harness.

   Two jobs, per the reproduction contract:

   1. Regenerate every table/figure of the paper (Figure 1(a), Figure
      1(b)) plus the lemma-level, sampler-property and ablation tables -
      the experiment modules in [fba_harness] print the same rows the
      paper reports, with measured values.
   2. A Bechamel micro-benchmark suite (one [Test.make] per reproduced
      artifact) measuring the wall-clock cost of the protocol runs that
      feed those tables, so performance regressions in the simulator
      itself are visible.

   [perf --json] is the regression gate: it first runs scripts/ci.sh
   (build + tests; set FBA_SKIP_CI=1 to skip, e.g. when already inside
   a dune lock), then measures every perf target plus one large-n
   end-to-end AER run — wall time and allocated words per run, via
   [Gc.allocated_bytes] — and writes BENCH_<rev>.json for diffing
   against the previous revision's file. Perf measurements always run
   single-domain ([--jobs] does not apply), so numbers stay comparable
   across revisions.

   Experiment sweeps shard their grid cells across domains: [--jobs N]
   picks the worker count, [--jobs 1] forces sequential, and the
   default (0) auto-sizes to the machine. Output is byte-identical for
   every jobs value.

   Usage: main.exe [fig1a|fig1b|lemmas|samplers|ablation|robustness|wide|perf|all]
                   [--full] [--json] [--jobs N]
          main.exe perf-target NAME [--record FILE]
                   (scripting: print one target's allocated words per
                   run — scripts/ci.sh diffs this against the recorded
                   BENCH_<rev>.json baseline; --record also writes the
                   measurement as a one-target BENCH-format file. Both
                   micro and e2e/ names resolve; e2e progress goes to
                   stderr so stdout stays one bare number)
          main.exe perf --compare BASE.json NEW.json [--tol PCT]
                   [--metric time|alloc|both]
                   (print per-target time/allocation deltas between two
                   BENCH_<rev>.json files; with --tol, exit non-zero if
                   any gated metric regressed beyond PCT percent)
          main.exe history [--json]
                   (scan ./BENCH_*.json, order by git commit date, and
                   render each target's time/allocation trajectory
                   across revisions)
          main.exe service [--jobs N]
                   (instance-stream throughput: the Service epoch-reset
                   pipeline vs a loop of fresh one-shot runs over the
                   same per-instance seeds, at n=128 and n=1024; merges
                   the service/ rows — instances_per_sec and p50/p99
                   instance latency — into BENCH_<rev>.json) *)

open Bechamel
module Attacks = Fba_adversary.Aer_attacks
module Runner = Fba_harness.Runner

(* --- Bechamel suite: one test per table/figure we regenerate. --- *)

let bench_aer_sync () =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n:128 ~seed:1L in
  ignore (Runner.aer_sync ~adversary:Attacks.silent sc)

let bench_aer_cornering () =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n:128 ~seed:1L in
  ignore (Runner.aer_sync ~adversary:(fun sc -> Attacks.cornering sc) sc)

let bench_aer_async () =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n:96 ~seed:1L in
  ignore (Runner.aer_async ~adversary:(fun sc -> Attacks.async_cornering sc) sc)

let bench_grid () =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n:1024 ~seed:1L in
  ignore (Runner.run_grid sc)

let bench_ba () = ignore (Fba_core.Ba.run_sync ~n:128 ~seed:1L ~byzantine_fraction:0.1 ())

let bench_common_coin () =
  let module RBA = Fba_baselines.Randomized_ba in
  let module E = Fba_sim.Sync_engine.Make (RBA) in
  let n = 128 in
  let cfg =
    RBA.make_config ~n ~t_assumed:20 ~coin:(`Common 7L) ~inputs:(fun i -> i mod 2 = 0) ()
  in
  ignore
    (E.run ~config:cfg ~n ~seed:1L
       ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted:(Fba_stdx.Bitset.create n))
       ~mode:`Rushing ~max_rounds:(RBA.max_engine_rounds cfg) ())

let bench_sampler_quorum =
  let sampler = Fba_samplers.Sampler.create ~seed:1L ~n:1024 ~d:20 in
  let i = ref 0 in
  fun () ->
    incr i;
    ignore (Fba_samplers.Sampler.quorum_sx sampler ~s:"bench" ~x:(!i land 1023))

let bench_boundary () =
  let sampler = Fba_samplers.Sampler.create ~seed:1L ~n:512 ~d:18 in
  let rng = Fba_stdx.Prng.create 3L in
  ignore
    (Fba_samplers.Digraph.boundary_ratio sampler
       (Fba_samplers.Digraph.random_l sampler ~rng ~size:56))

let perf_tests =
  [
    ("fig1a/aer-sync-n128", bench_aer_sync);
    ("fig1a/aer-cornering-n128", bench_aer_cornering);
    ("fig1a/grid-n1024", bench_grid);
    ("lemmas/aer-async-n96", bench_aer_async);
    ("fig1b/ba-composition-n128", bench_ba);
    ("fig1b/common-coin-n128", bench_common_coin);
    ("samplers/quorum-eval", bench_sampler_quorum);
    ("samplers/boundary-n512", bench_boundary);
  ]

let run_perf () =
  print_endline "## Simulator micro-benchmarks (bechamel, monotonic clock)\n";
  let tests =
    Test.make_grouped ~name:"fba"
      (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) perf_tests)
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 2.0) ~stabilize:false () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let tbl =
    Fba_stdx.Table.create
      ~columns:[ ("benchmark", Fba_stdx.Table.Left); ("time/run", Fba_stdx.Table.Right) ]
  in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let cell =
        match Analyze.OLS.estimates r with
        | Some (est :: _) ->
          if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
        | _ -> "n/a"
      in
      Fba_stdx.Table.add_row tbl [ name; cell ])
    (List.sort compare rows);
  Fba_stdx.Table.print tbl;
  print_newline ()

(* --- JSON perf gate --- *)

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | ic ->
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown")
  | exception _ -> "unknown"

(* Peak RSS high-water (VmHWM) in kB from /proc/self/status. The
   kernel's high-water mark is process-lifetime; writing "5" to
   /proc/self/clear_refs resets it so per-target readings do not just
   echo the largest target measured earlier. Both reads and the reset
   degrade to 0 / no-op off Linux. *)
let reset_rss_hwm () =
  match open_out "/proc/self/clear_refs" with
  | oc ->
    (try output_string oc "5" with _ -> ());
    (try close_out oc with _ -> ())
  | exception _ -> ()

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | ic ->
    let rec scan () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
          let digits =
            String.to_seq line |> Seq.filter (fun c -> c >= '0' && c <= '9') |> String.of_seq
          in
          close_in ic;
          match int_of_string_opt digits with Some v -> v | None -> 0
        end
        else scan ()
      | exception End_of_file ->
        close_in ic;
        0
    in
    scan ()
  | exception _ -> 0

type row = {
  r_name : string;
  r_time_ns : float;
  r_words : float;  (* allocated words per run *)
  r_runs : int;
  r_peak_words : int;  (* peak mailbox/calendar words (Batch.Peak) *)
  r_rss_kb : int;  (* VmHWM over the measurement *)
  (* Throughput metrics, present only on service/ targets (the
     instance-stream benchmark); [None] elsewhere and in BENCH files
     recorded before the service existed. *)
  r_ips : float option;  (* instances per second *)
  r_p50_ns : float option;  (* p50 instance latency, ns (µs resolution) *)
  r_p99_ns : float option;
}

(* One warm run (fills samplers' caches and the first-touch
   allocations), then timed runs until at least 3 and ~1s of work, so
   cheap targets average over many runs while expensive ones stay
   bounded. The peak gauges bracket the timed runs: [Batch.Peak] is the
   engines' delivery-plane high-water, VmHWM the whole process. *)
let measure_target name f =
  f ();
  Fba_sim.Batch.Peak.reset ();
  reset_rss_hwm ();
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  let runs = ref 0 in
  while !runs < 3 || (Unix.gettimeofday () -. t0 < 1.0 && !runs < 50) do
    f ();
    incr runs
  done;
  let k = float_of_int !runs in
  let time_ns = (Unix.gettimeofday () -. t0) /. k *. 1e9 in
  let words = (Gc.allocated_bytes () -. a0) /. 8.0 /. k in
  {
    r_name = name;
    r_time_ns = time_ns;
    r_words = words;
    r_runs = !runs;
    r_peak_words = Fba_sim.Batch.Peak.get ();
    r_rss_kb = peak_rss_kb ();
    r_ips = None;
    r_p50_ns = None;
    r_p99_ns = None;
  }

(* BENCH_<rev>.json rows share one serialization everywhere (perf
   --json and perf-target --record), so the compare-mode parser below
   only ever meets one shape. *)
let write_bench_json ~path ~rev rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"rev\": %S,\n  \"targets\": [" rev;
  List.iteri
    (fun i r ->
      let service_fields =
        match (r.r_ips, r.r_p50_ns, r.r_p99_ns) with
        | Some ips, Some p50, Some p99 ->
          Printf.sprintf
            ", \"instances_per_sec\": %.2f, \"p50_instance_latency_ns\": %.0f, \
             \"p99_instance_latency_ns\": %.0f"
            ips p50 p99
        | _ -> ""
      in
      Printf.fprintf oc
        "%s\n    { \"name\": %S, \"time_ns_per_run\": %.0f, \"allocated_words_per_run\": %.0f, \"runs\": %d, \"peak_mailbox_words\": %d, \"peak_rss_kb\": %d%s }"
        (if i = 0 then "" else ",")
        r.r_name r.r_time_ns r.r_words r.r_runs r.r_peak_words r.r_rss_kb service_fields)
    rows;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc

(* --- perf --compare: diff two BENCH_<rev>.json files --- *)

(* A parsed BENCH row. Optional fields were added to the format over
   time ([p_peak]/[p_rss] by the streamed-plane PR, the three
   service metrics by the instance-stream PR) and are [None] when the
   recording predates them. *)
type prow = {
  p_name : string;
  p_time : float;
  p_words : float;
  p_runs : int;
  p_peak : float option;
  p_rss : float option;
  p_ips : float option;
  p_p50 : float option;
  p_p99 : float option;
}

(* Minimal scanner for the rigid JSON this harness itself writes (see
   [write_bench_json]): every target object carries "name",
   "time_ns_per_run" and "allocated_words_per_run" in order. No
   external JSON dependency — the container ships none. *)
let parse_bench path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "perf --compare: cannot open %s: %s\n" path msg;
      exit 2
  in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let len = String.length s in
  let find sub from =
    let m = String.length sub in
    let rec go i =
      if i + m > len then None
      else if String.sub s i m = sub then Some (i + m)
      else go (i + 1)
    in
    go from
  in
  let number from =
    let stop = ref from in
    while
      !stop < len
      && (match s.[!stop] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
    do
      incr stop
    done;
    match float_of_string_opt (String.sub s from (!stop - from)) with
    | Some v -> v
    | None ->
      Printf.eprintf "perf --compare: malformed number in %s at byte %d\n" path from;
      exit 2
  in
  let field key from =
    match find (Printf.sprintf "\"%s\": " key) from with
    | Some i -> number i
    | None ->
      Printf.eprintf "perf --compare: %s: missing %S after byte %d\n" path key from;
      exit 2
  in
  (* Optional fields (added to the format later; absent from older
     checked-in BENCH files) must not be picked up from the *next*
     target's object, so the search is bounded by the next "name". *)
  let field_opt key from ~stop =
    match find (Printf.sprintf "\"%s\": " key) from with
    | Some i when i < stop -> Some (number i)
    | _ -> None
  in
  let rec targets from acc =
    match find "\"name\": \"" from with
    | None -> List.rev acc
    | Some i ->
      let close = try String.index_from s i '"' with Not_found -> len in
      let name = String.sub s i (close - i) in
      let stop = match find "\"name\": \"" close with Some j -> j | None -> len in
      let time_ns = field "time_ns_per_run" close in
      let words = field "allocated_words_per_run" close in
      let runs = int_of_float (field "runs" close) in
      let peak_words = field_opt "peak_mailbox_words" close ~stop in
      let rss_kb = field_opt "peak_rss_kb" close ~stop in
      let ips = field_opt "instances_per_sec" close ~stop in
      let p50 = field_opt "p50_instance_latency_ns" close ~stop in
      let p99 = field_opt "p99_instance_latency_ns" close ~stop in
      targets close
        ({
           p_name = name;
           p_time = time_ns;
           p_words = words;
           p_runs = runs;
           p_peak = peak_words;
           p_rss = rss_kb;
           p_ips = ips;
           p_p50 = p50;
           p_p99 = p99;
         }
        :: acc)
  in
  targets 0 []

let pct delta base = if base = 0.0 then 0.0 else (delta -. base) /. base *. 100.0

(* Per-target deltas between two recorded runs; exit 1 when any gated
   metric regresses beyond [tol] percent (improvements never fail). *)
let run_compare base_path new_path ~tol ~metric =
  let base = parse_bench base_path in
  let curr = parse_bench new_path in
  Printf.printf "## perf compare: %s -> %s\n\n" base_path new_path;
  let gate_time = metric = `Time || metric = `Both in
  let gate_alloc = metric = `Alloc || metric = `Both in
  let tbl =
    Fba_stdx.Table.create
      ~columns:
        [
          ("target", Fba_stdx.Table.Left);
          ("time/run", Fba_stdx.Table.Right);
          ("delta", Fba_stdx.Table.Right);
          ("words/run", Fba_stdx.Table.Right);
          ("delta", Fba_stdx.Table.Right);
          ("peak words", Fba_stdx.Table.Right);
          ("delta", Fba_stdx.Table.Right);
          ("rss kb", Fba_stdx.Table.Right);
          ("inst/s", Fba_stdx.Table.Right);
          ("delta", Fba_stdx.Table.Right);
        ]
  in
  let opt_cell = function Some v -> Printf.sprintf "%.0f" v | None -> "-" in
  let opt_cell2 = function Some v -> Printf.sprintf "%.1f" v | None -> "-" in
  (* Peak deltas render (memory is the point of the streamed plane) but
     never gate: the field is absent from older baselines and VmHWM is
     too machine-dependent for a hard threshold here — scripts/ci.sh
     gates peak_mailbox_words explicitly when the baseline has it. *)
  let opt_delta nv bv =
    match (nv, bv) with Some n, Some b -> Printf.sprintf "%+.1f%%" (pct n b) | _ -> "-"
  in
  let failures = ref [] in
  (* One-sided targets never gate (ci compares a one-target record
     against the full baseline), but silence would let a renamed or
     deleted benchmark vanish from the radar — report them loudly. *)
  let one_sided = ref [] in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.p_name = b.p_name) curr with
      | None ->
        one_sided :=
          Printf.sprintf "target %S is in %s but not in %s" b.p_name base_path new_path
          :: !one_sided;
        (* Union row with the side that does exist: the baseline values,
           marked [removed], so a renamed benchmark's last numbers stay
           on the table instead of vanishing. *)
        Fba_stdx.Table.add_row tbl
          [ b.p_name; Printf.sprintf "%.2f ms" (b.p_time /. 1e6); "removed";
            Printf.sprintf "%.0f" b.p_words; "removed"; opt_cell b.p_peak; "removed"; "-";
            opt_cell2 b.p_ips; "removed" ]
      | Some c ->
        let dt = pct c.p_time b.p_time and dw = pct c.p_words b.p_words in
        Fba_stdx.Table.add_row tbl
          [
            b.p_name;
            Printf.sprintf "%.2f ms" (c.p_time /. 1e6);
            Printf.sprintf "%+.1f%%" dt;
            Printf.sprintf "%.0f" c.p_words;
            Printf.sprintf "%+.1f%%" dw;
            opt_cell c.p_peak;
            opt_delta c.p_peak b.p_peak;
            opt_cell c.p_rss;
            opt_cell2 c.p_ips;
            opt_delta c.p_ips b.p_ips;
          ];
        (match tol with
        | Some tol ->
          if gate_time && dt > tol then
            failures :=
              Printf.sprintf "%s: time %+.1f%% (tol %.1f%%)" b.p_name dt tol :: !failures;
          if gate_alloc && dw > tol then
            failures :=
              Printf.sprintf "%s: allocation %+.1f%% (tol %.1f%%)" b.p_name dw tol :: !failures
        | None -> ()))
    base;
  List.iter
    (fun c ->
      if not (List.exists (fun b -> b.p_name = c.p_name) base) then begin
        one_sided :=
          Printf.sprintf "target %S is in %s but not in %s" c.p_name new_path base_path
          :: !one_sided;
        Fba_stdx.Table.add_row tbl
          [ c.p_name; Printf.sprintf "%.2f ms" (c.p_time /. 1e6); "new";
            Printf.sprintf "%.0f" c.p_words; "new"; opt_cell c.p_peak; "new";
            opt_cell c.p_rss; opt_cell2 c.p_ips; "new" ]
      end)
    curr;
  Fba_stdx.Table.print tbl;
  print_newline ();
  List.iter (fun w -> Printf.eprintf "compare warning: %s\n" w) (List.rev !one_sided);
  match !failures with
  | [] ->
    (match tol with
    | Some tol ->
      Printf.printf "compare gate ok: no target regressed beyond %.1f%% (%s)\n" tol
        (match metric with `Time -> "time" | `Alloc -> "allocation" | `Both -> "time+allocation")
    | None -> ());
    exit 0
  | fs ->
    List.iter (fun f -> Printf.eprintf "compare gate FAILED: %s\n" f) (List.rev fs);
    exit 1

(* --- bench history: per-target trajectory across checked-in BENCH files --- *)

let git_commit_time rev =
  let cmd = Printf.sprintf "git show -s --format=%%ct %s 2>/dev/null" (Filename.quote rev) in
  match Unix.open_process_in cmd with
  | ic ->
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> int_of_string_opt line
    | _ -> None)
  | exception _ -> None

(* Every [perf --json] run leaves a BENCH_<rev>.json behind; lining
   them up in commit order turns the point-to-point compare gate into
   a trajectory — where each target's time and allocation have been
   heading across the stacked PRs. *)
let run_history ~json () =
  let files =
    Sys.readdir "."
    |> Array.to_list
    |> List.filter (fun f ->
           String.length f > String.length "BENCH_.json"
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if files = [] then begin
    prerr_endline "bench history: no BENCH_*.json files in the current directory";
    exit 2
  end;
  let rev_of f =
    let stem = Filename.chop_suffix f ".json" in
    String.sub stem 6 (String.length stem - 6)
  in
  let entries = List.map (fun f -> (f, rev_of f, git_commit_time (rev_of f), parse_bench f)) files in
  (* Commit-date order, oldest first; revisions git doesn't know (a
     file copied from another checkout) sort last in file-name order. *)
  let entries =
    List.stable_sort
      (fun (_, _, a, _) (_, _, b, _) ->
        match (a, b) with
        | Some x, Some y -> compare x y
        | Some _, None -> -1
        | None, Some _ -> 1
        | None, None -> 0)
      entries
  in
  let target_names =
    List.fold_left
      (fun acc (_, _, _, rows) ->
        List.fold_left
          (fun acc r -> if List.mem r.p_name acc then acc else acc @ [ r.p_name ])
          acc rows)
      [] entries
  in
  let lookup rows name = List.find_opt (fun r -> r.p_name = name) rows in
  let opt_num = function Some v -> Printf.sprintf "%.0f" v | None -> "null" in
  if json then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\"bench_history_version\":1,\"revs\":[";
    List.iteri
      (fun i (f, rev, ct, _) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"rev\":%S,\"file\":%S,\"commit_time\":%s}" rev f
             (match ct with Some t -> string_of_int t | None -> "null")))
      entries;
    Buffer.add_string b "],\"targets\":[";
    let series key proj =
      Buffer.add_string b (Printf.sprintf "%S:[" key);
      fun name ->
        List.iteri
          (fun j (_, _, _, rows) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (match lookup rows name with Some r -> proj r | None -> "null"))
          entries;
        Buffer.add_char b ']'
    in
    List.iteri
      (fun i name ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "{\"name\":%S," name);
        (series "time_ns_per_run" (fun r -> Printf.sprintf "%.0f" r.p_time)) name;
        Buffer.add_char b ',';
        (series "allocated_words_per_run" (fun r -> Printf.sprintf "%.0f" r.p_words)) name;
        Buffer.add_char b ',';
        (* Optional gauges (peak words/rss, then the service metrics)
           are null before the revision that introduced them —
           consumers see exactly when each field starts existing. *)
        (series "peak_mailbox_words" (fun r -> opt_num r.p_peak)) name;
        Buffer.add_char b ',';
        (series "peak_rss_kb" (fun r -> opt_num r.p_rss)) name;
        Buffer.add_char b ',';
        (series "instances_per_sec"
           (fun r -> match r.p_ips with Some v -> Printf.sprintf "%.2f" v | None -> "null"))
          name;
        Buffer.add_char b ',';
        (series "p50_instance_latency_ns" (fun r -> opt_num r.p_p50)) name;
        Buffer.add_char b ',';
        (series "p99_instance_latency_ns" (fun r -> opt_num r.p_p99)) name;
        Buffer.add_char b '}')
      target_names;
    Buffer.add_string b "]}";
    print_endline (Buffer.contents b)
  end
  else begin
    Printf.printf "## bench history: %d revisions, oldest -> newest\n\n" (List.length entries);
    List.iter
      (fun (f, rev, ct, _) ->
        Printf.printf "  %-10s %s%s\n" rev f
          (match ct with
          | Some t -> Printf.sprintf "  (commit time %d)" t
          | None -> "  (rev unknown to git; ordered last)"))
      entries;
    print_newline ();
    let trajectory title cell =
      Printf.printf "### %s\n\n" title;
      let tbl =
        Fba_stdx.Table.create
          ~columns:
            (("target", Fba_stdx.Table.Left)
            :: List.map (fun (_, rev, _, _) -> (rev, Fba_stdx.Table.Right)) entries)
      in
      List.iter
        (fun name ->
          Fba_stdx.Table.add_row tbl
            (name
            :: List.map
                 (fun (_, _, _, rows) ->
                   match lookup rows name with Some r -> cell r | None -> "-")
                 entries))
        target_names;
      Fba_stdx.Table.print tbl;
      print_newline ()
    in
    trajectory "time per run" (fun r -> Printf.sprintf "%.2f ms" (r.p_time /. 1e6));
    trajectory "allocated words per run" (fun r -> Printf.sprintf "%.0f" r.p_words);
    trajectory "peak mailbox words" (fun r ->
        match r.p_peak with Some v -> Printf.sprintf "%.0f" v | None -> "-");
    (* Service throughput columns: only service/ targets carry them;
       every other cell (and every pre-service revision) renders "-"
       without warnings, like the peak columns above. *)
    trajectory "instances per second" (fun r ->
        match r.p_ips with Some v -> Printf.sprintf "%.1f" v | None -> "-");
    trajectory "p50 / p99 instance latency" (fun r ->
        match (r.p_p50, r.p_p99) with
        | Some p50, Some p99 ->
          Printf.sprintf "%.1f / %.1f ms" (p50 /. 1e6) (p99 /. 1e6)
        | _ -> "-")
  end;
  exit 0

(* The sweep-scale end-to-end configurations the micro targets
   extrapolate to, each measured once. n=4096 exists because the packed
   message plane makes it affordable (the first grid tier beyond the
   historical n=1024 ceiling); n=16384 and n=65536 are the wide-layout
   lane, with shared junk because unique junk cannot fit any wide sid
   field at those populations. *)
let e2e_targets =
  [
    ("e2e/aer-cornering-n1024", 1024, Fba_core.Scenario.Junk_unique);
    ("e2e/aer-cornering-n4096", 4096, Fba_core.Scenario.Junk_unique);
    ("e2e/aer-cornering-n16384", 16384, Fba_core.Scenario.Junk_shared 8);
    ("e2e/aer-cornering-n65536", 65536, Fba_core.Scenario.Junk_shared 8);
  ]

let measure_e2e ?(progress = stdout) (name, n, junk) =
  let sc = Runner.scenario_of_setup { Runner.default_setup with Runner.junk } ~n ~seed:1L in
  Fba_sim.Batch.Peak.reset ();
  reset_rss_hwm ();
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  ignore (Runner.aer_sync ~adversary:(fun sc -> Attacks.cornering sc) sc);
  let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let words = (Gc.allocated_bytes () -. a0) /. 8.0 in
  let peak = Fba_sim.Batch.Peak.get () in
  let rss = peak_rss_kb () in
  Printf.fprintf progress "%-28s %12.0f ns/run %14.0f words/run %12d peak-words  (1 run)\n%!"
    name ns words peak;
  { r_name = name; r_time_ns = ns; r_words = words; r_runs = 1; r_peak_words = peak;
    r_rss_kb = rss; r_ips = None; r_p50_ns = None; r_p99_ns = None }

(* --- service throughput: the instance-stream benchmark --- *)

module Service = Fba_harness.Service

(* Two rows per population size: a loop over fresh one-shot Runner
   runs (the historical path — every instance reallocates its
   scenario, quorum caches, compiled tables and mailbox) and the same
   instances through the Service epoch-reset pipeline. Both execute
   the identical per-instance seed schedule, so the throughput ratio
   isolates the storage strategy; CI separately byte-diffs the
   per-instance traces. *)
let service_sizes = [ (128, 48); (1024, 6) ]

let measure_service_pair ?(progress = stdout) ~jobs (n, instances) =
  let stream_seed = 42L in
  let adversary sc = Attacks.cornering sc in
  let pct_ns h p =
    match Fba_stdx.Histogram.percentile_opt h p with
    | None -> 0.0
    | Some us -> float_of_int us *. 1000.0
  in
  let hist = Fba_stdx.Histogram.create () in
  Fba_sim.Batch.Peak.reset ();
  reset_rss_hwm ();
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  for k = 0 to instances - 1 do
    let ik = Unix.gettimeofday () in
    let seed = Service.instance_seed stream_seed k in
    let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
    ignore (Runner.aer_sync ~adversary sc);
    Fba_stdx.Histogram.add hist (max 0 (int_of_float ((Unix.gettimeofday () -. ik) *. 1e6)))
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let oneshot =
    {
      r_name = Printf.sprintf "service/oneshot-n%d" n;
      r_time_ns = dt /. float_of_int instances *. 1e9;
      r_words = (Gc.allocated_bytes () -. a0) /. 8.0 /. float_of_int instances;
      r_runs = instances;
      r_peak_words = Fba_sim.Batch.Peak.get ();
      r_rss_kb = peak_rss_kb ();
      r_ips = Some (float_of_int instances /. dt);
      r_p50_ns = Some (pct_ns hist 50.0);
      r_p99_ns = Some (pct_ns hist 99.0);
    }
  in
  Printf.fprintf progress "%-28s %12.0f ns/inst %14.2f inst/s  (%d instances)\n%!"
    oneshot.r_name oneshot.r_time_ns
    (match oneshot.r_ips with Some v -> v | None -> 0.0)
    instances;
  Fba_sim.Batch.Peak.reset ();
  reset_rss_hwm ();
  (* Gc.allocated_bytes is domain-local; the recorded rows run jobs=1
     so the figure covers every instance. *)
  let a1 = Gc.allocated_bytes () in
  let s =
    Service.run
      ~stream:{ Service.default_stream with Service.n; instances; stream_seed; width = 4; jobs }
      ~adversary ()
  in
  let stream_row =
    {
      r_name = Printf.sprintf "service/stream-n%d" n;
      r_time_ns = float_of_int s.Service.elapsed_ns /. float_of_int instances;
      r_words = (Gc.allocated_bytes () -. a1) /. 8.0 /. float_of_int instances;
      r_runs = instances;
      r_peak_words = Fba_sim.Batch.Peak.get ();
      r_rss_kb = peak_rss_kb ();
      r_ips = Some s.Service.instances_per_sec;
      r_p50_ns = Some (float_of_int s.Service.p50_instance_latency_ns);
      r_p99_ns = Some (float_of_int s.Service.p99_instance_latency_ns);
    }
  in
  Printf.fprintf progress "%-28s %12.0f ns/inst %14.2f inst/s  (%d instances)\n%!"
    stream_row.r_name stream_row.r_time_ns s.Service.instances_per_sec instances;
  [ oneshot; stream_row ]

(* [bench service] re-records only its own rows: merge into the
   current revision's BENCH file (written by this same harness, so
   reconstruction is exact), keeping every non-service row. *)
let merge_bench_rows rows =
  let rev = git_rev () in
  let path = Printf.sprintf "BENCH_%s.json" rev in
  let kept =
    if Sys.file_exists path then
      List.filter
        (fun p -> not (List.exists (fun r -> r.r_name = p.p_name) rows))
        (parse_bench path)
    else []
  in
  let of_prow p =
    {
      r_name = p.p_name;
      r_time_ns = p.p_time;
      r_words = p.p_words;
      r_runs = p.p_runs;
      r_peak_words = (match p.p_peak with Some v -> int_of_float v | None -> 0);
      r_rss_kb = (match p.p_rss with Some v -> int_of_float v | None -> 0);
      r_ips = p.p_ips;
      r_p50_ns = p.p_p50;
      r_p99_ns = p.p_p99;
    }
  in
  write_bench_json ~path ~rev (List.map of_prow kept @ rows);
  Printf.printf "\nwrote %s\n" path

let run_service ~jobs () =
  print_endline "## Agreement as a service: instance-stream throughput\n";
  let rows = List.concat_map (fun sz -> measure_service_pair ~jobs sz) service_sizes in
  print_newline ();
  List.iter
    (fun (n, _) ->
      let find name = List.find_opt (fun r -> r.r_name = name) rows in
      match
        (find (Printf.sprintf "service/oneshot-n%d" n), find (Printf.sprintf "service/stream-n%d" n))
      with
      | Some o, Some s -> (
        match (o.r_ips, s.r_ips, s.r_p50_ns, s.r_p99_ns) with
        | Some oi, Some si, Some p50, Some p99 ->
          Printf.printf
            "n=%-5d stream %.2f inst/s vs one-shot %.2f inst/s (%.2fx); p50 %.1f ms, p99 %.1f ms\n"
            n si oi (si /. oi) (p50 /. 1e6) (p99 /. 1e6)
        | _ -> ())
      | _ -> ())
    service_sizes;
  merge_bench_rows rows

let run_perf_json () =
  (match Sys.getenv_opt "FBA_SKIP_CI" with
  | Some _ -> print_endline "## perf gate: FBA_SKIP_CI set, skipping scripts/ci.sh"
  | None ->
    if Sys.file_exists "scripts/ci.sh" then begin
      print_endline "## perf gate: running scripts/ci.sh (set FBA_SKIP_CI=1 to skip)";
      let rc = Sys.command "sh scripts/ci.sh" in
      if rc <> 0 then begin
        Printf.eprintf "perf --json: scripts/ci.sh failed (exit %d); not recording numbers\n" rc;
        exit rc
      end
    end
    else print_endline "## perf gate: scripts/ci.sh not found (not at repo root?), skipping");
  print_endline "## Perf targets (wall time, allocated words and peak mailbox words per run)\n";
  let rows =
    List.map
      (fun (name, f) ->
        let r = measure_target name f in
        Printf.printf "%-28s %12.0f ns/run %14.0f words/run %12d peak-words  (%d runs)\n%!"
          r.r_name r.r_time_ns r.r_words r.r_peak_words r.r_runs;
        r)
      perf_tests
  in
  let rows = rows @ List.map measure_e2e e2e_targets in
  (* Instance-stream throughput rows, always single-domain here (like
     every perf measurement) so numbers stay comparable across
     revisions; [bench service --jobs N] explores the sharded lane. *)
  let rows = rows @ List.concat_map (measure_service_pair ~jobs:1) service_sizes in
  let rev = git_rev () in
  let path = Printf.sprintf "BENCH_%s.json" rev in
  write_bench_json ~path ~rev rows;
  Printf.printf "\nwrote %s\n" path

(* --- Entry point --- *)

module Experiment = Fba_harness.Experiment

let experiments : Experiment.t list =
  [
    (module Fba_harness.Exp_fig1a);
    (module Fba_harness.Exp_fig1b);
    (module Fba_harness.Exp_lemmas);
    (module Fba_harness.Exp_samplers);
    (module Fba_harness.Exp_ablation);
    (module Fba_harness.Exp_robustness);
    (module Fba_harness.Exp_wide);
  ]

(* [--jobs N] / [-j N]: worker-domain count for experiment sweeps.
   Absent or 0 = auto-size to the machine; 1 = sequential. *)
let rec extract_jobs acc = function
  | [] -> (0, List.rev acc)
  | ("--jobs" | "-j") :: v :: rest -> (
    match int_of_string_opt v with
    | Some j when j >= 0 -> (j, List.rev_append acc rest)
    | _ ->
      Printf.eprintf "--jobs expects a non-negative integer, got %S\n" v;
      exit 2)
  | [ ("--jobs" | "-j") ] ->
    prerr_endline "--jobs expects an argument";
    exit 2
  | a :: rest -> extract_jobs (a :: acc) rest

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs, args = extract_jobs [] args in
  let full = List.mem "--full" args in
  let json = List.mem "--json" args in
  let which = List.filter (fun a -> a <> "--full" && a <> "--json") args in
  let which = if which = [] then [ "all" ] else which in
  (match which with
  | "perf-target" :: name :: rest -> (
    let record =
      match rest with
      | [] -> None
      | [ "--record"; path ] -> Some path
      | _ ->
        prerr_endline "perf-target usage: perf-target NAME [--record FILE]";
        exit 2
    in
    (* Bare stdout by design: one number, for scripts/ci.sh. [--record]
       additionally writes the full measurement as a one-target
       BENCH-format file so [perf --compare] can gate on it. *)
    let finish r =
      (match record with
      | Some path -> write_bench_json ~path ~rev:(git_rev ()) [ r ]
      | None -> ());
      Printf.printf "%.0f\n" r.r_words;
      exit 0
    in
    match List.assoc_opt name perf_tests with
    | Some f -> finish (measure_target name f)
    | None -> (
      match List.find_opt (fun (e, _, _) -> e = name) e2e_targets with
      | Some target -> finish (measure_e2e ~progress:stderr target)
      | None -> (
        (* service/ names measure the whole oneshot-vs-stream pair at
           that population (the ratio is the point); [--record] writes
           both rows so the compare gate covers each. *)
        match
          List.find_opt
            (fun (n, _) ->
              name = Printf.sprintf "service/stream-n%d" n
              || name = Printf.sprintf "service/oneshot-n%d" n)
            service_sizes
        with
        | Some sz ->
          let rows = measure_service_pair ~progress:stderr ~jobs:1 sz in
          (match record with
          | Some path -> write_bench_json ~path ~rev:(git_rev ()) rows
          | None -> ());
          let r = List.find (fun r -> r.r_name = name) rows in
          Printf.printf "%.0f\n" r.r_words;
          exit 0
        | None ->
          Printf.eprintf "unknown perf target %S\n" name;
          exit 2)))
  | [ "perf-target" ] ->
    prerr_endline "perf-target expects a target name";
    exit 2
  | "history" :: rest ->
    if rest <> [] then begin
      prerr_endline "history usage: history [--json]";
      exit 2
    end;
    run_history ~json ()
  | "service" :: rest ->
    if rest <> [] then begin
      prerr_endline "service usage: service [--jobs N]";
      exit 2
    end;
    run_service ~jobs ();
    exit 0
  | "perf" :: "--compare" :: rest ->
    let rec parse files tol metric = function
      | [] -> (List.rev files, tol, metric)
      | "--tol" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t >= 0.0 -> parse files (Some t) metric rest
        | _ ->
          Printf.eprintf "--tol expects a non-negative percentage, got %S\n" v;
          exit 2)
      | "--metric" :: v :: rest -> (
        match v with
        | "time" -> parse files tol `Time rest
        | "alloc" -> parse files tol `Alloc rest
        | "both" -> parse files tol `Both rest
        | _ ->
          Printf.eprintf "--metric expects time|alloc|both, got %S\n" v;
          exit 2)
      | f :: rest -> parse (f :: files) tol metric rest
    in
    (match parse [] None `Both rest with
    | [ base; curr ], tol, metric -> run_compare base curr ~tol ~metric
    | _ ->
      prerr_endline
        "perf --compare usage: perf --compare BASE.json NEW.json [--tol PCT] [--metric \
         time|alloc|both]";
      exit 2)
  | _ -> ());
  let run_exp e =
    Experiment.run ~jobs ~full e ~out:stdout ();
    flush stdout
  in
  let run_one name =
    match List.find_opt (fun e -> Experiment.name e = name) experiments with
    | Some e -> run_exp e
    | None when name = "perf" -> if json then run_perf_json () else run_perf ()
    | None when name = "all" ->
      List.iter run_exp experiments;
      run_perf ()
    | None ->
      Printf.eprintf
        "unknown benchmark %S (expected fig1a|fig1b|lemmas|samplers|ablation|robustness|perf|all)\n"
        name;
      exit 2
  in
  Printf.printf "# Fast Byzantine Agreement (PODC 2013) - table regeneration%s\n\n"
    (if full then " (full grids)" else " (quick grids; pass --full for larger sizes)");
  List.iter run_one which
