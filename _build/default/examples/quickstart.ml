(* Quickstart: run the paper's full Byzantine Agreement protocol —
   almost-everywhere agreement on a fresh random string (committee
   phase), then AER to extend it to every correct node — and print what
   happened.

     dune exec examples/quickstart.exe *)

let () =
  let n = 256 in
  let byzantine_fraction = 0.10 in
  Printf.printf "Byzantine Agreement on a random string, n=%d, %.0f%% Byzantine\n\n" n
    (100.0 *. byzantine_fraction);
  let result = Fba_core.Ba.run_sync ~n ~seed:2013L ~byzantine_fraction () in
  (match result.Fba_core.Ba.gstring with
  | None -> print_endline "phase 1 failed to converge (should be very rare)"
  | Some gstring ->
    Printf.printf "phase 1 (committees): %.1f%% of nodes learned gstring\n"
      (100.0 *. result.Fba_core.Ba.ae_fraction);
    Printf.printf "phase 2 (AER):        %d of %d correct nodes decided gstring\n"
      result.Fba_core.Ba.agreed result.Fba_core.Ba.correct;
    Printf.printf "\nagreed string (%d bits): " (8 * String.length gstring);
    String.iter (fun c -> Printf.printf "%02x" (Char.code c)) gstring;
    print_newline ());
  Printf.printf "\ntotal rounds: %d\n" (Fba_sim.Metrics.rounds result.Fba_core.Ba.metrics);
  Printf.printf "amortized communication: %.0f bits per node (polylogarithmic — the paper's \
                 headline result)\n"
    (Fba_sim.Metrics.amortized_bits result.Fba_core.Ba.metrics);
  exit (if result.Fba_core.Ba.agreed = result.Fba_core.Ba.correct then 0 else 1)
