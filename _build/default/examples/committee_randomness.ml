(* Distributed randomness from the committee substrate.

   The almost-everywhere phase is useful on its own: it makes almost
   all nodes agree on a string of which at least 2/3+ε of the bits are
   uniformly random (each root-committee member contributes a slice;
   the Byzantine minority controls only its own slices). This example
   runs it standalone, shows the agreement fraction, and measures how
   many bits the adversary controlled.

     dune exec examples/committee_randomness.exe *)

open Fba_stdx
module Aeba = Fba_aeba.Aeba
module Engine = Fba_sim.Sync_engine.Make (Aeba)

let () =
  let n = 512 in
  let seed = 99L in
  let byzantine_fraction = 0.15 in
  let cfg = Aeba.make_config ~n ~seed ~byzantine_fraction () in
  let tree = Aeba.config_tree cfg in
  let m = Fba_aeba.Committee_tree.committee_size tree in
  Printf.printf "Committee tree: %d nodes, committees of %d, %d levels, %d groups\n" n m
    (Fba_aeba.Committee_tree.levels tree)
    (Fba_aeba.Committee_tree.group_count tree);
  let rng = Prng.create 7L in
  let t = int_of_float (byzantine_fraction *. float_of_int n) in
  let corrupted = Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k:t) in
  let res =
    Engine.run ~config:cfg ~n ~seed
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing
      ~max_rounds:(Aeba.total_rounds cfg + 2) ()
  in
  let mask = Array.init n (fun i -> not (Bitset.mem corrupted i)) in
  match Aeba.reference_string res.Fba_sim.Sync_engine.outputs mask with
  | None -> print_endline "no agreement (should not happen)"
  | Some gstring ->
    let agree = ref 0 and correct = ref 0 in
    Array.iteri
      (fun i o ->
        if mask.(i) then begin
          incr correct;
          if o = Some gstring then incr agree
        end)
      res.Fba_sim.Sync_engine.outputs;
    Printf.printf "agreement: %d/%d correct nodes hold the same string (almost-everywhere)\n"
      !agree !correct;
    (* How much of the string did the adversary control? Exactly the
       slices of corrupted root members. *)
    let root = Fba_aeba.Committee_tree.root tree in
    let byz_slices = Array.fold_left (fun a id -> if Bitset.mem corrupted id then a + 1 else a) 0 root in
    Printf.printf "root committee: %d members, %d Byzantine -> at most %.1f%% of gstring's bits \
                   adversary-controlled (paper requires < 1/3)\n"
      (Array.length root) byz_slices
      (100.0 *. float_of_int byz_slices /. float_of_int (Array.length root));
    Printf.printf "gstring (%d bits): " (8 * String.length gstring);
    String.iter (fun c -> Printf.printf "%02x" (Char.code c)) gstring;
    print_newline ();
    Printf.printf "rounds: %d, bits/node: %.0f\n"
      (Fba_sim.Metrics.rounds res.Fba_sim.Sync_engine.metrics)
      (Fba_sim.Metrics.amortized_bits res.Fba_sim.Sync_engine.metrics)
