(* Classical bit-output Byzantine Agreement via the paper's protocol.

   The paper's BA outputs a common random string; this example runs the
   classical reduction: the string seeds a common coin that drives a
   randomized binary agreement on real inputs — here, a 50/50 split, the
   hardest case, under a vote-splitting adversary. It also demonstrates
   the execution tracer on the AER phase.

     dune exec examples/binary_agreement.exe *)

module Trace = Fba_sim.Trace

let () =
  let n = 128 in
  let inputs i = i mod 2 = 0 in
  Printf.printf
    "Binary agreement on a 50/50 input split, n=%d, 10%% Byzantine, vote-splitting adversary\n\n" n;
  let r =
    Fba_core.Binary_ba.run_sync ~inputs ~n ~seed:4242L ~byzantine_fraction:0.10 ()
  in
  (match r.Fba_core.Binary_ba.decided_bit with
  | Some b ->
    Printf.printf "decision: %b (%d/%d correct nodes)\n" b r.Fba_core.Binary_ba.agreed
      r.Fba_core.Binary_ba.correct;
    Printf.printf "validity respected (decision was some correct node's input): %b\n"
      r.Fba_core.Binary_ba.validity_respected
  | None -> print_endline "no decision");
  Printf.printf "total rounds across all three phases: %d\n\n"
    (Fba_sim.Metrics.rounds r.Fba_core.Binary_ba.metrics);

  (* Bonus: trace an AER execution to see the paper's phase structure
     (pushes, then polls/pulls, then the Fw1 burst, Fw2s, answers). *)
  print_endline "AER message-kind trace (one row per round), n=64:";
  let module Traced = Trace.Traced (Fba_core.Aer) in
  let module Engine = Fba_sim.Sync_engine.Make (Traced) in
  let sc =
    Fba_harness.Runner.scenario_of_setup Fba_harness.Runner.default_setup ~n:64 ~seed:7L
  in
  let trace = Trace.create () in
  let cfg = (Fba_core.Aer.config_of_scenario sc, trace) in
  let _ =
    Engine.run ~config:cfg ~n:64 ~seed:7L
      ~adversary:
        (Fba_sim.Sync_engine.null_adversary ~corrupted:sc.Fba_core.Scenario.corrupted)
      ~mode:`Rushing ~max_rounds:30 ()
  in
  print_string (Trace.render trace)
