examples/flood_defense.ml: Fba_adversary Fba_core Fba_harness Printf
