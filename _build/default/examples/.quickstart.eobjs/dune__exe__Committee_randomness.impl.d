examples/committee_randomness.ml: Array Bitset Char Fba_aeba Fba_sim Fba_stdx Printf Prng String
