examples/rushing_vs_async.mli:
