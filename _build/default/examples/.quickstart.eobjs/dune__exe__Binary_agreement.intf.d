examples/binary_agreement.mli:
