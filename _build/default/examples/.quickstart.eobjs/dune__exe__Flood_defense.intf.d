examples/flood_defense.mli:
