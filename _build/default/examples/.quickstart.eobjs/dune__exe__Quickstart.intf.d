examples/quickstart.mli:
