examples/binary_agreement.ml: Fba_core Fba_harness Fba_sim Printf
