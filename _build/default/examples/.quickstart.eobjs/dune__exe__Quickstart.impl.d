examples/quickstart.ml: Char Fba_core Fba_sim Printf String
