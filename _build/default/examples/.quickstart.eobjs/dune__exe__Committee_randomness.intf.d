examples/committee_randomness.mli:
