examples/rushing_vs_async.ml: Fba_adversary Fba_core Fba_harness Params Printf Scenario
