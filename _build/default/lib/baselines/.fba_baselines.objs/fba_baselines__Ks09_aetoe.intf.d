lib/baselines/ks09_aetoe.mli: Fba_sim Fba_stdx
