lib/baselines/naive_aetoe.mli: Fba_sim Fba_stdx
