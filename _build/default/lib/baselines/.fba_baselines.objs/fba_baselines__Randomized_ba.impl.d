lib/baselines/randomized_ba.ml: Array Fba_sim Fba_stdx Format Hash64 Hashtbl Int64 Intx List Prng
