lib/baselines/phase_king_proto.mli: Fba_sim
