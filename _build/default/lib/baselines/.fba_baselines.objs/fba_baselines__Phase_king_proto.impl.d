lib/baselines/phase_king_proto.ml: Array Fba_aeba Fba_sim Fba_stdx Format Intx
