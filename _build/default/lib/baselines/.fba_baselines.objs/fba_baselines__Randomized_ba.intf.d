lib/baselines/randomized_ba.mli: Fba_sim Fba_stdx
