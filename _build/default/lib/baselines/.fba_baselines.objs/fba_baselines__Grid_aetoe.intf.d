lib/baselines/grid_aetoe.mli: Fba_sim
