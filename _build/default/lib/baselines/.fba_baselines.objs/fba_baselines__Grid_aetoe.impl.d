lib/baselines/grid_aetoe.ml: Array Fba_sim Fba_stdx Format Hashtbl Intx List Option
