(** Naive sample-and-vote almost-everywhere→everywhere.

    Each node queries Θ(log n) uniformly random nodes and adopts the
    majority of the replies. With (1/2+ε)·n knowledgeable correct nodes
    this decides correctly w.h.p. and costs only O(log²n) bits per node
    {e without} an adversary — but repliers answer {e every} query
    unconditionally, so Byzantine nodes can direct all their queries at
    chosen victims and inflate their send load to Θ(t) strings. This is
    the protocol shape the paper's pull filters exist to fix (Section
    2.3); the [exp_filter_ablation] bench quantifies the difference. *)

type config

val make_config :
  ?fanout:int -> n:int -> initial:(int -> string) -> str_bits:int -> unit -> config
(** [fanout] defaults to [4·⌈log₂ n⌉ + 1] (odd, so majorities are
    unambiguous). *)

include Fba_sim.Protocol.S with type config := config

val total_rounds : int
(** Rounds until decision (3): query, reply, adopt. *)

val queries_answered : state -> int
(** How many distinct queriers this node replied to — the unbounded
    quantity the attack targets. *)

val flood_adversary :
  config -> corrupted:Fba_stdx.Bitset.t -> msg Fba_sim.Sync_engine.adversary
(** Every corrupted node queries every node in round 0. Each correct
    node then sends Θ(t) replies of |s| bits — Θ(n·log n) bits per node
    at t = Θ(n), against O(log² n) without the attack. AER's quorum
    filters (Section 2.3) are designed to remove exactly this
    amplification. *)
