(** Standalone phase-king Byzantine agreement over the whole system —
    the deterministic baseline of Figure 1(b).

    Wraps {!Fba_aeba.Phase_king} as an engine protocol with all n nodes
    as members. Tolerates t < n/3, runs 4·(⌊(n−1)/3⌋+1) rounds and
    exchanges Θ(n²) strings per phase — i.e. Θ(n³·|s|) total bits: the
    deterministic cost wall (cf. [FL82]'s t+1 round lower bound and
    [DR85]'s Ω(n²) message bound) that motivates the paper's randomized
    approach. Only feasible at small n. *)

type config

val make_config : n:int -> initial:(int -> string) -> str_bits:int -> config

include Fba_sim.Protocol.S with type config := config

val total_rounds : config -> int
