(** Load-balanced O~(√n) almost-everywhere→everywhere baseline — the
    KLST11 comparison row of Figure 1(a) (DESIGN.md substitution 2).

    Nodes sit on a ⌈√n⌉-wide grid. Each node broadcasts its candidate
    along its row; every node then forwards its row's majority value
    along its column; finally each node adopts the majority of the row
    majorities it received. Every node sends and receives Θ(√n)
    strings — perfectly load-balanced, O(√n·log n) bits per node, O(1)
    rounds. Correct as long as a majority of rows deliver a majority-
    knowledgeable sample, which holds w.h.p. under the paper's
    (1/2+ε)-knowledge precondition with random corruption. *)

type config

val make_config : n:int -> initial:(int -> string) -> str_bits:int -> config
(** [initial] gives each node's starting candidate; [str_bits] is the
    wire size of one candidate (for accounting). *)

include Fba_sim.Protocol.S with type config := config

val total_rounds : int
(** Rounds after which every correct node has decided (5). *)
