(** Random-push almost-everywhere→everywhere — the [KS09] shape
    ("From almost everywhere to everywhere: Byzantine agreement with
    O~(n^{3/2}) bits"), the state of the art the paper's related-work
    section credits before [KLST11].

    Every node pushes its candidate to Θ(√n·log n) uniformly random
    nodes; every node adopts the plurality of what it received. Total
    O~(n^{3/2}) bits — O~(√n) per node like the grid baseline — but
    {e not} load-balanced on the receive side: nothing stops the
    adversary from pointing all its pushes at chosen victims, which
    {!flood_adversary} does. AER's Input-Quorum membership filter
    (a receiver only counts pushes from I(s, x)) is precisely the
    repair for this. *)

type config

val make_config :
  ?fanout:int -> n:int -> initial:(int -> string) -> str_bits:int -> unit -> config
(** [fanout] defaults to ⌈√n⌉·⌈log₂ n⌉ / 4, at least 2·⌈log₂ n⌉+1. *)

include Fba_sim.Protocol.S with type config := config

val total_rounds : int
(** 3: push, adopt. *)

val flood_adversary :
  ?victims:int -> config -> corrupted:Fba_stdx.Bitset.t -> msg Fba_sim.Sync_engine.adversary
(** Every corrupted node aims its full push budget at [victims]
    (default 4) chosen correct nodes, flooding their mailboxes with
    junk candidates: with t = Θ(n) Byzantine and fanout f, each victim
    receives Θ(n·f/victims) strings — a receive-side hot spot no
    honest parameter choice prevents. *)
