(** Randomized binary Byzantine agreement (Ben-Or '83), optionally with
    a common coin (Rabin '83) — the randomized baselines of Figure 1(b).

    Each logical round has a report phase and a proposal phase. A node
    decides b on ≥ 2t+1 matching proposals, adopts b on ≥ t+1, and
    otherwise flips a coin:
    - [`Local]: private coin — Ben-Or. Expected constant rounds only
      for t = O(√n); against a vote-splitting adversary the round count
      grows quickly with t, which is why it is not competitive in the
      paper's Figure 1(b).
    - [`Common seed]: all correct nodes share the flip — Rabin-style.
      O(1) expected rounds for t < n/4 but Θ(n²) messages per round;
      stands in for [PR10]'s private-channel protocol (DESIGN.md
      substitution 3), whose secret-sharing exactly implements such a
      coin.

    Agreement is on a bit; outputs are ["0"]/["1"]. *)

type coin = [ `Local | `Common of int64 ]

type config

val make_config :
  ?max_logical_rounds:int ->
  n:int ->
  t_assumed:int ->
  coin:coin ->
  inputs:(int -> bool) ->
  unit ->
  config
(** [t_assumed] is the resilience the thresholds are computed for;
    requires [5·t_assumed < n] (the classic Ben-Or bound, which also
    satisfies Rabin's t < n/4). [max_logical_rounds] defaults to 64. *)

include Fba_sim.Protocol.S with type config := config

val max_engine_rounds : config -> int

val logical_rounds_used : state -> int
(** Logical rounds until this node decided (or ran so far). *)

val split_vote_adversary :
  config -> corrupted:Fba_stdx.Bitset.t -> msg Fba_sim.Sync_engine.adversary
(** The classic anti-Ben-Or strategy: corrupted nodes report 0 to one
    half of the network and 1 to the other and never propose, keeping
    honest counts straddling the threshold so that private coins must
    align by luck. Ineffective against the common coin. *)
