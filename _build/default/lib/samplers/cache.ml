type t = {
  sampler : Sampler.t;
  sx : (string * int, int array) Hashtbl.t;
  xr : (int * int64, int array) Hashtbl.t;
}

let create sampler = { sampler; sx = Hashtbl.create 4096; xr = Hashtbl.create 4096 }

let sampler t = t.sampler

let quorum_sx t ~s ~x =
  let key = (s, x) in
  match Hashtbl.find_opt t.sx key with
  | Some q -> q
  | None ->
    let q = Sampler.quorum_sx t.sampler ~s ~x in
    Hashtbl.add t.sx key q;
    q

let quorum_xr t ~x ~r =
  let key = (x, r) in
  match Hashtbl.find_opt t.xr key with
  | Some q -> q
  | None ->
    let q = Sampler.quorum_xr t.sampler ~x ~r in
    Hashtbl.add t.xr key q;
    q

let mem_array a y =
  let rec loop i = i < Array.length a && (a.(i) = y || loop (i + 1)) in
  loop 0

let mem_sx t ~s ~x ~y = mem_array (quorum_sx t ~s ~x) y
let mem_xr t ~x ~r ~y = mem_array (quorum_xr t ~x ~r) y
