(** Monte-Carlo validation of the sampler properties the analysis
    relies on (Lemma 1, Lemma 2 Property 1, Lemmas 4–5).

    The paper proves these properties exist for *some* sampler family;
    our samplers are keyed hashes, so we measure that the properties
    hold for the concrete instantiation — both on random inputs and
    under adversarial search, which is exactly the power a
    full-information adversary has against a public hash. *)

open Fba_stdx

val bad_quorum_fraction : Sampler.t -> good:Bitset.t -> s:string -> float
(** Fraction of nodes [x] whose quorum [I(s, x)] does {e not} contain a
    strict majority of [good] nodes. Lemmas 4–5 need this to be O(δ)
    for every string. *)

val property1_estimate :
  Sampler.t -> good:Bitset.t -> samples:int -> rng:Prng.t -> float
(** Lemma 2, Property 1: fraction of uniformly random (x, r) pairs
    whose poll list [J(x, r)] contains a minority of [good] nodes.
    Should be a vanishing fraction when |good| ≥ (1/2 + ε)·n. *)

val worst_string_search :
  Sampler.t -> good:Bitset.t -> rng:Prng.t -> tries:int -> bits:int -> string * float
(** Adversarial search for the candidate string maximizing
    {!bad_quorum_fraction}: tries [tries] random strings of [bits] bits
    and returns the worst one with its bad fraction. Models the
    adversary contributing 1/3 − ε of gstring's bits (Lemma 5): it can
    pick its share after seeing the sampler, but only over polynomially
    many candidates. *)

val worst_completion_search :
  Sampler.t ->
  good:Bitset.t ->
  rng:Prng.t ->
  tries:int ->
  prefix:string ->
  free_bits:int ->
  string * float
(** Lemma 5's actual adversary model: gstring's first bits are uniform
    and fixed (the honest 2/3+ε), the adversary chooses only the last
    [free_bits] (its 1/3−ε share), searching for a completion whose
    push quorums are bad somewhere. Returns the worst completion found
    and its {!bad_quorum_fraction}. [tries] should be at most
    2^[free_bits] to be meaningful. *)

val overload_factor : Sampler.t -> strings:string list -> float
(** Max over the given strings of the worst per-node inverse load of I,
    divided by d. Lemma 1's non-overload condition says this stays
    bounded by a constant [a]. *)

val seizable_fraction : Sampler.t -> s:string -> budget:int -> float
(** The fraction of quorums {I(s, x)}_x an adversary controls a strict
    majority of after greedily corrupting the [budget] most
    quorum-covering nodes. The positive half of Section 2.2's argument:
    for a (θ,δ)-sampler this stays near zero until the budget
    approaches n/2, whereas structured deterministic constructions
    ({!Affine_sampler}) are seized almost immediately. *)
