(** The random-digraph model of Section 4.1 (Figure 3), used to
    validate Lemma 2 Property 2 empirically.

    Vertices are [n] unlabeled nodes plus labeled vertices (x, r); a
    labeled vertex has d out-edges, its poll list J(x, r). For a set L
    of labeled vertices with at most one label per node,
    [∂L = { edges from L into [n] \ L? }] where
    [L? = { x | some (x, r) ∈ L }]. Property 2 says every such L of
    size up to n/log n has [|∂L| > (2/3)·d·|L|] — a boundary-expansion
    (isoperimetric) bound preventing the adversary from "cornering" a
    set of nodes whose poll lists stay inside the set.

    We check the bound for uniformly random L and for a greedy
    adversarial L that actively tries to minimize the boundary — the
    strongest polynomial-effort attack on a public hash. *)

open Fba_stdx

type labeled = { node : int; label : int64 }
(** A labeled vertex (x, r) ∈ [n] × R. *)

val boundary_ratio : Sampler.t -> labeled array -> float
(** [boundary_ratio sampler l] is |∂L| / (d·|L|). Property 2 demands
    this exceed 2/3. Requires at most one entry per node; raises
    [Invalid_argument] otherwise or on the empty array. Edge
    multiplicity counts, as in the paper's model. *)

val random_l : Sampler.t -> rng:Prng.t -> size:int -> labeled array
(** [size] distinct nodes with uniformly random labels. *)

val greedy_adversarial_l :
  Sampler.t -> rng:Prng.t -> size:int -> labels_per_step:int -> labeled array
(** Greedy cornering: grow L one vertex at a time, each step trying
    [labels_per_step] random labels on the candidate nodes most covered
    by the current poll lists, keeping the pair that minimizes the
    boundary increase. This is the attack shape of Lemma 6 (chains of
    overloaded nodes). *)
