(** A deliberately naive {e deterministic} quorum construction, for the
    negative half of Section 2.2's argument.

    The paper motivates samplers by eliminating the two naive designs:
    "if nodes choose deterministically the nodes they contact, either
    there are a linear number of them ... or there are few enough for
    the adversary to corrupt a majority". This module is that second
    strawman made concrete: quorum(s, x) is an arithmetic progression
    [{ a·(h(s)+x) + b·k mod n | k < d }] — structured, cheap, and
    catastrophically seizable: all quorums are unions of O(n/gcd(b,n))
    residue classes, so corrupting one stride's worth of nodes corrupts
    a majority of {e many} quorums at once. {!seizable_fraction}
    measures it; the experiment in [Exp_samplers] contrasts it with the
    hash sampler under equal corruption budgets. *)

type t

val create : n:int -> d:int -> stride:int -> t
(** Raises [Invalid_argument] unless [1 <= d <= n] and
    [1 <= stride < n]. *)

val quorum_sx : t -> s:string -> x:int -> int array
(** d distinct members (the progression; wraps modulo n). *)

val seizable_fraction : t -> budget:int -> float
(** The fraction of all n quorums (over a fixed s) that an adversary
    corrupting its best [budget] nodes controls a strict majority of —
    computed by greedily corrupting the most quorum-covering nodes.
    For the hash sampler the analogous number is ~0 until the budget
    nears n/2; here it grows linearly almost immediately. *)
