open Fba_stdx

type labeled = { node : int; label : int64 }

let check_distinct_nodes l =
  let seen = Hashtbl.create (Array.length l) in
  Array.iter
    (fun { node; _ } ->
      if Hashtbl.mem seen node then
        invalid_arg "Digraph: at most one label per node";
      Hashtbl.add seen node ())
    l

let boundary_ratio sampler l =
  if Array.length l = 0 then invalid_arg "Digraph.boundary_ratio: empty L";
  check_distinct_nodes l;
  let n = Sampler.n sampler in
  let in_lstar = Bitset.create n in
  Array.iter (fun { node; _ } -> Bitset.add in_lstar node) l;
  let boundary = ref 0 in
  Array.iter
    (fun { node; label } ->
      let q = Sampler.quorum_xr sampler ~x:node ~r:label in
      Array.iter (fun y -> if not (Bitset.mem in_lstar y) then incr boundary) q)
    l;
  float_of_int !boundary /. float_of_int (Sampler.d sampler * Array.length l)

let random_l sampler ~rng ~size =
  let n = Sampler.n sampler in
  if size < 1 || size > n then invalid_arg "Digraph.random_l: bad size";
  let nodes = Prng.sample_without_replacement rng ~n ~k:size in
  Array.map (fun node -> { node; label = Prng.int64 rng }) nodes

let greedy_adversarial_l sampler ~rng ~size ~labels_per_step =
  let n = Sampler.n sampler in
  if size < 1 || size > n then invalid_arg "Digraph.greedy_adversarial_l: bad size";
  if labels_per_step < 1 then invalid_arg "Digraph.greedy_adversarial_l: bad labels_per_step";
  let in_lstar = Bitset.create n in
  (* coverage.(y) = how many edges of the current L point at y; nodes
     with high coverage are the best candidates to absorb next, since
     their incoming edges stop counting toward the boundary. *)
  let coverage = Array.make n 0 in
  let chosen = ref [] in
  let add_vertex node label =
    Bitset.add in_lstar node;
    chosen := { node; label } :: !chosen;
    Array.iter
      (fun y -> coverage.(y) <- coverage.(y) + 1)
      (Sampler.quorum_xr sampler ~x:node ~r:label)
  in
  (* Seed with a random vertex. *)
  add_vertex (Prng.int rng n) (Prng.int64 rng);
  for _ = 2 to size do
    (* Candidate nodes: the most-covered nodes not yet in L?. *)
    let best_node = ref (-1) and best_cov = ref (-1) in
    for y = 0 to n - 1 do
      if (not (Bitset.mem in_lstar y)) && coverage.(y) > !best_cov then begin
        best_cov := coverage.(y);
        best_node := y
      end
    done;
    let node = !best_node in
    (* Among random labels, keep the one whose poll list points most
       inside the current L? (minimizing new boundary edges). *)
    let best_label = ref (Prng.int64 rng) and best_inside = ref (-1) in
    for _ = 1 to labels_per_step do
      let r = Prng.int64 rng in
      let q = Sampler.quorum_xr sampler ~x:node ~r in
      let inside =
        Array.fold_left
          (fun acc y -> if Bitset.mem in_lstar y || y = node then acc + 1 else acc)
          0 q
      in
      if inside > !best_inside then begin
        best_inside := inside;
        best_label := r
      end
    done;
    add_vertex node !best_label
  done;
  Array.of_list (List.rev !chosen)
