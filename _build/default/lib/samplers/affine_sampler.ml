open Fba_stdx

type t = { n : int; d : int; stride : int }

let create ~n ~d ~stride =
  if d < 1 || d > n then invalid_arg "Affine_sampler.create: need 1 <= d <= n";
  if stride < 1 || stride >= n then invalid_arg "Affine_sampler.create: need 1 <= stride < n";
  { n; d; stride }

let quorum_sx t ~s ~x =
  let base = Hash64.to_range (Hash64.hash_string ~seed:0x1234L s) t.n in
  (* The progression may revisit residues when gcd(stride, n) is large;
     collect distinct members by walking until d are found (always
     terminates within n steps since consecutive offsets differ). *)
  let out = Array.make t.d (-1) in
  let mem v k =
    let rec loop i = i < k && (out.(i) = v || loop (i + 1)) in
    loop 0
  in
  let filled = ref 0 in
  let k = ref 0 in
  while !filled < t.d do
    let v = (base + x + (!k * t.stride) + !k) mod t.n in
    incr k;
    if not (mem v !filled) then begin
      out.(!filled) <- v;
      incr filled
    end
  done;
  out

let count_seized t quorums corrupted =
  let majority = Sampler.majority_threshold t.d in
  let seized = ref 0 in
  Array.iter (fun q -> if Bitset.count_in corrupted q >= majority then incr seized) quorums;
  float_of_int !seized /. float_of_int t.n

(* Corrupt the most quorum-covering nodes. Ineffective against this
   construction (coverage is uniform) but kept as the generic
   baseline strategy. *)
let greedy_attack t quorums ~budget =
  let coverage = Array.make t.n 0 in
  Array.iter (Array.iter (fun y -> coverage.(y) <- coverage.(y) + 1)) quorums;
  let order = Array.init t.n (fun i -> i) in
  Array.sort (fun a b -> compare coverage.(b) coverage.(a)) order;
  let corrupted = Bitset.create t.n in
  for i = 0 to budget - 1 do
    Bitset.add corrupted order.(i)
  done;
  count_seized t quorums corrupted

(* The structural attack the construction invites: quorums are windows
   of one arithmetic progression, so corrupting ⌈d/2⌉-blocks of
   progression-consecutive nodes seizes every quorum whose window
   covers a block — the adversary knows the quorums exactly, which is
   Section 2.2's point about deterministic choices. *)
let block_attack t quorums ~budget =
  let step = (t.stride + 1) mod t.n in
  let majority = Sampler.majority_threshold t.d in
  let corrupted = Bitset.create t.n in
  let used = ref 0 in
  let pos = ref 0 in
  (* Blocks of [majority] consecutive progression elements, separated by
     (d - majority) untouched ones. *)
  while !used < budget do
    for j = 0 to majority - 1 do
      if !used < budget then begin
        let node = (!pos + (j * step)) mod t.n in
        if not (Bitset.mem corrupted node) then begin
          Bitset.add corrupted node;
          incr used
        end
      end
    done;
    pos := (!pos + (t.d * step)) mod t.n;
    if !pos = 0 then pos := 1 (* avoid cycling forever on degenerate strides *)
  done;
  count_seized t quorums corrupted

let seizable_fraction t ~budget =
  if budget < 0 || budget > t.n then invalid_arg "Affine_sampler.seizable_fraction";
  if budget = 0 then 0.0
  else begin
    let quorums = Array.init t.n (fun x -> quorum_sx t ~s:"s" ~x) in
    max (greedy_attack t quorums ~budget) (block_attack t quorums ~budget)
  end
