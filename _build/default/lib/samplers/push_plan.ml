type entry = { inverse : int array array; load : int array }

type t = { sampler : Sampler.t; memo : (string, entry) Hashtbl.t }

let create ~sampler = { sampler; memo = Hashtbl.create 17 }

let sampler t = t.sampler

let build t s =
  let n = Sampler.n t.sampler in
  let buckets = Array.make n [] in
  let load = Array.make n 0 in
  for x = 0 to n - 1 do
    let q = Sampler.quorum_sx t.sampler ~s ~x in
    Array.iter
      (fun y ->
        buckets.(y) <- x :: buckets.(y);
        load.(y) <- load.(y) + 1)
      q
  done;
  let inverse = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
  { inverse; load }

let entry t s =
  match Hashtbl.find_opt t.memo s with
  | Some e -> e
  | None ->
    let e = build t s in
    Hashtbl.add t.memo s e;
    e

let targets t ~s ~y = (entry t s).inverse.(y)

let quorum t ~s ~x = Sampler.quorum_sx t.sampler ~s ~x

let max_load t ~s = Array.fold_left max 0 (entry t s).load

let distinct_strings t = Hashtbl.length t.memo
