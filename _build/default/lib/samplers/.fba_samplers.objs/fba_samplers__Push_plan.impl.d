lib/samplers/push_plan.ml: Array Hashtbl List Sampler
