lib/samplers/affine_sampler.ml: Array Bitset Fba_stdx Hash64 Sampler
