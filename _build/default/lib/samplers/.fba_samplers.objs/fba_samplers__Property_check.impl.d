lib/samplers/property_check.ml: Array Bitset Bytes Char Fba_stdx List Prng Push_plan Sampler
