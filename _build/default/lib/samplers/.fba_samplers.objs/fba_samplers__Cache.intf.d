lib/samplers/cache.mli: Sampler
