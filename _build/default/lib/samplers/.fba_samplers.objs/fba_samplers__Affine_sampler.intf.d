lib/samplers/affine_sampler.mli:
