lib/samplers/property_check.mli: Bitset Fba_stdx Prng Sampler
