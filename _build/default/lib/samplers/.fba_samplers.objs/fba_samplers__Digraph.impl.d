lib/samplers/digraph.ml: Array Bitset Fba_stdx Hashtbl List Prng Sampler
