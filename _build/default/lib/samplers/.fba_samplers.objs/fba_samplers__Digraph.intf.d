lib/samplers/digraph.mli: Fba_stdx Prng Sampler
