lib/samplers/sampler.mli:
