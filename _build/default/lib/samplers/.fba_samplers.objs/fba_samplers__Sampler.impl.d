lib/samplers/sampler.ml: Array Fba_stdx Hash64 Intx
