lib/samplers/cache.ml: Array Hashtbl Sampler
