lib/samplers/push_plan.mli: Sampler
