(** Memoized quorum evaluation.

    Protocol handlers check quorum membership (e.g. "is the sender in
    H(s, x)?") millions of times per execution, but over a small set of
    distinct keys: one (s, x) per string and node, one (x, r) per issued
    poll. Caching the quorum arrays turns each check into a d-element
    scan. Purely an evaluation cache — results are identical to calling
    {!Sampler} directly. *)

type t

val create : Sampler.t -> t

val sampler : t -> Sampler.t

val quorum_sx : t -> s:string -> x:int -> int array
(** Cached {!Sampler.quorum_sx}. The returned array is shared; callers
    must not mutate it. *)

val mem_sx : t -> s:string -> x:int -> y:int -> bool

val quorum_xr : t -> x:int -> r:int64 -> int array
(** Cached {!Sampler.quorum_xr}; same sharing caveat. *)

val mem_xr : t -> x:int -> r:int64 -> y:int -> bool
