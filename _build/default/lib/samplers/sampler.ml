open Fba_stdx

type t = { seed : int64; n : int; d : int }

let create ~seed ~n ~d =
  if d < 1 || d > n then invalid_arg "Sampler.create: need 1 <= d <= n";
  { seed; n; d }

let n t = t.n
let d t = t.d

let default_d ~n =
  let d = 4 * Intx.ceil_log2 (max 2 n) in
  Intx.clamp ~lo:1 ~hi:n d

(* Draw the quorum for an absorbed key state: counter-mode hashing with
   rejection of duplicates. Deterministic; terminates because d <= n. *)
let quorum_of_state t h0 =
  let out = Array.make t.d (-1) in
  let mem_prefix v k =
    let rec loop i = i < k && (out.(i) = v || loop (i + 1)) in
    loop 0
  in
  let k = ref 0 in
  let attempt = ref 0 in
  while !k < t.d do
    let v = Hash64.to_range (Hash64.finish (Hash64.add_int h0 !attempt)) t.n in
    incr attempt;
    if not (mem_prefix v !k) then begin
      out.(!k) <- v;
      incr k
    end
  done;
  out

let state_sx t ~s ~x =
  Hash64.add_int (Hash64.add_string (Hash64.add_int (Hash64.init t.seed) 0x53) s) x

let state_xr t ~x ~r =
  Hash64.add_int64 (Hash64.add_int (Hash64.add_int (Hash64.init t.seed) 0x4a) x) r

let quorum_sx t ~s ~x = quorum_of_state t (state_sx t ~s ~x)
let quorum_xr t ~x ~r = quorum_of_state t (state_xr t ~x ~r)

let mem_array a y = Array.exists (fun v -> v = y) a

let mem_sx t ~s ~x ~y = mem_array (quorum_sx t ~s ~x) y
let mem_xr t ~x ~r ~y = mem_array (quorum_xr t ~x ~r) y

let majority_threshold k = (k / 2) + 1
