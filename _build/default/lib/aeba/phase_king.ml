type msg = Value of string | King of string

(* Four local rounds per phase, leaving one round of slack for the
   engine's send-at-r/deliver-at-r+1 lag:
     4k    broadcast Value
     4k+1  (values delivered, tallied)
     4k+2  the phase king broadcasts its plurality
     4k+3  (king value delivered)
     4k+4  apply the king rule, start the next phase (or finish). *)

type phase_tally = {
  mutable seen_value : int list;  (* members already counted this phase *)
  counts : (string, int) Hashtbl.t;
  mutable king_value : string option;
}

type t = {
  members : int array;
  member_set : (int, int) Hashtbl.t;  (* id -> slot *)
  me : int;
  faults : int;  (* tolerated faults: largest t with 3t < |members| *)
  mutable value : string;
  mutable cur_phase : int;
  mutable tally : phase_tally;
  mutable done_ : bool;
}

let fresh_tally () = { seen_value = []; counts = Hashtbl.create 8; king_value = None }

let create ~members ~me ~initial =
  if Array.length members = 0 then invalid_arg "Phase_king.create: empty member set";
  let member_set = Hashtbl.create (Array.length members) in
  Array.iteri (fun slot id -> if not (Hashtbl.mem member_set id) then Hashtbl.add member_set id slot) members;
  if not (Hashtbl.mem member_set me) then invalid_arg "Phase_king.create: me not a member";
  {
    members;
    member_set;
    me;
    faults = (Array.length members - 1) / 3;
    value = initial;
    cur_phase = 0;
    tally = fresh_tally ();
    done_ = false;
  }

let phases t = t.faults + 1

let rounds_needed t = 4 * phases t

let king_of t phase = t.members.(phase mod Array.length t.members)

let broadcast t m = Array.to_list (Array.map (fun id -> (id, m)) t.members)

(* Plurality with deterministic (lexicographic) tie-breaking. *)
let plurality t =
  Hashtbl.fold
    (fun v c best ->
      match best with
      | Some (bv, bc) when c < bc || (c = bc && v >= bv) -> Some (bv, bc)
      | _ -> Some (v, c))
    t.tally.counts None

let apply_king_rule t =
  let m = Array.length t.members in
  let keep_threshold = m - t.faults in
  match plurality t with
  | None ->
    (* Nothing received (all peers faulty): keep the current value. *)
    ()
  | Some (maj, cnt) ->
    if cnt >= keep_threshold then t.value <- maj
    else begin
      match t.tally.king_value with
      | Some kv -> t.value <- kv
      | None -> t.value <- maj (* faulty king stayed silent *)
    end

let on_round t ~round =
  if t.done_ || round < 0 then []
  else if round >= rounds_needed t then begin
    if not t.done_ then begin
      apply_king_rule t;
      t.done_ <- true
    end;
    []
  end
  else begin
    match round mod 4 with
    | 0 ->
      if round > 0 then begin
        apply_king_rule t;
        t.cur_phase <- round / 4;
        t.tally <- fresh_tally ()
      end;
      broadcast t (Value t.value)
    | 2 -> if king_of t t.cur_phase = t.me then
        (match plurality t with
        | Some (maj, _) -> broadcast t (King maj)
        | None -> broadcast t (King t.value))
      else []
    | _ -> []
  end

let on_receive t ~round:_ ~src msg =
  if (not t.done_) && Hashtbl.mem t.member_set src then begin
    match msg with
    | Value v ->
      if not (List.mem src t.tally.seen_value) then begin
        t.tally.seen_value <- src :: t.tally.seen_value;
        Hashtbl.replace t.tally.counts v
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.tally.counts v))
      end
    | King v ->
      if src = king_of t t.cur_phase && t.tally.king_value = None then
        t.tally.king_value <- Some v
  end

let current t = t.value

let finished t ~round = round >= rounds_needed t

let output t = if t.done_ then Some t.value else None
