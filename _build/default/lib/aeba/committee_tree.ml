open Fba_stdx

type t = {
  n : int;
  m : int;
  levels : int;
  groups : int;
  sampler : Fba_samplers.Sampler.t;
  by_node : (int * int) list array;  (* node -> committee coordinates *)
}

let committee_key ~level ~index = Int64.of_int ((level * 0x100000) + index)

let committee_raw sampler ~level ~index =
  Fba_samplers.Sampler.quorum_xr sampler ~x:level ~r:(committee_key ~level ~index)

let build ~n ~seed ~group_size ~committee_size =
  if n < 1 then invalid_arg "Committee_tree.build: n < 1";
  if group_size < 1 || committee_size < 1 then
    invalid_arg "Committee_tree.build: non-positive sizes";
  let m = Intx.clamp ~lo:1 ~hi:n committee_size in
  let target_groups = max 1 (n / group_size) in
  let levels = if target_groups <= 1 then 0 else Intx.ilog2 target_groups in
  let groups = 1 lsl levels in
  let sampler =
    Fba_samplers.Sampler.create
      ~seed:(Hash64.finish (Hash64.add_int (Hash64.init seed) 0x77ee))
      ~n ~d:m
  in
  let by_node = Array.make n [] in
  for level = 0 to levels do
    for index = 0 to (1 lsl level) - 1 do
      Array.iter
        (fun id -> by_node.(id) <- (level, index) :: by_node.(id))
        (committee_raw sampler ~level ~index)
    done
  done;
  Array.iteri (fun i l -> by_node.(i) <- List.rev l) by_node;
  { n; m; levels; groups; sampler; by_node }

let n t = t.n
let committee_size t = t.m
let levels t = t.levels
let group_count t = t.groups

let check_coords t ~level ~index =
  if level < 0 || level > t.levels || index < 0 || index >= 1 lsl level then
    invalid_arg "Committee_tree: committee coordinates out of range"

let committee t ~level ~index =
  check_coords t ~level ~index;
  committee_raw t.sampler ~level ~index

let is_member t ~level ~index id =
  check_coords t ~level ~index;
  Array.exists (fun v -> v = id) (committee_raw t.sampler ~level ~index)

let root t = committee t ~level:0 ~index:0

let group_of t id =
  if id < 0 || id >= t.n then invalid_arg "Committee_tree.group_of: node out of range";
  id mod t.groups

let group_members t g =
  if g < 0 || g >= t.groups then invalid_arg "Committee_tree.group_members: out of range";
  let count = ((t.n - 1 - g) / t.groups) + 1 in
  Array.init count (fun i -> g + (i * t.groups))

let memberships t id =
  if id < 0 || id >= t.n then invalid_arg "Committee_tree.memberships: node out of range";
  t.by_node.(id)

let parent t ~level ~index =
  check_coords t ~level ~index;
  if level = 0 then None else Some (level - 1, index / 2)

let children t ~level ~index =
  check_coords t ~level ~index;
  if level >= t.levels then []
  else [ (level + 1, 2 * index); (level + 1, (2 * index) + 1) ]
