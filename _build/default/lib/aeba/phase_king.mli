(** Phase-king Byzantine agreement (Berman–Garay–Perry) as a reusable
    state machine.

    Deterministic agreement on a string among a fixed member set, for
    [t < members/3] faults, in [t+1] phases of two rounds each. Used in
    two places:
    - inside {!Aeba}, where each committee of Θ(log n) nodes agrees on
      the contributions forming gstring;
    - as the standalone deterministic baseline of Figure 1(b)
      ({!Fba_baselines.Phase_king_proto}), showing the Θ(t) rounds and
      Θ(n³) total bits the randomized protocols escape.

    The machine is driven by an embedding protocol: call {!on_round}
    with consecutive local round numbers starting at 0 (the embedder
    translates global rounds), feed incoming messages to {!on_receive},
    and read {!output} once {!rounds_needed} local rounds have begun.

    Round structure per phase k (0-based):
    - local round 2k: every member broadcasts its current value;
    - local round 2k+1: everyone tallies; the phase's king (the
      (k mod members)-th member) broadcasts its plurality value;
    - start of round 2k+2: members with a ≥ (2/3)·members plurality
      keep it, others adopt the king's value.

    Agreement: any phase whose king is correct aligns all correct
    members, and a (2/3)-locked value can never change afterwards.
    Validity: if all correct members start with v, every tally sees
    ≥ members − t > (2/3)·members copies of v, so v is locked
    throughout. *)

type t

type msg =
  | Value of string  (** per-phase broadcast of the current value *)
  | King of string  (** the phase king's tie-breaking proposal *)

val create : members:int array -> me:int -> initial:string -> t
(** [members] lists the participating node identities (order is common
    knowledge and fixes the king schedule); [me] must appear in it.
    Tolerates [t = ⌈members/3⌉ − 1] faults over
    [t + 1] phases. *)

val rounds_needed : t -> int
(** Local rounds the machine runs: [2·(t+1)]. After calling
    {!on_round} with this round number minus one and delivering that
    round's messages, {!output} is final. *)

val on_round : t -> round:int -> (int * msg) list
(** Messages (destination, payload) this member sends at the start of
    local [round]. Rounds must be fed consecutively from 0. *)

val on_receive : t -> round:int -> src:int -> msg -> unit
(** Deliver a message during local [round]. Non-members and duplicate
    senders are ignored. *)

val current : t -> string
(** The member's current value (the decision once the machine has
    finished). *)

val finished : t -> round:int -> bool
(** True once [round >= rounds_needed t]. *)

val output : t -> string option
(** [Some (current t)] once finished (tracked internally), else
    [None]. *)
