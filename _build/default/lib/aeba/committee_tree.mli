(** The committee tree used by the almost-everywhere agreement
    substrate (our KSSV06-shaped construction, DESIGN.md substitution 1).

    Nodes are partitioned into G groups (node [id] belongs to group
    [id mod G], G a power of two). A complete binary tree of committees
    sits on top: level 0 holds the single root committee, level ℓ holds
    2^ℓ committees, and the 2^L = G leaf committees each serve one
    group. Every committee is a pseudo-random sample of [m] distinct
    nodes drawn from the whole system via the shared seed.

    The root committee generates gstring; each committee then relays it
    to its two children, whose members adopt the plurality of what the
    parent's members sent; leaf committees finally inform their group.
    A committee with a corrupted majority disconnects its subtree — the
    source of the "almost" in almost-everywhere. *)

type t

val build : n:int -> seed:int64 -> group_size:int -> committee_size:int -> t
(** [group_size] is a target: the number of groups is rounded to a
    power of two (at least 1); [committee_size] is clamped to [n].
    Raises [Invalid_argument] on non-positive arguments or [n < 1]. *)

val n : t -> int

val committee_size : t -> int

val levels : t -> int
(** L: leaf committees live at level L, the root at level 0. *)

val group_count : t -> int
(** G = 2^L. *)

val committee : t -> level:int -> index:int -> int array
(** Members of committee (level, index); deterministic in the seed.
    Raises [Invalid_argument] for out-of-range coordinates. *)

val is_member : t -> level:int -> index:int -> int -> bool

val root : t -> int array
(** [committee t ~level:0 ~index:0]. *)

val group_of : t -> int -> int
(** The group (= leaf committee index) that informs this node. *)

val group_members : t -> int -> int array
(** All nodes of a group, ascending. *)

val memberships : t -> int -> (int * int) list
(** [(level, index)] pairs of every committee containing the node.
    Precomputed; O(1) lookup. *)

val parent : t -> level:int -> index:int -> (int * int) option
val children : t -> level:int -> index:int -> (int * int) list
