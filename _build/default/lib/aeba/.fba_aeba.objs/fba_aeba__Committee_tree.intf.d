lib/aeba/committee_tree.mli:
