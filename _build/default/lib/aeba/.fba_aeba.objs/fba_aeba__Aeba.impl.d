lib/aeba/aeba.ml: Array Bytes Committee_tree Fba_sim Fba_stdx Format Hashtbl Intx List Option Phase_king Prng Stats String
