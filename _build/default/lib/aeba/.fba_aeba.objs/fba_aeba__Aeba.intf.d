lib/aeba/aeba.mli: Committee_tree Fba_sim Phase_king
