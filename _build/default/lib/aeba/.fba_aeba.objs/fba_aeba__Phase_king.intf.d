lib/aeba/phase_king.mli:
