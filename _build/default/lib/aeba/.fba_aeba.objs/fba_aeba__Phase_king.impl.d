lib/aeba/phase_king.ml: Array Hashtbl List Option
