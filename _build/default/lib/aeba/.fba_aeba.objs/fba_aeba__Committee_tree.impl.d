lib/aeba/committee_tree.ml: Array Fba_samplers Fba_stdx Hash64 Int64 Intx List
