(** Corruption-set construction, including the {e adaptive} choices the
    paper's model rules out.

    The paper (Section 2.1, after [LSP82]) assumes a non-adaptive
    adversary: corrupt nodes are chosen before the execution — in
    particular, independently of the public sampler seeds' interaction
    with gstring. These helpers build corruption sets that {e violate}
    that assumption, to measure exactly what the assumption buys: an
    adversary that corrupts after seeing the samplers can seize the push
    quorum I(gstring, victim) outright and deny the victim gstring
    forever, with the same total corruption budget. *)

open Fba_stdx

val random : n:int -> rng:Prng.t -> count:int -> Bitset.t
(** The paper's model: a uniformly random corruption set. *)

val seize_push_quorum :
  sampler_i:Fba_samplers.Sampler.t ->
  gstring:string ->
  victims:int list ->
  n:int ->
  rng:Prng.t ->
  count:int ->
  Bitset.t
(** Adaptive: corrupt a strict majority of I(gstring, v) for each
    victim [v] (budget permitting — a victim's quorum majority costs
    about d/2 corruptions, minus overlaps), then fill the remaining
    budget uniformly. Victims themselves are never corrupted. Raises
    [Invalid_argument] if [count] exceeds [n]. *)
