(** Byzantine strategies against the almost-everywhere agreement
    substrate.

    The committee machinery is majority-filtered at every hop, so the
    adversary's levers are: biasing its gstring contributions (it
    controls its own slices — the paper's "2/3+ε of the bits uniformly
    random" precondition concedes exactly this), equivocating during
    phase king (exercised by {!Fba_aeba.Phase_king} tests directly),
    and equivocating during dissemination — corrupted committee members
    relaying different strings to different children, trying to grow
    the non-agreeing fraction. *)

open Fba_aeba

type sync = Aeba.msg Fba_sim.Sync_engine.adversary

val silent : corrupted:Fba_stdx.Bitset.t -> sync

val biased_contribution : Aeba.config -> corrupted:Fba_stdx.Bitset.t -> sync
(** Corrupted root members contribute all-zero slices (maximal bias of
    their share of gstring) instead of staying silent. Agreement must
    still hold; the all-zero slices are the visible fingerprint. *)

val equivocating_relay : Aeba.config -> corrupted:Fba_stdx.Bitset.t -> sync
(** Corrupted members of every committee relay per-recipient junk
    strings down the tree (and junk Informs to their groups) at the
    scheduled dissemination rounds. A child accepts the plurality of
    its parent committee, so this only wins where the adversary holds
    a committee majority — the measured almost-everywhere gap. *)
