open Fba_stdx
open Fba_aeba
module Envelope = Fba_sim.Envelope

type sync = Aeba.msg Fba_sim.Sync_engine.adversary

let silent ~corrupted = Fba_sim.Sync_engine.null_adversary ~corrupted

let corrupted_members tree ~corrupted ~level ~index =
  Array.to_list (Committee_tree.committee tree ~level ~index)
  |> List.filter (Bitset.mem corrupted)

let biased_contribution cfg ~corrupted =
  let tree = Aeba.config_tree cfg in
  let slice_bytes = Aeba.config_gstring_bits cfg / 8 / Array.length (Committee_tree.root tree) in
  let act ~round ~observed:_ =
    if round <> 0 then []
    else begin
      let root = Committee_tree.root tree in
      let zeros = String.make (max 1 slice_bytes) '\000' in
      let outs = ref [] in
      Array.iteri
        (fun slot y ->
          if Bitset.mem corrupted y then
            Array.iter
              (fun dst ->
                outs := Envelope.make ~src:y ~dst (Aeba.Contrib { slot; v = zeros }) :: !outs)
              root)
        root;
      !outs
    end
  in
  { Fba_sim.Sync_engine.corrupted; act }

let equivocating_relay cfg ~corrupted =
  let tree = Aeba.config_tree cfg in
  (* Reconstruct the dissemination schedule: committees at level l send
     at t_pk_end + 2l; we recover t_pk_end from the config's round
     budget. *)
  let total = Aeba.total_rounds cfg in
  let levels = Committee_tree.levels tree in
  let t_pk_end = total - (2 * levels) - 2 in
  let junk level index j = Printf.sprintf "equivocation-%d-%d-%d" level index j in
  let act ~round ~observed:_ =
    let outs = ref [] in
    for level = 0 to levels do
      if round = t_pk_end + (2 * level) then
        for index = 0 to (1 lsl level) - 1 do
          let byz = corrupted_members tree ~corrupted ~level ~index in
          List.iter
            (fun y ->
              if level < levels then
                List.iter
                  (fun (cl, ci) ->
                    Array.iteri
                      (fun j dst ->
                        outs :=
                          Envelope.make ~src:y ~dst
                            (Aeba.Relay { level = cl; index = ci; v = junk cl ci j })
                          :: !outs)
                      (Committee_tree.committee tree ~level:cl ~index:ci))
                  (Committee_tree.children tree ~level ~index)
              else
                Array.iteri
                  (fun j dst ->
                    outs :=
                      Envelope.make ~src:y ~dst (Aeba.Inform { v = junk level index j })
                      :: !outs)
                  (Committee_tree.group_members tree index))
            byz
        done
    done;
    !outs
  in
  { Fba_sim.Sync_engine.corrupted; act }
