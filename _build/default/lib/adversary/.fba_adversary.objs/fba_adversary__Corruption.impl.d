lib/adversary/corruption.ml: Array Bitset Fba_samplers Fba_stdx List Prng
