lib/adversary/aer_attacks.mli: Fba_core Fba_sim Msg Scenario
