lib/adversary/aer_attacks.ml: Array Bitset Bytes Fba_core Fba_samplers Fba_sim Fba_stdx Hash64 Hashtbl List Msg Option Params Prng Scenario Schedulers
