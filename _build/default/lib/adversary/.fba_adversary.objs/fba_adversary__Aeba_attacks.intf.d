lib/adversary/aeba_attacks.mli: Aeba Fba_aeba Fba_sim Fba_stdx
