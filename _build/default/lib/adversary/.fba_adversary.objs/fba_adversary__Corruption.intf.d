lib/adversary/corruption.mli: Bitset Fba_samplers Fba_stdx Prng
