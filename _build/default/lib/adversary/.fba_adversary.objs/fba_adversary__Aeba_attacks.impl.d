lib/adversary/aeba_attacks.ml: Aeba Array Bitset Committee_tree Fba_aeba Fba_sim Fba_stdx List Printf String
