lib/adversary/schedulers.mli: Envelope Fba_sim Fba_stdx
