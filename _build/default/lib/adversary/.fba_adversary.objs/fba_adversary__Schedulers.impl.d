lib/adversary/schedulers.ml: Bitset Envelope Fba_sim Fba_stdx Hash64
