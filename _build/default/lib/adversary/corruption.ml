open Fba_stdx

let random ~n ~rng ~count =
  if count < 0 || count > n then invalid_arg "Corruption.random: count out of range";
  Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k:count)

let seize_push_quorum ~sampler_i ~gstring ~victims ~n ~rng ~count =
  if count < 0 || count > n then invalid_arg "Corruption.seize_push_quorum: count out of range";
  let corrupted = Bitset.create n in
  let used = ref 0 in
  let is_victim id = List.mem id victims in
  let corrupt id =
    if !used < count && (not (Bitset.mem corrupted id)) && not (is_victim id) then begin
      Bitset.add corrupted id;
      incr used
    end
  in
  List.iter
    (fun v ->
      let quorum = Fba_samplers.Sampler.quorum_sx sampler_i ~s:gstring ~x:v in
      let majority = Fba_samplers.Sampler.majority_threshold (Array.length quorum) in
      (* Corrupt a strict majority of the victim's push quorum (never a
         victim itself: a corrupted victim proves nothing; overlapping
         quorum members already corrupted count toward the majority). *)
      let taken = ref 0 in
      Array.iter
        (fun y ->
          if !taken < majority && y <> v then begin
            if Bitset.mem corrupted y then incr taken
            else begin
              corrupt y;
              if Bitset.mem corrupted y then incr taken
            end
          end)
        quorum)
    victims;
  (* Spend the rest of the budget uniformly (victims excepted). *)
  let attempts = ref 0 in
  while !used < count && !attempts < 100 * n do
    incr attempts;
    corrupt (Prng.int rng n)
  done;
  corrupted
