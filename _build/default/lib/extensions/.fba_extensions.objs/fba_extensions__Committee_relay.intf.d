lib/extensions/committee_relay.mli: Fba_sim
