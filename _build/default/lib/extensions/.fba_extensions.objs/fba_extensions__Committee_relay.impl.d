lib/extensions/committee_relay.ml: Array Fba_samplers Fba_sim Fba_stdx Format Hash64 Hashtbl Intx List Option
