(** A load-balanced almost-everywhere→everywhere protocol — an
    exploration of the paper's concluding open question ("find the best
    complexity that is achievable by a load-balanced algorithm ... and
    characterize the trade-off between load-balancing and communication
    complexity").

    Construction:
    + a public pseudo-random committee C of size ⌈c·√n⌉ is sampled from
      the shared seed (the adversary is non-adaptive, so w.h.p. a
      (1/2+ε) majority of C is correct and knowledgeable);
    + committee members exchange their candidates all-to-all within C
      and adopt the majority — after this every correct member holds
      gstring w.h.p.;
    + every node x is deterministically assigned k = Θ(log n) relays in
      C ([members[(x + j·step) mod |C|]]); each relay {e pushes} its
      value to its assigned nodes (the assignment is computable by the
      relay, so there are no requests to flood); x adopts the majority
      of the k values it receives.

    Costs per node: committee members send Θ(√n + k·n/√n) = Θ~(√n)
    strings; everyone else receives k = Θ(log n). Total Θ~(n) bits —
    amortized O~(1) like AER — with a {e maximum} per-node load of
    Θ~(√n), against AER's adversarially forceable near-linear maximum
    and the grid protocol's Θ(√n) for {e every} node. So on the
    (amortized, max-load) plane this point dominates the grid baseline
    and trades AER's worst case for a deterministic √n ceiling —
    evidence that the trade-off frontier the paper asks about is
    non-trivial between the two extremes. *)

type config

val make_config :
  ?committee_factor:float ->
  ?relays:int ->
  n:int ->
  seed:int64 ->
  initial:(int -> string) ->
  str_bits:int ->
  unit ->
  config
(** [committee_factor] (default 2.0) scales the √n committee;
    [relays] defaults to [2·⌈log₂ n⌉ + 1]. *)

val committee : config -> int array

include Fba_sim.Protocol.S with type config := config

val total_rounds : int
(** 5: exchange, adopt+relay, adopt. *)
