open Fba_stdx
module Attacks = Fba_adversary.Aer_attacks

let sizes full = if full then [ 128; 256; 512; 1024 ] else [ 64; 128; 256 ]
let seed_count full = if full then 3 else 2

type variant = Grid | Aer_snr | Aer_sr | Aer_async

let variant_name = function
  | Grid -> "grid (KLST11-like)"
  | Aer_snr -> "AER sync non-rushing"
  | Aer_sr -> "AER sync rushing"
  | Aer_async -> "AER async"

let run_variant variant ~n ~seed =
  let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed in
  match variant with
  | Grid -> (Runner.run_grid sc, None)
  | Aer_snr ->
    let r = Runner.run_aer_sync ~mode:`Non_rushing ~adversary:(fun sc -> Attacks.cornering sc) sc in
    (r.Runner.obs, None)
  | Aer_sr ->
    let r = Runner.run_aer_sync ~mode:`Rushing ~adversary:(fun sc -> Attacks.cornering sc) sc in
    (r.Runner.obs, None)
  | Aer_async ->
    let r, norm = Runner.run_aer_async ~adversary:(fun sc -> Attacks.async_cornering sc) sc in
    (r.Runner.obs, Some norm)

(* Time metric: the 95th-percentile decision round among correct nodes
   (robust against the rare sized-out quorum miss that leaves a single
   node undecided), normalized for the async engine so rounds are
   comparable across engines. *)
let time_of (obs : Obs.observation) norm =
  let raw = obs.Obs.p95_decision_round in
  match norm with
  | Some normalized when obs.Obs.rounds > 0 ->
    raw *. normalized /. float_of_int obs.Obs.rounds
  | _ -> raw

let run ?(full = false) ~out () =
  let variants = [ Grid; Aer_snr; Aer_sr; Aer_async ] in
  let measurements = Table.create
      ~columns:
        [
          ("protocol", Table.Left); ("n", Table.Right); ("time", Table.Right);
          ("bits/node", Table.Right); ("max-node bits", Table.Right);
          ("imbalance", Table.Right); ("agreed", Table.Right);
        ]
  in
  (* (variant, n) -> (mean time, mean bits, mean imbalance) *)
  let series = Hashtbl.create 16 in
  List.iter
    (fun variant ->
      List.iter
        (fun n ->
          let per_seed =
            List.map (fun seed -> run_variant variant ~n ~seed) (Runner.seeds (seed_count full))
          in
          let obs_list = List.map fst per_seed in
          let s = Obs.aggregate obs_list in
          let times = List.map (fun (o, norm) -> time_of o norm) per_seed in
          let mean_time = Stats.mean (Array.of_list times) in
          Hashtbl.add series (variant, n)
            (mean_time, s.Obs.mean_bits_per_node, s.Obs.mean_imbalance);
          Table.add_row measurements
            [
              variant_name variant; Table.cell_int n; Table.cell_float mean_time;
              Table.cell_float ~decimals:0 s.Obs.mean_bits_per_node;
              Table.cell_float ~decimals:0 s.Obs.mean_max_sent;
              Table.cell_float s.Obs.mean_imbalance;
              Printf.sprintf "%.3f" s.Obs.mean_agreed;
            ])
        (sizes full))
    variants;
  Printf.fprintf out "## Figure 1(a) — almost-everywhere to everywhere protocols\n\n";
  Printf.fprintf out "### Measurements (byz=%.2f, knowledgeable=%.2f, cornering adversary)\n\n"
    Runner.default_setup.Runner.byzantine_fraction
    Runner.default_setup.Runner.knowledgeable_fraction;
  output_string out (Table.to_markdown measurements);
  (* Growth-class reproduction table. *)
  let growth variant pick =
    let pts =
      List.map (fun n -> let v = Hashtbl.find series (variant, n) in (n, pick v)) (sizes full)
    in
    Stats.Growth.classify (Array.of_list pts)
  in
  let fst3 (a, _, _) = a and snd3 (_, b, _) = b and thd3 (_, _, c) = c in
  let balanced variant =
    let worst =
      List.fold_left (fun acc n -> max acc (thd3 (Hashtbl.find series (variant, n)))) 0.0
        (sizes full)
    in
    if worst < 4.0 then "Yes" else "No"
  in
  let repro = Table.create
      ~columns:
        [
          ("", Table.Left); ("[KLST11] (paper)", Table.Left); ("grid (ours)", Table.Left);
          ("AER SNR (paper)", Table.Left); ("AER SNR (ours)", Table.Left);
          ("AER async (paper)", Table.Left); ("AER async (ours)", Table.Left);
        ]
  in
  let gs v p = Stats.Growth.to_string (growth v p) in
  Table.add_row repro
    [
      "Time"; "O(log^2 n)"; gs Grid (fun v -> fst3 v +. 1.0);
      "O(1)"; gs Aer_snr (fun v -> fst3 v +. 1.0);
      "O(log n/log log n)"; gs Aer_async (fun v -> fst3 v +. 1.0);
    ];
  Table.add_row repro
    [
      "Bits"; "O~(sqrt n)"; gs Grid snd3;
      "O(log^2 n)"; gs Aer_snr snd3;
      "O(log^2 n)"; gs Aer_async snd3;
    ];
  Table.add_row repro
    [
      "Load-balanced"; "Yes"; balanced Grid;
      "No"; balanced Aer_snr;
      "No"; balanced Aer_async;
    ];
  Printf.fprintf out "\n### Reproduction vs paper (growth classes fitted over the size grid)\n\n";
  output_string out (Table.to_markdown repro);
  let bits_exp v = Stats.Growth.power_exponent
      (Array.of_list (List.map (fun n -> (n, snd3 (Hashtbl.find series (v, n)))) (sizes full)))
  in
  Printf.fprintf out
    "\nFitted bits/node power exponents: grid %.2f (paper: 0.5 up to polylog), AER SNR %.2f, \
     AER async %.2f (paper: polylog, i.e. exponent -> 0 as n grows; at these n a log^k fit \
     retains a positive apparent exponent — see EXPERIMENTS.md).\n\n"
    (bits_exp Grid) (bits_exp Aer_snr) (bits_exp Aer_async);
  (* Model check: AER's traffic is dominated by the Fw1 fan-out,
     predicted per node as d_h^2 * d_j * (message bits). Calibrate the
     constant at the smallest size and compare. *)
  let model = Table.create
      ~columns:
        [ ("n", Table.Right); ("measured bits/node", Table.Right);
          ("model C*dh^2*dj*msgbits", Table.Right); ("ratio", Table.Right) ]
  in
  let prediction n =
    let sc = Runner.scenario_of_setup Runner.default_setup ~n ~seed:1L in
    let p = sc.Fba_core.Scenario.params in
    let msg_bits = float_of_int Fba_core.Params.(p.gstring_bits + label_bits + (3 * Fba_core.Params.id_bits p)) in
    float_of_int Fba_core.Params.(p.d_h * p.d_h * p.d_j) *. msg_bits
  in
  let n0 = List.hd (sizes full) in
  let measured n = snd3 (Hashtbl.find series (Aer_snr, n)) in
  let calib = measured n0 /. prediction n0 in
  List.iter
    (fun n ->
      let pred = calib *. prediction n in
      Table.add_row model
        [ Table.cell_int n; Table.cell_float ~decimals:0 (measured n);
          Table.cell_float ~decimals:0 pred; Table.cell_float (measured n /. pred) ])
    (sizes full);
  Printf.fprintf out
    "### AER bits/node vs the d_h^2*d_j analytical model (calibrated at n=%d)\n\n" n0;
  output_string out (Table.to_markdown model);
  (* Load-balance under attack: the paper's "AER is not load-balanced"
     claim is about the worst case — the adversary captures Input
     Quorums of a few victims (Section 1). This needs quorums sized
     below the safe regime, which we force explicitly. *)
  let lb = Table.create
      ~columns:
        [ ("variant", Table.Left); ("n", Table.Right); ("mean |Lx|", Table.Right);
          ("max |Lx|", Table.Right); ("max-node bits", Table.Right); ("agreed", Table.Right) ]
  in
  let lb_setup =
    { Runner.default_setup with
      Runner.byzantine_fraction = 0.25;
      knowledgeable_fraction = 0.70;
      d_override = Some (14, 14, 14) }
  in
  List.iter
    (fun n ->
      let variants =
        [ ("AER, silent adversary", fun sc -> Attacks.silent sc);
          ("AER, quorum-capture", fun sc -> Attacks.quorum_capture sc) ]
      in
      List.iter
        (fun (label, adv) ->
          let runs =
            List.map
              (fun seed ->
                Runner.run_aer_sync ~adversary:adv (Runner.scenario_of_setup lb_setup ~n ~seed))
              (Runner.seeds (seed_count full))
          in
          let s = Obs.aggregate (List.map (fun r -> r.Runner.obs) runs) in
          let mean_lx =
            Stats.mean
              (Array.of_list
                 (List.map
                    (fun r ->
                      float_of_int r.Runner.candidate_sum
                      /. float_of_int (Fba_core.Scenario.correct_count r.Runner.scenario))
                    runs))
          in
          let max_lx = List.fold_left (fun acc r -> max acc r.Runner.candidate_max) 0 runs in
          Table.add_row lb
            [ label; Table.cell_int n; Table.cell_float mean_lx; Table.cell_int max_lx;
              Table.cell_float ~decimals:0 s.Obs.mean_max_sent;
              Printf.sprintf "%.3f" s.Obs.mean_agreed ])
        variants;
      (* KS09-style random push: correct and attacked. The flood makes
         chosen victims' receive load explode — the hot spot AER's
         membership filter removes. *)
      List.iter
        (fun (label, flood) ->
          let obs =
            List.map
              (fun seed -> Runner.run_ks09 ~flood (Runner.scenario_of_setup lb_setup ~n ~seed))
              (Runner.seeds (seed_count full))
          in
          let s = Obs.aggregate obs in
          let max_recv =
            List.fold_left (fun acc (o : Obs.observation) -> max acc o.Obs.max_recv_bits) 0 obs
          in
          Table.add_row lb
            [ label; Table.cell_int n; "-"; "-";
              Printf.sprintf "%d recv" max_recv; Printf.sprintf "%.3f" s.Obs.mean_agreed ])
        [ ("KS09-like push, silent", false); ("KS09-like push, flooded", true) ];
      (* The committee-relay extension: same workload, deterministic
         Θ~(√n) maximum load regardless of the adversary (its only
         traffic is pushed along a fixed public assignment). *)
      let relay_obs =
        List.map
          (fun seed -> Runner.run_relay (Runner.scenario_of_setup lb_setup ~n ~seed))
          (Runner.seeds (seed_count full))
      in
      let sr = Obs.aggregate relay_obs in
      Table.add_row lb
        [ "committee-relay (Sec. 5 ext.)"; Table.cell_int n; "-"; "-";
          Table.cell_float ~decimals:0 sr.Obs.mean_max_sent;
          Printf.sprintf "%.3f" sr.Obs.mean_agreed ])
    (sizes full);
  Printf.fprintf out
    "\n### Load balance under Input-Quorum capture (byz=0.25, quorums forced small, d=14)\n\n\
     The paper (Section 1): the adversary \"can seize control of several Input Quorums, \
     associated to a few nodes, and force these nodes to verify an almost-linear number of \
     strings: as such, AER is not load-balanced.\" The victims' candidate lists |Lx| below \
     grow with n while the mean stays constant:\n\n";
  output_string out (Table.to_markdown lb);
  Printf.fprintf out "\n"
