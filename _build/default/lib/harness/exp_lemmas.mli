(** Experiment [lemmas] — empirical checks of the paper's Lemmas 3–10.

    - Lemma 3: push-phase communication is O(log n) messages per node
      (no node is overloaded by the sampler I);
    - Lemma 4: the candidate lists of correct nodes sum to O(n) even
      under push-flooding;
    - Lemma 5: every correct node has gstring in its candidate list
      w.h.p.;
    - Lemmas 6/8: polls are answered in O(1) rounds against a
      non-rushing adversary, and the rushing/asynchronous cornering
      adversary stretches that to a slowly growing (O(log n/log log n))
      tail;
    - Lemma 7: no correct node decides on anything but gstring;
    - Lemmas 9/10: end-to-end — constant rounds (sync non-rushing) and
      O~(n) total messages. *)

val run : ?full:bool -> out:out_channel -> unit -> unit
