lib/harness/obs.ml: Array Bitset Fba_sim Fba_stdx Hashtbl List Option Stats
