lib/harness/runner.mli: Fba_adversary Fba_core Fba_sim Obs Scenario
