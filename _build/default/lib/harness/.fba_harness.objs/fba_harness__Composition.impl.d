lib/harness/composition.ml: Array Ba Bitset Fba_baselines Fba_core Fba_sim Fba_stdx Printf String
