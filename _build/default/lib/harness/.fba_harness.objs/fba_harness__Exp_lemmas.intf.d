lib/harness/exp_lemmas.mli:
