lib/harness/exp_fig1b.ml: Array Bitset Composition Fba_baselines Fba_core Fba_sim Fba_stdx Hash64 Hashtbl Int64 List Obs Option Printf Prng Runner Stats String Table
