lib/harness/exp_samplers.mli:
