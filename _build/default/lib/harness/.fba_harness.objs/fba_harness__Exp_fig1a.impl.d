lib/harness/exp_fig1a.ml: Array Fba_adversary Fba_core Fba_stdx Hashtbl List Obs Printf Runner Stats Table
