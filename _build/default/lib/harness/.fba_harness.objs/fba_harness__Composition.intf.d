lib/harness/composition.mli: Fba_core
