lib/harness/obs.mli: Fba_sim
