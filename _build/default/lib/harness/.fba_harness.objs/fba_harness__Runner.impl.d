lib/harness/runner.ml: Aer Array Fba_baselines Fba_core Fba_extensions Fba_sim Fba_stdx Hash64 Int64 List Obs Params Prng Scenario String
