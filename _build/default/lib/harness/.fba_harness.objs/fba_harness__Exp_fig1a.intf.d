lib/harness/exp_fig1a.mli:
