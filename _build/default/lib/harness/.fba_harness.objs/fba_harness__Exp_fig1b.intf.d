lib/harness/exp_fig1b.mli:
