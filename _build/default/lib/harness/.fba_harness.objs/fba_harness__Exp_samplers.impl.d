lib/harness/exp_samplers.ml: Affine_sampler Array Bitset Bytes Digraph Fba_core Fba_samplers Fba_stdx Int64 Intx List Params Printf Prng Property_check Sampler Stats Table
