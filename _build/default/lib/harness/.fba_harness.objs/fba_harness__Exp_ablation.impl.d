lib/harness/exp_ablation.ml: Aer Array Bitset Bytes Fba_adversary Fba_core Fba_samplers Fba_sim Fba_stdx Hash64 Intx List Obs Params Printf Prng Runner Scenario Stats Table
