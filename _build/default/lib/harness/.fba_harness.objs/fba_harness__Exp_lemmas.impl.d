lib/harness/exp_lemmas.ml: Array Fba_adversary Fba_core Fba_stdx List Obs Option Params Printf Runner Scenario Stats Table
