(** Byzantine Agreement compositions for Figure 1(b): the
    almost-everywhere phase ({!Fba_core.Ba.run_phase1}) followed by an
    alternative almost-everywhere→everywhere phase 2. The paper's BA
    uses AER; composing the same phase 1 with the grid baseline gives
    the [KLST11]-style comparison row (O~(√n) bits, load-balanced). *)

type result = {
  rounds : int;  (** both phases *)
  bits_per_node : float;  (** both phases combined *)
  phase2_bits_per_node : float;
      (** the almost-everywhere→everywhere phase alone — this is where
          Figure 1(b)'s polylog-vs-√n distinction lives; the committee
          phase 1 is shared by both compositions *)
  max_sent_bits : int;
  load_imbalance : float;
  agreed : int;  (** correct nodes deciding the phase-1 reference *)
  correct : int;
  ae_fraction : float;
}

val of_ba_result : Fba_core.Ba.result -> result
(** Project the paper's BA (aeba + AER) onto the comparison record. *)

val run_aeba_grid : n:int -> seed:int64 -> byzantine_fraction:float -> result
(** Phase 1 + grid diffusion phase 2. *)

val run_aeba_naive : n:int -> seed:int64 -> byzantine_fraction:float -> flood:bool -> result
(** Phase 1 + naive sample-and-vote phase 2 (optionally under the
    query-flooding attack). *)
