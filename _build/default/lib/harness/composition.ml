open Fba_stdx
open Fba_core
module Grid = Fba_baselines.Grid_aetoe
module Grid_sync = Fba_sim.Sync_engine.Make (Grid)
module Naive = Fba_baselines.Naive_aetoe
module Naive_sync = Fba_sim.Sync_engine.Make (Naive)

type result = {
  rounds : int;
  bits_per_node : float;
  phase2_bits_per_node : float;
  max_sent_bits : int;
  load_imbalance : float;
  agreed : int;
  correct : int;
  ae_fraction : float;
}

let of_ba_result (r : Ba.result) =
  {
    rounds = Fba_sim.Metrics.rounds r.Ba.metrics;
    bits_per_node = Fba_sim.Metrics.amortized_bits r.Ba.metrics;
    phase2_bits_per_node = Fba_sim.Metrics.amortized_bits r.Ba.aer_metrics;
    max_sent_bits = Fba_sim.Metrics.max_sent_bits_correct r.Ba.metrics;
    load_imbalance = Fba_sim.Metrics.load_imbalance r.Ba.metrics;
    agreed = r.Ba.agreed;
    correct = r.Ba.correct;
    ae_fraction = r.Ba.ae_fraction;
  }

(* Shared scaffolding: run phase 1, hand the assignment to a phase-2
   runner, merge the accounting. *)
let with_phase2 ~n ~seed ~byzantine_fraction run2 =
  let p1 = Ba.run_phase1 ~n ~seed ~byzantine_fraction () in
  let corrupted = p1.Ba.p1_corrupted in
  let correct = n - Bitset.cardinal corrupted in
  match p1.Ba.p1_reference with
  | None ->
    {
      rounds = Fba_sim.Metrics.rounds p1.Ba.p1_metrics;
      bits_per_node = Fba_sim.Metrics.amortized_bits p1.Ba.p1_metrics;
      phase2_bits_per_node = 0.0;
      max_sent_bits = Fba_sim.Metrics.max_sent_bits_correct p1.Ba.p1_metrics;
      load_imbalance = Fba_sim.Metrics.load_imbalance p1.Ba.p1_metrics;
      agreed = 0;
      correct;
      ae_fraction = p1.Ba.p1_ae_fraction;
    }
  | Some reference ->
    let initial =
      Array.init n (fun i ->
          match p1.Ba.p1_outputs.(i) with
          | Some v -> v
          | None -> Printf.sprintf "straggler-%d" i)
    in
    let metrics2, outputs2 = run2 ~corrupted ~initial ~reference in
    let merged = Fba_sim.Metrics.merge_phases p1.Ba.p1_metrics metrics2 in
    let agreed = ref 0 in
    Array.iteri
      (fun i o -> if (not (Bitset.mem corrupted i)) && o = Some reference then incr agreed)
      outputs2;
    {
      rounds = Fba_sim.Metrics.rounds merged;
      bits_per_node = Fba_sim.Metrics.amortized_bits merged;
      phase2_bits_per_node = Fba_sim.Metrics.amortized_bits metrics2;
      max_sent_bits = Fba_sim.Metrics.max_sent_bits_correct merged;
      load_imbalance = Fba_sim.Metrics.load_imbalance merged;
      agreed = !agreed;
      correct;
      ae_fraction = p1.Ba.p1_ae_fraction;
    }

let run_aeba_grid ~n ~seed ~byzantine_fraction =
  with_phase2 ~n ~seed ~byzantine_fraction (fun ~corrupted ~initial ~reference ->
      let cfg =
        Grid.make_config ~n
          ~initial:(fun i -> initial.(i))
          ~str_bits:(8 * String.length reference)
      in
      let res =
        Grid_sync.run ~config:cfg ~n ~seed
          ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
          ~mode:`Rushing ~max_rounds:(Grid.total_rounds + 2) ()
      in
      (res.Fba_sim.Sync_engine.metrics, res.Fba_sim.Sync_engine.outputs))

let run_aeba_naive ~n ~seed ~byzantine_fraction ~flood =
  with_phase2 ~n ~seed ~byzantine_fraction (fun ~corrupted ~initial ~reference ->
      let cfg =
        Naive.make_config ~n
          ~initial:(fun i -> initial.(i))
          ~str_bits:(8 * String.length reference)
          ()
      in
      let adversary =
        if flood then Naive.flood_adversary cfg ~corrupted
        else Fba_sim.Sync_engine.null_adversary ~corrupted
      in
      let res =
        Naive_sync.run ~config:cfg ~n ~seed ~adversary ~mode:`Rushing
          ~max_rounds:(Naive.total_rounds + 2) ()
      in
      (res.Fba_sim.Sync_engine.metrics, res.Fba_sim.Sync_engine.outputs))
