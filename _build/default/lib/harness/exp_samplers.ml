open Fba_stdx
open Fba_samplers
open Fba_core

let sizes full = if full then [ 256; 512; 1024; 2048 ] else [ 128; 256; 512 ]

let good_set ~n ~rng ~fraction =
  let k = int_of_float (ceil (fraction *. float_of_int n)) in
  Bitset.of_array n (Prng.sample_without_replacement rng ~n ~k)

let run ?(full = false) ~out () =
  Printf.fprintf out "## Sampler properties (Lemmas 1–2, Section 4.1)\n\n";
  let tbl = Table.create
      ~columns:
        [ ("n", Table.Right); ("d", Table.Right);
          ("bad I-quorums, random s", Table.Right); ("bad I-quorums, worst of 200", Table.Right);
          ("overload factor (L1)", Table.Right); ("P1 bad poll lists", Table.Right);
          ("boundary random L (P2)", Table.Right); ("boundary greedy L (P2)", Table.Right) ]
  in
  List.iter
    (fun n ->
      let params =
        Params.make_for ~n ~seed:97L ~byzantine_fraction:0.1 ~knowledgeable_fraction:0.75 ()
      in
      let si = Params.sampler_i params in
      let sj = Params.sampler_j params in
      let rng = Prng.create (Int64.of_int (n + 13)) in
      let good = good_set ~n ~rng ~fraction:0.75 in
      let random_s = Bytes.unsafe_to_string (Prng.bits rng Params.(params.gstring_bits)) in
      let frac_random = Property_check.bad_quorum_fraction si ~good ~s:random_s in
      let _, frac_worst =
        Property_check.worst_string_search si ~good ~rng
          ~tries:(if full then 200 else 60)
          ~bits:Params.(params.gstring_bits)
      in
      let overload =
        Property_check.overload_factor si
          ~strings:(List.init 4 (fun _ ->
              Bytes.unsafe_to_string (Prng.bits rng Params.(params.gstring_bits))))
      in
      let p1 = Property_check.property1_estimate sj ~good ~samples:20000 ~rng in
      let u = max 2 (n / Intx.ceil_log2 n) in
      let boundary_random =
        Stats.mean
          (Array.init 3 (fun _ ->
               Digraph.boundary_ratio sj (Digraph.random_l sj ~rng ~size:u)))
      in
      let boundary_greedy =
        Digraph.boundary_ratio sj
          (Digraph.greedy_adversarial_l sj ~rng ~size:u ~labels_per_step:24)
      in
      Table.add_row tbl
        [ Table.cell_int n; Table.cell_int Params.(params.d_j);
          Table.cell_float ~decimals:4 frac_random; Table.cell_float ~decimals:4 frac_worst;
          Table.cell_float overload; Table.cell_float ~decimals:4 p1;
          Table.cell_float boundary_random; Table.cell_float boundary_greedy ])
    (sizes full);
  output_string out (Table.to_markdown tbl);
  Printf.fprintf out
    "\nExpectations: bad-quorum fractions stay O(1/n)-ish even under adversarial string \
     search (Lemma 1 / Lemma 5's union bound); the overload factor stays a small constant \
     (Lemma 1); Property 1's fraction is near zero; both boundary ratios stay above the \
     paper's 2/3 bound for |L| = n/log n (Property 2, Figure 3 digraph model) — the greedy \
     adversarial L is the interesting column, since a random L is trivially expanding.\n\n";
  (* Section 2.2's motivating dichotomy: a structured deterministic
     quorum choice is seized with a tiny budget; the sampler resists
     until the budget nears n/2. *)
  let seize = Table.create
      ~columns:
        [ ("budget (fraction of n)", Table.Left); ("affine quorums seized", Table.Right);
          ("sampler quorums seized", Table.Right) ]
  in
  let n = List.nth (sizes full) 1 in
  let d = 2 * Intx.ceil_log2 n in
  let affine = Affine_sampler.create ~n ~d ~stride:(Intx.isqrt n) in
  let hash_sampler =
    Sampler.create ~seed:11L ~n ~d
  in
  List.iter
    (fun frac ->
      let budget = int_of_float (frac *. float_of_int n) in
      Table.add_row seize
        [ Printf.sprintf "%.2f" frac;
          Table.cell_float (Affine_sampler.seizable_fraction affine ~budget);
          Table.cell_float (Property_check.seizable_fraction hash_sampler ~s:"g" ~budget) ])
    [ 0.05; 0.10; 0.20; 0.33 ];
  Printf.fprintf out
    "### Deterministic quorums vs samplers (Section 2.2's dichotomy, n=%d, d=%d, greedy \
     corruption)\n\nThe arithmetic-progression construction concentrates coverage, so a \
     small corruption budget seizes a large fraction of quorums; the hash sampler spreads \
     coverage uniformly:\n\n" n d;
  output_string out (Table.to_markdown seize);
  Printf.fprintf out "\n"
