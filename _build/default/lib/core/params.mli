(** Protocol parameters for AER (Section 3.1 preconditions).

    The paper fixes ε > 0, quorum sizes d = O(log n), a gstring length
    c·log n for a large enough constant c, and a pull-answer filter of
    log² n. This module packages those choices plus the shared sampler
    seeds — the three sampling functions I, H and J are common knowledge
    across all nodes, so they derive deterministically from one master
    seed.

    The three samplers get separate cardinalities because they face
    different failure pressures and costs: I's push quorums must contain
    a majority of *initially knowledgeable* correct nodes (the push
    happens once, Lemma 5), J's poll lists and H's pull quorums only
    need a majority of *correct* nodes (their members answer once they
    eventually learn gstring). H's size enters the Fw1 fan-out
    quadratically (each y ∈ H(s,x) forwards to H(s,w) for every
    w ∈ J(x,r)), so it pays to keep d_h at the low end of Θ(log n). *)

type t = private {
  n : int;  (** system size *)
  seed : int64;  (** master seed: samplers and node RNGs derive from it *)
  d_i : int;  (** push-quorum cardinality (sampler I) *)
  d_h : int;  (** pull-quorum cardinality (sampler H) *)
  d_j : int;  (** poll-list cardinality (sampler J) *)
  gstring_bits : int;  (** c·log₂ n *)
  pull_filter : int;  (** per-string answer cap, default ⌈log₂ n⌉² *)
  max_poll_attempts : int;
      (** re-poll extension: how many labels a node may try per
          candidate. 1 (default) is the paper's protocol; larger values
          let a node whose poll list drew a Byzantine majority retry
          with a fresh random sample, at the cost of multiplying the
          worst-case pull amplification by the same factor. *)
  repoll_timeout : int;  (** rounds before an unanswered poll retries *)
}

val make :
  ?d_i:int ->
  ?d_h:int ->
  ?d_j:int ->
  ?gstring_bits:int ->
  ?pull_filter:int ->
  ?max_poll_attempts:int ->
  ?repoll_timeout:int ->
  n:int ->
  seed:int64 ->
  unit ->
  t
(** Defaults: [d_i = d_j = 2·⌈log₂ n⌉], [d_h = max 9 ⌈1.5·log₂ n⌉]
    (all clamped to n), [gstring_bits = 8·⌈log₂ n⌉] (c = 8, comfortably
    above the Lemma 5 threshold at simulated sizes),
    [pull_filter = ⌈log₂ n⌉²] (at least 4). Raises [Invalid_argument]
    for [n < 4] or out-of-range overrides. *)

val make_for :
  ?per_run_miss:float ->
  ?gstring_bits:int ->
  ?pull_filter:int ->
  ?max_poll_attempts:int ->
  ?repoll_timeout:int ->
  n:int ->
  seed:int64 ->
  byzantine_fraction:float ->
  knowledgeable_fraction:float ->
  unit ->
  t
(** Size the quorums for a concrete fault model: picks the smallest
    d_i (resp. d_h, d_j) such that the expected number of quorums with
    a bad majority across one execution stays below [per_run_miss]
    (default 0.05). Push quorums face the ignorant-or-Byzantine
    fraction [1 − knowledgeable_fraction]; pull quorums and poll lists
    only the Byzantine fraction (their correct members eventually learn
    gstring). This is the "large enough constants" knob the paper's
    asymptotic statements leave implicit — at simulated sizes the
    constants must be made explicit or the w.h.p. regime is silently
    left. *)

val sampler_i : t -> Fba_samplers.Sampler.t
(** Push-quorum sampler I. *)

val sampler_h : t -> Fba_samplers.Sampler.t
(** Pull-quorum sampler H. *)

val sampler_j : t -> Fba_samplers.Sampler.t
(** Poll-list sampler J. *)

val majority_i : t -> int
val majority_h : t -> int
val majority_j : t -> int
(** The "more than half of the quorum" thresholds ([d/2 + 1]) used by
    the push filter, the forwarding filters and the answer count. *)

val id_bits : t -> int
(** Bits to encode one node identity: ⌈log₂ n⌉. *)

val label_bits : int
(** Bits of a poll label r ∈ R; we use 64 (R has polynomial cardinality
    in the paper; 64 bits is ≥ 2·log₂ n at every simulated size). *)
