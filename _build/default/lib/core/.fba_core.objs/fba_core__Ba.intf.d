lib/core/ba.mli: Fba_aeba Fba_sim Fba_stdx Msg Scenario
