lib/core/binary_ba.mli: Fba_sim
