lib/core/msg.mli: Format Params
