lib/core/msg.ml: Char Format Params String
