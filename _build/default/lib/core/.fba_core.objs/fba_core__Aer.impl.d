lib/core/aer.ml: Array Fba_samplers Fba_sim Fba_stdx Hashtbl List Msg Params Prng Scenario
