lib/core/aer.mli: Fba_sim Msg Params Scenario
