lib/core/ba.ml: Aer Array Bitset Fba_aeba Fba_sim Fba_stdx Hash64 Params Printf Prng Scenario String
