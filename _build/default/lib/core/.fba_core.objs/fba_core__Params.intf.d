lib/core/params.mli: Fba_samplers
