lib/core/scenario.mli: Bitset Fba_stdx Params Prng
