lib/core/binary_ba.ml: Array Ba Bitset Fba_baselines Fba_sim Fba_stdx Hash64 Int64
