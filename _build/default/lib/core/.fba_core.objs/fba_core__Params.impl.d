lib/core/params.ml: Fba_samplers Fba_stdx Hash64 Intx Printf Stats
