lib/core/scenario.ml: Array Bitset Bytes Fba_stdx Params Prng String
