open Fba_stdx
module RBA = Fba_baselines.Randomized_ba
module RBA_engine = Fba_sim.Sync_engine.Make (RBA)

type result = {
  metrics : Fba_sim.Metrics.t;
  decisions : string option array;
  decided_bit : bool option;
  agreed : int;
  correct : int;
  validity_respected : bool;
}

let run_sync ?(split_attack = true) ~inputs ~n ~seed ~byzantine_fraction () =
  (* Phases 1–2: the paper's BA produces a common random string. *)
  let ba = Ba.run_sync ~n ~seed ~byzantine_fraction () in
  match ba.Ba.gstring with
  | None ->
    {
      metrics = ba.Ba.metrics;
      decisions = Array.make n None;
      decided_bit = None;
      agreed = 0;
      correct = ba.Ba.correct;
      validity_respected = true;
    }
  | Some gstring ->
    (* Phase 3: common-coin binary agreement, the coin stream seeded by
       gstring's entropy. *)
    let coin_seed = Hash64.hash_string ~seed:0x636f696eL gstring in
    let corrupted = Fba_sim.Metrics.corrupted ba.Ba.metrics in
    let t_byz = Bitset.cardinal corrupted in
    let t_assumed = min (max 1 t_byz) (((n - 1) / 5) - 1) in
    let t_assumed = max 1 t_assumed in
    let cfg = RBA.make_config ~n ~t_assumed ~coin:(`Common coin_seed) ~inputs () in
    let adversary =
      if split_attack then RBA.split_vote_adversary cfg ~corrupted
      else Fba_sim.Sync_engine.null_adversary ~corrupted
    in
    let res =
      RBA_engine.run ~config:cfg ~n ~seed:(Int64.add seed 3L) ~adversary ~mode:`Rushing
        ~max_rounds:(RBA.max_engine_rounds cfg) ()
    in
    let decisions = res.Fba_sim.Sync_engine.outputs in
    (* The common decision: plurality among correct nodes. *)
    let zero = ref 0 and one = ref 0 in
    Array.iteri
      (fun i o ->
        if not (Bitset.mem corrupted i) then
          match o with
          | Some "1" -> incr one
          | Some "0" -> incr zero
          | _ -> ())
      decisions;
    let decided_bit = if !one = 0 && !zero = 0 then None else Some (!one >= !zero) in
    let agreed = max !one !zero in
    let validity_respected =
      match decided_bit with
      | None -> true
      | Some b ->
        (* Some correct node must have had b as its input. *)
        let witness = ref false in
        for i = 0 to n - 1 do
          if (not (Bitset.mem corrupted i)) && inputs i = b then witness := true
        done;
        !witness
    in
    {
      metrics = Fba_sim.Metrics.merge_phases ba.Ba.metrics res.Fba_sim.Sync_engine.metrics;
      decisions;
      decided_bit;
      agreed;
      correct = ba.Ba.correct;
      validity_respected;
    }
