open Fba_stdx

type t = {
  n : int;
  seed : int64;
  d_i : int;
  d_h : int;
  d_j : int;
  gstring_bits : int;
  pull_filter : int;
  max_poll_attempts : int;
  repoll_timeout : int;
}

let check_d name n = function
  | Some d when d >= 1 && d <= n -> d
  | Some _ -> invalid_arg (Printf.sprintf "Params.make: %s out of range" name)
  | None -> assert false

let make ?d_i ?d_h ?d_j ?gstring_bits ?pull_filter ?(max_poll_attempts = 1)
    ?(repoll_timeout = 8) ~n ~seed () =
  if max_poll_attempts < 1 then invalid_arg "Params.make: max_poll_attempts < 1";
  if repoll_timeout < 1 then invalid_arg "Params.make: repoll_timeout < 1";
  if n < 4 then invalid_arg "Params.make: n must be at least 4";
  let log_n = Intx.ceil_log2 n in
  let dflt v d = match v with Some _ -> v | None -> Some (Intx.clamp ~lo:1 ~hi:n d) in
  let d_i = check_d "d_i" n (dflt d_i (2 * log_n)) in
  let d_j = check_d "d_j" n (dflt d_j (2 * log_n)) in
  let d_h = check_d "d_h" n (dflt d_h (max 9 (3 * log_n / 2))) in
  let gstring_bits =
    match gstring_bits with
    | Some b when b >= 1 -> b
    | Some _ -> invalid_arg "Params.make: gstring_bits must be positive"
    | None -> 8 * log_n
  in
  let pull_filter =
    match pull_filter with
    | Some f when f >= 1 -> f
    | Some _ -> invalid_arg "Params.make: pull_filter must be positive"
    | None -> max 4 (log_n * log_n)
  in
  { n; seed; d_i; d_h; d_j; gstring_bits; pull_filter; max_poll_attempts; repoll_timeout }

(* Smallest quorum size whose bad-majority probability, multiplied by
   the ~n quorums an execution touches, stays below the budget. Quorums
   are sampled without replacement in the protocol, so the binomial
   (with replacement) tail is a conservative upper bound. *)
let size_quorum ~n ~bad_fraction ~budget =
  let target = budget /. float_of_int n in
  let rec search d =
    if d >= n then n
    else begin
      let miss = Stats.binomial_tail ~trials:d ~p:bad_fraction ~at_least:((d / 2) + 1) in
      if miss <= target then d else search (d + 2)
    end
  in
  search 7

let make_for ?(per_run_miss = 0.05) ?gstring_bits ?pull_filter ?max_poll_attempts
    ?repoll_timeout ~n ~seed ~byzantine_fraction ~knowledgeable_fraction () =
  if byzantine_fraction < 0.0 || byzantine_fraction >= 1.0 /. 3.0 then
    invalid_arg "Params.make_for: byzantine_fraction must be in [0, 1/3)";
  if knowledgeable_fraction <= 0.5 || knowledgeable_fraction > 1.0 then
    invalid_arg "Params.make_for: knowledgeable_fraction must be in (1/2, 1]";
  let d_i = size_quorum ~n ~bad_fraction:(1.0 -. knowledgeable_fraction) ~budget:per_run_miss in
  let d_hj = size_quorum ~n ~bad_fraction:byzantine_fraction ~budget:per_run_miss in
  make ~d_i ~d_h:d_hj ~d_j:d_hj ?gstring_bits ?pull_filter ?max_poll_attempts ?repoll_timeout
    ~n ~seed ()

let derive_sampler t tag d =
  let seed = Hash64.finish (Hash64.add_int (Hash64.init t.seed) tag) in
  Fba_samplers.Sampler.create ~seed ~n:t.n ~d

let sampler_i t = derive_sampler t 1 t.d_i
let sampler_h t = derive_sampler t 2 t.d_h
let sampler_j t = derive_sampler t 3 t.d_j

let majority_i t = (t.d_i / 2) + 1
let majority_h t = (t.d_h / 2) + 1
let majority_j t = (t.d_j / 2) + 1

let id_bits t = Intx.ceil_log2 t.n

let label_bits = 64
