(** AER wire messages (Section 3.1, Algorithms 1–3).

    The pull phase routes a request from the requester [x] through its
    Pull Quorum H(s, x), then through the Pull Quorums H(s, w) of every
    poll-list member w ∈ J(x, r), and back:

    {v
    x --Poll(s,r)--> J(x,r)                        (direct, authoritative)
    x --Pull(s,r)--> H(s,x)                        (proxies)
    y ∈ H(s,x) --Fw1(x,s,r,w)--> H(s,w)            (first forwarding hop)
    z ∈ H(s,w) --Fw2(x,s,r)--> w                   (majority-filtered)
    w --Answer(s)--> x                             (if Polled and majority)
    v} *)

type t =
  | Push of string  (** push-phase diffusion of a candidate *)
  | Poll of { s : string; r : int64 }
  | Pull of { s : string; r : int64 }
  | Fw1 of { x : int; s : string; r : int64; w : int }
  | Fw2 of { x : int; s : string; r : int64 }
  | Answer of string

val bits : Params.t -> t -> int
(** Wire size in bits: an 8-bit tag, source and destination headers of
    ⌈log₂ n⌉ bits each, plus the payload (strings cost 8 bits per
    byte, labels {!Params.label_bits}, embedded identities ⌈log₂ n⌉). *)

val pp : Format.formatter -> t -> unit
