type t =
  | Push of string
  | Poll of { s : string; r : int64 }
  | Pull of { s : string; r : int64 }
  | Fw1 of { x : int; s : string; r : int64; w : int }
  | Fw2 of { x : int; s : string; r : int64 }
  | Answer of string

let bits params t =
  let id = Params.id_bits params in
  let header = 8 + (2 * id) in
  let str s = 8 * String.length s in
  let payload =
    match t with
    | Push s -> str s
    | Poll { s; _ } | Pull { s; _ } -> str s + Params.label_bits
    | Fw1 { s; _ } -> str s + Params.label_bits + (2 * id)
    | Fw2 { s; _ } -> str s + Params.label_bits + id
    | Answer s -> str s
  in
  header + payload

let pp_hex fmt s =
  String.iter (fun c -> Format.fprintf fmt "%02x" (Char.code c)) s

let pp fmt = function
  | Push s -> Format.fprintf fmt "Push(%a)" pp_hex s
  | Poll { s; r } -> Format.fprintf fmt "Poll(%a, %Ld)" pp_hex s r
  | Pull { s; r } -> Format.fprintf fmt "Pull(%a, %Ld)" pp_hex s r
  | Fw1 { x; s; r; w } -> Format.fprintf fmt "Fw1(x=%d, %a, %Ld, w=%d)" x pp_hex s r w
  | Fw2 { x; s; r } -> Format.fprintf fmt "Fw2(x=%d, %a, %Ld)" x pp_hex s r
  | Answer s -> Format.fprintf fmt "Answer(%a)" pp_hex s
