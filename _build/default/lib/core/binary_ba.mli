(** Binary Byzantine Agreement on top of BA's random string.

    The paper adopts the random-string output notion ("the output is a
    string of O(log n) random bits the adversary cannot bias too much")
    but also recalls the classical bit-output notion ("the output is
    required to be the input of one of the correct nodes"). This module
    provides the classical reduction from the former to the latter:

    + run BA (aeba + AER) to agree on gstring;
    + use gstring as the seed of a common coin — since ≥ 2/3+ε of its
      bits are uniform and it is known to every correct node, hashing
      it per round yields shared unpredictable coin flips;
    + run the common-coin randomized binary agreement on the actual
      bit inputs, which then terminates in O(1) expected rounds.

    Everything stays poly-logarithmic per node except the binary
    phase's broadcasts (Θ(n) single-bit messages per node per round for
    the textbook variant used here). *)

type result = {
  metrics : Fba_sim.Metrics.t;  (** all three phases *)
  decisions : string option array;  (** ["0"]/["1"] per node *)
  decided_bit : bool option;  (** the common decision, if unanimous *)
  agreed : int;  (** correct nodes sharing the common decision *)
  correct : int;
  validity_respected : bool;
      (** true unless the decision differs from every correct input *)
}

val run_sync :
  ?split_attack:bool ->
  inputs:(int -> bool) ->
  n:int ->
  seed:int64 ->
  byzantine_fraction:float ->
  unit ->
  result
(** [split_attack] (default true) runs the binary phase under the
    vote-splitting adversary — the case private coins struggle with and
    the gstring-derived coin neutralizes. *)
