(** Per-node execution context handed to protocol state machines. *)

type t = {
  n : int;  (** system size *)
  id : int;  (** this node's identity in [\[0, n)] *)
  rng : Fba_stdx.Prng.t;
      (** private random number generator (Section 2.1 requires one per
          node); derived deterministically from the engine seed and
          [id] *)
}

val make : n:int -> id:int -> seed:int64 -> t
(** Context with a node-private stream split off [seed]. *)
