type t = { n : int; id : int; rng : Fba_stdx.Prng.t }

let make ~n ~id ~seed =
  let master = Fba_stdx.Prng.create seed in
  { n; id; rng = Fba_stdx.Prng.split_at master id }
