type 'msg t = { src : int; dst : int; msg : 'msg }

let make ~src ~dst msg = { src; dst; msg }

let pp pp_msg fmt t =
  Format.fprintf fmt "@[<h>%d->%d: %a@]" t.src t.dst pp_msg t.msg
