(** A message in flight on the fully-connected network.

    Channels are authenticated (Section 2.1 of the paper): the receiver
    learns [src] reliably, so a Byzantine node cannot forge the sender
    identity — the engines construct envelopes themselves and adversary
    injections are forced to use a corrupted [src]. *)

type 'msg t = { src : int; dst : int; msg : 'msg }

val make : src:int -> dst:int -> 'msg -> 'msg t

val pp : (Format.formatter -> 'msg -> unit) -> Format.formatter -> 'msg t -> unit
