lib/sim/ctx.mli: Fba_stdx
