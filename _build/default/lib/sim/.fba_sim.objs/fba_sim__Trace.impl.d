lib/sim/trace.ml: Fba_stdx Format Hashtbl List Option Protocol String
