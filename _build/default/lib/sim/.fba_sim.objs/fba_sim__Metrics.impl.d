lib/sim/metrics.ml: Array Bitset Fba_stdx Format Option
