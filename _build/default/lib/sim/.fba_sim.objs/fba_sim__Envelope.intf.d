lib/sim/envelope.mli: Format
