lib/sim/metrics.mli: Fba_stdx Format
