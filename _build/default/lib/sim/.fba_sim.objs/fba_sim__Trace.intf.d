lib/sim/trace.mli: Protocol
