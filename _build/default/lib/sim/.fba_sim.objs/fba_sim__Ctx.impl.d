lib/sim/ctx.ml: Fba_stdx
