lib/sim/protocol.ml: Ctx Format
