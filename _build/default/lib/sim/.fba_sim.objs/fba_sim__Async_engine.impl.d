lib/sim/async_engine.ml: Array Bitset Ctx Envelope Fba_stdx Hashtbl Intx List Metrics Protocol
