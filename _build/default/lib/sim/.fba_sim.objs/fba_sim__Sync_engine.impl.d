lib/sim/sync_engine.ml: Array Bitset Ctx Envelope Fba_stdx List Metrics Protocol
