(** Deterministic, splittable pseudo-random number generator.

    The simulator never uses the OCaml [Random] module: every source of
    randomness is a [Prng.t] seeded explicitly, so that each experiment
    is reproducible from its seed. The generator is splitmix64, which is
    fast, statistically solid for simulation purposes, and splits into
    independent streams — one per simulated node. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] is a fresh generator deterministically derived from
    [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. *)

val split_at : t -> int -> t
(** [split_at t i] derives a generator for index [i] without advancing
    [t]; distinct indices give independent streams. Used to hand one
    stream to each simulated node. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises
    [Invalid_argument] if [bound <= 0]. *)

val int64 : t -> int64
(** Alias for {!next64}. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bits : t -> int -> Bytes.t
(** [bits t k] is [k] uniformly random bits packed into bytes (unused
    high bits of the last byte are zero). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> n:int -> k:int -> int array
(** [sample_without_replacement t ~n ~k] draws [k] distinct integers
    uniformly from [\[0, n)]. Requires [0 <= k <= n]. The result is in
    selection order (not sorted). *)
