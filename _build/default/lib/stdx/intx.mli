(** Small integer helpers used throughout the simulator. *)

val ilog2 : int -> int
(** [ilog2 n] is the floor of log2 [n]. Raises [Invalid_argument] on
    non-positive input. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the ceiling of log2 [n] ([0] for [n = 1]).
    Raises [Invalid_argument] on non-positive input. *)

val isqrt : int -> int
(** [isqrt n] is the floor of the square root of [n]. Raises
    [Invalid_argument] on negative input. *)

val pow : int -> int -> int
(** [pow base e] is [base] raised to the non-negative power [e];
    no overflow checking. *)

val cdiv : int -> int -> int
(** [cdiv a b] is the ceiling of [a / b] for positive [b]. *)

val clamp : lo:int -> hi:int -> int -> int
(** [clamp ~lo ~hi x] bounds [x] into the inclusive interval
    [\[lo, hi\]]. *)
