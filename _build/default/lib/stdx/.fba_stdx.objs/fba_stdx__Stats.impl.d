lib/stdx/stats.ml: Array Printf
