lib/stdx/hash64.mli: Bytes
