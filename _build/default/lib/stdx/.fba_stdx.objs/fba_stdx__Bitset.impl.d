lib/stdx/bitset.ml: Array Bytes Char List
