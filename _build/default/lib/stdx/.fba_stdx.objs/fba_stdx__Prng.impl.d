lib/stdx/prng.ml: Array Bytes Char Hashtbl Int64
