lib/stdx/histogram.mli:
