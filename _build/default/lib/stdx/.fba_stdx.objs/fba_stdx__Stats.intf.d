lib/stdx/stats.mli:
