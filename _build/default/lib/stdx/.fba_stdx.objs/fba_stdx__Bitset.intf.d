lib/stdx/bitset.mli:
