lib/stdx/intx.ml:
