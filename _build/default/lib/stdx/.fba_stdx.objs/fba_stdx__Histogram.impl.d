lib/stdx/histogram.ml: Buffer Hashtbl List Option Printf String
