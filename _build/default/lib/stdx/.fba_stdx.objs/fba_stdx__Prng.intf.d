lib/stdx/prng.mli: Bytes
