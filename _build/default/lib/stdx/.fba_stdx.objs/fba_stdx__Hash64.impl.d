lib/stdx/hash64.ml: Bytes Char Int64 String
