lib/stdx/table.mli:
