lib/stdx/intx.mli:
