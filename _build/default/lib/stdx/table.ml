type align = Left | Right

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create ~columns =
  let headers = Array.of_list (List.map fst columns) in
  let aligns = Array.of_list (List.map snd columns) in
  { headers; aligns; rows = [] }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let rows_in_order t = List.rev t.rows

let column_widths t =
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    (rows_in_order t);
  widths

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let to_markdown t =
  let widths = column_widths t in
  let buf = Buffer.create 256 in
  let emit_row cells =
    Buffer.add_string buf "|";
    Array.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad t.aligns.(i) widths.(i) cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  Buffer.add_string buf "|";
  Array.iteri
    (fun i _ ->
      let dashes = String.make (max 3 widths.(i)) '-' in
      let marked =
        match t.aligns.(i) with
        | Left -> dashes
        | Right -> String.sub dashes 0 (String.length dashes - 1) ^ ":"
      in
      Buffer.add_char buf ' ';
      Buffer.add_string buf marked;
      Buffer.add_string buf " |")
    t.headers;
  Buffer.add_char buf '\n';
  List.iter emit_row (rows_in_order t);
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape (Array.to_list cells)));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter emit (rows_in_order t);
  Buffer.contents buf

let print ?(out = stdout) t =
  output_string out (to_markdown t);
  flush out

let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
