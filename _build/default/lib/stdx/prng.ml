type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer: bijective 64-bit mixing. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.add seed 0x5851F42D4C957F2DL) }

let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next64 t in
  create (mix64 s)

let split_at t i =
  create (mix64 (Int64.logxor t.state (Int64.mul (Int64.of_int (i + 1)) 0xD1B54A32D192ED03L)))

let int64 t = next64 t

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (next64 t) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let r = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let bits t k =
  if k < 0 then invalid_arg "Prng.bits: negative length";
  let nbytes = (k + 7) / 8 in
  let b = Bytes.create nbytes in
  for i = 0 to nbytes - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  (* Zero the unused high bits of the final byte for canonical equality. *)
  let rem = k mod 8 in
  if rem <> 0 && nbytes > 0 then begin
    let mask = (1 lsl rem) - 1 in
    Bytes.set b (nbytes - 1) (Char.chr (Char.code (Bytes.get b (nbytes - 1)) land mask))
  end;
  b

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  if k * 4 >= n then begin
    (* Dense case: partial Fisher–Yates over the full index range. *)
    let a = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = i + int t (n - i) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: rejection with a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
