(** Text tables for experiment output (markdown and CSV).

    Every benchmark in [bench/main.ml] reproduces one of the paper's
    tables/figures as rows of one of these tables, so the renderer keeps
    the layout deterministic and diff-friendly. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts an empty table with the given header. *)

val add_row : t -> string list -> unit
(** Appends a row. Raises [Invalid_argument] if the arity does not match
    the header. *)

val to_markdown : t -> string
(** GitHub-flavoured markdown with padded columns. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes fields containing commas or quotes). *)

val print : ?out:out_channel -> t -> unit
(** Prints the markdown rendering followed by a newline. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
(** Formatting helpers with fixed decimal places (default 2). *)
