let ilog2 n =
  if n <= 0 then invalid_arg "Intx.ilog2: non-positive argument";
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let ceil_log2 n =
  if n <= 0 then invalid_arg "Intx.ceil_log2: non-positive argument";
  let l = ilog2 n in
  if 1 lsl l = n then l else l + 1

let isqrt n =
  if n < 0 then invalid_arg "Intx.isqrt: negative argument";
  if n < 2 then n
  else begin
    (* Newton iteration on integers; converges in a few steps. *)
    let x = ref n in
    let y = ref ((!x + 1) / 2) in
    while !y < !x do
      x := !y;
      y := (!x + (n / !x)) / 2
    done;
    !x
  end

let pow base e =
  if e < 0 then invalid_arg "Intx.pow: negative exponent";
  let rec loop acc base e =
    if e = 0 then acc
    else if e land 1 = 1 then loop (acc * base) (base * base) (e asr 1)
    else loop acc (base * base) (e asr 1)
  in
  loop 1 base e

let cdiv a b =
  if b <= 0 then invalid_arg "Intx.cdiv: non-positive divisor";
  (a + b - 1) / b

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
