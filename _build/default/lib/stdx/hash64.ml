type t = int64

(* splitmix64-style absorb-and-mix; each absorbed word is passed through
   the full finalizer so that low-entropy inputs (small ints) still
   diffuse across all 64 bits. *)

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let init seed = mix (Int64.add seed 0x9E3779B97F4A7C15L)

let add_int64 t v = mix (Int64.add (Int64.mul t 0xD1B54A32D192ED03L) v)

let add_int t v = add_int64 t (Int64.of_int v)

let add_string t s =
  let acc = ref (add_int t (String.length s)) in
  let n = String.length s in
  let i = ref 0 in
  (* Absorb 8 bytes at a time. *)
  while !i + 8 <= n do
    let w = ref 0L in
    for j = 0 to 7 do
      w := Int64.logor !w (Int64.shift_left (Int64.of_int (Char.code s.[!i + j])) (8 * j))
    done;
    acc := add_int64 !acc !w;
    i := !i + 8
  done;
  if !i < n then begin
    let w = ref 0L in
    for j = 0 to n - !i - 1 do
      w := Int64.logor !w (Int64.shift_left (Int64.of_int (Char.code s.[!i + j])) (8 * j))
    done;
    acc := add_int64 !acc !w
  end;
  !acc

let add_bytes t b = add_string t (Bytes.unsafe_to_string b)

let finish t = mix t

let to_range h bound =
  if bound <= 0 then invalid_arg "Hash64.to_range: non-positive bound";
  Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int bound))

let hash_string ~seed s = finish (add_string (init seed) s)
