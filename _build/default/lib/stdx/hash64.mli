(** Deterministic 64-bit mixing hash.

    The sampler functions I, H and J of the paper (Section 2.2) are
    realized as keyed hash functions: quorum membership must be a pure
    function of (seed, string, node, index) that every node can evaluate
    locally. This module provides the underlying mixing. It is *not* a
    cryptographic hash; the adversary model in the simulator is given
    explicit query access instead of inverting the hash. *)

type t = int64
(** A 64-bit hash accumulator. *)

val init : int64 -> t
(** [init seed] starts an accumulator from a key. *)

val add_int : t -> int -> t
(** Absorb an integer. *)

val add_int64 : t -> int64 -> t
(** Absorb a 64-bit value. *)

val add_string : t -> string -> t
(** Absorb a string (content and length). *)

val add_bytes : t -> Bytes.t -> t
(** Absorb bytes (content and length). *)

val finish : t -> int64
(** Final avalanche; the result is uniformly mixed. *)

val to_range : int64 -> int -> int
(** [to_range h bound] maps a finished hash uniformly (up to negligible
    bias) onto [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val hash_string : seed:int64 -> string -> int64
(** One-shot convenience: [finish (add_string (init seed) s)]. *)
