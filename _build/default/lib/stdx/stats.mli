(** Summary statistics and growth-rate fitting for experiment output.

    The paper's claims are asymptotic (O(1), polylog, O~(sqrt n), ...).
    {!Growth} classifies a measured (n, y) series into one of those
    classes by comparing least-squares fits, which is how EXPERIMENTS.md
    decides whether a reproduction matches the paper's shape. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays shorter than 2. *)

val minimum : float array -> float
(** Raises [Invalid_argument] on the empty array. *)

val maximum : float array -> float
(** Raises [Invalid_argument] on the empty array. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0, 100\]], linear interpolation
    between order statistics. Raises [Invalid_argument] on the empty
    array. *)

val median : float array -> float

val binomial_tail : trials:int -> p:float -> at_least:int -> float
(** [binomial_tail ~trials ~p ~at_least] is P(Bin(trials, p) ≥
    at_least), computed exactly in log space. Used to size quorums: a
    quorum of d uniform nodes has a Byzantine majority with probability
    [binomial_tail ~trials:d ~p:q ~at_least:(d/2 + 1)] when a [q]
    fraction of the system is bad. *)

type fit = { slope : float; intercept : float; r2 : float }
(** Least-squares line [y = intercept + slope * x] with coefficient of
    determination. *)

val linear_fit : (float * float) array -> fit
(** Ordinary least squares. Requires at least two points with distinct
    x values. *)

module Growth : sig
  type t =
    | Constant      (** y does not grow with n *)
    | Polylog       (** y = Theta(log^k n) for some k >= 1 *)
    | Power of float  (** y = Theta(n^e); e reported, e.g. 0.5 for sqrt *)

  val classify : (int * float) array -> t
  (** [classify points] compares a power-law fit (log y vs log n) with a
      polylog fit (log y vs log log n) over at least three sizes.
      Heuristic thresholds: power exponent below 0.12 with small dynamic
      range reads as Constant; exponent below 0.48 with a strictly
      better polylog fit reads as Polylog (log² n shows an apparent
      power exponent near 0.37 over laptop-scale n). *)

  val to_string : t -> string

  val power_exponent : (int * float) array -> float
  (** Exponent of the best power-law fit (slope of log y on log n). *)

  val polylog_exponent : (int * float) array -> float
  (** Exponent k of the best log^k fit (slope of log y on log log n). *)
end
