let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (ss /. float_of_int n)
  end

let minimum a =
  if Array.length a = 0 then invalid_arg "Stats.minimum: empty";
  Array.fold_left min a.(0) a

let maximum a =
  if Array.length a = 0 then invalid_arg "Stats.maximum: empty";
  Array.fold_left max a.(0) a

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

let median a = percentile a 50.0

let binomial_tail ~trials ~p ~at_least =
  if trials < 0 then invalid_arg "Stats.binomial_tail: negative trials";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.binomial_tail: p out of range";
  if at_least <= 0 then 1.0
  else if at_least > trials then 0.0
  else if p = 0.0 then 0.0
  else if p = 1.0 then 1.0
  else begin
    let log_choose n k =
      let acc = ref 0.0 in
      for i = 1 to k do
        acc := !acc +. log (float_of_int (n - k + i)) -. log (float_of_int i)
      done;
      !acc
    in
    let acc = ref 0.0 in
    for k = at_least to trials do
      acc :=
        !acc
        +. exp
             (log_choose trials k
             +. (float_of_int k *. log p)
             +. (float_of_int (trials - k) *. log (1.0 -. p)))
    done;
    min 1.0 !acc
  end

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let nf = float_of_int n in
  let denom = (nf *. !sxx) -. (!sx *. !sx) in
  if abs_float denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((nf *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. nf in
  let ymean = !sy /. nf in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let pred = intercept +. (slope *. x) in
      ss_tot := !ss_tot +. ((y -. ymean) *. (y -. ymean));
      ss_res := !ss_res +. ((y -. pred) *. (y -. pred)))
    points;
  let r2 = if !ss_tot < 1e-12 then 1.0 else 1.0 -. (!ss_res /. !ss_tot) in
  { slope; intercept; r2 }

module Growth = struct
  type t = Constant | Polylog | Power of float

  let log_points f points =
    Array.map (fun (n, y) -> (f (float_of_int n), log (max y 1e-9))) points

  let power_fit points = linear_fit (log_points log points)
  let polylog_fit points = linear_fit (log_points (fun x -> log (log x)) points)

  let power_exponent points = (power_fit points).slope
  let polylog_exponent points = (polylog_fit points).slope

  let classify points =
    if Array.length points < 3 then invalid_arg "Growth.classify: need >= 3 sizes";
    let ys = Array.map snd points in
    let dynamic_range =
      let lo = max (minimum ys) 1e-9 in
      maximum ys /. lo
    in
    let pw = power_fit points in
    if pw.slope < 0.12 && dynamic_range < 2.0 then Constant
    else begin
      let pl = polylog_fit points in
      (* A genuinely polylog series keeps a moderate apparent power
         exponent over laptop-scale n (log^2 n fits n^0.37 over
         n=64..1024) but is fitted strictly better by the log-log-x
         regression, which is exactly linear for log^k n. *)
      if pw.slope < 0.48 && pl.r2 > pw.r2 then Polylog else Power pw.slope
    end

  let to_string = function
    | Constant -> "O(1)"
    | Polylog -> "polylog"
    | Power e -> Printf.sprintf "n^%.2f" e
end
