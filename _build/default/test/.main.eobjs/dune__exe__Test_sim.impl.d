test/test_sim.ml: Alcotest Array Async_engine Bitset Ctx Envelope Fba_sim Fba_stdx Format List Metrics Printf String Sync_engine Trace
