test/test_core.ml: Aer Alcotest Array Ba Bitset Fba_adversary Fba_core Fba_samplers Fba_sim Fba_stdx Hashtbl Int64 List Msg Params Prng Scenario Stats String
