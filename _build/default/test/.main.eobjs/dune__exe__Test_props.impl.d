test/test_props.ml: Array Bitset Bytes Char Fba_adversary Fba_aeba Fba_core Fba_extensions Fba_samplers Fba_sim Fba_stdx Histogram Int Int64 List Prng QCheck2 QCheck_alcotest Set Stats
