test/main.mli:
