test/test_aer_unit.ml: Aer Alcotest Array Fba_core Fba_samplers Fba_sim Fba_stdx Int64 List Msg Params Prng Scenario
