test/test_harness.ml: Alcotest Bitset Fba_adversary Fba_core Fba_harness Fba_sim Fba_stdx
