test/test_samplers.ml: Affine_sampler Alcotest Array Bitset Cache Digraph Fba_samplers Fba_stdx Int64 List Printf Prng Property_check Push_plan Sampler String
