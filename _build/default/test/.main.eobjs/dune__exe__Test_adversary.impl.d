test/test_adversary.ml: Aer Alcotest Array Bitset Bytes Fba_adversary Fba_core Fba_samplers Fba_sim Fba_stdx Int64 List Msg Params Printf Prng Scenario
