test/test_extensions.ml: Alcotest Array Bitset Fba_extensions Fba_sim Fba_stdx Printf Prng
