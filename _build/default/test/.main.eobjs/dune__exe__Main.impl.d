test/main.ml: Alcotest List Test_adversary Test_aeba Test_aer_unit Test_baselines Test_core Test_extensions Test_harness Test_props Test_samplers Test_sim Test_stdx
