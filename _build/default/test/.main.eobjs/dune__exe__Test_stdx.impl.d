test/test_stdx.ml: Alcotest Array Bitset Bytes Char Fba_stdx Hash64 Histogram Intx List Printf Prng Stats String Table
