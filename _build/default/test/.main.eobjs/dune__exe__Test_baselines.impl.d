test/test_baselines.ml: Alcotest Array Bitset Fba_baselines Fba_sim Fba_stdx List Printf Prng
