test/test_aeba.ml: Aeba Alcotest Array Bitset Committee_tree Fba_adversary Fba_aeba Fba_sim Fba_stdx Int64 List Phase_king Printf Prng String
