open Fba_stdx
module Relay = Fba_extensions.Committee_relay
module Engine = Fba_sim.Sync_engine.Make (Relay)

let workload ~n ~byz ~kn ~seed =
  let rng = Prng.create seed in
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle rng perm;
  let t = int_of_float (byz *. float_of_int n) in
  let corrupted = Bitset.create n in
  for i = 0 to t - 1 do
    Bitset.add corrupted perm.(i)
  done;
  let k = int_of_float (ceil (kn *. float_of_int n)) in
  let g = "relay-gstring" in
  let initial = Array.init n (fun i -> Printf.sprintf "junk-%d" i) in
  for i = t to min (t + k) n - 1 do
    initial.(perm.(i)) <- g
  done;
  (corrupted, g, initial)

let run ~n ~byz ~kn ~seed =
  let corrupted, g, initial = workload ~n ~byz ~kn ~seed in
  let cfg =
    Relay.make_config ~n ~seed ~initial:(fun i -> initial.(i)) ~str_bits:104 ()
  in
  let res =
    Engine.run ~config:cfg ~n ~seed
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing ~max_rounds:(Relay.total_rounds + 2) ()
  in
  (cfg, corrupted, g, res)

let test_relay_correct () =
  let _, corrupted, g, res = run ~n:256 ~byz:0.1 ~kn:0.8 ~seed:3L in
  Array.iteri
    (fun i o ->
      if not (Bitset.mem corrupted i) then
        Alcotest.(check (option string)) (Printf.sprintf "node %d" i) (Some g) o)
    res.Fba_sim.Sync_engine.outputs

let test_relay_load_profile () =
  let cfg, corrupted, _, res = run ~n:256 ~byz:0.1 ~kn:0.8 ~seed:4L in
  let m = res.Fba_sim.Sync_engine.metrics in
  let committee = Relay.committee cfg in
  let in_committee id = Array.exists (fun v -> v = id) committee in
  (* Non-members send nothing; members bear the Θ~(√n) load. *)
  let max_outside = ref 0 and max_member = ref 0 in
  for i = 0 to 255 do
    if not (Bitset.mem corrupted i) then begin
      let sent = Fba_sim.Metrics.sent_bits_of m i in
      if in_committee i then max_member := max !max_member sent
      else max_outside := max !max_outside sent
    end
  done;
  Alcotest.(check int) "non-members are silent" 0 !max_outside;
  Alcotest.(check bool) "members bear bounded load" true (!max_member > 0);
  (* Member load is O~(sqrt n): committee exchange (~2 sqrt n strings)
     plus ~k*n/|C| deliveries — comfortably under n strings. *)
  Alcotest.(check bool) "member load well below linear" true (!max_member < 256 * 104)

let test_relay_amortized_sublinear () =
  (* Amortized bits/node should be ~k*|s| + committee overhead, far
     below the grid baseline's sqrt(n)*|s|... at least sublinear. *)
  let _, _, _, res = run ~n:1024 ~byz:0.1 ~kn:0.8 ~seed:5L in
  let bits = Fba_sim.Metrics.amortized_bits res.Fba_sim.Sync_engine.metrics in
  (* k = 21 relays + committee exchange amortized: a few thousand bits. *)
  Alcotest.(check bool) "amortized O~(1)-ish" true (bits < 30_000.0)

let test_relay_committee_deterministic () =
  let mk () = Relay.make_config ~n:128 ~seed:9L ~initial:(fun _ -> "x") ~str_bits:8 () in
  Alcotest.(check (array int)) "same seed, same committee" (Relay.committee (mk ()))
    (Relay.committee (mk ()))

let test_relay_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Committee_relay.make_config: n < 2")
    (fun () -> ignore (Relay.make_config ~n:1 ~seed:1L ~initial:(fun _ -> "x") ~str_bits:8 ()));
  Alcotest.check_raises "bad relays"
    (Invalid_argument "Committee_relay.make_config: relays out of range") (fun () ->
      ignore (Relay.make_config ~relays:0 ~n:64 ~seed:1L ~initial:(fun _ -> "x") ~str_bits:8 ()))

let suites =
  [
    ( "extensions.committee_relay",
      [
        Alcotest.test_case "correctness" `Quick test_relay_correct;
        Alcotest.test_case "load profile" `Quick test_relay_load_profile;
        Alcotest.test_case "amortized cost" `Quick test_relay_amortized_sublinear;
        Alcotest.test_case "deterministic committee" `Quick test_relay_committee_deterministic;
        Alcotest.test_case "validation" `Quick test_relay_validation;
      ] );
  ]
