open Fba_stdx
module Grid = Fba_baselines.Grid_aetoe
module Naive = Fba_baselines.Naive_aetoe
module PK = Fba_baselines.Phase_king_proto
module RBA = Fba_baselines.Randomized_ba
module Grid_sync = Fba_sim.Sync_engine.Make (Grid)
module Naive_sync = Fba_sim.Sync_engine.Make (Naive)
module PK_sync = Fba_sim.Sync_engine.Make (PK)
module RBA_sync = Fba_sim.Sync_engine.Make (RBA)

(* Shared workload: [kn] fraction of all nodes (correct ones) know the
   string "G...", the rest hold junk; random corruption. *)
let workload ~n ~byz ~kn ~seed =
  let rng = Prng.create seed in
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle rng perm;
  let t = int_of_float (byz *. float_of_int n) in
  let corrupted = Bitset.create n in
  for i = 0 to t - 1 do
    Bitset.add corrupted perm.(i)
  done;
  let k = int_of_float (ceil (kn *. float_of_int n)) in
  let g = "the-global-string" in
  let initial = Array.init n (fun i -> Printf.sprintf "junk-%d" i) in
  for i = t to min (t + k) n - 1 do
    initial.(perm.(i)) <- g
  done;
  (corrupted, g, initial)

let count_outcomes outputs corrupted g =
  let ok = ref 0 and bad = ref 0 and und = ref 0 in
  Array.iteri
    (fun i o ->
      if not (Bitset.mem corrupted i) then begin
        match o with
        | Some v when v = g -> incr ok
        | Some _ -> incr bad
        | None -> incr und
      end)
    outputs;
  (!ok, !bad, !und)

(* --- Grid --- *)

let test_grid_correct () =
  let n = 225 in
  let corrupted, g, initial = workload ~n ~byz:0.1 ~kn:0.8 ~seed:2L in
  let cfg = Grid.make_config ~n ~initial:(fun i -> initial.(i)) ~str_bits:136 in
  let res =
    Grid_sync.run ~config:cfg ~n ~seed:2L
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing ~max_rounds:(Grid.total_rounds + 2) ()
  in
  let ok, bad, und = count_outcomes res.Fba_sim.Sync_engine.outputs corrupted g in
  Alcotest.(check int) "no wrong" 0 bad;
  Alcotest.(check int) "no undecided" 0 und;
  Alcotest.(check bool) "all correct decided g" true (ok > 0)

let test_grid_load_balanced () =
  let n = 256 in
  let corrupted, _, initial = workload ~n ~byz:0.1 ~kn:0.8 ~seed:3L in
  let cfg = Grid.make_config ~n ~initial:(fun i -> initial.(i)) ~str_bits:136 in
  let res =
    Grid_sync.run ~config:cfg ~n ~seed:3L
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing ~max_rounds:(Grid.total_rounds + 2) ()
  in
  Alcotest.(check bool) "balanced" true
    (Fba_sim.Metrics.load_imbalance res.Fba_sim.Sync_engine.metrics < 2.0)

let test_grid_bits_scale () =
  (* bits/node ~ 2*sqrt(n)*|s|: quadrupling n should roughly double it. *)
  let run n =
    let corrupted, _, initial = workload ~n ~byz:0.1 ~kn:0.8 ~seed:4L in
    let cfg = Grid.make_config ~n ~initial:(fun i -> initial.(i)) ~str_bits:136 in
    let res =
      Grid_sync.run ~config:cfg ~n ~seed:4L
        ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
        ~mode:`Rushing ~max_rounds:(Grid.total_rounds + 2) ()
    in
    Fba_sim.Metrics.amortized_bits res.Fba_sim.Sync_engine.metrics
  in
  let b64 = run 64 and b1024 = run 1024 in
  let ratio = b1024 /. b64 in
  Alcotest.(check bool) "sqrt scaling" true (ratio > 2.5 && ratio < 6.0)

let test_grid_non_square () =
  (* Ragged grids (n not a perfect square) must still work. *)
  let n = 150 in
  let corrupted, g, initial = workload ~n ~byz:0.1 ~kn:0.8 ~seed:5L in
  let cfg = Grid.make_config ~n ~initial:(fun i -> initial.(i)) ~str_bits:136 in
  let res =
    Grid_sync.run ~config:cfg ~n ~seed:5L
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing ~max_rounds:(Grid.total_rounds + 2) ()
  in
  let _, bad, und = count_outcomes res.Fba_sim.Sync_engine.outputs corrupted g in
  Alcotest.(check int) "no wrong" 0 bad;
  Alcotest.(check int) "no undecided" 0 und

(* --- Naive --- *)

let test_naive_correct () =
  let n = 200 in
  let corrupted, g, initial = workload ~n ~byz:0.1 ~kn:0.8 ~seed:6L in
  let cfg = Naive.make_config ~n ~initial:(fun i -> initial.(i)) ~str_bits:136 () in
  let res =
    Naive_sync.run ~config:cfg ~n ~seed:6L
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing ~max_rounds:(Naive.total_rounds + 2) ()
  in
  let _, bad, und = count_outcomes res.Fba_sim.Sync_engine.outputs corrupted g in
  Alcotest.(check int) "no wrong" 0 bad;
  Alcotest.(check int) "no undecided" 0 und

let test_naive_flood_amplification () =
  let n = 200 in
  let run flood =
    let corrupted, _, initial = workload ~n ~byz:0.15 ~kn:0.8 ~seed:7L in
    let cfg = Naive.make_config ~n ~initial:(fun i -> initial.(i)) ~str_bits:136 () in
    let adversary =
      if flood then Naive.flood_adversary cfg ~corrupted
      else Fba_sim.Sync_engine.null_adversary ~corrupted
    in
    let res =
      Naive_sync.run ~config:cfg ~n ~seed:7L ~adversary ~mode:`Rushing
        ~max_rounds:(Naive.total_rounds + 2) ()
    in
    Fba_sim.Metrics.amortized_bits res.Fba_sim.Sync_engine.metrics
  in
  let quiet = run false and flooded = run true in
  (* 30 Byzantine queriers force ~30 extra replies of |s| bits per
     correct node — a Theta(t) additive hit on everyone. *)
  Alcotest.(check bool) "flooding amplifies naive load" true (flooded > 1.5 *. quiet)

let test_grid_tiny () =
  (* n = 2: one row of two; must still terminate and agree. *)
  let cfg = Grid.make_config ~n:2 ~initial:(fun _ -> "v") ~str_bits:8 in
  let res =
    Grid_sync.run ~config:cfg ~n:2 ~seed:1L
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted:(Bitset.create 2))
      ~mode:`Rushing ~max_rounds:10 ()
  in
  Alcotest.(check (option string)) "node 0" (Some "v") res.Fba_sim.Sync_engine.outputs.(0);
  Alcotest.(check (option string)) "node 1" (Some "v") res.Fba_sim.Sync_engine.outputs.(1)

(* --- KS09-style random push --- *)

module Ks09 = Fba_baselines.Ks09_aetoe
module Ks09_sync = Fba_sim.Sync_engine.Make (Ks09)

let test_ks09_correct () =
  let n = 200 in
  let corrupted, g, initial = workload ~n ~byz:0.1 ~kn:0.8 ~seed:20L in
  let cfg = Ks09.make_config ~n ~initial:(fun i -> initial.(i)) ~str_bits:136 () in
  let res =
    Ks09_sync.run ~config:cfg ~n ~seed:20L
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing ~max_rounds:(Ks09.total_rounds + 2) ()
  in
  let _, bad, und = count_outcomes res.Fba_sim.Sync_engine.outputs corrupted g in
  Alcotest.(check int) "no wrong" 0 bad;
  Alcotest.(check int) "no undecided" 0 und

let test_ks09_receive_hotspot () =
  let n = 200 in
  let run flood =
    let corrupted, _, initial = workload ~n ~byz:0.15 ~kn:0.8 ~seed:21L in
    let cfg = Ks09.make_config ~n ~initial:(fun i -> initial.(i)) ~str_bits:136 () in
    let adversary =
      if flood then Ks09.flood_adversary ~victims:2 cfg ~corrupted
      else Fba_sim.Sync_engine.null_adversary ~corrupted
    in
    let res =
      Ks09_sync.run ~config:cfg ~n ~seed:21L ~adversary ~mode:`Rushing
        ~max_rounds:(Ks09.total_rounds + 2) ()
    in
    Fba_sim.Metrics.max_recv_bits_correct res.Fba_sim.Sync_engine.metrics
  in
  let quiet = run false and flooded = run true in
  (* All Byzantine pushes land on 2 victims: their inboxes blow up. *)
  Alcotest.(check bool) "receive hot spot under flooding" true (flooded > 4 * quiet)

(* --- Phase-king standalone --- *)

let test_pk_proto_agreement () =
  let n = 40 in
  let corrupted, _, initial = workload ~n ~byz:0.2 ~kn:0.7 ~seed:8L in
  let cfg = PK.make_config ~n ~initial:(fun i -> initial.(i)) ~str_bits:136 in
  let res =
    PK_sync.run ~config:cfg ~n ~seed:8L
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing ~max_rounds:(PK.total_rounds cfg) ()
  in
  let outs = ref [] in
  Array.iteri
    (fun i o -> if not (Bitset.mem corrupted i) then outs := (i, o) :: !outs)
    res.Fba_sim.Sync_engine.outputs;
  (match !outs with
  | (_, first) :: rest ->
    Alcotest.(check bool) "decided" true (first <> None);
    List.iter (fun (i, o) -> Alcotest.(check bool) (Printf.sprintf "node %d agrees" i) true (o = first)) rest
  | [] -> Alcotest.fail "no correct nodes")

let test_pk_proto_validity () =
  (* All correct nodes share the input: the decision must be it. *)
  let n = 31 in
  let corrupted = Bitset.of_list n [ 1; 11; 21 ] in
  let cfg = PK.make_config ~n ~initial:(fun _ -> "unanimous") ~str_bits:80 in
  let res =
    PK_sync.run ~config:cfg ~n ~seed:9L
      ~adversary:(Fba_sim.Sync_engine.null_adversary ~corrupted)
      ~mode:`Rushing ~max_rounds:(PK.total_rounds cfg) ()
  in
  Array.iteri
    (fun i o ->
      if not (Bitset.mem corrupted i) then
        Alcotest.(check (option string)) (Printf.sprintf "node %d validity" i)
          (Some "unanimous") o)
    res.Fba_sim.Sync_engine.outputs

(* --- Randomized BA --- *)

let run_rba ~coin ~n ~inputs ~byz_ids ~attack ~seed =
  let corrupted = Bitset.of_list n byz_ids in
  let t_assumed = max 1 ((n / 6) - 1) in
  let cfg = RBA.make_config ~n ~t_assumed ~coin ~inputs () in
  let adversary =
    if attack then RBA.split_vote_adversary cfg ~corrupted
    else Fba_sim.Sync_engine.null_adversary ~corrupted
  in
  RBA_sync.run ~config:cfg ~n ~seed ~adversary ~mode:`Rushing
    ~max_rounds:(RBA.max_engine_rounds cfg) ()

let check_binary_agreement res corrupted n =
  let v = ref None and ok = ref true in
  Array.iteri
    (fun i o ->
      if not (Bitset.mem corrupted i) then begin
        (match o with None -> ok := false | Some _ -> ());
        match (!v, o) with
        | None, Some x -> v := Some x
        | Some x, Some y when x <> y -> ok := false
        | _ -> ()
      end)
    res.Fba_sim.Sync_engine.outputs;
  ignore n;
  !ok

let test_rba_validity () =
  (* Unanimous input 1 must decide "1" in the first logical round. *)
  let n = 60 in
  let res = run_rba ~coin:`Local ~n ~inputs:(fun _ -> true) ~byz_ids:[ 3; 17 ] ~attack:false ~seed:10L in
  let corrupted = Bitset.of_list n [ 3; 17 ] in
  Array.iteri
    (fun i o ->
      if not (Bitset.mem corrupted i) then
        Alcotest.(check (option string)) "validity" (Some "1") o)
    res.Fba_sim.Sync_engine.outputs;
  Alcotest.(check bool) "fast" true (Fba_sim.Metrics.rounds res.Fba_sim.Sync_engine.metrics <= 8)

let test_rba_agreement_mixed_local () =
  let n = 60 in
  let byz = [ 0; 13; 29 ] in
  let res =
    run_rba ~coin:`Local ~n ~inputs:(fun i -> i mod 2 = 0) ~byz_ids:byz ~attack:true ~seed:11L
  in
  Alcotest.(check bool) "agreement" true (check_binary_agreement res (Bitset.of_list n byz) n)

let test_rba_agreement_common_coin () =
  let n = 60 in
  let byz = [ 0; 13; 29 ] in
  let res =
    run_rba ~coin:(`Common 5L) ~n ~inputs:(fun i -> i mod 2 = 0) ~byz_ids:byz ~attack:true
      ~seed:12L
  in
  Alcotest.(check bool) "agreement" true (check_binary_agreement res (Bitset.of_list n byz) n);
  Alcotest.(check bool) "all decided" true res.Fba_sim.Sync_engine.all_decided

let test_rba_config_validation () =
  Alcotest.check_raises "resilience bound"
    (Invalid_argument "Randomized_ba.make_config: need 5*t_assumed < n") (fun () ->
      ignore (RBA.make_config ~n:10 ~t_assumed:2 ~coin:`Local ~inputs:(fun _ -> true) ()))

let suites =
  [
    ( "baselines.grid",
      [
        Alcotest.test_case "correctness" `Quick test_grid_correct;
        Alcotest.test_case "load-balanced" `Quick test_grid_load_balanced;
        Alcotest.test_case "sqrt bits scaling" `Quick test_grid_bits_scale;
        Alcotest.test_case "non-square grid" `Quick test_grid_non_square;
        Alcotest.test_case "tiny grid" `Quick test_grid_tiny;
      ] );
    ( "baselines.naive",
      [
        Alcotest.test_case "correctness" `Quick test_naive_correct;
        Alcotest.test_case "flood amplification" `Quick test_naive_flood_amplification;
      ] );
    ( "baselines.ks09",
      [
        Alcotest.test_case "correctness" `Quick test_ks09_correct;
        Alcotest.test_case "receive hotspot under flooding" `Quick test_ks09_receive_hotspot;
      ] );
    ( "baselines.phase_king",
      [
        Alcotest.test_case "agreement" `Quick test_pk_proto_agreement;
        Alcotest.test_case "validity" `Quick test_pk_proto_validity;
      ] );
    ( "baselines.randomized_ba",
      [
        Alcotest.test_case "validity" `Quick test_rba_validity;
        Alcotest.test_case "agreement (Ben-Or, split attack)" `Quick test_rba_agreement_mixed_local;
        Alcotest.test_case "agreement (common coin, split attack)" `Quick
          test_rba_agreement_common_coin;
        Alcotest.test_case "config validation" `Quick test_rba_config_validation;
      ] );
  ]
